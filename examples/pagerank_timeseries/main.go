// PageRank time series (the paper's Example 1, Figures 1–2): compute
// the PageRank of every page on every snapshot of a Wikipedia-like
// evolving graph sequence, then surface the "key moments" at which one
// page's score jumps — the events an analyst would investigate.
//
//	go run ./examples/pagerank_timeseries
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/measures"
)

func main() {
	cfg := gen.WikiConfig{
		N: 800, T: 60,
		InitialEdges: 2200, FinalEdges: 5500,
		ChurnFrac: 0.25, EventRate: 0.15, Seed: 23,
	}
	egs, err := gen.WikiSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const damping = 0.85
	ems := graph.DeriveEMS(egs, graph.RWRMatrix(damping))

	// Stream PageRank for all pages across the sequence.
	series := make([][]float64, egs.Len())
	if _, err := core.Run(ems, core.CLUDE, core.Options{
		Alpha: 0.95,
		OnFactors: func(i int, s *lu.Solver) {
			eng := measures.NewEngineFromSolver(egs.Snapshots[i], damping, s)
			series[i] = eng.PageRank()
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Find the most volatile page (largest max/min score ratio).
	page, swing := 0, 0.0
	for v := 0; v < egs.N(); v++ {
		lo, hi := math.Inf(1), 0.0
		for t := range series {
			lo = math.Min(lo, series[t][v])
			hi = math.Max(hi, series[t][v])
		}
		if lo > 0 && hi/lo > swing {
			swing, page = hi/lo, v
		}
	}
	fmt.Printf("most volatile page: %d (score swing %.2fx)\n\n", page, swing)

	// Render its time series as a crude terminal sparkline.
	lo, hi := math.Inf(1), 0.0
	for t := range series {
		lo = math.Min(lo, series[t][page])
		hi = math.Max(hi, series[t][page])
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	fmt.Print("PR(t): ")
	for t := range series {
		k := int((series[t][page] - lo) / (hi - lo + 1e-18) * float64(len(levels)-1))
		fmt.Print(string(levels[k]))
	}
	fmt.Println()

	// Key moments: the largest relative day-over-day changes, the
	// analogue of the paper's snapshots #197/#247 annotations.
	type moment struct {
		t      int
		change float64
	}
	var ms []moment
	for t := 1; t < len(series); t++ {
		prev := series[t-1][page]
		if prev > 0 {
			ms = append(ms, moment{t, (series[t][page] - prev) / prev})
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		return math.Abs(ms[i].change) > math.Abs(ms[j].change)
	})
	fmt.Println("\nkey moments:")
	for i := 0; i < 5 && i < len(ms); i++ {
		dir := "rose"
		if ms[i].change < 0 {
			dir = "fell"
		}
		g := egs.Snapshots[ms[i].t]
		fmt.Printf("  snapshot %3d: score %s %.1f%%  (page in-degree now %d)\n",
			ms[i].t, dir, 100*math.Abs(ms[i].change), g.InDegree(page))
	}
}
