// Patent case study (paper §7, Figure 11): on yearly snapshots of a
// patent citation graph, measure each company's proximity to a subject
// company by summing Personalized PageRank over its patents, seeded at
// the subject's patents. Reported as ranks per year, the series exposes
// the company whose technological dependency on the subject is rising —
// the paper's Harris/IBM story, recovered here from simulated data with
// a planted riser.
//
//	go run ./examples/patent_casestudy
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/measures"
)

func main() {
	cfg := gen.DefaultPatentConfig()
	data, err := gen.PatentSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Reverse the citation arcs: random-walk mass from the subject's
	// patents must flow toward the patents *citing* them.
	egs := reverseEGS(data.EGS)
	const damping = 0.85
	const subject = 0 // IBM
	nc := len(data.Names)

	ems := graph.DeriveEMS(egs, graph.RWRMatrix(damping))
	ranks := make([][]int, egs.Len())
	if _, err := core.Run(ems, core.CLUDE, core.Options{
		Alpha: 0.9,
		OnFactors: func(year int, s *lu.Solver) {
			eng := measures.NewEngineFromSolver(egs.Snapshots[year], damping, s)
			var seeds []int
			for v := 0; v < egs.N(); v++ {
				if data.Company[v] == subject && data.GrantYear[v] <= year {
					seeds = append(seeds, v)
				}
			}
			ppr := eng.PPR(seeds)
			prox := make([]float64, nc)
			for v := 0; v < egs.N(); v++ {
				if data.GrantYear[v] <= year {
					prox[data.Company[v]] += ppr[v]
				}
			}
			ranks[year] = measures.Ranks(prox[1:]) // exclude the subject itself
		},
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("proximity rank from %s patents (1 = closest), 1979–1999:\n\n", data.Names[subject])
	fmt.Printf("  year  %s\n", strings.Join(pad(data.Names[1:]), " "))
	for year := range ranks {
		cells := make([]string, nc-1)
		for c, r := range ranks[year] {
			cells[c] = fmt.Sprintf("%*d", len(data.Names[c+1]), r)
		}
		fmt.Printf("  %d  %s\n", 1979+year, strings.Join(cells, " "))
	}

	riser := cfg.RisingCompany
	fmt.Printf("\n%s's rank: %d (1980) → %d (1999) — the steady climb the analyst would flag\n",
		data.Names[riser], ranks[1][riser-1], ranks[len(ranks)-1][riser-1])
	fmt.Println("(in the real data this is Harris, whose 1992 IBM alliance the trend predicted)")
}

func pad(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = n
	}
	return out
}

// reverseEGS flips every snapshot's arcs (see graph.Reverse).
func reverseEGS(s *graph.EGS) *graph.EGS {
	snaps := make([]*graph.Graph, s.Len())
	for i, g := range s.Snapshots {
		snaps[i] = g.Reverse()
	}
	out, err := graph.NewEGS(snaps)
	if err != nil {
		panic(err)
	}
	return out
}
