// Quickstart: build a small evolving graph sequence, run CLUDE over the
// derived matrix sequence, and answer Random-Walk-with-Restart queries
// on every snapshot from the streamed LU factors.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/measures"
)

func main() {
	// 1. An evolving graph sequence: 300 vertices, 20 snapshots, a few
	//    dozen edge changes between consecutive snapshots.
	cfg := gen.SyntheticConfig{V: 300, EP: 2700, D: 5, K: 4, DeltaE: 20, T: 20, Seed: 42}
	egs, err := gen.Synthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EGS: %d snapshots of %d vertices, successive similarity %.4f\n",
		egs.Len(), egs.N(), egs.AvgSuccessiveMES())

	// 2. Derive the evolving matrix sequence A_i = I − d·W_i for RWR.
	const damping = 0.85
	ems := graph.DeriveEMS(egs, graph.RWRMatrix(damping))

	// 3. Run CLUDE: cluster the sequence (α = 0.95), order each cluster
	//    by the Markowitz ordering of its union matrix, decompose the
	//    first member fully and update the rest incrementally inside
	//    the cluster-wide static structure. The callback receives
	//    ready-to-use factors for every snapshot, in order.
	const seedNode = 7
	res, err := core.Run(ems, core.CLUDE, core.Options{
		Alpha: 0.95,
		OnFactors: func(i int, s *lu.Solver) {
			eng := measures.NewEngineFromSolver(egs.Snapshots[i], damping, s)
			rwr := eng.RWR(seedNode)
			top := measures.TopK(rwr, 3)
			fmt.Printf("snapshot %2d: closest to node %d → %v\n", i, seedNode, top)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. What CLUDE did under the hood.
	fmt.Printf("\nclusters: %d  full decompositions: %d  Bennett updates: %d rank-1 terms\n",
		len(res.Clusters), len(res.Clusters), res.Bennett.Rank1Updates)
	fmt.Printf("phase times: clustering %v, ordering %v, full LU %v, Bennett %v\n",
		res.Times.Clustering, res.Times.Ordering, res.Times.FullLU, res.Times.Bennett)
}
