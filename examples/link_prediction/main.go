// Link prediction over an evolving graph (the paper's Example 3): for
// candidate node pairs, compute the RWR proximity score on every
// snapshot, fit a linear trend to each pair's score series, and rank
// non-edges by trend-adjusted proximity. Pairs whose proximity is both
// high and rising are the strongest link candidates — information a
// single static snapshot cannot provide.
//
//	go run ./examples/link_prediction
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/measures"
)

func main() {
	cfg := gen.DBLPConfig{
		N: 400, T: 40, Communities: 3,
		InitialPapers: 320, PapersPerDay: 5,
		MaxCoauthors: 4, CrossCommunity: 0.05, Seed: 31,
	}
	egs, err := gen.DBLPSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const damping = 0.85
	ems := graph.DeriveEMS(egs, graph.RWRMatrix(damping))

	// Focus on one author; candidates are all non-neighbours on the
	// first snapshot.
	const author = 11
	first := egs.Snapshots[0]
	last := egs.Snapshots[egs.Len()-1]

	scores := make([][]float64, egs.Len())
	if _, err := core.Run(ems, core.CLUDE, core.Options{
		Alpha: 0.95,
		OnFactors: func(i int, s *lu.Solver) {
			eng := measures.NewEngineFromSolver(egs.Snapshots[i], damping, s)
			scores[i] = eng.RWR(author)
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Linear trend of each candidate's proximity series.
	type candidate struct {
		v            int
		level, slope float64
		linkedLater  bool
	}
	var cands []candidate
	T := float64(len(scores))
	for v := 0; v < egs.N(); v++ {
		if v == author || first.HasEdge(author, v) {
			continue
		}
		// Least-squares slope of score(t).
		var sumT, sumS, sumTS, sumTT float64
		for t := range scores {
			ft := float64(t)
			s := scores[t][v]
			sumT += ft
			sumS += s
			sumTS += ft * s
			sumTT += ft * ft
		}
		den := T*sumTT - sumT*sumT
		if den == 0 {
			continue
		}
		slope := (T*sumTS - sumT*sumS) / den
		cands = append(cands, candidate{
			v:           v,
			level:       sumS / T,
			slope:       slope,
			linkedLater: last.HasEdge(author, v),
		})
	}

	// Rank by trend-adjusted proximity: projected score one window
	// ahead.
	sort.Slice(cands, func(i, j int) bool {
		pi := cands[i].level + cands[i].slope*T
		pj := cands[j].level + cands[j].slope*T
		return pi > pj
	})

	fmt.Printf("link candidates for author %d (ranked by projected RWR proximity):\n\n", author)
	fmt.Println("  rank  node  avg score   trend/step   became co-author?")
	hits := 0
	for i := 0; i < 10 && i < len(cands); i++ {
		c := cands[i]
		mark := ""
		if c.linkedLater {
			mark = "  ← yes"
			hits++
		}
		fmt.Printf("  %4d  %4d  %.3e  %+.3e%s\n", i+1, c.v, c.level, c.slope, mark)
	}
	fmt.Printf("\n%d of the top 10 candidates became co-authors within the window.\n", hits)
}
