// Package repro's root benchmark suite: one testing.B benchmark per
// table and figure of the paper (each regenerates the corresponding
// data series via the internal/bench harness at Tiny scale) plus
// micro-benchmarks of the computational kernels and the design-choice
// ablations called out in DESIGN.md §6.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/bennett"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// benchExperiment runs one harness experiment per iteration. When
// BENCH_JSON_DIR is set (the CI bench job does), the first iteration's
// tables are persisted as BENCH_<id>.json so every benchmark run
// leaves a machine-readable artifact behind.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	d, err := bench.DatasetsFor(bench.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	e, err := bench.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	jsonDir := os.Getenv("BENCH_JSON_DIR")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i == 0 && jsonDir != "" {
			// The artifact iteration also records the run's allocation
			// deltas, so every BENCH_*.json carries allocs/op and
			// bytes/op next to the wall time.
			tables, elapsed, allocs, bytes, err := bench.RunMeasured(e, d)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			report := bench.NewReport()
			report.Add(e, bench.Tiny, d.Workers, elapsed, allocs, bytes, tables)
			if err := bench.WriteJSON(bench.ArtifactPath(jsonDir, id), report); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			continue
		}
		if _, err := e.Run(d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure ---

func BenchmarkFig1PageRankSeries(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig5INCQualityDecay(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6QualityVsAlpha(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7SpeedupVsAlpha(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8TimeBreakdown(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9DeltaESweep(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10QCBetaSweep(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11PatentCaseStudy(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkTblSolveMethods(b *testing.B)      { benchExperiment(b, "tblSolve") }
func BenchmarkTblBennettProfile(b *testing.B)    { benchExperiment(b, "tblBennett") }

// BenchmarkServingQueries runs the serving-layer experiment: mixed
// RWR/PPR/PageRank/top-k queries against pinned factors across pool
// sizes (see internal/bench.Serving).
func BenchmarkServingQueries(b *testing.B) { benchExperiment(b, "serving") }

// BenchmarkSparseSolveQueries runs the reach-based sparse vs dense
// solve experiment across community counts (see
// internal/bench.SparseSolve).
func BenchmarkSparseSolveQueries(b *testing.B) { benchExperiment(b, "sparsesolve") }

// BenchmarkStreamingIngest runs the live edge-delta pipeline
// experiment: ingest throughput vs concurrent query latency vs batch
// size, plus the hot-publish vs RetainFactors-clone allocation profile
// (see internal/bench.Streaming).
func BenchmarkStreamingIngest(b *testing.B) { benchExperiment(b, "streaming") }

// BenchmarkPersistenceRestart regenerates the durability experiment:
// warm restart (snapshot + WAL tail) vs cold refactorization, and the
// WAL fsync toll on ingest.
func BenchmarkPersistenceRestart(b *testing.B) { benchExperiment(b, "persistence") }

// BenchmarkLoadTestServing runs the serving pipeline load experiment:
// single-flight coalescing, blocked multi-RHS solves, and admission
// shedding against the unbatched single-solve baseline (see
// internal/bench.LoadTest).
func BenchmarkLoadTestServing(b *testing.B) { benchExperiment(b, "loadtest") }

// BenchmarkSupernodalSubstitution runs the supernodal panel experiment:
// panel-packed vs scalar blocked substitution across community
// structure, RHS counts, and relaxation widths, with the bit-identity
// checksum table (see internal/bench.Supernodal).
func BenchmarkSupernodalSubstitution(b *testing.B) { benchExperiment(b, "supernodal") }

// BenchmarkParallelWorkers runs each LUDEM algorithm end-to-end across
// engine pool sizes (compare sub-benchmark ns/op to see the scaling;
// on a multi-core box CLUDE/workers=4 should be well under workers=1).
func BenchmarkParallelWorkers(b *testing.B) {
	_, ems := benchEMS(b)
	for _, alg := range []core.Algorithm{core.BF, core.CINC, core.CLUDE} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", alg, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Run(ems, alg, core.Options{Alpha: 0.95, Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Kernel micro-benchmarks ---

// benchEMS builds a moderate Wiki-like EMS once for the kernel benches.
func benchEMS(b *testing.B) (*graph.EGS, *graph.EMS) {
	b.Helper()
	egs, err := gen.WikiSim(gen.WikiConfig{
		N: 1000, T: 12, InitialEdges: 2800, FinalEdges: 2960,
		ChurnFrac: 0.25, EventRate: 0.05, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return egs, graph.DeriveEMS(egs, graph.RWRMatrix(0.85))
}

func BenchmarkKernelMarkowitz(b *testing.B) {
	_, ems := benchEMS(b)
	p := ems.Matrices[0].Pattern()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = order.Markowitz(p)
	}
}

func BenchmarkKernelSymbolic(b *testing.B) {
	_, ems := benchEMS(b)
	ord := order.Markowitz(ems.Matrices[0].Pattern())
	p := ems.Matrices[0].Pattern().Permute(ord.Ordering)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lu.Symbolic(p)
	}
}

func BenchmarkKernelFactorize(b *testing.B) {
	_, ems := benchEMS(b)
	ord := order.Markowitz(ems.Matrices[0].Pattern())
	a := ems.Matrices[0].Permute(ord.Ordering)
	sym := lu.Symbolic(a.Pattern())
	f := lu.NewStaticFactors(sym)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Factorize(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelSolve(b *testing.B) {
	_, ems := benchEMS(b)
	ord := order.Markowitz(ems.Matrices[0].Pattern())
	s, err := lu.FactorizeOrdered(ems.Matrices[0], ord.Ordering)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, ems.N())
	rhs[3] = 0.15
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Solve(rhs)
	}
}

// BenchmarkKernelSolveSparse is BenchmarkKernelSolve through the
// reach-based sparse path: a single-seed right-hand side touching only
// its dependency closure instead of all n rows. Compare ns/op and
// allocs/op against BenchmarkKernelSolve for the per-query win.
func BenchmarkKernelSolveSparse(b *testing.B) {
	_, ems := benchEMS(b)
	ord := order.Markowitz(ems.Matrices[0].Pattern())
	s, err := lu.FactorizeOrdered(ems.Matrices[0], ord.Ordering)
	if err != nil {
		b.Fatal(err)
	}
	var ws lu.SparseSolveWorkspace
	bIdx := []int{3}
	bVal := []float64{0.15}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := s.SolveSparse(bIdx, bVal, 0, &ws); !ok {
			b.Fatal("uncapped sparse solve aborted")
		}
	}
}

// BenchmarkKernelBennettStatic measures one EMS step applied to a
// static USSP container (the CLUDE inner loop).
func BenchmarkKernelBennettStatic(b *testing.B) {
	_, ems := benchEMS(b)
	union := ems.Matrices[0].Pattern()
	for _, m := range ems.Matrices[1:] {
		union = union.Union(m.Pattern())
	}
	ord := order.Markowitz(union)
	sym := lu.Symbolic(union.Permute(ord.Ordering))
	f := lu.NewStaticFactors(sym)
	a0 := ems.Matrices[0].Permute(ord.Ordering)
	a1 := ems.Matrices[1].Permute(ord.Ordering)
	delta := sparse.Delta(a0, a1)
	back := sparse.Delta(a1, a0)
	if err := f.Factorize(a0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bennett.UpdateStatic(f, delta, nil); err != nil {
			b.Fatal(err)
		}
		if err := bennett.UpdateStatic(f, back, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelBennettDynamic is the same step through the
// linked-list container (the INC/CINC inner loop) — the head-to-head
// behind the paper's ~70%-restructuring observation.
func BenchmarkKernelBennettDynamic(b *testing.B) {
	_, ems := benchEMS(b)
	ord := order.Markowitz(ems.Matrices[0].Pattern())
	a0 := ems.Matrices[0].Permute(ord.Ordering)
	a1 := ems.Matrices[1].Permute(ord.Ordering)
	delta := sparse.Delta(a0, a1)
	back := sparse.Delta(a1, a0)
	static := lu.NewStaticFactors(lu.Symbolic(a0.Pattern()))
	if err := static.Factorize(a0); err != nil {
		b.Fatal(err)
	}
	d := lu.NewDynamicFactors(static)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bennett.UpdateDynamic(d, delta, nil); err != nil {
			b.Fatal(err)
		}
		if err := bennett.UpdateDynamic(d, back, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationNaturalOrder factors under the identity ordering —
// quantifying how much of the pipeline's win is ordering quality alone.
func BenchmarkAblationNaturalOrder(b *testing.B) {
	_, ems := benchEMS(b)
	a := ems.Matrices[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lu.FactorizeOrdered(a, sparse.IdentityOrdering(a.N())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMarkowitzOrder is the fill-reduced counterpart of
// BenchmarkAblationNaturalOrder (ordering time excluded).
func BenchmarkAblationMarkowitzOrder(b *testing.B) {
	_, ems := benchEMS(b)
	a := ems.Matrices[0]
	ord := order.Markowitz(a.Pattern())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lu.FactorizeOrdered(a, ord.Ordering); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFullPipeline compares the four LUDEM algorithms
// end-to-end on one EMS (reported as separate sub-benchmarks).
func BenchmarkAblationFullPipeline(b *testing.B) {
	_, ems := benchEMS(b)
	for _, alg := range []core.Algorithm{core.BF, core.INC, core.CINC, core.CLUDE} {
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(ems, alg, core.Options{Alpha: 0.95}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryAfterDecomposition measures the payoff the whole paper
// is built on: answering one RWR query from prepared factors.
func BenchmarkQueryAfterDecomposition(b *testing.B) {
	egs, ems := benchEMS(b)
	_ = egs
	ord := order.Markowitz(ems.Matrices[0].Pattern())
	s, err := lu.FactorizeOrdered(ems.Matrices[0], ord.Ordering)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(5)
	rhs := make([]float64, ems.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rhs {
			rhs[j] = 0
		}
		rhs[rng.Intn(len(rhs))] = 0.15
		_ = s.Solve(rhs)
	}
}
