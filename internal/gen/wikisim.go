package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// WikiConfig parameterizes the Wikipedia-like hyperlink EGS simulator.
// The paper's trace had 20,000 pages, 1000 daily snapshots, hyperlinks
// growing 56,181 → 138,072, average out-degree ≈ 7, and successive
// snapshot similarity 99.88%; DefaultWikiConfig reproduces those ratios
// at a laptop-friendly scale.
type WikiConfig struct {
	N            int     // pages
	T            int     // daily snapshots
	InitialEdges int     // hyperlinks on day 1
	FinalEdges   int     // hyperlinks on day T (approximate target)
	ChurnFrac    float64 // removed edges per day as a fraction of added
	EventRate    float64 // probability per day of a "key moment" event
	Seed         uint64
}

// DefaultWikiConfig returns a 1/10-scale Wikipedia-like configuration.
func DefaultWikiConfig() WikiConfig {
	return WikiConfig{
		N: 2000, T: 250,
		InitialEdges: 5600, FinalEdges: 13800,
		ChurnFrac: 0.25, EventRate: 0.05,
		Seed: 7,
	}
}

// WikiSim generates a directed hyperlink EGS: pages acquire links by
// preferential attachment (popular pages attract more in-links, which
// is what produces the power-law in-degree of the web), links grow
// roughly linearly from InitialEdges to FinalEdges with a small churn
// of deletions, and occasional "events" reproduce the key moments of
// the paper's Figure 1/2: a page suddenly gains in-links from
// high-profile pages, or a high-profile page bulk-adds out-links
// (diluting its PageRank contribution).
func WikiSim(cfg WikiConfig) (*graph.EGS, error) {
	if cfg.N < 10 || cfg.T < 1 || cfg.InitialEdges < 1 || cfg.FinalEdges < cfg.InitialEdges {
		return nil, fmt.Errorf("gen: bad wiki config %+v", cfg)
	}
	rng := xrand.New(cfg.Seed)
	n := cfg.N

	type arc struct{ u, v int }
	edges := make(map[arc]bool, cfg.FinalEdges)
	inDeg := make([]int, n)
	outDeg := make([]int, n)
	var list []arc // insertion-ordered for random removal

	addEdge := func(u, v int) bool {
		if u == v {
			return false
		}
		a := arc{u, v}
		if edges[a] {
			return false
		}
		edges[a] = true
		list = append(list, a)
		inDeg[v]++
		outDeg[u]++
		return true
	}
	// prefTarget picks a page proportionally to (in-degree + 1), the
	// classic rich-get-richer rule.
	totalIn := 0
	prefTarget := func() int {
		t := rng.Intn(totalIn + n)
		if t < n {
			return t // the +1 smoothing: uniform component
		}
		t -= n
		for v := 0; v < n; v++ {
			t -= inDeg[v]
			if t < 0 {
				return v
			}
		}
		return n - 1
	}
	// A faster urn would be nicer, but N is small; keep the simple scan
	// honest and move on.

	for len(edges) < cfg.InitialEdges {
		u := rng.Intn(n)
		if addEdge(u, prefTarget()) {
			totalIn++
		}
	}

	dailyNet := float64(cfg.FinalEdges-cfg.InitialEdges) / float64(max(cfg.T-1, 1))
	dailyAdd := int(dailyNet/(1-cfg.ChurnFrac) + 0.5)
	dailyDel := dailyAdd - int(dailyNet+0.5)

	snapshot := func() *graph.Graph {
		es := make([]graph.Edge, 0, len(edges))
		for a := range edges {
			es = append(es, graph.Edge{From: a.u, To: a.v})
		}
		sort.Slice(es, func(i, j int) bool {
			if es[i].From != es[j].From {
				return es[i].From < es[j].From
			}
			return es[i].To < es[j].To
		})
		return graph.New(n, true, es)
	}

	removeRandom := func() {
		for tries := 0; tries < 50 && len(list) > 0; tries++ {
			p := rng.Intn(len(list))
			a := list[p]
			if !edges[a] {
				// Lazily compact tombstones.
				list[p] = list[len(list)-1]
				list = list[:len(list)-1]
				continue
			}
			delete(edges, a)
			inDeg[a.v]--
			outDeg[a.u]--
			totalIn--
			list[p] = list[len(list)-1]
			list = list[:len(list)-1]
			return
		}
	}

	topByInDegree := func(k int) []int {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return inDeg[idx[a]] > inDeg[idx[b]] })
		return idx[:k]
	}

	snaps := make([]*graph.Graph, 0, cfg.T)
	snaps = append(snaps, snapshot())
	for day := 1; day < cfg.T; day++ {
		for a := 0; a < dailyAdd; a++ {
			u := rng.Intn(n)
			if addEdge(u, prefTarget()) {
				totalIn++
			}
		}
		for r := 0; r < dailyDel; r++ {
			removeRandom()
		}
		if rng.Float64() < cfg.EventRate {
			switch rng.Intn(2) {
			case 0:
				// Key moment à la snapshot #197: two high-PR pages link
				// to a random page.
				target := rng.Intn(n)
				for _, hub := range topByInDegree(min(5, n)) {
					if addEdge(hub, target) {
						totalIn++
					}
				}
			case 1:
				// Key moment à la snapshot #247: a high-PR page
				// bulk-adds out-links, diluting its contributions.
				hubs := topByInDegree(min(10, n))
				hub := hubs[rng.Intn(len(hubs))]
				for a := 0; a < 30; a++ {
					if addEdge(hub, rng.Intn(n)) {
						totalIn++
					}
				}
			}
		}
		snaps = append(snaps, snapshot())
	}
	return graph.NewEGS(snaps)
}
