package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// DBLPConfig parameterizes the co-authorship EGS simulator standing in
// for the paper's DBLP trace (97,931 authors across DB, Vision, and
// Algorithms & Theory; 387,960 → 547,164 edges over the last 1000 daily
// snapshots; similarity 99.86%; matrices symmetric and monotonically
// growing because a snapshot contains all co-authorships up to its
// date).
type DBLPConfig struct {
	N              int     // authors
	T              int     // daily snapshots
	Communities    int     // research areas (paper: 3)
	InitialPapers  int     // papers published before day 1
	PapersPerDay   int     // new papers per day
	MaxCoauthors   int     // authors per paper sampled in [2, MaxCoauthors]
	CrossCommunity float64 // probability an author is drawn outside the paper's community
	Seed           uint64
}

// DefaultDBLPConfig returns a scaled-down configuration preserving the
// trace's shape: symmetric, cumulative growth ≈ +40% over the window.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		N: 2500, T: 250, Communities: 3,
		InitialPapers: 2200, PapersPerDay: 4,
		MaxCoauthors: 4, CrossCommunity: 0.05,
		Seed: 11,
	}
}

// DBLPSim generates an undirected co-authorship EGS. Authors belong to
// communities; each paper draws 2..MaxCoauthors authors from one
// community (preferentially by publication count — prolific authors
// keep publishing) and adds a co-authorship clique. Edges accumulate:
// snapshot t contains every edge created up to day t, exactly like the
// paper's "graph of all papers published before that date".
func DBLPSim(cfg DBLPConfig) (*graph.EGS, error) {
	if cfg.N < 10 || cfg.T < 1 || cfg.Communities < 1 || cfg.MaxCoauthors < 2 {
		return nil, fmt.Errorf("gen: bad dblp config %+v", cfg)
	}
	rng := xrand.New(cfg.Seed)
	n := cfg.N

	community := make([]int, n)
	var members [][]int
	members = make([][]int, cfg.Communities)
	for a := 0; a < n; a++ {
		c := rng.Intn(cfg.Communities)
		community[a] = c
		members[c] = append(members[c], a)
	}
	pubs := make([]int, n) // publication counts for preferential choice

	type und struct{ u, v int }
	edges := make(map[und]bool, cfg.N*4)
	canon := func(u, v int) und {
		if u > v {
			u, v = v, u
		}
		return und{u, v}
	}

	// pickAuthor draws from community c proportionally to pubs+1.
	pickAuthor := func(c int) int {
		if rng.Float64() < cfg.CrossCommunity {
			c = rng.Intn(cfg.Communities)
		}
		ms := members[c]
		total := len(ms)
		for _, a := range ms {
			total += pubs[a]
		}
		t := rng.Intn(total)
		for _, a := range ms {
			t -= pubs[a] + 1
			if t < 0 {
				return a
			}
		}
		return ms[len(ms)-1]
	}

	publish := func() {
		c := rng.Intn(cfg.Communities)
		k := 2 + rng.Intn(cfg.MaxCoauthors-1)
		authors := make(map[int]bool, k)
		for len(authors) < k {
			authors[pickAuthor(c)] = true
		}
		as := make([]int, 0, k)
		for a := range authors {
			as = append(as, a)
			pubs[a]++
		}
		for i := 0; i < len(as); i++ {
			for j := i + 1; j < len(as); j++ {
				edges[canon(as[i], as[j])] = true
			}
		}
	}

	snapshot := func() *graph.Graph {
		es := make([]graph.Edge, 0, len(edges))
		for e := range edges {
			es = append(es, graph.Edge{From: e.u, To: e.v})
		}
		sort.Slice(es, func(i, j int) bool {
			if es[i].From != es[j].From {
				return es[i].From < es[j].From
			}
			return es[i].To < es[j].To
		})
		return graph.New(n, false, es)
	}

	for p := 0; p < cfg.InitialPapers; p++ {
		publish()
	}
	snaps := make([]*graph.Graph, 0, cfg.T)
	snaps = append(snaps, snapshot())
	for day := 1; day < cfg.T; day++ {
		for p := 0; p < cfg.PapersPerDay; p++ {
			publish()
		}
		snaps = append(snaps, snapshot())
	}
	return graph.NewEGS(snaps)
}
