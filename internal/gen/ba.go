// Package gen provides the dataset machinery of the reproduction: the
// paper's synthetic evolving-graph-sequence generator (§6, "Synthetic")
// built on the Barabási–Albert scale-free model, plus simulators that
// stand in for the paper's proprietary traces — WikiSim for the
// Wikipedia hyperlink EGS, DBLPSim for the DBLP co-authorship EGS, and
// PatentSim for the NBER patent-citation case study. Each simulator
// reproduces the structural statistics that drive the algorithms under
// study (sparsity, degree distribution, snapshot-to-snapshot
// similarity); see DESIGN.md §3 for the substitution rationale.
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// BarabasiAlbert generates an undirected scale-free graph with n
// vertices and approximately m edges per new vertex (so ≈ n·m edges in
// total) by preferential attachment [Barabási & Albert 1999]. The
// degree distribution follows a power law with exponent γ ≈ 3, the
// value the paper adopts.
func BarabasiAlbert(rng *xrand.Rand, n, m int) *graph.Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("gen: BarabasiAlbert needs n > m >= 1 (n=%d, m=%d)", n, m))
	}
	// targets: the "repeated nodes" urn — every edge endpoint appears
	// once, so sampling uniformly from it is degree-proportional.
	var edges []graph.Edge
	urn := make([]int, 0, 2*n*m)
	// Seed clique on the first m+1 vertices.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			edges = append(edges, graph.Edge{From: u, To: v})
			urn = append(urn, u, v)
		}
	}
	chosen := make(map[int]bool, m)
	picks := make([]int, 0, m)
	for u := m + 1; u < n; u++ {
		for k := range chosen {
			delete(chosen, k)
		}
		picks = picks[:0]
		for len(chosen) < m {
			v := urn[rng.Intn(len(urn))]
			if v != u && !chosen[v] {
				chosen[v] = true
				picks = append(picks, v)
			}
		}
		// picks preserves draw order, keeping the generator fully
		// deterministic (map iteration order is not).
		for _, v := range picks {
			edges = append(edges, graph.Edge{From: u, To: v})
			urn = append(urn, u, v)
		}
	}
	return graph.New(n, false, edges)
}

// DegreeHistogram returns counts[d] = number of vertices with degree d
// (out-degree for directed graphs). Used by tests to check the
// power-law tail of generated graphs.
func DegreeHistogram(g *graph.Graph) []int {
	maxD := 0
	for u := 0; u < g.N(); u++ {
		if d := g.OutDegree(u); d > maxD {
			maxD = d
		}
	}
	counts := make([]int, maxD+1)
	for u := 0; u < g.N(); u++ {
		counts[g.OutDegree(u)]++
	}
	return counts
}
