package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// SyntheticConfig mirrors the five parameters of the paper's EGS
// generator (§6, with the paper's defaults in comments). The paper's
// full scale (V = 50,000) is reachable by setting the fields
// accordingly; tests and default benchmarks run smaller.
type SyntheticConfig struct {
	V      int    // number of vertices                  (paper: 50,000)
	EP     int    // edges in the edge pool              (paper: 450,000)
	D      int    // average vertex degree of snapshot 1 (paper: 5)
	K      int    // ratio ∆E+/∆E−                       (paper: 4)
	DeltaE int    // ∆E = ∆E+ + ∆E− per step             (paper: 500)
	T      int    // number of snapshots                 (paper: 500)
	Seed   uint64 // PRNG seed
}

// DefaultSyntheticConfig returns a laptop-scale configuration with the
// paper's shape: the ratios EP/V, D, K, and DeltaE relative to the
// snapshot edge count match the paper's defaults.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{V: 2000, EP: 18000, D: 5, K: 4, DeltaE: 16, T: 150, Seed: 1}
}

// Validate checks internal consistency: the pool must be able to host
// the initial edge set plus the net growth over T steps.
func (c SyntheticConfig) Validate() error {
	if c.V < 3 || c.EP < c.V || c.D < 1 || c.K < 1 || c.DeltaE < c.K+1 || c.T < 1 {
		return fmt.Errorf("gen: degenerate synthetic config %+v", c)
	}
	init := c.D * c.V / 2
	plus := c.K * c.DeltaE / (c.K + 1)
	minus := c.DeltaE / (c.K + 1)
	need := init + c.T*(plus-minus)
	if need > c.EP {
		return fmt.Errorf("gen: edge pool %d too small for %d needed edges", c.EP, need)
	}
	return nil
}

// Synthetic generates an EGS with the paper's procedure:
//
//  1. Build a scale-free base graph with V vertices and EP edges via
//     the BA model; its edges form the edge pool.
//  2. Snapshot 1 = D·V/2 random pool edges (average degree D).
//  3. Each subsequent snapshot removes ∆E− = ∆E/(K+1) random edges and
//     adds ∆E+ = K·∆E/(K+1) random pool edges not currently present.
//
// Snapshots remain scale-free because uniform sampling of a scale-free
// pool preserves the attachment bias (the paper asserts the same).
func Synthetic(cfg SyntheticConfig) (*graph.EGS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	m := cfg.EP / cfg.V
	if m < 1 {
		m = 1
	}
	base := BarabasiAlbert(rng, cfg.V, m)
	pool := base.Edges()

	// Membership bitmap over pool indices; "in" holds current indices.
	inSet := make([]bool, len(pool))
	var in []int
	initEdges := cfg.D * cfg.V / 2
	if initEdges > len(pool) {
		initEdges = len(pool)
	}
	for _, idx := range rng.Perm(len(pool))[:initEdges] {
		inSet[idx] = true
		in = append(in, idx)
	}

	plus := cfg.K * cfg.DeltaE / (cfg.K + 1)
	minus := cfg.DeltaE / (cfg.K + 1)

	snapshot := func() *graph.Graph {
		es := make([]graph.Edge, len(in))
		for t, idx := range in {
			es[t] = pool[idx]
		}
		return graph.New(cfg.V, false, es)
	}

	snaps := make([]*graph.Graph, 0, cfg.T)
	snaps = append(snaps, snapshot())
	for t := 1; t < cfg.T; t++ {
		// Remove ∆E− random current edges (swap-delete).
		for r := 0; r < minus && len(in) > 0; r++ {
			p := rng.Intn(len(in))
			inSet[in[p]] = false
			in[p] = in[len(in)-1]
			in = in[:len(in)-1]
		}
		// Add ∆E+ random pool edges not currently present.
		for a := 0; a < plus; a++ {
			for tries := 0; tries < 20*len(pool); tries++ {
				idx := rng.Intn(len(pool))
				if !inSet[idx] {
					inSet[idx] = true
					in = append(in, idx)
					break
				}
			}
		}
		snaps = append(snaps, snapshot())
	}
	return graph.NewEGS(snaps)
}
