package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestBarabasiAlbertShape(t *testing.T) {
	rng := xrand.New(900)
	g := BarabasiAlbert(rng, 500, 3)
	if g.N() != 500 {
		t.Fatalf("N = %d, want 500", g.N())
	}
	// m(m+1)/2 clique edges + (n-m-1)*m attachment edges.
	want := 3*4/2 + (500-4)*3
	if g.NumEdges() != want {
		t.Errorf("edges = %d, want %d", g.NumEdges(), want)
	}
	// Scale-free tail: the maximum degree should far exceed the mean.
	hist := DegreeHistogram(g)
	maxDeg := len(hist) - 1
	mean := 2 * float64(g.NumEdges()) / float64(g.N())
	if float64(maxDeg) < 4*mean {
		t.Errorf("max degree %d too small for scale-free (mean %.1f)", maxDeg, mean)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(xrand.New(1), 200, 2)
	b := BarabasiAlbert(xrand.New(1), 200, 2)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("BA not deterministic")
	}
	for u := 0; u < a.N(); u++ {
		if a.OutDegree(u) != b.OutDegree(u) {
			t.Fatal("BA degree sequences differ across runs with same seed")
		}
	}
}

func TestSyntheticMatchesPaperShape(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.T = 20
	egs, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if egs.Len() != cfg.T || egs.N() != cfg.V {
		t.Fatalf("EGS shape %dx%d, want %dx%d", egs.Len(), egs.N(), cfg.T, cfg.V)
	}
	// Initial average degree ≈ D.
	g0 := egs.Snapshots[0]
	avgDeg := 2 * float64(g0.NumEdges()) / float64(g0.N())
	if avgDeg < float64(cfg.D)*0.8 || avgDeg > float64(cfg.D)*1.2 {
		t.Errorf("initial avg degree %.2f, want ≈ %d", avgDeg, cfg.D)
	}
	// Net growth ≈ (∆E+ − ∆E−) per step.
	plus := cfg.K * cfg.DeltaE / (cfg.K + 1)
	minus := cfg.DeltaE / (cfg.K + 1)
	wantNet := (plus - minus) * (cfg.T - 1)
	gotNet := egs.Snapshots[cfg.T-1].NumEdges() - g0.NumEdges()
	if gotNet < wantNet*8/10 || gotNet > wantNet*12/10 {
		t.Errorf("net edge growth %d, want ≈ %d", gotNet, wantNet)
	}
	// Gradual evolution: successive similarity must be high.
	if mes := egs.AvgSuccessiveMES(); mes < 0.98 {
		t.Errorf("avg successive mes %.4f, want > 0.98", mes)
	}
}

func TestSyntheticValidation(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.EP = cfg.V // far too small a pool
	cfg.D = 10
	if _, err := Synthetic(cfg); err == nil {
		t.Error("undersized pool accepted")
	}
	if _, err := Synthetic(SyntheticConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestWikiSimShape(t *testing.T) {
	cfg := DefaultWikiConfig()
	cfg.N, cfg.T = 500, 30
	cfg.InitialEdges, cfg.FinalEdges = 1400, 3450
	egs, err := WikiSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if egs.Len() != cfg.T || egs.N() != cfg.N {
		t.Fatal("EGS shape wrong")
	}
	if !egs.Snapshots[0].Directed() {
		t.Fatal("wiki graphs must be directed")
	}
	e0 := egs.Snapshots[0].NumEdges()
	eT := egs.Snapshots[cfg.T-1].NumEdges()
	if e0 < cfg.InitialEdges*9/10 || e0 > cfg.InitialEdges*11/10 {
		t.Errorf("initial edges %d, want ≈ %d", e0, cfg.InitialEdges)
	}
	if eT < e0*3/2 {
		t.Errorf("final edges %d did not grow enough from %d", eT, e0)
	}
	if mes := egs.AvgSuccessiveMES(); mes < 0.97 {
		t.Errorf("avg successive mes %.4f, want > 0.97 (paper: 0.9988)", mes)
	}
}

func TestDBLPSimShape(t *testing.T) {
	cfg := DefaultDBLPConfig()
	cfg.N, cfg.T = 600, 30
	cfg.InitialPapers, cfg.PapersPerDay = 500, 5
	egs, err := DBLPSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if egs.Snapshots[0].Directed() {
		t.Fatal("dblp graphs must be undirected")
	}
	// Monotone growth: every snapshot's edge set contains the previous.
	for i := 1; i < egs.Len(); i++ {
		prev, cur := egs.Snapshots[i-1], egs.Snapshots[i]
		if cur.NumEdges() < prev.NumEdges() {
			t.Fatalf("edge count shrank at snapshot %d", i)
		}
		for u := 0; u < prev.N(); u++ {
			for _, v := range prev.OutNeighbors(u) {
				if !cur.HasEdge(u, v) {
					t.Fatalf("edge (%d,%d) disappeared at snapshot %d", u, v, i)
				}
			}
		}
	}
	// Symmetric matrices derive from it.
	a := graph.SymmetricWalkMatrix(0.9)(egs.Snapshots[egs.Len()-1])
	if !a.IsSymmetric(1e-15) {
		t.Error("derived matrix not symmetric")
	}
	if mes := egs.AvgSuccessiveMES(); mes < 0.97 {
		t.Errorf("avg successive mes %.4f, want > 0.97 (paper: 0.9986)", mes)
	}
}

func TestPatentSimShape(t *testing.T) {
	cfg := DefaultPatentConfig()
	cfg.PatentsPerYear, cfg.Years = 5, 10
	data, err := PatentSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(cfg.Companies) * cfg.PatentsPerYear * cfg.Years
	if data.EGS.N() != n || data.EGS.Len() != cfg.Years {
		t.Fatal("patent EGS shape wrong")
	}
	// Citations must point to already-granted (older or same-year) patents.
	last := data.EGS.Snapshots[cfg.Years-1]
	for u := 0; u < n; u++ {
		for _, v := range last.OutNeighbors(u) {
			if data.GrantYear[v] > data.GrantYear[u] {
				t.Fatalf("patent %d (year %d) cites future patent %d (year %d)",
					u, data.GrantYear[u], v, data.GrantYear[v])
			}
		}
	}
	// Ungranted patents are isolated in early snapshots.
	first := data.EGS.Snapshots[0]
	for v := 0; v < n; v++ {
		if data.GrantYear[v] > 0 && (first.OutDegree(v) > 0 || first.InDegree(v) > 0) {
			t.Fatalf("future patent %d has edges in snapshot 0", v)
		}
	}
	// The riser's citation share toward the subject grows over time.
	early := riserSubjectShare(data, 1)
	late := riserSubjectShare(data, cfg.Years-1)
	if late <= early {
		t.Errorf("riser bias not increasing: early %.3f late %.3f", early, late)
	}
}

// riserSubjectShare computes the fraction of the riser company's
// citations granted in a given year that point at subject patents.
func riserSubjectShare(data *PatentData, year int) float64 {
	rising, subject := 2, 0
	total, toSubject := 0, 0
	last := data.EGS.Snapshots[data.EGS.Len()-1]
	for u := 0; u < last.N(); u++ {
		if data.Company[u] != rising || data.GrantYear[u] != year {
			continue
		}
		for _, v := range last.OutNeighbors(u) {
			total++
			if data.Company[v] == subject {
				toSubject++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(toSubject) / float64(total)
}
