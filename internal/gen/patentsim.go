package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// PatentConfig parameterizes the patent-citation case-study simulator
// (paper §7: NBER patent data 1975–1999, yearly snapshots, company
// labels, IBM as the analysis subject). One company — RisingCompany —
// is planted with a citation dependency on the subject company that
// strengthens year over year; the case-study pipeline must recover the
// resulting rank climb (the paper's Harris, Figure 11).
type PatentConfig struct {
	Companies      []string // Companies[0] is the subject ("IBM")
	RisingCompany  int      // index of the planted riser ("HARRIS")
	PatentsPerYear int      // patents granted per company per year
	Years          int      // number of yearly snapshots (paper: 21)
	CitesPerPatent int      // citations from each new patent
	SelfCiteProb   float64  // probability a citation stays in-company
	Seed           uint64
}

// DefaultPatentConfig returns a small but structurally faithful setup.
func DefaultPatentConfig() PatentConfig {
	return PatentConfig{
		Companies:      []string{"IBM", "CDC", "HARRIS", "INTEL", "MOTOROLA", "NATIONAL", "SONY", "XEROX"},
		RisingCompany:  2,
		PatentsPerYear: 12,
		Years:          21,
		CitesPerPatent: 5,
		SelfCiteProb:   0.4,
		Seed:           17,
	}
}

// PatentData is the generated case-study dataset: the EGS of yearly
// citation graphs (directed, edges from citing to cited patent) plus
// the company of every patent node and each patent's grant year.
// Patents not yet granted in year y are isolated vertices of snapshot
// y, keeping the vertex set fixed across the sequence as an EGS
// requires.
type PatentData struct {
	EGS       *graph.EGS
	Company   []int    // Company[v] = company index of patent v
	GrantYear []int    // GrantYear[v] = year index when v appears
	Names     []string // company names
}

// PatentSim generates the case-study data. Citations point from newer
// to older patents. Every company mostly cites itself and the subject
// company in fixed proportions — except the riser, whose propensity to
// cite the subject grows linearly with time, planting the Figure-11
// trend.
func PatentSim(cfg PatentConfig) (*PatentData, error) {
	nc := len(cfg.Companies)
	if nc < 2 || cfg.RisingCompany <= 0 || cfg.RisingCompany >= nc ||
		cfg.Years < 2 || cfg.PatentsPerYear < 1 || cfg.CitesPerPatent < 1 {
		return nil, fmt.Errorf("gen: bad patent config %+v", cfg)
	}
	rng := xrand.New(cfg.Seed)
	n := nc * cfg.PatentsPerYear * cfg.Years

	company := make([]int, n)
	grantYear := make([]int, n)
	byCompany := make([][]int, nc) // granted patents so far, per company
	var granted []int              // all granted patents so far

	id := 0
	assign := func(c, year int) int {
		v := id
		id++
		company[v] = c
		grantYear[v] = year
		return v
	}

	var edges []graph.Edge
	snaps := make([]*graph.Graph, 0, cfg.Years)

	for year := 0; year < cfg.Years; year++ {
		riserBias := float64(year) / float64(cfg.Years-1) // 0 → 1 over the window
		for c := 0; c < nc; c++ {
			for p := 0; p < cfg.PatentsPerYear; p++ {
				v := assign(c, year)
				if len(granted) > 0 {
					for cite := 0; cite < cfg.CitesPerPatent; cite++ {
						var pool []int
						switch {
						case c == cfg.RisingCompany:
							// The riser starts inward-looking (low
							// proximity to the subject) and shifts its
							// citations toward the subject over time —
							// the dependency trend Figure 11 surfaces.
							if rng.Float64() < riserBias {
								pool = byCompany[0]
							} else if rng.Float64() < 0.85 {
								pool = byCompany[c]
							} else {
								pool = granted
							}
						case rng.Float64() < cfg.SelfCiteProb:
							pool = byCompany[c]
						default:
							pool = granted
						}
						if len(pool) == 0 {
							pool = granted
						}
						w := pool[rng.Intn(len(pool))]
						if w != v {
							edges = append(edges, graph.Edge{From: v, To: w})
						}
					}
				}
				byCompany[c] = append(byCompany[c], v)
				granted = append(granted, v)
			}
		}
		es := append([]graph.Edge(nil), edges...)
		sort.Slice(es, func(i, j int) bool {
			if es[i].From != es[j].From {
				return es[i].From < es[j].From
			}
			return es[i].To < es[j].To
		})
		snaps = append(snaps, graph.New(n, true, es))
	}
	egs, err := graph.NewEGS(snaps)
	if err != nil {
		return nil, err
	}
	return &PatentData{EGS: egs, Company: company, GrantYear: grantYear, Names: cfg.Companies}, nil
}
