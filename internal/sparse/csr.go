package sparse

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CSR is an immutable square sparse matrix in compressed-sparse-row
// format. Rows are sorted by column index and contain no duplicates.
// Explicit zeros are permitted and participate in the sparsity pattern.
type CSR struct {
	n      int
	rowPtr []int
	colIdx []int
	vals   []float64
}

// NewCSRFromEntries builds a CSR directly from an entry list, summing
// duplicates.
func NewCSRFromEntries(n int, entries []Entry) *CSR {
	c := NewCOO(n)
	c.entries = append(c.entries, entries...)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of range [0,%d)", e.Row, e.Col, n))
		}
	}
	return c.ToCSR()
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *CSR {
	rowPtr := make([]int, n+1)
	colIdx := make([]int, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = i + 1
		colIdx[i] = i
		vals[i] = 1
	}
	return &CSR{n: n, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// N returns the matrix dimension.
func (m *CSR) N() int { return m.n }

// NNZ returns the number of stored entries (pattern size |sp(A)|,
// including explicit zeros).
func (m *CSR) NNZ() int { return len(m.colIdx) }

// Row returns the column indices and values of row i. The returned
// slices alias internal storage and must not be modified.
func (m *CSR) Row(i int) ([]int, []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// At returns the value at (i, j), or 0 if the position is not stored.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Has reports whether (i, j) is in the stored pattern.
func (m *CSR) Has(i, j int) bool {
	cols, _ := m.Row(i)
	k := sort.SearchInts(cols, j)
	return k < len(cols) && cols[k] == j
}

// Pattern returns the sparsity pattern sp(A) of the matrix. The pattern
// shares the matrix's index storage.
func (m *CSR) Pattern() *Pattern {
	return &Pattern{n: m.n, rowPtr: m.rowPtr, colIdx: m.colIdx}
}

// Transpose returns the transpose as a new CSR.
func (m *CSR) Transpose() *CSR {
	n := m.n
	cnt := make([]int, n+1)
	for _, j := range m.colIdx {
		cnt[j+1]++
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	colIdx := make([]int, len(m.colIdx))
	vals := make([]float64, len(m.vals))
	next := make([]int, n)
	copy(next, cnt[:n])
	for i := 0; i < n; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := m.colIdx[k]
			p := next[j]
			colIdx[p] = i
			vals[p] = m.vals[k]
			next[j]++
		}
	}
	// Rows of the transpose come out already sorted because we scanned
	// source rows in increasing order.
	return &CSR{n: n, rowPtr: cnt, colIdx: colIdx, vals: vals}
}

// Permute returns A^O = P·A·Q for the ordering o, i.e. the matrix B
// with B(i, j) = A(o.Row[i], o.Col[j]).
func (m *CSR) Permute(o Ordering) *CSR {
	return m.PermuteInv(o, o.Col.Inverse())
}

// PermuteInv is Permute with a caller-supplied inverse column
// permutation colNewOf (old→new, i.e. o.Col.Inverse()). Cluster loops
// that permute a whole run of matrices by one shared ordering compute
// the inverse once instead of once per matrix.
func (m *CSR) PermuteInv(o Ordering, colNewOf Perm) *CSR {
	n := m.n
	if len(o.Row) != n || len(o.Col) != n || len(colNewOf) != n {
		panic("sparse: ordering dimension mismatch")
	}
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		old := o.Row[i]
		rowPtr[i+1] = rowPtr[i] + (m.rowPtr[old+1] - m.rowPtr[old])
	}
	colIdx := make([]int, len(m.colIdx))
	vals := make([]float64, len(m.vals))
	for i := 0; i < n; i++ {
		old := o.Row[i]
		lo, hi := m.rowPtr[old], m.rowPtr[old+1]
		w := rowPtr[i]
		seg := colIdx[w : w+(hi-lo)]
		segv := vals[w : w+(hi-lo)]
		for k := lo; k < hi; k++ {
			seg[k-lo] = colNewOf[m.colIdx[k]]
			segv[k-lo] = m.vals[k]
		}
		sort.Sort(&pairSorter{seg, segv})
	}
	return &CSR{n: n, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// MulVec computes y = A·x into a new slice.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.n {
		panic("sparse: MulVec dimension mismatch")
	}
	y := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		s := 0.0
		for k := lo; k < hi; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
	return y
}

// Mul computes the sparse matrix product A·B (classic Gustavson
// row-by-row SpGEMM with a dense accumulator).
func (m *CSR) Mul(b *CSR) *CSR {
	if m.n != b.n {
		panic("sparse: Mul dimension mismatch")
	}
	n := m.n
	acc := make([]float64, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	rowPtr := make([]int, n+1)
	var colIdx []int
	var vals []float64
	rowCols := make([]int, 0, 64)
	for i := 0; i < n; i++ {
		rowCols = rowCols[:0]
		alo, ahi := m.rowPtr[i], m.rowPtr[i+1]
		for ka := alo; ka < ahi; ka++ {
			k := m.colIdx[ka]
			av := m.vals[ka]
			blo, bhi := b.rowPtr[k], b.rowPtr[k+1]
			for kb := blo; kb < bhi; kb++ {
				j := b.colIdx[kb]
				if mark[j] != i {
					mark[j] = i
					acc[j] = 0
					rowCols = append(rowCols, j)
				}
				acc[j] += av * b.vals[kb]
			}
		}
		sort.Ints(rowCols)
		for _, j := range rowCols {
			colIdx = append(colIdx, j)
			vals = append(vals, acc[j])
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR{n: n, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// Scale returns s·A as a new matrix sharing the pattern storage.
func (m *CSR) Scale(s float64) *CSR {
	vals := make([]float64, len(m.vals))
	for i, v := range m.vals {
		vals[i] = s * v
	}
	return &CSR{n: m.n, rowPtr: m.rowPtr, colIdx: m.colIdx, vals: vals}
}

// Add returns A + B as a new matrix. The result pattern is the union of
// the operand patterns (explicit zeros from cancellation are kept).
func (m *CSR) Add(b *CSR) *CSR {
	if m.n != b.n {
		panic("sparse: Add dimension mismatch")
	}
	n := m.n
	rowPtr := make([]int, n+1)
	var colIdx []int
	var vals []float64
	for i := 0; i < n; i++ {
		ac, av := m.Row(i)
		bc, bv := b.Row(i)
		ka, kb := 0, 0
		for ka < len(ac) || kb < len(bc) {
			switch {
			case kb >= len(bc) || (ka < len(ac) && ac[ka] < bc[kb]):
				colIdx = append(colIdx, ac[ka])
				vals = append(vals, av[ka])
				ka++
			case ka >= len(ac) || bc[kb] < ac[ka]:
				colIdx = append(colIdx, bc[kb])
				vals = append(vals, bv[kb])
				kb++
			default:
				colIdx = append(colIdx, ac[ka])
				vals = append(vals, av[ka]+bv[kb])
				ka++
				kb++
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR{n: n, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// Sub returns A − B as a new matrix (union pattern).
func (m *CSR) Sub(b *CSR) *CSR { return m.Add(b.Scale(-1)) }

// Delta returns the entry list of B − A restricted to positions where
// the two matrices actually differ. This is the ∆A handed to Bennett's
// algorithm when stepping from A to B in an evolving matrix sequence.
func Delta(a, b *CSR) []Entry {
	if a.n != b.n {
		panic("sparse: Delta dimension mismatch")
	}
	var out []Entry
	for i := 0; i < a.n; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		ka, kb := 0, 0
		for ka < len(ac) || kb < len(bc) {
			switch {
			case kb >= len(bc) || (ka < len(ac) && ac[ka] < bc[kb]):
				if av[ka] != 0 {
					out = append(out, Entry{i, ac[ka], -av[ka]})
				}
				ka++
			case ka >= len(ac) || bc[kb] < ac[ka]:
				if bv[kb] != 0 {
					out = append(out, Entry{i, bc[kb], bv[kb]})
				}
				kb++
			default:
				if d := bv[kb] - av[ka]; d != 0 {
					out = append(out, Entry{i, ac[ka], d})
				}
				ka++
				kb++
			}
		}
	}
	return out
}

// Dense expands the matrix into a dense row-major n×n slice-of-slices.
// Intended for tests and tiny examples only.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.n)
	for i := range d {
		d[i] = make([]float64, m.n)
		cols, vals := m.Row(i)
		for k, j := range cols {
			d[i][j] = vals[k]
		}
	}
	return d
}

// EqualApprox reports whether A and B agree entrywise within tol
// (comparing values, not patterns: an explicit zero equals an absent
// entry).
func (m *CSR) EqualApprox(b *CSR, tol float64) bool {
	if m.n != b.n {
		return false
	}
	for i := 0; i < m.n; i++ {
		ac, av := m.Row(i)
		bc, bv := b.Row(i)
		ka, kb := 0, 0
		for ka < len(ac) || kb < len(bc) {
			switch {
			case kb >= len(bc) || (ka < len(ac) && ac[ka] < bc[kb]):
				if math.Abs(av[ka]) > tol {
					return false
				}
				ka++
			case ka >= len(ac) || bc[kb] < ac[ka]:
				if math.Abs(bv[kb]) > tol {
					return false
				}
				kb++
			default:
				if math.Abs(av[ka]-bv[kb]) > tol {
					return false
				}
				ka++
				kb++
			}
		}
	}
	return true
}

// IsSymmetric reports whether the matrix equals its transpose within
// tol on values (pattern asymmetries with zero values are tolerated).
func (m *CSR) IsSymmetric(tol float64) bool {
	return m.EqualApprox(m.Transpose(), tol)
}

// String renders small matrices for debugging; large matrices render as
// a summary line.
func (m *CSR) String() string {
	if m.n > 16 {
		return fmt.Sprintf("CSR{n=%d nnz=%d}", m.n, m.NNZ())
	}
	var sb strings.Builder
	d := m.Dense()
	for _, row := range d {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%7.3f", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
