package sparse

import "math"

// Dot returns the inner product of two equal-length dense vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the 1-norm (sum of absolute values) of x.
func Norm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInfDiff returns max_i |a[i] − b[i]|, the usual convergence and
// accuracy metric for iterative solvers and factor-update tests.
func NormInfDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: NormInfDiff length mismatch")
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Scale multiplies x by s in place and returns x.
func Scale(x []float64, s float64) []float64 {
	for i := range x {
		x[i] *= s
	}
	return x
}

// Basis returns the length-n standard basis vector e_u scaled by v.
func Basis(n, u int, v float64) []float64 {
	x := make([]float64, n)
	x[u] = v
	return x
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}
