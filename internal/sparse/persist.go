package sparse

import "fmt"

// This file is the persistence face of the sparse containers: raw
// array access for serialization and validating constructors for
// deserialization. The containers themselves stay immutable — a
// restored object is indistinguishable from the one that was written
// (the store codec's round-trip tests pin this down bit for bit).

// Arrays exposes the CSR's internal storage (row pointers, column
// indices, values). The slices alias the matrix and must not be
// modified.
func (m *CSR) Arrays() (rowPtr, colIdx []int, vals []float64) {
	return m.rowPtr, m.colIdx, m.vals
}

// CSRFromArrays rebuilds a CSR from its raw storage, taking ownership
// of the slices. It validates the structural invariants (monotone row
// pointers, sorted duplicate-free in-range columns) so corrupt or
// hostile input yields an error, never a matrix that panics later.
func CSRFromArrays(n int, rowPtr, colIdx []int, vals []float64) (*CSR, error) {
	if err := validateCSRArrays(n, rowPtr, colIdx); err != nil {
		return nil, err
	}
	if len(vals) != len(colIdx) {
		return nil, fmt.Errorf("sparse: %d values for %d column indices", len(vals), len(colIdx))
	}
	return &CSR{n: n, rowPtr: rowPtr, colIdx: colIdx, vals: vals}, nil
}

// PatternArrays exposes the pattern's internal storage. The slices
// alias the pattern and must not be modified.
func (p *Pattern) PatternArrays() (rowPtr, colIdx []int) {
	return p.rowPtr, p.colIdx
}

// PatternFromArrays rebuilds a Pattern from its raw storage, taking
// ownership of the slices and validating the same invariants as
// CSRFromArrays.
func PatternFromArrays(n int, rowPtr, colIdx []int) (*Pattern, error) {
	if err := validateCSRArrays(n, rowPtr, colIdx); err != nil {
		return nil, err
	}
	return &Pattern{n: n, rowPtr: rowPtr, colIdx: colIdx}, nil
}

// validateCSRArrays checks the shared compressed-row invariants.
func validateCSRArrays(n int, rowPtr, colIdx []int) error {
	if n < 0 {
		return fmt.Errorf("sparse: negative dimension %d", n)
	}
	if len(rowPtr) != n+1 {
		return fmt.Errorf("sparse: rowPtr length %d for dimension %d", len(rowPtr), n)
	}
	if rowPtr[0] != 0 {
		return fmt.Errorf("sparse: rowPtr must start at 0")
	}
	for i := 0; i < n; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			return fmt.Errorf("sparse: rowPtr not monotone at row %d", i)
		}
	}
	if rowPtr[n] != len(colIdx) {
		return fmt.Errorf("sparse: rowPtr end %d does not match %d column indices", rowPtr[n], len(colIdx))
	}
	for i := 0; i < n; i++ {
		prev := -1
		for _, j := range colIdx[rowPtr[i]:rowPtr[i+1]] {
			if j < 0 || j >= n {
				return fmt.Errorf("sparse: column %d of row %d outside [0,%d)", j, i, n)
			}
			if j <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly ascending", i)
			}
			prev = j
		}
	}
	return nil
}
