package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestCOOToCSRMergesDuplicates(t *testing.T) {
	c := NewCOO(3)
	c.Add(0, 1, 2)
	c.Add(0, 1, 3)
	c.Add(2, 0, -1)
	c.Add(1, 1, 4)
	m := c.ToCSR()
	if got := m.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v, want 5", got)
	}
	if got := m.At(2, 0); got != -1 {
		t.Errorf("At(2,0) = %v, want -1", got)
	}
	if got := m.At(1, 1); got != 4 {
		t.Errorf("At(1,1) = %v, want 4", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
}

func TestCOOKeepsExplicitZeros(t *testing.T) {
	c := NewCOO(2)
	c.Add(0, 1, 0)
	m := c.ToCSR()
	if !m.Has(0, 1) {
		t.Error("explicit zero dropped from pattern")
	}
	if m.At(0, 1) != 0 {
		t.Errorf("At(0,1) = %v, want 0", m.At(0, 1))
	}
}

func TestCOOCancellationKept(t *testing.T) {
	c := NewCOO(2)
	c.Add(1, 0, 5)
	c.Add(1, 0, -5)
	m := c.ToCSR()
	if !m.Has(1, 0) {
		t.Error("cancelled duplicate should remain in the pattern as an explicit zero")
	}
}

func TestCSRRowSorted(t *testing.T) {
	c := NewCOO(4)
	for _, j := range []int{3, 1, 0, 2} {
		c.Add(1, j, float64(j))
	}
	m := c.ToCSR()
	cols, vals := m.Row(1)
	for k := 1; k < len(cols); k++ {
		if cols[k-1] >= cols[k] {
			t.Fatalf("row not sorted: %v", cols)
		}
	}
	for k, j := range cols {
		if vals[k] != float64(j) {
			t.Errorf("value misaligned at col %d: %v", j, vals[k])
		}
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := m.At(i, j); got != want {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func randomCSR(rng *xrand.Rand, n, nnz int) *CSR {
	c := NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2+rng.Float64()) // nonzero diagonal
	}
	for k := 0; k < nnz; k++ {
		c.Add(rng.Intn(n), rng.Intn(n), rng.Float64()*2-1)
	}
	return c.ToCSR()
}

func TestTransposeInvolution(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 20; trial++ {
		m := randomCSR(rng, 1+rng.Intn(30), rng.Intn(120))
		tt := m.Transpose().Transpose()
		if !m.EqualApprox(tt, 0) {
			t.Fatalf("transpose not an involution (trial %d)", trial)
		}
	}
}

func TestTransposeEntry(t *testing.T) {
	rng := xrand.New(8)
	m := randomCSR(rng, 20, 80)
	mt := m.Transpose()
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPermuteMatchesDense(t *testing.T) {
	rng := xrand.New(9)
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		m := randomCSR(rng, n, 3*n)
		o := Ordering{Row: Perm(rng.Perm(n)), Col: Perm(rng.Perm(n))}
		p := m.Permute(o)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got, want := p.At(i, j), m.At(o.Row[i], o.Col[j]); got != want {
					t.Fatalf("Permute(%d,%d) = %v, want %v", i, j, got, want)
				}
			}
		}
	}
}

func TestPermuteIdentityIsNoop(t *testing.T) {
	rng := xrand.New(10)
	m := randomCSR(rng, 15, 40)
	p := m.Permute(IdentityOrdering(15))
	if !m.EqualApprox(p, 0) {
		t.Error("identity ordering changed the matrix")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := xrand.New(11)
	n := 25
	m := randomCSR(rng, n, 100)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	got := m.MulVec(x)
	d := m.Dense()
	for i := 0; i < n; i++ {
		want := 0.0
		for j := 0; j < n; j++ {
			want += d[i][j] * x[j]
		}
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestMulAgainstDense(t *testing.T) {
	rng := xrand.New(12)
	n := 18
	a := randomCSR(rng, n, 60)
	b := randomCSR(rng, n, 60)
	got := a.Mul(b).Dense()
	da, db := a.Dense(), b.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for k := 0; k < n; k++ {
				want += da[i][k] * db[k][j]
			}
			if math.Abs(got[i][j]-want) > 1e-10 {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, got[i][j], want)
			}
		}
	}
}

func TestAddSub(t *testing.T) {
	rng := xrand.New(13)
	n := 20
	a := randomCSR(rng, n, 70)
	b := randomCSR(rng, n, 70)
	sum := a.Add(b)
	diff := sum.Sub(b)
	if !diff.EqualApprox(a, 1e-12) {
		t.Error("(a+b)-b != a")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	rng := xrand.New(14)
	n := 20
	a := randomCSR(rng, n, 60)
	b := randomCSR(rng, n, 60)
	d := Delta(a, b)
	c := NewCOO(n)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			c.Add(i, j, vals[k])
		}
	}
	for _, e := range d {
		c.Add(e.Row, e.Col, e.Val)
	}
	if got := c.ToCSR(); !got.EqualApprox(b, 1e-12) {
		t.Error("a + Delta(a,b) != b")
	}
}

func TestDeltaEmptyForEqual(t *testing.T) {
	rng := xrand.New(15)
	a := randomCSR(rng, 12, 40)
	if d := Delta(a, a); len(d) != 0 {
		t.Errorf("Delta(a,a) has %d entries, want 0", len(d))
	}
}

func TestScale(t *testing.T) {
	rng := xrand.New(16)
	a := randomCSR(rng, 10, 30)
	s := a.Scale(-2)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if s.At(i, j) != -2*a.At(i, j) {
				t.Fatalf("Scale mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	c := NewCOO(3)
	c.Add(0, 1, 2)
	c.Add(1, 0, 2)
	c.Add(2, 2, 1)
	if !c.ToCSR().IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	c.Add(0, 2, 1)
	if c.ToCSR().IsSymmetric(0) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

// Property: Permute is invertible — permuting by O then by the inverse
// ordering recovers the original matrix.
func TestPermuteInverseProperty(t *testing.T) {
	rng := xrand.New(17)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(25)
		m := randomCSR(r, n, 4*n)
		o := Ordering{Row: Perm(r.Perm(n)), Col: Perm(r.Perm(n))}
		inv := Ordering{Row: o.Row.Inverse(), Col: o.Col.Inverse()}
		back := m.Permute(o).Permute(inv)
		return m.EqualApprox(back, 0)
	}
	cfg := &quick.Config{MaxCount: 30, Values: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPermuteInvMatchesPermute(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(20)
		m := randomCSR(rng, n, 3*n)
		o := Ordering{Row: Perm(rng.Perm(n)), Col: Perm(rng.Perm(n))}
		inv := o.Col.Inverse()
		want := m.Permute(o)
		got := m.PermuteInv(o, inv)
		if !want.EqualApprox(got, 0) {
			t.Fatalf("PermuteInv differs from Permute")
		}
	}
}
