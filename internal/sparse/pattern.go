package sparse

import "sort"

// Pattern is an immutable sparsity pattern: the set sp(A) of (row, col)
// positions holding explicit entries, stored row-compressed with sorted
// column indices.
type Pattern struct {
	n      int
	rowPtr []int
	colIdx []int
}

// NewPattern builds a pattern from coordinate pairs (duplicates are
// merged).
func NewPattern(n int, coords []Coord) *Pattern {
	rows := make([][]int, n)
	for _, c := range coords {
		rows[c.Row] = append(rows[c.Row], c.Col)
	}
	rowPtr := make([]int, n+1)
	var colIdx []int
	for i := 0; i < n; i++ {
		sort.Ints(rows[i])
		prev := -1
		for _, j := range rows[i] {
			if j != prev {
				colIdx = append(colIdx, j)
				prev = j
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &Pattern{n: n, rowPtr: rowPtr, colIdx: colIdx}
}

// Coord is a (row, col) position.
type Coord struct{ Row, Col int }

// N returns the pattern's matrix dimension.
func (p *Pattern) N() int { return p.n }

// Size returns |sp(A)|, the number of positions in the pattern.
func (p *Pattern) Size() int { return len(p.colIdx) }

// Row returns the sorted column indices of row i; the slice aliases
// internal storage.
func (p *Pattern) Row(i int) []int {
	return p.colIdx[p.rowPtr[i]:p.rowPtr[i+1]]
}

// Has reports whether (i, j) is in the pattern.
func (p *Pattern) Has(i, j int) bool {
	row := p.Row(i)
	k := sort.SearchInts(row, j)
	return k < len(row) && row[k] == j
}

// Union returns the set union of two patterns.
func (p *Pattern) Union(q *Pattern) *Pattern {
	if p.n != q.n {
		panic("sparse: Pattern.Union dimension mismatch")
	}
	rowPtr := make([]int, p.n+1)
	colIdx := make([]int, 0, max(len(p.colIdx), len(q.colIdx)))
	for i := 0; i < p.n; i++ {
		a, b := p.Row(i), q.Row(i)
		ka, kb := 0, 0
		for ka < len(a) || kb < len(b) {
			switch {
			case kb >= len(b) || (ka < len(a) && a[ka] < b[kb]):
				colIdx = append(colIdx, a[ka])
				ka++
			case ka >= len(a) || b[kb] < a[ka]:
				colIdx = append(colIdx, b[kb])
				kb++
			default:
				colIdx = append(colIdx, a[ka])
				ka++
				kb++
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &Pattern{n: p.n, rowPtr: rowPtr, colIdx: colIdx}
}

// Intersect returns the set intersection of two patterns.
func (p *Pattern) Intersect(q *Pattern) *Pattern {
	if p.n != q.n {
		panic("sparse: Pattern.Intersect dimension mismatch")
	}
	rowPtr := make([]int, p.n+1)
	var colIdx []int
	for i := 0; i < p.n; i++ {
		a, b := p.Row(i), q.Row(i)
		ka, kb := 0, 0
		for ka < len(a) && kb < len(b) {
			switch {
			case a[ka] < b[kb]:
				ka++
			case b[kb] < a[ka]:
				kb++
			default:
				colIdx = append(colIdx, a[ka])
				ka++
				kb++
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &Pattern{n: p.n, rowPtr: rowPtr, colIdx: colIdx}
}

// IntersectSize returns |sp(P) ∩ sp(Q)| without materializing the
// intersection.
func (p *Pattern) IntersectSize(q *Pattern) int {
	if p.n != q.n {
		panic("sparse: Pattern.IntersectSize dimension mismatch")
	}
	total := 0
	for i := 0; i < p.n; i++ {
		a, b := p.Row(i), q.Row(i)
		ka, kb := 0, 0
		for ka < len(a) && kb < len(b) {
			switch {
			case a[ka] < b[kb]:
				ka++
			case b[kb] < a[ka]:
				kb++
			default:
				total++
				ka++
				kb++
			}
		}
	}
	return total
}

// Subset reports whether every position of p is also in q.
func (p *Pattern) Subset(q *Pattern) bool {
	return p.IntersectSize(q) == p.Size()
}

// Equal reports set equality of two patterns.
func (p *Pattern) Equal(q *Pattern) bool {
	if p.n != q.n || p.Size() != q.Size() {
		return false
	}
	for i := range p.colIdx {
		if p.colIdx[i] != q.colIdx[i] {
			return false
		}
	}
	for i := 0; i <= p.n; i++ {
		if p.rowPtr[i] != q.rowPtr[i] {
			return false
		}
	}
	return true
}

// Coords returns all positions of the pattern in row-major order.
func (p *Pattern) Coords() []Coord {
	out := make([]Coord, 0, p.Size())
	for i := 0; i < p.n; i++ {
		for _, j := range p.Row(i) {
			out = append(out, Coord{i, j})
		}
	}
	return out
}

// Permute returns the pattern of P·A·Q for ordering o, mirroring
// CSR.Permute.
func (p *Pattern) Permute(o Ordering) *Pattern {
	colNewOf := o.Col.Inverse()
	rowPtr := make([]int, p.n+1)
	colIdx := make([]int, 0, p.Size())
	for i := 0; i < p.n; i++ {
		old := o.Row[i]
		row := p.Row(old)
		start := len(colIdx)
		for _, j := range row {
			colIdx = append(colIdx, colNewOf[j])
		}
		sort.Ints(colIdx[start:])
		rowPtr[i+1] = len(colIdx)
	}
	return &Pattern{n: p.n, rowPtr: rowPtr, colIdx: colIdx}
}

// MES computes the matrix edit similarity of Definition 6:
//
//	mes(Aa, Ab) = 2·|sp(Aa) ∩ sp(Ab)| / (|sp(Aa)| + |sp(Ab)|)
//
// It is 1 for identical patterns and 0 for disjoint ones. Two empty
// patterns are defined to have similarity 1.
func MES(a, b *Pattern) float64 {
	sa, sb := a.Size(), b.Size()
	if sa+sb == 0 {
		return 1
	}
	return 2 * float64(a.IntersectSize(b)) / float64(sa+sb)
}
