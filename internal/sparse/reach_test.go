package sparse

import (
	"reflect"
	"sort"
	"testing"
)

// chainSucc builds a succ function from an explicit adjacency map.
func chainSucc(adj map[int][]int) func(int) []int {
	return func(j int) []int { return adj[j] }
}

func TestReachBasic(t *testing.T) {
	// 0 → 2 → 5, 1 → 2, 3 isolated, 4 → 5.
	adj := map[int][]int{0: {2}, 1: {2}, 2: {5}, 4: {5}}
	var ws ReachWorkspace

	got, ok := ws.Reach(6, []int{0}, chainSucc(adj), 0)
	if !ok || !reflect.DeepEqual(got, []int{0, 2, 5}) {
		t.Fatalf("reach from 0 = %v (ok=%v), want [0 2 5]", got, ok)
	}
	got, ok = ws.Reach(6, []int{3}, chainSucc(adj), 0)
	if !ok || !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("reach from isolated 3 = %v, want [3]", got)
	}
	// Multiple seeds, overlapping closures, deduplicated.
	got, ok = ws.Reach(6, []int{1, 4, 1}, chainSucc(adj), 0)
	if !ok || !reflect.DeepEqual(got, []int{1, 2, 4, 5}) {
		t.Fatalf("reach from {1,4} = %v, want [1 2 4 5]", got)
	}
}

func TestReachMaxAborts(t *testing.T) {
	// A path 0 → 1 → 2 → … → 9: reach from 0 is all 10 vertices.
	adj := map[int][]int{}
	for i := 0; i < 9; i++ {
		adj[i] = []int{i + 1}
	}
	var ws ReachWorkspace
	if _, ok := ws.Reach(10, []int{0}, chainSucc(adj), 4); ok {
		t.Fatal("reach of 10 vertices reported within cap 4")
	}
	if got, ok := ws.Reach(10, []int{0}, chainSucc(adj), 10); !ok || len(got) != 10 {
		t.Fatalf("reach at exactly the cap failed: %v ok=%v", got, ok)
	}
	// Workspace must stay usable after an abort.
	if got, ok := ws.Reach(10, []int{7}, chainSucc(adj), 0); !ok || !reflect.DeepEqual(got, []int{7, 8, 9}) {
		t.Fatalf("reach after abort = %v, want [7 8 9]", got)
	}
}

func TestReachSortedIsTopologicalForLowerTriangular(t *testing.T) {
	// Lower-triangular column graph: every edge j → i has i > j, so
	// the sorted reach must list every predecessor before its
	// successors.
	adj := map[int][]int{1: {3, 6}, 3: {4}, 4: {6, 8}, 6: {7}}
	var ws ReachWorkspace
	got, ok := ws.Reach(9, []int{1}, chainSucc(adj), 0)
	if !ok {
		t.Fatal("unexpected abort")
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("reach %v not sorted", got)
	}
	pos := map[int]int{}
	for k, v := range got {
		pos[v] = k
	}
	for j, succs := range adj {
		if _, in := pos[j]; !in {
			continue
		}
		for _, i := range succs {
			if pos[i] <= pos[j] {
				t.Fatalf("edge %d→%d violates topological order in %v", j, i, got)
			}
		}
	}
}

func TestReachEpochReuse(t *testing.T) {
	// Many reuses of one workspace across different dimensions must not
	// leak visited marks between calls.
	adj := map[int][]int{0: {1}, 1: {2}}
	var ws ReachWorkspace
	for iter := 0; iter < 100; iter++ {
		n := 3 + iter%5
		got, ok := ws.Reach(n, []int{0}, chainSucc(adj), 0)
		if !ok || !reflect.DeepEqual(got, []int{0, 1, 2}) {
			t.Fatalf("iter %d: reach = %v", iter, got)
		}
	}
}
