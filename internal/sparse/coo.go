package sparse

import (
	"fmt"
	"sort"
)

// Entry is a single explicit matrix entry in coordinate form.
type Entry struct {
	Row, Col int
	Val      float64
}

// COO is a mutable coordinate-format builder for sparse matrices.
// Duplicate (row, col) pairs accumulate additively, matching the usual
// finite-element/graph construction convention. Convert to CSR for all
// read access.
type COO struct {
	n       int
	entries []Entry
}

// NewCOO returns an empty n-by-n builder.
func NewCOO(n int) *COO {
	if n < 0 {
		panic("sparse: negative dimension")
	}
	return &COO{n: n}
}

// N returns the matrix dimension.
func (c *COO) N() int { return c.n }

// Len returns the number of explicit (possibly duplicate) entries.
func (c *COO) Len() int { return len(c.entries) }

// Add accumulates v at (i, j). Zero values are kept as explicit entries
// so callers can force a position into the sparsity pattern.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of range [0,%d)", i, j, c.n))
	}
	c.entries = append(c.entries, Entry{i, j, v})
}

// ToCSR compacts the builder into an immutable CSR matrix, summing
// duplicates. Entries that sum to exactly zero are retained in the
// pattern (explicit zeros), because evolving-matrix deltas must be able
// to represent "this position exists but currently holds 0".
func (c *COO) ToCSR() *CSR {
	rowCount := make([]int, c.n+1)
	for _, e := range c.entries {
		rowCount[e.Row+1]++
	}
	for i := 0; i < c.n; i++ {
		rowCount[i+1] += rowCount[i]
	}
	colIdx := make([]int, len(c.entries))
	vals := make([]float64, len(c.entries))
	next := make([]int, c.n)
	copy(next, rowCount[:c.n])
	for _, e := range c.entries {
		p := next[e.Row]
		colIdx[p] = e.Col
		vals[p] = e.Val
		next[e.Row]++
	}
	// Sort each row by column and merge duplicates in place.
	outPtr := make([]int, c.n+1)
	w := 0
	for i := 0; i < c.n; i++ {
		lo, hi := rowCount[i], rowCount[i+1]
		row := colIdx[lo:hi]
		rv := vals[lo:hi]
		sort.Sort(&pairSorter{row, rv})
		outPtr[i] = w
		for k := 0; k < len(row); {
			j := row[k]
			v := rv[k]
			k++
			for k < len(row) && row[k] == j {
				v += rv[k]
				k++
			}
			colIdx[w] = j
			vals[w] = v
			w++
		}
	}
	outPtr[c.n] = w
	return &CSR{n: c.n, rowPtr: outPtr, colIdx: colIdx[:w:w], vals: vals[:w:w]}
}

// pairSorter sorts a column-index slice and its parallel value slice.
type pairSorter struct {
	idx []int
	val []float64
}

func (p *pairSorter) Len() int           { return len(p.idx) }
func (p *pairSorter) Less(i, j int) bool { return p.idx[i] < p.idx[j] }
func (p *pairSorter) Swap(i, j int) {
	p.idx[i], p.idx[j] = p.idx[j], p.idx[i]
	p.val[i], p.val[j] = p.val[j], p.val[i]
}
