package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSR serializes a matrix in a MatrixMarket-like coordinate text
// format:
//
//	csr <n> <nnz>
//	<row> <col> <value>     (nnz lines, row-major, %.17g values)
//
// Explicit zeros are preserved (they carry pattern information in this
// repository). ReadCSR round-trips exactly.
func WriteCSR(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "csr %d %d\n", m.N(), m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.N(); i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i, j, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSR parses the coordinate text format back into a CSR matrix.
func ReadCSR(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" && !strings.HasPrefix(s, "#") {
				return s, true
			}
		}
		return "", false
	}
	head, ok := next()
	if !ok {
		return nil, fmt.Errorf("sparse: empty matrix input")
	}
	var n, nnz int
	if _, err := fmt.Sscanf(head, "csr %d %d", &n, &nnz); err != nil {
		return nil, fmt.Errorf("sparse: bad header %q: %v", head, err)
	}
	if n <= 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: bad dimensions in header %q", head)
	}
	c := NewCOO(n)
	for k := 0; k < nnz; k++ {
		l, ok := next()
		if !ok {
			return nil, fmt.Errorf("sparse: truncated input after %d of %d entries", k, nnz)
		}
		parts := strings.Fields(l)
		if len(parts) != 3 {
			return nil, fmt.Errorf("sparse: line %d: bad entry %q", line, l)
		}
		i, err1 := strconv.Atoi(parts[0])
		j, err2 := strconv.Atoi(parts[1])
		v, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil || i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("sparse: line %d: bad entry %q", line, l)
		}
		c.Add(i, j, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c.ToCSR(), nil
}
