package sparse

import "fmt"

// Perm is a permutation of [0, n) stored as a new-to-old index map:
// applying p to the rows of A yields B with B(i, ·) = A(p[i], ·).
type Perm []int

// IdentityPerm returns the identity permutation of size n.
func IdentityPerm(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Valid reports whether p is a bijection on [0, len(p)).
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns the old-to-new map q with q[p[i]] = i.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Apply permutes a dense vector: out[i] = x[p[i]]. This computes P·x
// when p is a row permutation (new-to-old).
func (p Perm) Apply(x []float64) []float64 {
	if len(x) != len(p) {
		panic(fmt.Sprintf("sparse: Perm.Apply length mismatch %d vs %d", len(x), len(p)))
	}
	out := make([]float64, len(x))
	for i, v := range p {
		out[i] = x[v]
	}
	return out
}

// Scatter inverts Apply: out[p[i]] = x[i]. For an ordering's column
// permutation this computes x = Q·x' when recovering the solution of
// the original system from the reordered one.
func (p Perm) Scatter(x []float64) []float64 {
	if len(x) != len(p) {
		panic(fmt.Sprintf("sparse: Perm.Scatter length mismatch %d vs %d", len(x), len(p)))
	}
	out := make([]float64, len(x))
	for i, v := range p {
		out[v] = x[i]
	}
	return out
}

// Ordering is the paper's O = (P, Q): Row is the row permutation (P)
// and Col the column permutation (Q), both stored new-to-old, so that
// A^O(i, j) = A(Row[i], Col[j]).
type Ordering struct {
	Row Perm
	Col Perm
}

// IdentityOrdering returns the ordering that leaves A untouched.
func IdentityOrdering(n int) Ordering {
	return Ordering{Row: IdentityPerm(n), Col: IdentityPerm(n)}
}

// SymmetricOrdering builds an ordering that applies the same vertex
// permutation to rows and columns (P = Q^T in matrix terms), which is
// the form produced by diagonal-pivot Markowitz and minimum degree.
func SymmetricOrdering(pivotSeq []int) Ordering {
	row := make(Perm, len(pivotSeq))
	copy(row, pivotSeq)
	col := make(Perm, len(pivotSeq))
	copy(col, pivotSeq)
	return Ordering{Row: row, Col: col}
}

// Valid reports whether both permutations are bijections of equal size.
func (o Ordering) Valid() bool {
	return len(o.Row) == len(o.Col) && o.Row.Valid() && o.Col.Valid()
}

// N returns the ordering's dimension.
func (o Ordering) N() int { return len(o.Row) }
