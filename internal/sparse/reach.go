package sparse

import "sort"

// This file is the symbolic half of sparse-right-hand-side triangular
// solves (Gilbert–Peierls): given the support of a right-hand side and
// the dependency DAG of a triangular factor, the set of rows a solve
// can touch is exactly the set of vertices reachable from the support.
// For the clustered, low-fill matrices this repository maintains, that
// reach is typically a small fraction of n, which is what makes the
// reach-based solve path in internal/lu worthwhile.

// ReachWorkspace holds the scratch of reach computations: an epoch-
// marked visited array (no O(n) clearing between calls), the DFS stack,
// and the output buffer. The zero value is ready to use; a workspace
// must not be shared between concurrent traversals.
type ReachWorkspace struct {
	mark  []int32
	epoch int32
	stack []int
	out   []int
}

// grow (re)sizes the visited array for dimension n, keeping epochs
// valid when the capacity already suffices.
func (ws *ReachWorkspace) grow(n int) {
	if cap(ws.mark) < n {
		ws.mark = make([]int32, n)
		ws.epoch = 0
	}
	ws.mark = ws.mark[:n]
	ws.epoch++
	if ws.epoch == 0 { // wrapped: the marks are stale, clear once
		for i := range ws.mark {
			ws.mark[i] = 0
		}
		ws.epoch = 1
	}
}

// Reach computes the set of vertices reachable from seeds (seeds
// included) in the directed graph given by succ, where succ(j) returns
// the successor list of j (the returned slice may alias caller storage;
// Reach only reads it). The result is sorted ascending and aliases the
// workspace's output buffer, valid until the next call.
//
// Sorted ascending is the topological order the triangular solves need:
// in the column graph of a strictly lower factor every edge goes j → i
// with i > j, so ascending index order respects all dependencies; the
// strictly upper factor's column graph has every edge j → i with i < j,
// so callers iterate the same slice backwards.
//
// When maxReach > 0 and the reach would exceed it, the traversal aborts
// early — after visiting at most maxReach+1 vertices — and returns
// (nil, false). This makes "is the reach small enough for the sparse
// path?" a cheap probe: the dense-fallback decision never pays for a
// full traversal of a high-fill factor.
func (ws *ReachWorkspace) Reach(n int, seeds []int, succ func(j int) []int, maxReach int) ([]int, bool) {
	ws.grow(n)
	ws.out = ws.out[:0]
	ws.stack = ws.stack[:0]
	for _, s := range seeds {
		if ws.mark[s] == ws.epoch {
			continue
		}
		ws.mark[s] = ws.epoch
		ws.out = append(ws.out, s)
		if maxReach > 0 && len(ws.out) > maxReach {
			return nil, false
		}
		ws.stack = append(ws.stack, s)
		for len(ws.stack) > 0 {
			j := ws.stack[len(ws.stack)-1]
			ws.stack = ws.stack[:len(ws.stack)-1]
			for _, i := range succ(j) {
				if ws.mark[i] == ws.epoch {
					continue
				}
				ws.mark[i] = ws.epoch
				ws.out = append(ws.out, i)
				if maxReach > 0 && len(ws.out) > maxReach {
					return nil, false
				}
				ws.stack = append(ws.stack, i)
			}
		}
	}
	sort.Ints(ws.out)
	return ws.out, true
}
