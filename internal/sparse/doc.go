// Package sparse implements the sparse linear algebra substrate used by
// the CLUDE reproduction: coordinate (COO) builders, immutable
// compressed-sparse-row (CSR) matrices, pure sparsity patterns with set
// operations, permutations and orderings (the pair (P, Q) of Definition
// 2 in the paper), dense vector helpers, and sparse matrix products.
//
// Conventions used throughout the repository:
//
//   - Matrices are square, n-by-n, indexed from 0.
//   - A Perm p maps NEW indices to OLD indices: B = p applied to rows of
//     A means B(i, j) = A(p[i], j).
//   - An Ordering O = (Row, Col) reorders A into A^O with
//     A^O(i, j) = A(Row[i], Col[j]); this is exactly the paper's
//     A^O = P·A·Q with permutation matrices P(i, Row[i]) = 1 and
//     Q(Col[j], j) = 1.
//   - Patterns are the paper's sp(A): the set of (i, j) with A(i,j) != 0.
//
// All types in this package are either immutable after construction
// (CSR, Pattern) or plain builders (COO), so values can be shared freely
// across goroutines once built.
package sparse
