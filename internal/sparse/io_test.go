package sparse

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestCSRRoundTrip(t *testing.T) {
	rng := xrand.New(3000)
	for trial := 0; trial < 10; trial++ {
		m := randomCSR(rng, 2+rng.Intn(20), 30)
		var buf bytes.Buffer
		if err := WriteCSR(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSR(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !m.EqualApprox(back, 0) {
			t.Fatalf("trial %d: round trip changed values", trial)
		}
		if m.NNZ() != back.NNZ() {
			t.Fatalf("trial %d: pattern changed (%d vs %d)", trial, m.NNZ(), back.NNZ())
		}
	}
}

func TestCSRRoundTripExplicitZero(t *testing.T) {
	c := NewCOO(3)
	c.Add(0, 1, 0) // explicit zero must survive
	c.Add(2, 2, -1.5)
	m := c.ToCSR()
	var buf bytes.Buffer
	if err := WriteCSR(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Has(0, 1) {
		t.Error("explicit zero dropped in serialization")
	}
}

func TestReadCSRErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"badheader": "matrix 3 1\n",
		"zerodim":   "csr 0 0\n",
		"truncated": "csr 3 2\n0 1 1.0\n",
		"badentry":  "csr 3 1\nx y z\n",
		"badrange":  "csr 3 1\n0 9 1.0\n",
		"shortline": "csr 3 1\n0 1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSR(strings.NewReader(in)); err == nil {
			t.Errorf("%s: malformed input accepted", name)
		}
	}
}

func TestReadCSRSkipsComments(t *testing.T) {
	in := "# a comment\ncsr 2 1\n# another\n0 1 2.5\n"
	m, err := ReadCSR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2.5 {
		t.Error("comment handling broke parsing")
	}
}
