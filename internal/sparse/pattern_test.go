package sparse

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func randomPattern(rng *xrand.Rand, n, k int) *Pattern {
	coords := make([]Coord, 0, k)
	for i := 0; i < k; i++ {
		coords = append(coords, Coord{rng.Intn(n), rng.Intn(n)})
	}
	return NewPattern(n, coords)
}

func TestPatternDedup(t *testing.T) {
	p := NewPattern(3, []Coord{{0, 1}, {0, 1}, {2, 2}})
	if p.Size() != 2 {
		t.Errorf("Size = %d, want 2", p.Size())
	}
	if !p.Has(0, 1) || !p.Has(2, 2) || p.Has(1, 1) {
		t.Error("membership wrong after dedup")
	}
}

func TestPatternUnionIntersect(t *testing.T) {
	a := NewPattern(4, []Coord{{0, 0}, {1, 2}, {3, 3}})
	b := NewPattern(4, []Coord{{1, 2}, {2, 2}})
	u := a.Union(b)
	i := a.Intersect(b)
	if u.Size() != 4 {
		t.Errorf("union size = %d, want 4", u.Size())
	}
	if i.Size() != 1 || !i.Has(1, 2) {
		t.Errorf("intersection wrong: size=%d", i.Size())
	}
	if got := a.IntersectSize(b); got != 1 {
		t.Errorf("IntersectSize = %d, want 1", got)
	}
}

func TestPatternSubset(t *testing.T) {
	a := NewPattern(3, []Coord{{0, 0}})
	b := NewPattern(3, []Coord{{0, 0}, {1, 1}})
	if !a.Subset(b) {
		t.Error("a should be subset of b")
	}
	if b.Subset(a) {
		t.Error("b should not be subset of a")
	}
}

func TestMESKnownValues(t *testing.T) {
	a := NewPattern(4, []Coord{{0, 0}, {1, 1}, {2, 2}})
	if got := MES(a, a); got != 1 {
		t.Errorf("MES(a,a) = %v, want 1", got)
	}
	b := NewPattern(4, []Coord{{3, 3}})
	if got := MES(a, b); got != 0 {
		t.Errorf("MES disjoint = %v, want 0", got)
	}
	c := NewPattern(4, []Coord{{0, 0}})
	// overlap 1, sizes 3 and 1: mes = 2*1/(3+1) = 0.5
	if got := MES(a, c); got != 0.5 {
		t.Errorf("MES = %v, want 0.5", got)
	}
	empty := NewPattern(4, nil)
	if got := MES(empty, empty); got != 1 {
		t.Errorf("MES(empty,empty) = %v, want 1", got)
	}
}

// Property 1 of the paper: sp(A∩) ⊆ sp(Ai) ⊆ sp(A∪) for every member
// of a set of patterns.
func TestSandwichProperty(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(12)
		members := make([]*Pattern, 3+rng.Intn(4))
		for i := range members {
			members[i] = randomPattern(rng, n, 2*n)
		}
		inter, union := members[0], members[0]
		for _, m := range members[1:] {
			inter = inter.Intersect(m)
			union = union.Union(m)
		}
		for i, m := range members {
			if !inter.Subset(m) {
				t.Fatalf("trial %d: A∩ not subset of member %d", trial, i)
			}
			if !m.Subset(union) {
				t.Fatalf("trial %d: member %d not subset of A∪", trial, i)
			}
		}
	}
}

// Property: union and intersection are commutative, and
// |A|+|B| = |A∪B|+|A∩B| (inclusion-exclusion).
func TestPatternInclusionExclusion(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(15)
		a := randomPattern(rng, n, 3*n)
		b := randomPattern(rng, n, 3*n)
		u, i := a.Union(b), a.Intersect(b)
		if !u.Equal(b.Union(a)) || !i.Equal(b.Intersect(a)) {
			return false
		}
		return a.Size()+b.Size() == u.Size()+i.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPatternPermuteConsistentWithCSR(t *testing.T) {
	rng := xrand.New(55)
	n := 14
	m := randomCSR(rng, n, 50)
	o := Ordering{Row: Perm(rng.Perm(n)), Col: Perm(rng.Perm(n))}
	got := m.Pattern().Permute(o)
	want := m.Permute(o).Pattern()
	if !got.Equal(want) {
		t.Error("Pattern.Permute disagrees with CSR.Permute().Pattern()")
	}
}

func TestPatternCoordsRoundTrip(t *testing.T) {
	rng := xrand.New(56)
	p := randomPattern(rng, 10, 30)
	q := NewPattern(10, p.Coords())
	if !p.Equal(q) {
		t.Error("Coords round trip changed pattern")
	}
}

func TestPermValidInverse(t *testing.T) {
	rng := xrand.New(57)
	p := Perm(rng.Perm(20))
	if !p.Valid() {
		t.Fatal("random permutation invalid")
	}
	inv := p.Inverse()
	for i := range p {
		if inv[p[i]] != i {
			t.Fatalf("inverse wrong at %d", i)
		}
	}
	bad := Perm{0, 0, 2}
	if bad.Valid() {
		t.Error("duplicate permutation reported valid")
	}
}

func TestPermApplyScatterInverse(t *testing.T) {
	rng := xrand.New(58)
	n := 17
	p := Perm(rng.Perm(n))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	y := p.Scatter(p.Apply(x))
	if NormInfDiff(x, y) != 0 {
		t.Error("Scatter(Apply(x)) != x")
	}
}
