package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Exemplars is a per-bucket exemplar sidecar for a Histogram: each
// log₂ latency bucket remembers the slowest observation of the current
// time window together with an opaque 16-byte ID (a trace ID), so a
// scrape-level percentile anomaly resolves to a concrete retained
// trace. The bucket layout mirrors Histogram exactly — slot b holds
// the exemplar for observations d with bits.Len64(d) == b.
//
// Exemplars stay out of the Prometheus text exposition (the 0.0.4
// grammar has no exemplar syntax; emitting OpenMetrics-style "# {...}"
// suffixes would break strict parsers) and are served through the JSON
// surfaces instead (/v1/traces, /v1/stats).
//
// The zero value is ready to use. Observe is allocation-free: slots
// are fixed and updated in place under one mutex, with a lock-free
// fast reject for observations that cannot displace the incumbent.
type Exemplars struct {
	// WindowNS is the exemplar replacement window in nanoseconds: a
	// new observation displaces the slot's incumbent if it is slower,
	// or if the incumbent is older than one window (so exemplars track
	// "recent slowest", not "all-time slowest"). <= 0 means 60s.
	WindowNS int64

	mu    sync.Mutex
	slots [64]exemplarSlot
}

type exemplarSlot struct {
	ns  atomic.Int64 // observed duration; 0 = slot empty
	at  atomic.Int64 // observation time, unix nanos
	id  [16]byte     // guarded by Exemplars.mu
	set bool         // guarded by Exemplars.mu
}

func (x *Exemplars) window() int64 {
	if x.WindowNS > 0 {
		return x.WindowNS
	}
	return int64(60 * time.Second)
}

// Observe offers one observation as an exemplar candidate for its
// bucket.
func (x *Exemplars) Observe(d time.Duration, id [16]byte) {
	ns := d.Nanoseconds()
	if ns < 0 {
		return
	}
	b := bucketIndex(ns)
	s := &x.slots[b]
	now := time.Now().UnixNano()
	if cur := s.ns.Load(); cur != 0 && ns <= cur && now-s.at.Load() < x.window() {
		return // incumbent is slower and fresh; nothing to do
	}
	x.mu.Lock()
	if cur := s.ns.Load(); cur == 0 || ns > cur || now-s.at.Load() >= x.window() {
		s.id = id
		s.set = true
		s.ns.Store(ns)
		s.at.Store(now)
	}
	x.mu.Unlock()
}

// Exemplar is one bucket's snapshot entry.
type Exemplar struct {
	Bucket int       // histogram bucket index
	UpperS float64   // bucket upper bound, seconds (the _bucket le)
	NS     int64     // exemplar observation, nanoseconds
	ID     [16]byte  // caller-supplied ID (a trace ID)
	At     time.Time // when it was observed
}

// Snapshot returns the live exemplars, ascending by bucket. Slots
// whose incumbent is older than two windows are considered stale and
// omitted — an exemplar should always point at a trace the retention
// ring plausibly still holds.
func (x *Exemplars) Snapshot() []Exemplar {
	now := time.Now().UnixNano()
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []Exemplar
	for b := range x.slots {
		s := &x.slots[b]
		if !s.set || now-s.at.Load() >= 2*x.window() {
			continue
		}
		out = append(out, Exemplar{
			Bucket: b,
			UpperS: bucketUpperSeconds(b),
			NS:     s.ns.Load(),
			ID:     s.id,
			At:     time.Unix(0, s.at.Load()),
		})
	}
	return out
}
