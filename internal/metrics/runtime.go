package metrics

import (
	"math"
	"runtime"
	rtm "runtime/metrics"
)

// Go runtime self-observation: process-level series every deployment
// wants on a dashboard next to the serving metrics, read straight
// from runtime/metrics at scrape time — no background sampler
// goroutine, no staleness.

const (
	sampleHeapBytes = "/memory/classes/heap/objects:bytes"
	sampleGCPauses  = "/gc/pauses:seconds"
)

// RegisterRuntime registers the Go runtime series: live goroutines,
// live heap bytes, the stop-the-world GC pause histogram, and the
// clude_build_info identity gauge (constant 1, with the server
// version and Go toolchain as labels — the standard join-key idiom
// for "which binary is this scrape from").
func RegisterRuntime(r *Registry, version string) {
	r.GaugeFunc("clude_go_goroutines", "Goroutines currently live in the process.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("clude_go_heap_bytes", "Bytes occupied by live heap objects (runtime/metrics /memory/classes/heap/objects:bytes).", nil,
		func() float64 {
			s := []rtm.Sample{{Name: sampleHeapBytes}}
			rtm.Read(s)
			if s[0].Value.Kind() != rtm.KindUint64 {
				return 0
			}
			return float64(s[0].Value.Uint64())
		})
	r.HistogramFunc("clude_go_gc_pause_seconds",
		"Stop-the-world GC pause durations since process start, re-bucketed onto the registry's log2 grid (counts exact, sum approximated by bucket upper bounds).",
		nil, gcPauseSnapshot)
	r.GaugeFunc("clude_build_info", "Build identity; constant 1. Join on the labels for version and Go toolchain.",
		Labels{"version": version, "go": runtime.Version()},
		func() float64 { return 1 })
}

// gcPauseSnapshot converts the runtime's Float64Histogram of GC
// pauses into this package's 64-bucket log2 shape: each runtime
// bucket's count lands in the log2 bucket of its upper bound, so the
// conversion only ever rounds pause durations up (consistent with
// Quantile's upper-bound reporting).
func gcPauseSnapshot() HistogramSnapshot {
	var snap HistogramSnapshot
	s := []rtm.Sample{{Name: sampleGCPauses}}
	rtm.Read(s)
	if s[0].Value.Kind() != rtm.KindFloat64Histogram {
		return snap
	}
	h := s[0].Value.Float64Histogram()
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		upper := h.Buckets[i+1]
		if math.IsInf(upper, 1) {
			// The +Inf bucket has no upper bound; its lower bound is
			// the least wrong finite stand-in for the sum.
			upper = h.Buckets[i]
		}
		ns := int64(upper * 1e9)
		if ns < 0 { // a [-Inf, +Inf) degenerate bucket
			ns = 0
		}
		snap.Buckets[bucketIndex(ns)] += int64(c)
		snap.Total += int64(c)
		snap.SumNS += int64(c) * ns
	}
	return snap
}
