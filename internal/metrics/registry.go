package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ContentType is the HTTP Content-Type of the exposition format
// Expose emits.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Labels attaches constant label pairs to one registered series.
// Within a family (one metric name), every series must carry a
// distinct label set.
type Labels map[string]string

// A Registry collects metric series and renders them in the
// Prometheus text format. Registration is done once at wiring time
// and panics on misuse (invalid names, duplicate series, one name
// registered as two types) — those are programming errors, not
// runtime conditions. Collection (WriteTo) is safe to call
// concurrently with observations.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name, help, typ string
	series          []*series
}

type series struct {
	labels string // rendered `{k="v",…}` or ""

	counter *Counter
	gauge   *Gauge
	fn      func() float64           // counterfunc / gaugefunc
	hist    *Histogram               // registered histogram
	histFn  func() HistogramSnapshot // func-backed histogram
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, &series{counter: c})
	return c
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, &series{gauge: g})
	return g
}

// CounterFunc registers a counter series collected from fn at scrape
// time. fn must be safe for concurrent use and monotone.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "counter", labels, &series{fn: fn})
}

// GaugeFunc registers a gauge series collected from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", labels, &series{fn: fn})
}

// Histogram registers and returns a new histogram series.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, labels, h)
	return h
}

// RegisterHistogram registers an existing histogram — the hook that
// lets a subsystem keep one set of buckets backing both its own stats
// and the exposition.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	r.register(name, help, "histogram", labels, &series{hist: h})
}

// HistogramFunc registers a histogram series collected from fn at
// scrape time.
func (r *Registry) HistogramFunc(name, help string, labels Labels, fn func() HistogramSnapshot) {
	r.register(name, help, "histogram", labels, &series{histFn: fn})
}

func (r *Registry) register(name, help, typ string, labels Labels, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	if typ == "histogram" {
		for _, k := range []string{"le"} {
			if _, ok := labels[k]; ok {
				panic(fmt.Sprintf("metrics: label %q is reserved on histograms", k))
			}
		}
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	} else {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
		}
		if f.help != help {
			panic(fmt.Sprintf("metrics: %s registered with two help strings", name))
		}
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("metrics: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Expose renders every registered family in the text exposition
// format: families sorted by name, series within a family sorted by
// label signature, histograms as cumulative `_bucket`/`_sum`/`_count`
// with `le` bounds in seconds.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		ss := append([]*series(nil), f.series...)
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			writeSeries(&b, f, s)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.counter != nil:
		writeSample(b, f.name, s.labels, float64(s.counter.Value()))
	case s.gauge != nil:
		writeSample(b, f.name, s.labels, s.gauge.Value())
	case s.fn != nil:
		writeSample(b, f.name, s.labels, s.fn())
	case s.hist != nil:
		writeHistogram(b, f.name, s.labels, s.hist.Snapshot())
	case s.histFn != nil:
		writeHistogram(b, f.name, s.labels, s.histFn())
	}
}

// writeHistogram emits the cumulative bucket series. Only buckets that
// hold observations get a line (plus the mandatory +Inf), which keeps
// the exposition compact while staying valid: the `le` bounds present
// are strictly increasing and the counts cumulative.
func writeHistogram(b *strings.Builder, name, labels string, s HistogramSnapshot) {
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		writeSample(b, name+"_bucket", addLabel(labels, "le", formatFloat(bucketUpperSeconds(i))), float64(cum))
	}
	writeSample(b, name+"_bucket", addLabel(labels, "le", "+Inf"), float64(s.Total))
	writeSample(b, name+"_sum", labels, float64(s.SumNS)/1e9)
	writeSample(b, name+"_count", labels, float64(s.Total))
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// addLabel splices one more pair into a rendered label string.
func addLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// renderLabels renders a label set in sorted-key order.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !validLabel(k) {
			panic(fmt.Sprintf("metrics: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validName reports whether s is a legal metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabel reports whether s is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
