package metrics

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestRuntimeMetricsExposition registers the runtime series and holds
// their exposition to the same structural grammar as every other
// family, plus basic sanity on the values: a live process has
// goroutines and heap, and after a forced GC the pause histogram is
// populated and internally consistent.
func TestRuntimeMetricsExposition(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r, "v-test")
	runtime.GC() // guarantee at least one pause observation

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE clude_go_goroutines gauge\n",
		"# TYPE clude_go_heap_bytes gauge\n",
		"# TYPE clude_go_gc_pause_seconds histogram\n",
		"clude_go_gc_pause_seconds_count ",
		`clude_build_info{go="` + runtime.Version() + `",version="v-test"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %q in:\n%s", want, out)
		}
	}
	assertParses(t, out)

	if v := sampleValue(t, out, "clude_go_goroutines"); v < 1 {
		t.Errorf("clude_go_goroutines = %v, want >= 1", v)
	}
	if v := sampleValue(t, out, "clude_go_heap_bytes"); v <= 0 {
		t.Errorf("clude_go_heap_bytes = %v, want > 0", v)
	}
}

// TestGCPauseSnapshotConsistent pins the Float64Histogram -> log2
// conversion invariants: bucket counts add up to the total and the
// approximated sum is non-negative.
func TestGCPauseSnapshotConsistent(t *testing.T) {
	runtime.GC()
	runtime.GC()
	snap := gcPauseSnapshot()
	if snap.Total == 0 {
		t.Fatal("no GC pauses recorded after two forced collections")
	}
	var sum int64
	for _, c := range snap.Buckets {
		if c < 0 {
			t.Fatalf("negative bucket count %d", c)
		}
		sum += c
	}
	if sum != snap.Total {
		t.Fatalf("bucket counts sum to %d, total says %d", sum, snap.Total)
	}
	if snap.SumNS < 0 {
		t.Fatalf("negative pause sum %d", snap.SumNS)
	}
}

// sampleValue extracts the value of an unlabeled sample line.
func sampleValue(t *testing.T, out, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(line[len(name)+1:], 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no sample %q in exposition", name)
	return 0
}
