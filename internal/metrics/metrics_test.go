package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // dropped: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 1µs lands in bucket [512ns, 1024ns) → upper bound 1024ns.
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Second) // one outlier
	s := h.Snapshot()
	if s.Total != 100 {
		t.Fatalf("total = %d, want 100", s.Total)
	}
	if got := s.Quantile(0.50); got != 1024e-9 {
		t.Errorf("p50 = %v, want 1024ns", got)
	}
	if p99 := s.Quantile(0.99); p99 != 1024e-9 {
		t.Errorf("p99 = %v, want 1024ns (99 of 100 obs)", p99)
	}
	if p100 := s.Quantile(1); p100 < 1.0 || p100 >= 2.0 {
		t.Errorf("p100 = %v, want within [1s, 2s)", p100)
	}
	wantSum := 99*float64(time.Microsecond.Nanoseconds()) + 1e9
	if got := float64(s.SumNS); got != wantSum {
		t.Errorf("sum = %v ns, want %v", got, wantSum)
	}
	h.Observe(-time.Second) // dropped
	if h.Snapshot().Total != 100 {
		t.Error("negative observation was not dropped")
	}
}

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Total != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("zero histogram: total %d quantile %v", s.Total, s.Quantile(0.5))
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.", nil)
	c.Add(3)
	g := r.Gauge("test_depth", "Queue depth.", Labels{"queue": "main"})
	g.Set(7)
	r.GaugeFunc("test_func", "Func-backed.", nil, func() float64 { return 1.5 })
	h := r.Histogram("test_latency_seconds", "Latency.", Labels{"stage": "solve"})
	h.Observe(time.Microsecond)
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP test_events_total Events seen.\n# TYPE test_events_total counter\ntest_events_total 3\n",
		"# TYPE test_depth gauge\ntest_depth{queue=\"main\"} 7\n",
		"test_func 1.5\n",
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{stage="solve",le="+Inf"} 3`,
		`test_latency_seconds_count{stage="solve"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Families must come out name-sorted, series label-sorted, and
	// histogram buckets cumulative and monotone in le.
	assertParses(t, out)
}

// assertParses is a strict structural check of the exposition text:
// every line is a comment or `name[{labels}] value`, TYPE precedes its
// samples, and histogram buckets are cumulative with increasing le.
func assertParses(t *testing.T, out string) {
	t.Helper()
	var lastLe float64
	var lastCum float64
	var curHist string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		id, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" && val != "NaN" {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		name := id
		labels := ""
		if i := strings.IndexByte(id, '{'); i >= 0 {
			name, labels = id[:i], id[i:]
			if !strings.HasSuffix(labels, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
		}
		if strings.HasSuffix(name, "_bucket") {
			le := extractLe(t, labels, line)
			base := strings.TrimSuffix(name, "_bucket") + labels
			if base != curHist {
				curHist, lastLe, lastCum = base, math.Inf(-1), 0
			}
			if le <= lastLe {
				t.Fatalf("non-increasing le %v after %v in %q", le, lastLe, line)
			}
			v, _ := strconv.ParseFloat(val, 64)
			if v < lastCum {
				t.Fatalf("non-cumulative bucket counts in %q", line)
			}
			lastLe, lastCum = le, v
		}
	}
}

func extractLe(t *testing.T, labels, line string) float64 {
	t.Helper()
	i := strings.Index(labels, `le="`)
	if i < 0 {
		t.Fatalf("bucket line without le: %q", line)
	}
	rest := labels[i+4:]
	j := strings.IndexByte(rest, '"')
	if rest[:j] == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		t.Fatalf("bad le in %q: %v", line, err)
	}
	return v
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"invalid name", func(r *Registry) { r.Counter("9bad", "", nil) }},
		{"invalid label", func(r *Registry) { r.Counter("ok", "", Labels{"9bad": "x"}) }},
		{"duplicate series", func(r *Registry) {
			r.Counter("dup", "", nil)
			r.Counter("dup", "", nil)
		}},
		{"type clash", func(r *Registry) {
			r.Counter("clash", "", nil)
			r.Gauge("clash", "", Labels{"a": "b"})
		}},
		{"reserved le", func(r *Registry) { r.Histogram("h", "", Labels{"le": "1"}) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		}()
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("esc", "", Labels{"path": "a\"b\\c\nd"})
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc{path="a\"b\\c\nd"} 0`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping: got %q, want contains %q", b.String(), want)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "", nil)
	h := r.Histogram("conc_seconds", "", nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(time.Microsecond)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.Expose(&b); err != nil {
			t.Fatal(err)
		}
		assertParses(t, b.String())
	}
	close(stop)
	wg.Wait()
	if c.Value() != h.Snapshot().Total {
		t.Fatalf("counter %d != histogram total %d", c.Value(), h.Snapshot().Total)
	}
}
