// Package metrics is a dependency-free metrics layer: atomic counters,
// gauges, and log₂-bucketed duration histograms, collected in a
// Registry that exposes them in the Prometheus text format (version
// 0.0.4). It exists so every subsystem — the serving pipeline, the
// streaming engine, the durability store — reports through one
// scrape-able surface, and so /stats and /metrics can never disagree:
// both read the same underlying atomics.
//
// Design constraints, in order:
//
//   - Zero dependencies beyond the standard library (the repo bakes in
//     nothing else), and zero allocation on the observation hot path:
//     Counter.Add, Gauge.Set and Histogram.Observe are single atomic
//     operations.
//   - Usable zero values: a Histogram embedded in an engine struct
//     works before (and without) ever being registered, which is how
//     internal/serve keeps its /stats percentiles and its /metrics
//     exposition backed by the same buckets.
//   - Func-backed collectors (CounterFunc/GaugeFunc), so packages that
//     must stay import-clean of this one (core, store) re-register
//     their existing counters through closures instead of migrating.
//
// Histograms are log₂-bucketed over nanoseconds: bucket b counts
// observations d with bits.Len64(d) == b, i.e. d ∈ [2^(b−1), 2^b).
// Sixty-four buckets cover every representable duration, and quantile
// reads report a bucket's upper bound — at most 2× the true quantile,
// the right fidelity for an overload dashboard. Exposition renders the
// bucket bounds in seconds, the Prometheus base unit.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be ≥ 0; negative deltas are
// a programming error and are dropped to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// A Histogram is a lock-free log₂-bucketed duration histogram. The
// zero value is ready to use.
type Histogram struct {
	buckets [64]atomic.Int64
	sumNS   atomic.Int64
}

// Observe records one duration. Negative durations are dropped.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		return
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.sumNS.Add(ns)
}

// bucketIndex maps a non-negative duration in nanoseconds to its log₂
// bucket — shared by Histogram and its Exemplars sidecar so an
// exemplar always lands in the bucket its observation was counted in.
func bucketIndex(ns int64) int {
	b := bits.Len64(uint64(ns))
	if b > 63 {
		b = 63
	}
	return b
}

// Snapshot reads the histogram's current state. The read is not atomic
// across buckets — concurrent observations can skew a live read by
// their own count, which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Total += c
	}
	s.SumNS = h.sumNS.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram: per-bucket
// (non-cumulative) counts, the observation total, and the sum of all
// observed durations in nanoseconds.
type HistogramSnapshot struct {
	Buckets [64]int64
	Total   int64
	SumNS   int64
}

// Quantile returns the p-quantile (0 < p ≤ 1) in seconds, as the upper
// bound of the bucket holding the rank-⌈p·total⌉ observation; 0 when
// nothing has been observed.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(s.Total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return bucketUpperSeconds(b)
		}
	}
	return bucketUpperSeconds(63)
}

// QuantileUS is Quantile in microseconds — the unit the serving
// layer's Stats report.
func (s HistogramSnapshot) QuantileUS(p float64) float64 {
	return s.Quantile(p) * 1e6
}

// bucketUpperSeconds is bucket b's upper bound, 2^b ns, in seconds.
func bucketUpperSeconds(b int) float64 {
	return float64(uint64(1)<<uint(b)) / 1e9
}
