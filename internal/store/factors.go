package store

import (
	"fmt"
	"io"

	"repro/internal/lu"
	"repro/internal/sparse"
)

// Factor, solver and sparse-container codecs. WriteFactors/ReadFactors
// are the public round-trip for a single factor container; the
// unexported helpers encode the sparse building blocks (patterns,
// matrices, permutations) into an already-open frame and are shared by
// the stream-state codec.

const (
	factorsMagic = "CLUF"
	solverMagic  = "CLUS"

	// codecVersion is the format version new frames are written at.
	// Version 2 delta-codes the index arrays (see cw.idx); readers
	// accept 1 and 2, so pre-upgrade files stay loadable.
	codecVersion = 2

	kindStatic  = 0
	kindDynamic = 1
)

// WriteFactors serializes a factor container — static or dynamic — as a
// self-contained checksummed frame. Only primary structure is written;
// the derived indices are reassembled on read (see lu.AssembleStatic /
// lu.AssembleDynamic), which is what makes the round trip bit-identical
// by construction rather than by trusting the input.
func WriteFactors(w io.Writer, f lu.Factors) error {
	c := newCW(w)
	c.header(factorsMagic, codecVersion)
	writeFactorsBody(c, f, codecVersion)
	if c.err != nil {
		return c.err
	}
	return c.seal()
}

// ReadFactors parses a WriteFactors frame back into a container of the
// same concrete type.
func ReadFactors(r io.Reader) (lu.Factors, error) {
	c := newCR(r)
	ver, err := c.expectHeader(factorsMagic, codecVersion)
	if err != nil {
		return nil, err
	}
	f := readFactorsBody(c, ver)
	if c.err != nil {
		return nil, c.err
	}
	if err := c.verify(); err != nil {
		return nil, err
	}
	return f, nil
}

// writeFactorsBody encodes the container into an open frame.
func writeFactorsBody(c *cw, f lu.Factors, ver byte) {
	switch t := f.(type) {
	case *lu.StaticFactors:
		c.u64(kindStatic)
		c.i64(int64(t.Dim()))
		c.idx(ver, t.LColPtr)
		c.idx(ver, t.LRowIdx)
		c.floats(t.LVal)
		c.idx(ver, t.URowPtr)
		c.idx(ver, t.UColIdx)
		c.floats(t.UVal)
		c.floats(t.D)
	case *lu.DynamicFactors:
		c.u64(kindDynamic)
		c.i64(int64(t.Dim()))
		c.u64(uint64(len(t.Nodes)))
		for _, nd := range t.Nodes {
			c.i64(int64(nd.Idx))
			c.f64(nd.Val)
			c.i64(int64(nd.Next))
		}
		c.idx(ver, t.LHead)
		c.idx(ver, t.UHead)
		c.floats(t.D)
		c.i64(int64(t.Inserts))
		c.i64(int64(t.ScanSteps))
	default:
		if c.err == nil {
			c.err = fmt.Errorf("store: unsupported factor container %T", f)
		}
	}
}

// readFactorsBody decodes one container from an open frame.
func readFactorsBody(c *cr, ver byte) lu.Factors {
	switch kind := c.u64(); kind {
	case kindStatic:
		n := c.intv()
		lColPtr := c.idx(ver)
		lRowIdx := c.idx(ver)
		lVal := c.floats()
		uRowPtr := c.idx(ver)
		uColIdx := c.idx(ver)
		uVal := c.floats()
		d := c.floats()
		if c.err != nil {
			return nil
		}
		f, err := lu.AssembleStatic(n, lColPtr, lRowIdx, lVal, uRowPtr, uColIdx, uVal, d)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
			return nil
		}
		return f
	case kindDynamic:
		n := c.intv()
		cnt := c.length(maxSliceLen)
		nodes := make([]lu.ListNode, 0, min(cnt, preallocCap))
		for i := 0; i < cnt && c.err == nil; i++ {
			nodes = append(nodes, lu.ListNode{Idx: c.intv(), Val: c.f64(), Next: c.intv()})
		}
		lHead := c.idx(ver)
		uHead := c.idx(ver)
		d := c.floats()
		inserts := c.intv()
		scans := c.intv()
		if c.err != nil {
			return nil
		}
		f, err := lu.AssembleDynamic(n, nodes, lHead, uHead, d, inserts, scans)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
			return nil
		}
		return f
	default:
		c.fail(fmt.Errorf("%w: unknown factor kind %d", ErrCorrupt, kind))
		return nil
	}
}

// writePerm / readPerm encode a permutation (validated as a bijection
// on read).
func writePerm(c *cw, p sparse.Perm) { c.ints([]int(p)) }

func readPerm(c *cr) sparse.Perm {
	p := sparse.Perm(c.ints())
	if c.err == nil && !p.Valid() {
		c.fail(fmt.Errorf("%w: permutation is not a bijection", ErrCorrupt))
		return nil
	}
	return p
}

// writeOrdering / readOrdering encode O = (P, Q).
func writeOrdering(c *cw, o sparse.Ordering) {
	writePerm(c, o.Row)
	writePerm(c, o.Col)
}

func readOrdering(c *cr) sparse.Ordering {
	row := readPerm(c)
	col := readPerm(c)
	if c.err == nil && len(row) != len(col) {
		c.fail(fmt.Errorf("%w: ordering permutation sizes differ (%d vs %d)", ErrCorrupt, len(row), len(col)))
	}
	return sparse.Ordering{Row: row, Col: col}
}

// writePattern / readPattern encode a sparsity pattern; nil is legal
// (absence flag).
func writePattern(c *cw, p *sparse.Pattern, ver byte) {
	if p == nil {
		c.bool(false)
		return
	}
	c.bool(true)
	rowPtr, colIdx := p.PatternArrays()
	c.i64(int64(p.N()))
	c.idx(ver, rowPtr)
	c.idx(ver, colIdx)
}

func readPattern(c *cr, ver byte) *sparse.Pattern {
	if !c.bool() || c.err != nil {
		return nil
	}
	n := c.intv()
	rowPtr := c.idx(ver)
	colIdx := c.idx(ver)
	if c.err != nil {
		return nil
	}
	p, err := sparse.PatternFromArrays(n, rowPtr, colIdx)
	if err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return nil
	}
	return p
}

// writeCSR / readCSR encode a sparse matrix; nil is legal.
func writeCSR(c *cw, m *sparse.CSR, ver byte) {
	if m == nil {
		c.bool(false)
		return
	}
	c.bool(true)
	rowPtr, colIdx, vals := m.Arrays()
	c.i64(int64(m.N()))
	c.idx(ver, rowPtr)
	c.idx(ver, colIdx)
	c.floats(vals)
}

func readCSR(c *cr, ver byte) *sparse.CSR {
	if !c.bool() || c.err != nil {
		return nil
	}
	n := c.intv()
	rowPtr := c.idx(ver)
	colIdx := c.idx(ver)
	vals := c.floats()
	if c.err != nil {
		return nil
	}
	m, err := sparse.CSRFromArrays(n, rowPtr, colIdx, vals)
	if err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return nil
	}
	return m
}

// WriteSolver serializes a solver (ordering + factors) as one frame —
// the unit the serving layer spills evicted snapshots as.
func WriteSolver(w io.Writer, s *lu.Solver) error {
	c := newCW(w)
	c.header(solverMagic, codecVersion)
	writeOrdering(c, s.O)
	writeFactorsBody(c, s.F, codecVersion)
	if c.err != nil {
		return c.err
	}
	return c.seal()
}

// ReadSolver parses a WriteSolver frame.
func ReadSolver(r io.Reader) (*lu.Solver, error) {
	c := newCR(r)
	ver, err := c.expectHeader(solverMagic, codecVersion)
	if err != nil {
		return nil, err
	}
	o := readOrdering(c)
	f := readFactorsBody(c, ver)
	if c.err != nil {
		return nil, c.err
	}
	if err := c.verify(); err != nil {
		return nil, err
	}
	if o.N() != f.Dim() {
		return nil, fmt.Errorf("%w: ordering dimension %d does not match factors %d", ErrCorrupt, o.N(), f.Dim())
	}
	return &lu.Solver{F: f, O: o}, nil
}
