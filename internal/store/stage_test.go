package store

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// TestStoreStageHook pins Options.OnStage: every logged batch observes
// one wal_append, every checkpoint one snapshot (including the initial
// cold-start snapshot and the final one Close writes).
func TestStoreStageHook(t *testing.T) {
	rng := xrand.New(9)
	g0 := randomGraph(24, 30, rng)
	batches := randomBatches(24, 5, 4, rng)

	var mu sync.Mutex
	counts := map[string]int{}
	st, err := Open(t.TempDir(), Options{
		Sync: SyncNone,
		OnStage: func(stage string, d time.Duration) {
			if d < 0 {
				t.Errorf("stage %q: negative duration %v", stage, d)
			}
			mu.Lock()
			counts[stage]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := st.OpenStream(core.StreamConfig{
		Algorithm: core.INC, Initial: g0, Derive: graph.RWRMatrix(0.85),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, evs := range batches {
		if _, err := stream.Apply(evs); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	stream.Close()

	mu.Lock()
	defer mu.Unlock()
	if counts["wal_append"] != len(batches) {
		t.Fatalf("wal_append observed %d times, want %d", counts["wal_append"], len(batches))
	}
	// Initial cold-start snapshot + the explicit one + Close's final.
	if counts["snapshot"] != 3 {
		t.Fatalf("snapshot observed %d times, want 3 (all: %v)", counts["snapshot"], counts)
	}
}
