package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/bennett"
	"repro/internal/sparse"
)

// History sidecar: a file of bennett.VersionRecord frames (magic CLUH),
// one per published version, feeding the serving layer's
// delta-compressed history across restarts. Writes are append-only;
// retention is by compaction (SetFloor + MaybeCompact): when the
// serving layer's retention floor advances past enough of the file, it
// is atomically rewritten without the dead records, so the sidecar
// stays proportional to the materializable window instead of the
// stream's lifetime. The file is a cache of information the WAL can
// mostly regenerate — losing its tail only shrinks the set of
// materializable old versions, never correctness — so records are
// buffered-write, fsynced on Close, and each carries its own CRC: the
// reader stops at the first torn or corrupt frame exactly like the
// WAL's torn-tail model.
//
// Frame layout after the 5-byte file prologue ("CLUH" + version byte):
//
//	uvarint payloadLen | payload | CRC-32C(payload)
//
// Payload: version, structural flag, and the rank-1 terms, each term's
// support rows delta-coded (they are sorted per SplitTerms' grouping of
// an already-ordered delta, so diffs are small).

const (
	historyMagic   = "CLUH"
	historyVersion = 1
	// maxHistoryFrame bounds a frame the reader will buffer; larger
	// lengths are treated as corruption.
	maxHistoryFrame = 1 << 28
)

// HistoryFile is the open sidecar: scan-once on open, then append-only
// between compactions. Safe for concurrent Append (the publish hook may
// race a WAL-replay hook only in pathological wirings, but the lock is
// cheap). The serving layer's retention floor arrives via SetFloor;
// MaybeCompact (run at the store's snapshot cadence, off the publish
// path) rewrites the file without the records below it, so the sidecar
// tracks the set of still-materializable versions instead of growing
// append-only forever.
type HistoryFile struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	firstVer uint64 // oldest record version in the file
	lastVer  uint64
	has      bool
	floor    uint64 // requested trim floor (SetFloor)
	records  int64
	bytes    int64
	compacts int64
	loaded   []bennett.VersionRecord
}

// OpenHistory opens (or creates) the history sidecar at path, scans
// every valid record — truncating a torn tail in place — and returns
// the file positioned for appends. The scanned records are kept for
// LoadHistory until the caller drops them.
func OpenHistory(path string) (*HistoryFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	h := &HistoryFile{f: f, path: path}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() == 0 {
		if _, err := f.Write(append([]byte(historyMagic), historyVersion)); err != nil {
			f.Close()
			return nil, err
		}
		h.bytes = int64(len(historyMagic)) + 1
		return h, nil
	}

	// Scan: validate the prologue, then read frames until the data runs
	// out or stops verifying. good tracks the end of the last valid
	// frame; everything past it is a torn tail and is truncated so
	// appends resume on a clean boundary.
	br := bufio.NewReader(io.NewSectionReader(f, 0, info.Size()))
	prologue := make([]byte, len(historyMagic)+1)
	if _, err := io.ReadFull(br, prologue); err != nil || string(prologue[:len(historyMagic)]) != historyMagic {
		f.Close()
		return nil, fmt.Errorf("%w: bad history prologue", ErrCorrupt)
	}
	if prologue[len(historyMagic)] == 0 || prologue[len(historyMagic)] > historyVersion {
		f.Close()
		return nil, fmt.Errorf("store: unsupported history format version %d (max %d)", prologue[len(historyMagic)], historyVersion)
	}
	good := int64(len(prologue))
	pos := good
	cr := &countingReader{r: br}
	for {
		n, err := binary.ReadUvarint(cr)
		if err != nil || n > maxHistoryFrame {
			break
		}
		frame := make([]byte, n+4)
		if _, err := io.ReadFull(cr, frame); err != nil {
			break
		}
		payload, tail := frame[:n], frame[n:]
		if binary.LittleEndian.Uint32(tail) != crc32Sum(payload) {
			break
		}
		rec, err := decodeHistoryRecord(payload)
		if err != nil {
			break
		}
		pos += cr.n
		cr.n = 0
		good = pos
		h.loaded = append(h.loaded, rec)
		if !h.has {
			h.firstVer = rec.Version
		}
		h.lastVer, h.has = rec.Version, true
		h.records++
	}
	if good < info.Size() {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	h.bytes = good
	return h, nil
}

// countingReader counts consumed bytes so the scanner knows where each
// frame ended (bufio readahead hides the file offset).
type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// crc32Sum is the package checksum over one history payload.
func crc32Sum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// Append writes rec unless it is at or below the newest version already
// on disk — the idempotency guard that lets WAL replay re-fire publish
// hooks without duplicating frames.
func (h *HistoryFile) Append(rec bennett.VersionRecord) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil {
		return fmt.Errorf("store: history file closed")
	}
	if h.has && rec.Version <= h.lastVer {
		return nil
	}
	var payload bytes.Buffer
	encodeHistoryRecord(&payload, rec)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(payload.Len()))
	crc := crc32Sum(payload.Bytes())
	if _, err := h.f.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := h.f.Write(payload.Bytes()); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := h.f.Write(tail[:]); err != nil {
		return err
	}
	if !h.has || h.records == 0 {
		h.firstVer = rec.Version
	}
	h.lastVer, h.has = rec.Version, true
	h.records++
	h.bytes += int64(n) + int64(payload.Len()) + 4
	return nil
}

// SetFloor records the serving layer's history retention floor: records
// for versions below it can never be replayed again (their base is
// gone) and are eligible for compaction. Cheap and non-blocking — safe
// to call from the publish path; the rewrite itself happens in
// MaybeCompact.
func (h *HistoryFile) SetFloor(below uint64) {
	h.mu.Lock()
	if below > h.floor {
		h.floor = below
	}
	h.mu.Unlock()
}

// MaybeCompact rewrites the sidecar without the records below the
// current floor, when doing so is worth a file rewrite: at least a
// quarter of the version span must be droppable. Run it off the
// publish path (the store calls it from the snapshot cycle).
func (h *HistoryFile) MaybeCompact() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil || !h.has || h.records == 0 {
		return nil
	}
	below := h.floor
	if below <= h.firstVer {
		return nil
	}
	if span := h.lastVer - h.firstVer + 1; (below-h.firstVer)*4 < span {
		return nil
	}
	return h.compactLocked(below)
}

// CompactBelow unconditionally rewrites the sidecar keeping only
// records with Version >= below. The rewrite is atomic (temp + rename):
// a crash mid-compaction leaves the old file intact.
func (h *HistoryFile) CompactBelow(below uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil {
		return fmt.Errorf("store: history file closed")
	}
	if !h.has || below <= h.firstVer {
		return nil
	}
	return h.compactLocked(below)
}

// compactLocked copies every valid frame with Version >= below into a
// fresh file and renames it over the sidecar, swapping the open handle.
// Frames are copied verbatim (their CRCs are already valid); only each
// payload's leading version uvarint is decoded to filter. Callers hold
// h.mu.
func (h *HistoryFile) compactLocked(below uint64) error {
	tmp, err := os.CreateTemp(filepath.Dir(h.path), "history-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append([]byte(historyMagic), historyVersion)); err != nil {
		tmp.Close()
		return err
	}
	newBytes := int64(len(historyMagic)) + 1
	var newRecords int64
	newFirst, newHas := uint64(0), false

	// h.bytes is the end of the last valid frame; everything the file
	// holds up to it re-verifies here (ReadAt, so the append offset of
	// h.f is untouched until the swap).
	br := bufio.NewReader(io.NewSectionReader(h.f, int64(len(historyMagic))+1, h.bytes))
	cr := &countingReader{r: br}
	for {
		n, err := binary.ReadUvarint(cr)
		if err != nil || n > maxHistoryFrame {
			break
		}
		frame := make([]byte, n+4)
		if _, err := io.ReadFull(cr, frame); err != nil {
			break
		}
		payload, tail := frame[:n], frame[n:]
		if binary.LittleEndian.Uint32(tail) != crc32Sum(payload) {
			break
		}
		ver, err := binary.ReadUvarint(bytes.NewReader(payload))
		if err != nil {
			break
		}
		if ver < below {
			continue
		}
		var hdr [binary.MaxVarintLen64]byte
		hn := binary.PutUvarint(hdr[:], n)
		if _, err := tmp.Write(hdr[:hn]); err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return err
		}
		newBytes += int64(hn) + int64(len(frame))
		if !newHas {
			newFirst, newHas = ver, true
		}
		newRecords++
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmp.Name(), h.path); err != nil {
		tmp.Close()
		return err
	}
	// The renamed handle IS the sidecar now; its offset already sits at
	// the end of the kept frames, ready for appends.
	h.f.Close()
	h.f = tmp
	h.records = newRecords
	h.bytes = newBytes
	h.compacts++
	if newHas {
		h.firstVer = newFirst
	} else {
		// Everything dropped. Keep lastVer/has: the append-time
		// idempotency guard must keep absorbing WAL-replay re-fires of
		// versions the file has already seen.
		h.firstVer = h.lastVer + 1
	}
	return nil
}

// LoadHistory returns the records scanned at open time, oldest first.
// The slice is owned by the caller; the file keeps no reference.
func (h *HistoryFile) LoadHistory() []bennett.VersionRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.loaded
	h.loaded = nil
	return out
}

// Counters returns the live record and byte totals (post-compaction).
func (h *HistoryFile) Counters() (records, bytes int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.records, h.bytes
}

// Compactions returns how many sidecar rewrites have run.
func (h *HistoryFile) Compactions() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.compacts
}

// Close fsyncs and closes the sidecar.
func (h *HistoryFile) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil {
		return nil
	}
	err := h.f.Sync()
	if cerr := h.f.Close(); err == nil {
		err = cerr
	}
	h.f = nil
	return err
}

// encodeHistoryRecord writes rec's payload (no framing, no CRC).
func encodeHistoryRecord(w *bytes.Buffer, rec bennett.VersionRecord) {
	var scratch [binary.MaxVarintLen64]byte
	putU := func(v uint64) { w.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	putI := func(v int64) { w.Write(scratch[:binary.PutVarint(scratch[:], v)]) }
	putU(rec.Version)
	if rec.Structural {
		putU(1)
	} else {
		putU(0)
	}
	putU(uint64(len(rec.Terms)))
	for _, t := range rec.Terms {
		putI(int64(t.Key))
		if t.ByCol {
			putU(1)
		} else {
			putU(0)
		}
		putU(uint64(len(t.W)))
		prev := int64(0)
		for _, e := range t.W {
			putI(int64(e.Row) - prev)
			prev = int64(e.Row)
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(e.Val))
			w.Write(b[:])
		}
	}
}

// decodeHistoryRecord parses one payload produced by
// encodeHistoryRecord.
func decodeHistoryRecord(p []byte) (bennett.VersionRecord, error) {
	r := bytes.NewReader(p)
	var rec bennett.VersionRecord
	u := func() (uint64, error) { return binary.ReadUvarint(r) }
	i := func() (int64, error) { return binary.ReadVarint(r) }
	var err error
	if rec.Version, err = u(); err != nil {
		return rec, err
	}
	s, err := u()
	if err != nil {
		return rec, err
	}
	rec.Structural = s != 0
	nt, err := u()
	if err != nil {
		return rec, err
	}
	if nt > maxHistoryFrame {
		return rec, fmt.Errorf("%w: %d terms", ErrCorrupt, nt)
	}
	if nt > 0 {
		rec.Terms = make([]bennett.Rank1Term, 0, min(int(nt), preallocCap))
	}
	for k := uint64(0); k < nt; k++ {
		var t bennett.Rank1Term
		key, err := i()
		if err != nil {
			return rec, err
		}
		t.Key = int(key)
		bc, err := u()
		if err != nil {
			return rec, err
		}
		t.ByCol = bc != 0
		ne, err := u()
		if err != nil {
			return rec, err
		}
		if ne > maxHistoryFrame {
			return rec, fmt.Errorf("%w: %d entries", ErrCorrupt, ne)
		}
		if ne > 0 {
			t.W = make([]sparse.Entry, 0, min(int(ne), preallocCap))
		}
		prev := int64(0)
		for j := uint64(0); j < ne; j++ {
			d, err := i()
			if err != nil {
				return rec, err
			}
			prev += d
			var b [8]byte
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return rec, err
			}
			t.W = append(t.W, sparse.Entry{Row: int(prev), Val: math.Float64frombits(binary.LittleEndian.Uint64(b[:]))})
		}
		rec.Terms = append(rec.Terms, t)
	}
	if r.Len() != 0 {
		return rec, fmt.Errorf("%w: %d trailing bytes in history record", ErrCorrupt, r.Len())
	}
	return rec, nil
}
