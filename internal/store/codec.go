package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// The codec layer: a small checksummed binary vocabulary every on-disk
// structure in this package is built from. Framing is uniform — a
// 4-byte magic, a format-version byte, the payload, and a trailing
// CRC-32C of magic+version+payload — so every reader can reject
// truncated or corrupt files instead of mis-parsing them. Integers are
// varints (zigzag for signed), floats are IEEE-754 bits little-endian;
// slice lengths are validated and preallocation is capped so hostile
// lengths cannot force huge allocations before the data proves itself.

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a checksum mismatch or structural damage in a
// store file. Recovery treats it as "this artifact does not exist".
var ErrCorrupt = errors.New("store: corrupt data")

// maxSliceLen bounds any single length field a codec reader accepts.
const maxSliceLen = 1 << 31

// preallocCap bounds optimistic preallocation for untrusted lengths.
const preallocCap = 1 << 16

// cw is a checksumming writer: everything written flows through the
// CRC so the trailer can seal the frame.
type cw struct {
	w       *bufio.Writer
	crc     hash.Hash32
	err     error
	scratch [binary.MaxVarintLen64]byte
}

func newCW(w io.Writer) *cw {
	return &cw{w: bufio.NewWriter(w), crc: crc32.New(castagnoli)}
}

func (c *cw) bytes(p []byte) {
	if c.err != nil {
		return
	}
	if _, err := c.w.Write(p); err != nil {
		c.err = err
		return
	}
	c.crc.Write(p)
}

func (c *cw) u64(v uint64) {
	n := binary.PutUvarint(c.scratch[:], v)
	c.bytes(c.scratch[:n])
}

func (c *cw) i64(v int64) {
	n := binary.PutVarint(c.scratch[:], v)
	c.bytes(c.scratch[:n])
}

func (c *cw) bool(v bool) {
	if v {
		c.u64(1)
	} else {
		c.u64(0)
	}
}

func (c *cw) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	c.bytes(b[:])
}

func (c *cw) str(s string) {
	c.u64(uint64(len(s)))
	c.bytes([]byte(s))
}

func (c *cw) ints(s []int) {
	c.u64(uint64(len(s)))
	for _, v := range s {
		c.i64(int64(v))
	}
}

// intsDelta encodes an int slice as its first value followed by
// consecutive differences, each zigzag-varint. Index arrays — CSR row
// pointers, per-column row indices, head tables — are near-monotone
// with small strides, so the diffs collapse to one byte each where the
// plain encoding pays one byte per significant digit pair. Occasional
// backward jumps (column boundaries) cost a few bytes and stay exact:
// the transform is lossless for any contents.
func (c *cw) intsDelta(s []int) {
	c.u64(uint64(len(s)))
	prev := int64(0)
	for _, v := range s {
		c.i64(int64(v) - prev)
		prev = int64(v)
	}
}

func (c *cr) intsDelta() []int {
	n := c.length(maxSliceLen)
	if c.err != nil {
		return nil
	}
	out := make([]int, 0, min(n, preallocCap))
	prev := int64(0)
	for i := 0; i < n && c.err == nil; i++ {
		prev += c.i64()
		if int64(int(prev)) != prev {
			c.fail(fmt.Errorf("%w: delta-coded integer %d overflows int", ErrCorrupt, prev))
			return nil
		}
		out = append(out, int(prev))
	}
	if c.err != nil {
		return nil
	}
	return out
}

// idx writes an index array under the frame's format version: delta
// coding from version 2, the plain varint stream before. Permutations
// are NOT idx-coded — their diffs are as random as their values, so
// they stay plain at every version.
func (c *cw) idx(ver byte, s []int) {
	if ver >= 2 {
		c.intsDelta(s)
	} else {
		c.ints(s)
	}
}

func (c *cr) idx(ver byte) []int {
	if ver >= 2 {
		return c.intsDelta()
	}
	return c.ints()
}

func (c *cw) floats(s []float64) {
	c.u64(uint64(len(s)))
	for _, v := range s {
		c.f64(v)
	}
}

// seal writes the CRC trailer (not itself checksummed) and flushes.
func (c *cw) seal() error {
	if c.err != nil {
		return c.err
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], c.crc.Sum32())
	if _, err := c.w.Write(b[:]); err != nil {
		return err
	}
	return c.w.Flush()
}

// cr is the checksumming reader mirroring cw. Every read feeds the
// CRC; verify compares against the stored trailer once the structural
// read is complete.
type cr struct {
	r   *bufio.Reader
	crc hash.Hash32
	err error
}

func newCR(r io.Reader) *cr {
	return &cr{r: bufio.NewReader(r), crc: crc32.New(castagnoli)}
}

func (c *cr) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *cr) bytes(p []byte) {
	if c.err != nil {
		return
	}
	if _, err := io.ReadFull(c.r, p); err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return
	}
	c.crc.Write(p)
}

// byteReader adapts the checksum accounting to binary.ReadUvarint.
type byteReader struct{ c *cr }

func (b byteReader) ReadByte() (byte, error) {
	v, err := b.c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	b.c.crc.Write([]byte{v})
	return v, nil
}

func (c *cr) u64() uint64 {
	if c.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(byteReader{c})
	if err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return 0
	}
	return v
}

func (c *cr) i64() int64 {
	if c.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(byteReader{c})
	if err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return 0
	}
	return v
}

func (c *cr) bool() bool { return c.u64() != 0 }

// intv reads a signed value that must fit the platform int.
func (c *cr) intv() int {
	v := c.i64()
	if int64(int(v)) != v {
		c.fail(fmt.Errorf("%w: integer %d overflows int", ErrCorrupt, v))
		return 0
	}
	return int(v)
}

func (c *cr) f64() float64 {
	var b [8]byte
	c.bytes(b[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

func (c *cr) str(maxLen int) string {
	n := c.length(maxLen)
	if c.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	c.bytes(b)
	return string(b)
}

// length reads and bounds a slice length.
func (c *cr) length(maxLen int) int {
	n := c.u64()
	if n > uint64(maxLen) {
		c.fail(fmt.Errorf("%w: length %d exceeds bound %d", ErrCorrupt, n, maxLen))
		return 0
	}
	return int(n)
}

func (c *cr) ints() []int {
	n := c.length(maxSliceLen)
	if c.err != nil {
		return nil
	}
	out := make([]int, 0, min(n, preallocCap))
	for i := 0; i < n && c.err == nil; i++ {
		out = append(out, c.intv())
	}
	if c.err != nil {
		return nil
	}
	return out
}

func (c *cr) floats() []float64 {
	n := c.length(maxSliceLen)
	if c.err != nil {
		return nil
	}
	out := make([]float64, 0, min(n, preallocCap))
	for i := 0; i < n && c.err == nil; i++ {
		out = append(out, c.f64())
	}
	if c.err != nil {
		return nil
	}
	return out
}

// verify reads the CRC trailer and compares it with the running sum.
func (c *cr) verify() error {
	if c.err != nil {
		return c.err
	}
	want := c.crc.Sum32()
	var b [4]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		return fmt.Errorf("%w: missing checksum trailer: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(b[:]); got != want {
		return fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, got, want)
	}
	return nil
}

// header writes the shared frame prologue.
func (c *cw) header(magic string, version byte) {
	c.bytes([]byte(magic))
	c.bytes([]byte{version})
}

// expectHeader validates the frame prologue and returns the format
// version (callers dispatch on it; unknown versions are errors so old
// binaries fail loudly on new files).
func (c *cr) expectHeader(magic string, maxVersion byte) (byte, error) {
	got := make([]byte, len(magic))
	c.bytes(got)
	if c.err != nil {
		return 0, c.err
	}
	if string(got) != magic {
		return 0, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, got, magic)
	}
	var v [1]byte
	c.bytes(v[:])
	if c.err != nil {
		return 0, c.err
	}
	if v[0] == 0 || v[0] > maxVersion {
		return 0, fmt.Errorf("store: unsupported %s format version %d (max %d)", magic, v[0], maxVersion)
	}
	return v[0], nil
}
