package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/xrand"
)

// probe solves one fixed system on the stream's current factors.
func probe(t *testing.T, s *core.Stream, n int) []float64 {
	t.Helper()
	b := make([]float64, n)
	b[1] = 0.15
	var x []float64
	if !s.View(func(_ uint64, sv *lu.Solver) { x = sv.Solve(b) }) {
		t.Fatal("stream has no published state")
	}
	return x
}

// TestKillPointRecoveryExact is the acceptance property: for every
// strategy and every kill point in a batch sequence, abandoning the
// process state (as SIGKILL would) and recovering from disk must yield
// a stream whose complete exported state — factors, graph, tracker,
// counters — is identical to the abandoned one's, and whose future
// evolution matches an uninterrupted run bit for bit.
func TestKillPointRecoveryExact(t *testing.T) {
	const n = 34
	rng := xrand.New(23)
	g0 := randomGraph(n, 40, rng)
	batches := randomBatches(n, 10, 5, rng)
	derive := graph.RWRMatrix(0.85)

	for _, alg := range []core.Algorithm{core.BF, core.INC, core.CINC, core.CLUDE} {
		cfg := core.StreamConfig{Algorithm: alg, Alpha: 0.9, Initial: g0, Derive: derive}

		// Uninterrupted reference run: the probe solution per version.
		ref := streamAfter(t, alg, g0, batches)
		refFinal := probe(t, ref, n)
		refFinalState, err := ref.ExportState()
		ref.Close()
		if err != nil {
			t.Fatal(err)
		}

		for _, kill := range []int{0, 1, 4, 7, len(batches)} {
			dir := t.TempDir()
			st, err := Open(dir, Options{Sync: SyncAlways, SnapshotEvery: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			s1, info, err := st.OpenStream(cfg)
			if err != nil {
				t.Fatalf("%s kill=%d: OpenStream: %v", alg, kill, err)
			}
			if info.Recovered {
				t.Fatalf("%s kill=%d: fresh directory reported a recovery", alg, kill)
			}
			for i := 0; i < kill; i++ {
				if _, err := s1.Apply(batches[i]); err != nil {
					t.Fatalf("%s kill=%d: batch %d: %v", alg, kill, i, err)
				}
				if i == kill/2 {
					// A mid-stream checkpoint, so recovery exercises
					// snapshot + WAL-tail rather than pure replay.
					if err := st.Snapshot(); err != nil {
						t.Fatal(err)
					}
				}
			}
			wantState, err := s1.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			want := probe(t, s1, n)
			// SIGKILL: no Close, no final snapshot — the disk holds only
			// what the WAL (fsync always) and past checkpoints captured.
			s1.Close()
			st.wal.Close()

			s2, st2, rinfo, err := Recover(dir, cfg, Options{Sync: SyncAlways, SnapshotEvery: 1 << 20})
			if err != nil {
				t.Fatalf("%s kill=%d: Recover: %v", alg, kill, err)
			}
			if rinfo.Version != wantState.Version {
				t.Fatalf("%s kill=%d: recovered version %d, want %d", alg, kill, rinfo.Version, wantState.Version)
			}
			gotState, err := s2.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantState, gotState) {
				t.Errorf("%s kill=%d: recovered state differs from pre-kill state", alg, kill)
			}
			if got := probe(t, s2, n); !reflect.DeepEqual(want, got) {
				t.Errorf("%s kill=%d: recovered solve differs bit-wise from pre-kill solve", alg, kill)
			}
			// The recovered stream must continue exactly like the
			// uninterrupted run.
			for i := kill; i < len(batches); i++ {
				if _, err := s2.Apply(batches[i]); err != nil {
					t.Fatalf("%s kill=%d: post-recovery batch %d: %v", alg, kill, i, err)
				}
			}
			if got := probe(t, s2, n); !reflect.DeepEqual(refFinal, got) {
				t.Errorf("%s kill=%d: post-recovery continuation diverged from uninterrupted run", alg, kill)
			}
			finalState, err := s2.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refFinalState, finalState) {
				t.Errorf("%s kill=%d: final state diverged from uninterrupted run", alg, kill)
			}
			s2.Close()
			if err := st2.Close(); err != nil {
				t.Errorf("%s kill=%d: store close: %v", alg, kill, err)
			}
		}
	}
}

// TestRecoverFallsBackOnCorruptSnapshot pins the satellite requirement:
// a corrupt (truncated) newest snapshot must not abort recovery — the
// previous snapshot plus a longer WAL replay reaches the same state.
func TestRecoverFallsBackOnCorruptSnapshot(t *testing.T) {
	const n = 30
	rng := xrand.New(29)
	g0 := randomGraph(n, 34, rng)
	batches := randomBatches(n, 8, 5, rng)
	cfg := core.StreamConfig{Algorithm: core.CLUDE, Alpha: 0.9, Initial: g0, Derive: graph.RWRMatrix(0.85)}

	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncAlways, SnapshotEvery: 1 << 20, KeepSnapshots: 4})
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := st.OpenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, evs := range batches {
		if _, err := s1.Apply(evs); err != nil {
			t.Fatal(err)
		}
		if i == 2 || i == 5 {
			if err := st.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantState, err := s1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	want := probe(t, s1, n)
	s1.Close()
	st.wal.Close()

	// Corrupt the newest snapshot two different ways across two
	// recoveries: truncation, then a byte flip.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) < 2 {
		t.Fatalf("want >= 2 snapshots on disk, got %d", len(snaps))
	}
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, st2, info, err := Recover(dir, cfg, Options{Sync: SyncAlways, SnapshotEvery: 1 << 20, KeepSnapshots: 4})
	if err != nil {
		t.Fatalf("Recover with corrupt newest snapshot: %v", err)
	}
	if info.SnapshotsSkipped != 1 {
		t.Errorf("SnapshotsSkipped = %d, want 1", info.SnapshotsSkipped)
	}
	if !info.Recovered {
		t.Error("fallback recovery not reported as recovered")
	}
	gotState, err := s2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantState, gotState) {
		t.Error("fallback recovery did not reach the pre-kill state")
	}
	if got := probe(t, s2, n); !reflect.DeepEqual(want, got) {
		t.Error("fallback recovery solve differs from pre-kill solve")
	}
	s2.Close()
	st2.Close()
}

// TestRecoverNoSnapshot pins the Recover contract on an empty or
// snapshot-less directory.
func TestRecoverNoSnapshot(t *testing.T) {
	cfg := core.StreamConfig{Algorithm: core.INC, Initial: graph.New(4, false, []graph.Edge{{From: 0, To: 1}}), Derive: graph.RWRMatrix(0.85)}
	_, _, _, err := Recover(t.TempDir(), cfg, Options{})
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Recover on empty dir: %v, want ErrNoSnapshot", err)
	}
}

// TestOpenStreamColdStartReplaysPreSnapshotWAL covers the crash window
// before the first checkpoint exists: WAL records over a fresh stream
// must still be replayed exactly.
func TestOpenStreamColdStartReplaysPreSnapshotWAL(t *testing.T) {
	const n = 22
	rng := xrand.New(31)
	g0 := randomGraph(n, 26, rng)
	batches := randomBatches(n, 4, 4, rng)
	cfg := core.StreamConfig{Algorithm: core.CINC, Alpha: 0.9, Initial: g0, Derive: graph.RWRMatrix(0.85)}

	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncAlways, SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := st.OpenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, evs := range batches {
		if _, err := s1.Apply(evs); err != nil {
			t.Fatal(err)
		}
	}
	wantState, _ := s1.ExportState()
	s1.Close()
	st.wal.Close()

	// Delete every snapshot: only the initial-snapshot-less WAL path
	// remains (equivalent to a crash before the first checkpoint if the
	// initial snapshot write itself was lost).
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	for _, s := range snaps {
		os.Remove(s)
	}

	st2, err := Open(dir, Options{Sync: SyncAlways, SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s2, info, err := st2.OpenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Error("snapshot-less boot reported recovered")
	}
	if info.ReplayedBatches != len(batches) {
		t.Errorf("replayed %d batches, want %d", info.ReplayedBatches, len(batches))
	}
	gotState, _ := s2.ExportState()
	if !reflect.DeepEqual(wantState, gotState) {
		t.Error("cold-start WAL replay did not reach the pre-kill state")
	}
	s2.Close()
	st2.Close()
}
