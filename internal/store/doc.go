// Package store is the durability subsystem of the streaming pipeline:
// versioned binary codecs for the factor containers and graph state, a
// segment-based write-ahead log of edge-delta batches, and ARIES-style
// checkpoint + log recovery that hands the serving layer a fully warm
// solver at the exact pre-crash version.
//
// The paper's central economy is that LU factors over an evolving graph
// sequence are expensive to build and cheap to reuse; this package
// extends that economy across process lifetimes. Three layers:
//
//   - Codec (codec.go, factors.go, graphio.go, state.go): length- and
//     checksum-framed binary encodings for lu.StaticFactors,
//     lu.DynamicFactors, graph.Graph, sparse patterns/matrices/
//     orderings, the cluster tracker, and the complete core.StreamState.
//     Only primary structure is written; derived indices (factor cross
//     views, column mirrors) are reassembled on read, so round trips
//     are bit-identical by construction.
//
//   - WAL (wal.go): every validated batch is appended — CRC-framed,
//     sequence-numbered, fsync policy configurable — through the
//     core.StreamConfig.LogBatch hook BEFORE any in-memory state
//     mutates. Segments rotate by size and are truncated once a
//     retained snapshot covers them. Torn tails are detected and
//     physically discarded on open.
//
//   - Recovery (store.go): Store.OpenStream loads the newest snapshot
//     that passes its checksum (falling back to older ones on
//     corruption), restores the stream via core.RestoreStream, and
//     replays the WAL tail through Stream.ReplayBatch — the exact code
//     path live batches take — so the recovered factors are
//     bit-identical to an uninterrupted run at the same version.
//     Snapshots are written in the background every SnapshotEvery
//     published versions, plus once on Close for replay-free restarts.
//
// See docs/PERSISTENCE.md for the on-disk layout, the format versioning
// policy, and the fsync/durability trade-offs.
package store
