package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/bennett"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// recordHistory runs a stream and collects every OnHistory record — the
// live-run truth the sidecar tests compare against.
func recordHistory(t *testing.T, alg core.Algorithm, g0 *graph.Graph, batches [][]graph.EdgeEvent) []bennett.VersionRecord {
	t.Helper()
	var recs []bennett.VersionRecord
	s, err := core.NewStream(core.StreamConfig{
		Algorithm: alg, Alpha: 0.9, Initial: g0, Derive: graph.RWRMatrix(0.85),
		OnHistory: func(_ *lu.Solver, rec bennett.VersionRecord) { recs = append(recs, rec) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, evs := range batches {
		if _, err := s.Apply(evs); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	return recs
}

// randomRecords fabricates version records with adversarial contents
// (negative keys, unsorted supports, denormal values) — the codec must
// be lossless regardless of what SplitTerms happens to emit today.
func randomRecords(rng *xrand.Rand, count int) []bennett.VersionRecord {
	out := make([]bennett.VersionRecord, count)
	for i := range out {
		rec := bennett.VersionRecord{Version: uint64(i), Structural: rng.Intn(4) == 0}
		for k := rng.Intn(4); k > 0; k-- {
			tm := bennett.Rank1Term{Key: rng.Intn(100) - 50, ByCol: rng.Intn(2) == 0}
			for j := rng.Intn(5); j > 0; j-- {
				tm.W = append(tm.W, sparse.Entry{Row: rng.Intn(200) - 100, Val: rng.NormFloat64() * 1e-20})
			}
			rec.Terms = append(rec.Terms, tm)
		}
		out[i] = rec
	}
	return out
}

// TestHistoryRecordCodecRoundTrip checks the payload codec alone:
// encode → decode must reproduce every field bit for bit.
func TestHistoryRecordCodecRoundTrip(t *testing.T) {
	rng := xrand.New(67)
	for _, rec := range randomRecords(rng, 40) {
		var buf bytes.Buffer
		encodeHistoryRecord(&buf, rec)
		got, err := decodeHistoryRecord(buf.Bytes())
		if err != nil {
			t.Fatalf("version %d: %v", rec.Version, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Errorf("version %d: record did not round-trip", rec.Version)
		}
	}
}

// TestHistoryFileAppendScan writes records, reopens the file, and
// expects the scan to return them all; the idempotency guard must
// swallow re-appends of already-persisted versions.
func TestHistoryFileAppendScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.cluh")
	rng := xrand.New(71)
	recs := randomRecords(rng, 25)

	h, err := OpenHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Replay re-fires: versions at or below the newest must be no-ops.
	before, _ := h.Counters()
	for _, rec := range recs[10:] {
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if after, _ := h.Counters(); after != before {
		t.Errorf("re-append grew records %d -> %d", before, after)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := OpenHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	got := h2.LoadHistory()
	if !reflect.DeepEqual(recs, got) {
		t.Fatalf("scan returned %d records, differing from the %d written", len(got), len(recs))
	}
}

// TestHistoryFileCompaction is the sidecar-retention regression: the
// file must shrink when the serving layer's floor passes dead records,
// keep exactly the live suffix (bit-identical across a reopen), and
// keep accepting appends afterwards.
func TestHistoryFileCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.cluh")
	rng := xrand.New(42)
	recs := randomRecords(rng, 100)

	h, err := OpenHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	_, bytesBefore := h.Counters()

	h.SetFloor(60)
	if err := h.MaybeCompact(); err != nil {
		t.Fatal(err)
	}
	if got := h.Compactions(); got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}
	nRecs, bytesAfter := h.Counters()
	if nRecs != 40 {
		t.Errorf("records after compaction = %d, want 40", nRecs)
	}
	if bytesAfter >= bytesBefore {
		t.Errorf("compaction did not shrink the file: %d -> %d bytes", bytesBefore, bytesAfter)
	}

	// Appends keep working on the swapped handle, and the idempotency
	// guard still covers versions the file has seen.
	if err := h.Append(recs[99]); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.Counters(); n != 40 {
		t.Errorf("re-append of a seen version grew records to %d", n)
	}
	extra := bennett.VersionRecord{Version: 100, Terms: []bennett.Rank1Term{{Key: 3, W: []sparse.Entry{{Row: 7, Val: 0.5}}}}}
	if err := h.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := OpenHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	want := append(append([]bennett.VersionRecord(nil), recs[60:]...), extra)
	got := h2.LoadHistory()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reopened file holds %d records, want the %d live ones", len(got), len(want))
	}
}

// TestHistoryFileCompactionPolicy checks MaybeCompact's trigger: a
// floor covering less than a quarter of the version span is not worth
// a rewrite; one past it is.
func TestHistoryFileCompactionPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.cluh")
	rng := xrand.New(7)
	h, err := OpenHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for _, rec := range randomRecords(rng, 100) {
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	h.SetFloor(10) // 10% droppable: not worth a rewrite
	if err := h.MaybeCompact(); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.Counters(); n != 100 || h.Compactions() != 0 {
		t.Errorf("small floor triggered a rewrite: records=%d compactions=%d", n, h.Compactions())
	}

	h.SetFloor(5) // floors never regress
	h.SetFloor(25)
	if err := h.MaybeCompact(); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.Counters(); n != 75 || h.Compactions() != 1 {
		t.Errorf("quarter floor: records=%d compactions=%d, want 75/1", n, h.Compactions())
	}
}

// TestHistoryFileTornTail truncates the file mid-frame at every byte
// boundary of the final record and expects the scan to keep every
// complete predecessor, truncate the tail, and accept new appends.
func TestHistoryFileTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.cluh")
	rng := xrand.New(73)
	recs := randomRecords(rng, 6)

	h, err := OpenHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[:5] {
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	mark, _ := os.Stat(path)
	if err := h.Append(recs[5]); err != nil {
		t.Fatal(err)
	}
	h.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int(mark.Size()) + 1; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		h2, err := OpenHistory(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := h2.LoadHistory()
		if !reflect.DeepEqual(recs[:5], got) {
			t.Fatalf("cut %d: torn scan kept %d records, want the 5 complete ones", cut, len(got))
		}
		// The file must accept appends on the truncated boundary.
		if err := h2.Append(recs[5]); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		h2.Close()
		h3, err := OpenHistory(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := h3.LoadHistory(); !reflect.DeepEqual(recs, got) {
			t.Fatalf("cut %d: repaired file lost records", cut)
		}
		h3.Close()
	}
}

// TestHistorySurvivesKillPointRecovery is the tentpole's durability
// property: for every kill point, the union of the sidecar's scanned
// records and the records re-fired during WAL replay must equal the
// uninterrupted run's record sequence bit for bit — so a restarted
// serving engine seeds exactly the history the live one had.
func TestHistorySurvivesKillPointRecovery(t *testing.T) {
	const n = 30
	rng := xrand.New(83)
	g0 := randomGraph(n, 34, rng)
	batches := randomBatches(n, 8, 5, rng)

	for _, alg := range []core.Algorithm{core.INC, core.CLUDE} {
		want := recordHistory(t, alg, g0, batches)

		for _, kill := range []int{0, 3, 5, len(batches)} {
			dir := t.TempDir()
			st, err := Open(dir, Options{Sync: SyncAlways, SnapshotEvery: 1 << 20, History: true})
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.StreamConfig{Algorithm: alg, Alpha: 0.9, Initial: g0, Derive: graph.RWRMatrix(0.85)}
			s1, _, err := st.OpenStream(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < kill; i++ {
				if _, err := s1.Apply(batches[i]); err != nil {
					t.Fatal(err)
				}
				if i == kill/2 {
					if err := st.Snapshot(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// SIGKILL: no Close — the sidecar tail past the last page
			// flush may be torn, which the recovery accounting below
			// tolerates by construction (WAL replay regenerates it).
			s1.Close()
			st.wal.Close()
			if st.hist != nil {
				st.hist.Close()
			}

			st2, err := Open(dir, Options{Sync: SyncAlways, SnapshotEvery: 1 << 20, History: true})
			if err != nil {
				t.Fatal(err)
			}
			// Seed-then-open, the order cludeserve uses: scanned records
			// first, replay-refired ones on top.
			got := append([]bennett.VersionRecord(nil), st2.LoadHistory()...)
			seeded := len(got)
			cfg2 := cfg
			cfg2.OnHistory = func(_ *lu.Solver, rec bennett.VersionRecord) {
				for len(got) > 0 && got[len(got)-1].Version >= rec.Version {
					got = got[:len(got)-1] // replay overwrites, like HistoryLog.Record
				}
				got = append(got, rec)
			}
			s2, _, err := st2.OpenStream(cfg2)
			if err != nil {
				t.Fatalf("%s kill=%d: reopen: %v", alg, kill, err)
			}
			// The restored stream publishes its snapshot version as a
			// structural record (a clean chain restart); everything else
			// must match the live run exactly.
			wantHere := append([]bennett.VersionRecord(nil), want[:kill+1]...)
			if len(got) != len(wantHere) {
				t.Fatalf("%s kill=%d: %d records after recovery (%d seeded), want %d", alg, kill, len(got), seeded, len(wantHere))
			}
			for i := range wantHere {
				w, g := wantHere[i], got[i]
				if g.Version != w.Version {
					t.Fatalf("%s kill=%d: record %d version %d, want %d", alg, kill, i, g.Version, w.Version)
				}
				if g.Structural && !w.Structural {
					continue // snapshot-restart record: conservative, never wrong
				}
				if !reflect.DeepEqual(w, g) {
					t.Errorf("%s kill=%d: record for version %d differs from live run", alg, kill, w.Version)
				}
			}
			s2.Close()
			st2.Close()
		}
	}
}

// TestCodecV1BackCompat writes frame bodies at format version 1 (the
// plain-varint layout shipped before delta coding) and checks the
// public readers still parse them — old snapshot and spill files must
// survive a binary upgrade.
func TestCodecV1BackCompat(t *testing.T) {
	rng := xrand.New(89)
	g0 := randomGraph(30, 30, rng)
	s := streamAfter(t, core.CLUDE, g0, randomBatches(30, 6, 5, rng))
	defer s.Close()
	var solver *lu.Solver
	if !s.View(func(_ uint64, sv *lu.Solver) { solver = sv.Clone() }) {
		t.Fatal("no published state")
	}

	var buf bytes.Buffer
	c := newCW(&buf)
	c.header(factorsMagic, 1)
	writeFactorsBody(c, solver.F, 1)
	if c.err != nil {
		t.Fatal(c.err)
	}
	if err := c.seal(); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFactors(&buf)
	if err != nil {
		t.Fatalf("reading v1 factors frame: %v", err)
	}
	if !reflect.DeepEqual(solver.F, f) {
		t.Error("v1 factors frame did not round-trip")
	}

	buf.Reset()
	c = newCW(&buf)
	c.header(solverMagic, 1)
	writeOrdering(c, solver.O)
	writeFactorsBody(c, solver.F, 1)
	if c.err != nil {
		t.Fatal(c.err)
	}
	if err := c.seal(); err != nil {
		t.Fatal(err)
	}
	sv, err := ReadSolver(&buf)
	if err != nil {
		t.Fatalf("reading v1 solver frame: %v", err)
	}
	if !reflect.DeepEqual(solver, sv) {
		t.Error("v1 solver frame did not round-trip")
	}
}

// TestIntsDeltaRoundTrip exercises the delta primitive on adversarial
// shapes: empty, negative, non-monotone, extremes.
func TestIntsDeltaRoundTrip(t *testing.T) {
	cases := [][]int{
		nil,
		{},
		{0},
		{5, 5, 5},
		{0, 1, 2, 3, 1000000, 3, -7},
		{-1 << 40, 1 << 40, 0},
	}
	rng := xrand.New(97)
	for k := 0; k < 20; k++ {
		s := make([]int, rng.Intn(50))
		for i := range s {
			s[i] = rng.Intn(1 << 20)
		}
		cases = append(cases, s)
	}
	for _, want := range cases {
		var buf bytes.Buffer
		c := newCW(&buf)
		c.intsDelta(want)
		if err := c.seal(); err != nil {
			t.Fatal(err)
		}
		r := newCR(&buf)
		got := r.intsDelta()
		if err := r.verify(); err != nil {
			t.Fatalf("%v: %v", want, err)
		}
		if len(want) == 0 {
			if len(got) != 0 {
				t.Errorf("empty slice decoded to %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("intsDelta(%v) round-tripped to %v", want, got)
		}
	}
}
