package store

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/graph"
)

// Graph and cluster-tracker codecs. A graph is stored as its canonical
// edge list and rebuilt through graph.New, whose construction is
// deterministic — the restored snapshot is field-for-field identical to
// the one written, so matrices derived from it are bit-identical too.

const graphMagic = "CLUG"

// WriteGraph serializes a snapshot graph as a self-contained frame.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	c := newCW(w)
	c.header(graphMagic, 1)
	writeGraphBody(c, g)
	if c.err != nil {
		return c.err
	}
	return c.seal()
}

// ReadGraph parses a WriteGraph frame.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	c := newCR(r)
	if _, err := c.expectHeader(graphMagic, 1); err != nil {
		return nil, err
	}
	g := readGraphBody(c)
	if c.err != nil {
		return nil, c.err
	}
	if err := c.verify(); err != nil {
		return nil, err
	}
	return g, nil
}

func writeGraphBody(c *cw, g *graph.Graph) {
	c.i64(int64(g.N()))
	c.bool(g.Directed())
	es := g.Edges()
	c.u64(uint64(len(es)))
	for _, e := range es {
		c.i64(int64(e.From))
		c.i64(int64(e.To))
	}
}

func readGraphBody(c *cr) *graph.Graph {
	n := c.intv()
	directed := c.bool()
	m := c.length(maxSliceLen)
	if c.err != nil {
		return nil
	}
	if n < 0 {
		c.fail(fmt.Errorf("%w: negative vertex count %d", ErrCorrupt, n))
		return nil
	}
	edges := make([]graph.Edge, 0, min(m, preallocCap))
	for k := 0; k < m && c.err == nil; k++ {
		u, v := c.intv(), c.intv()
		if u < 0 || u >= n || v < 0 || v >= n {
			c.fail(fmt.Errorf("%w: edge (%d,%d) outside [0,%d)", ErrCorrupt, u, v, n))
			return nil
		}
		edges = append(edges, graph.Edge{From: u, To: v})
	}
	if c.err != nil {
		return nil
	}
	return graph.New(n, directed, edges)
}

// writeTracker / readTracker encode the α-membership state; nil is
// legal (BF/INC streams have no tracker).
func writeTracker(c *cw, st *cluster.TrackerState, ver byte) {
	if st == nil {
		c.bool(false)
		return
	}
	c.bool(true)
	c.f64(st.Alpha)
	c.i64(int64(st.Start))
	c.i64(int64(st.End))
	c.i64(int64(st.Clusters))
	writePattern(c, st.Inter, ver)
	writePattern(c, st.Union, ver)
}

func readTracker(c *cr, ver byte) *cluster.TrackerState {
	if !c.bool() || c.err != nil {
		return nil
	}
	st := &cluster.TrackerState{
		Alpha:    c.f64(),
		Start:    c.intv(),
		End:      c.intv(),
		Clusters: c.intv(),
	}
	st.Inter = readPattern(c, ver)
	st.Union = readPattern(c, ver)
	if c.err != nil {
		return nil
	}
	return st
}
