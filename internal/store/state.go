package store

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/lu"
)

// Stream-state (snapshot) codec: the complete core.StreamState as one
// checksummed frame. This is the checkpoint half of checkpoint+log —
// everything a stream needs to resume exactly, so recovery only has to
// replay the WAL tail, never re-derive history.

const stateMagic = "CLUD"

// WriteStreamState serializes a complete stream checkpoint.
func WriteStreamState(w io.Writer, st *core.StreamState) error {
	c := newCW(w)
	c.header(stateMagic, codecVersion)

	c.str(string(st.Algorithm))
	c.f64(st.Alpha)
	c.u64(st.Version)
	c.u64(st.Seq)

	writeGraphBody(c, st.Graph)
	writeTracker(c, st.Tracker, codecVersion)
	writeOrdering(c, st.Ord)

	switch {
	case st.Dyn != nil:
		c.bool(true)
		writeFactorsBody(c, st.Dyn, codecVersion)
	case st.Static != nil:
		c.bool(true)
		writeFactorsBody(c, st.Static, codecVersion)
	default:
		c.bool(false)
	}

	writeCSR(c, st.Prev, codecVersion)
	writePattern(c, st.StructUnion, codecVersion)

	// Counters, individually: StreamStats excludes the Bennett block
	// from JSON, and a positional binary layout keeps old files readable
	// when fields grow (new fields append under a bumped version).
	c.i64(int64(st.Stats.Batches))
	c.i64(int64(st.Stats.Events))
	c.i64(int64(st.Stats.EventsApplied))
	c.i64(int64(st.Stats.Clusters))
	c.i64(int64(st.Stats.StructRebuilds))
	c.i64(int64(st.Stats.Refactorizations))
	c.i64(int64(st.Stats.Bennett.Rank1Updates))
	c.i64(int64(st.Stats.Bennett.StepsTouched))
	c.i64(int64(st.Stats.Bennett.Dropped))
	c.i64(int64(st.RetiredInserts))
	c.i64(int64(st.RetiredScans))

	if c.err != nil {
		return c.err
	}
	return c.seal()
}

// ReadStreamState parses a WriteStreamState frame back into a state
// ready for core.RestoreStream.
func ReadStreamState(r io.Reader) (*core.StreamState, error) {
	c := newCR(r)
	ver, err := c.expectHeader(stateMagic, codecVersion)
	if err != nil {
		return nil, err
	}
	st := &core.StreamState{
		Algorithm: core.Algorithm(c.str(64)),
		Alpha:     c.f64(),
		Version:   c.u64(),
		Seq:       c.u64(),
	}
	st.Graph = readGraphBody(c)
	st.Tracker = readTracker(c, ver)
	st.Ord = readOrdering(c)

	if c.bool() && c.err == nil {
		switch f := readFactorsBody(c, ver).(type) {
		case *lu.DynamicFactors:
			st.Dyn = f
		case *lu.StaticFactors:
			st.Static = f
		}
	}

	st.Prev = readCSR(c, ver)
	st.StructUnion = readPattern(c, ver)

	st.Stats.Batches = c.intv()
	st.Stats.Events = c.intv()
	st.Stats.EventsApplied = c.intv()
	st.Stats.Clusters = c.intv()
	st.Stats.StructRebuilds = c.intv()
	st.Stats.Refactorizations = c.intv()
	st.Stats.Bennett.Rank1Updates = c.intv()
	st.Stats.Bennett.StepsTouched = c.intv()
	st.Stats.Bennett.Dropped = c.intv()
	st.RetiredInserts = c.intv()
	st.RetiredScans = c.intv()
	st.Stats.Version = st.Version

	if c.err != nil {
		return nil, c.err
	}
	if err := c.verify(); err != nil {
		return nil, err
	}
	if st.Graph == nil {
		return nil, fmt.Errorf("%w: stream state without a graph", ErrCorrupt)
	}
	return st, nil
}
