package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bennett"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lu"
)

// The durability manager: one Store owns a data directory holding
// factor snapshots (snap-<seq>.snap) and the WAL (wal/), wires itself
// into a core.Stream through the LogBatch and OnPublish hooks, writes
// checkpoints in the background, and recovers crashed streams by
// loading the newest valid snapshot and replaying the WAL tail.

// ErrNoSnapshot reports a recovery attempt on a directory holding no
// usable snapshot.
var ErrNoSnapshot = errors.New("store: no usable snapshot")

// Options configures a Store. The zero value is usable: fsync on every
// batch, a snapshot every 64 published versions, two snapshots
// retained.
type Options struct {
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SnapshotEvery is the number of published versions between
	// background checkpoints. <= 0 means 64.
	SnapshotEvery uint64
	// KeepSnapshots is how many snapshots to retain; older ones are
	// deleted and the WAL truncated to the oldest survivor's coverage.
	// < 2 means 2 (the second-newest is the corruption fallback).
	KeepSnapshots int
	// SegmentBytes is the WAL rotation threshold. <= 0 means 4 MiB.
	SegmentBytes int64
	// History enables the delta-record sidecar (history.cluh): every
	// published version's bennett.VersionRecord is appended, and
	// LoadHistory returns the records found at open time so a serving
	// engine can seed its delta-compressed history across restarts.
	// Best-effort durability: append errors are counted, never fatal,
	// and a torn tail only shrinks the materializable window.
	History bool
	// OnStage, when non-nil, receives the duration of each durability
	// stage: "wal_append" per logged batch (durable write + fsync per
	// the sync policy), "snapshot" per checkpoint written, and
	// "compaction" per history-sidecar compaction attempt (fires inside
	// the snapshot stage, so the two overlap). Must be fast and
	// non-blocking — wal_append fires inside the stream's commit path.
	// The hook keeps this package import-clean of any metrics
	// implementation.
	OnStage func(stage string, d time.Duration)
}

// RecoveryInfo describes what OpenStream found and did.
type RecoveryInfo struct {
	// Recovered is true when a snapshot was loaded (warm restart);
	// false means a cold start (empty or snapshot-less directory).
	Recovered bool `json:"recovered"`
	// SnapshotSeq/SnapshotVersion identify the loaded checkpoint.
	SnapshotSeq     uint64 `json:"snapshot_seq"`
	SnapshotVersion uint64 `json:"snapshot_version"`
	// SnapshotsSkipped counts newer snapshots rejected as corrupt
	// before one loaded.
	SnapshotsSkipped int `json:"snapshots_skipped"`
	// ReplayedBatches is the number of WAL records applied on top of
	// the snapshot; ReplayErrors counts records whose strategy step
	// failed (deterministically, exactly as it did live).
	ReplayedBatches int `json:"replayed_batches"`
	ReplayErrors    int `json:"replay_errors"`
	// Version is the stream's version after recovery completed.
	Version uint64 `json:"version"`
}

// StoreStats is a point-in-time snapshot of the store's counters.
type StoreStats struct {
	Dir                 string       `json:"dir"`
	Sync                string       `json:"sync"`
	WALRecords          int64        `json:"wal_records"`
	WALBytes            int64        `json:"wal_bytes"`
	WALSegments         int          `json:"wal_segments"`
	WALFsyncs           int64        `json:"wal_fsyncs"`
	SnapshotsWritten    int64        `json:"snapshots_written"`
	LastSnapshotSeq     uint64       `json:"last_snapshot_seq"`
	LastSnapshotVersion uint64       `json:"last_snapshot_version"`
	SnapshotErrors      int64        `json:"snapshot_errors"`
	LastSnapshotError   string       `json:"last_snapshot_error,omitempty"`
	HistoryRecords      int64        `json:"history_records,omitempty"`
	HistoryBytes        int64        `json:"history_bytes,omitempty"`
	HistoryErrors       int64        `json:"history_errors,omitempty"`
	HistoryCompactions  int64        `json:"history_compactions,omitempty"`
	Recovery            RecoveryInfo `json:"recovery"`
}

// Store manages the durable state of one stream in one directory.
type Store struct {
	dir  string
	opt  Options
	wal  *WAL
	hist *HistoryFile // nil unless Options.History

	mu            sync.Mutex
	stream        *core.Stream
	sinceSnap     uint64
	lastSnapSeq   uint64
	lastSnapVer   uint64
	snapsWritten  int64
	snapErrors    int64
	lastSnapError string
	histErrors    int64
	recovery      RecoveryInfo

	snapCh    chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
	closeErr  error
}

// Open prepares the data directory (creating it if needed) and opens
// the WAL, discarding any torn tail. It does not touch snapshots;
// OpenStream does.
func Open(dir string, opt Options) (*Store, error) {
	if opt.SnapshotEvery == 0 {
		opt.SnapshotEvery = 64
	}
	if opt.KeepSnapshots < 2 {
		opt.KeepSnapshots = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	wal, err := OpenWAL(filepath.Join(dir, "wal"), opt.Sync, opt.SegmentBytes)
	if err != nil {
		return nil, err
	}
	st := &Store{
		dir:    dir,
		opt:    opt,
		wal:    wal,
		snapCh: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if opt.History {
		st.hist, err = OpenHistory(filepath.Join(dir, "history.cluh"))
		if err != nil {
			wal.Close()
			return nil, err
		}
	}
	return st, nil
}

// LoadHistory returns the delta records the history sidecar held when
// the store was opened, oldest first — feed these to the serving
// engine's SeedHistory *before* OpenStream, so WAL replay appends onto
// a seeded window instead of resetting it. Nil without Options.History.
func (st *Store) LoadHistory() []bennett.VersionRecord {
	if st.hist == nil {
		return nil
	}
	return st.hist.LoadHistory()
}

// Dir returns the store's data directory.
func (st *Store) Dir() string { return st.dir }

// TrimHistory records the serving layer's history retention floor (see
// serve.Engine.OnHistoryTrim): sidecar records below it can never be
// replayed again. Non-blocking — it only stores the floor; the actual
// rewrite runs with the snapshot cycle, off the publish path. No-op
// without Options.History.
func (st *Store) TrimHistory(below uint64) {
	if st.hist == nil {
		return
	}
	st.hist.SetFloor(below)
}

// LogBatch is the core.StreamConfig.LogBatch hook: it appends the
// batch to the WAL, durable per the sync policy, before the stream
// mutates any state.
func (st *Store) LogBatch(seq uint64, events []graph.EdgeEvent) error {
	if st.opt.OnStage == nil {
		return st.wal.Append(seq, events)
	}
	t0 := time.Now()
	err := st.wal.Append(seq, events)
	st.opt.OnStage("wal_append", time.Since(t0))
	return err
}

// OpenStream boots the stream against the directory: when a usable
// snapshot exists the stream is restored from it and the WAL tail is
// replayed through the normal commit path (warm restart, bit-identical
// to the uninterrupted run); otherwise a fresh stream is created from
// cfg and any stray WAL records from a pre-first-snapshot crash are
// replayed on top of version 0. Either way the store's hooks are wired
// in (cfg.LogBatch is overwritten; cfg.OnPublish is chained) and the
// background snapshotter starts. The returned stream is live and
// already attached to the store — callers use it exactly like one from
// core.NewStream.
func (st *Store) OpenStream(cfg core.StreamConfig) (*core.Stream, RecoveryInfo, error) {
	var info RecoveryInfo
	cfg.LogBatch = st.LogBatch
	userPublish := cfg.OnPublish
	cfg.OnPublish = func(version uint64, s *lu.Solver) {
		if userPublish != nil {
			userPublish(version, s)
		}
		st.notePublish()
	}
	if st.hist != nil {
		// Chain the user hook first (the serving engine must see the
		// record before anyone can query the version), then persist.
		// The sidecar's own version guard absorbs WAL-replay re-fires.
		userHistory := cfg.OnHistory
		hist := st.hist
		cfg.OnHistory = func(s *lu.Solver, rec bennett.VersionRecord) {
			if userHistory != nil {
				userHistory(s, rec)
			}
			if err := hist.Append(rec); err != nil {
				st.mu.Lock()
				st.histErrors++
				st.mu.Unlock()
			}
		}
	}

	var stream *core.Stream
	state, skipped, err := st.loadLatestState()
	info.SnapshotsSkipped = skipped
	switch {
	case err == nil:
		stream, err = core.RestoreStream(cfg, state)
		if err != nil {
			return nil, info, fmt.Errorf("store: restore snapshot seq %d: %w", state.Seq, err)
		}
		info.Recovered = true
		info.SnapshotSeq = state.Seq
		info.SnapshotVersion = state.Version
	case errors.Is(err, ErrNoSnapshot):
		stream, err = core.NewStream(cfg)
		if err != nil {
			return nil, info, err
		}
	default:
		return nil, info, err
	}

	// Replay the WAL tail through the normal commit path. Batches whose
	// strategy step failed live fail identically here (and are counted,
	// not fatal); a replay gap means the directory is damaged beyond
	// the WAL's torn-tail model and is surfaced as an error.
	replayErr := st.wal.Replay(stream.Seq(), func(seq uint64, events []graph.EdgeEvent) error {
		if _, err := stream.ReplayBatch(seq, events); err != nil {
			if errors.Is(err, core.ErrReplayGap) || errors.Is(err, core.ErrStreamClosed) {
				return err
			}
			info.ReplayErrors++
		}
		info.ReplayedBatches++
		return nil
	})
	if replayErr != nil {
		return nil, info, fmt.Errorf("store: WAL replay: %w", replayErr)
	}
	info.Version = stream.Version()

	st.mu.Lock()
	st.stream = stream
	st.recovery = info
	st.mu.Unlock()

	// A cold start has nothing durable yet: write the initial snapshot
	// synchronously so recovery always has a floor to stand on.
	if !info.Recovered {
		if err := st.Snapshot(); err != nil {
			return nil, info, fmt.Errorf("store: initial snapshot: %w", err)
		}
	}
	st.startOnce.Do(func() {
		st.wg.Add(1)
		go st.snapshotLoop()
	})
	return stream, info, nil
}

// Recover is the package-level warm-restart entry: it opens the store
// and requires a snapshot to be present (ErrNoSnapshot otherwise),
// returning the recovered stream ready to serve at the exact pre-crash
// version.
func Recover(dir string, cfg core.StreamConfig, opt Options) (*core.Stream, *Store, RecoveryInfo, error) {
	st, err := Open(dir, opt)
	if err != nil {
		return nil, nil, RecoveryInfo{}, err
	}
	snaps, err := st.listSnapshots()
	if err == nil && len(snaps) == 0 {
		err = ErrNoSnapshot
	}
	if err != nil {
		st.wal.Close()
		if st.hist != nil {
			st.hist.Close()
		}
		return nil, nil, RecoveryInfo{}, err
	}
	stream, info, err := st.OpenStream(cfg)
	if err != nil {
		st.wal.Close()
		if st.hist != nil {
			st.hist.Close()
		}
		return nil, nil, info, err
	}
	return stream, st, info, nil
}

// notePublish counts published versions and pokes the background
// snapshotter every SnapshotEvery-th one. Called under the stream's
// write lock, so it must not block.
func (st *Store) notePublish() {
	st.mu.Lock()
	st.sinceSnap++
	due := st.sinceSnap >= st.opt.SnapshotEvery
	if due {
		st.sinceSnap = 0
	}
	st.mu.Unlock()
	if due {
		select {
		case st.snapCh <- struct{}{}:
		default:
		}
	}
}

// snapshotLoop is the background checkpointer.
func (st *Store) snapshotLoop() {
	defer st.wg.Done()
	for {
		select {
		case <-st.snapCh:
			if err := st.Snapshot(); err != nil {
				st.mu.Lock()
				st.snapErrors++
				st.lastSnapError = err.Error()
				st.mu.Unlock()
			}
		case <-st.done:
			return
		}
	}
}

// Snapshot synchronously exports the bound stream's state and writes it
// as the newest checkpoint (temp file + fsync + atomic rename), then
// applies the retention policy: prune old snapshots and truncate WAL
// segments wholly covered by the oldest retained one.
func (st *Store) Snapshot() error {
	st.mu.Lock()
	stream := st.stream
	st.mu.Unlock()
	if stream == nil {
		return errors.New("store: no stream bound")
	}
	if st.opt.OnStage != nil {
		t0 := time.Now()
		defer func() { st.opt.OnStage("snapshot", time.Since(t0)) }()
	}
	state, err := stream.ExportState()
	if err != nil {
		return err
	}
	path := filepath.Join(st.dir, snapName(state.Seq))
	tmp, err := os.CreateTemp(st.dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteStreamState(tmp, state); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if err := syncDir(st.dir); err != nil {
		return err
	}

	st.mu.Lock()
	if state.Seq >= st.lastSnapSeq {
		st.lastSnapSeq = state.Seq
		st.lastSnapVer = state.Version
	}
	st.snapsWritten++
	st.mu.Unlock()

	// Retention: newest KeepSnapshots survive; the WAL only needs to
	// reach back to the oldest survivor.
	snaps, err := st.listSnapshots()
	if err != nil {
		return err
	}
	if len(snaps) > st.opt.KeepSnapshots {
		for _, s := range snaps[:len(snaps)-st.opt.KeepSnapshots] {
			if err := os.Remove(s.path); err != nil {
				return err
			}
		}
		snaps = snaps[len(snaps)-st.opt.KeepSnapshots:]
	}
	if err := st.wal.TruncateThrough(snaps[0].seq); err != nil {
		return err
	}
	// Sidecar retention rides the same cycle: compact the history file
	// down to the serving layer's floor (TrimHistory) when enough of it
	// is dead. A failed compaction is counted, not fatal — the old file
	// keeps working.
	if st.hist != nil {
		c0 := time.Now()
		cerr := st.hist.MaybeCompact()
		if st.opt.OnStage != nil {
			st.opt.OnStage("compaction", time.Since(c0))
		}
		if cerr != nil {
			st.mu.Lock()
			st.histErrors++
			st.mu.Unlock()
		}
	}
	return nil
}

type snapRef struct {
	path string
	seq  uint64
}

func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// listSnapshots returns the snapshot files sorted by sequence,
// ascending.
func (st *Store) listSnapshots() ([]snapRef, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []snapRef
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
		if err != nil {
			continue
		}
		out = append(out, snapRef{path: filepath.Join(st.dir, name), seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// loadLatestState loads the newest snapshot that parses and passes its
// checksum, falling back to older ones (counting the skips). A corrupt
// newest snapshot — a crash mid-rename can in principle leave one — is
// therefore harmless as long as one predecessor survives.
func (st *Store) loadLatestState() (*core.StreamState, int, error) {
	snaps, err := st.listSnapshots()
	if err != nil {
		return nil, 0, err
	}
	skipped := 0
	for i := len(snaps) - 1; i >= 0; i-- {
		f, err := os.Open(snaps[i].path)
		if err != nil {
			skipped++
			continue
		}
		state, err := ReadStreamState(f)
		f.Close()
		if err != nil {
			skipped++
			continue
		}
		return state, skipped, nil
	}
	return nil, skipped, ErrNoSnapshot
}

// Stats returns a snapshot of the store's counters.
func (st *Store) Stats() StoreStats {
	walRecords, walBytes, walSegs, fsyncs := st.wal.counters()
	var histRecs, histBytes, histCompacts int64
	if st.hist != nil {
		histRecs, histBytes = st.hist.Counters()
		histCompacts = st.hist.Compactions()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return StoreStats{
		HistoryRecords:      histRecs,
		HistoryBytes:        histBytes,
		HistoryErrors:       st.histErrors,
		HistoryCompactions:  histCompacts,
		Dir:                 st.dir,
		Sync:                st.opt.Sync.String(),
		WALRecords:          walRecords,
		WALBytes:            walBytes,
		WALSegments:         walSegs,
		WALFsyncs:           fsyncs,
		SnapshotsWritten:    st.snapsWritten,
		LastSnapshotSeq:     st.lastSnapSeq,
		LastSnapshotVersion: st.lastSnapVer,
		SnapshotErrors:      st.snapErrors,
		LastSnapshotError:   st.lastSnapError,
		Recovery:            st.recovery,
	}
}

// Close stops the background snapshotter, writes a final checkpoint
// (so a clean restart replays nothing), and closes the WAL. Safe to
// call more than once.
func (st *Store) Close() error {
	st.closeOnce.Do(func() {
		close(st.done)
		st.wg.Wait()
		var errs []error
		st.mu.Lock()
		bound := st.stream != nil
		st.mu.Unlock()
		if bound {
			if err := st.Snapshot(); err != nil {
				errs = append(errs, err)
			}
		}
		if err := st.wal.Close(); err != nil {
			errs = append(errs, err)
		}
		if st.hist != nil {
			if err := st.hist.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		st.closeErr = errors.Join(errs...)
	})
	return st.closeErr
}
