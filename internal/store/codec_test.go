package store

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/xrand"
)

// randomGraph builds a connected-ish undirected graph on n vertices.
func randomGraph(n, extra int, rng *xrand.Rand) *graph.Graph {
	var es []graph.Edge
	for v := 1; v < n; v++ {
		es = append(es, graph.Edge{From: rng.Intn(v), To: v})
	}
	for k := 0; k < extra; k++ {
		es = append(es, graph.Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	return graph.New(n, false, es)
}

// randomBatches produces batchCount random edge-delta batches over n
// vertices: a mix of inserts and deletes, some of them no-ops, i.e. the
// randomized Bennett update sequences the codec tests exercise the
// containers with.
func randomBatches(n, batchCount, batchSize int, rng *xrand.Rand) [][]graph.EdgeEvent {
	out := make([][]graph.EdgeEvent, batchCount)
	for b := range out {
		evs := make([]graph.EdgeEvent, 0, batchSize)
		for k := 0; k < batchSize; k++ {
			op := graph.EdgeInsert
			if rng.Float64() < 0.4 {
				op = graph.EdgeDelete
			}
			evs = append(evs, graph.EdgeEvent{From: rng.Intn(n), To: rng.Intn(n), Op: op})
		}
		out[b] = evs
	}
	return out
}

// streamAfter runs a stream of the given algorithm over the batches and
// returns it (caller closes).
func streamAfter(t *testing.T, alg core.Algorithm, g0 *graph.Graph, batches [][]graph.EdgeEvent) *core.Stream {
	t.Helper()
	s, err := core.NewStream(core.StreamConfig{
		Algorithm: alg,
		Alpha:     0.9,
		Initial:   g0,
		Derive:    graph.RWRMatrix(0.85),
	})
	if err != nil {
		t.Fatalf("%s: NewStream: %v", alg, err)
	}
	for i, evs := range batches {
		if _, err := s.Apply(evs); err != nil {
			t.Fatalf("%s: batch %d: %v", alg, i, err)
		}
	}
	return s
}

// TestFactorsRoundTripAcrossStrategies is the codec property test the
// issue asks for: WriteFactors → ReadFactors must round-trip
// bit-identically for the containers every strategy produces after a
// randomized Bennett update sequence — StaticFactors for BF/CLUDE,
// DynamicFactors (with live restructuring state) for INC/CINC.
func TestFactorsRoundTripAcrossStrategies(t *testing.T) {
	rng := xrand.New(41)
	g0 := randomGraph(36, 40, rng)
	batches := randomBatches(36, 8, 6, rng)
	for _, alg := range []core.Algorithm{core.BF, core.INC, core.CINC, core.CLUDE} {
		s := streamAfter(t, alg, g0, batches)
		state, err := s.ExportState()
		s.Close()
		if err != nil {
			t.Fatalf("%s: ExportState: %v", alg, err)
		}
		var f lu.Factors
		if state.Dyn != nil {
			f = state.Dyn
		} else {
			f = state.Static
		}
		var buf bytes.Buffer
		if err := WriteFactors(&buf, f); err != nil {
			t.Fatalf("%s: WriteFactors: %v", alg, err)
		}
		got, err := ReadFactors(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadFactors: %v", alg, err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("%s: factors did not round-trip bit-identically", alg)
		}
	}
}

func TestFactorsCorruptionDetected(t *testing.T) {
	rng := xrand.New(7)
	g0 := randomGraph(24, 30, rng)
	s := streamAfter(t, core.CLUDE, g0, nil)
	state, err := s.ExportState()
	s.Close()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFactors(&buf, state.Static); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte in the middle: either a structural failure or the
	// checksum must catch it — silence is the only wrong answer.
	data[len(data)/2] ^= 0x40
	if _, err := ReadFactors(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted factors frame was accepted")
	}
	// Truncation likewise.
	if _, err := ReadFactors(bytes.NewReader(data[:len(data)*2/3])); err == nil {
		t.Fatal("truncated factors frame was accepted")
	}
}

func TestGraphRoundTrip(t *testing.T) {
	rng := xrand.New(11)
	for _, directed := range []bool{false, true} {
		g := graph.New(20, directed, []graph.Edge{{From: 0, To: 1}, {From: 3, To: 2}, {From: 19, To: 4}, {From: rng.Intn(20), To: rng.Intn(20)}})
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadGraph(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g, got) {
			t.Errorf("directed=%v: graph did not round-trip identically", directed)
		}
	}
}

func TestSolverRoundTripSolvesIdentically(t *testing.T) {
	rng := xrand.New(13)
	g0 := randomGraph(30, 35, rng)
	for _, alg := range []core.Algorithm{core.CLUDE, core.CINC} {
		s := streamAfter(t, alg, g0, randomBatches(30, 4, 5, rng))
		var buf bytes.Buffer
		var want []float64
		b := make([]float64, 30)
		b[3] = 0.15
		s.View(func(_ uint64, sv *lu.Solver) {
			if err := WriteSolver(&buf, sv); err != nil {
				t.Fatalf("%s: WriteSolver: %v", alg, err)
			}
			want = sv.Solve(b)
		})
		s.Close()
		sv, err := ReadSolver(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadSolver: %v", alg, err)
		}
		got := sv.Solve(b)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: restored solver's solution differs bit-wise", alg)
		}
	}
}

// TestStreamStateRoundTrip pins the full-snapshot codec: every field of
// the exported state, counters included, survives the disk format.
func TestStreamStateRoundTrip(t *testing.T) {
	rng := xrand.New(17)
	g0 := randomGraph(32, 38, rng)
	batches := randomBatches(32, 6, 6, rng)
	for _, alg := range []core.Algorithm{core.BF, core.INC, core.CINC, core.CLUDE} {
		s := streamAfter(t, alg, g0, batches)
		state, err := s.ExportState()
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteStreamState(&buf, state); err != nil {
			t.Fatalf("%s: WriteStreamState: %v", alg, err)
		}
		got, err := ReadStreamState(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadStreamState: %v", alg, err)
		}
		if !reflect.DeepEqual(state, got) {
			t.Errorf("%s: stream state did not round-trip identically", alg)
		}
	}
}

func TestReadStreamStateRejectsCorruption(t *testing.T) {
	rng := xrand.New(19)
	s := streamAfter(t, core.CINC, randomGraph(20, 24, rng), randomBatches(20, 3, 4, rng))
	state, err := s.ExportState()
	s.Close()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStreamState(&buf, state); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) - 2, len(data) / 2, 6} {
		if _, err := ReadStreamState(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-10] ^= 0x01
	if _, err := ReadStreamState(bytes.NewReader(flipped)); err == nil {
		t.Error("bit flip accepted")
	}
	if !errors.Is(errorOf(t, flipped), ErrCorrupt) {
		t.Error("corruption not reported as ErrCorrupt")
	}
}

func errorOf(t *testing.T, data []byte) error {
	t.Helper()
	_, err := ReadStreamState(bytes.NewReader(data))
	return err
}
