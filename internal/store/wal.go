package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
)

// The write-ahead log: an append-only record of every validated edge
// batch, split into size-rotated segment files. Each record is
// CRC-framed so a crash mid-write (a torn tail) is detected and
// physically discarded on the next open; each carries the stream's
// batch sequence number so recovery knows exactly where a snapshot's
// coverage ends and replay must begin.
//
// Segment layout:
//
//	wal-<firstseq:016x>.seg
//	  "CLUW" <version byte>
//	  record*:  u32le payloadLen | u32le crc32c(payload) | payload
//	  payload:  uvarint seq | uvarint count | count × (op byte,
//	            uvarint from, uvarint to)
//
// Durability is governed by SyncPolicy: SyncAlways fsyncs after every
// append (every acknowledged batch survives power loss), SyncNone
// leaves flushing to the OS (bounded data loss, much higher ingest
// throughput — the persistence bench quantifies the gap).

// SyncPolicy selects the WAL's fsync behavior.
type SyncPolicy int

const (
	// SyncAlways fsyncs the active segment after every append.
	SyncAlways SyncPolicy = iota
	// SyncNone never fsyncs explicitly; the OS flushes at its leisure.
	SyncNone
)

// ParseSyncPolicy maps the flag spelling ("always", "none") to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always|none)", s)
}

func (p SyncPolicy) String() string {
	if p == SyncNone {
		return "none"
	}
	return "always"
}

const (
	walMagic      = "CLUW"
	walVersion    = 1
	walHeaderLen  = 5
	walRecordMax  = 64 << 20 // sanity bound on one record's payload
	defaultSegMax = 4 << 20
)

// WAL is the segment-based log. All methods are safe for concurrent
// use; Append serializes writers.
type WAL struct {
	dir    string
	policy SyncPolicy
	segMax int64

	mu      sync.Mutex
	f       *os.File // active segment (nil until the first append)
	size    int64
	lastSeq uint64

	records, bytes, fsyncs int64
	segments               int
}

// OpenWAL opens (creating if needed) the log in dir. Existing segments
// are scanned in order; the first invalid record — a torn tail from a
// crash mid-append, or corruption — is physically truncated away along
// with everything after it, so the on-disk log is always exactly its
// valid prefix.
func OpenWAL(dir string, policy SyncPolicy, segMax int64) (*WAL, error) {
	if segMax <= 0 {
		segMax = defaultSegMax
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, policy: policy, segMax: segMax}
	segs, err := w.listSegments()
	if err != nil {
		return nil, err
	}
	w.segments = len(segs)
	for i, seg := range segs {
		valid, last, recs, err := scanSegment(seg.path, 0, nil)
		if err != nil {
			return nil, err
		}
		if recs > 0 {
			w.lastSeq = last
			w.records += int64(recs)
		}
		info, statErr := os.Stat(seg.path)
		if statErr != nil {
			return nil, statErr
		}
		w.bytes += valid
		if valid < info.Size() {
			// Torn or corrupt tail: truncate this segment at the last
			// valid boundary and drop every later segment (they were
			// written after the damage and are unreachable for replay).
			// A segment without even a valid header is removed outright
			// so the append path never extends a headerless file.
			if valid < walHeaderLen {
				if err := os.Remove(seg.path); err != nil {
					return nil, err
				}
				w.segments--
			} else if err := os.Truncate(seg.path, valid); err != nil {
				return nil, err
			}
			for _, later := range segs[i+1:] {
				if err := os.Remove(later.path); err != nil {
					return nil, err
				}
				w.segments--
			}
			break
		}
	}
	// Re-open the last surviving segment for append when it has room.
	segs, err = w.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		lastPath := segs[len(segs)-1].path
		info, err := os.Stat(lastPath)
		if err != nil {
			return nil, err
		}
		if info.Size() < w.segMax {
			f, err := os.OpenFile(lastPath, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			w.f = f
			w.size = info.Size()
		}
	}
	return w, nil
}

type segRef struct {
	path     string
	firstSeq uint64
}

// listSegments returns the segment files sorted by first sequence.
func (w *WAL) listSegments() ([]segRef, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	var out []segRef
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		out = append(out, segRef{path: filepath.Join(w.dir, name), firstSeq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].firstSeq < out[j].firstSeq })
	return out, nil
}

// Append logs one batch under the given sequence number. The append is
// durable per the sync policy when Append returns. Sequence numbers
// must be strictly increasing.
func (w *WAL) Append(seq uint64, events []graph.EdgeEvent) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.lastSeq != 0 && seq <= w.lastSeq {
		return fmt.Errorf("store: WAL append seq %d not after %d", seq, w.lastSeq)
	}
	payload := encodeRecord(seq, events)
	if len(payload) > walRecordMax {
		// The read side rejects oversized records; writing one would be
		// silent data loss at recovery time.
		return fmt.Errorf("store: batch of %d events encodes to %d bytes, over the record bound %d", len(events), len(payload), walRecordMax)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)

	if w.f == nil || w.size >= w.segMax {
		if err := w.rotateLocked(seq); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.size += int64(len(frame))
	w.bytes += int64(len(frame))
	w.records++
	w.lastSeq = seq
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.fsyncs++
	}
	return nil
}

// rotateLocked closes the active segment and starts a new one whose
// name carries the first sequence it will hold.
func (w *WAL) rotateLocked(firstSeq uint64) error {
	if w.f != nil {
		if w.policy == SyncAlways {
			if err := w.f.Sync(); err != nil {
				return err
			}
			w.fsyncs++
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	path := filepath.Join(w.dir, fmt.Sprintf("wal-%016x.seg", firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := append([]byte(walMagic), walVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.size = int64(len(hdr))
	w.bytes += int64(len(hdr))
	w.segments++
	if err := syncDir(w.dir); err != nil {
		return err
	}
	return nil
}

// Replay feeds every logged batch with sequence > fromSeq to fn in
// order. Segments wholly covered by fromSeq are skipped without being
// read. fn returning an error aborts the replay with that error.
func (w *WAL) Replay(fromSeq uint64, fn func(seq uint64, events []graph.EdgeEvent) error) error {
	w.mu.Lock()
	segs, err := w.listSegments()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	for i, seg := range segs {
		// A segment holds sequences [firstSeq, nextFirstSeq); it can be
		// skipped only when even its last record is covered.
		if i+1 < len(segs) && segs[i+1].firstSeq <= fromSeq+1 {
			continue
		}
		if _, _, _, err := scanSegment(seg.path, fromSeq, fn); err != nil {
			return err
		}
	}
	return nil
}

// TruncateThrough removes segments every record of which has sequence
// <= seq — called after a snapshot covering seq is durable. The active
// segment is never removed.
func (w *WAL) TruncateThrough(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := w.listSegments()
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].firstSeq > seq+1 {
			break
		}
		if w.f != nil && segs[i].path == w.f.Name() {
			break
		}
		if err := os.Remove(segs[i].path); err != nil {
			return err
		}
		w.segments--
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.fsyncs++
	return w.f.Sync()
}

// LastSeq returns the sequence of the most recent valid record (0 when
// the log is empty).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// counters returns the WAL's accounting (records and bytes appended or
// scanned valid at open, segments on disk, explicit fsyncs).
func (w *WAL) counters() (records, bytes int64, segments int, fsyncs int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.bytes, w.segments, w.fsyncs
}

// Close syncs (under SyncAlways) and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			w.f = nil
			return err
		}
		w.fsyncs++
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// encodeRecord builds one record payload.
func encodeRecord(seq uint64, events []graph.EdgeEvent) []byte {
	buf := make([]byte, 0, 16+len(events)*7)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(seq)
	put(uint64(len(events)))
	for _, ev := range events {
		buf = append(buf, byte(ev.Op))
		put(uint64(ev.From))
		put(uint64(ev.To))
	}
	return buf
}

// decodeRecord parses one record payload.
func decodeRecord(p []byte) (uint64, []graph.EdgeEvent, error) {
	off := 0
	get := func() (uint64, bool) {
		v, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	seq, ok := get()
	if !ok {
		return 0, nil, fmt.Errorf("%w: record missing sequence", ErrCorrupt)
	}
	cnt, ok := get()
	if !ok || cnt > uint64(len(p)) {
		return 0, nil, fmt.Errorf("%w: record event count implausible", ErrCorrupt)
	}
	events := make([]graph.EdgeEvent, 0, min(int(cnt), preallocCap))
	for i := uint64(0); i < cnt; i++ {
		if off >= len(p) {
			return 0, nil, fmt.Errorf("%w: record truncated", ErrCorrupt)
		}
		op := graph.EdgeOp(p[off])
		off++
		from, ok1 := get()
		to, ok2 := get()
		if !ok1 || !ok2 || from > maxSliceLen || to > maxSliceLen {
			return 0, nil, fmt.Errorf("%w: record event malformed", ErrCorrupt)
		}
		events = append(events, graph.EdgeEvent{From: int(from), To: int(to), Op: op})
	}
	if off != len(p) {
		return 0, nil, fmt.Errorf("%w: record has %d trailing bytes", ErrCorrupt, len(p)-off)
	}
	return seq, events, nil
}

// scanSegment walks one segment file, invoking fn (when non-nil) for
// every record with sequence > fromSeq. It returns the byte offset of
// the end of the valid record prefix, the last sequence seen, and the
// record count — a torn or corrupt suffix simply ends the scan (the
// caller decides whether to truncate).
func scanSegment(path string, fromSeq uint64, fn func(uint64, []graph.EdgeEvent) error) (validEnd int64, lastSeq uint64, records int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(data) >= walHeaderLen && string(data[:4]) == walMagic && data[4] > walVersion {
		// A segment written by a newer binary: its records are durable
		// acknowledged data this version cannot parse. Refuse loudly —
		// the versioning policy everywhere else — rather than treating
		// it as garbage and deleting it.
		return 0, 0, 0, fmt.Errorf("store: WAL segment %s has format version %d (this binary reads up to %d)", path, data[4], walVersion)
	}
	if len(data) < walHeaderLen || string(data[:4]) != walMagic || data[4] == 0 {
		// An unreadable header means nothing in the file is usable
		// (a crash tore the segment's creation).
		return 0, 0, 0, nil
	}
	off := int64(walHeaderLen)
	for {
		if int64(len(data))-off < 8 {
			return off, lastSeq, records, nil
		}
		plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if plen <= 0 || plen > walRecordMax || off+8+plen > int64(len(data)) {
			return off, lastSeq, records, nil
		}
		payload := data[off+8 : off+8+plen]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, lastSeq, records, nil
		}
		seq, events, derr := decodeRecord(payload)
		if derr != nil {
			return off, lastSeq, records, nil
		}
		if fn != nil && seq > fromSeq {
			if err := fn(seq, events); err != nil {
				return off, lastSeq, records, err
			}
		}
		off += 8 + plen
		lastSeq = seq
		records++
	}
}

// syncDir fsyncs a directory so renames and creations within it are
// durable (no-op on platforms where directories cannot be opened).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	return d.Sync()
}
