package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func walEvents(k int) []graph.EdgeEvent {
	return []graph.EdgeEvent{
		{From: k, To: k + 1, Op: graph.EdgeInsert},
		{From: k + 1, To: k + 2, Op: graph.EdgeDelete},
	}
}

func collect(t *testing.T, w *WAL, from uint64) map[uint64][]graph.EdgeEvent {
	t.Helper()
	got := map[uint64][]graph.EdgeEvent{}
	if err := w.Replay(from, func(seq uint64, evs []graph.EdgeEvent) error {
		got[seq] = evs
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 9; seq++ {
		if err := w.Append(seq, walEvents(int(seq))); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 9 {
		t.Fatalf("LastSeq = %d, want 9", w2.LastSeq())
	}
	got := collect(t, w2, 4)
	if len(got) != 5 {
		t.Fatalf("replayed %d records from seq 4, want 5", len(got))
	}
	for seq := uint64(5); seq <= 9; seq++ {
		if !reflect.DeepEqual(got[seq], walEvents(int(seq))) {
			t.Errorf("record %d mismatch: %v", seq, got[seq])
		}
	}
	// Appends continue after reopen.
	if err := w2.Append(10, walEvents(10)); err != nil {
		t.Fatal(err)
	}
	if len(collect(t, w2, 0)) != 10 {
		t.Error("post-reopen append not replayable")
	}
}

func TestWALTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.Append(seq, walEvents(int(seq))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	// Simulate a crash mid-append: half a record's worth of garbage.
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x22, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()

	w2, err := OpenWAL(dir, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 3 {
		t.Fatalf("LastSeq after torn tail = %d, want 3", w2.LastSeq())
	}
	if got := collect(t, w2, 0); len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	// The torn bytes must be physically gone so new appends are framed
	// correctly.
	if err := w2.Append(4, walEvents(4)); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, w2, 0); len(got) != 4 {
		t.Fatalf("after post-truncation append: %d records, want 4", len(got))
	}
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	w, err := OpenWAL(dir, SyncNone, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for seq := uint64(1); seq <= 20; seq++ {
		if err := w.Append(seq, walEvents(int(seq))); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	if got := collect(t, w, 0); len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}
	if err := w.TruncateThrough(15); err != nil {
		t.Fatal(err)
	}
	// Records beyond the truncation point must survive.
	got := collect(t, w, 15)
	for seq := uint64(16); seq <= 20; seq++ {
		if _, ok := got[seq]; !ok {
			t.Errorf("record %d lost by truncation", seq)
		}
	}
	after, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(after) >= len(segs) {
		t.Errorf("truncation removed no segments (%d -> %d)", len(segs), len(after))
	}
}

// TestWALRefusesNewerFormatVersion pins the versioning policy on the
// log itself: a segment written by a newer binary is acknowledged
// durable data, so a rollback must fail loudly at open — never treat
// the segment as garbage and delete it.
func TestWALRefusesNewerFormatVersion(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, walEvents(1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[4] = walVersion + 1
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, SyncAlways, 0); err == nil {
		t.Fatal("OpenWAL accepted a segment with a newer format version")
	}
	if after, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg")); len(after) != 1 {
		t.Fatalf("refusing open must not delete the segment (have %d files)", len(after))
	}
}

func TestWALRejectsNonMonotoneSeq(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(5, walEvents(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, walEvents(2)); err == nil {
		t.Error("duplicate sequence accepted")
	}
	if err := w.Append(4, walEvents(3)); err == nil {
		t.Error("regressing sequence accepted")
	}
}
