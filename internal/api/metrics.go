package api

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trace"
)

// This file is the bridge between the import-clean subsystems and the
// registry: core and store expose plain Stats() structs and OnStage
// hooks; the closures here re-express them as registry collectors, so
// /v1/metrics can never drift from what /v1/stats reports.

// registerStreamMetrics exposes the ingest engine's counters, reading
// through Stream.Stats on every scrape.
func registerStreamMetrics(r *metrics.Registry, s *core.Stream) {
	r.GaugeFunc("clude_stream_version", "Latest published factor version of the stream.", nil,
		func() float64 { return float64(s.Version()) })
	cf := func(name, help string, read func(core.StreamStats) float64) {
		r.CounterFunc(name, help, nil, func() float64 { return read(s.Stats()) })
	}
	cf("clude_stream_batches_total", "Delta batches committed (every validated batch, succeeded or not).",
		func(st core.StreamStats) float64 { return float64(st.Batches) })
	cf("clude_stream_events_total", "Edge events consumed across all batches.",
		func(st core.StreamStats) float64 { return float64(st.Events) })
	cf("clude_stream_events_applied_total", "Edge events that changed the edge set.",
		func(st core.StreamStats) float64 { return float64(st.EventsApplied) })
	cf("clude_stream_clusters_total", "Clusters opened by the maintenance strategy.",
		func(st core.StreamStats) float64 { return float64(st.Clusters) })
	cf("clude_stream_struct_rebuilds_total", "CLUDE structure rebuilds forced by the cluster union outgrowing the USSP.",
		func(st core.StreamStats) float64 { return float64(st.StructRebuilds) })
	cf("clude_stream_refactorizations_total", "Numerical fallbacks: failed Bennett updates answered by a full refactorization.",
		func(st core.StreamStats) float64 { return float64(st.Refactorizations) })
}

// registerStoreMetrics exposes the durability layer's counters, reading
// through Store.Stats on every scrape.
func registerStoreMetrics(r *metrics.Registry, st *store.Store) {
	cf := func(name, help string, read func(store.StoreStats) float64) {
		r.CounterFunc(name, help, nil, func() float64 { return read(st.Stats()) })
	}
	gf := func(name, help string, read func(store.StoreStats) float64) {
		r.GaugeFunc(name, help, nil, func() float64 { return read(st.Stats()) })
	}
	cf("clude_wal_records_total", "Batches appended to the write-ahead log.",
		func(s store.StoreStats) float64 { return float64(s.WALRecords) })
	cf("clude_wal_bytes_total", "Bytes appended to the write-ahead log.",
		func(s store.StoreStats) float64 { return float64(s.WALBytes) })
	cf("clude_wal_fsyncs_total", "WAL fsync calls.",
		func(s store.StoreStats) float64 { return float64(s.WALFsyncs) })
	gf("clude_wal_segments", "WAL segment files currently on disk.",
		func(s store.StoreStats) float64 { return float64(s.WALSegments) })
	cf("clude_store_snapshots_written_total", "Factor checkpoints written.",
		func(s store.StoreStats) float64 { return float64(s.SnapshotsWritten) })
	cf("clude_store_snapshot_errors_total", "Background checkpoint failures.",
		func(s store.StoreStats) float64 { return float64(s.SnapshotErrors) })
	gf("clude_store_last_snapshot_seq", "WAL sequence number of the newest checkpoint.",
		func(s store.StoreStats) float64 { return float64(s.LastSnapshotSeq) })
	gf("clude_store_last_snapshot_version", "Stream version of the newest checkpoint.",
		func(s store.StoreStats) float64 { return float64(s.LastSnapshotVersion) })
	gf("clude_store_recovered", "1 when this boot warm-restarted from a checkpoint, 0 on cold start.",
		func(s store.StoreStats) float64 {
			if s.Recovery.Recovered {
				return 1
			}
			return 0
		})
	gf("clude_store_replayed_batches", "WAL batches replayed on top of the recovery checkpoint at boot.",
		func(s store.StoreStats) float64 { return float64(s.Recovery.ReplayedBatches) })
}

// IngestStageHook registers the ingest pipeline's stage histograms
// (clude_ingest_stage_seconds{stage=validate|log|apply|publish}) and
// returns the core.StreamConfig.OnStage hook feeding them. Unknown
// stage names are dropped rather than panicking inside the commit path.
func IngestStageHook(r *metrics.Registry) func(stage string, d time.Duration) {
	return stageHook(r, "clude_ingest_stage_seconds",
		"Per-stage durations of the ingest pipeline: validate, log (WAL append hook), apply (graph + factor step), publish.",
		[]string{"validate", "log", "apply", "publish"})
}

// StoreStageHook registers the durability layer's stage histograms
// (clude_store_stage_seconds{stage=wal_append|snapshot|compaction})
// and returns the store.Options.OnStage hook feeding them.
func StoreStageHook(r *metrics.Registry) func(stage string, d time.Duration) {
	return stageHook(r, "clude_store_stage_seconds",
		"Per-stage durations of the durability layer: wal_append (durable log write), snapshot (checkpoint export + write), compaction (history sidecar rewrite, nested inside snapshot).",
		[]string{"wal_append", "snapshot", "compaction"})
}

// ChainStageHooks fans one OnStage callback out to every non-nil
// consumer, so histograms and trace synthesis can share the single
// hook slot core and store each expose.
func ChainStageHooks(hooks ...func(string, time.Duration)) func(string, time.Duration) {
	live := hooks[:0]
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	if len(live) == 1 {
		return live[0]
	}
	return func(stage string, d time.Duration) {
		for _, h := range live {
			h(stage, d)
		}
	}
}

// IngestTraceHook returns a core.StreamConfig.OnBatch consumer that
// synthesizes one trace per consumed batch: the root is backdated to
// the batch's start (so slow-threshold retention judges the real
// commit latency), the validate/log/apply/publish stages become
// contiguous child spans, and failed batches finish with the error so
// tail-based retention always keeps them. Returns nil for a nil
// tracer, which core treats as no hook at all.
func IngestTraceHook(tc *trace.Tracer) func(core.BatchTrace) {
	if tc == nil {
		return nil
	}
	return func(bt core.BatchTrace) {
		tr := tc.StartAt("ingest", trace.SpanContext{}, bt.Start)
		root := tr.Root()
		root.SetInt("seq", int64(bt.Seq))
		root.SetInt("version", int64(bt.Version))
		root.SetInt("events", int64(bt.Events))
		root.SetInt("applied", int64(bt.Applied))
		root.SetBool("structural", bt.Structural)
		at := bt.Start
		for _, s := range bt.Stages {
			if s.Name == "" {
				break
			}
			tr.Record(s.Name, at, s.D)
			at = at.Add(s.D)
		}
		tr.Finish(bt.Err)
	}
}

// StoreTraceHook returns a store.Options.OnStage consumer that
// synthesizes traces for the store's slow, infrequent stages —
// snapshot and compaction. wal_append fires on every committed batch
// and is already covered span-by-span inside the ingest trace's log
// stage, so it only feeds histograms, never the trace ring. Chain
// this with StoreStageHook via ChainStageHooks.
func StoreTraceHook(tc *trace.Tracer) func(stage string, d time.Duration) {
	if tc == nil {
		return nil
	}
	return func(stage string, d time.Duration) {
		var name string
		switch stage {
		case "snapshot":
			name = "store.snapshot"
		case "compaction":
			name = "store.compaction"
		default:
			return
		}
		tr := tc.StartAt(name, trace.SpanContext{}, time.Now().Add(-d))
		tr.Finish(nil)
	}
}

func stageHook(r *metrics.Registry, name, help string, stages []string) func(string, time.Duration) {
	hists := make(map[string]*metrics.Histogram, len(stages))
	for _, s := range stages {
		hists[s] = r.Histogram(name, help, metrics.Labels{"stage": s})
	}
	return func(stage string, d time.Duration) {
		if h := hists[stage]; h != nil {
			h.Observe(d)
		}
	}
}
