package api

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/trace"
)

// tracedServer is liveServer with tracing on everywhere it can be:
// the serve hot path, the /v1/traces routes, the ingest OnBatch
// synthesis hook, and the clude_traces_* counters. Sample 1 retains
// every trace so assertions are deterministic.
func tracedServer(t *testing.T) (*httptest.Server, *trace.Tracer, func()) {
	t.Helper()
	tc := trace.New(trace.Config{Buffer: 64, Sample: 1})
	g := graph.New(6, false, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 5},
	})
	reg := metrics.NewRegistry()
	stream, err := core.NewStream(core.StreamConfig{
		Algorithm: core.INC,
		Initial:   g,
		Derive:    graph.RWRMatrix(0.85),
		OnStage:   IngestStageHook(reg),
		OnBatch:   IngestTraceHook(tc),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := serve.New(serve.Config{Damping: 0.85, Workers: 1, Tracer: tc})
	eng.AttachLive(stream)
	srv := httptest.NewServer(New(Options{
		Engine:   eng,
		Stream:   stream,
		Batcher:  stream.NewBatcher(4, 0),
		Registry: reg,
		Tracer:   tc,
	}))
	return srv, tc, func() {
		srv.Close()
		stream.Close()
		eng.Close()
	}
}

// TestTracesListAndLookup drives one query through the traced engine
// and asserts the ring is servable over HTTP: the listing carries the
// trace with its tracer stats, and the per-id route returns the full
// span tree for exactly the ids the listing advertised.
func TestTracesListAndLookup(t *testing.T) {
	srv, _, done := tracedServer(t)
	defer done()

	if code, _ := getJSON(t, srv.URL+"/v1/query?measure=rwr&source=2"); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	code, body := getJSON(t, srv.URL+"/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("/v1/traces: status %d: %v", code, body)
	}
	traces, ok := body["traces"].([]interface{})
	if !ok || len(traces) == 0 {
		t.Fatalf("/v1/traces returned no traces: %v", body)
	}
	stats, ok := body["stats"].(map[string]interface{})
	if !ok || stats["retained"].(float64) < 1 {
		t.Fatalf("/v1/traces stats: %v", body["stats"])
	}
	first := traces[0].(map[string]interface{})
	id, _ := first["trace_id"].(string)
	if len(id) != 32 {
		t.Fatalf("trace_id %q is not 32 hex chars", id)
	}

	code, td := getJSON(t, srv.URL+"/v1/traces/"+id)
	if code != http.StatusOK {
		t.Fatalf("/v1/traces/%s: status %d: %v", id, code, td)
	}
	if td["trace_id"] != id || td["name"] != "query" {
		t.Fatalf("trace lookup mismatch: %v", td)
	}
	spans, _ := td["spans"].([]interface{})
	names := make(map[string]bool)
	for _, sp := range spans {
		names[sp.(map[string]interface{})["name"].(string)] = true
	}
	for _, want := range []string{"resolve", "admit", "batch", "solve"} {
		if !names[want] {
			t.Fatalf("trace %s missing %q span: %v", id, want, names)
		}
	}

	code, miss := getJSON(t, srv.URL+"/v1/traces/00000000000000000000000000000000")
	if code != http.StatusNotFound {
		t.Fatalf("unknown trace id: status %d: %v", code, miss)
	}
	ec, _ := envelope(t, miss)
	if ec != "not_found" {
		t.Fatalf("unknown trace id: code %q", ec)
	}
}

// TestTracesFiltersAndParamDiscipline pins the listing's parameter
// contract: the error filter selects only failed traces, and unknown
// or malformed parameters are 400s, never silently ignored.
func TestTracesFiltersAndParamDiscipline(t *testing.T) {
	srv, _, done := tracedServer(t)
	defer done()

	if code, _ := getJSON(t, srv.URL+"/v1/query?measure=rwr&source=2"); code != http.StatusOK {
		t.Fatal("seed query failed")
	}
	// A query against a snapshot that does not exist fails at resolve
	// and must land in the ring as an error trace.
	if code, _ := getJSON(t, srv.URL+"/v1/query?measure=rwr&source=2&snapshot=99"); code != http.StatusNotFound {
		t.Fatal("expected 404 for unknown snapshot")
	}
	code, body := getJSON(t, srv.URL+"/v1/traces?error=true")
	if code != http.StatusOK {
		t.Fatalf("error filter: status %d", code)
	}
	traces, _ := body["traces"].([]interface{})
	if len(traces) == 0 {
		t.Fatal("error filter returned no traces after a failed query")
	}
	for _, tr := range traces {
		td := tr.(map[string]interface{})
		if td["reason"] != trace.ReasonError {
			t.Fatalf("error filter leaked non-error trace: %v", td)
		}
	}

	for _, bad := range []string{"?bogus=1", "?min_ms=abc", "?limit=0", "?error=maybe"} {
		if code, _ := getJSON(t, srv.URL+"/v1/traces"+bad); code != http.StatusBadRequest {
			t.Fatalf("/v1/traces%s: status %d, want 400", bad, code)
		}
	}
	// min_ms well above any real duration filters everything out but
	// stays a valid, empty listing.
	code, body = getJSON(t, srv.URL+"/v1/traces?min_ms=60000")
	if code != http.StatusOK {
		t.Fatalf("min_ms filter: status %d", code)
	}
	if traces, _ := body["traces"].([]interface{}); len(traces) != 0 {
		t.Fatalf("min_ms=60000 still returned %d traces", len(traces))
	}
}

// TestTracesDisabled pins the no-tracer contract: the routes exist but
// answer 404 with a hint, and nothing else changes.
func TestTracesDisabled(t *testing.T) {
	srv, _, done := liveServer(t)
	defer done()
	code, body := getJSON(t, srv.URL+"/v1/traces")
	if code != http.StatusNotFound {
		t.Fatalf("/v1/traces without tracer: status %d", code)
	}
	_, msg := envelope(t, body)
	if !strings.Contains(msg, "trace-buffer") {
		t.Fatalf("disabled message should name the flag: %q", msg)
	}
}

// TestIngestTraceSynthesis posts a synchronous update and asserts the
// OnBatch hook synthesized a backdated ingest trace: contiguous stage
// spans and the batch attrs, with the root starting at batch start.
func TestIngestTraceSynthesis(t *testing.T) {
	srv, tc, done := tracedServer(t)
	defer done()

	resp, err := http.Post(srv.URL+"/v1/update?sync=1", "application/json",
		strings.NewReader(`{"events":[{"from":0,"to":3},{"from":5,"to":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d", resp.StatusCode)
	}

	ingest := findIngestTrace(tc)
	if ingest == nil {
		t.Fatal("no ingest trace retained after a sync update")
	}
	if ingest.Attrs["events"] != int64(2) || ingest.Attrs["applied"] != int64(2) {
		t.Fatalf("ingest trace attrs: %v", ingest.Attrs)
	}
	if v, _ := ingest.Attrs["version"].(int64); v < 1 {
		t.Fatalf("ingest trace version attr: %v", ingest.Attrs)
	}
	// No store bound, so the stage set is validate/apply/publish, laid
	// end to end from the trace start.
	var offset float64
	for i, want := range []string{"validate", "apply", "publish"} {
		if i >= len(ingest.Spans) {
			t.Fatalf("ingest trace has %d spans, want %q at %d", len(ingest.Spans), want, i)
		}
		sp := ingest.Spans[i]
		if sp.Name != want {
			t.Fatalf("stage %d = %q, want %q", i, sp.Name, want)
		}
		if sp.OffsetUS+0.01 < offset { // µs-scale epsilon for float accumulation
			t.Fatalf("stage %q offset %v overlaps previous end %v", want, sp.OffsetUS, offset)
		}
		offset = sp.OffsetUS + sp.DurationUS
	}
	if ingest.DurationUS+1 < offset { // +1µs slack for rounding
		t.Fatalf("ingest root duration %vµs shorter than its stages (%vµs): root not backdated",
			ingest.DurationUS, offset)
	}
}

// TestIngestTraceKeepsFailedBatches pins the tail-retention contract
// on the ingest side with sampling off: a batch that fails validation
// must still land in the ring as an error trace.
func TestIngestTraceKeepsFailedBatches(t *testing.T) {
	tc := trace.New(trace.Config{Buffer: 16, Sample: 0})
	g := graph.New(4, false, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}})
	stream, err := core.NewStream(core.StreamConfig{
		Algorithm: core.INC,
		Initial:   g,
		Derive:    graph.RWRMatrix(0.85),
		OnBatch:   IngestTraceHook(tc),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	// An out-of-range endpoint fails batch validation.
	if _, err := stream.Apply([]graph.EdgeEvent{{From: 0, To: 99}}); err == nil {
		t.Fatal("expected validation failure")
	}
	td := findIngestTrace(tc)
	if td == nil {
		t.Fatal("failed batch left no retained ingest trace")
	}
	if td.Reason != trace.ReasonError || td.Error == "" {
		t.Fatalf("failed batch trace: reason %q error %q", td.Reason, td.Error)
	}

	// A successful batch at sample 0 under the slow threshold is not
	// retained — tail-based, not head-based.
	before := tc.Stats().Retained
	if _, err := stream.Apply([]graph.EdgeEvent{{From: 0, To: 3}}); err != nil {
		t.Fatal(err)
	}
	if after := tc.Stats().Retained; after != before {
		t.Fatalf("unsampled healthy batch was retained (%d -> %d)", before, after)
	}
}

func findIngestTrace(tc *trace.Tracer) *trace.TraceData {
	for _, td := range tc.Recent(trace.Filter{}) {
		if td.Name == "ingest" {
			return td
		}
	}
	return nil
}

// TestTraceMetricsRegistered scrapes /v1/metrics on a traced server
// and asserts the retention counters are exposed and consistent with
// the tracer's own stats.
func TestTraceMetricsRegistered(t *testing.T) {
	srv, tc, done := tracedServer(t)
	defer done()
	if code, _ := getJSON(t, srv.URL+"/v1/query?measure=rwr&source=1"); code != http.StatusOK {
		t.Fatal("seed query failed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for tc.Stats().Retained == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"clude_traces_started_total",
		"clude_traces_retained_total",
		`clude_traces_retained_reason_total{reason="sampled"}`,
		"clude_traces_buffered",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/v1/metrics missing %q", want)
		}
	}
}
