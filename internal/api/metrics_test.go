package api

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/xrand"
)

// scrape fetches /v1/metrics, structurally validates the exposition
// text (every line is a comment or `name[{labels}] value`), and returns
// the series values keyed by their full spelling.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("/v1/metrics content-type %q, want %q", ct, metrics.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		// `name{labels} value` or `name value`; the value is everything
		// after the last space (labels may contain escaped spaces but
		// never a bare one outside quotes — and quoted spaces are fine
		// because we split from the right).
		i := strings.LastIndexByte(l, ' ')
		if i <= 0 {
			t.Fatalf("exposition line %d unparseable: %q", line, l)
		}
		series, val := l[:i], l[i+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("exposition line %d: bad value %q: %v", line, val, err)
		}
		if _, dup := out[series]; dup {
			t.Fatalf("exposition line %d: duplicate series %q", line, series)
		}
		out[series] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("exposition empty")
	}
	return out
}

// TestMetricsInvariantUnderLoad is the scrape-checkable form of the
// serving pipeline's admission invariant: after a burst of concurrent
// mixed queries (identical ones to force coalescing, a 1-deep queue to
// invite shedding) quiesces,
//
//	admitted + coalesced + shed == queries
//
// must hold exactly in the exposition, and /v1/stats must agree with
// /v1/metrics series for series they both report — they read the same
// atomics, so any drift is a bug. Run with -race.
func TestMetricsInvariantUnderLoad(t *testing.T) {
	srv, _, done := liveServerTuned(t, 1, 1)
	defer done()

	rng := xrand.New(17)
	urls := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		switch rng.Intn(4) {
		case 0:
			urls = append(urls, fmt.Sprintf("/v1/query?measure=rwr&source=%d", rng.Intn(6)))
		case 1:
			urls = append(urls, fmt.Sprintf("/v1/query?measure=topk&source=%d&k=%d", rng.Intn(6), 1+rng.Intn(5)))
		case 2:
			urls = append(urls, "/v1/query?measure=pagerank")
		case 3:
			urls = append(urls, "/v1/query?measure=katz")
		}
	}
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + u)
			if err != nil {
				t.Error(err)
				return
			}
			// 200, 429 (shed) and 404 are all legal under load; every
			// outcome must keep the counters consistent.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(u)
	}
	wg.Wait()

	m := scrape(t, srv.URL)
	queries := m["clude_queries_total"]
	admitted := m["clude_queries_admitted_total"]
	coalesced := m["clude_queries_coalesced_total"]
	shed := m["clude_queries_shed_total"]
	if queries < 64 {
		t.Fatalf("clude_queries_total = %v, want >= 64", queries)
	}
	if admitted+coalesced+shed != queries {
		t.Fatalf("admission invariant broken in exposition: %v + %v + %v != %v",
			admitted, coalesced, shed, queries)
	}

	// The latency histogram counts exactly the answered queries.
	rejected := m["clude_queries_rejected_total"]
	if got := m["clude_query_latency_seconds_count"]; got != queries-rejected {
		t.Fatalf("latency count %v, want queries-rejected = %v", got, queries-rejected)
	}
	// Every pipeline stage is present; resolve saw every query.
	if got := m[`clude_query_stage_seconds_count{stage="resolve"}`]; got != queries {
		t.Fatalf("resolve stage count %v, want %v", got, queries)
	}
	for _, stage := range []string{"coalesce", "admit", "batch", "solve"} {
		if _, ok := m[fmt.Sprintf("clude_query_stage_seconds_count{stage=%q}", stage)]; !ok {
			t.Fatalf("stage %q missing from exposition", stage)
		}
	}
	// The sum buckets are cumulative and end at +Inf == _count.
	if inf := m[`clude_query_latency_seconds_bucket{le="+Inf"}`]; inf != m["clude_query_latency_seconds_count"] {
		t.Fatalf("+Inf bucket %v != count %v", inf, m["clude_query_latency_seconds_count"])
	}
	// Blocked-dispatch routing is exhaustive and scrape-checkable:
	// every block went to exactly one of the panel or scalar path.
	if m["clude_panel_solves_total"]+m["clude_scalar_block_solves_total"] != m["clude_block_solves_total"] {
		t.Fatalf("block routing invariant broken in exposition: %v + %v != %v",
			m["clude_panel_solves_total"], m["clude_scalar_block_solves_total"], m["clude_block_solves_total"])
	}

	// /v1/stats and /v1/metrics views of the same counters agree.
	code, statsBody := getJSON(t, srv.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: %d", code)
	}
	stats := statsBody["stats"].(map[string]interface{})
	for metric, field := range map[string]string{
		"clude_queries_total":             "queries",
		"clude_queries_admitted_total":    "admitted",
		"clude_queries_coalesced_total":   "coalesced",
		"clude_queries_shed_total":        "shed",
		"clude_cache_hits_total":          "cache_hits",
		"clude_solves_total":              "cold_solves",
		"clude_katz_solves_total":         "katz_solves",
		"clude_block_solves_total":        "block_solves",
		"clude_panel_solves_total":        "panel_solves",
		"clude_scalar_block_solves_total": "scalar_block_solves",
		"clude_single_groups_total":       "single_groups",
		"clude_panel_packs_total":         "panel_packs",
	} {
		if m[metric] != stats[field].(float64) {
			t.Errorf("%s = %v disagrees with stats.%s = %v", metric, m[metric], field, stats[field])
		}
	}
}

// liveServerTuned is liveServer with an explicit worker count and queue
// depth (1/1 invites shedding under the burst test).
func liveServerTuned(t *testing.T, workers, queue int) (*httptest.Server, *core.Stream, func()) {
	t.Helper()
	g := graph.New(6, false, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 5},
	})
	reg := metrics.NewRegistry()
	stream, err := core.NewStream(core.StreamConfig{
		Algorithm: core.INC,
		Initial:   g,
		Derive:    graph.RWRMatrix(0.85),
		OnStage:   IngestStageHook(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := serve.New(serve.Config{Damping: 0.85, Workers: workers, QueueDepth: queue})
	eng.AttachLive(stream)
	eng.AttachGraphs(StreamGraphs(stream))
	srv := httptest.NewServer(New(Options{
		Engine:   eng,
		Stream:   stream,
		Batcher:  stream.NewBatcher(4, 0),
		Registry: reg,
	}))
	return srv, stream, func() {
		srv.Close()
		stream.Close()
		eng.Close()
	}
}

// TestIngestAndStoreMetrics drives a durable streaming server through
// updates and checks the ingest-stage histograms, WAL counters and
// recovery gauges in the exposition.
func TestIngestAndStoreMetrics(t *testing.T) {
	g := graph.New(6, false, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3},
	})
	reg := metrics.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{
		Sync:    store.SyncNone,
		OnStage: StoreStageHook(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := st.OpenStream(core.StreamConfig{
		Algorithm: core.INC,
		Initial:   g,
		Derive:    graph.RWRMatrix(0.85),
		OnStage:   IngestStageHook(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := serve.New(serve.Config{Damping: 0.85, Workers: 1})
	eng.AttachLive(stream)
	srv := httptest.NewServer(New(Options{
		Engine:   eng,
		Stream:   stream,
		Batcher:  stream.NewBatcher(4, 0),
		Store:    st,
		Registry: reg,
	}))
	defer func() {
		srv.Close()
		st.Close()
		stream.Close()
		eng.Close()
	}()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/v1/update?sync=1", "application/json",
			strings.NewReader(fmt.Sprintf(`{"events":[{"from":%d,"to":%d}]}`, i, 5-i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d: status %d", i, resp.StatusCode)
		}
	}

	m := scrape(t, srv.URL)
	if m["clude_stream_version"] != 3 {
		t.Fatalf("clude_stream_version = %v, want 3", m["clude_stream_version"])
	}
	if m["clude_stream_batches_total"] != 3 {
		t.Fatalf("clude_stream_batches_total = %v, want 3", m["clude_stream_batches_total"])
	}
	if m["clude_wal_records_total"] != 3 {
		t.Fatalf("clude_wal_records_total = %v, want 3", m["clude_wal_records_total"])
	}
	if m["clude_store_recovered"] != 0 {
		t.Fatalf("clude_store_recovered = %v on a cold start, want 0", m["clude_store_recovered"])
	}
	if m["clude_store_snapshots_written_total"] < 1 {
		t.Fatalf("clude_store_snapshots_written_total = %v, want >= 1 (initial checkpoint)",
			m["clude_store_snapshots_written_total"])
	}
	for _, stage := range []string{"validate", "log", "apply", "publish"} {
		key := fmt.Sprintf("clude_ingest_stage_seconds_count{stage=%q}", stage)
		if m[key] != 3 {
			t.Fatalf("%s = %v, want 3", key, m[key])
		}
	}
	if got := m[`clude_store_stage_seconds_count{stage="wal_append"}`]; got != 3 {
		t.Fatalf("wal_append stage count %v, want 3", got)
	}
	if got := m[`clude_store_stage_seconds_count{stage="snapshot"}`]; got < 1 {
		t.Fatalf("snapshot stage count %v, want >= 1", got)
	}
}
