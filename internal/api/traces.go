package api

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Trace inspection routes. GET /v1/traces lists retained traces
// (newest first) with the tracer's retention counters and the serving
// engine's latency exemplars — every exemplar's trace_id resolves via
// GET /v1/traces/{id}, which returns the full span tree. The ring only
// retains what tail-based sampling kept (errors, slow traces, and the
// sampled remainder), so the listing is a diagnostic window, not an
// access log.

// traceParams is the closed parameter set of GET /v1/traces, enforced
// like /v1/query's: a typo answers a different question than asked.
var traceParams = map[string]bool{
	"min_ms": true, "error": true, "limit": true,
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	tc := s.opt.Tracer
	if tc == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled (run with -trace-buffer > 0)"))
		return
	}
	var f trace.Filter
	v := r.URL.Query()
	for key, vals := range v {
		if !traceParams[key] {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown query parameter %q", key))
			return
		}
		if len(vals) > 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter %q given %d times", key, len(vals)))
			return
		}
	}
	if ms := v.Get("min_ms"); ms != "" {
		n, err := strconv.ParseFloat(ms, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q", ms))
			return
		}
		f.MinDuration = time.Duration(n * float64(time.Millisecond))
	}
	if e := v.Get("error"); e != "" {
		b, err := strconv.ParseBool(e)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad error %q", e))
			return
		}
		f.ErrorsOnly = b
	}
	f.Limit = 100
	if l := v.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", l))
			return
		}
		f.Limit = n
	}
	traces := tc.Recent(f)
	if traces == nil {
		traces = []*trace.TraceData{}
	}
	out := map[string]interface{}{
		"traces":            traces,
		"stats":             tc.Stats(),
		"slow_threshold_ms": float64(tc.SlowThreshold()) / float64(time.Millisecond),
	}
	if exs := s.opt.Engine.LatencyExemplars(); len(exs) > 0 {
		out["latency_exemplars"] = exs
	}
	writeJSON(w, out)
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	tc := s.opt.Tracer
	if tc == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled (run with -trace-buffer > 0)"))
		return
	}
	id := r.PathValue("id")
	td, ok := tc.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("trace %q not retained (evicted from the ring, or never kept by tail sampling)", id))
		return
	}
	writeJSON(w, td)
}

// registerTraceMetrics exposes the tracer's retention counters so the
// cost and selectivity of tail-based sampling are scrapeable.
func registerTraceMetrics(r *metrics.Registry, tc *trace.Tracer) {
	cf := func(name, help string, read func(trace.Stats) float64) {
		r.CounterFunc(name, help, nil, func() float64 { return read(tc.Stats()) })
	}
	cf("clude_traces_started_total", "Traces started (every traced request, retained or not).",
		func(st trace.Stats) float64 { return float64(st.Started) })
	cf("clude_traces_retained_total", "Traces kept by tail-based retention.",
		func(st trace.Stats) float64 { return float64(st.Retained) })
	for _, rc := range []struct {
		reason string
		read   func(trace.Stats) float64
	}{
		{"error", func(st trace.Stats) float64 { return float64(st.RetainedError) }},
		{"slow", func(st trace.Stats) float64 { return float64(st.RetainedSlow) }},
		{"sampled", func(st trace.Stats) float64 { return float64(st.RetainedSampled) }},
	} {
		read := rc.read
		r.CounterFunc("clude_traces_retained_reason_total",
			"Traces kept by tail-based retention, by reason.",
			metrics.Labels{"reason": rc.reason},
			func() float64 { return read(tc.Stats()) })
	}
	r.GaugeFunc("clude_traces_buffered", "Traces currently held in the retention ring.", nil,
		func() float64 { return float64(tc.Stats().Buffered) })
}
