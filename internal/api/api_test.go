package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/measures"
	"repro/internal/metrics"
	"repro/internal/serve"
)

// liveServer builds a minimal streaming-mode server: a tiny INC stream
// attached to a one-worker serve engine, graphs routed for katz, all
// behind the /v1 API.
func liveServer(t *testing.T) (*httptest.Server, *core.Stream, func()) {
	t.Helper()
	g := graph.New(6, false, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 5},
	})
	reg := metrics.NewRegistry()
	stream, err := core.NewStream(core.StreamConfig{
		Algorithm: core.INC,
		Initial:   g,
		Derive:    graph.RWRMatrix(0.85),
		OnStage:   IngestStageHook(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := serve.New(serve.Config{Damping: 0.85, Workers: 1})
	eng.AttachLive(stream)
	eng.AttachGraphs(StreamGraphs(stream))
	srv := httptest.NewServer(New(Options{
		Engine:   eng,
		Stream:   stream,
		Batcher:  stream.NewBatcher(4, 0),
		Registry: reg,
	}))
	return srv, stream, func() {
		srv.Close()
		stream.Close()
		eng.Close()
	}
}

func getJSON(t *testing.T, url string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: non-JSON response: %v", url, err)
	}
	return resp.StatusCode, body
}

// envelope extracts the {"error":{"code","message"}} body, failing the
// test when the response is not envelope-shaped.
func envelope(t *testing.T, body map[string]interface{}) (code, message string) {
	t.Helper()
	e, ok := body["error"].(map[string]interface{})
	if !ok {
		t.Fatalf("error response without envelope: %v", body)
	}
	code, _ = e["code"].(string)
	message, _ = e["message"].(string)
	if code == "" || message == "" {
		t.Fatalf("envelope missing code or message: %v", e)
	}
	return code, message
}

// TestQueryRejectsUnknownParams pins the contract that /v1/query
// answers exactly the question asked: a typoed or foreign URL parameter
// is a 400 whose envelope names it, never a silently different answer.
func TestQueryRejectsUnknownParams(t *testing.T) {
	srv, _, done := liveServer(t)
	defer done()

	code, _ := getJSON(t, srv.URL+"/v1/query?measure=rwr&source=2")
	if code != http.StatusOK {
		t.Fatalf("valid query: status %d", code)
	}

	cases := []struct {
		name, url string
		wantIn    string
	}{
		{"typoed param", "/v1/query?measure=rwr&sorce=2", "sorce"},
		{"foreign param", "/v1/query?measure=pagerank&verbose=1", "verbose"},
		{"duplicate param", "/v1/query?measure=rwr&source=2&source=3", "source"},
		{"malformed source", "/v1/query?measure=rwr&source=two", "two"},
		{"malformed snapshot", "/v1/query?measure=rwr&source=1&snapshot=x", "x"},
		{"malformed k", "/v1/query?measure=topk&source=1&k=ten", "ten"},
		{"malformed sources", "/v1/query?measure=ppr&sources=1,zz", "zz"},
		{"malformed damping", "/v1/query?measure=rwr&source=1&damping=high", "high"},
	}
	for _, tc := range cases {
		status, body := getJSON(t, srv.URL+tc.url)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
			continue
		}
		ecode, msg := envelope(t, body)
		if ecode != "bad_request" {
			t.Errorf("%s: envelope code %q, want bad_request", tc.name, ecode)
		}
		if !strings.Contains(msg, tc.wantIn) {
			t.Errorf("%s: error %q does not name the offender %q", tc.name, msg, tc.wantIn)
		}
	}
}

// TestQueryPostRejectsUnknownFields is the JSON-body twin.
func TestQueryPostRejectsUnknownFields(t *testing.T) {
	srv, _, done := liveServer(t)
	defer done()

	resp, err := http.Post(srv.URL+"/v1/query", "application/json",
		strings.NewReader(`{"measure":"rwr","source":1,"sorce":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown JSON field: status %d, want 400", resp.StatusCode)
	}
	if code, _ := envelope(t, body); code != "bad_request" {
		t.Fatalf("unknown JSON field: envelope code %q, want bad_request", code)
	}

	resp, err = http.Post(srv.URL+"/v1/query", "application/json",
		strings.NewReader(`{"measure":"rwr","source":1,"snapshot":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid JSON query: status %d, want 200", resp.StatusCode)
	}
}

// TestUpdateAndStatsEndpoints smoke-tests the ingest + stats loop the
// crash-recovery CI job drives over a real binary.
func TestUpdateAndStatsEndpoints(t *testing.T) {
	srv, _, done := liveServer(t)
	defer done()

	resp, err := http.Post(srv.URL+"/v1/update?sync=1", "application/json",
		strings.NewReader(`{"events":[{"from":0,"to":5,"op":"insert"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync update: status %d", resp.StatusCode)
	}
	if v, _ := out["version"].(float64); v != 1 {
		t.Fatalf("sync update version = %v, want 1", out["version"])
	}

	code, stats := getJSON(t, srv.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", code)
	}
	stream, _ := stats["stream"].(map[string]interface{})
	if stream == nil {
		t.Fatal("/v1/stats missing stream section in streaming mode")
	}
	if v, _ := stream["version"].(float64); v != 1 {
		t.Errorf("stream version in /v1/stats = %v, want 1", stream["version"])
	}

	// A malformed event must be rejected before it can poison the batch.
	resp, err = http.Post(srv.URL+"/v1/update", "application/json",
		strings.NewReader(`{"events":[{"from":0,"to":99}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var bad map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range event: status %d, want 400", resp.StatusCode)
	}
	envelope(t, bad)
}

// TestMethodDiscipline pins 405 + Allow on every route, both versioned
// and legacy.
func TestMethodDiscipline(t *testing.T) {
	srv, _, done := liveServer(t)
	defer done()

	cases := []struct {
		method, path, wantAllow string
	}{
		{http.MethodDelete, "/v1/query", "GET, HEAD, POST"},
		{http.MethodPut, "/v1/query", "GET, HEAD, POST"},
		{http.MethodGet, "/v1/update", "POST"},
		{http.MethodPost, "/v1/snapshots", "GET, HEAD"},
		{http.MethodPost, "/v1/stats", "GET, HEAD"},
		{http.MethodPost, "/v1/metrics", "GET, HEAD"},
		{http.MethodPost, "/v1/healthz", "GET, HEAD"},
		{http.MethodGet, "/update", "POST"},
		{http.MethodDelete, "/query", "GET, HEAD, POST"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s %s: non-JSON 405 body: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
			continue
		}
		if got := resp.Header.Get("Allow"); got != tc.wantAllow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, got, tc.wantAllow)
		}
		if code, _ := envelope(t, body); code != "method_not_allowed" {
			t.Errorf("%s %s: envelope code %q, want method_not_allowed", tc.method, tc.path, code)
		}
	}
}

// TestLegacyAliasEquivalence requires the bare paths to return the
// exact bytes their /v1 twins do — they are the same handler, and this
// pins that no wrapper ever diverges them.
func TestLegacyAliasEquivalence(t *testing.T) {
	srv, _, done := liveServer(t)
	defer done()

	fetch := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
	}

	// Warm the cache so both query fetches are deterministic hits.
	if code, _, _ := fetch("/v1/query?measure=rwr&source=3"); code != http.StatusOK {
		t.Fatalf("warmup query failed with %d", code)
	}

	for _, path := range []string{
		"/query?measure=rwr&source=3",  // warmed cache hit
		"/query?measure=rwr&sorce=3",   // error envelope
		"/query?measure=rwr&source=99", // validation error
		"/snapshots",
	} {
		s1, ct1, b1 := fetch(path)
		s2, ct2, b2 := fetch("/v1" + path)
		if s1 != s2 || ct1 != ct2 || b1 != b2 {
			t.Errorf("legacy %s diverges from /v1%s:\n status %d vs %d\n content-type %q vs %q\n body %q\n  vs %q",
				path, path, s1, s2, ct1, ct2, b1, b2)
		}
	}
}

// TestKatzEndpoint answers measure=katz over HTTP against the live
// graph and holds it bit-for-bit against a direct measures.Katz call.
func TestKatzEndpoint(t *testing.T) {
	srv, stream, done := liveServer(t)
	defer done()

	_, g := stream.GraphSnapshot()
	want, err := measures.Katz(g, measures.DefaultKatzAlpha(g))
	if err != nil {
		t.Fatal(err)
	}

	code, body := getJSON(t, srv.URL+"/v1/query?measure=katz")
	if code != http.StatusOK {
		t.Fatalf("katz query: status %d (%v)", code, body)
	}
	if m, _ := body["measure"].(string); m != "katz" {
		t.Fatalf("measure echoed as %q", body["measure"])
	}
	scores, _ := body["scores"].([]interface{})
	if len(scores) != len(want) {
		t.Fatalf("%d scores, want %d", len(scores), len(want))
	}
	for i, s := range scores {
		if s.(float64) != want[i] {
			t.Fatalf("node %d: %v != %v", i, s, want[i])
		}
	}

	// Repeat is a cache hit; a bad α is a clean 400 envelope.
	code, body = getJSON(t, srv.URL+"/v1/query?measure=katz")
	if code != http.StatusOK || body["cache_hit"] != true {
		t.Fatalf("repeat katz: status %d cache_hit %v", code, body["cache_hit"])
	}
	code, body = getJSON(t, srv.URL+"/v1/query?measure=katz&damping=1.5")
	if code != http.StatusBadRequest {
		t.Fatalf("katz damping 1.5: status %d, want 400", code)
	}
	envelope(t, body)
}

// TestHealthzAndErrors covers the liveness route and the remaining
// envelope codes (not_found on an unknown snapshot).
func TestHealthzAndErrors(t *testing.T) {
	srv, _, done := liveServer(t)
	defer done()

	code, body := getJSON(t, srv.URL+"/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("/v1/healthz: status %d", code)
	}
	if body["status"] != "ok" || body["mode"] != "streaming" {
		t.Fatalf("healthz body: %v", body)
	}
	if _, ok := body["uptime_seconds"].(float64); !ok {
		t.Fatalf("healthz missing uptime_seconds: %v", body)
	}

	code, body = getJSON(t, srv.URL+"/v1/query?measure=rwr&source=1&snapshot=7")
	if code != http.StatusNotFound {
		t.Fatalf("unknown snapshot: status %d, want 404", code)
	}
	if ecode, _ := envelope(t, body); ecode != "not_found" {
		t.Fatalf("unknown snapshot: envelope code %q, want not_found", ecode)
	}
}

// TestSnapshotsHistoryListing drives a history-enabled streaming server
// and checks /v1/snapshots reports each answerable version's state
// ("resident" bases vs "materializable" delta-replay versions) and
// /v1/stats surfaces the history_* block.
func TestSnapshotsHistoryListing(t *testing.T) {
	g := graph.New(8, false, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4},
		{From: 4, To: 5}, {From: 5, To: 6}, {From: 6, To: 7}, {From: 7, To: 0},
	})
	eng := serve.New(serve.Config{Damping: 0.85, Workers: 1, HistoryBase: 3})
	defer eng.Close()
	stream, err := core.NewStream(core.StreamConfig{
		Algorithm: core.INC,
		Initial:   g,
		Derive:    graph.RWRMatrix(0.85),
		OnHistory: eng.HistoryHook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	eng.AttachLive(stream)
	srv := httptest.NewServer(New(Options{Engine: eng, Stream: stream}))
	defer srv.Close()

	for i := 0; i < 7; i++ {
		if _, err := stream.Apply([]graph.EdgeEvent{{From: i, To: (i + 3) % 8, Op: graph.EdgeInsert}}); err != nil {
			t.Fatal(err)
		}
	}

	code, body := getJSON(t, srv.URL+"/v1/snapshots")
	if code != http.StatusOK {
		t.Fatalf("/v1/snapshots: status %d", code)
	}
	hv, ok := body["history"].([]interface{})
	if !ok || len(hv) == 0 {
		t.Fatalf("snapshots body missing history listing: %v", body)
	}
	states := map[string]int{}
	for _, item := range hv {
		m := item.(map[string]interface{})
		state, _ := m["state"].(string)
		if state != "resident" && state != "materializable" {
			t.Fatalf("version %v: unexpected state %q", m["version"], state)
		}
		states[state]++
	}
	if states["resident"] == 0 || states["materializable"] == 0 {
		t.Fatalf("listing should mix resident and materializable: %v", states)
	}

	code, body = getJSON(t, srv.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", code)
	}
	stats, _ := body["stats"].(map[string]interface{})
	if stats["history_base"] != float64(3) {
		t.Fatalf("stats history_base = %v, want 3", stats["history_base"])
	}
	if _, ok := stats["history_versions"]; !ok {
		t.Fatalf("stats missing history_versions: %v", stats)
	}
}
