package api

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serve"
)

// Graph sources for the engine's graph-backed measures (katz): the
// offline deployment serves graphs straight from the materialized EGS,
// the streaming deployment from the live builder's latest state.

// egsGraphs serves a pre-materialized sequence: snapshot i is graph i,
// negative resolves to the final snapshot.
type egsGraphs struct{ egs *graph.EGS }

// EGSGraphs adapts an EGS as the engine's GraphSource (offline mode).
func EGSGraphs(egs *graph.EGS) serve.GraphSource { return egsGraphs{egs} }

func (s egsGraphs) GraphAt(i int) (*graph.Graph, int, bool) {
	if i < 0 {
		i = s.egs.Len() - 1
	}
	if i >= s.egs.Len() {
		return nil, 0, false
	}
	return s.egs.Snapshots[i], i, true
}

// streamGraphs serves the live head: only the latest state exists as a
// graph, keyed by its published version (graphs per version are
// immutable, so cached katz answers stay correct across publishes —
// a new version is a new snapshot id and a new cache entry).
type streamGraphs struct{ s *core.Stream }

// StreamGraphs adapts a live stream as the engine's GraphSource
// (streaming mode). A request for an explicit snapshot id only
// succeeds when it names the current version; historical graph states
// are not retained.
func StreamGraphs(s *core.Stream) serve.GraphSource { return streamGraphs{s} }

func (sg streamGraphs) GraphAt(i int) (*graph.Graph, int, bool) {
	version, g := sg.s.GraphSnapshot()
	if i >= 0 && uint64(i) != version {
		return nil, 0, false
	}
	return g, int(version), true
}
