// Package api is cludeserve's HTTP layer: the versioned /v1 routes, the
// JSON error envelope, HTTP-method discipline, and the wiring that
// re-registers every subsystem's counters into one metrics.Registry so
// /v1/stats and /v1/metrics are two renderings of the same state.
//
// Routes (all also reachable at their bare legacy paths, which are
// aliases of the same handlers — bit-identical responses):
//
//	GET|POST /v1/query      proximity-measure queries (docs/API.md)
//	POST     /v1/update     edge-delta ingestion (streaming mode)
//	GET      /v1/snapshots  retained snapshot ids (+ history version states)
//	GET      /v1/stats      JSON counters of every subsystem
//	GET      /v1/metrics    Prometheus text exposition of the same
//	GET      /v1/healthz    liveness + mode + versions
//	GET      /v1/traces     retained traces (tail-based sampling ring)
//	GET      /v1/traces/{id}  one trace's full span tree
//
// Errors are always the envelope {"error":{"code":"...","message":"..."}}
// with a machine-readable code (bad_request, not_found,
// method_not_allowed, overloaded, unavailable); a wrong HTTP method is
// 405 with an Allow header listing what the route accepts.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/trace"
)

// Options wires a Server. Engine is required; the rest are optional
// (nil Stream/Batcher means offline mode, nil Store means no
// durability, nil Registry means a fresh one).
type Options struct {
	Engine  *serve.Engine
	Stream  *core.Stream
	Batcher *core.Batcher
	Store   *store.Store
	// Registry receives every subsystem's metrics at New time. Callers
	// that pre-register their own collectors (the ingest/store stage
	// hooks, typically) pass the registry those live in.
	Registry *metrics.Registry
	// Tracer, when non-nil, enables GET /v1/traces and
	// /v1/traces/{id} and registers the clude_traces_* retention
	// counters. Nil keeps the routes 404 and costs nothing.
	Tracer *trace.Tracer
}

// Server is the HTTP layer. It implements http.Handler.
type Server struct {
	opt   Options
	reg   *metrics.Registry
	mux   *http.ServeMux
	start time.Time
}

// New builds the route table and registers the engine's, stream's and
// store's metrics into the registry. Call once per Server per registry
// (re-registering the same collectors panics, by design).
func New(opt Options) *Server {
	if opt.Engine == nil {
		panic("api: Options.Engine is required")
	}
	reg := opt.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{opt: opt, reg: reg, mux: http.NewServeMux(), start: time.Now()}
	opt.Engine.RegisterMetrics(reg)
	if opt.Stream != nil {
		registerStreamMetrics(reg, opt.Stream)
	}
	if opt.Store != nil {
		registerStoreMetrics(reg, opt.Store)
	}
	if opt.Tracer != nil {
		registerTraceMetrics(reg, opt.Tracer)
	}

	route := func(path string, h http.HandlerFunc, methods ...string) {
		gated := methodGate(h, methods...)
		s.mux.Handle("/v1"+path, gated)
		// The legacy unversioned path is the same handler: responses
		// are bit-identical by construction, not by promise.
		s.mux.Handle(path, gated)
	}
	route("/query", s.handleQuery, http.MethodGet, http.MethodHead, http.MethodPost)
	route("/update", s.handleUpdate, http.MethodPost)
	route("/snapshots", s.handleSnapshots, http.MethodGet, http.MethodHead)
	route("/stats", s.handleStats, http.MethodGet, http.MethodHead)
	route("/metrics", s.handleMetrics, http.MethodGet, http.MethodHead)
	route("/healthz", s.handleHealthz, http.MethodGet, http.MethodHead)
	route("/traces", s.handleTraces, http.MethodGet, http.MethodHead)
	route("/traces/{id}", s.handleTraceByID, http.MethodGet, http.MethodHead)
	return s
}

// Registry returns the registry the server exposes at /v1/metrics.
func (s *Server) Registry() *metrics.Registry { return s.reg }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// methodGate enforces the route's method set: anything else is 405
// with an Allow header listing what would have worked.
func methodGate(h http.HandlerFunc, methods ...string) http.Handler {
	allow := strings.Join(methods, ", ")
	allowed := make(map[string]bool, len(methods))
	for _, m := range methods {
		allowed[m] = true
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !allowed[r.Method] {
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Errorf("method %s not allowed (allow: %s)", r.Method, allow))
			return
		}
		h(w, r)
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.opt.Engine.Query(r.Context(), q)
	if err != nil {
		if errors.Is(err, serve.ErrOverloaded) {
			// Shedding is instantaneous, so the client may retry as
			// soon as the current backlog drains.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	batcher, stream := s.opt.Batcher, s.opt.Stream
	if batcher == nil {
		writeError(w, http.StatusNotFound, errors.New("not in streaming mode (run with -stream)"))
		return
	}
	events, err := parseUpdate(r, stream.N())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := batcher.Send(events...); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	out := map[string]interface{}{"queued": len(events)}
	if r.URL.Query().Get("sync") != "" {
		v, err := batcher.Flush()
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		out["version"] = v
	} else {
		out["pending"] = batcher.Pending()
		out["version"] = stream.Version()
	}
	writeJSON(w, out)
}

func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	out := map[string]interface{}{
		"retained": s.opt.Engine.Snapshots(),
		"latest":   s.opt.Engine.Latest(),
	}
	if s.opt.Stream != nil {
		out["live_version"] = s.opt.Stream.Version()
	}
	// With delta-compressed history every version in the log window is
	// answerable; the listing says which are factor-resident right now
	// and which would be materialized (delta replay) on first query.
	if hv := s.opt.Engine.HistoryVersions(); hv != nil {
		out["history"] = hv
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.opt.Engine.Stats()
	out := map[string]interface{}{
		"stats":    es,
		"hit_rate": es.HitRate(),
	}
	if s.opt.Stream != nil {
		out["stream"] = s.opt.Stream.Stats()
	}
	if s.opt.Store != nil {
		out["store"] = s.opt.Store.Stats()
	}
	writeJSON(w, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	_ = s.reg.Expose(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	mode := "offline"
	out := map[string]interface{}{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"latest":         s.opt.Engine.Latest(),
	}
	if s.opt.Stream != nil {
		mode = "streaming"
		out["live_version"] = s.opt.Stream.Version()
	}
	out["mode"] = mode
	writeJSON(w, out)
}

// updateBody is the POST /v1/update payload.
type updateBody struct {
	Events []updateEvent `json:"events"`
}

type updateEvent struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Op   string `json:"op,omitempty"` // insert (default) | delete | update | + | - | ~
}

// parseUpdate decodes and fully validates an ingest batch. Validation
// must happen here, synchronously: an async (batched) update is
// acknowledged before it commits, and a malformed event reaching the
// batcher would poison the whole coalesced batch — dropping other
// clients' already-acknowledged events and surfacing the error to an
// unrelated request.
func parseUpdate(r *http.Request, n int) ([]graph.EdgeEvent, error) {
	var body updateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("bad JSON body: %w", err)
	}
	if len(body.Events) == 0 {
		return nil, errors.New("empty event list")
	}
	events := make([]graph.EdgeEvent, len(body.Events))
	for i, ev := range body.Events {
		op := graph.EdgeInsert
		if ev.Op != "" {
			var err error
			if op, err = graph.ParseEdgeOp(ev.Op); err != nil {
				return nil, err
			}
		}
		if ev.From < 0 || ev.From >= n || ev.To < 0 || ev.To >= n {
			return nil, fmt.Errorf("event %d: endpoint (%d,%d) outside [0,%d)", i, ev.From, ev.To, n)
		}
		events[i] = graph.EdgeEvent{From: ev.From, To: ev.To, Op: op}
	}
	return events, nil
}

// queryParams is the closed set of /v1/query URL parameters. Anything
// else is a client error: silently ignoring a typo ("sorce=5") would
// answer a different question than the one asked.
var queryParams = map[string]bool{
	"measure": true, "snapshot": true, "source": true,
	"sources": true, "k": true, "damping": true,
}

// parseQuery accepts either URL parameters (GET) or a JSON body (POST)
// shaped like serve.Query. Unknown or repeated parameters (and unknown
// JSON fields) are rejected with a descriptive error, which the
// handler returns as HTTP 400.
func parseQuery(r *http.Request) (serve.Query, error) {
	q := serve.Query{Snapshot: -1}
	if r.Method == http.MethodPost {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			return q, fmt.Errorf("bad JSON body: %w", err)
		}
		return q, nil
	}
	v := r.URL.Query()
	for key, vals := range v {
		if !queryParams[key] {
			return q, fmt.Errorf("unknown query parameter %q", key)
		}
		if len(vals) > 1 {
			return q, fmt.Errorf("query parameter %q given %d times", key, len(vals))
		}
	}
	q.Measure = v.Get("measure")
	var err error
	if s := v.Get("snapshot"); s != "" {
		if q.Snapshot, err = strconv.Atoi(s); err != nil {
			return q, fmt.Errorf("bad snapshot %q", s)
		}
	}
	if s := v.Get("source"); s != "" {
		if q.Source, err = strconv.Atoi(s); err != nil {
			return q, fmt.Errorf("bad source %q", s)
		}
	}
	if s := v.Get("k"); s != "" {
		if q.K, err = strconv.Atoi(s); err != nil {
			return q, fmt.Errorf("bad k %q", s)
		}
	}
	if s := v.Get("sources"); s != "" {
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return q, fmt.Errorf("bad sources entry %q", part)
			}
			q.Sources = append(q.Sources, n)
		}
	}
	if s := v.Get("damping"); s != "" {
		if q.Damping, err = strconv.ParseFloat(s, 64); err != nil {
			return q, fmt.Errorf("bad damping %q", s)
		}
	}
	return q, nil
}

// statusFor maps serving-layer errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrUnknownSnapshot), errors.Is(err, serve.ErrNoSnapshots):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrClosed), errors.Is(err, core.ErrStreamClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// errorCode is the envelope's machine-readable spelling of a status.
func errorCode(status int) string {
	switch status {
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusTooManyRequests:
		return "overloaded"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "bad_request"
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorEnvelope is the one error shape every route speaks:
// {"error":{"code":"...","message":"..."}}.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{
		Error: errorBody{Code: errorCode(status), Message: err.Error()},
	})
}
