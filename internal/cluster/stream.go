package cluster

import (
	"fmt"

	"repro/internal/sparse"
)

// Tracker maintains α-cluster membership incrementally, one pattern at
// a time — the streaming twin of Alpha. Where the offline pass scans a
// complete pattern sequence, the tracker is fed matrices as they arrive
// from the delta pipeline and answers, in O(|pattern|) per step, whether
// the newest matrix extends the current cluster or opens a new one.
//
// The admission rule is exactly Algorithm 1's: a pattern joins while
// mes(A∩, A∪) ≥ α over the would-be bounding patterns. Feeding the
// tracker the same sequence Alpha saw therefore reproduces Alpha's
// cluster boundaries and unions verbatim (the stream_test property),
// which is what lets the streaming engine make per-batch decisions
// without ever re-clustering the history.
type Tracker struct {
	alpha        float64
	start, end   int // current cluster [start, end) in admission order
	inter, union *sparse.Pattern
	clusters     int
}

// NewTracker returns an empty tracker with similarity threshold alpha.
func NewTracker(alpha float64) *Tracker {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("cluster: alpha %v outside [0,1]", alpha))
	}
	return &Tracker{alpha: alpha}
}

// Admit feeds the next pattern and reports whether it extended the
// current cluster. The first pattern (and every pattern whose admission
// would break the α bound) starts a new cluster and returns false.
func (t *Tracker) Admit(p *sparse.Pattern) bool {
	if t.union == nil {
		t.start, t.end = t.end, t.end+1
		t.inter, t.union = p, p
		t.clusters++
		return false
	}
	ni := t.inter.Intersect(p)
	nu := t.union.Union(p)
	if sparse.MES(ni, nu) >= t.alpha {
		t.inter, t.union = ni, nu
		t.end++
		return true
	}
	t.start, t.end = t.end, t.end+1
	t.inter, t.union = p, p
	t.clusters++
	return false
}

// Cluster returns the current cluster's [start, end) admission-index
// range and union pattern. It panics before the first Admit.
func (t *Tracker) Cluster() Cluster {
	if t.union == nil {
		panic("cluster: Tracker.Cluster before first Admit")
	}
	return Cluster{Start: t.start, End: t.end, Union: t.union}
}

// Union returns the current cluster's union pattern sp(A∪) (nil before
// the first Admit).
func (t *Tracker) Union() *sparse.Pattern { return t.union }

// Len returns the current cluster's member count.
func (t *Tracker) Len() int { return t.end - t.start }

// Clusters returns how many clusters have been opened so far.
func (t *Tracker) Clusters() int { return t.clusters }

// TrackerState is the complete serializable state of a Tracker. The
// patterns are immutable and may be shared with a live tracker: Admit
// replaces them, never mutates them, so an exported state stays valid
// while the tracker advances.
type TrackerState struct {
	Alpha      float64
	Start, End int
	Clusters   int
	// Inter and Union are the current cluster's bounding patterns; both
	// nil before the first Admit.
	Inter, Union *sparse.Pattern
}

// State exports the tracker for persistence.
func (t *Tracker) State() *TrackerState {
	return &TrackerState{
		Alpha: t.alpha,
		Start: t.start, End: t.end,
		Clusters: t.clusters,
		Inter:    t.inter, Union: t.union,
	}
}

// RestoreTracker rebuilds a tracker from an exported state. Feeding the
// restored tracker the same future patterns as the original yields
// identical admission decisions.
func RestoreTracker(st *TrackerState) (*Tracker, error) {
	if st.Alpha < 0 || st.Alpha > 1 {
		return nil, fmt.Errorf("cluster: alpha %v outside [0,1]", st.Alpha)
	}
	if (st.Inter == nil) != (st.Union == nil) {
		return nil, fmt.Errorf("cluster: inconsistent tracker state (inter/union presence differs)")
	}
	if st.Start < 0 || st.End < st.Start || st.Clusters < 0 {
		return nil, fmt.Errorf("cluster: implausible tracker counters start=%d end=%d clusters=%d", st.Start, st.End, st.Clusters)
	}
	return &Tracker{
		alpha: st.Alpha,
		start: st.Start, end: st.End,
		clusters: st.Clusters,
		inter:    st.Inter, union: st.Union,
	}, nil
}
