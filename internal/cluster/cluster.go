// Package cluster implements the matrix-sequence clustering strategies
// of the paper: α-clustering (Algorithm 1), which bounds cluster
// "compactness" by the matrix edit similarity of the bounding matrices
// A∩ and A∪, and the two β-clustering variants (Algorithms 4 and 5)
// that enforce the LUDEM-QC ordering-quality constraint directly.
package cluster

import (
	"fmt"

	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/sparse"
)

// Cluster is a contiguous run [Start, End) of matrix indices in the
// EMS, together with the union pattern sp(A∪) of its members (the
// intersection pattern is tracked during construction but only the
// union participates in the algorithms downstream).
type Cluster struct {
	Start, End int
	Union      *sparse.Pattern
}

// Len returns the number of matrices in the cluster.
func (c Cluster) Len() int { return c.End - c.Start }

// Contains reports whether matrix index i falls inside the cluster.
func (c Cluster) Contains(i int) bool { return i >= c.Start && i < c.End }

// Members returns the matrix indices covered by the cluster, in
// sequence order.
func (c Cluster) Members() []int {
	out := make([]int, 0, c.Len())
	for i := c.Start; i < c.End; i++ {
		out = append(out, i)
	}
	return out
}

// Partition reports whether cs is a contiguous partition of [0, T) —
// the invariant every clustering pass must maintain and the execution
// engine's emission reordering relies on.
func Partition(cs []Cluster, T int) bool {
	at := 0
	for _, c := range cs {
		if c.Start != at || c.End < c.Start {
			return false
		}
		at = c.End
	}
	return at == T
}

// Covering returns the index of the cluster containing matrix i, or -1
// if no cluster covers it. cs must be sorted by Start (as every
// clustering pass produces); the lookup is a binary search.
func Covering(cs []Cluster, i int) int {
	lo, hi := 0, len(cs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case i < cs[mid].Start:
			hi = mid
		case i >= cs[mid].End:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// Alpha performs α-clustering (Algorithm 1): matrices are appended to
// the current cluster as long as mes(A∩, A∪) ≥ α; when the bound would
// break, a new cluster starts. α = 1 makes every cluster a single
// matrix (unless successive patterns are identical); α = 0 puts the
// whole EMS in one cluster.
func Alpha(patterns []*sparse.Pattern, alpha float64) []Cluster {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("cluster: alpha %v outside [0,1]", alpha))
	}
	if len(patterns) == 0 {
		return nil
	}
	var out []Cluster
	start := 0
	inter, union := patterns[0], patterns[0]
	for i := 1; i < len(patterns); i++ {
		ni := inter.Intersect(patterns[i])
		nu := union.Union(patterns[i])
		if sparse.MES(ni, nu) >= alpha {
			inter, union = ni, nu
			continue
		}
		out = append(out, Cluster{Start: start, End: i, Union: union})
		start = i
		inter, union = patterns[i], patterns[i]
	}
	out = append(out, Cluster{Start: start, End: len(patterns), Union: union})
	return out
}

// QCResult couples a cluster with the ordering chosen while the
// quality-constrained clustering was built (β-clustering computes
// orderings as a side effect, so recomputing them downstream would
// waste a Markowitz run).
type QCResult struct {
	Cluster  Cluster
	Ordering sparse.Ordering
	// SSPSizes[k] is |s̃p(A^O)| for member Start+k under Ordering
	// (CINC variant) or the shared upper bound |s̃p(A∪^O∪)| (CLUDE
	// variant, same value for all members).
	SSPSizes []int
}

// A starSizer returns |s̃p(A_i*)| for the i-th pattern — the reference
// sizes of Definition 4, computable without numeric work for symmetric
// matrices via minimum degree (paper §3). Callers that sweep β over the
// same EMS should supply a memoizing sizer (e.g. StarTable) so the
// reference is computed once per matrix, not once per run.
type starSizer func(i int, p *sparse.Pattern) int

// MinDegreeStar is the default starSizer: |s̃p| under MinDegree,
// computed on demand.
func MinDegreeStar(i int, p *sparse.Pattern) int { return order.MinDegree(p).SSPSize }

// StarTable wraps precomputed reference sizes as a starSizer.
func StarTable(sizes []int) func(i int, p *sparse.Pattern) int {
	return func(i int, _ *sparse.Pattern) int { return sizes[i] }
}

// BetaCINC performs β-clustering in the CINC flavour (Algorithm 4):
// the cluster ordering is the Markowitz/MinDegree ordering of its
// first matrix, and a matrix Ai joins only if
// |s̃p(Ai^O)| − |s̃p(Ai*)| ≤ β·|s̃p(Ai*)|.
func BetaCINC(patterns []*sparse.Pattern, beta float64, star starSizer) []QCResult {
	if beta < 0 {
		panic("cluster: beta must be non-negative")
	}
	if star == nil {
		star = MinDegreeStar
	}
	if len(patterns) == 0 {
		return nil
	}
	var out []QCResult
	begin := func(i int) QCResult {
		res := order.MinDegree(patterns[i])
		return QCResult{
			Cluster:  Cluster{Start: i, End: i + 1, Union: patterns[i]},
			Ordering: res.Ordering,
			SSPSizes: []int{res.SSPSize},
		}
	}
	cur := begin(0)
	for i := 1; i < len(patterns); i++ {
		starSz := star(i, patterns[i])
		sz := lu.SymbolicSize(patterns[i], cur.Ordering)
		if float64(sz-starSz) <= beta*float64(starSz) {
			cur.Cluster.End = i + 1
			cur.Cluster.Union = cur.Cluster.Union.Union(patterns[i])
			cur.SSPSizes = append(cur.SSPSizes, sz)
			continue
		}
		out = append(out, cur)
		cur = begin(i)
	}
	return append(out, cur)
}

// BetaCLUDE performs β-clustering in the CLUDE flavour (Algorithm 5):
// the cluster ordering is the MinDegree ordering O∪ of the running
// union A∪, and the shortcut constraint |s̃p(A∪^O∪)| − |s̃p(Al*)| ≤
// β·|s̃p(Al*)| is checked for every member Al (it implies the true
// per-member constraint by Property 1 + Lemma 1). Because the shortcut
// is hardest for the member with the smallest reference size, tracking
// the running minimum makes each admission check O(1) beyond the
// symbolic size.
//
// One engineering deviation from the literal pseudo-code, which
// re-derives O∪ on every admission: the previous cluster ordering is
// kept as long as it still satisfies the constraint on the grown union
// (one symbolic decomposition to check), and MinDegree is re-run on
// the union only when the kept ordering fails. The enforced constraint
// is identical — every admitted matrix provably satisfies its quality
// bound — but a β-sweep no longer pays a full ordering per matrix.
func BetaCLUDE(patterns []*sparse.Pattern, beta float64, star starSizer) []QCResult {
	if beta < 0 {
		panic("cluster: beta must be non-negative")
	}
	if star == nil {
		star = MinDegreeStar
	}
	if len(patterns) == 0 {
		return nil
	}
	var out []QCResult
	start := 0
	union := patterns[0]
	ordering := order.MinDegree(patterns[0])
	unionSize := ordering.SSPSize // |s̃p(A∪^O)| for the current ordering
	minStar := star(0, patterns[0])

	withinBound := func(size, starSz int) bool {
		return float64(size-starSz) <= beta*float64(starSz)
	}

	for i := 1; i < len(patterns); i++ {
		candUnion := union.Union(patterns[i])
		candMinStar := minStar
		if s := star(i, patterns[i]); s < candMinStar {
			candMinStar = s
		}
		// Try the kept ordering first.
		size := lu.SymbolicSize(candUnion, ordering.Ordering)
		if withinBound(size, candMinStar) {
			union, unionSize, minStar = candUnion, size, candMinStar
			continue
		}
		// Re-derive O∪ from the grown union (Algorithm 5 line 4).
		cand := order.MinDegree(candUnion)
		if withinBound(cand.SSPSize, candMinStar) {
			union, ordering, unionSize, minStar = candUnion, cand, cand.SSPSize, candMinStar
			continue
		}
		out = append(out, qcFromUnion(start, i, union, ordering.Ordering, unionSize))
		start = i
		union = patterns[i]
		ordering = order.MinDegree(patterns[i])
		unionSize = ordering.SSPSize
		minStar = star(i, patterns[i])
	}
	return append(out, qcFromUnion(start, len(patterns), union, ordering.Ordering, unionSize))
}

func qcFromUnion(start, end int, union *sparse.Pattern, o sparse.Ordering, size int) QCResult {
	sizes := make([]int, end-start)
	for k := range sizes {
		sizes[k] = size
	}
	return QCResult{
		Cluster:  Cluster{Start: start, End: end, Union: union},
		Ordering: o,
		SSPSizes: sizes,
	}
}
