package cluster

import (
	"testing"

	"repro/internal/sparse"
	"repro/internal/xrand"
)

// randomPatterns builds a drifting pattern sequence: each step flips a
// few positions of its predecessor, so runs of similar patterns occur.
func randomPatterns(rng *xrand.Rand, n, T, flips int) []*sparse.Pattern {
	coords := map[sparse.Coord]struct{}{}
	for i := 0; i < n; i++ {
		coords[sparse.Coord{Row: i, Col: i}] = struct{}{}
	}
	for k := 0; k < 4*n; k++ {
		coords[sparse.Coord{Row: rng.Intn(n), Col: rng.Intn(n)}] = struct{}{}
	}
	mk := func() *sparse.Pattern {
		cs := make([]sparse.Coord, 0, len(coords))
		for c := range coords {
			cs = append(cs, c)
		}
		return sparse.NewPattern(n, cs)
	}
	out := []*sparse.Pattern{mk()}
	for t := 1; t < T; t++ {
		for f := 0; f < flips; f++ {
			c := sparse.Coord{Row: rng.Intn(n), Col: rng.Intn(n)}
			if c.Row == c.Col {
				continue // keep the diagonal
			}
			if _, ok := coords[c]; ok {
				delete(coords, c)
			} else {
				coords[c] = struct{}{}
			}
		}
		out = append(out, mk())
	}
	return out
}

// TestTrackerMatchesAlpha is the incremental-maintenance property: the
// online tracker fed one pattern at a time reproduces the offline
// Alpha clustering exactly — boundaries and unions.
func TestTrackerMatchesAlpha(t *testing.T) {
	rng := xrand.New(99)
	for _, alpha := range []float64{0, 0.5, 0.9, 0.97, 1} {
		pats := randomPatterns(rng, 40, 30, 6)
		want := Alpha(pats, alpha)

		// Feed the tracker one pattern at a time, recording each cluster
		// the moment its successor opens.
		tr := NewTracker(alpha)
		var got []Cluster
		var prev Cluster
		for i, p := range pats {
			extended := tr.Admit(p)
			if i > 0 && !extended {
				got = append(got, prev)
			}
			prev = tr.Cluster()
		}
		got = append(got, prev)

		if len(got) != len(want) {
			t.Fatalf("alpha=%v: %d clusters, want %d", alpha, len(got), len(want))
		}
		for k := range want {
			if got[k].Start != want[k].Start || got[k].End != want[k].End {
				t.Fatalf("alpha=%v cluster %d: [%d,%d) want [%d,%d)",
					alpha, k, got[k].Start, got[k].End, want[k].Start, want[k].End)
			}
			if !got[k].Union.Equal(want[k].Union) {
				t.Fatalf("alpha=%v cluster %d: union differs from Alpha's", alpha, k)
			}
		}
		if tr.Clusters() != len(want) {
			t.Fatalf("alpha=%v: Clusters()=%d, want %d", alpha, tr.Clusters(), len(want))
		}
	}
}

func TestTrackerEdges(t *testing.T) {
	tr := NewTracker(0.9)
	if tr.Union() != nil {
		t.Fatal("fresh tracker has a union")
	}
	p := sparse.NewPattern(3, []sparse.Coord{{Row: 0, Col: 0}, {Row: 1, Col: 1}, {Row: 2, Col: 2}})
	if tr.Admit(p) {
		t.Fatal("first pattern reported as extension")
	}
	if !tr.Admit(p) {
		t.Fatal("identical pattern must extend (mes=1)")
	}
	if c := tr.Cluster(); c.Start != 0 || c.End != 2 || tr.Len() != 2 {
		t.Fatalf("cluster %+v after two identical admissions", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracker accepted alpha out of range")
		}
	}()
	NewTracker(1.5)
}
