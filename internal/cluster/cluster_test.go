package cluster

import (
	"testing"

	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// driftingPatterns builds a sequence of symmetric patterns that drift
// gradually: each step flips a few off-diagonal (mirrored) positions.
func driftingPatterns(rng *xrand.Rand, n, T, churn int) []*sparse.Pattern {
	type pos struct{ i, j int }
	cur := map[pos]bool{}
	for i := 0; i < n; i++ {
		cur[pos{i, i}] = true
	}
	for k := 0; k < 4*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			cur[pos{i, j}] = true
			cur[pos{j, i}] = true
		}
	}
	mat := func() *sparse.Pattern {
		coords := make([]sparse.Coord, 0, len(cur))
		for p := range cur {
			coords = append(coords, sparse.Coord{Row: p.i, Col: p.j})
		}
		return sparse.NewPattern(n, coords)
	}
	out := []*sparse.Pattern{mat()}
	for t := 1; t < T; t++ {
		for c := 0; c < churn; c++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			p1, p2 := pos{i, j}, pos{j, i}
			if cur[p1] {
				delete(cur, p1)
				delete(cur, p2)
			} else {
				cur[p1] = true
				cur[p2] = true
			}
		}
		out = append(out, mat())
	}
	return out
}

func TestAlphaCoversSequence(t *testing.T) {
	rng := xrand.New(800)
	pats := driftingPatterns(rng, 30, 40, 4)
	cs := Alpha(pats, 0.95)
	// Clusters must partition [0, T) contiguously.
	at := 0
	for _, c := range cs {
		if c.Start != at {
			t.Fatalf("gap or overlap at %d (cluster starts %d)", at, c.Start)
		}
		if c.Len() <= 0 {
			t.Fatal("empty cluster")
		}
		at = c.End
	}
	if at != len(pats) {
		t.Fatalf("clusters end at %d, want %d", at, len(pats))
	}
}

func TestAlphaUnionCoversMembers(t *testing.T) {
	rng := xrand.New(801)
	pats := driftingPatterns(rng, 25, 30, 5)
	for _, c := range Alpha(pats, 0.9) {
		for i := c.Start; i < c.End; i++ {
			if !pats[i].Subset(c.Union) {
				t.Fatalf("member %d not covered by cluster union", i)
			}
		}
	}
}

func TestAlphaBoundedness(t *testing.T) {
	// Every produced cluster must itself satisfy the α-bound
	// (Definition 8) since the algorithm only admits under the bound.
	rng := xrand.New(802)
	pats := driftingPatterns(rng, 25, 30, 6)
	alpha := 0.93
	for _, c := range Alpha(pats, alpha) {
		inter, union := pats[c.Start], pats[c.Start]
		for i := c.Start + 1; i < c.End; i++ {
			inter = inter.Intersect(pats[i])
			union = union.Union(pats[i])
		}
		if got := sparse.MES(inter, union); got < alpha {
			t.Fatalf("cluster [%d,%d) mes %v < alpha %v", c.Start, c.End, got, alpha)
		}
	}
}

func TestAlphaMonotoneInAlpha(t *testing.T) {
	// A larger α is a tighter requirement, so it cannot produce fewer
	// clusters.
	rng := xrand.New(803)
	pats := driftingPatterns(rng, 30, 40, 5)
	prev := 0
	for _, a := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		k := len(Alpha(pats, a))
		if k < prev {
			t.Fatalf("alpha %v gave %d clusters, fewer than looser bound's %d", a, k, prev)
		}
		prev = k
	}
}

func TestAlphaExtremes(t *testing.T) {
	rng := xrand.New(804)
	pats := driftingPatterns(rng, 20, 15, 4)
	if got := len(Alpha(pats, 0)); got != 1 {
		t.Errorf("alpha=0 gave %d clusters, want 1", got)
	}
	// alpha=1 splits whenever patterns differ at all; with churn > 0
	// that is every step.
	if got := len(Alpha(pats, 1)); got != len(pats) {
		t.Errorf("alpha=1 gave %d clusters, want %d", got, len(pats))
	}
	single := Alpha(pats[:1], 0.9)
	if len(single) != 1 || single[0].Len() != 1 {
		t.Error("single-matrix EMS should give one singleton cluster")
	}
}

func TestBetaCINCConstraintHolds(t *testing.T) {
	rng := xrand.New(805)
	pats := driftingPatterns(rng, 25, 20, 4)
	beta := 0.15
	for _, qc := range BetaCINC(pats, beta, nil) {
		for k := 0; k < qc.Cluster.Len(); k++ {
			i := qc.Cluster.Start + k
			starSz := MinDegreeStar(i, pats[i])
			sz := lu.SymbolicSize(pats[i], qc.Ordering)
			if float64(sz-starSz) > beta*float64(starSz)+1e-9 {
				t.Fatalf("matrix %d violates beta constraint: sz=%d star=%d", i, sz, starSz)
			}
			if qc.SSPSizes[k] != sz {
				t.Fatalf("recorded SSPSize %d != recomputed %d", qc.SSPSizes[k], sz)
			}
		}
	}
}

func TestBetaCLUDEConstraintHolds(t *testing.T) {
	rng := xrand.New(806)
	pats := driftingPatterns(rng, 25, 20, 4)
	beta := 0.2
	for _, qc := range BetaCLUDE(pats, beta, nil) {
		for k := 0; k < qc.Cluster.Len(); k++ {
			i := qc.Cluster.Start + k
			starSz := MinDegreeStar(i, pats[i])
			// The true constraint (implied by the shortcut).
			sz := lu.SymbolicSize(pats[i], qc.Ordering)
			if float64(sz-starSz) > beta*float64(starSz)+1e-9 {
				t.Fatalf("matrix %d violates beta constraint: sz=%d star=%d", i, sz, starSz)
			}
		}
	}
}

func TestBetaZeroGivesMarkowitzQuality(t *testing.T) {
	// β = 0 forces ql ≤ 0 for every matrix: each matrix's ordering must
	// be at least as good as its own MinDegree ordering. (Strictly
	// better is possible — greedy MinDegree is not optimal.)
	rng := xrand.New(807)
	pats := driftingPatterns(rng, 20, 10, 5)
	for _, qc := range BetaCINC(pats, 0, nil) {
		for k := 0; k < qc.Cluster.Len(); k++ {
			i := qc.Cluster.Start + k
			if qc.SSPSizes[k] > MinDegreeStar(i, pats[i]) {
				t.Fatalf("beta=0: matrix %d has quality loss", i)
			}
		}
	}
}

func TestBetaPartitionContiguous(t *testing.T) {
	rng := xrand.New(808)
	pats := driftingPatterns(rng, 20, 15, 4)
	for name, qcs := range map[string][]QCResult{
		"cinc":  BetaCINC(pats, 0.1, nil),
		"clude": BetaCLUDE(pats, 0.1, nil),
	} {
		at := 0
		for _, qc := range qcs {
			if qc.Cluster.Start != at {
				t.Fatalf("%s: gap at %d", name, at)
			}
			at = qc.Cluster.End
			if !qc.Ordering.Valid() {
				t.Fatalf("%s: invalid ordering", name)
			}
		}
		if at != len(pats) {
			t.Fatalf("%s: clusters end at %d, want %d", name, at, len(pats))
		}
	}
}

func TestBetaLargerBetaFewerClusters(t *testing.T) {
	rng := xrand.New(809)
	pats := driftingPatterns(rng, 25, 25, 5)
	loose := len(BetaCINC(pats, 0.5, nil))
	tight := len(BetaCINC(pats, 0.01, nil))
	if loose > tight {
		t.Errorf("looser beta gave more clusters (%d) than tighter (%d)", loose, tight)
	}
}

func TestClusterBoundaryHelpers(t *testing.T) {
	c := Cluster{Start: 3, End: 7}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i := 0; i < 10; i++ {
		if got, want := c.Contains(i), i >= 3 && i < 7; got != want {
			t.Errorf("Contains(%d) = %v", i, got)
		}
	}
	want := []int{3, 4, 5, 6}
	got := c.Members()
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestPartitionAndCovering(t *testing.T) {
	cs := []Cluster{{Start: 0, End: 2}, {Start: 2, End: 5}, {Start: 5, End: 9}}
	if !Partition(cs, 9) {
		t.Error("valid partition rejected")
	}
	if Partition(cs, 10) {
		t.Error("short partition accepted")
	}
	if Partition([]Cluster{{Start: 0, End: 2}, {Start: 3, End: 5}}, 5) {
		t.Error("gapped partition accepted")
	}
	if Partition(nil, 0) != true {
		t.Error("empty partition of [0,0) rejected")
	}
	for i := 0; i < 9; i++ {
		ci := Covering(cs, i)
		if ci < 0 || !cs[ci].Contains(i) {
			t.Errorf("Covering(%d) = %d", i, ci)
		}
	}
	if Covering(cs, 9) != -1 || Covering(cs, -1) != -1 {
		t.Error("out-of-range index covered")
	}
	if Covering(nil, 0) != -1 {
		t.Error("empty cluster list covered something")
	}
}

func TestAlphaClustersPartition(t *testing.T) {
	rng := xrand.New(41)
	pats := driftingPatterns(rng, 18, 12, 3)
	for _, alpha := range []float64{0, 0.5, 0.9, 1} {
		cs := Alpha(pats, alpha)
		if !Partition(cs, len(pats)) {
			t.Errorf("alpha=%v clusters do not partition", alpha)
		}
	}
}
