// Package core implements the paper's contribution: the four
// algorithms for the LUDEM problem (Definition 3) — BF, INC, CINC and
// CLUDE (§4) — plus the quality-constrained LUDEM-QC variants (§5),
// with the per-phase timing breakdown the evaluation section reports
// (clustering time t_c, Markowitz time t_M, full LU decomposition time
// t_d, Bennett time t_B).
//
// All algorithms stream through the evolving matrix sequence: as soon
// as matrix i's factors are current, the OnFactors callback (if any)
// receives a ready-to-use solver for A_i. This is the intended usage
// pattern — compute the measure series (PageRank, RWR, …) snapshot by
// snapshot — and keeps memory bounded for long sequences.
package core

import (
	"fmt"
	"time"

	"repro/internal/bennett"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/sparse"
)

// Algorithm selects a LUDEM solver.
type Algorithm string

// The four algorithms of paper §4.
const (
	BF    Algorithm = "BF"    // Markowitz + full LU per matrix (baseline)
	INC   Algorithm = "INC"   // one ordering, Bennett across the whole EMS
	CINC  Algorithm = "CINC"  // α-clusters, first-matrix ordering, dynamic Bennett
	CLUDE Algorithm = "CLUDE" // α-clusters, A∪ ordering, USSP static Bennett
)

// Options configures a run.
type Options struct {
	// Alpha is the α-clustering similarity threshold for CINC/CLUDE.
	Alpha float64
	// OnFactors, when non-nil, is invoked once per matrix index with a
	// solver whose factors are current for that matrix. The solver is
	// only valid during the callback (factors are updated in place for
	// the next matrix afterwards).
	OnFactors func(i int, s *lu.Solver)
	// MeasureQuality computes |s̃p(A_i^{O_i})| for every matrix after
	// the run (outside the timed section) so quality-loss can be
	// reported. BF always records it (its orderings come with sizes for
	// free).
	MeasureQuality bool
	// StarSizes optionally supplies precomputed reference sizes
	// |s̃p(A_i*)| to the LUDEM-QC clustering (see StarSizes), so a
	// β-sweep over the same EMS computes them once instead of once per
	// run. Ignored by the plain LUDEM algorithms.
	StarSizes []int
}

// PhaseTimes is the execution-time breakdown of Figure 8(a).
type PhaseTimes struct {
	Clustering time.Duration // t_c: α- or β-clustering
	Ordering   time.Duration // t_M: Markowitz / MinDegree runs
	FullLU     time.Duration // t_d: symbolic + numeric full decompositions
	Bennett    time.Duration // t_B: incremental updates (incl. reorder+delta prep)
}

// Total sums the phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Clustering + p.Ordering + p.FullLU + p.Bennett
}

// Result is the outcome of running a LUDEM algorithm over an EMS.
type Result struct {
	Algorithm Algorithm
	T         int

	// SSPSizes[i] = |s̃p(A_i^{O_i})| when quality measurement is on
	// (always on for BF); nil otherwise.
	SSPSizes []int
	// Clusters are the [start, end) boundaries used (one cluster
	// covering everything for BF — each BF "cluster" is a singleton —
	// and INC).
	Clusters []cluster.Cluster
	// Times is the per-phase breakdown; Wall is the timed total.
	Times PhaseTimes
	Wall  time.Duration

	// Refactorizations counts Bennett failures that fell back to a
	// full decomposition (0 in all paper-like workloads).
	Refactorizations int
	// Bennett accumulates update statistics; DynamicInserts and
	// DynamicScanSteps expose the list-restructuring work of the
	// dynamic container (INC/CINC only).
	Bennett          bennett.Stats
	DynamicInserts   int
	DynamicScanSteps int
	// StructureSizes[c] is the factor-structure size used by cluster c
	// (USSP size for CLUDE, final accreted size for INC/CINC, tight
	// size for BF's per-matrix runs).
	StructureSizes []int
}

// Run executes alg over the EMS.
func Run(ems *graph.EMS, alg Algorithm, opt Options) (*Result, error) {
	switch alg {
	case BF:
		return runBF(ems, opt)
	case INC:
		return runINC(ems, opt)
	case CINC:
		return runClustered(ems, opt, false)
	case CLUDE:
		return runClustered(ems, opt, true)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
}

// patterns extracts the sparsity patterns of the EMS.
func patterns(ems *graph.EMS) []*sparse.Pattern {
	ps := make([]*sparse.Pattern, ems.Len())
	for i, a := range ems.Matrices {
		ps[i] = a.Pattern()
	}
	return ps
}

// runBF decomposes every matrix from scratch under its own Markowitz
// ordering. It is the quality reference (SSPSizes are the |s̃p(A*)| of
// Definition 4) and the speed baseline.
func runBF(ems *graph.EMS, opt Options) (*Result, error) {
	res := &Result{Algorithm: BF, T: ems.Len(), SSPSizes: make([]int, ems.Len())}
	start := time.Now()
	for i, a := range ems.Matrices {
		t0 := time.Now()
		ord := order.Markowitz(a.Pattern())
		res.Times.Ordering += time.Since(t0)
		res.SSPSizes[i] = ord.SSPSize

		t1 := time.Now()
		solver, err := lu.FactorizeOrdered(a, ord.Ordering)
		if err != nil {
			return nil, fmt.Errorf("core: BF matrix %d: %w", i, err)
		}
		res.Times.FullLU += time.Since(t1)
		res.StructureSizes = append(res.StructureSizes, solver.F.Size())
		res.Clusters = append(res.Clusters, cluster.Cluster{Start: i, End: i + 1})
		if opt.OnFactors != nil {
			opt.OnFactors(i, solver)
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}

// runINC applies the Markowitz ordering of A_1 to the whole sequence
// and updates a single dynamic factor structure with Bennett's
// algorithm (paper §4, "Straightly Incremental").
func runINC(ems *graph.EMS, opt Options) (*Result, error) {
	res := &Result{Algorithm: INC, T: ems.Len()}
	start := time.Now()

	t0 := time.Now()
	ord := order.Markowitz(ems.Matrices[0].Pattern())
	res.Times.Ordering += time.Since(t0)

	t1 := time.Now()
	a0 := ems.Matrices[0].Permute(ord.Ordering)
	static := lu.NewStaticFactors(lu.Symbolic(a0.Pattern()))
	if err := static.Factorize(a0); err != nil {
		return nil, fmt.Errorf("core: INC initial decomposition: %w", err)
	}
	dyn := lu.NewDynamicFactors(static)
	res.Times.FullLU += time.Since(t1)

	solver := &lu.Solver{F: dyn, O: ord.Ordering}
	if opt.OnFactors != nil {
		opt.OnFactors(0, solver)
	}

	prev := a0
	for i := 1; i < ems.Len(); i++ {
		t2 := time.Now()
		cur := ems.Matrices[i].Permute(ord.Ordering)
		delta := sparse.Delta(prev, cur)
		err := bennett.UpdateDynamic(dyn, delta, &res.Bennett)
		res.Times.Bennett += time.Since(t2)
		if err != nil {
			// Robustness fallback (never triggered by paper-like
			// workloads): refactorize from scratch in the same order.
			t3 := time.Now()
			st := lu.NewStaticFactors(lu.Symbolic(cur.Pattern()))
			if ferr := st.Factorize(cur); ferr != nil {
				return nil, fmt.Errorf("core: INC matrix %d: update %v; refactorization %w", i, err, ferr)
			}
			dyn = lu.NewDynamicFactors(st)
			solver.F = dyn
			res.Refactorizations++
			res.Times.FullLU += time.Since(t3)
		}
		prev = cur
		if opt.OnFactors != nil {
			opt.OnFactors(i, solver)
		}
	}
	res.Wall = time.Since(start)
	res.DynamicInserts = dyn.Inserts
	res.DynamicScanSteps = dyn.ScanSteps
	res.StructureSizes = []int{dyn.Size()}
	res.Clusters = []cluster.Cluster{{Start: 0, End: ems.Len()}}

	if opt.MeasureQuality {
		res.SSPSizes = measureQuality(ems, func(int) sparse.Ordering { return ord.Ordering })
	}
	return res, nil
}

// runClustered implements CINC (useUnion=false: Algorithm 2 applied per
// α-cluster) and CLUDE (useUnion=true: Algorithm 3 with the USSP static
// structure).
func runClustered(ems *graph.EMS, opt Options, useUnion bool) (*Result, error) {
	alg := CINC
	if useUnion {
		alg = CLUDE
	}
	res := &Result{Algorithm: alg, T: ems.Len()}
	start := time.Now()

	tc := time.Now()
	pats := patterns(ems)
	clusters := cluster.Alpha(pats, opt.Alpha)
	res.Times.Clustering = time.Since(tc)
	res.Clusters = clusters

	orderings := make([]sparse.Ordering, len(clusters))

	for ci, cl := range clusters {
		// --- Ordering for the cluster ---
		t0 := time.Now()
		var ord order.Result
		if useUnion {
			ord = order.Markowitz(cl.Union) // O∪ = O*(A∪), Alg. 3 line 2
		} else {
			ord = order.Markowitz(pats[cl.Start]) // O1 = O*(A1), Alg. 2 line 1
		}
		res.Times.Ordering += time.Since(t0)
		orderings[ci] = ord.Ordering

		// --- Full decomposition of the first cluster member ---
		t1 := time.Now()
		first := ems.Matrices[cl.Start].Permute(ord.Ordering)
		var sym *lu.SymbolicLU
		if useUnion {
			// Symbolic decomposition of A∪^{O∪} gives the USSP; the
			// static structure built from it serves the whole cluster
			// (Alg. 3 lines 3–4).
			sym = lu.Symbolic(cl.Union.Permute(ord.Ordering))
		} else {
			sym = lu.Symbolic(first.Pattern())
		}
		static := lu.NewStaticFactors(sym)
		if err := static.Factorize(first); err != nil {
			return nil, fmt.Errorf("core: %s cluster %d: %w", alg, ci, err)
		}
		var fac lu.Factors = static
		var dyn *lu.DynamicFactors
		if !useUnion {
			dyn = lu.NewDynamicFactors(static)
			fac = dyn
		}
		res.Times.FullLU += time.Since(t1)

		solver := &lu.Solver{F: fac, O: ord.Ordering}
		if opt.OnFactors != nil {
			opt.OnFactors(cl.Start, solver)
		}

		// --- Bennett across the rest of the cluster ---
		prev := first
		for i := cl.Start + 1; i < cl.End; i++ {
			t2 := time.Now()
			cur := ems.Matrices[i].Permute(ord.Ordering)
			delta := sparse.Delta(prev, cur)
			var err error
			if useUnion {
				err = bennett.UpdateStatic(static, delta, &res.Bennett)
			} else {
				err = bennett.UpdateDynamic(dyn, delta, &res.Bennett)
			}
			res.Times.Bennett += time.Since(t2)
			if err != nil {
				t3 := time.Now()
				if ferr := refactorInPlace(&fac, &static, &dyn, cur, useUnion, sym); ferr != nil {
					return nil, fmt.Errorf("core: %s matrix %d: update %v; refactorization %w", alg, i, err, ferr)
				}
				solver.F = fac
				res.Refactorizations++
				res.Times.FullLU += time.Since(t3)
			}
			prev = cur
			if opt.OnFactors != nil {
				opt.OnFactors(i, solver)
			}
		}
		if dyn != nil {
			res.DynamicInserts += dyn.Inserts
			res.DynamicScanSteps += dyn.ScanSteps
			res.StructureSizes = append(res.StructureSizes, dyn.Size())
		} else {
			res.StructureSizes = append(res.StructureSizes, static.Size())
		}
	}
	res.Wall = time.Since(start)

	if opt.MeasureQuality {
		res.SSPSizes = measureQuality(ems, func(i int) sparse.Ordering {
			for ci, cl := range clusters {
				if i >= cl.Start && i < cl.End {
					return orderings[ci]
				}
			}
			panic("core: matrix not covered by clusters")
		})
	}
	return res, nil
}

// refactorInPlace rebuilds factors for cur after a failed incremental
// update, preserving the container style of the algorithm.
func refactorInPlace(fac *lu.Factors, static **lu.StaticFactors, dyn **lu.DynamicFactors, cur *sparse.CSR, useUnion bool, sym *lu.SymbolicLU) error {
	if useUnion {
		// The USSP container still covers cur; refill numerically.
		if err := (*static).Factorize(cur); err != nil {
			return err
		}
		*fac = *static
		return nil
	}
	st := lu.NewStaticFactors(lu.Symbolic(cur.Pattern()))
	if err := st.Factorize(cur); err != nil {
		return err
	}
	*dyn = lu.NewDynamicFactors(st)
	*fac = *dyn
	return nil
}

// measureQuality computes |s̃p(A_i^{O_i})| for every matrix (untimed;
// this is harness bookkeeping, not algorithm work).
func measureQuality(ems *graph.EMS, ordOf func(i int) sparse.Ordering) []int {
	out := make([]int, ems.Len())
	for i, a := range ems.Matrices {
		out[i] = lu.SymbolicSize(a.Pattern(), ordOf(i))
	}
	return out
}

// QualityLoss computes the per-matrix quality-loss series of
// Definition 4 given the reference sizes |s̃p(A_i*)| from a BF run:
// ql_i = (|s̃p(A_i^{O_i})| − |s̃p(A_i*)|) / |s̃p(A_i*)|.
func QualityLoss(sspSizes, starSizes []int) []float64 {
	if len(sspSizes) != len(starSizes) {
		panic("core: quality series length mismatch")
	}
	out := make([]float64, len(sspSizes))
	for i := range out {
		out[i] = float64(sspSizes[i]-starSizes[i]) / float64(starSizes[i])
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
