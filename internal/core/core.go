package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bennett"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
)

// Algorithm selects a LUDEM solver.
type Algorithm string

// The four algorithms of paper §4.
const (
	BF    Algorithm = "BF"    // Markowitz + full LU per matrix (baseline)
	INC   Algorithm = "INC"   // one ordering, Bennett across the whole EMS
	CINC  Algorithm = "CINC"  // α-clusters, first-matrix ordering, dynamic Bennett
	CLUDE Algorithm = "CLUDE" // α-clusters, A∪ ordering, USSP static Bennett
)

// Options configures a run.
type Options struct {
	// Alpha is the α-clustering similarity threshold for CINC/CLUDE.
	Alpha float64
	// Workers bounds the worker pool that factors independent clusters
	// concurrently. Zero (or negative) means runtime.GOMAXPROCS(0);
	// one forces the sequential path. The pool never exceeds the
	// number of clusters. See the package documentation for what
	// Workers > 1 changes (and does not change) about callback
	// ordering and phase times.
	Workers int
	// Context cancels a run in flight: workers observe cancellation
	// between per-snapshot steps and Run returns the context's error.
	// Nil means context.Background() (never cancelled).
	Context context.Context
	// OnFactors, when non-nil, is invoked once per matrix index with a
	// solver whose factors are current for that matrix, strictly in
	// snapshot order i = 0..T-1 regardless of Workers. The solver is
	// only valid during the callback (factors are updated in place for
	// the next matrix afterwards) unless RetainFactors is set.
	// Callbacks never run concurrently with each other.
	OnFactors func(i int, s *lu.Solver)
	// RetainFactors changes the OnFactors contract: each callback
	// receives a deep clone of the solver, valid indefinitely — the
	// engine's in-place update path never touches it. This is the
	// pin-per-snapshot mode the serving layer builds on (clone cost is
	// O(structure size) per snapshot, paid inside the emitting worker,
	// so clones of independent clusters proceed in parallel). Ignored
	// when OnFactors is nil.
	RetainFactors bool
	// MeasureQuality computes |s̃p(A_i^{O_i})| for every matrix after
	// the run (outside the timed section) so quality-loss can be
	// reported. BF always records it (its orderings come with sizes for
	// free).
	MeasureQuality bool
	// StarSizes optionally supplies precomputed reference sizes
	// |s̃p(A_i*)| to the LUDEM-QC clustering (see StarSizes), so a
	// β-sweep over the same EMS computes them once instead of once per
	// run. Ignored by the plain LUDEM algorithms.
	StarSizes []int
}

// PhaseTimes is the execution-time breakdown of Figure 8(a). The
// phases are accumulated per worker and summed, so with Workers > 1
// they measure aggregate CPU time and their total can exceed Wall —
// that surplus is exactly the work the pool overlapped.
type PhaseTimes struct {
	Clustering time.Duration // t_c: α- or β-clustering
	Ordering   time.Duration // t_M: Markowitz / MinDegree runs
	FullLU     time.Duration // t_d: symbolic + numeric full decompositions
	Bennett    time.Duration // t_B: incremental updates (incl. reorder+delta prep)
}

// Total sums the phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Clustering + p.Ordering + p.FullLU + p.Bennett
}

// Result is the outcome of running a LUDEM algorithm over an EMS.
type Result struct {
	Algorithm Algorithm
	T         int

	// SSPSizes[i] = |s̃p(A_i^{O_i})| when quality measurement is on
	// (always on for BF); nil otherwise.
	SSPSizes []int
	// Clusters are the [start, end) boundaries used (one cluster
	// covering everything for BF — each BF "cluster" is a singleton —
	// and INC).
	Clusters []cluster.Cluster
	// Times is the per-phase breakdown; Wall is the timed total.
	Times PhaseTimes
	Wall  time.Duration

	// Refactorizations counts Bennett failures that fell back to a
	// full decomposition (0 in all paper-like workloads).
	Refactorizations int
	// Bennett accumulates update statistics; DynamicInserts and
	// DynamicScanSteps expose the list-restructuring work of the
	// dynamic container (INC/CINC only).
	Bennett          bennett.Stats
	DynamicInserts   int
	DynamicScanSteps int
	// StructureSizes[c] is the factor-structure size used by cluster c
	// (USSP size for CLUDE, final accreted size for INC/CINC, tight
	// size for BF's per-matrix runs).
	StructureSizes []int
}

// Run executes alg over the EMS.
func Run(ems *graph.EMS, alg Algorithm, opt Options) (*Result, error) {
	switch alg {
	case BF:
		return execute(ems, alg, opt, bfPlanner{})
	case INC:
		return execute(ems, alg, opt, incPlanner{})
	case CINC:
		return execute(ems, alg, opt, alphaPlanner{label: "CINC", alpha: opt.Alpha})
	case CLUDE:
		return execute(ems, alg, opt, alphaPlanner{label: "CLUDE", alpha: opt.Alpha, useUnion: true})
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
}

// patterns extracts the sparsity patterns of the EMS.
func patterns(ems *graph.EMS) []*sparse.Pattern {
	ps := make([]*sparse.Pattern, ems.Len())
	for i, a := range ems.Matrices {
		ps[i] = a.Pattern()
	}
	return ps
}

// refactorInPlace rebuilds factors for cur after a failed incremental
// update, preserving the container style of the algorithm.
func refactorInPlace(fac *lu.Factors, static **lu.StaticFactors, dyn **lu.DynamicFactors, cur *sparse.CSR, useUnion bool, sym *lu.SymbolicLU) error {
	if useUnion {
		// The USSP container still covers cur; refill numerically.
		if err := (*static).Factorize(cur); err != nil {
			return err
		}
		*fac = *static
		return nil
	}
	st := lu.NewStaticFactors(lu.Symbolic(cur.Pattern()))
	if err := st.Factorize(cur); err != nil {
		return err
	}
	*dyn = lu.NewDynamicFactors(st)
	*fac = *dyn
	return nil
}

// measureQuality computes |s̃p(A_i^{O_i})| for every matrix (untimed;
// this is harness bookkeeping, not algorithm work).
func measureQuality(ems *graph.EMS, ordOf func(i int) sparse.Ordering) []int {
	out := make([]int, ems.Len())
	for i, a := range ems.Matrices {
		out[i] = lu.SymbolicSize(a.Pattern(), ordOf(i))
	}
	return out
}

// QualityLoss computes the per-matrix quality-loss series of
// Definition 4 given the reference sizes |s̃p(A_i*)| from a BF run:
// ql_i = (|s̃p(A_i^{O_i})| − |s̃p(A_i*)|) / |s̃p(A_i*)|.
func QualityLoss(sspSizes, starSizes []int) []float64 {
	if len(sspSizes) != len(starSizes) {
		panic("core: quality series length mismatch")
	}
	out := make([]float64, len(sspSizes))
	for i := range out {
		out[i] = float64(sspSizes[i]-starSizes[i]) / float64(starSizes[i])
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
