package core

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
)

// This file is the durability face of the streaming engine: ExportState
// captures everything a Stream needs to resume exactly where it was —
// graph, factors, ordering, cluster-tracker state, the previous matrix,
// and every counter — and RestoreStream rebuilds a live Stream from it.
// Restored-then-replayed streams are bit-identical to uninterrupted
// ones (the store package's kill-point property test pins this down),
// which is what makes snapshot + WAL-tail recovery exact rather than
// merely approximate.

// StreamState is the complete serializable state of a Stream at some
// point in its life. All reference-typed fields are either deep copies
// (the factor containers, which the live stream mutates in place) or
// immutable values safe to share (graph snapshot, patterns, matrices,
// orderings), so an exported state stays valid while the source stream
// keeps committing batches.
type StreamState struct {
	Algorithm Algorithm
	Alpha     float64
	Version   uint64
	Seq       uint64

	// Graph is the live edge set at export time.
	Graph *graph.Graph
	// Tracker is the α-membership state (nil for BF/INC).
	Tracker *cluster.TrackerState
	// Ord is the current ordering O = (P, Q).
	Ord sparse.Ordering
	// Static holds the factor values for BF/CLUDE (nil otherwise);
	// Dyn the linked-list container for INC/CINC (nil otherwise).
	Static *lu.StaticFactors
	Dyn    *lu.DynamicFactors
	// Prev is the current matrix in the current ordering — the baseline
	// the next batch's Bennett delta is computed against. It is stored
	// explicitly (rather than re-derived from Graph) so even the rare
	// state where a failed strategy step left the graph ahead of the
	// factors round-trips exactly.
	Prev *sparse.CSR
	// StructUnion is the union pattern the CLUDE USSP container was
	// built from (nil for other strategies).
	StructUnion *sparse.Pattern

	Stats                        StreamStats
	RetiredInserts, RetiredScans int
}

// ExportState deep-copies the stream's resumable state under the read
// lock. The factor containers are cloned (they are updated in place by
// the next batch); everything else is immutable and shared. Exporting
// costs one factor clone — the same price as a CheckpointEvery pin.
func (s *Stream) ExportState() (*StreamState, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.solver == nil {
		return nil, errors.New("core: stream has no published state to export")
	}
	st := &StreamState{
		Algorithm:      s.cfg.Algorithm,
		Alpha:          s.cfg.Alpha,
		Version:        s.version,
		Seq:            s.seq,
		Graph:          s.builder.Graph(),
		Ord:            s.ord,
		Prev:           s.prev,
		StructUnion:    s.structUnion,
		Stats:          s.stats,
		RetiredInserts: s.retiredIns,
		RetiredScans:   s.retiredScan,
	}
	if s.tracker != nil {
		st.Tracker = s.tracker.State()
	}
	if s.dyn != nil {
		st.Dyn = s.dyn.Clone().(*lu.DynamicFactors)
	} else if s.static != nil {
		st.Static = s.static.Clone().(*lu.StaticFactors)
	}
	return st, nil
}

// RestoreStream rebuilds a live stream from an exported state. The
// config must agree with the state on algorithm and (for CINC/CLUDE)
// alpha — factors maintained under one strategy cannot be resumed under
// another — and must carry the same Derive the original stream used:
// determinism of the deriver is what makes WAL replay exact. Initial is
// ignored (the state's graph is the initial state). OnPublish fires
// once for the restored version before RestoreStream returns, mirroring
// NewStream's version-0 publish.
func RestoreStream(cfg StreamConfig, st *StreamState) (*Stream, error) {
	if cfg.Derive == nil {
		return nil, errors.New("core: RestoreStream needs Derive")
	}
	if cfg.Algorithm != st.Algorithm {
		return nil, fmt.Errorf("core: restoring %s state under %s", st.Algorithm, cfg.Algorithm)
	}
	needsTracker := st.Algorithm == CINC || st.Algorithm == CLUDE
	if needsTracker && cfg.Alpha != st.Alpha {
		return nil, fmt.Errorf("core: restoring alpha=%v state under alpha=%v", st.Alpha, cfg.Alpha)
	}
	if st.Graph == nil {
		return nil, errors.New("core: stream state has no graph")
	}
	n := st.Graph.N()
	if !st.Ord.Valid() || st.Ord.N() != n {
		return nil, fmt.Errorf("core: stream state ordering invalid for n=%d", n)
	}
	if st.Prev == nil || st.Prev.N() != n {
		return nil, errors.New("core: stream state previous matrix missing or mis-sized")
	}
	s := &Stream{
		cfg:         cfg,
		version:     st.Version,
		seq:         st.Seq,
		builder:     graph.NewBuilderFrom(st.Graph),
		ord:         st.Ord,
		colInv:      st.Ord.Col.Inverse(),
		prev:        st.Prev,
		structUnion: st.StructUnion,
		stats:       st.Stats,
		retiredIns:  st.RetiredInserts,
		retiredScan: st.RetiredScans,
	}
	if needsTracker {
		if st.Tracker == nil {
			return nil, fmt.Errorf("core: %s state has no tracker", st.Algorithm)
		}
		tr, err := cluster.RestoreTracker(st.Tracker)
		if err != nil {
			return nil, err
		}
		s.tracker = tr
	}
	switch st.Algorithm {
	case INC, CINC:
		if st.Dyn == nil {
			return nil, fmt.Errorf("core: %s state has no dynamic factors", st.Algorithm)
		}
		if st.Dyn.Dim() != n {
			return nil, fmt.Errorf("core: dynamic factors dimension %d for n=%d", st.Dyn.Dim(), n)
		}
		s.dyn = st.Dyn
		s.solver = &lu.Solver{F: s.dyn, O: s.ord}
	case BF, CLUDE:
		if st.Static == nil {
			return nil, fmt.Errorf("core: %s state has no static factors", st.Algorithm)
		}
		if st.Static.Dim() != n {
			return nil, fmt.Errorf("core: static factors dimension %d for n=%d", st.Static.Dim(), n)
		}
		if st.Algorithm == CLUDE && st.StructUnion == nil {
			return nil, errors.New("core: CLUDE state has no structure union")
		}
		s.static = st.Static
		s.solver = &lu.Solver{F: s.static, O: s.ord}
	default:
		return nil, fmt.Errorf("core: unknown streaming algorithm %q", st.Algorithm)
	}
	s.stats.Version = s.version
	// The restored version's predecessor delta is unknowable in this
	// process, so its history record is structural: delta chains restart
	// at the snapshot and WAL-tail replay re-records everything after it.
	s.stepStructural = true
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()
	return s, nil
}
