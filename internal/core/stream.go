package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bennett"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/sparse"
)

// This file is the streaming execution engine: where Run consumes a
// fully pre-materialized matrix sequence, Stream consumes a live feed
// of edge-delta batches and keeps LU factors current as the graph
// evolves — the deployment the paper actually motivates. Each applied
// batch produces one factor *version*; versions are hot-published by
// reference (freeze-on-publish under a reader/writer lock) instead of
// deep-cloned, so the update loop never pays an O(nnz) copy per batch.
//
//	edge events ──▶ Batcher ──▶ Stream.Apply ──▶ strategy step ──▶ publish
//	                (grouping)   (graph.Builder,   (Bennett update      (version++,
//	                              Deriver)          or cluster restart)  live view)
//
// The four strategies are re-expressed online:
//
//   - BF re-orders and re-factorizes every version (the baseline).
//   - INC keeps one dynamic container for the whole stream, ordered by
//     the initial matrix, advanced by Bennett updates.
//   - CINC tracks α-cluster membership incrementally (cluster.Tracker);
//     while a batch's matrix extends the cluster the dynamic container
//     absorbs the delta, otherwise a fresh cluster opens.
//   - CLUDE additionally maintains a static USSP container built from
//     the *running* cluster union. A member whose pattern stays inside
//     the union at the last (re)build updates in place (Theorem 1
//     guarantees coverage); a member that grows the union triggers a
//     structure rebuild from the grown union (counted in
//     StreamStats.StructRebuilds). This is the online face of CLUDE:
//     the offline variant orders by the retrospective union of a closed
//     cluster, which a live engine cannot know.
//
// The offline sequence pipeline is re-expressed on top: Replay diffs
// consecutive snapshots of an EGS into delta batches and feeds them
// through a Stream, preserving the OnFactors emission order contract.

// ErrStreamClosed reports an Apply on a closed stream.
var ErrStreamClosed = errors.New("core: stream closed")

// ErrReplayGap reports a ReplayBatch whose sequence number does not
// directly follow the stream's: the log is missing records the
// snapshot does not cover, which torn-tail truncation can never cause.
var ErrReplayGap = errors.New("core: replay gap")

// StreamConfig configures a live streaming engine.
type StreamConfig struct {
	// Algorithm is the maintenance strategy (BF, INC, CINC or CLUDE).
	Algorithm Algorithm
	// Alpha is the α-clustering threshold for CINC/CLUDE.
	Alpha float64
	// Initial is the version-0 graph the stream starts from (required;
	// use an edgeless graph to start cold).
	Initial *graph.Graph
	// Derive turns each graph state into the matrix whose factors the
	// stream maintains (required).
	Derive graph.Deriver
	// OnPublish, when non-nil, is invoked after every version is
	// committed (including version 0 during NewStream) while the
	// stream's update lock is held: the solver is frozen for the
	// duration of the callback and updated in place afterwards, exactly
	// like Options.OnFactors without RetainFactors. Callers that retain
	// must Clone; callers that serve live traffic should instead read
	// through View and leave this callback for notifications and
	// checkpointing. The callback must not call back into the Stream.
	OnPublish func(version uint64, s *lu.Solver)
	// OnHistory, when non-nil, receives each published version's history
	// record: the validated Bennett rank-1 term sequence that turned the
	// previous version's factors into this one's, or a structural marker
	// when the step rebuilt or refactorized (ordering/structure/values
	// changed outside the rank-1 algebra, so no replayable delta exists;
	// version 0 and every cluster restart are structural). It fires under
	// the write lock immediately before OnPublish with the same frozen
	// solver. The record and its term slices are immutable — callers may
	// retain them without copying. This is the feed of the
	// delta-compressed history layers (bennett.HistoryLog in serve, the
	// history file in store).
	OnHistory func(s *lu.Solver, rec bennett.VersionRecord)
	// LogBatch, when non-nil, is the write-ahead hook: it is invoked
	// for every validated batch before any state mutates, with the
	// batch's sequence number (1-based, monotone across the stream's
	// life, counting every validated batch whether or not its
	// strategy step later succeeds). An error aborts the batch with
	// the stream untouched — the durability contract of the store
	// layer: no state change is ever visible that is not logged first.
	// ReplayBatch skips this hook (its batches are already durable).
	LogBatch func(seq uint64, events []graph.EdgeEvent) error
	// OnStage, when non-nil, receives the duration of each ingest
	// pipeline stage per committed batch: "validate" (batch
	// validation), "log" (the LogBatch hook, observed only when it
	// runs), "apply" (graph mutation + derive + strategy step) and
	// "publish" (version bump + OnPublish). It is called under the
	// stream's write lock and must be fast and non-blocking — its
	// intended use is feeding metrics histograms. The hook keeps this
	// package import-clean of any metrics implementation.
	OnStage func(stage string, d time.Duration)
	// OnBatch, when non-nil, receives one BatchTrace per consumed
	// batch — successes after publish, failures on their error path —
	// so a tracing layer can reconstruct the batch as a span tree
	// without this package importing a tracer. Like OnStage it is
	// called under the stream's write lock and must be fast; unlike
	// OnStage it fires exactly once per Apply/ReplayBatch call that
	// got past the closed check, with the error included.
	OnBatch func(bt BatchTrace)
}

// StageSample is one named, timed ingest stage inside a BatchTrace.
// Stages are contiguous: each starts where the previous ended.
type StageSample struct {
	Name string
	D    time.Duration
}

// BatchTrace describes one consumed ingest batch for the OnBatch
// hook: what arrived, what it did, how long each pipeline stage took,
// and how it ended. A zero-Name stage slot means the pipeline never
// reached that stage (an earlier stage failed).
type BatchTrace struct {
	// Seq is the stream's WAL sequence after the batch: the batch's
	// own sequence number when it validated (validation failures do
	// not consume one).
	Seq uint64
	// Version is the published version; 0 when the batch failed.
	Version uint64
	// Events is the batch size; Applied how many events changed the
	// edge set.
	Events  int
	Applied int
	// Structural marks a batch whose strategy step rebuilt or
	// refactorized instead of a rank-1 update.
	Structural bool
	// Start is when the batch entered the pipeline.
	Start time.Time
	// Err is the batch's outcome.
	Err error
	// Stages holds validate / log / apply / publish, in order.
	Stages [4]StageSample
}

// StreamStats is a point-in-time snapshot of a stream's counters.
type StreamStats struct {
	Version       uint64 `json:"version"`
	Batches       int    `json:"batches"`
	Events        int    `json:"events"`
	EventsApplied int    `json:"events_applied"` // events that changed the edge set
	Clusters      int    `json:"clusters"`       // clusters opened (BF: one per version)
	// StructRebuilds counts CLUDE structure rebuilds forced by cluster
	// members growing the running union past the current USSP.
	StructRebuilds int `json:"struct_rebuilds"`
	// Refactorizations counts numerical fallbacks (failed Bennett
	// updates answered by a full refactorization in the same ordering).
	Refactorizations int `json:"refactorizations"`

	Bennett          bennett.Stats `json:"-"`
	DynamicInserts   int           `json:"dynamic_inserts"`
	DynamicScanSteps int           `json:"dynamic_scan_steps"`
}

// Stream maintains LU factors of a deriver's matrix over a live edge
// stream. All methods are safe for concurrent use: Apply serializes
// writers, View/Version/Stats take the read side, so a serving layer
// reads the latest factors lock-cheap while batches commit between
// queries.
type Stream struct {
	cfg StreamConfig

	mu      sync.RWMutex
	closed  bool
	version uint64
	seq     uint64 // validated batches consumed (the WAL sequence number)
	builder *graph.Builder
	tracker *cluster.Tracker // CINC/CLUDE membership

	ord         sparse.Ordering
	colInv      sparse.Perm
	static      *lu.StaticFactors
	dyn         *lu.DynamicFactors // INC/CINC container; nil for BF/CLUDE
	solver      *lu.Solver
	prev        *sparse.CSR     // current matrix in the current ordering
	structUnion *sparse.Pattern // CLUDE: union the current USSP was built from

	luWS  lu.Workspace
	benWS bennett.Workspace

	// stepTerms/stepStructural describe how the factors reached the
	// version about to be published: the split rank-1 terms of a
	// successful Bennett update, or a structural marker for every
	// rebuild/refactorization path. publishLocked turns them into the
	// OnHistory record.
	stepTerms      []bennett.Rank1Term
	stepStructural bool

	stats                   StreamStats
	retiredIns, retiredScan int // counters of retired dynamic containers
}

// NewStream factors the initial graph (version 0) and returns a ready
// stream. Version 0 is published before NewStream returns.
func NewStream(cfg StreamConfig) (*Stream, error) {
	switch cfg.Algorithm {
	case BF, INC, CINC, CLUDE:
	default:
		return nil, fmt.Errorf("core: unknown streaming algorithm %q", cfg.Algorithm)
	}
	if cfg.Initial == nil || cfg.Derive == nil {
		return nil, errors.New("core: StreamConfig needs Initial and Derive")
	}
	s := &Stream{cfg: cfg, builder: graph.NewBuilderFrom(cfg.Initial)}
	if cfg.Algorithm == CINC || cfg.Algorithm == CLUDE {
		if cfg.Alpha < 0 || cfg.Alpha > 1 {
			return nil, fmt.Errorf("core: alpha %v outside [0,1]", cfg.Alpha)
		}
		s.tracker = cluster.NewTracker(cfg.Alpha)
	}
	a := cfg.Derive(cfg.Initial)
	if s.tracker != nil {
		s.tracker.Admit(a.Pattern())
	}
	s.stats.Clusters = 1
	if err := s.rebuild(a, a.Pattern()); err != nil {
		return nil, fmt.Errorf("core: %s initial factorization: %w", cfg.Algorithm, err)
	}
	s.publishLocked()
	return s, nil
}

// Apply commits one delta batch: the events advance the live graph, the
// strategy brings the factors to the new state, and the result is
// published as the next version. A failed batch (malformed events or an
// unrecoverable factorization error) leaves the version unchanged.
// Empty batches are legal and publish a new version over an unchanged
// matrix. Apply blocks while queries hold the read side (View) — that
// is the engine's natural backpressure.
func (s *Stream) Apply(events []graph.EdgeEvent) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStreamClosed
	}
	return s.applyLocked(events, true)
}

// ReplayBatch re-applies a batch previously handed to LogBatch — the
// recovery path. It behaves exactly like Apply except that the LogBatch
// hook is skipped (the batch is already durable) and the batch must
// land at the stream's next sequence number: batches at or below the
// current sequence are silently skipped (the snapshot already covers
// them), a gap is an error. Replaying the logged batch sequence into a
// restored stream therefore reproduces the original run's state
// transitions bit for bit, including deterministic step failures (which
// consume the sequence number without publishing, exactly as they did
// live).
func (s *Stream) ReplayBatch(seq uint64, events []graph.EdgeEvent) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStreamClosed
	}
	if seq <= s.seq {
		return s.version, nil
	}
	if seq != s.seq+1 {
		return 0, fmt.Errorf("%w: record seq %d, stream at %d", ErrReplayGap, seq, s.seq)
	}
	return s.applyLocked(events, false)
}

// Seq returns the number of validated batches the stream has consumed
// (the sequence number of the last logged batch).
func (s *Stream) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// applyLocked is the shared commit path of Apply and ReplayBatch.
// Callers hold the write lock. Stage timers run only when an OnStage
// hook is installed, so the unobserved pipeline pays no clock reads.
func (s *Stream) applyLocked(events []graph.EdgeEvent, logIt bool) (v uint64, err error) {
	var t0 time.Time
	traced := s.cfg.OnStage != nil
	batched := s.cfg.OnBatch != nil
	var bt BatchTrace
	nstage := 0
	stage := func(name string) {
		if !traced && !batched {
			return
		}
		now := time.Now()
		if traced {
			s.cfg.OnStage(name, now.Sub(t0))
		}
		if batched && nstage < len(bt.Stages) {
			bt.Stages[nstage] = StageSample{Name: name, D: now.Sub(t0)}
			nstage++
		}
		t0 = now
	}
	if traced || batched {
		t0 = time.Now()
	}
	if batched {
		bt.Start = t0
		bt.Events = len(events)
		// Emitted on every exit — error paths included — so the hook
		// sees exactly one BatchTrace per consumed batch.
		defer func() {
			bt.Seq = s.seq
			bt.Err = err
			if err == nil {
				bt.Version = s.version
			}
			s.cfg.OnBatch(bt)
		}()
	}
	if err := s.builder.ValidateBatch(events); err != nil {
		return 0, err
	}
	stage("validate")
	if logIt && s.cfg.LogBatch != nil {
		if err := s.cfg.LogBatch(s.seq+1, events); err != nil {
			return 0, fmt.Errorf("core: %s batch log: %w", s.cfg.Algorithm, err)
		}
		stage("log")
	}
	s.seq++
	applied, _ := s.builder.ApplyBatch(events) // already validated
	s.stats.Batches++
	s.stats.Events += len(events)
	s.stats.EventsApplied += applied
	cur := s.cfg.Derive(s.builder.Graph())
	if err := s.step(cur); err != nil {
		return 0, err
	}
	stage("apply")
	bt.Applied, bt.Structural = applied, s.stepStructural
	s.version++
	s.stats.Version = s.version
	s.publishLocked()
	stage("publish")
	return s.version, nil
}

// step routes the new matrix through the configured strategy.
func (s *Stream) step(cur *sparse.CSR) error {
	pat := cur.Pattern()
	switch s.cfg.Algorithm {
	case BF:
		s.stats.Clusters++
		return s.rebuild(cur, pat)
	case INC:
		return s.update(cur)
	case CINC:
		if s.tracker.Admit(pat) {
			return s.update(cur)
		}
		s.stats.Clusters++
		return s.rebuild(cur, pat)
	case CLUDE:
		if !s.tracker.Admit(pat) {
			s.stats.Clusters++
			return s.rebuild(cur, s.tracker.Union())
		}
		if !pat.Subset(s.structUnion) {
			// The member grew the cluster union past the USSP the static
			// container was built from: re-derive the ordering from the
			// grown union and refactorize into the larger structure.
			s.stats.StructRebuilds++
			return s.rebuild(cur, s.tracker.Union())
		}
		return s.update(cur)
	}
	panic("core: unreachable")
}

// rebuild opens fresh factors for cur: ordering from pat (cur's own
// pattern, or the running cluster union for CLUDE), symbolic + full
// numeric decomposition, and a fresh Solver (the old one stays valid
// for retained clones but is never mutated again).
func (s *Stream) rebuild(cur *sparse.CSR, pat *sparse.Pattern) error {
	s.stepStructural, s.stepTerms = true, nil
	r := order.Markowitz(pat)
	s.ord = r.Ordering
	s.colInv = s.ord.Col.Inverse()
	first := cur.PermuteInv(s.ord, s.colInv)
	var sym *lu.SymbolicLU
	if s.cfg.Algorithm == CLUDE {
		sym = lu.Symbolic(pat.Permute(s.ord))
		s.structUnion = pat
	} else {
		sym = lu.Symbolic(first.Pattern())
	}
	s.static = lu.NewStaticFactors(sym)
	if err := s.static.FactorizeWith(first, &s.luWS); err != nil {
		return fmt.Errorf("core: %s version %d: %w", s.cfg.Algorithm, s.version+1, err)
	}
	s.retireDyn()
	var fac lu.Factors = s.static
	if s.cfg.Algorithm == INC || s.cfg.Algorithm == CINC {
		s.dyn = lu.NewDynamicFactors(s.static)
		fac = s.dyn
	}
	s.solver = &lu.Solver{F: fac, O: s.ord}
	s.prev = first
	return nil
}

// update advances the current container by the Bennett delta from the
// previous matrix, falling back to a full refactorization in the same
// ordering when the update fails numerically (mirroring the offline
// engine's refactorInPlace).
func (s *Stream) update(cur *sparse.CSR) error {
	curP := cur.PermuteInv(s.ord, s.colInv)
	delta := sparse.Delta(s.prev, curP)
	var err error
	if s.dyn != nil {
		err = s.benWS.UpdateDynamic(s.dyn, delta, &s.stats.Bennett)
	} else {
		err = s.benWS.UpdateStatic(s.static, delta, &s.stats.Bennett)
	}
	s.stepStructural, s.stepTerms = false, nil
	if err == nil {
		s.stepTerms = bennett.SplitTerms(delta)
	} else {
		// Numerical fallback: the published values come from a full
		// refactorization, not the rank-1 algebra — no replayable delta.
		s.stepStructural = true
		s.stats.Refactorizations++
		if s.dyn == nil {
			// The USSP still covers curP; refill the same container.
			if ferr := s.static.FactorizeWith(curP, &s.luWS); ferr != nil {
				return fmt.Errorf("core: %s version %d: update %v; refactorization %w", s.cfg.Algorithm, s.version+1, err, ferr)
			}
		} else {
			st := lu.NewStaticFactors(lu.Symbolic(curP.Pattern()))
			if ferr := st.FactorizeWith(curP, &s.luWS); ferr != nil {
				return fmt.Errorf("core: %s version %d: update %v; refactorization %w", s.cfg.Algorithm, s.version+1, err, ferr)
			}
			s.retireDyn()
			s.dyn = lu.NewDynamicFactors(st)
			// The factor container changed identity, so the sparse solve
			// path's per-solver caches must not survive: fresh Solver.
			s.solver = &lu.Solver{F: s.dyn, O: s.ord}
		}
	}
	s.prev = curP
	return nil
}

// retireDyn folds a replaced dynamic container's restructuring counters
// into the stream totals.
func (s *Stream) retireDyn() {
	if s.dyn != nil {
		s.retiredIns += s.dyn.Inserts
		s.retiredScan += s.dyn.ScanSteps
		s.dyn = nil
	}
}

// publishLocked fires OnHistory and OnPublish for the current version.
// Callers hold the write lock, so the solver is frozen for the
// callbacks' duration.
func (s *Stream) publishLocked() {
	if s.cfg.OnHistory != nil {
		s.cfg.OnHistory(s.solver, bennett.VersionRecord{
			Version:    s.version,
			Structural: s.stepStructural,
			Terms:      s.stepTerms,
		})
	}
	if s.cfg.OnPublish != nil {
		s.cfg.OnPublish(s.version, s.solver)
	}
}

// View runs fn with the latest published version and its solver while
// holding the stream's read lock: the factors cannot advance while fn
// runs, so solves inside fn read a frozen, consistent state with zero
// copying. fn must not retain the solver past its return (Clone to
// retain) and must not call back into the stream. It returns false
// (without calling fn) only when the stream has no published state.
// This is the hot-publish path the serving layer attaches to.
func (s *Stream) View(fn func(version uint64, sv *lu.Solver)) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.solver == nil {
		return false
	}
	fn(s.version, s.solver)
	return true
}

// GraphSnapshot returns the latest published version together with an
// immutable snapshot of the graph at that version (Builder.Graph
// materializes a fresh copy). Both are read under the same lock, so
// they are mutually consistent; callers may retain the graph
// indefinitely (graph-backed measures key cached answers by the
// returned version).
func (s *Stream) GraphSnapshot() (uint64, *graph.Graph) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version, s.builder.Graph()
}

// Version returns the latest published version.
func (s *Stream) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// N returns the vertex count of the streamed graph.
func (s *Stream) N() int { return s.builder.N() }

// Stats returns a snapshot of the stream's counters.
func (s *Stream) Stats() StreamStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.DynamicInserts = s.retiredIns
	st.DynamicScanSteps = s.retiredScan
	if s.dyn != nil {
		st.DynamicInserts += s.dyn.Inserts
		st.DynamicScanSteps += s.dyn.ScanSteps
	}
	return st
}

// Close marks the stream closed: further Apply calls fail with
// ErrStreamClosed, while View keeps serving the last published version
// (a drained server can keep answering queries after ingestion stops).
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Batcher groups a live event feed into versioned batches: events
// accumulate until the batch size cap or the linger delay is reached,
// then commit through Stream.Apply as one batch. One Batcher serializes
// its feed; concurrent Send calls are safe.
type Batcher struct {
	s     *Stream
	max   int
	delay time.Duration

	mu      sync.Mutex
	pending []graph.EdgeEvent
	timer   *time.Timer
	closed  bool
	err     error // first deferred (timer-flush) error, returned by the next call
}

// NewBatcher returns a batcher committing to s after maxEvents pending
// events (<= 0 means 256) or maxDelay of lingering (<= 0 disables the
// timer: flushes happen only on size or explicitly).
func (s *Stream) NewBatcher(maxEvents int, maxDelay time.Duration) *Batcher {
	if maxEvents <= 0 {
		maxEvents = 256
	}
	return &Batcher{s: s, max: maxEvents, delay: maxDelay}
}

// Send enqueues events, committing inline when the batch size cap is
// reached. The returned error is the inline commit's (or a deferred
// timer-flush error from an earlier batch, surfaced here).
func (b *Batcher) Send(events ...graph.EdgeEvent) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrStreamClosed
	}
	if err := b.takeErr(); err != nil {
		return err
	}
	b.pending = append(b.pending, events...)
	if len(b.pending) >= b.max {
		return b.flushLocked()
	}
	if b.timer == nil && b.delay > 0 && len(b.pending) > 0 {
		b.timer = time.AfterFunc(b.delay, b.timerFlush)
	}
	return nil
}

// Flush commits any pending events immediately and returns the stream's
// resulting version.
func (b *Batcher) Flush() (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return b.s.Version(), ErrStreamClosed
	}
	err := b.takeErr()
	if ferr := b.flushLocked(); err == nil {
		err = ferr
	}
	return b.s.Version(), err
}

// Pending returns the number of events waiting for the next commit.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// Close drains pending events into one final batch and stops the
// batcher; further Send/Flush calls fail with ErrStreamClosed. This is
// the ingest-queue half of a graceful shutdown.
func (b *Batcher) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	err := b.takeErr()
	if ferr := b.flushLocked(); err == nil {
		err = ferr
	}
	b.closed = true
	return err
}

// takeErr returns and clears the deferred timer-flush error.
func (b *Batcher) takeErr() error {
	err := b.err
	b.err = nil
	return err
}

// timerFlush is the linger-delay commit.
func (b *Batcher) timerFlush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if err := b.flushLocked(); err != nil && b.err == nil {
		b.err = err
	}
}

// flushLocked commits the pending batch. Callers hold b.mu; the commit
// itself blocks on the stream's write lock, which is the backpressure
// path from in-flight queries to the feed.
func (b *Batcher) flushLocked() error {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.pending) == 0 {
		return nil
	}
	evs := b.pending
	b.pending = nil
	_, err := b.s.Apply(evs)
	return err
}

// ReplayOptions configures Replay, mirroring the Options fields that
// make sense for the sequential streaming engine.
type ReplayOptions struct {
	// Alpha is the α-clustering threshold for CINC/CLUDE.
	Alpha float64
	// OnFactors receives every version in order, i = 0..T-1, with the
	// same validity contract as Options.OnFactors.
	OnFactors func(i int, s *lu.Solver)
	// RetainFactors hands OnFactors a deep clone, valid indefinitely.
	RetainFactors bool
}

// Replay re-expresses the offline sequence pipeline over the streaming
// engine: snapshot 0 seeds a Stream and every consecutive snapshot pair
// is diffed into one delta batch, so a pre-materialized EGS and a live
// feed of the same deltas drive the engine through the identical code
// path (the bit-for-bit equivalence property stream_test pins down).
// OnFactors fires strictly in snapshot order.
func Replay(egs *graph.EGS, derive graph.Deriver, alg Algorithm, opt ReplayOptions) (StreamStats, error) {
	cfg := StreamConfig{Algorithm: alg, Alpha: opt.Alpha, Initial: egs.Snapshots[0], Derive: derive}
	if opt.OnFactors != nil {
		cfg.OnPublish = func(v uint64, sv *lu.Solver) {
			if opt.RetainFactors {
				sv = sv.Clone()
			}
			opt.OnFactors(int(v), sv)
		}
	}
	st, err := NewStream(cfg)
	if err != nil {
		return StreamStats{}, err
	}
	defer st.Close()
	for t := 1; t < egs.Len(); t++ {
		if _, err := st.Apply(graph.Diff(egs.Snapshots[t-1], egs.Snapshots[t])); err != nil {
			return st.Stats(), fmt.Errorf("core: replay snapshot %d: %w", t, err)
		}
	}
	return st.Stats(), nil
}
