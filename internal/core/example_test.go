package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
)

// ExampleRun solves a small evolving matrix sequence with CLUDE: a
// 4-vertex chain whose middle coupling drifts across three snapshots.
// The OnFactors callback receives ready factors for every snapshot in
// order — here it solves A_i·x = b and checks the residual — and the
// engine may use any worker count without changing that contract.
func ExampleRun() {
	// Three diagonally dominant snapshots sharing one sparsity
	// pattern; only the (1,2)/(2,1) coupling changes.
	snapshot := func(w float64) *sparse.CSR {
		c := sparse.NewCOO(4)
		for i := 0; i < 4; i++ {
			c.Add(i, i, 4)
		}
		c.Add(0, 1, -1)
		c.Add(1, 0, -1)
		c.Add(1, 2, -w)
		c.Add(2, 1, -w)
		c.Add(2, 3, -1)
		c.Add(3, 2, -1)
		return c.ToCSR()
	}
	ems := &graph.EMS{Matrices: []*sparse.CSR{snapshot(1.0), snapshot(1.2), snapshot(1.4)}}

	b := []float64{1, 0, 0, 0}
	res, err := core.Run(ems, core.CLUDE, core.Options{
		Alpha:   0.9, // identical patterns cluster together
		Workers: 2,   // callbacks still fire in snapshot order
		OnFactors: func(i int, s *lu.Solver) {
			x := s.Solve(b)
			r := ems.Matrices[i].MulVec(x)
			fmt.Printf("snapshot %d: residual below 1e-10: %v\n", i, sparse.NormInfDiff(r, b) < 1e-10)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters: %d, full decompositions: %d, rank-1 updates: %d\n",
		len(res.Clusters), len(res.Clusters), res.Bennett.Rank1Updates)
	// Output:
	// snapshot 0: residual below 1e-10: true
	// snapshot 1: residual below 1e-10: true
	// snapshot 2: residual below 1e-10: true
	// clusters: 1, full decompositions: 1, rank-1 updates: 4
}
