package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/order"
)

// RunQC executes the LUDEM-QC variants of §5 on a symmetric EMS: alg
// must be CINC or CLUDE, and beta is the quality requirement of
// Definition 5 (every matrix's ordering must satisfy
// ql(O_i, A_i) ≤ β, with ql measured against the fast symmetric
// |s̃p(A*)| reference).
//
// The β-clustering pass necessarily interleaves clustering with
// MinDegree ordering runs (Algorithms 4–5), so its full cost is
// reported under Times.Clustering; Times.Ordering stays zero. Workers,
// Context and OnFactors behave exactly as in Run (see the package
// documentation): β-clusters are factored concurrently and callbacks
// still fire in snapshot order.
func RunQC(ems *graph.EMS, alg Algorithm, beta float64, opt Options) (*Result, error) {
	if alg != CINC && alg != CLUDE {
		return nil, fmt.Errorf("core: RunQC supports CINC and CLUDE, not %q", alg)
	}
	for i, a := range ems.Matrices {
		if !a.IsSymmetric(1e-12) {
			return nil, fmt.Errorf("core: RunQC requires symmetric matrices (matrix %d is not)", i)
		}
	}
	return execute(ems, alg, opt, betaPlanner{
		label:    string(alg) + "-QC",
		beta:     beta,
		useUnion: alg == CLUDE,
		star:     opt.StarSizes,
	})
}

// StarSizes computes the reference |s̃p(A_i*)| series. For general
// matrices it runs Markowitz per matrix (as BF does); symmetric EMSes
// may use the cheaper MinDegree by passing symmetric=true. These are
// the denominators of every quality-loss figure.
func StarSizes(ems *graph.EMS, symmetric bool) []int {
	out := make([]int, ems.Len())
	for i, a := range ems.Matrices {
		if symmetric {
			out[i] = cluster.MinDegreeStar(i, a.Pattern())
		} else {
			out[i] = order.Markowitz(a.Pattern()).SSPSize
		}
	}
	return out
}
