package core

import (
	"fmt"
	"time"

	"repro/internal/bennett"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/sparse"
)

// RunQC executes the LUDEM-QC variants of §5 on a symmetric EMS: alg
// must be CINC or CLUDE, and beta is the quality requirement of
// Definition 5 (every matrix's ordering must satisfy
// ql(O_i, A_i) ≤ β, with ql measured against the fast symmetric
// |s̃p(A*)| reference).
//
// The β-clustering pass necessarily interleaves clustering with
// MinDegree ordering runs (Algorithms 4–5), so its full cost is
// reported under Times.Clustering; Times.Ordering stays zero.
func RunQC(ems *graph.EMS, alg Algorithm, beta float64, opt Options) (*Result, error) {
	if alg != CINC && alg != CLUDE {
		return nil, fmt.Errorf("core: RunQC supports CINC and CLUDE, not %q", alg)
	}
	for i, a := range ems.Matrices {
		if !a.IsSymmetric(1e-12) {
			return nil, fmt.Errorf("core: RunQC requires symmetric matrices (matrix %d is not)", i)
		}
	}
	useUnion := alg == CLUDE
	res := &Result{Algorithm: alg, T: ems.Len()}
	start := time.Now()

	tc := time.Now()
	pats := patterns(ems)
	var star func(i int, p *sparse.Pattern) int
	if opt.StarSizes != nil {
		star = cluster.StarTable(opt.StarSizes)
	}
	var qcs []cluster.QCResult
	if useUnion {
		qcs = cluster.BetaCLUDE(pats, beta, star)
	} else {
		qcs = cluster.BetaCINC(pats, beta, star)
	}
	res.Times.Clustering = time.Since(tc)

	for ci, qc := range qcs {
		cl := qc.Cluster
		res.Clusters = append(res.Clusters, cl)

		t1 := time.Now()
		first := ems.Matrices[cl.Start].Permute(qc.Ordering)
		var sym *lu.SymbolicLU
		if useUnion {
			sym = lu.Symbolic(cl.Union.Permute(qc.Ordering))
		} else {
			sym = lu.Symbolic(first.Pattern())
		}
		static := lu.NewStaticFactors(sym)
		if err := static.Factorize(first); err != nil {
			return nil, fmt.Errorf("core: %s-QC cluster %d: %w", alg, ci, err)
		}
		var fac lu.Factors = static
		var dyn *lu.DynamicFactors
		if !useUnion {
			dyn = lu.NewDynamicFactors(static)
			fac = dyn
		}
		res.Times.FullLU += time.Since(t1)

		solver := &lu.Solver{F: fac, O: qc.Ordering}
		if opt.OnFactors != nil {
			opt.OnFactors(cl.Start, solver)
		}

		prev := first
		for i := cl.Start + 1; i < cl.End; i++ {
			t2 := time.Now()
			cur := ems.Matrices[i].Permute(qc.Ordering)
			delta := sparse.Delta(prev, cur)
			var err error
			if useUnion {
				err = bennett.UpdateStatic(static, delta, &res.Bennett)
			} else {
				err = bennett.UpdateDynamic(dyn, delta, &res.Bennett)
			}
			res.Times.Bennett += time.Since(t2)
			if err != nil {
				t3 := time.Now()
				if ferr := refactorInPlace(&fac, &static, &dyn, cur, useUnion, sym); ferr != nil {
					return nil, fmt.Errorf("core: %s-QC matrix %d: update %v; refactorization %w", alg, i, err, ferr)
				}
				solver.F = fac
				res.Refactorizations++
				res.Times.FullLU += time.Since(t3)
			}
			prev = cur
			if opt.OnFactors != nil {
				opt.OnFactors(i, solver)
			}
		}
		if dyn != nil {
			res.DynamicInserts += dyn.Inserts
			res.DynamicScanSteps += dyn.ScanSteps
			res.StructureSizes = append(res.StructureSizes, dyn.Size())
		} else {
			res.StructureSizes = append(res.StructureSizes, static.Size())
		}
	}
	res.Wall = time.Since(start)

	if opt.MeasureQuality {
		res.SSPSizes = measureQuality(ems, func(i int) sparse.Ordering {
			for _, qc := range qcs {
				if i >= qc.Cluster.Start && i < qc.Cluster.End {
					return qc.Ordering
				}
			}
			panic("core: matrix not covered by QC clusters")
		})
	}
	return res, nil
}

// StarSizes computes the reference |s̃p(A_i*)| series. For general
// matrices it runs Markowitz per matrix (as BF does); symmetric EMSes
// may use the cheaper MinDegree by passing symmetric=true. These are
// the denominators of every quality-loss figure.
func StarSizes(ems *graph.EMS, symmetric bool) []int {
	out := make([]int, ems.Len())
	for i, a := range ems.Matrices {
		if symmetric {
			out[i] = cluster.MinDegreeStar(i, a.Pattern())
		} else {
			out[i] = order.Markowitz(a.Pattern()).SSPSize
		}
	}
	return out
}
