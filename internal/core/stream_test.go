package core

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// randomEventStream builds a random initial graph plus T random delta
// batches (inserts biased over deletes so the graph drifts instead of
// emptying; no-op events are deliberately included).
func randomEventStream(rng *xrand.Rand, n, T, perBatch int) (*graph.Graph, [][]graph.EdgeEvent) {
	es := make([]graph.Edge, 0, 4*n)
	for k := 0; k < 4*n; k++ {
		es = append(es, graph.Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	initial := graph.New(n, true, es)
	batches := make([][]graph.EdgeEvent, T)
	for t := range batches {
		evs := make([]graph.EdgeEvent, perBatch)
		for k := range evs {
			op := graph.EdgeInsert
			switch r := rng.Intn(10); {
			case r < 3:
				op = graph.EdgeDelete
			case r < 4:
				op = graph.EdgeUpdate
			}
			evs[k] = graph.EdgeEvent{From: rng.Intn(n), To: rng.Intn(n), Op: op}
		}
		batches[t] = evs
	}
	return initial, batches
}

// materialize replays the batches into the snapshot sequence the stream
// walks through (version v = snapshot v).
func materialize(t *testing.T, initial *graph.Graph, batches [][]graph.EdgeEvent) *graph.EGS {
	t.Helper()
	snaps := []*graph.Graph{initial}
	b := graph.NewBuilderFrom(initial)
	for _, evs := range batches {
		if _, err := b.ApplyBatch(evs); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, b.Graph())
	}
	egs, err := graph.NewEGS(snaps)
	if err != nil {
		t.Fatal(err)
	}
	return egs
}

// captureStream runs a direct stream over the batches, retaining a
// clone of every published version.
func captureStream(t *testing.T, alg Algorithm, alpha float64, initial *graph.Graph, d graph.Deriver, batches [][]graph.EdgeEvent) []*lu.Solver {
	t.Helper()
	var got []*lu.Solver
	s, err := NewStream(StreamConfig{
		Algorithm: alg, Alpha: alpha, Initial: initial, Derive: d,
		OnPublish: func(v uint64, sv *lu.Solver) {
			if int(v) != len(got) {
				t.Errorf("%s: version %d published out of order (have %d)", alg, v, len(got))
			}
			got = append(got, sv.Clone())
		},
	})
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	defer s.Close()
	for i, evs := range batches {
		if _, err := s.Apply(evs); err != nil {
			t.Fatalf("%s: batch %d: %v", alg, i, err)
		}
	}
	return got
}

// expectSameSolve asserts two solvers produce bit-identical solutions —
// the observable face of bit-identical factors (same values, same
// operation order).
func expectSameSolve(t *testing.T, label string, a, b *lu.Solver, rng *xrand.Rand) {
	t.Helper()
	n := a.F.Dim()
	if b.F.Dim() != n {
		t.Fatalf("%s: dimension %d vs %d", label, n, b.F.Dim())
	}
	for trial := 0; trial < 3; trial++ {
		v := make([]float64, n)
		for j := range v {
			v[j] = rng.Float64() - 0.5
		}
		xa, xb := a.Solve(v), b.Solve(v)
		for j := range xa {
			if xa[j] != xb[j] {
				t.Fatalf("%s: solve differs at %d: %v vs %v", label, j, xa[j], xb[j])
			}
		}
	}
}

// expectSameStatic compares two static containers array-for-array.
func expectSameStatic(t *testing.T, label string, a, b *lu.Solver) {
	t.Helper()
	fa, aok := a.F.(*lu.StaticFactors)
	fb, bok := b.F.(*lu.StaticFactors)
	if !aok || !bok {
		return
	}
	if len(fa.LVal) != len(fb.LVal) || len(fa.UVal) != len(fb.UVal) {
		t.Fatalf("%s: factor structure sizes differ", label)
	}
	for i := range fa.D {
		if fa.D[i] != fb.D[i] {
			t.Fatalf("%s: D[%d] %v vs %v", label, i, fa.D[i], fb.D[i])
		}
	}
	for i := range fa.LVal {
		if fa.LVal[i] != fb.LVal[i] {
			t.Fatalf("%s: LVal[%d] %v vs %v", label, i, fa.LVal[i], fb.LVal[i])
		}
	}
	for i := range fa.UVal {
		if fa.UVal[i] != fb.UVal[i] {
			t.Fatalf("%s: UVal[%d] %v vs %v", label, i, fa.UVal[i], fb.UVal[i])
		}
	}
}

// TestStreamReplayEquivalence is the headline property of the refactor:
// streaming N delta batches produces, for every version and all four
// strategies, factors bit-identical to running the offline sequence
// pipeline (Replay over the materialized snapshots) — the live feed and
// the snapshot adapter are the same computation.
func TestStreamReplayEquivalence(t *testing.T) {
	rng := xrand.New(17)
	initial, batches := randomEventStream(rng, 100, 14, 12)
	egs := materialize(t, initial, batches)
	d := graph.RWRMatrix(0.85)

	for _, alg := range []Algorithm{BF, INC, CINC, CLUDE} {
		streamed := captureStream(t, alg, 0.9, initial, d, batches)

		offline := make([]*lu.Solver, 0, egs.Len())
		if _, err := Replay(egs, d, alg, ReplayOptions{
			Alpha: 0.9, RetainFactors: true,
			OnFactors: func(i int, s *lu.Solver) {
				if i != len(offline) {
					t.Errorf("%s: replay emitted %d out of order", alg, i)
				}
				offline = append(offline, s)
			},
		}); err != nil {
			t.Fatalf("%s replay: %v", alg, err)
		}

		if len(streamed) != egs.Len() || len(offline) != egs.Len() {
			t.Fatalf("%s: %d streamed / %d replayed versions, want %d", alg, len(streamed), len(offline), egs.Len())
		}
		cmp := xrand.New(5)
		for v := range streamed {
			label := string(alg) + " version " + itoa(v)
			expectSameStatic(t, label, streamed[v], offline[v])
			expectSameSolve(t, label, streamed[v], offline[v], cmp)
		}
	}
}

// TestStreamMatchesOfflineEngine cross-checks the streaming engine
// against the original cluster-parallel pipeline: for the strategies
// whose offline form is already online-computable (BF's per-matrix
// restart, INC's single chain, CINC's greedy α-clusters + dynamic
// container) the published factors must be bit-identical to core.Run's
// retained emissions. CLUDE is excluded by design — its offline
// ordering uses the retrospective cluster union, which no live engine
// can know — and is covered by the replay equivalence plus the residual
// check below.
func TestStreamMatchesOfflineEngine(t *testing.T) {
	rng := xrand.New(23)
	initial, batches := randomEventStream(rng, 90, 10, 10)
	egs := materialize(t, initial, batches)
	d := graph.RWRMatrix(0.85)
	ems := graph.DeriveEMS(egs, d)

	for _, alg := range []Algorithm{BF, INC, CINC} {
		streamed := captureStream(t, alg, 0.9, initial, d, batches)

		retained := make([]*lu.Solver, ems.Len())
		if _, err := Run(ems, alg, Options{
			Alpha: 0.9, RetainFactors: true,
			OnFactors: func(i int, s *lu.Solver) { retained[i] = s },
		}); err != nil {
			t.Fatalf("%s run: %v", alg, err)
		}

		cmp := xrand.New(7)
		for v := range streamed {
			expectSameSolve(t, string(alg)+" vs offline, version "+itoa(v), streamed[v], retained[v], cmp)
		}
	}
}

// TestStreamCLUDEFactorsCorrect holds every streamed CLUDE version
// against its own matrix: the published factors must solve A_v·x = b.
// (The orderings legitimately differ from offline CLUDE's; correctness
// of the factorization is what must survive USSP growth and rebuilds.)
func TestStreamCLUDEFactorsCorrect(t *testing.T) {
	rng := xrand.New(31)
	initial, batches := randomEventStream(rng, 80, 12, 14)
	egs := materialize(t, initial, batches)
	d := graph.RWRMatrix(0.85)
	ems := graph.DeriveEMS(egs, d)

	streamed := captureStream(t, CLUDE, 0.9, initial, d, batches)
	n := ems.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 / float64(n)
	}
	for v, s := range streamed {
		x := s.Solve(b)
		r := ems.Matrices[v].MulVec(x)
		if diff := sparse.NormInfDiff(r, b); diff > 1e-8 {
			t.Fatalf("CLUDE version %d: residual %g", v, diff)
		}
	}
}

// TestStreamStatsAndLifecycle exercises the counters and the closed
// state.
func TestStreamStatsAndLifecycle(t *testing.T) {
	rng := xrand.New(41)
	initial, batches := randomEventStream(rng, 60, 6, 8)
	s, err := NewStream(StreamConfig{Algorithm: CINC, Alpha: 0.9, Initial: initial, Derive: graph.RWRMatrix(0.85)})
	if err != nil {
		t.Fatal(err)
	}
	for _, evs := range batches {
		if _, err := s.Apply(evs); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Version != uint64(len(batches)) || st.Batches != len(batches) {
		t.Fatalf("stats %+v after %d batches", st, len(batches))
	}
	if st.Events != 6*8 || st.EventsApplied <= 0 || st.EventsApplied > st.Events {
		t.Fatalf("event accounting %+v", st)
	}
	if st.Clusters < 1 {
		t.Fatalf("no clusters recorded: %+v", st)
	}
	if !s.View(func(v uint64, sv *lu.Solver) {
		if v != st.Version || sv == nil {
			t.Errorf("View saw version %d, want %d", v, st.Version)
		}
	}) {
		t.Fatal("View found no published state")
	}
	s.Close()
	if _, err := s.Apply(nil); err != ErrStreamClosed {
		t.Fatalf("Apply after Close: %v", err)
	}
	// A closed stream still serves its last state.
	if !s.View(func(uint64, *lu.Solver) {}) {
		t.Fatal("closed stream stopped serving")
	}

	// Config validation.
	if _, err := NewStream(StreamConfig{Algorithm: "nope", Initial: initial, Derive: graph.RWRMatrix(0.85)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := NewStream(StreamConfig{Algorithm: INC}); err == nil {
		t.Fatal("missing Initial/Derive accepted")
	}
	if _, err := NewStream(StreamConfig{Algorithm: CLUDE, Alpha: 2, Initial: initial, Derive: graph.RWRMatrix(0.85)}); err == nil {
		t.Fatal("alpha out of range accepted")
	}
}

// TestBatcherGroupsAndDrains covers size-triggered commits, explicit
// flushes, and the drain-on-close contract.
func TestBatcherGroupsAndDrains(t *testing.T) {
	rng := xrand.New(53)
	initial, batches := randomEventStream(rng, 50, 4, 10)
	s, err := NewStream(StreamConfig{Algorithm: INC, Initial: initial, Derive: graph.RWRMatrix(0.85)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	b := s.NewBatcher(10, 0) // size-only commits
	for _, evs := range batches[:2] {
		for _, ev := range evs {
			if err := b.Send(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := s.Version(); got != 2 {
		t.Fatalf("version %d after two full batches, want 2", got)
	}
	// A partial batch lingers until flushed.
	if err := b.Send(batches[2][:3]...); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 3 || s.Version() != 2 {
		t.Fatalf("pending %d version %d, want 3 pending at version 2", b.Pending(), s.Version())
	}
	if v, err := b.Flush(); err != nil || v != 3 {
		t.Fatalf("flush -> %d, %v", v, err)
	}
	// Close drains the tail.
	if err := b.Send(batches[2][3:]...); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 4 || b.Pending() != 0 {
		t.Fatalf("close did not drain: version %d pending %d", s.Version(), b.Pending())
	}
	if err := b.Send(graph.EdgeEvent{From: 0, To: 1}); err != ErrStreamClosed {
		t.Fatalf("send after close: %v", err)
	}
}

// TestBatcherLingerFlush covers the delay-triggered commit path.
func TestBatcherLingerFlush(t *testing.T) {
	rng := xrand.New(61)
	initial, _ := randomEventStream(rng, 40, 1, 1)
	s, err := NewStream(StreamConfig{Algorithm: INC, Initial: initial, Derive: graph.RWRMatrix(0.85)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := s.NewBatcher(1000, 10*time.Millisecond)
	defer b.Close()
	if err := b.Send(graph.EdgeEvent{From: 1, To: 2, Op: graph.EdgeInsert}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Version() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("linger flush never committed")
		}
		time.Sleep(time.Millisecond)
	}
}

// itoa avoids importing strconv for test labels.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[p:])
}
