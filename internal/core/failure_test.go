package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// singularEMS builds an EMS whose middle matrix is exactly singular.
func singularEMS() *graph.EMS {
	rng := xrand.New(99)
	n := 10
	mk := func(singular bool) *sparse.CSR {
		c := sparse.NewCOO(n)
		for i := 0; i < n; i++ {
			if singular && (i == 3 || i == 4) {
				// Rows 3 and 4 are identical → exactly singular.
				c.Add(i, 3, 1)
				c.Add(i, 4, 1)
				continue
			}
			c.Add(i, i, 2+rng.Float64())
			if i > 0 {
				c.Add(i, i-1, -0.3)
			}
		}
		return c.ToCSR()
	}
	good := mk(false)
	bad := mk(true)
	return &graph.EMS{Matrices: []*sparse.CSR{good, bad, good}}
}

func TestBFSurfacesSingularMatrix(t *testing.T) {
	_, err := Run(singularEMS(), BF, Options{})
	if err == nil {
		t.Fatal("BF accepted a singular matrix")
	}
	if !strings.Contains(err.Error(), "singular") {
		t.Errorf("error does not mention singularity: %v", err)
	}
}

func TestStreamingOrderAndCount(t *testing.T) {
	// OnFactors must fire exactly once per index, strictly in order,
	// for every algorithm.
	ems := smallEMS(t)
	for _, alg := range []Algorithm{BF, INC, CINC, CLUDE} {
		seen := make([]int, 0, ems.Len())
		_, err := Run(ems, alg, Options{
			Alpha: 0.93,
			OnFactors: func(i int, s *lu.Solver) {
				seen = append(seen, i)
				if s == nil || s.F == nil {
					t.Fatalf("%s: nil solver at %d", alg, i)
				}
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(seen) != ems.Len() {
			t.Fatalf("%s: %d callbacks, want %d", alg, len(seen), ems.Len())
		}
		for k, v := range seen {
			if v != k {
				t.Fatalf("%s: out-of-order callback %v", alg, seen)
			}
		}
	}
}

func TestSolversRemainAccurateUnderLongUpdateChains(t *testing.T) {
	// Accumulated Bennett error across a whole cluster must stay far
	// below measure-level accuracy. Compare CLUDE's streamed solutions
	// against fresh per-snapshot factorizations.
	ems := smallEMS(t)
	b := make([]float64, ems.N())
	b[1] = 0.15
	var worst float64
	_, err := Run(ems, CLUDE, Options{
		Alpha: 0.85, // big clusters → long update chains
		OnFactors: func(i int, s *lu.Solver) {
			got := s.Solve(b)
			fresh, ferr := lu.FactorizeOrdered(ems.Matrices[i], sparse.IdentityOrdering(ems.N()))
			if ferr != nil {
				t.Fatal(ferr)
			}
			want := fresh.Solve(b)
			if d := sparse.NormInfDiff(got, want); d > worst {
				worst = d
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-8 {
		t.Errorf("accumulated update error %g too large", worst)
	}
}

func TestEmptyishEMS(t *testing.T) {
	// A single-matrix EMS must work for every algorithm.
	a := sparse.Identity(6)
	ems := &graph.EMS{Matrices: []*sparse.CSR{a}}
	for _, alg := range []Algorithm{BF, INC, CINC, CLUDE} {
		res, err := Run(ems, alg, Options{Alpha: 0.95, MeasureQuality: true})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.T != 1 {
			t.Fatalf("%s: T = %d", alg, res.T)
		}
	}
}

func TestIdenticalSnapshotsOneCluster(t *testing.T) {
	// A constant EMS clusters into a single cluster at any α and
	// Bennett receives empty deltas.
	rng := xrand.New(123)
	n := 30
	c := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 3)
		c.Add(i, (i+1)%n, -0.5*rng.Float64())
	}
	a := c.ToCSR()
	ems := &graph.EMS{Matrices: []*sparse.CSR{a, a, a, a}}
	res, err := Run(ems, CLUDE, Options{Alpha: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Errorf("constant EMS split into %d clusters", len(res.Clusters))
	}
	if res.Bennett.StepsTouched != 0 {
		t.Errorf("empty deltas touched %d steps", res.Bennett.StepsTouched)
	}
}
