package core

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/lu"
	"repro/internal/sparse"
)

// TestParallelEmissionOrder is the engine's core contract: OnFactors
// fires exactly once per snapshot, strictly in order 0..T-1, for every
// worker count — including pools larger than the cluster count.
func TestParallelEmissionOrder(t *testing.T) {
	ems := smallEMS(t)
	for _, alg := range []Algorithm{BF, INC, CINC, CLUDE} {
		for _, workers := range []int{1, 2, 4, 16} {
			var seen []int
			_, err := Run(ems, alg, Options{
				Alpha:   0.93,
				Workers: workers,
				OnFactors: func(i int, s *lu.Solver) {
					seen = append(seen, i)
					if s == nil || s.F == nil {
						t.Errorf("%s w=%d: nil solver at %d", alg, workers, i)
					}
				},
			})
			if err != nil {
				t.Fatalf("%s w=%d: %v", alg, workers, err)
			}
			if len(seen) != ems.Len() {
				t.Fatalf("%s w=%d: %d callbacks, want %d", alg, workers, len(seen), ems.Len())
			}
			for k, v := range seen {
				if v != k {
					t.Fatalf("%s w=%d: out-of-order emissions %v", alg, workers, seen)
				}
			}
		}
	}
}

// TestParallelSolutionsCorrect runs the full solver check through the
// parallel path: every streamed solver must solve its snapshot.
func TestParallelSolutionsCorrect(t *testing.T) {
	ems := smallEMS(t)
	n := ems.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 / float64(n)
	}
	for _, alg := range []Algorithm{BF, CINC, CLUDE} {
		_, err := Run(ems, alg, Options{
			Alpha:   0.9,
			Workers: 4,
			OnFactors: func(i int, s *lu.Solver) {
				x := s.Solve(b)
				r := ems.Matrices[i].MulVec(x)
				if d := sparse.NormInfDiff(r, b); d > 1e-8 {
					t.Errorf("%s: matrix %d residual %g", alg, i, d)
				}
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

// TestParallelMatchesSequential checks that worker count is invisible
// in the numeric and structural outputs: clusters, structure sizes,
// SSP sizes, Bennett stats and refactorization counts are all
// scheduling-independent.
func TestParallelMatchesSequential(t *testing.T) {
	ems := smallEMS(t)
	for _, alg := range []Algorithm{BF, INC, CINC, CLUDE} {
		seq, err := Run(ems, alg, Options{Alpha: 0.93, Workers: 1, MeasureQuality: true})
		if err != nil {
			t.Fatalf("%s sequential: %v", alg, err)
		}
		par, err := Run(ems, alg, Options{Alpha: 0.93, Workers: 4, MeasureQuality: true})
		if err != nil {
			t.Fatalf("%s parallel: %v", alg, err)
		}
		if !reflect.DeepEqual(seq.Clusters, par.Clusters) {
			t.Errorf("%s: cluster boundaries differ", alg)
		}
		if !reflect.DeepEqual(seq.StructureSizes, par.StructureSizes) {
			t.Errorf("%s: structure sizes differ: %v vs %v", alg, seq.StructureSizes, par.StructureSizes)
		}
		if !reflect.DeepEqual(seq.SSPSizes, par.SSPSizes) {
			t.Errorf("%s: SSP sizes differ", alg)
		}
		if seq.Bennett != par.Bennett {
			t.Errorf("%s: bennett stats differ: %+v vs %+v", alg, seq.Bennett, par.Bennett)
		}
		if seq.Refactorizations != par.Refactorizations ||
			seq.DynamicInserts != par.DynamicInserts ||
			seq.DynamicScanSteps != par.DynamicScanSteps {
			t.Errorf("%s: counters differ", alg)
		}
	}
}

// TestParallelQCMatchesSequential is the same invariance check for the
// β-clustered variants.
func TestParallelQCMatchesSequential(t *testing.T) {
	ems := symmetricEMS(t)
	star := StarSizes(ems, true)
	for _, alg := range []Algorithm{CINC, CLUDE} {
		seq, err := RunQC(ems, alg, 0.2, Options{Workers: 1, MeasureQuality: true, StarSizes: star})
		if err != nil {
			t.Fatalf("%s-QC sequential: %v", alg, err)
		}
		par, err := RunQC(ems, alg, 0.2, Options{Workers: 3, MeasureQuality: true, StarSizes: star})
		if err != nil {
			t.Fatalf("%s-QC parallel: %v", alg, err)
		}
		if !reflect.DeepEqual(seq.Clusters, par.Clusters) {
			t.Errorf("%s-QC: cluster boundaries differ", alg)
		}
		if !reflect.DeepEqual(seq.SSPSizes, par.SSPSizes) {
			t.Errorf("%s-QC: SSP sizes differ", alg)
		}
		if !cluster.Partition(par.Clusters, ems.Len()) {
			t.Errorf("%s-QC: clusters do not partition the EMS", alg)
		}
	}
}

// TestCancellationStopsRun cancels mid-stream and expects a prompt,
// deadlock-free return carrying the context error.
func TestCancellationStopsRun(t *testing.T) {
	ems := smallEMS(t)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Int32
		_, err := Run(ems, CLUDE, Options{
			Alpha:   0.95,
			Workers: workers,
			Context: ctx,
			OnFactors: func(i int, s *lu.Solver) {
				if fired.Add(1) == 2 {
					cancel()
				}
			},
		})
		cancel()
		if err == nil {
			t.Fatalf("w=%d: cancelled run returned nil error", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("w=%d: error %v does not wrap context.Canceled", workers, err)
		}
		if got := fired.Load(); got >= int32(ems.Len()) {
			t.Errorf("w=%d: cancellation did not stop emission (%d callbacks)", workers, got)
		}
	}
}

// TestParallelSingularSurfaced propagates a mid-cluster factorization
// failure out of the pool without hanging the other workers.
func TestParallelSingularSurfaced(t *testing.T) {
	_, err := Run(singularEMS(), BF, Options{Workers: 3})
	if err == nil {
		t.Fatal("BF accepted a singular matrix under a worker pool")
	}
}

// TestWorkerCountEdgeCases: pools larger than the job count and
// negative values must behave like sane defaults.
func TestWorkerCountEdgeCases(t *testing.T) {
	ems := smallEMS(t)
	for _, workers := range []int{-1, 0, 1000} {
		res, err := Run(ems, CLUDE, Options{Alpha: 0.95, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !cluster.Partition(res.Clusters, ems.Len()) {
			t.Fatalf("workers=%d: bad cluster partition", workers)
		}
	}
}
