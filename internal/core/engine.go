package core

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bennett"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/sparse"
)

// This file is the execution engine behind Run and RunQC. Every LUDEM
// algorithm is expressed as the same four-stage pipeline:
//
//	planner      →  jobs (one per cluster; t_c)
//	orderStage   →  cluster ordering (t_M)
//	factorStage  →  symbolic + full LU of the first member (t_d)
//	updateStage  →  Bennett chain across the rest of the cluster (t_B)
//
// The planner is the only algorithm-specific part: BF plans singleton
// clusters, INC one cluster covering the whole sequence, CINC/CLUDE
// α-clusters, and the QC variants β-clusters with their orderings
// already attached. Clusters are mutually independent, so jobs are
// dispatched to a bounded worker pool; an ordered-emission stage keeps
// the OnFactors callback contract (snapshot order i = 0..T-1) intact
// under any worker count.

// job is one independent unit of pipeline work: a cluster of
// consecutive matrices factored under one shared ordering.
type job struct {
	idx      int // position in cluster order
	cl       cluster.Cluster
	useUnion bool // ordering and USSP structure from the cluster union (CLUDE)
	hasOrd   bool // ord was precomputed by the planner (β-clustering)
	ord      sparse.Ordering
}

// plan is a planner's output: the error-message label plus the job
// list in cluster order (jobs[k].cl.Start increasing, contiguous).
type plan struct {
	label string
	jobs  []job
}

// planner is the clustering stage. Its cost is reported as t_c.
type planner interface {
	plan(e *engine) (plan, error)
}

// bfPlanner plans BF: every matrix is its own singleton cluster with
// its own Markowitz ordering and full decomposition.
type bfPlanner struct{}

func (bfPlanner) plan(e *engine) (plan, error) {
	jobs := make([]job, e.ems.Len())
	for i := range jobs {
		jobs[i] = job{idx: i, cl: cluster.Cluster{Start: i, End: i + 1}}
	}
	return plan{label: "BF", jobs: jobs}, nil
}

// incPlanner plans INC: one cluster covering the whole EMS, ordered by
// its first matrix, updated through the dynamic container.
type incPlanner struct{}

func (incPlanner) plan(e *engine) (plan, error) {
	return plan{label: "INC", jobs: []job{
		{cl: cluster.Cluster{Start: 0, End: e.ems.Len()}},
	}}, nil
}

// alphaPlanner plans CINC (useUnion=false) and CLUDE (useUnion=true):
// α-clusters, ordered by the first member or the cluster union.
type alphaPlanner struct {
	label    string
	alpha    float64
	useUnion bool
}

func (p alphaPlanner) plan(e *engine) (plan, error) {
	clusters := cluster.Alpha(patterns(e.ems), p.alpha)
	jobs := make([]job, len(clusters))
	for i, cl := range clusters {
		jobs[i] = job{idx: i, cl: cl, useUnion: p.useUnion}
	}
	return plan{label: p.label, jobs: jobs}, nil
}

// betaPlanner plans the LUDEM-QC variants: β-clustering interleaves
// clustering with ordering runs (Algorithms 4–5), so the jobs come out
// with their orderings attached and t_M stays zero — the full cost is
// t_c, as the paper reports it.
type betaPlanner struct {
	label    string
	beta     float64
	useUnion bool
	star     []int
}

func (p betaPlanner) plan(e *engine) (plan, error) {
	pats := patterns(e.ems)
	var star func(i int, pat *sparse.Pattern) int
	if p.star != nil {
		star = cluster.StarTable(p.star)
	}
	var qcs []cluster.QCResult
	if p.useUnion {
		qcs = cluster.BetaCLUDE(pats, p.beta, star)
	} else {
		qcs = cluster.BetaCINC(pats, p.beta, star)
	}
	jobs := make([]job, len(qcs))
	for i, qc := range qcs {
		jobs[i] = job{idx: i, cl: qc.Cluster, useUnion: p.useUnion, hasOrd: true, ord: qc.Ordering}
	}
	return plan{label: p.label, jobs: jobs}, nil
}

// worker is the per-goroutine state of the pool: reusable scratch
// buffers so the hot path does not allocate, plus local counters that
// are merged into the Result once the pool drains (keeping the
// per-phase breakdown t_c/t_M/t_d/t_B correct across workers).
type worker struct {
	luWS  lu.Workspace
	benWS bennett.Workspace

	times   PhaseTimes
	bstats  bennett.Stats
	refacts int
	dynIns  int
	dynScan int

	ack chan struct{} // emission acknowledgements (buffered 1)
}

// jobState threads one cluster through the per-cluster stages.
type jobState struct {
	job     job
	ord     sparse.Ordering
	sspSize int         // |s̃p| of the stage-computed ordering (BF records it)
	colInv  sparse.Perm // o.Col.Inverse(), computed once per cluster
	sym     *lu.SymbolicLU
	static  *lu.StaticFactors
	dyn     *lu.DynamicFactors
	fac     lu.Factors
	solver  *lu.Solver
	prev    *sparse.CSR // previous cluster member, reordered
}

// stage is one per-cluster pipeline phase.
type stage interface {
	run(e *engine, w *worker, st *jobState) error
}

// pipeline is the fixed per-cluster stage sequence shared by all
// algorithms.
var pipeline = []stage{orderStage{}, factorStage{}, updateStage{}}

// orderStage computes (or adopts) the cluster ordering — phase t_M.
type orderStage struct{}

func (orderStage) run(e *engine, w *worker, st *jobState) error {
	if st.job.hasOrd {
		st.ord = st.job.ord
	} else {
		t0 := time.Now()
		var r order.Result
		if st.job.useUnion {
			r = order.Markowitz(st.job.cl.Union) // O∪ = O*(A∪), Alg. 3 line 2
		} else {
			r = order.Markowitz(e.ems.Matrices[st.job.cl.Start].Pattern()) // O1 = O*(A1)
		}
		w.times.Ordering += time.Since(t0)
		st.ord, st.sspSize = r.Ordering, r.SSPSize
	}
	st.colInv = st.ord.Col.Inverse()
	e.orderings[st.job.idx] = st.ord
	if e.sspOut != nil && !st.job.hasOrd {
		e.sspOut[st.job.cl.Start] = st.sspSize
	}
	return e.ctx.Err()
}

// factorStage builds the factor container and fully decomposes the
// first cluster member into it — phase t_d — then emits snapshot
// cl.Start.
type factorStage struct{}

func (factorStage) run(e *engine, w *worker, st *jobState) error {
	cl := st.job.cl
	t1 := time.Now()
	first := e.ems.Matrices[cl.Start].PermuteInv(st.ord, st.colInv)
	if st.job.useUnion {
		// Symbolic decomposition of A∪^{O∪} gives the USSP; the static
		// structure built from it serves the whole cluster (Alg. 3
		// lines 3–4).
		st.sym = lu.Symbolic(cl.Union.Permute(st.ord))
	} else {
		st.sym = lu.Symbolic(first.Pattern())
	}
	st.static = lu.NewStaticFactors(st.sym)
	if err := st.static.FactorizeWith(first, &w.luWS); err != nil {
		return fmt.Errorf("core: %s cluster %d (matrix %d): %w", e.label, st.job.idx, cl.Start, err)
	}
	st.fac = st.static
	if !st.job.useUnion && cl.Len() > 1 {
		// INC/CINC maintain the linked-list container across the
		// cluster; singleton clusters (and all of BF) never update, so
		// the static container serves directly.
		st.dyn = lu.NewDynamicFactors(st.static)
		st.fac = st.dyn
	}
	w.times.FullLU += time.Since(t1)

	st.solver = &lu.Solver{F: st.fac, O: st.ord}
	st.prev = first
	return e.emit(w, cl.Start, st.solver)
}

// updateStage walks the rest of the cluster with Bennett updates —
// phase t_B — emitting every snapshot, then records the cluster's
// structural bookkeeping.
type updateStage struct{}

func (updateStage) run(e *engine, w *worker, st *jobState) error {
	cl := st.job.cl
	for i := cl.Start + 1; i < cl.End; i++ {
		if err := e.ctx.Err(); err != nil {
			return err
		}
		t2 := time.Now()
		cur := e.ems.Matrices[i].PermuteInv(st.ord, st.colInv)
		delta := sparse.Delta(st.prev, cur)
		var err error
		if st.job.useUnion {
			err = w.benWS.UpdateStatic(st.static, delta, &w.bstats)
		} else {
			err = w.benWS.UpdateDynamic(st.dyn, delta, &w.bstats)
		}
		w.times.Bennett += time.Since(t2)
		if err != nil {
			// Robustness fallback (never triggered by paper-like
			// workloads): refactorize from scratch in the same order.
			t3 := time.Now()
			if ferr := refactorInPlace(&st.fac, &st.static, &st.dyn, cur, st.job.useUnion, st.sym); ferr != nil {
				return fmt.Errorf("core: %s matrix %d: update %v; refactorization %w", e.label, i, err, ferr)
			}
			st.solver.F = st.fac
			w.refacts++
			w.times.FullLU += time.Since(t3)
		}
		st.prev = cur
		if err := e.emit(w, i, st.solver); err != nil {
			return err
		}
	}
	if st.dyn != nil {
		w.dynIns += st.dyn.Inserts
		w.dynScan += st.dyn.ScanSteps
		e.structSizes[st.job.idx] = st.dyn.Size()
	} else {
		e.structSizes[st.job.idx] = st.static.Size()
	}
	return nil
}

// engine executes a plan's jobs over a bounded worker pool.
type engine struct {
	ems     *graph.EMS
	opt     Options
	label   string
	workers int

	ctx    context.Context
	cancel context.CancelFunc

	jobs        []job
	orderings   []sparse.Ordering // per cluster, written by its owning worker
	structSizes []int             // per cluster
	sspOut      []int             // per matrix; non-nil only for BF

	reqs    chan emitReq // nil when emission is inline (sequential or no callback)
	errOnce sync.Once
	err     error
}

// newEngine resolves the worker count (Workers <= 0 → GOMAXPROCS) and
// the cancellation context (nil → Background).
func newEngine(ems *graph.EMS, opt Options) *engine {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parent := opt.Context
	if parent == nil {
		parent = context.Background()
	}
	e := &engine{ems: ems, opt: opt, workers: workers}
	e.ctx, e.cancel = context.WithCancel(parent)
	return e
}

// fail records the first job error and cancels every other worker.
func (e *engine) fail(err error) {
	e.errOnce.Do(func() { e.err = err })
	e.cancel()
}

// runJob drives one cluster through the pipeline stages.
func (e *engine) runJob(w *worker, j job) error {
	st := &jobState{job: j}
	for _, s := range pipeline {
		if err := s.run(e, w, st); err != nil {
			return err
		}
	}
	return nil
}

// run executes the job list and merges the worker-local counters into
// res. It returns the first job error, or the context's error if the
// run was cancelled from outside.
func (e *engine) run(res *Result) error {
	nw := e.workers
	if nw > len(e.jobs) {
		nw = len(e.jobs)
	}
	if nw < 1 {
		nw = 1
	}

	// The ordered-emission stage is only needed when callbacks can be
	// produced out of order — i.e. a real pool and a real callback.
	var emitterWG sync.WaitGroup
	if e.opt.OnFactors != nil && nw > 1 {
		// Each worker has at most one emission in flight, so capacity
		// nw bounds both the channel and the reorder heap.
		e.reqs = make(chan emitReq, nw)
		emitterWG.Add(1)
		go func() {
			defer emitterWG.Done()
			e.emitLoop()
		}()
	}

	// Jobs are dispatched in cluster order over an unbuffered channel.
	// This guarantees the lowest incomplete cluster is always owned by
	// some worker, which is what makes the ordered-emission stage
	// deadlock-free: that owner's emissions are always next in line.
	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := make([]*worker, nw)
	for wi := range workers {
		w := &worker{ack: make(chan struct{}, 1)}
		workers[wi] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if e.ctx.Err() != nil {
					return
				}
				if err := e.runJob(w, j); err != nil {
					e.fail(err)
					return
				}
			}
		}()
	}

feed:
	for _, j := range e.jobs {
		select {
		case jobs <- j:
		case <-e.ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if e.reqs != nil {
		close(e.reqs)
	}
	emitterWG.Wait()

	for _, w := range workers {
		res.Times.Ordering += w.times.Ordering
		res.Times.FullLU += w.times.FullLU
		res.Times.Bennett += w.times.Bennett
		res.Bennett.Add(w.bstats)
		res.Refactorizations += w.refacts
		res.DynamicInserts += w.dynIns
		res.DynamicScanSteps += w.dynScan
	}

	if e.err != nil {
		return e.err
	}
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("core: %s cancelled: %w", e.label, err)
	}
	return nil
}

// emitReq asks the emitter to fire OnFactors for snapshot i. The
// worker blocks until the emitter acknowledges, because the factors
// behind s are updated in place for the next snapshot the moment the
// callback returns.
type emitReq struct {
	i   int
	s   *lu.Solver
	ack chan struct{}
}

// reqHeap is a min-heap of pending emissions keyed by snapshot index.
type reqHeap []emitReq

func (h reqHeap) Len() int            { return len(h) }
func (h reqHeap) Less(i, j int) bool  { return h[i].i < h[j].i }
func (h reqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *reqHeap) Push(x interface{}) { *h = append(*h, x.(emitReq)) }
func (h *reqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// emit delivers snapshot i to the OnFactors callback in snapshot
// order. With no callback it is only a cancellation check; with one
// worker the callback fires inline (the sequential path produces
// snapshots in order by construction).
func (e *engine) emit(w *worker, i int, s *lu.Solver) error {
	if e.opt.OnFactors == nil {
		return e.ctx.Err()
	}
	if e.opt.RetainFactors {
		// The callback keeps this clone for good; cloning here (in the
		// worker, not the emitter) overlaps clone work across clusters.
		s = s.Clone()
	}
	if e.reqs == nil {
		e.opt.OnFactors(i, s)
		return e.ctx.Err()
	}
	select {
	case e.reqs <- emitReq{i: i, s: s, ack: w.ack}:
	case <-e.ctx.Done():
		return e.ctx.Err()
	}
	select {
	case <-w.ack:
		return e.ctx.Err()
	case <-e.ctx.Done():
		return e.ctx.Err()
	}
}

// emitLoop is the ordered-emission stage: it buffers out-of-order
// emissions in a min-heap (bounded by the worker count — each worker
// blocks on its previous emission) and fires the callback strictly in
// snapshot order 0..T-1 from this single goroutine.
func (e *engine) emitLoop() {
	next := 0
	var pq reqHeap
	for r := range e.reqs {
		heap.Push(&pq, r)
		for pq.Len() > 0 && pq[0].i == next && e.ctx.Err() == nil {
			t := heap.Pop(&pq).(emitReq)
			e.opt.OnFactors(t.i, t.s)
			next++
			t.ack <- struct{}{}
		}
	}
	// Cancelled run: release whoever is still parked (acks are
	// buffered, so this never blocks even if the worker already left).
	for pq.Len() > 0 {
		heap.Pop(&pq).(emitReq).ack <- struct{}{}
	}
}

// execute is the shared driver behind Run and RunQC: plan (timed as
// t_c), execute over the pool, then assemble the Result.
func execute(ems *graph.EMS, alg Algorithm, opt Options, pl planner) (*Result, error) {
	res := &Result{Algorithm: alg, T: ems.Len()}
	e := newEngine(ems, opt)
	defer e.cancel()

	start := time.Now()
	tc := time.Now()
	p, err := pl.plan(e)
	if err != nil {
		return nil, err
	}
	res.Times.Clustering = time.Since(tc)

	e.label = p.label
	e.jobs = p.jobs
	e.orderings = make([]sparse.Ordering, len(p.jobs))
	e.structSizes = make([]int, len(p.jobs))
	if alg == BF {
		// BF's orderings come with |s̃p(A_i*)| for free; it is the
		// quality reference, so it always records them.
		res.SSPSizes = make([]int, ems.Len())
		e.sspOut = res.SSPSizes
	}

	if err := e.run(res); err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)

	res.Clusters = make([]cluster.Cluster, len(p.jobs))
	for i, j := range p.jobs {
		res.Clusters[i] = j.cl
	}
	res.StructureSizes = e.structSizes

	if opt.MeasureQuality && alg != BF {
		res.SSPSizes = measureQuality(ems, func(i int) sparse.Ordering {
			ci := cluster.Covering(res.Clusters, i)
			if ci < 0 {
				panic("core: matrix not covered by clusters")
			}
			return e.orderings[ci]
		})
	}
	return res, nil
}
