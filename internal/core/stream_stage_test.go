package core

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// TestStreamStageHook pins the OnStage contract: per committed batch
// the hook sees validate, apply and publish exactly once, log exactly
// when a LogBatch hook ran, nothing on a rejected batch, and nothing at
// all when no hook is installed (NewStream's version 0 is not a batch).
func TestStreamStageHook(t *testing.T) {
	rng := xrand.New(3)
	initial, batches := randomEventStream(rng, 30, 4, 6)

	counts := map[string]int{}
	logged := 0
	s, err := NewStream(StreamConfig{
		Algorithm: INC,
		Initial:   initial,
		Derive:    graph.RWRMatrix(0.85),
		LogBatch: func(seq uint64, events []graph.EdgeEvent) error {
			logged++
			return nil
		},
		OnStage: func(stage string, d time.Duration) {
			if d < 0 {
				t.Errorf("stage %q: negative duration %v", stage, d)
			}
			counts[stage]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(counts) != 0 {
		t.Fatalf("stages observed before any batch: %v", counts)
	}

	for i, evs := range batches {
		if _, err := s.Apply(evs); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	want := len(batches)
	for _, stage := range []string{"validate", "log", "apply", "publish"} {
		if counts[stage] != want {
			t.Fatalf("stage %q observed %d times, want %d (all: %v)", stage, counts[stage], want, counts)
		}
	}
	if logged != want {
		t.Fatalf("LogBatch ran %d times, want %d", logged, want)
	}

	// A rejected batch (validation failure) observes nothing.
	before := counts["validate"]
	if _, err := s.Apply([]graph.EdgeEvent{{From: -1, To: 0, Op: graph.EdgeInsert}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if counts["validate"] != before {
		t.Fatal("rejected batch observed a validate stage")
	}
}
