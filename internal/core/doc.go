// Package core implements the paper's contribution: the four
// algorithms for the LUDEM problem (Definition 3) — BF, INC, CINC and
// CLUDE (§4) — plus the quality-constrained LUDEM-QC variants (§5),
// with the per-phase timing breakdown the evaluation section reports
// (clustering time t_c, Markowitz time t_M, full LU decomposition time
// t_d, Bennett time t_B).
//
// All algorithms stream through the evolving matrix sequence: as soon
// as matrix i's factors are current, the OnFactors callback (if any)
// receives a ready-to-use solver for A_i. This is the intended usage
// pattern — compute the measure series (PageRank, RWR, …) snapshot by
// snapshot — and keeps memory bounded for long sequences.
//
// # Parallel execution
//
// Clusters are factored independently (one ordering, one full LU, one
// Bennett chain per cluster), so every algorithm runs its clusters on
// a bounded worker pool. Options.Workers sets the pool size; the
// default (Workers == 0) is runtime.GOMAXPROCS(0), and Workers == 1
// selects the sequential path with no synchronization on the hot
// path. Each worker keeps its own reusable scratch (the LU work
// vector, the Bennett recurrence vectors, the per-cluster inverse
// permutation), so worker count does not change allocation behavior
// per cluster.
//
// # Callback ordering
//
// OnFactors fires exactly once per snapshot, strictly in snapshot
// order i = 0..T-1, for every worker count: out-of-order completions
// are buffered in a min-heap (at most one pending emission per worker,
// so memory stays bounded) and released in order by a single emitter
// goroutine. Callbacks therefore never run concurrently with each
// other, but with Workers > 1 they run on the emitter's goroutine, not
// the caller's. A worker that has emitted snapshot i does not touch
// its factors again until the callback returns, so the solver passed
// to the callback is safe to use for the duration of the call — and
// only for the duration of the call, exactly as in the sequential
// path.
//
// # Cancellation
//
// Options.Context threads cancellation through the pool: workers
// observe it between per-snapshot steps, the emitter stops firing
// callbacks, and Run/RunQC return the context's error. The first
// factorization error likewise cancels all in-flight cluster work.
//
// # Phase times
//
// The t_c/t_M/t_d/t_B breakdown is accumulated per worker and summed,
// so with Workers > 1 it reports aggregate CPU time across the pool;
// Result.Wall remains wall-clock. Sequential runs (Workers == 1) keep
// the two views identical up to scheduling noise, matching the
// figures of the paper.
//
// # Streaming execution
//
// Run consumes a pre-materialized sequence; Stream (stream.go) consumes
// a live feed of edge-delta batches — the deployment the paper
// motivates. Each applied batch yields one factor version, maintained
// by the same four strategies in online form (incremental α-cluster
// tracking, evolving-union USSP for CLUDE) and hot-published by
// reference under a reader/writer lock instead of cloned: a serving
// layer reads the current factors in place via View (see
// serve.Engine.AttachLive). Batcher groups a raw event feed into
// versioned batches; Replay re-expresses the offline sequence shape as
// an adapter over the stream by diffing consecutive snapshots into
// delta batches, with the same OnFactors ordering contract as Run.
// Streaming a delta feed and replaying its materialized snapshots
// produce bit-identical factors (see stream_test.go); details in
// docs/STREAMING.md.
package core
