package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
)

// smallEMS derives a directed RWR EMS from a small synthetic EGS.
func smallEMS(t *testing.T) *graph.EMS {
	t.Helper()
	cfg := gen.SyntheticConfig{V: 120, EP: 1100, D: 4, K: 4, DeltaE: 15, T: 12, Seed: 3}
	egs, err := gen.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return graph.DeriveEMS(egs, graph.RWRMatrix(0.85))
}

// symmetricEMS derives a symmetric EMS for the QC tests.
func symmetricEMS(t *testing.T) *graph.EMS {
	t.Helper()
	cfg := gen.DBLPConfig{
		N: 100, T: 10, Communities: 2,
		InitialPapers: 80, PapersPerDay: 4,
		MaxCoauthors: 3, CrossCommunity: 0.1, Seed: 5,
	}
	egs, err := gen.DBLPSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return graph.DeriveEMS(egs, graph.SymmetricWalkMatrix(0.9))
}

// checkSolutions verifies that the streamed solvers actually solve
// A_i·x = b for every snapshot.
func checkSolutions(t *testing.T, ems *graph.EMS, alg Algorithm, opt Options, runQC bool, beta float64) *Result {
	t.Helper()
	n := ems.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 / float64(n)
	}
	solved := make([]bool, ems.Len())
	opt.OnFactors = func(i int, s *lu.Solver) {
		x := s.Solve(b)
		r := ems.Matrices[i].MulVec(x)
		if d := sparse.NormInfDiff(r, b); d > 1e-8 {
			t.Errorf("%s: matrix %d residual %g", alg, i, d)
		}
		solved[i] = true
	}
	var res *Result
	var err error
	if runQC {
		res, err = RunQC(ems, alg, beta, opt)
	} else {
		res, err = Run(ems, alg, opt)
	}
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	for i, ok := range solved {
		if !ok {
			t.Fatalf("%s: matrix %d never streamed", alg, i)
		}
	}
	return res
}

func TestBFSolvesEverySnapshot(t *testing.T) {
	ems := smallEMS(t)
	res := checkSolutions(t, ems, BF, Options{}, false, 0)
	if len(res.SSPSizes) != ems.Len() {
		t.Fatal("BF must record SSP sizes")
	}
	if len(res.Clusters) != ems.Len() {
		t.Fatal("BF clusters must be singletons")
	}
}

func TestINCSolvesEverySnapshot(t *testing.T) {
	ems := smallEMS(t)
	res := checkSolutions(t, ems, INC, Options{MeasureQuality: true}, false, 0)
	if res.Refactorizations != 0 {
		t.Errorf("INC needed %d refactorizations", res.Refactorizations)
	}
	if len(res.Clusters) != 1 {
		t.Error("INC must use a single cluster")
	}
	if res.DynamicInserts == 0 {
		t.Error("INC on a drifting EMS should have inserted fill")
	}
}

func TestCINCSolvesEverySnapshot(t *testing.T) {
	ems := smallEMS(t)
	res := checkSolutions(t, ems, CINC, Options{Alpha: 0.9, MeasureQuality: true}, false, 0)
	if got := clustersCover(res, ems.Len()); !got {
		t.Error("CINC clusters do not partition the EMS")
	}
}

func TestCLUDESolvesEverySnapshot(t *testing.T) {
	ems := smallEMS(t)
	res := checkSolutions(t, ems, CLUDE, Options{Alpha: 0.9, MeasureQuality: true}, false, 0)
	if !clustersCover(res, ems.Len()) {
		t.Error("CLUDE clusters do not partition the EMS")
	}
	if res.DynamicInserts != 0 {
		t.Error("CLUDE must never touch a dynamic structure")
	}
	if res.Refactorizations != 0 {
		t.Errorf("CLUDE fell back to refactorization %d times — USSP did not cover the cluster", res.Refactorizations)
	}
}

func clustersCover(res *Result, T int) bool {
	at := 0
	for _, c := range res.Clusters {
		if c.Start != at {
			return false
		}
		at = c.End
	}
	return at == T
}

func TestQualityOrdering(t *testing.T) {
	// The paper's headline quality relation: BF (ql=0) ≤ CLUDE ≤ CINC ≤
	// INC on average.
	ems := smallEMS(t)
	bf, err := Run(ems, BF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Run(ems, INC, Options{MeasureQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	cinc, err := Run(ems, CINC, Options{Alpha: 0.95, MeasureQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	clude, err := Run(ems, CLUDE, Options{Alpha: 0.95, MeasureQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	qlINC := Mean(QualityLoss(inc.SSPSizes, bf.SSPSizes))
	qlCINC := Mean(QualityLoss(cinc.SSPSizes, bf.SSPSizes))
	qlCLUDE := Mean(QualityLoss(clude.SSPSizes, bf.SSPSizes))
	if qlINC < 0 || qlCINC < -0.05 || qlCLUDE < -0.05 {
		t.Errorf("quality losses suspiciously negative: inc=%v cinc=%v clude=%v", qlINC, qlCINC, qlCLUDE)
	}
	if qlCLUDE > qlINC+1e-9 {
		t.Errorf("CLUDE quality (%v) worse than INC (%v)", qlCLUDE, qlINC)
	}
}

func TestINCQualityDegradesAlongSequence(t *testing.T) {
	// Figure 5's phenomenon: ql(O*(A1), Ai) grows with i. Compare the
	// average of the last quarter against the first quarter.
	ems := smallEMS(t)
	bf, err := Run(ems, BF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Run(ems, INC, Options{MeasureQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	ql := QualityLoss(inc.SSPSizes, bf.SSPSizes)
	q := len(ql) / 4
	if q == 0 {
		t.Skip("sequence too short")
	}
	head := Mean(ql[:q])
	tail := Mean(ql[len(ql)-q:])
	if tail < head {
		t.Errorf("INC quality did not degrade: head %v tail %v", head, tail)
	}
	if math.Abs(ql[0]) > 1e-9 {
		t.Errorf("ql of first matrix should be 0 (own Markowitz order), got %v", ql[0])
	}
}

func TestAlphaOneDegeneratesToBFQuality(t *testing.T) {
	// α = 1: singleton clusters (while patterns differ), so CLUDE's
	// per-matrix orderings are plain Markowitz — zero quality loss.
	ems := smallEMS(t)
	bf, err := Run(ems, BF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clude, err := Run(ems, CLUDE, Options{Alpha: 1.0, MeasureQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bf.SSPSizes {
		if clude.SSPSizes[i] != bf.SSPSizes[i] {
			// Identical successive patterns may merge; in that case the
			// union equals the member and quality still matches.
			t.Errorf("matrix %d: alpha=1 CLUDE ssp %d != BF %d", i, clude.SSPSizes[i], bf.SSPSizes[i])
		}
	}
}

func TestQCVariantsRespectBeta(t *testing.T) {
	ems := symmetricEMS(t)
	beta := 0.2
	star := StarSizes(ems, true)
	for _, alg := range []Algorithm{CINC, CLUDE} {
		res := checkSolutions(t, ems, alg, Options{MeasureQuality: true}, true, beta)
		ql := QualityLoss(res.SSPSizes, star)
		for i, q := range ql {
			if q > beta+1e-9 {
				t.Errorf("%s-QC: matrix %d quality loss %v exceeds beta %v", alg, i, q, beta)
			}
		}
		if !clustersCover(res, ems.Len()) {
			t.Errorf("%s-QC clusters do not partition", alg)
		}
	}
}

func TestRunQCRejectsAsymmetric(t *testing.T) {
	ems := smallEMS(t) // directed RWR matrices are asymmetric
	if _, err := RunQC(ems, CLUDE, 0.1, Options{}); err == nil {
		t.Error("RunQC accepted an asymmetric EMS")
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	ems := smallEMS(t)
	if _, err := Run(ems, Algorithm("nope"), Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestQualityLossHelpers(t *testing.T) {
	ql := QualityLoss([]int{30, 45}, []int{30, 30})
	if ql[0] != 0 || ql[1] != 0.5 {
		t.Errorf("QualityLoss = %v, want [0 0.5]", ql)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 3}) != 2 {
		t.Error("Mean wrong")
	}
}

func TestPhaseTimesAccounted(t *testing.T) {
	ems := smallEMS(t)
	// Workers: 1 pins the sequential path, where the per-phase
	// breakdown and the wall clock measure the same execution (with
	// Workers > 1 the phases sum CPU time across the pool and may
	// legitimately exceed Wall).
	res, err := Run(ems, CLUDE, Options{Alpha: 0.95, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Times.Total() <= 0 {
		t.Error("no phase time recorded")
	}
	if res.Times.Total() > res.Wall*2 {
		t.Error("phase times exceed wall clock implausibly")
	}

	// The parallel path must still account nonzero phase time.
	par, err := Run(ems, CLUDE, Options{Alpha: 0.95, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Times.Total() <= 0 {
		t.Error("no phase time recorded under a worker pool")
	}
}
