package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
)

// retainEMS builds a small synthetic EMS for the retention tests.
func retainEMS(t *testing.T) *graph.EMS {
	t.Helper()
	egs, err := gen.Synthetic(gen.SyntheticConfig{
		V: 120, EP: 1000, D: 5, K: 4, DeltaE: 8, T: 12, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return graph.DeriveEMS(egs, graph.RWRMatrix(0.85))
}

// TestRetainFactorsOutliveRun pins every snapshot's solver via
// RetainFactors and verifies, after the run has finished (and the
// engine's in-place updates have long overwritten the live factors),
// that each retained solver still solves its own snapshot's system.
func TestRetainFactorsOutliveRun(t *testing.T) {
	ems := retainEMS(t)
	for _, workers := range []int{1, 4} {
		for _, alg := range []Algorithm{BF, INC, CINC, CLUDE} {
			solvers := make([]*lu.Solver, ems.Len())
			_, err := Run(ems, alg, Options{
				Alpha:         0.95,
				Workers:       workers,
				RetainFactors: true,
				OnFactors:     func(i int, s *lu.Solver) { solvers[i] = s },
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", alg, workers, err)
			}
			n := ems.N()
			for i, s := range solvers {
				if s == nil {
					t.Fatalf("%s workers=%d: snapshot %d not emitted", alg, workers, i)
				}
				b := sparse.Basis(n, i%n, 0.15)
				x := s.Solve(b)
				// Residual against the snapshot's own matrix.
				ax := ems.Matrices[i].MulVec(x)
				for j := range b {
					if d := ax[j] - b[j]; d > 1e-8 || d < -1e-8 {
						t.Fatalf("%s workers=%d snapshot %d: residual %g at row %d",
							alg, workers, i, d, j)
					}
				}
			}
		}
	}
}

// TestRetainFactorsClonesAreIndependent checks that a retained solver's
// answer does not drift as the engine updates the live factors for
// later cluster members: the solve at pin time and the solve after the
// run are bit-identical.
func TestRetainFactorsClonesAreIndependent(t *testing.T) {
	ems := retainEMS(t)
	n := ems.N()
	b := sparse.Basis(n, 7, 0.15)
	atPin := make([][]float64, ems.Len())
	solvers := make([]*lu.Solver, ems.Len())
	_, err := Run(ems, CLUDE, Options{
		Alpha:         0.95,
		RetainFactors: true,
		OnFactors: func(i int, s *lu.Solver) {
			atPin[i] = s.Solve(b)
			solvers[i] = s
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range solvers {
		after := s.Solve(b)
		for j := range after {
			if after[j] != atPin[i][j] {
				t.Fatalf("snapshot %d: retained solve drifted at %d: %v vs %v",
					i, j, after[j], atPin[i][j])
			}
		}
	}
}
