package lu

import (
	"math"
	"testing"

	"repro/internal/sparse"
	"repro/internal/xrand"
)

// randomDominant builds a strictly diagonally dominant sparse matrix —
// the class the EMS derivations produce — which is safely factorizable
// without pivoting.
func randomDominant(rng *xrand.Rand, n, extra int) *sparse.CSR {
	c := sparse.NewCOO(n)
	rowAbs := make([]float64, n)
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := rng.Float64()*2 - 1
		c.Add(i, j, v)
		rowAbs[i] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return c.ToCSR()
}

func TestFactorizeReconstructs(t *testing.T) {
	rng := xrand.New(500)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(25)
		a := randomDominant(rng, n, 4*n)
		sym := Symbolic(a.Pattern())
		f := NewStaticFactors(sym)
		if err := f.Factorize(a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !f.Reconstruct().EqualApprox(a, 1e-9) {
			t.Fatalf("trial %d: L·D·U != A", trial)
		}
	}
}

func TestFactorizeIdentity(t *testing.T) {
	a := sparse.Identity(7)
	f := NewStaticFactors(Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if f.D[i] != 1 {
			t.Errorf("D[%d] = %v, want 1", i, f.D[i])
		}
	}
	if len(f.LVal) != 0 || len(f.UVal) != 0 {
		t.Error("identity should have empty off-diagonal factors")
	}
}

func TestFactorizeKnown2x2(t *testing.T) {
	// A = [4 2; 6 9] = L·D·U with L=[1 0; 1.5 1], D=diag(4, 6), U=[1 .5; 0 1].
	a := sparse.NewCSRFromEntries(2, []sparse.Entry{
		{Row: 0, Col: 0, Val: 4}, {Row: 0, Col: 1, Val: 2},
		{Row: 1, Col: 0, Val: 6}, {Row: 1, Col: 1, Val: 9},
	})
	f := NewStaticFactors(Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.D[0]-4) > 1e-15 || math.Abs(f.D[1]-6) > 1e-12 {
		t.Errorf("D = %v, want [4 6]", f.D)
	}
	if math.Abs(f.LAt(1, 0)-1.5) > 1e-15 {
		t.Errorf("L(1,0) = %v, want 1.5", f.LAt(1, 0))
	}
	if math.Abs(f.UAt(0, 1)-0.5) > 1e-15 {
		t.Errorf("U(0,1) = %v, want 0.5", f.UAt(0, 1))
	}
}

func TestFactorizeSingularDetected(t *testing.T) {
	a := sparse.NewCSRFromEntries(2, []sparse.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
	})
	f := NewStaticFactors(Symbolic(a.Pattern()))
	err := f.Factorize(a)
	if err == nil {
		t.Fatal("singular matrix factorized without error")
	}
	if _, ok := err.(*SingularError); !ok {
		t.Fatalf("error type %T, want *SingularError", err)
	}
}

func TestSolveInPlace(t *testing.T) {
	rng := xrand.New(501)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		a := randomDominant(rng, n, 5*n)
		f := NewStaticFactors(Symbolic(a.Pattern()))
		if err := f.Factorize(a); err != nil {
			t.Fatal(err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Float64()*4 - 2
		}
		b := a.MulVec(want)
		f.SolveInPlace(b)
		if d := sparse.NormInfDiff(b, want); d > 1e-8 {
			t.Fatalf("trial %d: solve error %g", trial, d)
		}
	}
}

func TestFactorizeInUSSPSuperset(t *testing.T) {
	// Factorizing inside a strictly larger structure (as CLUDE does
	// with a cluster USSP) must give the same factors, with unused
	// positions left at zero.
	rng := xrand.New(502)
	n := 15
	a := randomDominant(rng, n, 3*n)
	b := randomDominant(rng, n, 3*n)
	union := a.Pattern().Union(b.Pattern())
	ussp := Symbolic(union)
	fU := NewStaticFactors(ussp)
	if err := fU.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if !fU.Reconstruct().EqualApprox(a, 1e-9) {
		t.Error("USSP-container factorization wrong")
	}
	// Tight container for comparison.
	fT := NewStaticFactors(Symbolic(a.Pattern()))
	if err := fT.Factorize(a); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	b1 := append([]float64(nil), x...)
	b2 := append([]float64(nil), x...)
	fU.SolveInPlace(b1)
	fT.SolveInPlace(b2)
	if sparse.NormInfDiff(b1, b2) > 1e-10 {
		t.Error("USSP and tight containers disagree on solve")
	}
	if fU.NNZActual() > fU.Size() {
		t.Error("NNZActual exceeds structure size")
	}
}

func TestRefactorizeReusesContainer(t *testing.T) {
	rng := xrand.New(503)
	n := 12
	a := randomDominant(rng, n, 3*n)
	f := NewStaticFactors(Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	first := f.Reconstruct()
	// Re-factorize the same matrix after garbage in the values.
	for i := range f.LVal {
		f.LVal[i] = 99
	}
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if !f.Reconstruct().EqualApprox(first, 0) {
		t.Error("refactorization not idempotent")
	}
}

func TestSolverWithOrdering(t *testing.T) {
	rng := xrand.New(504)
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(20)
		a := randomDominant(rng, n, 4*n)
		o := sparse.Ordering{Row: sparse.Perm(rng.Perm(n)), Col: sparse.Perm(rng.Perm(n))}
		// Reordered matrix may place small entries on the diagonal;
		// retry trials whose reordered form is not factorizable.
		s, err := FactorizeOrdered(a, o)
		if err != nil {
			continue
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Float64()*2 - 1
		}
		b := a.MulVec(want)
		got := s.Solve(b)
		if d := sparse.NormInfDiff(got, want); d > 1e-7 {
			t.Fatalf("trial %d: permuted solve error %g", trial, d)
		}
	}
}

func TestDynamicFactorsMatchStatic(t *testing.T) {
	rng := xrand.New(505)
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(20)
		a := randomDominant(rng, n, 4*n)
		f := NewStaticFactors(Symbolic(a.Pattern()))
		if err := f.Factorize(a); err != nil {
			t.Fatal(err)
		}
		d := NewDynamicFactors(f)
		if d.Size() != f.Size() {
			t.Fatalf("size mismatch: dynamic %d static %d", d.Size(), f.Size())
		}
		if !d.Reconstruct().EqualApprox(a, 1e-9) {
			t.Fatal("dynamic reconstruct != A")
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		b1 := append([]float64(nil), x...)
		b2 := append([]float64(nil), x...)
		f.SolveInPlace(b1)
		d.SolveInPlace(b2)
		if sparse.NormInfDiff(b1, b2) > 1e-12 {
			t.Fatal("dynamic and static solves disagree")
		}
	}
}

func TestDynamicInsert(t *testing.T) {
	a := sparse.Identity(4)
	f := NewStaticFactors(Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	d := NewDynamicFactors(f)
	d.InsertL(3, 0, 0.5)
	d.InsertL(2, 0, 0.25)
	d.InsertL(3, 0, 0.75) // overwrite
	if got := d.LAt(3, 0); got != 0.75 {
		t.Errorf("L(3,0) = %v, want 0.75", got)
	}
	if got := d.LAt(2, 0); got != 0.25 {
		t.Errorf("L(2,0) = %v, want 0.25", got)
	}
	if d.Inserts != 2 {
		t.Errorf("Inserts = %d, want 2", d.Inserts)
	}
	d.InsertU(0, 2, -1)
	d.InsertU(0, 1, -2)
	if got := d.UAt(0, 1); got != -2 {
		t.Errorf("U(0,1) = %v, want -2", got)
	}
	// Sorted order maintained.
	var cols []int
	for cur := d.UHead[0]; cur != -1; cur = d.Nodes[cur].Next {
		cols = append(cols, d.Nodes[cur].Idx)
	}
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 2 {
		t.Errorf("U row 0 order = %v, want [1 2]", cols)
	}
}

// TestFactorizeWithSharedWorkspace factors two different matrices
// through one Workspace and checks both against the allocating path.
func TestFactorizeWithSharedWorkspace(t *testing.T) {
	rng := xrand.New(321)
	var ws Workspace
	for trial := 0; trial < 4; trial++ {
		n := 10 + rng.Intn(30)
		a := randomDominant(rng, n, 3*n)
		sym := Symbolic(a.Pattern())
		plain := NewStaticFactors(sym)
		if err := plain.Factorize(a); err != nil {
			t.Fatal(err)
		}
		reused := NewStaticFactors(sym)
		if err := reused.FactorizeWith(a, &ws); err != nil {
			t.Fatal(err)
		}
		if !plain.Reconstruct().EqualApprox(reused.Reconstruct(), 1e-12) {
			t.Fatalf("trial %d: workspace factorization differs", trial)
		}
	}
}
