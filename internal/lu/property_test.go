package lu

import (
	"testing"
	"testing/quick"

	"repro/internal/sparse"
	"repro/internal/xrand"
)

// TestFactorSolveProperty: for random diagonally dominant matrices and
// random right-hand sides, factorization + solve reproduces the
// solution of the dense oracle (A·x compared against b).
func TestFactorSolveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(30)
		a := randomDominant(rng, n, 4*n)
		fac := NewStaticFactors(Symbolic(a.Pattern()))
		if err := fac.Factorize(a); err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*4 - 2
		}
		b := a.MulVec(x)
		fac.SolveInPlace(b)
		return sparse.NormInfDiff(b, x) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSymbolicCoversNumericProperty: the symbolic pattern always covers
// the numerically non-zero factor positions (sp(Â) ⊆ s̃p(A), §2.3).
func TestSymbolicCoversNumericProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(20)
		a := randomDominant(rng, n, 3*n)
		sym := Symbolic(a.Pattern())
		fac := NewStaticFactors(sym)
		if err := fac.Factorize(a); err != nil {
			return false
		}
		pat := sym.Pattern()
		for j := 0; j < n; j++ {
			for p := fac.LColPtr[j]; p < fac.LColPtr[j+1]; p++ {
				if fac.LVal[p] != 0 && !pat.Has(fac.LRowIdx[p], j) {
					return false
				}
			}
		}
		for i := 0; i < n; i++ {
			for p := fac.URowPtr[i]; p < fac.URowPtr[i+1]; p++ {
				if fac.UVal[p] != 0 && !pat.Has(i, fac.UColIdx[p]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestOrderingInvariantSolution: the solution of A·x = b must not
// depend on the ordering used to factor A.
func TestOrderingInvariantSolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 3 + rng.Intn(25)
		a := randomDominant(rng, n, 4*n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()
		}
		s1, err := FactorizeOrdered(a, sparse.IdentityOrdering(n))
		if err != nil {
			return false
		}
		o := sparse.SymmetricOrdering(rng.Perm(n))
		s2, err := FactorizeOrdered(a, o)
		if err != nil {
			// Random symmetric orderings keep the dominant diagonal as
			// pivots, so this should not happen.
			return false
		}
		return sparse.NormInfDiff(s1.Solve(b), s2.Solve(b)) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSolveLinearityProperty: solving is linear in the right-hand side.
func TestSolveLinearityProperty(t *testing.T) {
	rng := xrand.New(77)
	n := 25
	a := randomDominant(rng, n, 5*n)
	s, err := FactorizeOrdered(a, sparse.IdentityOrdering(n))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		b1 := make([]float64, n)
		b2 := make([]float64, n)
		both := make([]float64, n)
		c1, c2 := r.Float64()*3-1.5, r.Float64()*3-1.5
		for i := range b1 {
			b1[i] = r.Float64()
			b2[i] = r.Float64()
			both[i] = c1*b1[i] + c2*b2[i]
		}
		x1 := s.Solve(b1)
		x2 := s.Solve(b2)
		xb := s.Solve(both)
		for i := range xb {
			if d := xb[i] - c1*x1[i] - c2*x2[i]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDynamicStaticEquivalenceProperty: the two containers represent
// identical factorizations for any factorizable matrix.
func TestDynamicStaticEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(20)
		a := randomDominant(rng, n, 3*n)
		fs := NewStaticFactors(Symbolic(a.Pattern()))
		if err := fs.Factorize(a); err != nil {
			return false
		}
		fd := NewDynamicFactors(fs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i > j && fs.LAt(i, j) != fd.LAt(i, j) {
					return false
				}
				if i < j && fs.UAt(i, j) != fd.UAt(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
