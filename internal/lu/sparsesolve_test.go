// Property tests of the reach-based sparse solve path: SolveSparse
// must reproduce the dense Solve bit for bit on its reported support
// and the dense solution must be exactly zero everywhere else — across
// every factor state the pipelines produce (BF/INC/CINC/CLUDE) and
// after randomized Bennett update sequences on both containers.
//
// External test package: the scenarios drive internal/core and
// internal/bennett, which import lu.
package lu_test

import (
	"testing"

	"repro/internal/bennett"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// testEMS builds a small Wiki-like evolving matrix sequence.
func testEMS(t *testing.T) *graph.EMS {
	t.Helper()
	egs, err := gen.WikiSim(gen.WikiConfig{
		N: 150, T: 10, InitialEdges: 420, FinalEdges: 465,
		ChurnFrac: 0.25, EventRate: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return graph.DeriveEMS(egs, graph.RWRMatrix(0.85))
}

// checkSparseMatchesDense solves one right-hand side through both
// paths and asserts the bit-identity contract.
func checkSparseMatchesDense(t *testing.T, tag string, s *lu.Solver, bIdx []int, bVal []float64, ws *lu.SparseSolveWorkspace) {
	t.Helper()
	n := s.F.Dim()
	b := make([]float64, n)
	for k, u := range bIdx {
		b[u] += bVal[k]
	}
	dense := s.Solve(b)

	idx, val, ok := s.SolveSparse(bIdx, bVal, 0, ws)
	if !ok {
		t.Fatalf("%s: unlimited SolveSparse aborted", tag)
	}
	onSupport := make([]bool, n)
	for k, u := range idx {
		if onSupport[u] {
			t.Fatalf("%s: duplicate support index %d", tag, u)
		}
		onSupport[u] = true
		if val[k] != dense[u] {
			t.Fatalf("%s: x[%d] = %v sparse vs %v dense", tag, u, val[k], dense[u])
		}
	}
	for u := 0; u < n; u++ {
		if !onSupport[u] && dense[u] != 0 {
			t.Fatalf("%s: dense x[%d] = %v off the reported reach", tag, u, dense[u])
		}
	}
}

// randomRHS draws a single-seed or small multi-seed right-hand side.
func randomRHS(rng *xrand.Rand, n int) ([]int, []float64) {
	k := 1
	if rng.Intn(3) == 0 {
		k = 2 + rng.Intn(3)
	}
	idx := make([]int, k)
	val := make([]float64, k)
	for i := range idx {
		idx[i] = rng.Intn(n) // duplicates allowed: they must accumulate
		val[i] = 0.15 * (1 + rng.Float64())
	}
	return idx, val
}

// TestSolveSparseMatchesDenseAcrossAlgorithms pins every factor state
// the four pipelines emit and replays random right-hand sides through
// both solve paths.
func TestSolveSparseMatchesDenseAcrossAlgorithms(t *testing.T) {
	ems := testEMS(t)
	for _, alg := range []core.Algorithm{core.BF, core.INC, core.CINC, core.CLUDE} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			var solvers []*lu.Solver
			if _, err := core.Run(ems, alg, core.Options{
				Alpha:         0.95,
				RetainFactors: true,
				OnFactors:     func(i int, s *lu.Solver) { solvers = append(solvers, s) },
			}); err != nil {
				t.Fatal(err)
			}
			if len(solvers) != ems.Len() {
				t.Fatalf("retained %d solvers, want %d", len(solvers), ems.Len())
			}
			rng := xrand.New(31)
			var ws lu.SparseSolveWorkspace // shared across all solves on purpose
			for _, s := range solvers {
				for q := 0; q < 8; q++ {
					bIdx, bVal := randomRHS(rng, s.F.Dim())
					checkSparseMatchesDense(t, string(alg), s, bIdx, bVal, &ws)
				}
			}
		})
	}
}

// TestSolveSparseAfterRandomBennettSequences drives both containers
// through randomized jumps across the sequence (each jump one Bennett
// update batch, splicing fill into the dynamic container) and checks
// the contract after every jump.
func TestSolveSparseAfterRandomBennettSequences(t *testing.T) {
	ems := testEMS(t)

	// Static container over the USSP of the whole sequence, so any
	// jump's delta stays within the frozen structure (the CLUDE setup).
	union := ems.Matrices[0].Pattern()
	for _, m := range ems.Matrices[1:] {
		union = union.Union(m.Pattern())
	}
	ord := order.Markowitz(union).Ordering
	perm := make([]*sparse.CSR, ems.Len())
	for i, m := range ems.Matrices {
		perm[i] = m.Permute(ord)
	}
	static := lu.NewStaticFactors(lu.Symbolic(union.Permute(ord)))
	if err := static.Factorize(perm[0]); err != nil {
		t.Fatal(err)
	}

	// Dynamic container from the first matrix's own pattern (the INC
	// setup): updates splice genuinely new fill into the lists, which
	// must keep the column indices coherent.
	ord2 := order.Markowitz(ems.Matrices[0].Pattern()).Ordering
	perm2 := make([]*sparse.CSR, ems.Len())
	for i, m := range ems.Matrices {
		perm2[i] = m.Permute(ord2)
	}
	seed := lu.NewStaticFactors(lu.Symbolic(perm2[0].Pattern()))
	if err := seed.Factorize(perm2[0]); err != nil {
		t.Fatal(err)
	}
	dynamic := lu.NewDynamicFactors(seed)

	sSolver := &lu.Solver{F: static, O: ord}
	dSolver := &lu.Solver{F: dynamic, O: ord2}

	rng := xrand.New(99)
	var ws lu.SparseSolveWorkspace
	cur, cur2 := 0, 0
	for step := 0; step < 12; step++ {
		next := rng.Intn(ems.Len())
		if err := bennett.UpdateStatic(static, sparse.Delta(perm[cur], perm[next]), nil); err != nil {
			t.Fatal(err)
		}
		cur = next
		next2 := rng.Intn(ems.Len())
		if err := bennett.UpdateDynamic(dynamic, sparse.Delta(perm2[cur2], perm2[next2]), nil); err != nil {
			t.Fatal(err)
		}
		cur2 = next2

		for q := 0; q < 4; q++ {
			bIdx, bVal := randomRHS(rng, ems.N())
			checkSparseMatchesDense(t, "static", sSolver, bIdx, bVal, &ws)
			bIdx, bVal = randomRHS(rng, ems.N())
			checkSparseMatchesDense(t, "dynamic", dSolver, bIdx, bVal, &ws)
		}
	}
}

// TestSolveSparseReachCap: a cap below the true reach must abort before
// numeric work and leave the workspace reusable; a generous cap must
// succeed.
func TestSolveSparseReachCap(t *testing.T) {
	ems := testEMS(t)
	ord := order.Markowitz(ems.Matrices[0].Pattern()).Ordering
	s, err := lu.FactorizeOrdered(ems.Matrices[0], ord)
	if err != nil {
		t.Fatal(err)
	}
	var ws lu.SparseSolveWorkspace
	idx, _, ok := s.SolveSparse([]int{3}, []float64{0.15}, 0, &ws)
	if !ok {
		t.Fatal("unlimited solve aborted")
	}
	reach := len(idx)
	if reach < 2 {
		t.Skipf("degenerate reach %d", reach)
	}
	if _, _, ok := s.SolveSparse([]int{3}, []float64{0.15}, reach-1, &ws); ok {
		t.Fatalf("cap %d below reach %d did not abort", reach-1, reach)
	}
	// The workspace must still produce correct answers after an abort.
	checkSparseMatchesDense(t, "post-abort", s, []int{3}, []float64{0.15}, &ws)
	if idx2, _, ok := s.SolveSparse([]int{3}, []float64{0.15}, reach, &ws); !ok || len(idx2) != reach {
		t.Fatalf("cap == reach failed (ok=%v len=%d want %d)", ok, len(idx2), reach)
	}
}

// TestSolveIntoMatchesSolveWith: SolveInto must be bit-identical to
// SolveWith, reuse dst capacity, and tolerate dst aliasing b.
func TestSolveIntoMatchesSolveWith(t *testing.T) {
	ems := testEMS(t)
	ord := order.Markowitz(ems.Matrices[0].Pattern()).Ordering
	s, err := lu.FactorizeOrdered(ems.Matrices[0], ord)
	if err != nil {
		t.Fatal(err)
	}
	n := ems.N()
	var ws lu.SolveWorkspace
	b := make([]float64, n)
	b[7] = 0.15
	b[31] = 0.05
	want := s.SolveWith(b, &ws)

	dst := make([]float64, 0, n)
	got := s.SolveInto(dst, b, &ws)
	if &got[0] != &dst[:1][0] {
		t.Error("SolveInto did not reuse dst capacity")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SolveInto differs at %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Aliasing: build b in place and solve over itself.
	alias := make([]float64, n)
	alias[7] = 0.15
	alias[31] = 0.05
	got2 := s.SolveInto(alias, alias, &ws)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("aliased SolveInto differs at %d: %v vs %v", i, got2[i], want[i])
		}
	}
}
