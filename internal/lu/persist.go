package lu

import "fmt"

// This file is the persistence face of the factor containers: the
// store codec serializes only the primary structure (L by columns, U by
// rows, pivots, and — for the dynamic container — the node pool) and
// the assembly functions here deterministically rebuild every derived
// index (cross views, column mirrors), so a restored container is
// field-for-field identical to the one that was written. Keeping the
// derived indices out of the on-disk format halves snapshot size and
// makes internal consistency a construction invariant instead of a
// trusted input.

// AssembleStatic rebuilds a StaticFactors container from its primary
// structure, taking ownership of the slices. The cross views (L by
// rows, U by columns) are derived exactly as NewStaticFactors derives
// them, so assembling the primary arrays of an existing container
// yields a bit-identical copy. Corrupt input (indices out of range,
// unsorted columns, mismatched lengths) returns an error.
func AssembleStatic(n int, lColPtr, lRowIdx []int, lVal []float64, uRowPtr, uColIdx []int, uVal, d []float64) (*StaticFactors, error) {
	if n < 0 {
		return nil, fmt.Errorf("lu: negative dimension %d", n)
	}
	if err := checkTriangle("L", n, lColPtr, lRowIdx, len(lVal), true); err != nil {
		return nil, err
	}
	if err := checkTriangle("U", n, uRowPtr, uColIdx, len(uVal), false); err != nil {
		return nil, err
	}
	if len(d) != n {
		return nil, fmt.Errorf("lu: %d pivots for dimension %d", len(d), n)
	}
	f := &StaticFactors{
		n:       n,
		LColPtr: lColPtr, LRowIdx: lRowIdx, LVal: lVal,
		URowPtr: uRowPtr, UColIdx: uColIdx, UVal: uVal,
		D: d,
	}

	// Cross view of L by row. Scanning columns in ascending order emits
	// each row's columns ascending, matching NewStaticFactors (which
	// scans the per-row symbolic patterns, also ascending).
	lnnz := len(lRowIdx)
	f.LRowPtr = make([]int, n+1)
	for _, i := range lRowIdx {
		f.LRowPtr[i+1]++
	}
	for i := 0; i < n; i++ {
		f.LRowPtr[i+1] += f.LRowPtr[i]
	}
	f.LRowCols = make([]int, lnnz)
	f.LRowPos = make([]int, lnnz)
	next := make([]int, n)
	copy(next, f.LRowPtr[:n])
	for j := 0; j < n; j++ {
		for p := lColPtr[j]; p < lColPtr[j+1]; p++ {
			i := lRowIdx[p]
			w := next[i]
			f.LRowCols[w] = j
			f.LRowPos[w] = p
			next[i]++
		}
	}

	// Cross view of U by column, scanning rows ascending — identical to
	// the construction in NewStaticFactors.
	unnz := len(uColIdx)
	f.UColPtr = make([]int, n+1)
	for _, j := range uColIdx {
		f.UColPtr[j+1]++
	}
	for j := 0; j < n; j++ {
		f.UColPtr[j+1] += f.UColPtr[j]
	}
	f.UColRows = make([]int, unnz)
	f.UColPos = make([]int, unnz)
	next2 := make([]int, n)
	copy(next2, f.UColPtr[:n])
	for i := 0; i < n; i++ {
		for p := uRowPtr[i]; p < uRowPtr[i+1]; p++ {
			j := uColIdx[p]
			w := next2[j]
			f.UColRows[w] = i
			f.UColPos[w] = p
			next2[j]++
		}
	}
	return f, nil
}

// checkTriangle validates one strictly triangular compressed structure:
// ptr is the n+1 list pointer array, idx the minor indices (sorted
// strictly ascending per list, in range, strictly below/above the
// diagonal for lower=true/false).
func checkTriangle(name string, n int, ptr, idx []int, vals int, lower bool) error {
	if len(ptr) != n+1 {
		return fmt.Errorf("lu: %s pointer length %d for dimension %d", name, len(ptr), n)
	}
	if ptr[0] != 0 {
		return fmt.Errorf("lu: %s pointers must start at 0", name)
	}
	for k := 0; k < n; k++ {
		if ptr[k+1] < ptr[k] {
			return fmt.Errorf("lu: %s pointers not monotone at %d", name, k)
		}
	}
	if ptr[n] != len(idx) {
		return fmt.Errorf("lu: %s pointer end %d does not match %d indices", name, ptr[n], len(idx))
	}
	if vals != len(idx) {
		return fmt.Errorf("lu: %s has %d values for %d indices", name, vals, len(idx))
	}
	for k := 0; k < n; k++ {
		prev := -1
		for _, i := range idx[ptr[k]:ptr[k+1]] {
			if i < 0 || i >= n {
				return fmt.Errorf("lu: %s index %d of list %d outside [0,%d)", name, i, k, n)
			}
			if lower && i <= k {
				return fmt.Errorf("lu: %s entry (%d,%d) not strictly lower", name, i, k)
			}
			if !lower && i <= k {
				return fmt.Errorf("lu: %s entry (%d,%d) not strictly upper", name, k, i)
			}
			if i <= prev {
				return fmt.Errorf("lu: %s list %d not strictly ascending", name, k)
			}
			prev = i
		}
	}
	return nil
}

// AssembleDynamic rebuilds a DynamicFactors container from its node
// pool, list heads, pivots and profiling counters, taking ownership of
// the slices. The column-oriented pattern mirrors are rebuilt by
// walking the lists (both emit ascending indices, matching the
// maintained mirrors), so assembling the fields of an existing
// container yields a bit-identical copy. Corrupt input — dangling node
// references, unsorted or out-of-range lists, cycles — returns an
// error.
func AssembleDynamic(n int, nodes []ListNode, lHead, uHead []int, d []float64, inserts, scanSteps int) (*DynamicFactors, error) {
	if n < 0 {
		return nil, fmt.Errorf("lu: negative dimension %d", n)
	}
	if len(lHead) != n || len(uHead) != n || len(d) != n {
		return nil, fmt.Errorf("lu: head/pivot lengths (%d,%d,%d) for dimension %d", len(lHead), len(uHead), len(d), n)
	}
	dyn := &DynamicFactors{
		n:     n,
		Nodes: nodes,
		LHead: lHead, UHead: uHead,
		D:       d,
		Inserts: inserts, ScanSteps: scanSteps,
		lCols: make([][]int, n),
		uCols: make([][]int, n),
	}
	// Every node belongs to exactly one list, so the total walk is
	// bounded by the pool size; exceeding it means a cycle or shared
	// tail and the input is rejected.
	budget := len(nodes)
	walk := func(head int, strictLower bool, major int) ([]int, error) {
		var out []int
		prev := -1
		for cur := head; cur != -1; cur = nodes[cur].Next {
			if cur < 0 || cur >= len(nodes) {
				return nil, fmt.Errorf("lu: node reference %d outside pool of %d", cur, len(nodes))
			}
			if budget--; budget < 0 {
				return nil, fmt.Errorf("lu: node lists reference more cells than the pool holds")
			}
			idx := nodes[cur].Idx
			if idx < 0 || idx >= n {
				return nil, fmt.Errorf("lu: list index %d outside [0,%d)", idx, n)
			}
			if strictLower && idx <= major {
				return nil, fmt.Errorf("lu: L column %d holds non-lower row %d", major, idx)
			}
			if !strictLower && idx <= major {
				return nil, fmt.Errorf("lu: U row %d holds non-upper column %d", major, idx)
			}
			if idx <= prev {
				return nil, fmt.Errorf("lu: list of %d not strictly ascending", major)
			}
			prev = idx
			out = append(out, idx)
		}
		return out, nil
	}
	for j := 0; j < n; j++ {
		rows, err := walk(lHead[j], true, j)
		if err != nil {
			return nil, err
		}
		dyn.lCols[j] = rows
		dyn.lnnz += len(rows)
	}
	// The U mirrors are column-oriented: walking the row lists in
	// ascending row order appends each column's rows ascending, exactly
	// like NewDynamicFactors' construction.
	for i := 0; i < n; i++ {
		cols, err := walk(uHead[i], false, i)
		if err != nil {
			return nil, err
		}
		for _, j := range cols {
			dyn.uCols[j] = append(dyn.uCols[j], i)
		}
		dyn.unnz += len(cols)
	}
	return dyn, nil
}
