// Package lu implements sparse LU decomposition in the two-phase style
// the paper builds on (Duff, Erisman, Reid — "Direct Methods for Sparse
// Matrices"):
//
//  1. A symbolic decomposition (SD-phase) computes the fill-in pattern
//     fp(A) of Equation 2 and hence the symbolic sparsity pattern
//     s̃p(A) = sp(A) ∪ fp(A), which covers every position that can
//     become non-zero in the factors.
//  2. A numerical decomposition (ND-phase) computes the actual factor
//     values inside a structure prepared from the symbolic pattern.
//
// Factorization convention. We factor A = L·D·U with L unit lower
// triangular, D diagonal, and U unit upper triangular (Crout/LDU). The
// paper's L and U are recovered as L_paper = L·D and U_paper = U (or
// L·(DU) depending on normalization); the symbolic pattern and fill
// counts are identical, and the LDU form is the natural one for
// Bennett's incremental update. Pivots are fixed in advance by the
// ordering — the numeric phase never pivots, which is safe for the
// diagonally dominant matrices that evolving-graph measures produce and
// is exactly the model assumed by the paper. Singular or numerically
// tiny pivots are detected and reported as errors.
//
// Two factor containers are provided:
//
//   - StaticFactors: all index structure frozen up front from a
//     symbolic pattern (possibly a cluster-wide USSP as in CLUDE);
//     numeric phases and incremental updates only touch value arrays.
//   - DynamicFactors: per-column (L) and per-row (U) sorted
//     singly-linked adjacency lists, the structure the paper attributes
//     to the traditional incremental algorithm (INC/CINC); incremental
//     updates must scan and splice lists to insert new fill, which is
//     the dominating cost the paper profiles at ~70% of Bennett time.
package lu
