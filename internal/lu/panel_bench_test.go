package lu_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/xrand"
)

// Benchmarks of the blocked substitution kernels the serving layer
// routes between: the scalar column-by-column sweep and the supernodal
// panel-packed path, on the community-structured factors the panel
// layer is built for. Run with -count=1 (CI does) — the packed set is
// value-frozen, so iterations are pure substitution.

// benchStaticFactors factorizes the last snapshot of a small DBLP-like
// stream under the Markowitz ordering (the bench suite's setup, scaled
// to test time).
func benchStaticFactors(b *testing.B) *lu.StaticFactors {
	b.Helper()
	egs, err := gen.DBLPSim(gen.DBLPConfig{
		N: 600, T: 80, Communities: 3, InitialPapers: 500,
		PapersPerDay: 4, MaxCoauthors: 7, CrossCommunity: 0.05, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	ems := graph.DeriveEMS(egs, graph.SymmetricWalkMatrix(0.85))
	a := ems.Matrices[ems.Len()-1]
	s, err := lu.FactorizeOrdered(a, order.Markowitz(a.Pattern()).Ordering)
	if err != nil {
		b.Fatal(err)
	}
	f, ok := s.F.(*lu.StaticFactors)
	if !ok {
		b.Fatalf("want StaticFactors, got %T", s.F)
	}
	return f
}

func benchRHS(n, k int) [][]float64 {
	rng := xrand.New(177)
	xs := make([][]float64, k)
	for r := range xs {
		xs[r] = make([]float64, n)
		xs[r][rng.Intn(n)] = 0.15
	}
	return xs
}

func benchmarkSubstitution(b *testing.B, k int, panels bool) {
	f := benchStaticFactors(b)
	rhs := benchRHS(f.Dim(), k)
	work := make([][]float64, k)
	for r := range work {
		work[r] = make([]float64, f.Dim())
	}
	var ps *lu.PanelSet
	var ws lu.BlockWorkspace
	if panels {
		ps = lu.NewPanelSet(f, lu.DefaultPanelRelax, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := range work {
			copy(work[r], rhs[r])
		}
		if panels {
			ps.SolveBlockInPlace(work, &ws)
		} else {
			f.SolveBlockInPlace(work)
		}
	}
}

func BenchmarkSolveBlockScalarK8(b *testing.B) { benchmarkSubstitution(b, 8, false) }
func BenchmarkSolveBlockPanelsK8(b *testing.B) { benchmarkSubstitution(b, 8, true) }

func BenchmarkSolveBlockScalarK16(b *testing.B) { benchmarkSubstitution(b, 16, false) }
func BenchmarkSolveBlockPanelsK16(b *testing.B) { benchmarkSubstitution(b, 16, true) }
