package lu

import (
	"testing"

	"repro/internal/xrand"
)

// checkPartitionInvariants asserts the cover/contiguity contract of a
// panel partition: bounds start at 0, end at n, strictly increase, and
// respect the width cap; at relax 0 every in-panel column pair has
// identical below-panel L and U structure (no fill at all).
func checkPartitionInvariants(t *testing.T, f *StaticFactors, relax, maxWidth int, bounds []int) {
	t.Helper()
	capW := maxWidth
	if capW <= 0 {
		capW = DefaultPanelMaxWidth
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != f.n {
		t.Fatalf("bounds %v do not cover [0, %d)", bounds, f.n)
	}
	for p := 1; p < len(bounds); p++ {
		w := bounds[p] - bounds[p-1]
		if w <= 0 || w > capW {
			t.Fatalf("panel %d width %d violates (0, %d]", p-1, w, capW)
		}
		if relax != 0 {
			continue
		}
		for c := bounds[p-1] + 1; c < bounds[p]; c++ {
			if !panelMergeable(f, c, 0) {
				t.Fatalf("relax=0 panel [%d,%d) contains structurally unequal column %d",
					bounds[p-1], bounds[p], c)
			}
		}
	}
}

func fuzzFactors(seed uint64, n int) *StaticFactors {
	rng := xrand.New(seed)
	a := randomDominant(rng, n, 3*n)
	f := NewStaticFactors(Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		return nil
	}
	return f
}

// FuzzPartitionPanels drives the partitioner (and the packed solve it
// feeds) over random diagonally dominant factors with fuzzed
// relaxation and width caps: the partition must cover the columns in
// order, and the packed solve must stay bit-identical to the scalar
// sweep on a random block — the invariant every downstream consumer
// leans on.
func FuzzPartitionPanels(f *testing.F) {
	f.Add(uint64(1), 0, 0, 12)
	f.Add(uint64(2), 2, 4, 25)
	f.Add(uint64(3), 4, 1, 40)
	f.Add(uint64(4), 1, 64, 7)
	f.Fuzz(func(t *testing.T, seed uint64, relax, maxWidth, nRaw int) {
		n := 2 + abs(nRaw)%48
		relax = abs(relax) % 6
		maxWidth = abs(maxWidth) % 40 // 0 selects the default cap
		fac := fuzzFactors(seed, n)
		if fac == nil {
			t.Skip("singular draw")
		}
		bounds := PartitionPanels(fac, relax, maxWidth)
		checkPartitionInvariants(t, fac, relax, maxWidth, bounds)

		ps := NewPanelSet(fac, relax, maxWidth)
		rng := xrand.New(seed ^ 0x9e3779b97f4a7c15)
		k := 1 + int(seed%5)
		xs := make([][]float64, k)
		want := make([][]float64, k)
		for r := range xs {
			x := make([]float64, n)
			for i := range x {
				if rng.Intn(3) == 0 {
					x[i] = rng.Float64() - 0.5
				}
			}
			xs[r] = x
			want[r] = append([]float64(nil), x...)
		}
		fac.SolveBlockInPlace(want)
		ps.SolveBlockInPlace(xs, nil)
		for r := range xs {
			for i := range xs[r] {
				if xs[r][i] != want[r][i] {
					t.Fatalf("seed=%d relax=%d maxWidth=%d: rhs %d differs at %d: %v vs %v",
						seed, relax, maxWidth, r, i, xs[r][i], want[r][i])
				}
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestPartitionPanelsDegenerate pins the edge cases the serving layer
// can feed the partitioner: an empty factorization and a tiny one.
func TestPartitionPanelsDegenerate(t *testing.T) {
	empty := &StaticFactors{n: 0, LColPtr: []int{0}, URowPtr: []int{0}}
	bounds := PartitionPanels(empty, DefaultPanelRelax, 0)
	checkPartitionInvariants(t, empty, DefaultPanelRelax, 0, bounds)
	if ps := NewPanelSet(empty, DefaultPanelRelax, 0); ps.NumPanels() != 0 || ps.MeanWidth() != 0 {
		t.Fatalf("empty set: %d panels, mean width %v", ps.NumPanels(), ps.MeanWidth())
	}

	tiny := fuzzFactors(7, 2)
	if tiny == nil {
		t.Skip("singular draw")
	}
	bounds = PartitionPanels(tiny, DefaultPanelRelax, 0)
	checkPartitionInvariants(t, tiny, DefaultPanelRelax, 0, bounds)
	if ps := NewPanelSet(tiny, DefaultPanelRelax, 0); ps.NumPanels() == 0 {
		t.Fatal("no panels for a 2-column factorization")
	}
}
