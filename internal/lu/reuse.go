package lu

// Buffer-reusing deep copies of the factor containers. Clone allocates
// a fresh container every time; the history layer (bennett.HistoryLog +
// MaterializeInto) instead recycles one destination container across
// many materializations, so these CloneInto variants copy into existing
// backing arrays whenever their capacity suffices — the same shrink-
// reuse idiom as SolveWorkspace.vector. The copied container is
// bit-identical to src.Clone(): same lengths, same values, same node
// pool layout for the dynamic container (replayed Bennett updates
// splice nodes deterministically, so layout identity is what makes
// replay-on-a-copy reproduce the live container exactly).

func reuseInts(dst, src []int) []int {
	if cap(dst) < len(src) {
		dst = make([]int, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

func reuseFloats(dst, src []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

func reuseNodes(dst, src []ListNode) []ListNode {
	if cap(dst) < len(src) {
		dst = make([]ListNode, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

// CloneStaticInto copies src into dst, reusing dst's backing arrays
// when they are large enough. dst may be nil (a fresh container is
// allocated). Returns the destination.
func CloneStaticInto(dst, src *StaticFactors) *StaticFactors {
	if dst == nil {
		dst = &StaticFactors{}
	}
	dst.n = src.n
	dst.LColPtr = reuseInts(dst.LColPtr, src.LColPtr)
	dst.LRowIdx = reuseInts(dst.LRowIdx, src.LRowIdx)
	dst.LVal = reuseFloats(dst.LVal, src.LVal)
	dst.URowPtr = reuseInts(dst.URowPtr, src.URowPtr)
	dst.UColIdx = reuseInts(dst.UColIdx, src.UColIdx)
	dst.UVal = reuseFloats(dst.UVal, src.UVal)
	dst.D = reuseFloats(dst.D, src.D)
	dst.LRowPtr = reuseInts(dst.LRowPtr, src.LRowPtr)
	dst.LRowCols = reuseInts(dst.LRowCols, src.LRowCols)
	dst.LRowPos = reuseInts(dst.LRowPos, src.LRowPos)
	dst.UColPtr = reuseInts(dst.UColPtr, src.UColPtr)
	dst.UColRows = reuseInts(dst.UColRows, src.UColRows)
	dst.UColPos = reuseInts(dst.UColPos, src.UColPos)
	return dst
}

// CloneDynamicInto copies src into dst, reusing dst's backing arrays
// (including the per-column pattern index slices) when large enough.
// dst may be nil. Returns the destination.
func CloneDynamicInto(dst, src *DynamicFactors) *DynamicFactors {
	if dst == nil {
		dst = &DynamicFactors{}
	}
	dst.n = src.n
	dst.Nodes = reuseNodes(dst.Nodes, src.Nodes)
	dst.LHead = reuseInts(dst.LHead, src.LHead)
	dst.UHead = reuseInts(dst.UHead, src.UHead)
	dst.D = reuseFloats(dst.D, src.D)
	dst.lnnz = src.lnnz
	dst.unnz = src.unnz
	dst.Inserts = src.Inserts
	dst.ScanSteps = src.ScanSteps
	n := src.n
	if cap(dst.lCols) < n {
		dst.lCols = make([][]int, n)
	}
	if cap(dst.uCols) < n {
		dst.uCols = make([][]int, n)
	}
	dst.lCols = dst.lCols[:n]
	dst.uCols = dst.uCols[:n]
	for j := 0; j < n; j++ {
		dst.lCols[j] = reuseInts(dst.lCols[j], src.lCols[j])
		dst.uCols[j] = reuseInts(dst.uCols[j], src.uCols[j])
	}
	return dst
}

// CloneFactorsInto dispatches to the concrete CloneInto for the two
// container kinds. dst is reused when it has the same concrete type as
// src (otherwise a fresh container is allocated). Unknown Factors
// implementations fall back to src.Clone().
func CloneFactorsInto(dst, src Factors) Factors {
	switch s := src.(type) {
	case *StaticFactors:
		d, _ := dst.(*StaticFactors)
		return CloneStaticInto(d, s)
	case *DynamicFactors:
		d, _ := dst.(*DynamicFactors)
		return CloneDynamicInto(d, s)
	default:
		return src.Clone()
	}
}

// MemBytes estimates the heap bytes retained by a factor container:
// the sum of its backing arrays at their current lengths. It is the
// currency of the serve layer's history byte budget and the resident-
// bytes column of the history benchmark; an estimate (slice headers and
// spare capacity are not counted) applied consistently on both sides
// of every comparison.
func MemBytes(f Factors) int64 {
	const (
		intB   = 8
		fB     = 8
		nodeB  = 24 // ListNode: int + float64 + int
		hdrB   = 24 // slice header, counted once per per-column slice
		fixedB = 64 // struct scalars
	)
	switch t := f.(type) {
	case *StaticFactors:
		ints := len(t.LColPtr) + len(t.LRowIdx) + len(t.URowPtr) + len(t.UColIdx) +
			len(t.LRowPtr) + len(t.LRowCols) + len(t.LRowPos) +
			len(t.UColPtr) + len(t.UColRows) + len(t.UColPos)
		floats := len(t.LVal) + len(t.UVal) + len(t.D)
		return int64(fixedB + ints*intB + floats*fB)
	case *DynamicFactors:
		b := int64(fixedB + len(t.Nodes)*nodeB + (len(t.LHead)+len(t.UHead))*intB + len(t.D)*fB)
		for j := range t.lCols {
			b += int64(hdrB + len(t.lCols[j])*intB)
		}
		for j := range t.uCols {
			b += int64(hdrB + len(t.uCols[j])*intB)
		}
		return b
	default:
		return int64(f.Size()) * (intB + fB)
	}
}
