// Property tests of the blocked multi-RHS solve path: SolveBlock must
// reproduce k independent SolveWith calls bit for bit — across every
// factor state the pipelines produce (BF/INC/CINC/CLUDE), after
// randomized Bennett update sequences on both containers, for every
// block width the serving layer batches, and under the aliasing and
// capacity-reuse contracts the workers rely on.
//
// External test package, like the sparse-path harness it extends: the
// scenarios drive internal/core and internal/bennett, which import lu.
package lu_test

import (
	"testing"

	"repro/internal/bennett"
	"repro/internal/core"
	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// blockRHS draws k dense right-hand sides shaped like the serving
// layer's traffic: mostly sparse basis-like vectors (rwr/topk), some
// small seed sets (ppr), and the occasional fully dense one (pagerank).
func blockRHS(rng *xrand.Rand, k, n int) [][]float64 {
	bs := make([][]float64, k)
	for r := range bs {
		b := make([]float64, n)
		switch rng.Intn(4) {
		case 0: // seed set
			for s := 0; s < 2+rng.Intn(4); s++ {
				b[rng.Intn(n)] += 0.05 * (1 + rng.Float64())
			}
		case 1: // dense uniform
			v := 0.15 / float64(n)
			for i := range b {
				b[i] = v
			}
		default: // single seed
			b[rng.Intn(n)] = 0.15 * (1 + rng.Float64())
		}
		bs[r] = b
	}
	return bs
}

// checkBlockMatchesSingles solves the block both ways and asserts the
// bit-identity contract.
func checkBlockMatchesSingles(t *testing.T, tag string, s *lu.Solver, bs [][]float64, bws *lu.BlockWorkspace) {
	t.Helper()
	var sws lu.SolveWorkspace
	want := make([][]float64, len(bs))
	for r, b := range bs {
		want[r] = s.SolveWith(b, &sws)
	}
	got := s.SolveBlock(nil, bs, bws)
	for r := range bs {
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("%s: block k=%d rhs %d differs at %d: %v vs %v",
					tag, len(bs), r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestSolveBlockMatchesSolveWithAcrossAlgorithms pins every factor
// state the four pipelines emit and replays random blocks of every
// width the batching stage produces through both solve paths.
func TestSolveBlockMatchesSolveWithAcrossAlgorithms(t *testing.T) {
	ems := testEMS(t)
	for _, alg := range []core.Algorithm{core.BF, core.INC, core.CINC, core.CLUDE} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			var solvers []*lu.Solver
			if _, err := core.Run(ems, alg, core.Options{
				Alpha:         0.95,
				RetainFactors: true,
				OnFactors:     func(i int, s *lu.Solver) { solvers = append(solvers, s) },
			}); err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(41)
			var bws lu.BlockWorkspace // shared across widths on purpose
			for _, s := range solvers {
				for _, k := range []int{1, 2, 3, 8} {
					bs := blockRHS(rng, k, s.F.Dim())
					checkBlockMatchesSingles(t, string(alg), s, bs, &bws)
				}
			}
		})
	}
}

// TestSolveBlockAfterRandomBennettSequences drives both containers
// through randomized jumps across the sequence (each jump one Bennett
// update batch, splicing fill into the dynamic container) and checks
// the contract after every jump.
func TestSolveBlockAfterRandomBennettSequences(t *testing.T) {
	ems := testEMS(t)

	// Static container over the USSP of the whole sequence (the CLUDE
	// setup); dynamic container from the first matrix's own pattern
	// (the INC setup) — mirroring the sparse-path harness.
	union := ems.Matrices[0].Pattern()
	for _, m := range ems.Matrices[1:] {
		union = union.Union(m.Pattern())
	}
	ord := order.Markowitz(union).Ordering
	perm := make([]*sparse.CSR, ems.Len())
	for i, m := range ems.Matrices {
		perm[i] = m.Permute(ord)
	}
	static := lu.NewStaticFactors(lu.Symbolic(union.Permute(ord)))
	if err := static.Factorize(perm[0]); err != nil {
		t.Fatal(err)
	}

	ord2 := order.Markowitz(ems.Matrices[0].Pattern()).Ordering
	perm2 := make([]*sparse.CSR, ems.Len())
	for i, m := range ems.Matrices {
		perm2[i] = m.Permute(ord2)
	}
	seed := lu.NewStaticFactors(lu.Symbolic(perm2[0].Pattern()))
	if err := seed.Factorize(perm2[0]); err != nil {
		t.Fatal(err)
	}
	dynamic := lu.NewDynamicFactors(seed)

	sSolver := &lu.Solver{F: static, O: ord}
	dSolver := &lu.Solver{F: dynamic, O: ord2}

	rng := xrand.New(83)
	var bws lu.BlockWorkspace
	cur, cur2 := 0, 0
	for step := 0; step < 12; step++ {
		next := rng.Intn(ems.Len())
		if err := bennett.UpdateStatic(static, sparse.Delta(perm[cur], perm[next]), nil); err != nil {
			t.Fatal(err)
		}
		cur = next
		next2 := rng.Intn(ems.Len())
		if err := bennett.UpdateDynamic(dynamic, sparse.Delta(perm2[cur2], perm2[next2]), nil); err != nil {
			t.Fatal(err)
		}
		cur2 = next2

		k := 1 + rng.Intn(6)
		checkBlockMatchesSingles(t, "static", sSolver, blockRHS(rng, k, ems.N()), &bws)
		checkBlockMatchesSingles(t, "dynamic", dSolver, blockRHS(rng, k, ems.N()), &bws)
	}
}

// TestSolveBlockDstContract: SolveBlock must reuse dst capacity and
// tolerate dsts aliasing bs — the workers batch in place.
func TestSolveBlockDstContract(t *testing.T) {
	ems := testEMS(t)
	ord := order.Markowitz(ems.Matrices[0].Pattern()).Ordering
	s, err := lu.FactorizeOrdered(ems.Matrices[0], ord)
	if err != nil {
		t.Fatal(err)
	}
	n := ems.N()
	rng := xrand.New(5)
	bs := blockRHS(rng, 3, n)
	var sws lu.SolveWorkspace
	want := make([][]float64, len(bs))
	for r, b := range bs {
		want[r] = s.SolveWith(b, &sws)
	}

	// Capacity reuse.
	var bws lu.BlockWorkspace
	dsts := make([][]float64, 3)
	for r := range dsts {
		dsts[r] = make([]float64, 0, n)
	}
	got := s.SolveBlock(dsts, bs, &bws)
	for r := range got {
		if &got[r][0] != &dsts[r][:1][0] {
			t.Errorf("rhs %d: SolveBlock did not reuse dst capacity", r)
		}
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("rhs %d differs at %d", r, i)
			}
		}
	}

	// Aliasing: solve the block over its own right-hand sides.
	alias := blockRHS(xrand.New(5), 3, n)
	got2 := s.SolveBlock(alias, alias, &bws)
	for r := range got2 {
		for i := range want[r] {
			if got2[r][i] != want[r][i] {
				t.Fatalf("aliased rhs %d differs at %d: %v vs %v", r, i, got2[r][i], want[r][i])
			}
		}
	}
}
