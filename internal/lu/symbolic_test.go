package lu

import (
	"testing"

	"repro/internal/sparse"
	"repro/internal/xrand"
)

// bruteSymbolic computes s̃p(A) by explicit Gaussian-elimination
// closure: for k in increasing order, every (i > k, j > k) with
// (i, k) and (k, j) present becomes present. This is equivalent to the
// path characterization of Equation 2 and serves as the ground truth.
func bruteSymbolic(p *sparse.Pattern) [][]bool {
	n := p.N()
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
		m[i][i] = true // diagonal always in s̃p
		for _, j := range p.Row(i) {
			m[i][j] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if !m[i][k] {
				continue
			}
			for j := k + 1; j < n; j++ {
				if m[k][j] {
					m[i][j] = true
				}
			}
		}
	}
	return m
}

func randomPattern(rng *xrand.Rand, n, extra int) *sparse.Pattern {
	coords := make([]sparse.Coord, 0, n+extra)
	for i := 0; i < n; i++ {
		coords = append(coords, sparse.Coord{Row: i, Col: i})
	}
	for k := 0; k < extra; k++ {
		coords = append(coords, sparse.Coord{Row: rng.Intn(n), Col: rng.Intn(n)})
	}
	return sparse.NewPattern(n, coords)
}

func TestSymbolicMatchesBruteForce(t *testing.T) {
	rng := xrand.New(101)
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(18)
		p := randomPattern(rng, n, rng.Intn(4*n))
		sym := Symbolic(p)
		want := bruteSymbolic(p)
		got := sym.Pattern()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.Has(i, j) != want[i][j] {
					t.Fatalf("trial %d: s̃p(%d,%d) = %v, want %v", trial, i, j, got.Has(i, j), want[i][j])
				}
			}
		}
		// Size must agree too.
		wantSize := 0
		for i := range want {
			for j := range want[i] {
				if want[i][j] {
					wantSize++
				}
			}
		}
		if sym.Size() != wantSize {
			t.Fatalf("trial %d: Size = %d, want %d", trial, sym.Size(), wantSize)
		}
	}
}

func TestSymbolicKnownFillExample(t *testing.T) {
	// Arrow matrix pointing the wrong way: first row/col dense causes
	// complete fill below.
	n := 5
	coords := []sparse.Coord{}
	for i := 0; i < n; i++ {
		coords = append(coords, sparse.Coord{Row: i, Col: i})
		if i > 0 {
			coords = append(coords, sparse.Coord{Row: i, Col: 0}, sparse.Coord{Row: 0, Col: i})
		}
	}
	p := sparse.NewPattern(n, coords)
	sym := Symbolic(p)
	if sym.Size() != n*n {
		t.Errorf("arrow matrix should fill completely: size %d, want %d", sym.Size(), n*n)
	}
	// Reversed arrow (dense last row/col) has no fill at all.
	coords2 := []sparse.Coord{}
	for i := 0; i < n; i++ {
		coords2 = append(coords2, sparse.Coord{Row: i, Col: i})
		if i < n-1 {
			coords2 = append(coords2, sparse.Coord{Row: n - 1, Col: i}, sparse.Coord{Row: i, Col: n - 1})
		}
	}
	p2 := sparse.NewPattern(n, coords2)
	sym2 := Symbolic(p2)
	if sym2.FillCount(p2) != 0 {
		t.Errorf("reversed arrow should have zero fill, got %d", sym2.FillCount(p2))
	}
}

func TestSymbolicDiagonalOnly(t *testing.T) {
	p := randomPattern(xrand.New(1), 6, 0)
	sym := Symbolic(p)
	if sym.Size() != 6 {
		t.Errorf("diagonal matrix symbolic size = %d, want 6", sym.Size())
	}
	if sym.FillCount(p) != 0 {
		t.Error("diagonal matrix should have no fill")
	}
}

// Lemma 1 of the paper: sp(Aa) ⊆ sp(Ab) implies s̃p(Aa) ⊆ s̃p(Ab).
func TestMonotonicityLemma(t *testing.T) {
	rng := xrand.New(202)
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(15)
		a := randomPattern(rng, n, 2*n)
		// b = a plus extra coords.
		extra := randomPattern(rng, n, n)
		b := a.Union(extra)
		sa := Symbolic(a).Pattern()
		sb := Symbolic(b).Pattern()
		if !sa.Subset(sb) {
			t.Fatalf("trial %d: monotonicity violated", trial)
		}
	}
}

// Theorem 1: s̃p(A∪) is a USSP — it covers s̃p(Ai) for every member.
func TestUSSPTheorem(t *testing.T) {
	rng := xrand.New(303)
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(12)
		members := make([]*sparse.Pattern, 4)
		for i := range members {
			members[i] = randomPattern(rng, n, 3*n)
		}
		union := members[0]
		for _, m := range members[1:] {
			union = union.Union(m)
		}
		ussp := Symbolic(union).Pattern()
		for i, m := range members {
			if !Symbolic(m).Pattern().Subset(ussp) {
				t.Fatalf("trial %d: member %d not covered by USSP", trial, i)
			}
		}
	}
}

func TestSymbolicSizeUnderOrdering(t *testing.T) {
	rng := xrand.New(404)
	n := 12
	p := randomPattern(rng, n, 3*n)
	id := sparse.IdentityOrdering(n)
	if got, want := SymbolicSize(p, id), Symbolic(p).Size(); got != want {
		t.Errorf("SymbolicSize identity = %d, want %d", got, want)
	}
	// Any ordering: size must be at least n (diagonal) and at most n².
	o := sparse.Ordering{Row: sparse.Perm(rng.Perm(n)), Col: sparse.Perm(rng.Perm(n))}
	s := SymbolicSize(p, o)
	if s < n || s > n*n {
		t.Errorf("SymbolicSize out of range: %d", s)
	}
}

func TestFillCount(t *testing.T) {
	// Chain 0<-1<-2 pattern with (2,0),(0,2) forces fill at... compute
	// a tiny concrete case: positions (1,0),(0,1),(2,1),(1,2) + diag.
	p := sparse.NewPattern(3, []sparse.Coord{
		{Row: 0, Col: 0}, {Row: 1, Col: 1}, {Row: 2, Col: 2},
		{Row: 1, Col: 0}, {Row: 0, Col: 1}, {Row: 2, Col: 1}, {Row: 1, Col: 2},
	})
	sym := Symbolic(p)
	// Eliminating 0 adds nothing (only (1,0),(0,1)); eliminating 1 adds
	// (2,2) present, and (2,0)? (2,1) and (1,0) → wait elimination at 1
	// uses (i,1),(1,j) for i,j > 1: (2,1) and (1,2) → fill (2,2) which
	// is already present. So fill count 0... but path rule for (2,0):
	// needs intermediate < min(2,0)=0: impossible. Check via brute.
	want := bruteSymbolic(p)
	cnt := 0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if want[i][j] && !p.Has(i, j) && i != j {
				cnt++
			}
		}
	}
	if got := sym.FillCount(p); got != cnt {
		t.Errorf("FillCount = %d, want %d", got, cnt)
	}
}
