// Property tests of the supernodal panel solve path: SolvePanels must
// reproduce SolveWith and SolveBlockPanels must reproduce SolveBlock
// bit for bit — across every factor state the pipelines produce
// (BF/INC/CINC/CLUDE, including the DynamicFactors fallback), after
// randomized Bennett update sequences, for relaxation widths 0–4, and
// for every block width the serving layer batches (1–32 right-hand
// sides). Routing through panels must be purely an execution-schedule
// decision, exactly like blocking and the sparse path before it.
package lu_test

import (
	"testing"

	"repro/internal/bennett"
	"repro/internal/core"
	"repro/internal/lu"
	"repro/internal/order"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// panelKs are the RHS counts the panel contract is checked at.
var panelKs = []int{1, 2, 3, 8, 17, 32}

// checkPanelsMatchScalar solves the block through the panel path and
// the scalar paths and asserts bit-identity of every element.
func checkPanelsMatchScalar(t *testing.T, tag string, s *lu.Solver, bs [][]float64, bws *lu.BlockWorkspace) {
	t.Helper()
	var sws lu.SolveWorkspace
	want := make([][]float64, len(bs))
	for r, b := range bs {
		want[r] = s.SolveWith(b, &sws)
	}
	got := s.SolveBlockPanels(nil, bs, bws)
	for r := range bs {
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("%s: panels k=%d rhs %d differs at %d: %v vs %v",
					tag, len(bs), r, i, got[r][i], want[r][i])
			}
		}
	}
	one := s.SolvePanels(bs[0], bws)
	for i := range want[0] {
		if one[i] != want[0][i] {
			t.Fatalf("%s: SolvePanels differs at %d: %v vs %v", tag, i, one[i], want[0][i])
		}
	}
}

// checkPanelSetMatchesFactors compares a packed set against the source
// container's scalar block sweep on copies of the same vectors — the
// factor-level form of the contract, exercised per relaxation.
func checkPanelSetMatchesFactors(t *testing.T, tag string, f *lu.StaticFactors, ps *lu.PanelSet, xs [][]float64, bws *lu.BlockWorkspace) {
	t.Helper()
	want := make([][]float64, len(xs))
	for r, x := range xs {
		want[r] = append([]float64(nil), x...)
	}
	f.SolveBlockInPlace(want)
	ps.SolveBlockInPlace(xs, bws)
	for r := range xs {
		for i := range want[r] {
			if xs[r][i] != want[r][i] {
				t.Fatalf("%s: k=%d rhs %d differs at %d: %v vs %v",
					tag, len(xs), r, i, xs[r][i], want[r][i])
			}
		}
	}
}

// TestSolvePanelsMatchesSolveWithAcrossAlgorithms pins every factor
// state the four pipelines emit and replays random blocks through the
// panel path and the scalar path. INC/CINC retain DynamicFactors
// solvers, so this also covers the transparent fallback.
func TestSolvePanelsMatchesSolveWithAcrossAlgorithms(t *testing.T) {
	ems := testEMS(t)
	for _, alg := range []core.Algorithm{core.BF, core.INC, core.CINC, core.CLUDE} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			var solvers []*lu.Solver
			if _, err := core.Run(ems, alg, core.Options{
				Alpha:         0.95,
				RetainFactors: true,
				OnFactors:     func(i int, s *lu.Solver) { solvers = append(solvers, s) },
			}); err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(59)
			var bws lu.BlockWorkspace // shared across widths on purpose
			for _, s := range solvers {
				for _, k := range panelKs {
					bs := blockRHS(rng, k, s.F.Dim())
					checkPanelsMatchScalar(t, string(alg), s, bs, &bws)
				}
			}
		})
	}
}

// TestPanelSolveRelaxationWidths packs one static container at every
// relaxation the knob exposes (plus a narrow max width) and checks the
// factor-level contract at every block width.
func TestPanelSolveRelaxationWidths(t *testing.T) {
	ems := testEMS(t)
	union := ems.Matrices[0].Pattern()
	for _, m := range ems.Matrices[1:] {
		union = union.Union(m.Pattern())
	}
	ord := order.Markowitz(union).Ordering
	static := lu.NewStaticFactors(lu.Symbolic(union.Permute(ord)))
	if err := static.Factorize(ems.Matrices[0].Permute(ord)); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(67)
	var bws lu.BlockWorkspace
	n := ems.N()
	for relax := 0; relax <= 4; relax++ {
		for _, maxWidth := range []int{0, 4} {
			ps := lu.NewPanelSet(static, relax, maxWidth)
			if got := ps.Bounds(); got[len(got)-1] != n {
				t.Fatalf("relax=%d: bounds end %d, want %d", relax, got[len(got)-1], n)
			}
			for _, k := range panelKs {
				xs := blockRHS(rng, k, n)
				checkPanelSetMatchesFactors(t, "relax", static, ps, xs, &bws)
			}
		}
	}
}

// TestPanelSolveAfterRandomBennettSequences drives the static container
// through randomized Bennett jumps, repacking after each (panels
// snapshot values, so an update invalidates the previous set), cycling
// the relaxation, and checks the contract after every jump. The
// dynamic container rides along through the solver-level fallback.
func TestPanelSolveAfterRandomBennettSequences(t *testing.T) {
	ems := testEMS(t)

	union := ems.Matrices[0].Pattern()
	for _, m := range ems.Matrices[1:] {
		union = union.Union(m.Pattern())
	}
	ord := order.Markowitz(union).Ordering
	perm := make([]*sparse.CSR, ems.Len())
	for i, m := range ems.Matrices {
		perm[i] = m.Permute(ord)
	}
	static := lu.NewStaticFactors(lu.Symbolic(union.Permute(ord)))
	if err := static.Factorize(perm[0]); err != nil {
		t.Fatal(err)
	}

	ord2 := order.Markowitz(ems.Matrices[0].Pattern()).Ordering
	perm2 := make([]*sparse.CSR, ems.Len())
	for i, m := range ems.Matrices {
		perm2[i] = m.Permute(ord2)
	}
	seed := lu.NewStaticFactors(lu.Symbolic(perm2[0].Pattern()))
	if err := seed.Factorize(perm2[0]); err != nil {
		t.Fatal(err)
	}
	dynamic := lu.NewDynamicFactors(seed)
	dSolver := &lu.Solver{F: dynamic, O: ord2}

	rng := xrand.New(97)
	var bws lu.BlockWorkspace
	cur, cur2 := 0, 0
	for step := 0; step < 12; step++ {
		next := rng.Intn(ems.Len())
		if err := bennett.UpdateStatic(static, sparse.Delta(perm[cur], perm[next]), nil); err != nil {
			t.Fatal(err)
		}
		cur = next
		next2 := rng.Intn(ems.Len())
		if err := bennett.UpdateDynamic(dynamic, sparse.Delta(perm2[cur2], perm2[next2]), nil); err != nil {
			t.Fatal(err)
		}
		cur2 = next2

		k := 1 + rng.Intn(8)
		ps := lu.NewPanelSet(static, step%5, 0)
		checkPanelSetMatchesFactors(t, "bennett", static, ps, blockRHS(rng, k, ems.N()), &bws)
		checkPanelsMatchScalar(t, "dynamic-fallback", dSolver, blockRHS(rng, k, ems.N()), &bws)
	}
}

// TestPanelSetStats sanity-checks the packing accounting the serving
// metrics and the bench report expose.
func TestPanelSetStats(t *testing.T) {
	ems := testEMS(t)
	ord := order.Markowitz(ems.Matrices[0].Pattern()).Ordering
	s, err := lu.FactorizeOrdered(ems.Matrices[0], ord)
	if err != nil {
		t.Fatal(err)
	}
	ps, built := s.PanelsBuild()
	if !built || ps == nil {
		t.Fatalf("PanelsBuild on a static solver: ps=%v built=%v", ps, built)
	}
	if _, again := s.PanelsBuild(); again {
		t.Fatal("second PanelsBuild reported built")
	}
	n := ems.N()
	b := ps.Bounds()
	if b[0] != 0 || b[len(b)-1] != n || ps.NumPanels() != len(b)-1 {
		t.Fatalf("bounds %v inconsistent for n=%d, panels=%d", b, n, ps.NumPanels())
	}
	hist := ps.WidthHistogram()
	panels, cols, covered := 0, 0, 0
	for w, c := range hist {
		panels += c
		cols += w * c
		if w >= 2 {
			covered += w * c
		}
	}
	if panels != ps.NumPanels() || cols != n || covered != ps.ColsCovered() {
		t.Fatalf("histogram %v: panels=%d cols=%d covered=%d, want %d/%d/%d",
			hist, panels, cols, covered, ps.NumPanels(), n, ps.ColsCovered())
	}
	if mw := ps.MeanWidth(); mw < 1 || mw > float64(ps.MaxWidth()) {
		t.Fatalf("mean width %v outside [1, %d]", mw, ps.MaxWidth())
	}
	if ff := ps.FillFrac(); ff < 0 || ff >= 1 {
		t.Fatalf("fill fraction %v outside [0, 1)", ff)
	}
}

// TestBlockWorkspaceShrinkGrowReuse is the satellite alloc-regression
// contract: a workspace warmed at width k must solve at any width <= k
// — including shrink-then-regrow sequences — without allocating, on
// both the scalar and the panel path.
func TestBlockWorkspaceShrinkGrowReuse(t *testing.T) {
	ems := testEMS(t)
	ord := order.Markowitz(ems.Matrices[0].Pattern()).Ordering
	s, err := lu.FactorizeOrdered(ems.Matrices[0], ord)
	if err != nil {
		t.Fatal(err)
	}
	n := ems.N()
	rng := xrand.New(29)
	var bws lu.BlockWorkspace
	dsts := make([][]float64, 16)
	for r := range dsts {
		dsts[r] = make([]float64, n)
	}
	s.Panels() // pack outside the measured region

	// Warm at 16, shrink to 2, then measure regrowth to 16: the
	// workspace must serve hidden capacity, not reallocate it.
	for _, k := range []int{16, 2} {
		s.SolveBlock(dsts[:k], blockRHS(rng, k, n), &bws)
		s.SolveBlockPanels(dsts[:k], blockRHS(rng, k, n), &bws)
	}
	bs := blockRHS(rng, 16, n)
	for name, solve := range map[string]func(){
		"SolveBlock":       func() { s.SolveBlock(dsts, bs, &bws) },
		"SolveBlockPanels": func() { s.SolveBlockPanels(dsts, bs, &bws) },
	} {
		if allocs := testing.AllocsPerRun(20, solve); allocs > 0 {
			t.Errorf("%s after shrink/grow: %v allocs per block, want 0", name, allocs)
		}
	}
}
