package lu

import (
	"container/heap"

	"repro/internal/sparse"
)

// SymbolicLU is the result of the SD-phase: the symbolic sparsity
// pattern s̃p(A) = sp(A) ∪ fp(A) of Equations 2–3, split into the
// strictly-lower (L) and strictly-upper (U) parts plus the implicit
// full diagonal. The pattern covers sp(Â) for the decomposed Â = L+U
// (paper §2.3), so factor storage prepared from it never needs to grow
// during the ND-phase.
type SymbolicLU struct {
	n     int
	lrows [][]int // per row i: sorted columns j < i with (i,j) in pattern
	urows [][]int // per row i: sorted columns j > i with (i,j) in pattern
}

// Symbolic runs the SD-phase on the pattern of an already-reordered
// matrix. The diagonal is always included in the symbolic pattern
// regardless of whether the input stores it.
//
// The algorithm is row-by-row fill propagation: the pattern of row i of
// the factors is the closure of sp(A(i,:)) under "merge U-row j for
// every j < i reachable so far", processed in increasing column order
// with a binary heap. This computes exactly the fill-in pattern of
// Equation 2 (paths through vertices with indices smaller than both
// endpoints).
func Symbolic(p *sparse.Pattern) *SymbolicLU {
	n := p.N()
	s := &SymbolicLU{
		n:     n,
		lrows: make([][]int, n),
		urows: make([][]int, n),
	}
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	var h intHeap
	for i := 0; i < n; i++ {
		h = h[:0]
		for _, j := range p.Row(i) {
			if mark[j] != i {
				mark[j] = i
				h = append(h, j)
			}
		}
		heap.Init(&h)
		var lr, ur []int
		for h.Len() > 0 {
			j := heap.Pop(&h).(int)
			switch {
			case j < i:
				lr = append(lr, j)
				for _, k := range s.urows[j] {
					if mark[k] != i {
						mark[k] = i
						heap.Push(&h, k)
					}
				}
			case j > i:
				ur = append(ur, j)
			}
			// j == i (the diagonal) is implicit.
		}
		s.lrows[i] = lr
		s.urows[i] = ur
	}
	return s
}

// N returns the matrix dimension.
func (s *SymbolicLU) N() int { return s.n }

// LRow returns the sorted strictly-lower pattern of row i.
func (s *SymbolicLU) LRow(i int) []int { return s.lrows[i] }

// URow returns the sorted strictly-upper pattern of row i.
func (s *SymbolicLU) URow(i int) []int { return s.urows[i] }

// Size returns |s̃p(A)|: all strictly-lower and strictly-upper
// positions plus the n diagonal positions. This is the paper's quality
// quantity (Definitions 4–5 compare these sizes).
func (s *SymbolicLU) Size() int {
	total := s.n
	for i := 0; i < s.n; i++ {
		total += len(s.lrows[i]) + len(s.urows[i])
	}
	return total
}

// FillCount returns |fp(A)| = |s̃p(A)| − |sp(A) ∪ diag|: the number of
// fill-in positions introduced by elimination beyond the original
// pattern (with the diagonal counted as always present).
func (s *SymbolicLU) FillCount(orig *sparse.Pattern) int {
	fill := 0
	for i := 0; i < s.n; i++ {
		for _, j := range s.lrows[i] {
			if !orig.Has(i, j) {
				fill++
			}
		}
		for _, j := range s.urows[i] {
			if !orig.Has(i, j) {
				fill++
			}
		}
	}
	return fill
}

// Pattern materializes the full symbolic pattern (including the
// diagonal) as a sparse.Pattern.
func (s *SymbolicLU) Pattern() *sparse.Pattern {
	coords := make([]sparse.Coord, 0, s.Size())
	for i := 0; i < s.n; i++ {
		for _, j := range s.lrows[i] {
			coords = append(coords, sparse.Coord{Row: i, Col: j})
		}
		coords = append(coords, sparse.Coord{Row: i, Col: i})
		for _, j := range s.urows[i] {
			coords = append(coords, sparse.Coord{Row: i, Col: j})
		}
	}
	return sparse.NewPattern(s.n, coords)
}

// SymbolicSize is a convenience wrapper: |s̃p(A^O)| for matrix pattern
// p under ordering o. It is how the harness scores the quality of an
// ordering on a matrix (Definition 4) without numeric work.
func SymbolicSize(p *sparse.Pattern, o sparse.Ordering) int {
	return Symbolic(p.Permute(o)).Size()
}

// intHeap is a min-heap of ints (container/heap plumbing).
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
