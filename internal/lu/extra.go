package lu

import (
	"math"

	"repro/internal/sparse"
)

// The helpers in this file are conveniences a downstream user of the
// factorization needs in practice: determinants (free from D), batched
// and refined solves, and a cheap condition diagnostic. None of them
// alter the factors.

// LogDet returns log|det(A)| and the sign of the determinant computed
// from the pivots of the (reordered) factorization, adjusted by the
// ordering's permutation signs. A zero sign means a pivot was exactly
// zero (which the factorizers reject, so it indicates misuse).
func (s *Solver) LogDet() (logAbs float64, sign int) {
	sign = permSign(s.O.Row) * permSign(s.O.Col)
	var d []float64
	switch f := s.F.(type) {
	case *StaticFactors:
		d = f.D
	case *DynamicFactors:
		d = f.D
	default:
		panic("lu: unknown factor container")
	}
	for _, v := range d {
		if v == 0 {
			return math.Inf(-1), 0
		}
		if v < 0 {
			sign = -sign
			v = -v
		}
		logAbs += math.Log(v)
	}
	return logAbs, sign
}

// permSign computes the parity of a permutation (+1 even, −1 odd) by
// cycle counting.
func permSign(p sparse.Perm) int {
	seen := make([]bool, len(p))
	sign := 1
	for i := range p {
		if seen[i] {
			continue
		}
		length := 0
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			length++
		}
		if length%2 == 0 {
			sign = -sign
		}
	}
	return sign
}

// SolveMany solves A·X = B column by column, reusing the factors. Each
// element of bs is one right-hand side; the result has the same shape.
// This is the "many queries per snapshot" pattern the paper motivates
// (one b per measure query).
func (s *Solver) SolveMany(bs [][]float64) [][]float64 {
	out := make([][]float64, len(bs))
	for i, b := range bs {
		out[i] = s.Solve(b)
	}
	return out
}

// SolveRefined performs one step of iterative refinement: solve, form
// the residual r = b − A·x against the *original* matrix a, solve the
// correction, and return x + δ along with the final residual ∞-norm.
// Useful after long Bennett update chains to squeeze accumulated
// update error back to solver precision.
func (s *Solver) SolveRefined(a *sparse.CSR, b []float64) ([]float64, float64) {
	x := s.Solve(b)
	ax := a.MulVec(x)
	r := make([]float64, len(b))
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	d := s.Solve(r)
	for i := range x {
		x[i] += d[i]
	}
	ax = a.MulVec(x)
	res := 0.0
	for i := range b {
		if v := math.Abs(b[i] - ax[i]); v > res {
			res = v
		}
	}
	return x, res
}

// PivotRange returns the smallest and largest pivot magnitudes — a
// cheap growth/conditioning diagnostic (a huge ratio warns that the
// no-pivoting factorization may be inaccurate for this matrix class).
func PivotRange(f Factors) (minAbs, maxAbs float64) {
	var d []float64
	switch t := f.(type) {
	case *StaticFactors:
		d = t.D
	case *DynamicFactors:
		d = t.D
	default:
		panic("lu: unknown factor container")
	}
	minAbs, maxAbs = math.Inf(1), 0
	for _, v := range d {
		a := math.Abs(v)
		if a < minAbs {
			minAbs = a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	return minAbs, maxAbs
}
