package lu

import (
	"math"
	"testing"

	"repro/internal/sparse"
	"repro/internal/xrand"
)

// denseDet computes a determinant by cofactor-free Gaussian elimination
// with partial pivoting (test oracle, small n only).
func denseDet(a *sparse.CSR) float64 {
	n := a.N()
	m := a.Dense()
	det := 1.0
	for k := 0; k < n; k++ {
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(m[i][k]) > math.Abs(m[p][k]) {
				p = i
			}
		}
		if m[p][k] == 0 {
			return 0
		}
		if p != k {
			m[p], m[k] = m[k], m[p]
			det = -det
		}
		det *= m[k][k]
		for i := k + 1; i < n; i++ {
			f := m[i][k] / m[k][k]
			for j := k; j < n; j++ {
				m[i][j] -= f * m[k][j]
			}
		}
	}
	return det
}

func TestLogDetMatchesDense(t *testing.T) {
	rng := xrand.New(2000)
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(10)
		a := randomDominant(rng, n, 3*n)
		o := sparse.Ordering{Row: sparse.Perm(rng.Perm(n)), Col: sparse.Perm(rng.Perm(n))}
		s, err := FactorizeOrdered(a, o)
		if err != nil {
			continue
		}
		logAbs, sign := s.LogDet()
		want := denseDet(a)
		got := float64(sign) * math.Exp(logAbs)
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("trial %d: det = %v, want %v", trial, got, want)
		}
	}
}

func TestPermSign(t *testing.T) {
	if permSign(sparse.IdentityPerm(5)) != 1 {
		t.Error("identity should be even")
	}
	if permSign(sparse.Perm{1, 0, 2}) != -1 {
		t.Error("single swap should be odd")
	}
	if permSign(sparse.Perm{1, 2, 0}) != 1 {
		t.Error("3-cycle should be even")
	}
}

func TestSolveMany(t *testing.T) {
	rng := xrand.New(2001)
	n := 20
	a := randomDominant(rng, n, 4*n)
	s, err := FactorizeOrdered(a, sparse.IdentityOrdering(n))
	if err != nil {
		t.Fatal(err)
	}
	bs := make([][]float64, 3)
	want := make([][]float64, 3)
	for k := range bs {
		want[k] = make([]float64, n)
		for i := range want[k] {
			want[k][i] = rng.Float64()
		}
		bs[k] = a.MulVec(want[k])
	}
	got := s.SolveMany(bs)
	for k := range got {
		if sparse.NormInfDiff(got[k], want[k]) > 1e-8 {
			t.Fatalf("rhs %d wrong", k)
		}
	}
}

func TestSolveRefinedImproves(t *testing.T) {
	rng := xrand.New(2002)
	n := 30
	a := randomDominant(rng, n, 5*n)
	s, err := FactorizeOrdered(a, sparse.IdentityOrdering(n))
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the factors slightly to mimic accumulated update error.
	sf := s.F.(*StaticFactors)
	for i := range sf.LVal {
		sf.LVal[i] *= 1 + 1e-7
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.Float64()
	}
	b := a.MulVec(want)
	plain := s.Solve(b)
	refined, res := s.SolveRefined(a, b)
	if sparse.NormInfDiff(refined, want) > sparse.NormInfDiff(plain, want) {
		t.Error("refinement made the solution worse")
	}
	if res > 1e-9 {
		t.Errorf("refined residual %g too large", res)
	}
}

func TestPivotRange(t *testing.T) {
	rng := xrand.New(2003)
	a := randomDominant(rng, 15, 40)
	f := NewStaticFactors(Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	lo, hi := PivotRange(f)
	if lo <= 0 || hi < lo {
		t.Errorf("pivot range (%v,%v) implausible", lo, hi)
	}
	d := NewDynamicFactors(f)
	lo2, hi2 := PivotRange(d)
	if lo2 != lo || hi2 != hi {
		t.Error("dynamic pivot range differs from static")
	}
}
