package lu

import "repro/internal/sparse"

// Factors is the common interface of the two factor containers: enough
// to solve systems, to measure structural size, and to snapshot the
// numeric state for retention beyond the engine's in-place updates.
type Factors interface {
	Dim() int
	Size() int
	SolveInPlace(b []float64)
	Reconstruct() *sparse.CSR
	// Clone returns a deep copy sharing no mutable state with the
	// receiver; the copy stays valid while the original keeps being
	// updated in place.
	Clone() Factors
}

// Compile-time interface checks.
var (
	_ Factors = (*StaticFactors)(nil)
	_ Factors = (*DynamicFactors)(nil)
)

// Solver couples LU factors of a *reordered* matrix A^O = P·A·Q with
// the ordering O, and solves the original system A·x = b:
//
//	A^O·(Q⁻¹x) = P·b   ⇒   x = Q·solve(P·b)
//
// (§2.2 of the paper). Applying the permutations costs O(n).
type Solver struct {
	F Factors
	O sparse.Ordering
}

// Solve returns x with A·x = b, leaving b untouched.
func (s *Solver) Solve(b []float64) []float64 {
	bp := s.O.Row.Apply(b) // b' = P·b
	s.F.SolveInPlace(bp)   // x' = (A^O)⁻¹ b'
	return s.O.Col.Scatter(bp)
}

// Clone deep-copies the factors so the returned solver stays valid
// after the original's factors are updated in place. The ordering is
// shared: it is immutable once constructed.
func (s *Solver) Clone() *Solver {
	return &Solver{F: s.F.Clone(), O: s.O}
}

// SolveWorkspace holds the permuted intermediate vector of a solve so
// query-serving workers answering many right-hand sides allocate only
// the result, not the scratch. The zero value is ready to use; a
// workspace must not be shared between concurrent solves.
type SolveWorkspace struct {
	w []float64
}

// vector returns the scratch vector, (re)allocating when the dimension
// changes. SolveWith overwrites every position before reading it.
func (ws *SolveWorkspace) vector(n int) []float64 {
	if len(ws.w) != n {
		ws.w = make([]float64, n)
	}
	return ws.w
}

// SolveWith is Solve with caller-owned scratch: it permutes b into the
// workspace, solves in place, and scatters into a fresh result. The
// returned vector is bit-identical to Solve's for the same b.
func (s *Solver) SolveWith(b []float64, ws *SolveWorkspace) []float64 {
	n := len(s.O.Row)
	w := ws.vector(n)
	for i, v := range s.O.Row {
		w[i] = b[v] // b' = P·b
	}
	s.F.SolveInPlace(w)
	out := make([]float64, n)
	for i, v := range s.O.Col {
		out[v] = w[i] // x = Q·x'
	}
	return out
}

// SolveBatch solves A·X = B for many right-hand sides through one
// workspace — the batched multi-source path of the serving layer (one
// b per measure query, factors reused across all of them).
func (s *Solver) SolveBatch(bs [][]float64, ws *SolveWorkspace) [][]float64 {
	out := make([][]float64, len(bs))
	for i, b := range bs {
		out[i] = s.SolveWith(b, ws)
	}
	return out
}

// FactorizeOrdered is the one-call convenience used throughout the
// harness: reorder a by o, run symbolic + numeric decomposition into a
// fresh static container, and return a ready Solver.
func FactorizeOrdered(a *sparse.CSR, o sparse.Ordering) (*Solver, error) {
	ao := a.Permute(o)
	sym := Symbolic(ao.Pattern())
	f := NewStaticFactors(sym)
	if err := f.Factorize(ao); err != nil {
		return nil, err
	}
	return &Solver{F: f, O: o}, nil
}
