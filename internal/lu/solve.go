package lu

import (
	"sync"

	"repro/internal/sparse"
)

// Factors is the common interface of the two factor containers: enough
// to solve systems (dense and reach-restricted), to measure structural
// size, and to snapshot the numeric state for retention beyond the
// engine's in-place updates.
type Factors interface {
	Dim() int
	Size() int
	SolveInPlace(b []float64)
	Reconstruct() *sparse.CSR
	// Clone returns a deep copy sharing no mutable state with the
	// receiver; the copy stays valid while the original keeps being
	// updated in place.
	Clone() Factors

	// LSucc returns the rows fed by column j of L — the successors of j
	// in the forward-substitution dependency graph (all > j, sorted
	// ascending). The slice aliases internal storage and must not be
	// modified.
	LSucc(j int) []int
	// USucc returns the rows of column j of U — the successors of j in
	// the backward-substitution dependency graph (all < j, sorted
	// ascending). The slice aliases internal storage and must not be
	// modified.
	USucc(j int) []int
	// SolveReachInPlace runs the forward/diagonal/backward substitution
	// over x restricted to precomputed reach sets: freach is the
	// forward reach of the right-hand side's support (closed under
	// LSucc, ascending) and breach the backward reach of freach (closed
	// under USucc, ascending, a superset of freach). Entries of x
	// outside freach must be zero on entry; entries outside breach are
	// untouched and remain exact zeros of the solution. On the reach
	// set the result is bit-identical to SolveInPlace on the equivalent
	// dense right-hand side: the restricted loops execute the same
	// floating-point operations in the same order.
	SolveReachInPlace(x []float64, freach, breach []int)

	// SolveBlockInPlace runs SolveInPlace over k vectors through one
	// traversal of the factors: at every L column, pivot, and U row,
	// all k vectors advance before the loop moves on, so the factor
	// structure is loaded once per block instead of once per
	// right-hand side. Per vector the floating-point operations and
	// their order are exactly SolveInPlace's, so each xs[r] ends up
	// bit-identical to an independent SolveInPlace(xs[r]).
	SolveBlockInPlace(xs [][]float64)
}

// Compile-time interface checks.
var (
	_ Factors = (*StaticFactors)(nil)
	_ Factors = (*DynamicFactors)(nil)
)

// Solver couples LU factors of a *reordered* matrix A^O = P·A·Q with
// the ordering O, and solves the original system A·x = b:
//
//	A^O·(Q⁻¹x) = P·b   ⇒   x = Q·solve(P·b)
//
// (§2.2 of the paper). Applying the permutations costs O(n) on the
// dense paths and O(|support|) on the sparse path.
//
// F and O must not be replaced after the first SolveSparse call: the
// sparse path caches the inverse row permutation and the adjacency
// accessors on first use (concurrent solves on one Solver are safe; the
// factor containers are only read).
type Solver struct {
	F Factors
	O sparse.Ordering

	// Lazily built sparse-path plumbing (see sparsePrep).
	sparseOnce sync.Once
	rowInv     sparse.Perm
	lsucc      func(int) []int
	usucc      func(int) []int

	// Lazily packed supernodal panels (see PanelsBuild). Only built
	// for frozen StaticFactors; nil after the once for anything else.
	panelOnce sync.Once
	panels    *PanelSet
}

// Solve returns x with A·x = b, leaving b untouched.
func (s *Solver) Solve(b []float64) []float64 {
	bp := s.O.Row.Apply(b) // b' = P·b
	s.F.SolveInPlace(bp)   // x' = (A^O)⁻¹ b'
	return s.O.Col.Scatter(bp)
}

// Clone deep-copies the factors so the returned solver stays valid
// after the original's factors are updated in place. The ordering is
// shared: it is immutable once constructed.
func (s *Solver) Clone() *Solver {
	return &Solver{F: s.F.Clone(), O: s.O}
}

// SolveWorkspace holds the permuted intermediate vector of a solve so
// query-serving workers answering many right-hand sides allocate only
// the result, not the scratch. The zero value is ready to use; a
// workspace must not be shared between concurrent solves.
type SolveWorkspace struct {
	w []float64
}

// vector returns the scratch vector, reusing capacity across dimension
// changes (serving workers hop between snapshots of different sizes;
// shrinking must not churn allocations). SolveWith overwrites every
// position before reading it, so stale values are harmless.
func (ws *SolveWorkspace) vector(n int) []float64 {
	if cap(ws.w) < n {
		ws.w = make([]float64, n)
	}
	ws.w = ws.w[:n]
	return ws.w
}

// SolveWith is Solve with caller-owned scratch: it permutes b into the
// workspace, solves in place, and scatters into a fresh result. The
// returned vector is bit-identical to Solve's for the same b.
func (s *Solver) SolveWith(b []float64, ws *SolveWorkspace) []float64 {
	return s.SolveInto(nil, b, ws)
}

// SolveInto is SolveWith writing the result into caller-owned dst,
// reusing its capacity when possible (nil dst allocates). dst may alias
// b: b is fully consumed by the permutation before dst is written.
// Every position of dst is overwritten. The result is bit-identical to
// Solve's for the same b.
func (s *Solver) SolveInto(dst, b []float64, ws *SolveWorkspace) []float64 {
	n := len(s.O.Row)
	w := ws.vector(n)
	for i, v := range s.O.Row {
		w[i] = b[v] // b' = P·b
	}
	s.F.SolveInPlace(w)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i, v := range s.O.Col {
		dst[v] = w[i] // x = Q·x'
	}
	return dst
}

// SolveBatch solves A·X = B for many right-hand sides through one
// workspace — the batched multi-source path of the serving layer (one
// b per measure query, factors reused across all of them).
func (s *Solver) SolveBatch(bs [][]float64, ws *SolveWorkspace) [][]float64 {
	out := make([][]float64, len(bs))
	for i, b := range bs {
		out[i] = s.SolveWith(b, ws)
	}
	return out
}

// SparseSolveWorkspace holds every piece of scratch a reach-based solve
// needs — two reach traversals, the dense-scattered value vector, and
// the output buffers — so a steady-state query worker performs no
// per-query allocation. The zero value is ready to use; a workspace
// must not be shared between concurrent solves but may be reused across
// solvers of different dimensions (capacity is kept on shrink).
//
// Invariant: between calls, x is all-zero on every position it has ever
// exposed; SolveSparse restores this by re-zeroing exactly the touched
// reach set.
type SparseSolveWorkspace struct {
	fwd, bwd sparse.ReachWorkspace
	x        []float64
	seeds    []int
	outIdx   []int
	outVal   []float64
}

// dense returns the all-zero dense scratch vector of dimension n.
func (ws *SparseSolveWorkspace) dense(n int) []float64 {
	if cap(ws.x) < n {
		ws.x = make([]float64, n)
	}
	// Growing within capacity is safe: every previously exposed
	// position was re-zeroed after the solve that touched it.
	ws.x = ws.x[:n]
	return ws.x
}

// sparsePrep lazily builds the sparse-path plumbing shared by every
// SolveSparse call on this solver: the inverse row permutation (so the
// right-hand-side permutation costs O(|support|), not O(n)) and the
// bound adjacency accessors (so the reach traversals allocate nothing
// per query).
func (s *Solver) sparsePrep() {
	s.sparseOnce.Do(func() {
		s.rowInv = s.O.Row.Inverse()
		s.lsucc = s.F.LSucc
		s.usucc = s.F.USucc
	})
}

// SolveSparse solves A·x = b for a sparse right-hand side given as
// support/value pairs (duplicate indices accumulate, matching a dense
// scatter), touching only the rows reachable from the support in the
// factors' dependency graphs — the Gilbert–Peierls sparse-RHS solve.
// It returns the solution's support (original numbering, unsorted) and
// the matching values; every index not listed is an exact zero of the
// solution. On the returned support the values are bit-identical to
// the dense Solve path. The returned slices alias the workspace and
// stay valid until its next solve.
//
// maxReach caps the number of rows the solve may touch: when the reach
// would exceed it the symbolic probe aborts early — before any numeric
// work — and SolveSparse returns ok = false, in which case the caller
// should take the dense path. maxReach <= 0 means unlimited.
func (s *Solver) SolveSparse(bIdx []int, bVal []float64, maxReach int, ws *SparseSolveWorkspace) (idx []int, val []float64, ok bool) {
	s.sparsePrep()
	n := s.F.Dim()

	// Permute the support: supp(P·b) = P⁻¹ applied entrywise.
	ws.seeds = ws.seeds[:0]
	for _, u := range bIdx {
		ws.seeds = append(ws.seeds, s.rowInv[u])
	}
	// Symbolic phase: forward reach of the support under L, then
	// backward reach of that under U. Both abort early past maxReach.
	freach, ok := ws.fwd.Reach(n, ws.seeds, s.lsucc, maxReach)
	if !ok {
		return nil, nil, false
	}
	breach, ok := ws.bwd.Reach(n, freach, s.usucc, maxReach)
	if !ok {
		return nil, nil, false
	}

	// Numeric phase on the reach set only.
	x := ws.dense(n)
	for k, u := range bIdx {
		x[s.rowInv[u]] += bVal[k] // b' = P·b, sparse scatter
	}
	s.F.SolveReachInPlace(x, freach, breach)

	// Gather x = Q·x' on the support and restore the workspace's
	// all-zero invariant in the same pass.
	ws.outIdx = ws.outIdx[:0]
	ws.outVal = ws.outVal[:0]
	for _, i := range breach {
		ws.outIdx = append(ws.outIdx, s.O.Col[i])
		ws.outVal = append(ws.outVal, x[i])
		x[i] = 0
	}
	return ws.outIdx, ws.outVal, true
}

// FactorizeOrdered is the one-call convenience used throughout the
// harness: reorder a by o, run symbolic + numeric decomposition into a
// fresh static container, and return a ready Solver.
func FactorizeOrdered(a *sparse.CSR, o sparse.Ordering) (*Solver, error) {
	ao := a.Permute(o)
	sym := Symbolic(ao.Pattern())
	f := NewStaticFactors(sym)
	if err := f.Factorize(ao); err != nil {
		return nil, err
	}
	return &Solver{F: f, O: o}, nil
}
