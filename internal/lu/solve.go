package lu

import "repro/internal/sparse"

// Factors is the common interface of the two factor containers: enough
// to solve systems and to measure structural size.
type Factors interface {
	Dim() int
	Size() int
	SolveInPlace(b []float64)
	Reconstruct() *sparse.CSR
}

// Compile-time interface checks.
var (
	_ Factors = (*StaticFactors)(nil)
	_ Factors = (*DynamicFactors)(nil)
)

// Solver couples LU factors of a *reordered* matrix A^O = P·A·Q with
// the ordering O, and solves the original system A·x = b:
//
//	A^O·(Q⁻¹x) = P·b   ⇒   x = Q·solve(P·b)
//
// (§2.2 of the paper). Applying the permutations costs O(n).
type Solver struct {
	F Factors
	O sparse.Ordering
}

// Solve returns x with A·x = b, leaving b untouched.
func (s *Solver) Solve(b []float64) []float64 {
	bp := s.O.Row.Apply(b) // b' = P·b
	s.F.SolveInPlace(bp)   // x' = (A^O)⁻¹ b'
	return s.O.Col.Scatter(bp)
}

// FactorizeOrdered is the one-call convenience used throughout the
// harness: reorder a by o, run symbolic + numeric decomposition into a
// fresh static container, and return a ready Solver.
func FactorizeOrdered(a *sparse.CSR, o sparse.Ordering) (*Solver, error) {
	ao := a.Permute(o)
	sym := Symbolic(ao.Pattern())
	f := NewStaticFactors(sym)
	if err := f.Factorize(ao); err != nil {
		return nil, err
	}
	return &Solver{F: f, O: o}, nil
}
