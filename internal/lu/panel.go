package lu

// This file is the supernodal panel layer over StaticFactors: a
// symbolic pass groups contiguous columns whose below-diagonal
// structure (and matching U row structure) is near-identical into
// panels, and a one-time packing step copies each panel's L/U entries
// into contiguous dense blocks. Substitution then processes a panel as
// a small dense triangular solve followed by a rank-panel update of the
// packed rows across all right-hand sides — tight loops over contiguous
// float64 slices instead of a pointer-chase through sparse storage.
//
// The contract is the same one every other solve path in this package
// carries: per right-hand side, the floating-point operations that
// touch each element happen in exactly the scalar SolveInPlace order,
// so panel answers are bit-identical to the scalar path and routing is
// purely an execution-schedule decision. Two things make that work:
//
//   - Packing only ever *adds* explicit zeros (relaxation fill and the
//     rectangular union of row patterns). An extra `x -= 0·v` leaves x
//     unchanged, so the per-element operation chain is preserved. (The
//     theoretical exception — an exactly-zero x whose sign bit flips,
//     or an Inf/NaN value — cannot arise from the finite factors and
//     right-hand sides this repository solves, and the property tests
//     compare bit-for-bit across every strategy to enforce it.)
//   - The kernels keep the scalar ordering: the forward rectangular
//     update is a sequence of per-column AXPYs (never a dot product,
//     which would reassociate), and the backward accumulator subtracts
//     within-panel columns then union columns, both ascending — the
//     global ascending-column order of the scalar row sweep.
//
// A PanelSet snapshots the factor *values* at build time, so it is only
// valid while the factors are not refilled or Bennett-updated; the
// serving layer therefore builds panels lazily on pinned (frozen)
// solvers only and never on a live source's hot factors.

import (
	"sort"
	"time"
)

// Panel construction defaults: DefaultPanelRelax is the number of
// structure mismatches tolerated between adjacent columns before a
// panel is cut (each mismatch packs one explicit zero per affected
// column), and DefaultPanelMaxWidth caps panel width so the dense
// triangular block stays cache-resident.
const (
	DefaultPanelRelax    = 2
	DefaultPanelMaxWidth = 32
)

// PartitionPanels partitions the columns 0..n-1 of f into contiguous
// panels and returns the boundaries: panel p spans columns
// [bounds[p], bounds[p+1]). Column c extends the panel of column c-1
// when the below-panel row pattern of L column c-1 (rows > c) differs
// from that of column c by at most relax entries, and symmetrically for
// the U row patterns (columns > c); wider mismatches cut the panel, as
// does maxWidth (<= 0 selects DefaultPanelMaxWidth). The partition is
// a pure performance decision — any partition yields bit-identical
// solves — so relax trades packed fill for panel width.
func PartitionPanels(f *StaticFactors, relax, maxWidth int) []int {
	if maxWidth <= 0 {
		maxWidth = DefaultPanelMaxWidth
	}
	if relax < 0 {
		relax = 0
	}
	n := f.n
	bounds := make([]int, 1, n/2+2)
	bounds[0] = 0
	w := 1
	for c := 1; c < n; c++ {
		if w < maxWidth && panelMergeable(f, c, relax) {
			w++
			continue
		}
		bounds = append(bounds, c)
		w = 1
	}
	if n > 0 {
		bounds = append(bounds, n)
	}
	return bounds
}

// panelMergeable reports whether column c may join the panel ending at
// column c-1: the L column patterns restricted to rows > c and the U
// row patterns restricted to columns > c each differ by at most relax
// entries.
func panelMergeable(f *StaticFactors, c, relax int) bool {
	a := trimBelow(f.LRowIdx[f.LColPtr[c-1]:f.LColPtr[c]], c)
	b := f.LRowIdx[f.LColPtr[c]:f.LColPtr[c+1]]
	budget := relax - symmDiff(a, b, relax)
	if budget < 0 {
		return false
	}
	au := trimBelow(f.UColIdx[f.URowPtr[c-1]:f.URowPtr[c]], c)
	bu := f.UColIdx[f.URowPtr[c]:f.URowPtr[c+1]]
	return symmDiff(au, bu, budget) <= budget
}

// trimBelow drops leading entries <= c from the sorted index slice s.
func trimBelow(s []int, c int) []int {
	for len(s) > 0 && s[0] <= c {
		s = s[1:]
	}
	return s
}

// symmDiff counts |a Δ b| for sorted index slices, giving up once the
// count exceeds budget (the caller only needs "within budget or not").
func symmDiff(a, b []int, budget int) int {
	d := 0
	for len(a) > 0 && len(b) > 0 {
		switch {
		case a[0] == b[0]:
			a, b = a[1:], b[1:]
		case a[0] < b[0]:
			a = a[1:]
			d++
		default:
			b = b[1:]
			d++
		}
		if d > budget {
			return d
		}
	}
	return d + len(a) + len(b)
}

// panel is one packed column panel: columns [j0, j0+w). The diagonal
// blocks are dense w×w (L column-major with implicit unit diagonal,
// U row-major); the rectangular blocks cover the union of the panel
// columns' below-panel rows (lrows) and the union of the panel rows'
// beyond-panel columns (ucols), with explicit zeros where a column or
// row lacks a structural entry.
type panel struct {
	j0, w int

	lrows []int     // union of rows >= j0+w, sorted ascending
	ldiag []float64 // w×w, column jj at ldiag[jj*w : jj*w+w]
	lrect []float64 // len(lrows)×w, column jj at lrect[jj*m : jj*m+m]

	ucols []int     // union of cols >= j0+w, sorted ascending
	udiag []float64 // w×w, row ii at udiag[ii*w : ii*w+w]
	urect []float64 // w×len(ucols), row ii at urect[ii*mu : ii*mu+mu]
}

// PanelSet is the packed supernodal form of one StaticFactors value
// state. It is immutable after construction and safe for concurrent
// solves; it snapshots values, so refilling or updating the underlying
// factors invalidates it (build a new set).
type PanelSet struct {
	n      int
	panels []panel
	bounds []int
	d      []float64 // pivot snapshot (the diagonal sweep's operand)

	maxUnion int // max over panels of max(len(lrows), len(ucols))
	relax    int
	packTime time.Duration

	packedL, packedU int // packed slots (diag strict triangle + rect)
	nnzL, nnzU       int // structural entries those slots carry
	colsCovered      int // columns in panels of width >= 2
}

// NewPanelSet partitions and packs f (see PartitionPanels for relax and
// maxWidth). The returned set snapshots f's current values.
func NewPanelSet(f *StaticFactors, relax, maxWidth int) *PanelSet {
	start := time.Now()
	bounds := PartitionPanels(f, relax, maxWidth)
	ps := &PanelSet{n: f.n, bounds: bounds, relax: relax}
	ps.d = append([]float64(nil), f.D...)
	if f.n == 0 {
		ps.packTime = time.Since(start)
		return ps
	}
	ps.panels = make([]panel, len(bounds)-1)
	pos := make([]int, f.n)
	var union []int
	for pi := range ps.panels {
		pn := &ps.panels[pi]
		j0, j1 := bounds[pi], bounds[pi+1]
		w := j1 - j0
		pn.j0, pn.w = j0, w
		if w >= 2 {
			ps.colsCovered += w
		}

		// L: union of below-panel rows, then pack columns.
		union = union[:0]
		for j := j0; j < j1; j++ {
			for p := f.LColPtr[j]; p < f.LColPtr[j+1]; p++ {
				if r := f.LRowIdx[p]; r >= j1 {
					union = append(union, r)
				}
			}
		}
		pn.lrows = sortedDedup(union)
		m := len(pn.lrows)
		pn.ldiag = make([]float64, w*w)
		pn.lrect = make([]float64, m*w)
		for i, r := range pn.lrows {
			pos[r] = i
		}
		for j := j0; j < j1; j++ {
			jj := j - j0
			lo, hi := f.LColPtr[j], f.LColPtr[j+1]
			ps.nnzL += hi - lo
			for p := lo; p < hi; p++ {
				if r := f.LRowIdx[p]; r < j1 {
					pn.ldiag[jj*w+(r-j0)] = f.LVal[p]
				} else {
					pn.lrect[jj*m+pos[r]] = f.LVal[p]
				}
			}
		}
		ps.packedL += w*(w-1)/2 + m*w

		// U: union of beyond-panel columns, then pack rows.
		union = union[:0]
		for i := j0; i < j1; i++ {
			for p := f.URowPtr[i]; p < f.URowPtr[i+1]; p++ {
				if c := f.UColIdx[p]; c >= j1 {
					union = append(union, c)
				}
			}
		}
		pn.ucols = sortedDedup(union)
		mu := len(pn.ucols)
		pn.udiag = make([]float64, w*w)
		pn.urect = make([]float64, w*mu)
		for i, c := range pn.ucols {
			pos[c] = i
		}
		for i := j0; i < j1; i++ {
			ii := i - j0
			lo, hi := f.URowPtr[i], f.URowPtr[i+1]
			ps.nnzU += hi - lo
			for p := lo; p < hi; p++ {
				if c := f.UColIdx[p]; c < j1 {
					pn.udiag[ii*w+(c-j0)] = f.UVal[p]
				} else {
					pn.urect[ii*mu+pos[c]] = f.UVal[p]
				}
			}
		}
		ps.packedU += w*(w-1)/2 + w*mu

		if m > ps.maxUnion {
			ps.maxUnion = m
		}
		if mu > ps.maxUnion {
			ps.maxUnion = mu
		}
		// D is not packed: the diagonal sweep is already a dense
		// contiguous pass over f.D.
	}
	ps.packTime = time.Since(start)
	return ps
}

// sortedDedup sorts s, removes duplicates, and returns an owned copy.
func sortedDedup(s []int) []int {
	sort.Ints(s)
	out := make([]int, 0, len(s))
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// NumPanels returns the number of panels.
func (ps *PanelSet) NumPanels() int { return len(ps.panels) }

// Bounds returns the panel boundaries (see PartitionPanels). The slice
// aliases internal storage and must not be modified.
func (ps *PanelSet) Bounds() []int { return ps.bounds }

// ColsCovered returns the number of columns inside panels of width >= 2
// — the columns the packed path actually amortizes.
func (ps *PanelSet) ColsCovered() int { return ps.colsCovered }

// MeanWidth returns the mean panel width (1.0 when nothing merged;
// 0 for an empty factorization).
func (ps *PanelSet) MeanWidth() float64 {
	if len(ps.panels) == 0 {
		return 0
	}
	return float64(ps.n) / float64(len(ps.panels))
}

// MaxWidth returns the widest panel.
func (ps *PanelSet) MaxWidth() int {
	w := 0
	for i := range ps.panels {
		if ps.panels[i].w > w {
			w = ps.panels[i].w
		}
	}
	return w
}

// WidthHistogram returns counts[w] = number of panels of width w
// (counts[0] unused).
func (ps *PanelSet) WidthHistogram() []int {
	counts := make([]int, ps.MaxWidth()+1)
	for i := range ps.panels {
		counts[ps.panels[i].w]++
	}
	return counts
}

// FillFrac returns the fraction of packed slots holding explicit zeros
// introduced by relaxation and rectangular union — the memory price of
// panel width. 0 when nothing is packed.
func (ps *PanelSet) FillFrac() float64 {
	packed := ps.packedL + ps.packedU
	if packed == 0 {
		return 0
	}
	return float64(packed-ps.nnzL-ps.nnzU) / float64(packed)
}

// Relax returns the relaxation the set was built with.
func (ps *PanelSet) Relax() int { return ps.relax }

// PackTime returns the wall time of the symbolic pass plus packing.
func (ps *PanelSet) PackTime() time.Duration { return ps.packTime }

// SolveBlockInPlace runs the three substitution sweeps over k vectors
// through the packed panels. Per vector the floating-point operations
// on every element happen in the scalar SolveInPlace order (see the
// file comment), so each xs[r] ends up bit-identical to
// StaticFactors.SolveBlockInPlace on the factors the set was packed
// from. ws provides the interleave scratch (nil allocates a private
// one).
//
// Three mechanical transformations make the packed path fast, and all
// preserve every bit because none reorders operations within a lane:
//
//   - Lane interleaving. The block is transposed once into X, where
//     element i's k lanes sit contiguous at X[i*k : i*k+k], and
//     transposed back at the end. Every packed factor value is then
//     loaded exactly once and applied across all k right-hand sides
//     over contiguous lane bundles, where the vector-per-vector
//     scalar sweep reloads each entry k times and scatters the same
//     work across k distant vectors. The transposes are pure element
//     moves.
//
//   - Register chaining. The backward sweep subtracts up to eight
//     factor entries in one read-modify-write of the row bundle,
//     s - v0*c0 - v1*c1 - ... evaluated left to right: the same
//     subtractions in the same ascending-column order as the scalar
//     row sweep (float64 rounds after every operation either way),
//     with the running value held in a register instead of stored
//     and reloaded per entry. Panels make the operands contiguous:
//     all rows of a panel share one union column set.
//
//   - Early pivoting. The diagonal divide of a panel's elements runs
//     as soon as its forward rect update retires, while the bundle
//     is cache-hot: the forward sweep never reads or writes a
//     panel's elements again after its own rect update, so per
//     element the divide still lands after its last L update and
//     before its first U update — the scalar schedule.
func (ps *PanelSet) SolveBlockInPlace(xs [][]float64, ws *BlockWorkspace) {
	for _, x := range xs {
		if len(x) != ps.n {
			panic("lu: panel SolveBlockInPlace dimension mismatch")
		}
	}
	if ws == nil {
		ws = &BlockWorkspace{}
	}
	k := len(xs)
	n := ps.n
	X := ws.scratch(n * k)
	buf := ws.lanes(9 * k)
	ll, l0, l1, l2, l3 := buf[:k], buf[k:2*k], buf[2*k:3*k], buf[3*k:4*k], buf[4*k:5*k]
	l4, l5, l6, l7 := buf[5*k:6*k], buf[6*k:7*k], buf[7*k:8*k], buf[8*k:9*k]
	act := ws.list(k)
	// Interleave the lanes sorted by the position of each lane's first
	// nonzero entry. Serving right-hand sides are restart vectors, and
	// under a fill-reducing ordering restarts in the same community
	// sit near each other, so sorting clusters the lanes a community's
	// panels will activate into one contiguous index range — which
	// turns the kernels' active-lane sets into dense runs. Lanes never
	// read each other anywhere in the solve, so their order in the
	// bundle is free to choose: every bit of every lane is unchanged.
	lanes := ws.headers(k)
	copy(lanes, xs)
	keys := act[:k]
	for r, x := range lanes {
		keys[r] = firstNonzero(x)
	}
	for a := 1; a < k; a++ {
		x, fa := lanes[a], keys[a]
		b := a
		for ; b > 0 && keys[b-1] > fa; b-- {
			lanes[b], keys[b] = lanes[b-1], keys[b-1]
		}
		lanes[b], keys[b] = x, fa
	}
	for i := 0; i < n; i++ {
		base := i * k
		for r, x := range lanes {
			X[base+r] = x[i]
		}
	}

	// Forward: L y = b, then D z = y panel by panel. Per panel: the
	// dense unit-lower triangular solve on the w×w diagonal block
	// finalizes every panel multiplier column by column, then the
	// rank-w update applies the packed rect columns to the union rows —
	// per target element the updates arrive in ascending column order
	// with finalized multipliers, exactly the scalar schedule. The
	// scalar sweep's per-lane skip-on-zero is preserved throughout: a
	// lane with a zero multiplier gets no operation for that column.
	// Rect columns go four at a time when they activate exactly the
	// same lanes (activity only shifts at community boundaries, so runs
	// are long): one read-modify-write of the row bundle chains four
	// subtractions, just like the backward sweep.
	d := ps.d
	for pi := range ps.panels {
		pn := &ps.panels[pi]
		j0, w := pn.j0, pn.w
		m := len(pn.lrows)
		rows := pn.lrows
		if w > 1 {
			for jj := 0; jj < w; jj++ {
				bundle := X[(j0+jj)*k : (j0+jj)*k+k]
				act = act[:0]
				for r, xj := range bundle {
					if xj != 0 {
						ll[len(act)] = xj
						act = append(act, r)
					}
				}
				na := len(act)
				if na == 0 {
					continue
				}
				lo, hi := act[0], act[na-1]+1
				dcol := pn.ldiag[jj*w : jj*w+w]
				switch {
				case na == 1:
					ra := act[0]
					xj := ll[0]
					for ii := jj + 1; ii < w; ii++ {
						X[(j0+ii)*k+ra] -= dcol[ii] * xj
					}
				case hi-lo == na:
					// The sorted lanes make the active set a dense run.
					bb := bundle[lo:hi]
					for ii := jj + 1; ii < w; ii++ {
						v := dcol[ii]
						tb := (j0 + ii) * k
						la := X[tb+lo : tb+hi]
						_ = bb[len(la)-1]
						for r, xj := range bb {
							la[r] -= v * xj
						}
					}
				default:
					for ii := jj + 1; ii < w; ii++ {
						v := dcol[ii]
						tb := (j0 + ii) * k
						for t, r := range act {
							X[tb+r] -= v * ll[t]
						}
					}
				}
			}
		}
		if m > 0 {
			jj := 0
			for jj+3 < w {
				b0 := X[(j0+jj)*k : (j0+jj)*k+k]
				b1 := X[(j0+jj+1)*k : (j0+jj+1)*k+k]
				b2 := X[(j0+jj+2)*k : (j0+jj+2)*k+k]
				b3 := X[(j0+jj+3)*k : (j0+jj+3)*k+k]
				act = act[:0]
				for r, xj := range b0 {
					if xj != 0 {
						l0[len(act)] = xj
						act = append(act, r)
					}
				}
				if len(act) == 0 ||
					!compactMatch(b1, act, l1) ||
					!compactMatch(b2, act, l2) ||
					!compactMatch(b3, act, l3) {
					ps.forwardRect(X, pn, jj, k, ll, act)
					ps.forwardRect(X, pn, jj+1, k, ll, act)
					ps.forwardRect(X, pn, jj+2, k, ll, act)
					ps.forwardRect(X, pn, jj+3, k, ll, act)
					jj += 4
					continue
				}
				na := len(act)
				lo, hi := act[0], act[na-1]+1
				c0 := pn.lrect[jj*m : jj*m+m]
				c1 := pn.lrect[(jj+1)*m : (jj+1)*m+m]
				c2 := pn.lrect[(jj+2)*m : (jj+2)*m+m]
				c3 := pn.lrect[(jj+3)*m : (jj+3)*m+m]
				if jj+7 < w {
					b4 := X[(j0+jj+4)*k : (j0+jj+4)*k+k]
					b5 := X[(j0+jj+5)*k : (j0+jj+5)*k+k]
					b6 := X[(j0+jj+6)*k : (j0+jj+6)*k+k]
					b7 := X[(j0+jj+7)*k : (j0+jj+7)*k+k]
					if compactMatch(b4, act, l4) && compactMatch(b5, act, l5) &&
						compactMatch(b6, act, l6) && compactMatch(b7, act, l7) {
						c4 := pn.lrect[(jj+4)*m : (jj+4)*m+m]
						c5 := pn.lrect[(jj+5)*m : (jj+5)*m+m]
						c6 := pn.lrect[(jj+6)*m : (jj+6)*m+m]
						c7 := pn.lrect[(jj+7)*m : (jj+7)*m+m]
						if hi-lo == na {
							bb0, bb1, bb2, bb3 := b0[lo:hi], b1[lo:hi], b2[lo:hi], b3[lo:hi]
							bb4, bb5, bb6, bb7 := b4[lo:hi], b5[lo:hi], b6[lo:hi], b7[lo:hi]
							_ = c1[len(c0)-1]
							_ = c2[len(c0)-1]
							_ = c3[len(c0)-1]
							_ = c4[len(c0)-1]
							_ = c5[len(c0)-1]
							_ = c6[len(c0)-1]
							_ = c7[len(c0)-1]
							for i, v0 := range c0 {
								v1, v2, v3 := c1[i], c2[i], c3[i]
								v4, v5, v6, v7 := c4[i], c5[i], c6[i], c7[i]
								tb := rows[i] * k
								la := X[tb+lo : tb+hi]
								_ = bb0[len(la)-1]
								_ = bb1[len(la)-1]
								_ = bb2[len(la)-1]
								_ = bb3[len(la)-1]
								_ = bb4[len(la)-1]
								_ = bb5[len(la)-1]
								_ = bb6[len(la)-1]
								_ = bb7[len(la)-1]
								for r := range la {
									la[r] = la[r] - v0*bb0[r] - v1*bb1[r] - v2*bb2[r] - v3*bb3[r] -
										v4*bb4[r] - v5*bb5[r] - v6*bb6[r] - v7*bb7[r]
								}
							}
						} else if na <= 4 {
							_ = c1[len(c0)-1]
							_ = c2[len(c0)-1]
							_ = c3[len(c0)-1]
							_ = c4[len(c0)-1]
							_ = c5[len(c0)-1]
							_ = c6[len(c0)-1]
							_ = c7[len(c0)-1]
							for t, r := range act {
								x0, x1, x2, x3 := l0[t], l1[t], l2[t], l3[t]
								x4, x5, x6, x7 := l4[t], l5[t], l6[t], l7[t]
								for i, v0 := range c0 {
									tb := rows[i]*k + r
									X[tb] = X[tb] - v0*x0 - c1[i]*x1 - c2[i]*x2 - c3[i]*x3 -
										c4[i]*x4 - c5[i]*x5 - c6[i]*x6 - c7[i]*x7
								}
							}
						} else {
							_ = c1[len(c0)-1]
							_ = c2[len(c0)-1]
							_ = c3[len(c0)-1]
							_ = c4[len(c0)-1]
							_ = c5[len(c0)-1]
							_ = c6[len(c0)-1]
							_ = c7[len(c0)-1]
							_ = l0[len(act)-1]
							_ = l1[len(act)-1]
							_ = l2[len(act)-1]
							_ = l3[len(act)-1]
							_ = l4[len(act)-1]
							_ = l5[len(act)-1]
							_ = l6[len(act)-1]
							_ = l7[len(act)-1]
							for i, v0 := range c0 {
								v1, v2, v3 := c1[i], c2[i], c3[i]
								v4, v5, v6, v7 := c4[i], c5[i], c6[i], c7[i]
								tb := rows[i] * k
								for t, r := range act {
									X[tb+r] = X[tb+r] - v0*l0[t] - v1*l1[t] - v2*l2[t] - v3*l3[t] -
										v4*l4[t] - v5*l5[t] - v6*l6[t] - v7*l7[t]
								}
							}
						}
						jj += 8
						continue
					}
				}
				if hi-lo == na {
					bb0, bb1, bb2, bb3 := b0[lo:hi], b1[lo:hi], b2[lo:hi], b3[lo:hi]
					_ = c1[len(c0)-1]
					_ = c2[len(c0)-1]
					_ = c3[len(c0)-1]
					for i, v0 := range c0 {
						v1, v2, v3 := c1[i], c2[i], c3[i]
						tb := rows[i] * k
						la := X[tb+lo : tb+hi]
						_ = bb0[len(la)-1]
						_ = bb1[len(la)-1]
						_ = bb2[len(la)-1]
						_ = bb3[len(la)-1]
						for r := range la {
							la[r] = la[r] - v0*bb0[r] - v1*bb1[r] - v2*bb2[r] - v3*bb3[r]
						}
					}
				} else if na <= 4 {
					// Few live lanes: walk the four rect columns once per
					// lane with its multipliers in registers — cheaper than
					// per-row indirection through the active list. Each
					// element still sees its columns in ascending order.
					_ = c1[len(c0)-1]
					_ = c2[len(c0)-1]
					_ = c3[len(c0)-1]
					for t, r := range act {
						x0, x1, x2, x3 := l0[t], l1[t], l2[t], l3[t]
						for i, v0 := range c0 {
							tb := rows[i]*k + r
							X[tb] = X[tb] - v0*x0 - c1[i]*x1 - c2[i]*x2 - c3[i]*x3
						}
					}
				} else {
					_ = c1[len(c0)-1]
					_ = c2[len(c0)-1]
					_ = c3[len(c0)-1]
					_ = l0[len(act)-1]
					_ = l1[len(act)-1]
					_ = l2[len(act)-1]
					_ = l3[len(act)-1]
					for i, v0 := range c0 {
						v1, v2, v3 := c1[i], c2[i], c3[i]
						tb := rows[i] * k
						for t, r := range act {
							X[tb+r] = X[tb+r] - v0*l0[t] - v1*l1[t] - v2*l2[t] - v3*l3[t]
						}
					}
				}
				jj += 4
			}
			for ; jj < w; jj++ {
				ps.forwardRect(X, pn, jj, k, ll, act)
			}
		}
	}

	// Backward: U x = z, panels descending, rows descending within each
	// panel. The pivot divide z = y/d is fused into the row load — y is
	// never read between the forward sweep and here, and dividing
	// before the first subtraction is exactly the scalar order. Per row
	// and lane the accumulation subtracts within-panel columns then
	// union columns, both ascending — the scalar sweep's
	// global ascending-column order; the scalar sweep has no
	// skip-on-zero here, so the kernels apply unconditionally. Lanes go
	// in groups of eight held in scalar accumulators: the row bundle is
	// loaded once and stored once per group instead of being
	// read-modify-written per column, and a float64 store/load
	// round-trip preserves the value exactly, so each lane's
	// subtraction sequence — hence every bit — is unchanged. The
	// fixed-size array views keep the per-column loads bounds-check
	// free.
	for pi := len(ps.panels) - 1; pi >= 0; pi-- {
		pn := &ps.panels[pi]
		j0, w := pn.j0, pn.w
		mu := len(pn.ucols)
		// Union columns are shared by every row of the panel: scale
		// them into lane-bundle offsets once instead of per row.
		offs := ws.offsets(mu)
		for t, uc := range pn.ucols {
			offs[t] = uc * k
		}
		for ii := w - 1; ii >= 0; ii-- {
			sb := (j0 + ii) * k
			di := d[j0+ii]
			var drow []float64
			if w > 1 {
				drow = pn.udiag[ii*w : ii*w+w]
			}
			urow := pn.urect[ii*mu : ii*mu+mu]
			g := 0
			for ; g+7 < k; g += 8 {
				s := (*[8]float64)(X[sb+g:])
				s0, s1, s2, s3 := s[0]/di, s[1]/di, s[2]/di, s[3]/di
				s4, s5, s6, s7 := s[4]/di, s[5]/di, s[6]/di, s[7]/di
				for cc := ii + 1; cc < w; cc++ {
					v := drow[cc]
					c := (*[8]float64)(X[(j0+cc)*k+g:])
					s0 -= v * c[0]
					s1 -= v * c[1]
					s2 -= v * c[2]
					s3 -= v * c[3]
					s4 -= v * c[4]
					s5 -= v * c[5]
					s6 -= v * c[6]
					s7 -= v * c[7]
				}
				for t, v := range urow {
					c := (*[8]float64)(X[offs[t]+g:])
					s0 -= v * c[0]
					s1 -= v * c[1]
					s2 -= v * c[2]
					s3 -= v * c[3]
					s4 -= v * c[4]
					s5 -= v * c[5]
					s6 -= v * c[6]
					s7 -= v * c[7]
				}
				s[0], s[1], s[2], s[3] = s0, s1, s2, s3
				s[4], s[5], s[6], s[7] = s4, s5, s6, s7
			}
			if g+3 < k {
				s := (*[4]float64)(X[sb+g:])
				s0, s1, s2, s3 := s[0]/di, s[1]/di, s[2]/di, s[3]/di
				for cc := ii + 1; cc < w; cc++ {
					v := drow[cc]
					c := (*[4]float64)(X[(j0+cc)*k+g:])
					s0 -= v * c[0]
					s1 -= v * c[1]
					s2 -= v * c[2]
					s3 -= v * c[3]
				}
				for t, v := range urow {
					c := (*[4]float64)(X[offs[t]+g:])
					s0 -= v * c[0]
					s1 -= v * c[1]
					s2 -= v * c[2]
					s3 -= v * c[3]
				}
				s[0], s[1], s[2], s[3] = s0, s1, s2, s3
				g += 4
			}
			for ; g < k; g++ {
				sr := X[sb+g] / di
				for cc := ii + 1; cc < w; cc++ {
					sr -= drow[cc] * X[(j0+cc)*k+g]
				}
				for t, v := range urow {
					sr -= v * X[offs[t]+g]
				}
				X[sb+g] = sr
			}
		}
	}

	for i := 0; i < n; i++ {
		base := i * k
		for r, x := range lanes {
			x[i] = X[base+r]
		}
	}
}

// firstNonzero returns the index of x's first nonzero entry (len(x)
// when none) — the lane-ordering key of the panel interleave.
func firstNonzero(x []float64) int {
	for i, v := range x {
		if v != 0 {
			return i
		}
	}
	return len(x)
}

// compactMatch reports whether b's active lanes are exactly act (in
// order), filling lq with the active values when they are — the gate
// for the quad-column forward kernel, whose chained updates must give
// a skipped lane no operation for any of the four columns.
func compactMatch(b []float64, act []int, lq []float64) bool {
	t := 0
	for r, xj := range b {
		if xj != 0 {
			if t >= len(act) || act[t] != r {
				return false
			}
			lq[t] = xj
			t++
		}
	}
	return t == len(act)
}

// forwardRect applies one packed rect column to the union rows,
// honoring the per-lane skip-on-zero — the general single-column form
// the quad kernel falls back to when the four columns' activity
// differs.
func (ps *PanelSet) forwardRect(X []float64, pn *panel, jj, k int, ll []float64, act []int) {
	m := len(pn.lrows)
	bundle := X[(pn.j0+jj)*k : (pn.j0+jj)*k+k]
	act = act[:0]
	for r, xj := range bundle {
		if xj != 0 {
			ll[len(act)] = xj
			act = append(act, r)
		}
	}
	na := len(act)
	if na == 0 {
		return
	}
	rows := pn.lrows
	col := pn.lrect[jj*m : jj*m+m]
	lo, hi := act[0], act[na-1]+1
	switch {
	case na == 1:
		ra := act[0]
		xj := ll[0]
		for i, v := range col {
			X[rows[i]*k+ra] -= v * xj
		}
	case hi-lo == na:
		// The sorted lanes make the active set a dense run.
		bb := bundle[lo:hi]
		for i, v := range col {
			tb := rows[i] * k
			la := X[tb+lo : tb+hi]
			_ = bb[len(la)-1]
			for r, xj := range bb {
				la[r] -= v * xj
			}
		}
	case na <= 4:
		// Few live lanes: per-lane strided walks beat per-row
		// indirection through the active list.
		for t, r := range act {
			xj := ll[t]
			for i, v := range col {
				X[rows[i]*k+r] -= v * xj
			}
		}
	default:
		for i, v := range col {
			tb := rows[i] * k
			for t, r := range act {
				X[tb+r] -= v * ll[t]
			}
		}
	}
}

// PanelsBuild returns the solver's packed panel set, building it with
// the default relaxation on first call; built reports whether *this*
// call did the build (so exactly one caller can account the packing
// cost). The set snapshots the factor values, so PanelsBuild must only
// be used on solvers whose factors are frozen — pinned snapshots, not
// a live source's hot factors. Solvers over DynamicFactors have no
// panel form: the result is nil (with built true on the first call)
// and the panel solve entry points fall back to the scalar path.
func (s *Solver) PanelsBuild() (ps *PanelSet, built bool) {
	s.panelOnce.Do(func() {
		if f, ok := s.F.(*StaticFactors); ok {
			s.panels = NewPanelSet(f, DefaultPanelRelax, DefaultPanelMaxWidth)
		}
		built = true
	})
	return s.panels, built
}

// Panels is PanelsBuild without the build report.
func (s *Solver) Panels() *PanelSet { ps, _ := s.PanelsBuild(); return ps }

// SolveBlockPanels is SolveBlock routed through the packed panel set:
// the same permutation/workspace contract, with PanelSet's kernels
// doing the three sweeps. Answers are bit-identical to SolveBlock —
// and to k independent SolveWith calls. Falls back to SolveBlock when
// the solver has no panel form (DynamicFactors).
func (s *Solver) SolveBlockPanels(dsts, bs [][]float64, ws *BlockWorkspace) [][]float64 {
	ps := s.Panels()
	if ps == nil {
		return s.SolveBlock(dsts, bs, ws)
	}
	if ws == nil {
		ws = &BlockWorkspace{}
	}
	k := len(bs)
	n := len(s.O.Row)
	if dsts == nil {
		dsts = make([][]float64, k)
	}
	cols := ws.vectors(k, n)
	for r, b := range bs {
		w := cols[r]
		for i, v := range s.O.Row {
			w[i] = b[v] // b' = P·b
		}
	}
	ps.SolveBlockInPlace(cols, ws)
	for r := range bs {
		dst := dsts[r]
		if cap(dst) < n {
			dst = make([]float64, n)
		}
		dst = dst[:n]
		w := cols[r]
		for i, v := range s.O.Col {
			dst[v] = w[i] // x = Q·x'
		}
		dsts[r] = dst
	}
	return dsts
}

// SolvePanels is SolveWith routed through the packed panel set: one
// right-hand side, caller-owned scratch, fresh result, bit-identical
// to SolveWith (and Solve) for the same b. Falls back to the scalar
// path when the solver has no panel form.
func (s *Solver) SolvePanels(b []float64, ws *BlockWorkspace) []float64 {
	if ws == nil {
		ws = &BlockWorkspace{}
	}
	one := ws.one[:1]
	one[0] = b
	defer func() { ws.one[0] = nil }()
	return s.SolveBlockPanels(nil, one, ws)[0]
}
