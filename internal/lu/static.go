package lu

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sparse"
)

// PivotTolerance is the absolute threshold below which a pivot is
// reported as numerically singular. The evolving-graph matrices this
// repository factors (I − d·W, d < 1) keep pivots comfortably above
// this value.
const PivotTolerance = 1e-12

// StaticFactors stores A = L·D·U with all index structure frozen at
// construction time from a symbolic pattern. L is strictly lower
// triangular stored by columns; U is strictly upper triangular stored
// by rows; D is the dense pivot vector. Cross views (L by rows, U by
// columns) index into the same value arrays so the Crout factorization
// can stream both orientations without searching.
//
// This is the CLUDE container: constructed once per cluster from the
// universal symbolic sparsity pattern (USSP), then refilled numerically
// for each matrix in the cluster, with Bennett updates touching values
// only. The structure never changes after NewStaticFactors.
type StaticFactors struct {
	n int

	// L by column: rows LRowIdx[LColPtr[j]:LColPtr[j+1]] (sorted, > j).
	LColPtr []int
	LRowIdx []int
	LVal    []float64

	// U by row: cols UColIdx[URowPtr[i]:URowPtr[i+1]] (sorted, > i).
	URowPtr []int
	UColIdx []int
	UVal    []float64

	// D: pivots.
	D []float64

	// Cross view of L by row: for row i, columns LRowCols[...] with
	// LRowPos pointing into LVal.
	LRowPtr  []int
	LRowCols []int
	LRowPos  []int

	// Cross view of U by column: for column j, rows UColRows[...] with
	// UColPos pointing into UVal.
	UColPtr  []int
	UColRows []int
	UColPos  []int
}

// NewStaticFactors allocates a factor container whose structure is the
// symbolic pattern s. Values start at zero.
func NewStaticFactors(s *SymbolicLU) *StaticFactors {
	n := s.N()
	f := &StaticFactors{n: n, D: make([]float64, n)}

	// L by column from the per-row lower patterns.
	colCnt := make([]int, n+1)
	lnnz := 0
	for i := 0; i < n; i++ {
		for _, j := range s.LRow(i) {
			colCnt[j+1]++
			lnnz++
		}
	}
	for j := 0; j < n; j++ {
		colCnt[j+1] += colCnt[j]
	}
	f.LColPtr = colCnt
	f.LRowIdx = make([]int, lnnz)
	f.LVal = make([]float64, lnnz)
	next := make([]int, n)
	copy(next, f.LColPtr[:n])
	// Row-major scan of lrows emits rows in increasing order per
	// column, so each column comes out sorted.
	f.LRowPtr = make([]int, n+1)
	f.LRowCols = make([]int, lnnz)
	f.LRowPos = make([]int, lnnz)
	w := 0
	for i := 0; i < n; i++ {
		f.LRowPtr[i] = w
		for _, j := range s.LRow(i) {
			p := next[j]
			f.LRowIdx[p] = i
			next[j]++
			f.LRowCols[w] = j
			f.LRowPos[w] = p
			w++
		}
	}
	f.LRowPtr[n] = w

	// U by row directly from the per-row upper patterns.
	unnz := 0
	f.URowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		f.URowPtr[i] = unnz
		unnz += len(s.URow(i))
	}
	f.URowPtr[n] = unnz
	f.UColIdx = make([]int, unnz)
	f.UVal = make([]float64, unnz)
	colCnt2 := make([]int, n+1)
	w = 0
	for i := 0; i < n; i++ {
		for _, j := range s.URow(i) {
			f.UColIdx[w] = j
			colCnt2[j+1]++
			w++
		}
	}
	for j := 0; j < n; j++ {
		colCnt2[j+1] += colCnt2[j]
	}
	f.UColPtr = colCnt2
	f.UColRows = make([]int, unnz)
	f.UColPos = make([]int, unnz)
	next2 := make([]int, n)
	copy(next2, f.UColPtr[:n])
	for i := 0; i < n; i++ {
		for k := f.URowPtr[i]; k < f.URowPtr[i+1]; k++ {
			j := f.UColIdx[k]
			p := next2[j]
			f.UColRows[p] = i
			f.UColPos[p] = k
			next2[j]++
		}
	}
	return f
}

// Dim returns the matrix dimension n.
func (f *StaticFactors) Dim() int { return f.n }

// Clone returns a deep copy of the container. The index structure is
// frozen anyway, but copying it too keeps the clone fully independent
// of the receiver's lifetime.
func (f *StaticFactors) Clone() Factors {
	c := &StaticFactors{
		n:       f.n,
		LColPtr: append([]int(nil), f.LColPtr...),
		LRowIdx: append([]int(nil), f.LRowIdx...),
		LVal:    append([]float64(nil), f.LVal...),
		URowPtr: append([]int(nil), f.URowPtr...),
		UColIdx: append([]int(nil), f.UColIdx...),
		UVal:    append([]float64(nil), f.UVal...),
		D:       append([]float64(nil), f.D...),

		LRowPtr:  append([]int(nil), f.LRowPtr...),
		LRowCols: append([]int(nil), f.LRowCols...),
		LRowPos:  append([]int(nil), f.LRowPos...),
		UColPtr:  append([]int(nil), f.UColPtr...),
		UColRows: append([]int(nil), f.UColRows...),
		UColPos:  append([]int(nil), f.UColPos...),
	}
	return c
}

// Size returns the structural size |sp(L)| + |sp(U)| + n, i.e. the
// paper's |s̃p| for the pattern the container was built from.
func (f *StaticFactors) Size() int { return len(f.LVal) + len(f.UVal) + f.n }

// Reset zeroes all factor values, keeping the structure.
func (f *StaticFactors) Reset() {
	for i := range f.LVal {
		f.LVal[i] = 0
	}
	for i := range f.UVal {
		f.UVal[i] = 0
	}
	for i := range f.D {
		f.D[i] = 0
	}
}

// lFind returns the position in LVal of entry (i, j), or -1 if the
// position is outside the frozen structure.
func (f *StaticFactors) lFind(i, j int) int {
	lo, hi := f.LColPtr[j], f.LColPtr[j+1]
	rows := f.LRowIdx[lo:hi]
	k := sort.SearchInts(rows, i)
	if k < len(rows) && rows[k] == i {
		return lo + k
	}
	return -1
}

// uFind returns the position in UVal of entry (i, j), or -1 if absent.
func (f *StaticFactors) uFind(i, j int) int {
	lo, hi := f.URowPtr[i], f.URowPtr[i+1]
	cols := f.UColIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return lo + k
	}
	return -1
}

// LAt returns L(i, j) (unit diagonal implicit; strictly lower only).
func (f *StaticFactors) LAt(i, j int) float64 {
	if p := f.lFind(i, j); p >= 0 {
		return f.LVal[p]
	}
	return 0
}

// UAt returns U(i, j) (unit diagonal implicit; strictly upper only).
func (f *StaticFactors) UAt(i, j int) float64 {
	if p := f.uFind(i, j); p >= 0 {
		return f.UVal[p]
	}
	return 0
}

// SingularError reports a zero or numerically negligible pivot met
// during factorization or update.
type SingularError struct {
	Pivot int
	Value float64
}

func (e *SingularError) Error() string {
	return fmt.Sprintf("lu: singular pivot %d (value %g)", e.Pivot, e.Value)
}

// Workspace holds the dense work vector a numeric factorization
// scatters into. Callers that factorize many matrices — one full
// decomposition per cluster in the LUDEM pipelines — keep one Workspace
// per worker goroutine and pass it to FactorizeWith so the O(n) scratch
// is allocated once. The zero value is ready to use; a Workspace must
// not be shared between concurrent factorizations.
type Workspace struct {
	w []float64
}

// vector returns the scratch vector, reusing capacity across dimension
// changes (cluster sizes vary; shrinking must not churn allocations).
// Factorize never reads a position it has not first written, so stale
// values from a previous use are harmless.
func (ws *Workspace) vector(n int) []float64 {
	if cap(ws.w) < n {
		ws.w = make([]float64, n)
	}
	ws.w = ws.w[:n]
	return ws.w
}

// Factorize runs the ND-phase of Crout LDU decomposition of the
// (already reordered) matrix a into the frozen structure. The pattern
// of a must be covered by the structure's symbolic pattern; positions
// of the structure that receive no value stay zero, which is how one
// cluster-wide USSP container serves every matrix in the cluster.
func (f *StaticFactors) Factorize(a *sparse.CSR) error {
	var ws Workspace
	return f.FactorizeWith(a, &ws)
}

// FactorizeWith is Factorize with caller-owned scratch (see Workspace).
func (f *StaticFactors) FactorizeWith(a *sparse.CSR, ws *Workspace) error {
	if a.N() != f.n {
		return fmt.Errorf("lu: matrix dimension %d does not match structure %d", a.N(), f.n)
	}
	f.Reset()
	n := f.n
	at := a.Transpose() // row i of at = column i of a
	w := ws.vector(n)

	for k := 0; k < n; k++ {
		// ---- Column k of L and pivot D[k] ----
		// Zero the workspace over the target pattern.
		w[k] = 0
		lo, hi := f.LColPtr[k], f.LColPtr[k+1]
		for p := lo; p < hi; p++ {
			w[f.LRowIdx[p]] = 0
		}
		// Scatter column k of A (rows >= k).
		cols, vals := at.Row(k)
		for t, i := range cols {
			if i >= k {
				w[i] = vals[t]
			}
		}
		// w[i] -= sum_m L(i,m)·D(m)·U(m,k) over m < k with U(m,k) != 0.
		for q := f.UColPtr[k]; q < f.UColPtr[k+1]; q++ {
			m := f.UColRows[q]
			c := f.D[m] * f.UVal[f.UColPos[q]]
			if c == 0 {
				continue
			}
			mlo, mhi := f.LColPtr[m], f.LColPtr[m+1]
			rows := f.LRowIdx[mlo:mhi]
			start := sort.SearchInts(rows, k)
			for t := start; t < len(rows); t++ {
				w[rows[t]] -= f.LVal[mlo+t] * c
			}
		}
		d := w[k]
		if math.Abs(d) < PivotTolerance {
			return &SingularError{Pivot: k, Value: d}
		}
		f.D[k] = d
		for p := lo; p < hi; p++ {
			f.LVal[p] = w[f.LRowIdx[p]] / d
		}

		// ---- Row k of U ----
		ulo, uhi := f.URowPtr[k], f.URowPtr[k+1]
		for p := ulo; p < uhi; p++ {
			w[f.UColIdx[p]] = 0
		}
		rcols, rvals := a.Row(k)
		for t, j := range rcols {
			if j > k {
				w[j] = rvals[t]
			}
		}
		// w[j] -= sum_m L(k,m)·D(m)·U(m,j) over m < k with L(k,m) != 0.
		for q := f.LRowPtr[k]; q < f.LRowPtr[k+1]; q++ {
			m := f.LRowCols[q]
			c := f.LVal[f.LRowPos[q]] * f.D[m]
			if c == 0 {
				continue
			}
			mlo, mhi := f.URowPtr[m], f.URowPtr[m+1]
			mcols := f.UColIdx[mlo:mhi]
			start := sort.SearchInts(mcols, k+1)
			for t := start; t < len(mcols); t++ {
				w[mcols[t]] -= c * f.UVal[mlo+t]
			}
		}
		for p := ulo; p < uhi; p++ {
			f.UVal[p] = w[f.UColIdx[p]] / d
		}
	}
	return nil
}

// SolveInPlace solves L·D·U·x = b, overwriting b with x.
func (f *StaticFactors) SolveInPlace(b []float64) {
	if len(b) != f.n {
		panic("lu: SolveInPlace dimension mismatch")
	}
	n := f.n
	// Forward: L y = b (unit lower, by columns).
	for j := 0; j < n; j++ {
		bj := b[j]
		if bj == 0 {
			continue
		}
		for p := f.LColPtr[j]; p < f.LColPtr[j+1]; p++ {
			b[f.LRowIdx[p]] -= f.LVal[p] * bj
		}
	}
	// Diagonal: D z = y.
	for i := 0; i < n; i++ {
		b[i] /= f.D[i]
	}
	// Backward: U x = z (unit upper, by rows).
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for p := f.URowPtr[i]; p < f.URowPtr[i+1]; p++ {
			s -= f.UVal[p] * b[f.UColIdx[p]]
		}
		b[i] = s
	}
}

// SolveBlockInPlace is the column-blocked SolveInPlace (see the
// Factors interface for the contract): the same three sweeps, with an
// inner loop over the block at every column so LColPtr/LRowIdx/LVal
// (and the U row views) are walked once per block, not once per
// right-hand side. The inner loop keeps each vector's operation
// sequence identical to the single-vector solve — including the
// skip-on-zero in the forward sweep — so every xs[r] is bit-identical
// to SolveInPlace(xs[r]).
func (f *StaticFactors) SolveBlockInPlace(xs [][]float64) {
	for _, x := range xs {
		if len(x) != f.n {
			panic("lu: SolveBlockInPlace dimension mismatch")
		}
	}
	n := f.n
	// Forward: L y = b (unit lower, by columns).
	for j := 0; j < n; j++ {
		lo, hi := f.LColPtr[j], f.LColPtr[j+1]
		for _, x := range xs {
			xj := x[j]
			if xj == 0 {
				continue
			}
			for p := lo; p < hi; p++ {
				x[f.LRowIdx[p]] -= f.LVal[p] * xj
			}
		}
	}
	// Diagonal: D z = y.
	for i := 0; i < n; i++ {
		d := f.D[i]
		for _, x := range xs {
			x[i] /= d
		}
	}
	// Backward: U x = z (unit upper, by rows).
	for i := n - 1; i >= 0; i-- {
		lo, hi := f.URowPtr[i], f.URowPtr[i+1]
		for _, x := range xs {
			s := x[i]
			for p := lo; p < hi; p++ {
				s -= f.UVal[p] * x[f.UColIdx[p]]
			}
			x[i] = s
		}
	}
}

// LSucc returns the rows fed by column j of L. The static container
// stores L by columns, so this is the native index; it was built once
// in NewStaticFactors and is frozen, which is what keeps the reach
// traversals of the sparse solve path coherent for free under Bennett
// updates (they touch values only).
func (f *StaticFactors) LSucc(j int) []int {
	return f.LRowIdx[f.LColPtr[j]:f.LColPtr[j+1]]
}

// USucc returns the rows of column j of U, i.e. the rows a backward
// substitution feeds from column j — served by the frozen cross view
// built in NewStaticFactors.
func (f *StaticFactors) USucc(j int) []int {
	return f.UColRows[f.UColPtr[j]:f.UColPtr[j+1]]
}

// SolveReachInPlace is the reach-restricted SolveInPlace (see the
// Factors interface for the contract). The forward pass scatters down
// whole L columns of reached j's (every target is in freach by reach
// closure); the backward pass gathers whole native U rows of reached
// i's, reading exact zeros for off-reach columns exactly as the dense
// loop does — so the operation sequence per touched row is identical
// to SolveInPlace's and the results match bit for bit.
func (f *StaticFactors) SolveReachInPlace(x []float64, freach, breach []int) {
	// Forward: L y = b over the forward reach (ascending order is
	// topological for the strictly-lower column graph).
	for _, j := range freach {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := f.LColPtr[j]; p < f.LColPtr[j+1]; p++ {
			x[f.LRowIdx[p]] -= f.LVal[p] * xj
		}
	}
	// Diagonal: D z = y on the forward reach (zero stays zero off it).
	for _, i := range freach {
		x[i] /= f.D[i]
	}
	// Backward: U x = z, descending over the backward reach.
	for t := len(breach) - 1; t >= 0; t-- {
		i := breach[t]
		s := x[i]
		for p := f.URowPtr[i]; p < f.URowPtr[i+1]; p++ {
			s -= f.UVal[p] * x[f.UColIdx[p]]
		}
		x[i] = s
	}
}

// Reconstruct multiplies the factors back into an explicit CSR matrix
// (L·D·U). Intended for tests: it verifies factorization and update
// correctness against the original matrix.
func (f *StaticFactors) Reconstruct() *sparse.CSR {
	n := f.n
	// Dense reconstruction is fine at test scale.
	l := make([][]float64, n)
	u := make([][]float64, n)
	for i := 0; i < n; i++ {
		l[i] = make([]float64, n)
		u[i] = make([]float64, n)
		l[i][i] = 1
		u[i][i] = 1
	}
	for j := 0; j < n; j++ {
		for p := f.LColPtr[j]; p < f.LColPtr[j+1]; p++ {
			l[f.LRowIdx[p]][j] = f.LVal[p]
		}
	}
	for i := 0; i < n; i++ {
		for p := f.URowPtr[i]; p < f.URowPtr[i+1]; p++ {
			u[i][f.UColIdx[p]] = f.UVal[p]
		}
	}
	c := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= i && k <= j; k++ {
				s += l[i][k] * f.D[k] * u[k][j]
			}
			if s != 0 {
				c.Add(i, j, s)
			}
		}
	}
	return c.ToCSR()
}

// NNZActual counts factor positions currently holding a non-zero value
// (as opposed to Size, which counts the frozen structure). Useful to
// observe how much of a USSP container a particular matrix uses.
func (f *StaticFactors) NNZActual() int {
	c := f.n
	for _, v := range f.LVal {
		if v != 0 {
			c++
		}
	}
	for _, v := range f.UVal {
		if v != 0 {
			c++
		}
	}
	return c
}
