package lu

import (
	"sort"

	"repro/internal/sparse"
)

// ListNode is one adjacency-list cell of a DynamicFactors structure
// (compare Figure 4 of the paper). Next is an index into the shared
// node pool, or -1 at the end of a list.
type ListNode struct {
	Idx  int // row (for L columns) or column (for U rows)
	Val  float64
	Next int
}

// DynamicFactors stores A = L·D·U in sorted singly-linked adjacency
// lists: one list per L column (rows ascending) and one per U row
// (columns ascending). This is the traditional container for
// incremental LU maintenance (INC/CINC in the paper): when an update
// introduces fill, nodes must be spliced into lists, and the paper
// profiles this structural maintenance at about 70% of Bennett's
// running time.
//
// The structure counts its restructuring work (node insertions and
// list scan steps) so benchmarks can separate structural cost from
// numerical cost.
type DynamicFactors struct {
	n     int
	Nodes []ListNode
	LHead []int // head node of L column j, -1 if empty
	UHead []int // head node of U row i, -1 if empty
	D     []float64

	lnnz, unnz int

	// Column-oriented pattern indices for the reach-based sparse solve
	// path: lCols[j] lists the rows of L column j and uCols[j] the rows
	// of U column j (the transpose pattern of the row-major U lists),
	// both sorted ascending. Built once at construction and kept
	// coherent by InsertL/InsertU/SpliceL/SpliceU — the only paths that
	// add structure (value overwrites reuse existing nodes).
	lCols [][]int
	uCols [][]int

	// Profiling counters.
	Inserts   int // nodes spliced in after construction
	ScanSteps int // list cells visited during updates
}

// NewDynamicFactors converts freshly factorized StaticFactors into the
// linked-list representation. (A full factorization is always computed
// into a static container first; the dynamic container exists to model
// the incremental-update path.)
func NewDynamicFactors(f *StaticFactors) *DynamicFactors {
	n := f.Dim()
	d := &DynamicFactors{
		n:     n,
		LHead: make([]int, n),
		UHead: make([]int, n),
		D:     make([]float64, n),
	}
	copy(d.D, f.D)
	for i := range d.LHead {
		d.LHead[i] = -1
		d.UHead[i] = -1
	}
	d.Nodes = make([]ListNode, 0, len(f.LVal)+len(f.UVal))
	// Build each L column list in reverse so heads end up sorted.
	for j := 0; j < n; j++ {
		lo, hi := f.LColPtr[j], f.LColPtr[j+1]
		for p := hi - 1; p >= lo; p-- {
			d.Nodes = append(d.Nodes, ListNode{Idx: f.LRowIdx[p], Val: f.LVal[p], Next: d.LHead[j]})
			d.LHead[j] = len(d.Nodes) - 1
			d.lnnz++
		}
	}
	for i := 0; i < n; i++ {
		lo, hi := f.URowPtr[i], f.URowPtr[i+1]
		for p := hi - 1; p >= lo; p-- {
			d.Nodes = append(d.Nodes, ListNode{Idx: f.UColIdx[p], Val: f.UVal[p], Next: d.UHead[i]})
			d.UHead[i] = len(d.Nodes) - 1
			d.unnz++
		}
	}
	// Column-oriented pattern indices (see the struct fields), copied
	// per column from the static container's native L columns and
	// frozen U cross view.
	d.lCols = make([][]int, n)
	d.uCols = make([][]int, n)
	for j := 0; j < n; j++ {
		d.lCols[j] = append([]int(nil), f.LSucc(j)...)
		d.uCols[j] = append([]int(nil), f.USucc(j)...)
	}
	return d
}

// Dim returns the matrix dimension.
func (d *DynamicFactors) Dim() int { return d.n }

// Clone returns a deep copy of the container, including the profiling
// counters at their current values.
func (d *DynamicFactors) Clone() Factors {
	c := &DynamicFactors{
		n:         d.n,
		Nodes:     append([]ListNode(nil), d.Nodes...),
		LHead:     append([]int(nil), d.LHead...),
		UHead:     append([]int(nil), d.UHead...),
		D:         append([]float64(nil), d.D...),
		lnnz:      d.lnnz,
		unnz:      d.unnz,
		Inserts:   d.Inserts,
		ScanSteps: d.ScanSteps,
		lCols:     make([][]int, d.n),
		uCols:     make([][]int, d.n),
	}
	for j := range d.lCols {
		c.lCols[j] = append([]int(nil), d.lCols[j]...)
		c.uCols[j] = append([]int(nil), d.uCols[j]...)
	}
	return c
}

// Size returns the current structural size |sp(L)| + |sp(U)| + n. It
// grows as incremental updates insert fill.
func (d *DynamicFactors) Size() int { return d.lnnz + d.unnz + d.n }

// newNode appends a pool cell and returns its index.
func (d *DynamicFactors) newNode(idx int, val float64, next int) int {
	d.Nodes = append(d.Nodes, ListNode{Idx: idx, Val: val, Next: next})
	return len(d.Nodes) - 1
}

// InsertL splices value val at L(i, j), keeping column j sorted. If the
// position already exists its value is overwritten. The scan from the
// list head is deliberate: it reproduces the access pattern (and cost)
// of adjacency-list maintenance.
func (d *DynamicFactors) InsertL(i, j int, val float64) {
	prev := -1
	cur := d.LHead[j]
	for cur != -1 && d.Nodes[cur].Idx < i {
		d.ScanSteps++
		prev = cur
		cur = d.Nodes[cur].Next
	}
	if cur != -1 && d.Nodes[cur].Idx == i {
		d.Nodes[cur].Val = val
		return
	}
	nn := d.newNode(i, val, cur)
	if prev == -1 {
		d.LHead[j] = nn
	} else {
		d.Nodes[prev].Next = nn
	}
	d.lCols[j] = insertSorted(d.lCols[j], i)
	d.Inserts++
	d.lnnz++
}

// InsertU splices value val at U(i, j), keeping row i sorted.
func (d *DynamicFactors) InsertU(i, j int, val float64) {
	prev := -1
	cur := d.UHead[i]
	for cur != -1 && d.Nodes[cur].Idx < j {
		d.ScanSteps++
		prev = cur
		cur = d.Nodes[cur].Next
	}
	if cur != -1 && d.Nodes[cur].Idx == j {
		d.Nodes[cur].Val = val
		return
	}
	nn := d.newNode(j, val, cur)
	if prev == -1 {
		d.UHead[i] = nn
	} else {
		d.Nodes[prev].Next = nn
	}
	d.uCols[j] = insertSorted(d.uCols[j], i)
	d.Inserts++
	d.unnz++
}

// SpliceL inserts a new node L(row, col) = val between the known
// neighbours prev and next of column col's list (prev == -1 inserts at
// the head). Callers that already hold a cursor — like Bennett's merged
// walk — use this to splice without rescanning; the insertion is still
// counted as restructuring work.
func (d *DynamicFactors) SpliceL(col, prev, next, row int, val float64) int {
	nn := d.newNode(row, val, next)
	if prev == -1 {
		d.LHead[col] = nn
	} else {
		d.Nodes[prev].Next = nn
	}
	d.lCols[col] = insertSorted(d.lCols[col], row)
	d.Inserts++
	d.lnnz++
	return nn
}

// SpliceU is the U-row analogue of SpliceL.
func (d *DynamicFactors) SpliceU(row, prev, next, col int, val float64) int {
	nn := d.newNode(col, val, next)
	if prev == -1 {
		d.UHead[row] = nn
	} else {
		d.Nodes[prev].Next = nn
	}
	d.uCols[col] = insertSorted(d.uCols[col], row)
	d.Inserts++
	d.unnz++
	return nn
}

// insertSorted splices v into the ascending slice s. Callers only
// insert positions that are structurally new, so no duplicate check is
// needed beyond the debug guarantee of the linked lists themselves.
func insertSorted(s []int, v int) []int {
	k := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[k+1:], s[k:])
	s[k] = v
	return s
}

// LSucc returns the rows fed by column j of L — the maintained
// column-oriented mirror of the (row-sorted) L column list.
func (d *DynamicFactors) LSucc(j int) []int { return d.lCols[j] }

// USucc returns the rows of column j of U — the maintained transpose
// pattern of the row-major U lists.
func (d *DynamicFactors) USucc(j int) []int { return d.uCols[j] }

// SolveReachInPlace is the reach-restricted SolveInPlace (see the
// Factors interface for the contract): identical loops to SolveInPlace
// restricted to the reach sets, so results are bit-identical on them.
func (d *DynamicFactors) SolveReachInPlace(x []float64, freach, breach []int) {
	for _, j := range freach {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for cur := d.LHead[j]; cur != -1; cur = d.Nodes[cur].Next {
			x[d.Nodes[cur].Idx] -= d.Nodes[cur].Val * xj
		}
	}
	for _, i := range freach {
		x[i] /= d.D[i]
	}
	for t := len(breach) - 1; t >= 0; t-- {
		i := breach[t]
		s := x[i]
		for cur := d.UHead[i]; cur != -1; cur = d.Nodes[cur].Next {
			s -= d.Nodes[cur].Val * x[d.Nodes[cur].Idx]
		}
		x[i] = s
	}
}

// LAt returns L(i, j), scanning column j.
func (d *DynamicFactors) LAt(i, j int) float64 {
	for cur := d.LHead[j]; cur != -1; cur = d.Nodes[cur].Next {
		if d.Nodes[cur].Idx == i {
			return d.Nodes[cur].Val
		}
		if d.Nodes[cur].Idx > i {
			break
		}
	}
	return 0
}

// UAt returns U(i, j), scanning row i.
func (d *DynamicFactors) UAt(i, j int) float64 {
	for cur := d.UHead[i]; cur != -1; cur = d.Nodes[cur].Next {
		if d.Nodes[cur].Idx == j {
			return d.Nodes[cur].Val
		}
		if d.Nodes[cur].Idx > j {
			break
		}
	}
	return 0
}

// SolveInPlace solves L·D·U·x = b, overwriting b with x.
func (d *DynamicFactors) SolveInPlace(b []float64) {
	if len(b) != d.n {
		panic("lu: SolveInPlace dimension mismatch")
	}
	n := d.n
	for j := 0; j < n; j++ {
		bj := b[j]
		if bj == 0 {
			continue
		}
		for cur := d.LHead[j]; cur != -1; cur = d.Nodes[cur].Next {
			b[d.Nodes[cur].Idx] -= d.Nodes[cur].Val * bj
		}
	}
	for i := 0; i < n; i++ {
		b[i] /= d.D[i]
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for cur := d.UHead[i]; cur != -1; cur = d.Nodes[cur].Next {
			s -= d.Nodes[cur].Val * b[d.Nodes[cur].Idx]
		}
		b[i] = s
	}
}

// SolveBlockInPlace is the column-blocked SolveInPlace (see the
// Factors interface for the contract): every linked-list traversal —
// the expensive part of a solve on the dynamic container, since each
// node hop is a dependent load — is shared by the whole block via an
// inner per-vector loop, while each vector's own operation sequence
// stays exactly SolveInPlace's, keeping the results bit-identical.
func (d *DynamicFactors) SolveBlockInPlace(xs [][]float64) {
	for _, x := range xs {
		if len(x) != d.n {
			panic("lu: SolveBlockInPlace dimension mismatch")
		}
	}
	n := d.n
	// s carries the per-vector running value across one list traversal
	// (x[j] in the forward sweep, the accumulating x[i] in the backward
	// sweep). One small allocation per block, against k list walks
	// saved.
	s := make([]float64, len(xs))
	// Forward: L y = b. A vector with x[j] == 0 performs no operation
	// at column j — the same skip the single-vector solve takes for the
	// whole column — so per vector the operation sequence is unchanged.
	for j := 0; j < n; j++ {
		any := false
		for r, x := range xs {
			s[r] = x[j]
			if s[r] != 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		for cur := d.LHead[j]; cur != -1; cur = d.Nodes[cur].Next {
			idx, val := d.Nodes[cur].Idx, d.Nodes[cur].Val
			for r, x := range xs {
				if s[r] != 0 {
					x[idx] -= val * s[r]
				}
			}
		}
	}
	// Diagonal: D z = y.
	for i := 0; i < n; i++ {
		dv := d.D[i]
		for _, x := range xs {
			x[i] /= dv
		}
	}
	// Backward: U x = z, one row traversal feeding every vector's
	// accumulator in list order — per vector the same subtraction
	// sequence as the single solve.
	for i := n - 1; i >= 0; i-- {
		for r, x := range xs {
			s[r] = x[i]
		}
		for cur := d.UHead[i]; cur != -1; cur = d.Nodes[cur].Next {
			idx, val := d.Nodes[cur].Idx, d.Nodes[cur].Val
			for r, x := range xs {
				s[r] -= val * x[idx]
			}
		}
		for r, x := range xs {
			x[i] = s[r]
		}
	}
}

// Reconstruct multiplies the factors back into an explicit matrix
// (test helper).
func (d *DynamicFactors) Reconstruct() *sparse.CSR {
	n := d.n
	l := make([][]float64, n)
	u := make([][]float64, n)
	for i := 0; i < n; i++ {
		l[i] = make([]float64, n)
		u[i] = make([]float64, n)
		l[i][i] = 1
		u[i][i] = 1
	}
	for j := 0; j < n; j++ {
		for cur := d.LHead[j]; cur != -1; cur = d.Nodes[cur].Next {
			l[d.Nodes[cur].Idx][j] = d.Nodes[cur].Val
		}
	}
	for i := 0; i < n; i++ {
		for cur := d.UHead[i]; cur != -1; cur = d.Nodes[cur].Next {
			u[i][d.Nodes[cur].Idx] = d.Nodes[cur].Val
		}
	}
	c := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= i && k <= j; k++ {
				s += l[i][k] * d.D[k] * u[k][j]
			}
			if s != 0 {
				c.Add(i, j, s)
			}
		}
	}
	return c.ToCSR()
}
