package lu

// This file is the blocked multi-RHS solve path: one traversal of the
// factors answers k right-hand sides (SolveBlockInPlace on the factor
// containers does the sharing; this layer adds the permutations and the
// workspace). It exists for the serving layer's batching stage — a
// worker that has gathered k compatible queries against one pinned
// solver amortizes the factor walk across all of them — and its
// contract is the same bit-identity the sparse path carries: SolveBlock
// is indistinguishable, bit for bit, from k independent SolveWith
// calls, so batching is purely an execution-schedule decision and never
// a numerics decision.

// BlockWorkspace holds the k permuted intermediate vectors of a blocked
// solve so a steady-state serving worker allocates nothing per block.
// The zero value is ready to use; a workspace must not be shared
// between concurrent solves but may be reused across blocks of
// different widths and solvers of different dimensions (capacity is
// kept on shrink, like SolveWorkspace).
type BlockWorkspace struct {
	cols [][]float64
	pbuf []float64    // panel gather scratch (PanelSet.SolveBlockInPlace)
	lbuf []float64    // per-lane multiplier scratch for the panel kernels
	ibuf []int        // active-lane index scratch for the panel kernels
	obuf []int        // union-offset scratch for the backward panel sweep
	hbuf [][]float64  // lane-ordered RHS headers (panel interleave)
	one  [1][]float64 // single-RHS header for SolvePanels
}

// vectors returns k scratch vectors of dimension n, reusing capacity.
// Every position is overwritten by the permutation before being read,
// so stale values are harmless. The grow path copies up to capacity,
// not length, so vectors parked beyond a shrunken length survive the
// next growth instead of being reallocated (a serving worker's batch
// width jitters query to query; see the Workspace.vector contract).
func (ws *BlockWorkspace) vectors(k, n int) [][]float64 {
	if cap(ws.cols) < k {
		next := make([][]float64, k)
		copy(next, ws.cols[:cap(ws.cols)])
		ws.cols = next
	}
	ws.cols = ws.cols[:k]
	for r := range ws.cols {
		if cap(ws.cols[r]) < n {
			ws.cols[r] = make([]float64, n)
		}
		ws.cols[r] = ws.cols[r][:n]
	}
	return ws.cols
}

// scratch returns a float64 scratch slice of the given size, reusing
// capacity across calls. Callers overwrite before reading.
func (ws *BlockWorkspace) scratch(size int) []float64 {
	if cap(ws.pbuf) < size {
		ws.pbuf = make([]float64, size)
	}
	ws.pbuf = ws.pbuf[:size]
	return ws.pbuf
}

// lanes returns a k-length multiplier scratch for the panel kernels,
// reusing capacity. Callers overwrite before reading.
func (ws *BlockWorkspace) lanes(k int) []float64 {
	if cap(ws.lbuf) < k {
		ws.lbuf = make([]float64, k)
	}
	ws.lbuf = ws.lbuf[:k]
	return ws.lbuf
}

// list returns a zero-length int slice of capacity k (the active-lane
// list of the panel kernels), reusing capacity across calls.
func (ws *BlockWorkspace) list(k int) []int {
	if cap(ws.ibuf) < k {
		ws.ibuf = make([]int, k)
	}
	return ws.ibuf[:0]
}

// headers returns a k-length slice-header scratch (the lane-ordered
// view of the right-hand sides in the panel interleave), reusing
// capacity across calls. Callers overwrite before reading.
func (ws *BlockWorkspace) headers(k int) [][]float64 {
	if cap(ws.hbuf) < k {
		ws.hbuf = make([][]float64, k)
	}
	return ws.hbuf[:k]
}

// offsets returns an int scratch slice of the given size (the
// pre-scaled union column offsets of one panel's backward rows),
// reusing capacity across calls. Callers overwrite before reading.
func (ws *BlockWorkspace) offsets(size int) []int {
	if cap(ws.obuf) < size {
		ws.obuf = make([]int, size)
	}
	return ws.obuf[:size]
}

// SolveBlock solves A·x_r = bs[r] for all right-hand sides through one
// blocked traversal of the factors, writing solution r into dsts[r]
// (reusing its capacity; nil entries — or a nil dsts, which allocates
// the slice of slices too — get fresh vectors). dsts[r] may alias
// bs[r]: every b is consumed by the permutation pass before any dst is
// written. Every position of every dst is overwritten. Each returned
// vector is bit-identical to SolveWith(bs[r]).
func (s *Solver) SolveBlock(dsts, bs [][]float64, ws *BlockWorkspace) [][]float64 {
	if ws == nil {
		ws = &BlockWorkspace{}
	}
	k := len(bs)
	n := len(s.O.Row)
	if dsts == nil {
		dsts = make([][]float64, k)
	}
	cols := ws.vectors(k, n)
	for r, b := range bs {
		w := cols[r]
		for i, v := range s.O.Row {
			w[i] = b[v] // b' = P·b
		}
	}
	s.F.SolveBlockInPlace(cols)
	for r := range bs {
		dst := dsts[r]
		if cap(dst) < n {
			dst = make([]float64, n)
		}
		dst = dst[:n]
		w := cols[r]
		for i, v := range s.O.Col {
			dst[v] = w[i] // x = Q·x'
		}
		dsts[r] = dst
	}
	return dsts
}
