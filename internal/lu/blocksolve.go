package lu

// This file is the blocked multi-RHS solve path: one traversal of the
// factors answers k right-hand sides (SolveBlockInPlace on the factor
// containers does the sharing; this layer adds the permutations and the
// workspace). It exists for the serving layer's batching stage — a
// worker that has gathered k compatible queries against one pinned
// solver amortizes the factor walk across all of them — and its
// contract is the same bit-identity the sparse path carries: SolveBlock
// is indistinguishable, bit for bit, from k independent SolveWith
// calls, so batching is purely an execution-schedule decision and never
// a numerics decision.

// BlockWorkspace holds the k permuted intermediate vectors of a blocked
// solve so a steady-state serving worker allocates nothing per block.
// The zero value is ready to use; a workspace must not be shared
// between concurrent solves but may be reused across blocks of
// different widths and solvers of different dimensions (capacity is
// kept on shrink, like SolveWorkspace).
type BlockWorkspace struct {
	cols [][]float64
}

// vectors returns k scratch vectors of dimension n, reusing capacity.
// Every position is overwritten by the permutation before being read,
// so stale values are harmless.
func (ws *BlockWorkspace) vectors(k, n int) [][]float64 {
	if cap(ws.cols) < k {
		next := make([][]float64, k)
		copy(next, ws.cols)
		ws.cols = next
	}
	ws.cols = ws.cols[:k]
	for r := range ws.cols {
		if cap(ws.cols[r]) < n {
			ws.cols[r] = make([]float64, n)
		}
		ws.cols[r] = ws.cols[r][:n]
	}
	return ws.cols
}

// SolveBlock solves A·x_r = bs[r] for all right-hand sides through one
// blocked traversal of the factors, writing solution r into dsts[r]
// (reusing its capacity; nil entries — or a nil dsts, which allocates
// the slice of slices too — get fresh vectors). dsts[r] may alias
// bs[r]: every b is consumed by the permutation pass before any dst is
// written. Every position of every dst is overwritten. Each returned
// vector is bit-identical to SolveWith(bs[r]).
func (s *Solver) SolveBlock(dsts, bs [][]float64, ws *BlockWorkspace) [][]float64 {
	if ws == nil {
		ws = &BlockWorkspace{}
	}
	k := len(bs)
	n := len(s.O.Row)
	if dsts == nil {
		dsts = make([][]float64, k)
	}
	cols := ws.vectors(k, n)
	for r, b := range bs {
		w := cols[r]
		for i, v := range s.O.Row {
			w[i] = b[v] // b' = P·b
		}
	}
	s.F.SolveBlockInPlace(cols)
	for r := range bs {
		dst := dsts[r]
		if cap(dst) < n {
			dst = make([]float64, n)
		}
		dst = dst[:n]
		w := cols[r]
		for i, v := range s.O.Col {
			dst[v] = w[i] // x = Q·x'
		}
		dsts[r] = dst
	}
	return dsts
}
