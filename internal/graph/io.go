package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The EGS text format is a deliberately trivial line format shared by
// cmd/egsgen and ReadEGS so sequences can be stored, diffed and
// consumed by tooling in any language:
//
//	egs <V> <T> <directed>
//	snapshot 0 <m0>
//	<u> <v>            (m0 edge lines)
//	snapshot 1 <m1>
//	...
//
// WriteEGS and ReadEGS round-trip exactly.

// WriteEGS serializes an EGS in the text format.
func WriteEGS(w io.Writer, s *EGS) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "egs %d %d %t\n", s.N(), s.Len(), s.Snapshots[0].Directed()); err != nil {
		return err
	}
	for t, g := range s.Snapshots {
		es := g.Edges()
		if _, err := fmt.Fprintf(bw, "snapshot %d %d\n", t, len(es)); err != nil {
			return err
		}
		for _, e := range es {
			if _, err := fmt.Fprintf(bw, "%d %d\n", e.From, e.To); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEGS parses the text format back into an EGS.
func ReadEGS(r io.Reader) (*EGS, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	head, ok := next()
	if !ok {
		return nil, fmt.Errorf("graph: empty EGS input")
	}
	var n, T int
	var directed bool
	if _, err := fmt.Sscanf(head, "egs %d %d %t", &n, &T, &directed); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %v", head, err)
	}
	if n <= 0 || T <= 0 {
		return nil, fmt.Errorf("graph: non-positive dimensions in header %q", head)
	}
	snaps := make([]*Graph, 0, T)
	for t := 0; t < T; t++ {
		h, ok := next()
		if !ok {
			return nil, fmt.Errorf("graph: truncated input at snapshot %d", t)
		}
		var idx, m int
		if _, err := fmt.Sscanf(h, "snapshot %d %d", &idx, &m); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad snapshot header %q", line, h)
		}
		if idx != t {
			return nil, fmt.Errorf("graph: snapshot %d out of order (want %d)", idx, t)
		}
		edges := make([]Edge, 0, m)
		for k := 0; k < m; k++ {
			l, ok := next()
			if !ok {
				return nil, fmt.Errorf("graph: truncated edge list in snapshot %d", t)
			}
			parts := strings.Fields(l)
			if len(parts) != 2 {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, l)
			}
			u, err1 := strconv.Atoi(parts[0])
			v, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil || u < 0 || u >= n || v < 0 || v >= n {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, l)
			}
			edges = append(edges, Edge{From: u, To: v})
		}
		snaps = append(snaps, New(n, directed, edges))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewEGS(snaps)
}
