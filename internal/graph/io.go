package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The EGS text format is a deliberately trivial line format shared by
// cmd/egsgen and ReadEGS so sequences can be stored, diffed and
// consumed by tooling in any language:
//
//	egs <V> <T> <directed>
//	snapshot 0 <m0>
//	<u> <v>            (m0 edge lines)
//	snapshot 1 <m1>
//	...
//
// WriteEGS and ReadEGS round-trip exactly.

// The delta text format is the streaming twin of the EGS format: the
// initial snapshot in full, then one event batch per step (the native
// input of core.Stream; see cmd/egsgen -deltas):
//
//	egsdeltas <V> <T> <directed>
//	init <m0>
//	<u> <v>            (m0 edge lines)
//	batch 1 <k1>
//	<op> <u> <v>       (k1 event lines, op ∈ + - ~)
//	batch 2 <k2>
//	...
//
// WriteDeltas and ReadDeltas round-trip exactly.

// MaxTextVertices bounds the vertex count the text parsers accept.
// The formats are consumed from untrusted files, and the header's
// vertex count drives O(V) allocations before a single edge line
// proves the input is real — an absurd count must fail cleanly instead
// of exhausting memory. It is a variable so tests (and tools that
// really do handle larger graphs) can adjust it.
var MaxTextVertices = 1 << 24

// MaxTextSnapshots bounds the snapshot/batch count the text parsers
// accept, for the same reason.
var MaxTextSnapshots = 1 << 20

// textPrealloc caps optimistic slice preallocation from untrusted
// header counts: growth beyond it is paid only as matching input lines
// actually arrive.
const textPrealloc = 1 << 16

// WriteEGS serializes an EGS in the text format.
func WriteEGS(w io.Writer, s *EGS) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "egs %d %d %t\n", s.N(), s.Len(), s.Snapshots[0].Directed()); err != nil {
		return err
	}
	for t, g := range s.Snapshots {
		es := g.Edges()
		if _, err := fmt.Fprintf(bw, "snapshot %d %d\n", t, len(es)); err != nil {
			return err
		}
		for _, e := range es {
			if _, err := fmt.Fprintf(bw, "%d %d\n", e.From, e.To); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEGS parses the text format back into an EGS.
func ReadEGS(r io.Reader) (*EGS, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	head, ok := next()
	if !ok {
		return nil, fmt.Errorf("graph: empty EGS input")
	}
	var n, T int
	var directed bool
	if _, err := fmt.Sscanf(head, "egs %d %d %t", &n, &T, &directed); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %v", head, err)
	}
	if n <= 0 || T <= 0 {
		return nil, fmt.Errorf("graph: non-positive dimensions in header %q", head)
	}
	if n > MaxTextVertices || T > MaxTextSnapshots {
		return nil, fmt.Errorf("graph: header %q exceeds limits (V <= %d, T <= %d)", head, MaxTextVertices, MaxTextSnapshots)
	}
	snaps := make([]*Graph, 0, min(T, textPrealloc))
	for t := 0; t < T; t++ {
		h, ok := next()
		if !ok {
			return nil, fmt.Errorf("graph: truncated input at snapshot %d", t)
		}
		var idx, m int
		if _, err := fmt.Sscanf(h, "snapshot %d %d", &idx, &m); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad snapshot header %q", line, h)
		}
		if idx != t {
			return nil, fmt.Errorf("graph: snapshot %d out of order (want %d)", idx, t)
		}
		if m < 0 {
			return nil, fmt.Errorf("graph: line %d: negative edge count %d", line, m)
		}
		edges := make([]Edge, 0, min(m, textPrealloc))
		for k := 0; k < m; k++ {
			l, ok := next()
			if !ok {
				return nil, fmt.Errorf("graph: truncated edge list in snapshot %d", t)
			}
			parts := strings.Fields(l)
			if len(parts) != 2 {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, l)
			}
			u, err1 := strconv.Atoi(parts[0])
			v, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil || u < 0 || u >= n || v < 0 || v >= n {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, l)
			}
			edges = append(edges, Edge{From: u, To: v})
		}
		snaps = append(snaps, New(n, directed, edges))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewEGS(snaps)
}

// WriteDeltas serializes an initial snapshot plus its event batches in
// the delta text format. The header's T counts the initial snapshot
// plus one snapshot per batch, matching the EGS the stream materializes.
func WriteDeltas(w io.Writer, initial *Graph, batches [][]EdgeEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "egsdeltas %d %d %t\n", initial.N(), len(batches)+1, initial.Directed()); err != nil {
		return err
	}
	es := initial.Edges()
	if _, err := fmt.Fprintf(bw, "init %d\n", len(es)); err != nil {
		return err
	}
	for _, e := range es {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.From, e.To); err != nil {
			return err
		}
	}
	for t, evs := range batches {
		if _, err := fmt.Fprintf(bw, "batch %d %d\n", t+1, len(evs)); err != nil {
			return err
		}
		for _, ev := range evs {
			if _, err := fmt.Fprintf(bw, "%s %d %d\n", ev.Op, ev.From, ev.To); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadDeltas parses the delta text format back into the initial
// snapshot and its event batches.
func ReadDeltas(r io.Reader) (*Graph, [][]EdgeEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	head, ok := next()
	if !ok {
		return nil, nil, fmt.Errorf("graph: empty delta input")
	}
	var n, T int
	var directed bool
	if _, err := fmt.Sscanf(head, "egsdeltas %d %d %t", &n, &T, &directed); err != nil {
		return nil, nil, fmt.Errorf("graph: bad delta header %q: %v", head, err)
	}
	if n <= 0 || T <= 0 {
		return nil, nil, fmt.Errorf("graph: non-positive dimensions in header %q", head)
	}
	if n > MaxTextVertices || T > MaxTextSnapshots {
		return nil, nil, fmt.Errorf("graph: header %q exceeds limits (V <= %d, T <= %d)", head, MaxTextVertices, MaxTextSnapshots)
	}
	h, ok := next()
	if !ok {
		return nil, nil, fmt.Errorf("graph: truncated delta input before init block")
	}
	var m0 int
	if _, err := fmt.Sscanf(h, "init %d", &m0); err != nil {
		return nil, nil, fmt.Errorf("graph: line %d: bad init header %q", line, h)
	}
	if m0 < 0 {
		return nil, nil, fmt.Errorf("graph: line %d: negative edge count %d", line, m0)
	}
	edges := make([]Edge, 0, min(m0, textPrealloc))
	for k := 0; k < m0; k++ {
		l, ok := next()
		if !ok {
			return nil, nil, fmt.Errorf("graph: truncated initial edge list")
		}
		parts := strings.Fields(l)
		if len(parts) != 2 {
			return nil, nil, fmt.Errorf("graph: line %d: bad edge %q", line, l)
		}
		u, err1 := strconv.Atoi(parts[0])
		v, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || u < 0 || u >= n || v < 0 || v >= n {
			return nil, nil, fmt.Errorf("graph: line %d: bad edge %q", line, l)
		}
		edges = append(edges, Edge{From: u, To: v})
	}
	initial := New(n, directed, edges)
	batches := make([][]EdgeEvent, 0, min(T-1, textPrealloc))
	for t := 1; t < T; t++ {
		h, ok := next()
		if !ok {
			return nil, nil, fmt.Errorf("graph: truncated delta input at batch %d", t)
		}
		var idx, k int
		if _, err := fmt.Sscanf(h, "batch %d %d", &idx, &k); err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad batch header %q", line, h)
		}
		if idx != t {
			return nil, nil, fmt.Errorf("graph: batch %d out of order (want %d)", idx, t)
		}
		if k < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative event count %d", line, k)
		}
		evs := make([]EdgeEvent, 0, min(k, textPrealloc))
		for e := 0; e < k; e++ {
			l, ok := next()
			if !ok {
				return nil, nil, fmt.Errorf("graph: truncated event list in batch %d", t)
			}
			parts := strings.Fields(l)
			if len(parts) != 3 {
				return nil, nil, fmt.Errorf("graph: line %d: bad event %q", line, l)
			}
			op, err := ParseEdgeOp(parts[0])
			if err != nil {
				return nil, nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			u, err1 := strconv.Atoi(parts[1])
			v, err2 := strconv.Atoi(parts[2])
			if err1 != nil || err2 != nil || u < 0 || u >= n || v < 0 || v >= n {
				return nil, nil, fmt.Errorf("graph: line %d: bad event %q", line, l)
			}
			evs = append(evs, EdgeEvent{From: u, To: v, Op: op})
		}
		batches = append(batches, evs)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return initial, batches, nil
}
