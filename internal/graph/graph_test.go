package graph

import (
	"math"
	"testing"
)

func path3() *Graph {
	return New(3, true, []Edge{{0, 1}, {1, 2}})
}

func TestNewDirectedBasics(t *testing.T) {
	g := path3()
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("directed edge membership wrong")
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 || g.InDegree(0) != 0 {
		t.Error("degree bookkeeping wrong")
	}
}

func TestNewUndirectedMirrors(t *testing.T) {
	g := New(3, false, []Edge{{2, 0}})
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("undirected edge not mirrored")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestNewDropsSelfLoopsAndDuplicates(t *testing.T) {
	g := New(3, true, []Edge{{0, 0}, {0, 1}, {0, 1}})
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{0, 1}, {1, 2}, {3, 0}}
	g := New(4, true, in)
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("Edges returned %d, want %d", len(out), len(in))
	}
	g2 := New(4, true, out)
	for _, e := range in {
		if !g2.HasEdge(e.From, e.To) {
			t.Errorf("edge %v lost in round trip", e)
		}
	}
}

func TestUndirectedEdgesCanonical(t *testing.T) {
	g := New(3, false, []Edge{{2, 1}, {1, 0}})
	for _, e := range g.Edges() {
		if e.From >= e.To {
			t.Errorf("edge %v not canonical", e)
		}
	}
	if len(g.Edges()) != 2 {
		t.Errorf("got %d edges, want 2", len(g.Edges()))
	}
}

func TestRWRMatrixColumnsSumToD(t *testing.T) {
	g := New(4, true, []Edge{{0, 1}, {0, 2}, {1, 2}, {3, 0}})
	a := RWRMatrix(0.85)(g)
	// Column i of A is e_i − d·W(:,i); off-diagonal column sums must be
	// −d for non-dangling i.
	d := a.Dense()
	for i := 0; i < 4; i++ {
		if d[i][i] != 1 {
			t.Errorf("diagonal A(%d,%d) = %v, want 1", i, i, d[i][i])
		}
		colSum := 0.0
		for j := 0; j < 4; j++ {
			if j != i {
				colSum += d[j][i]
			}
		}
		want := -0.85
		if g.OutDegree(i) == 0 {
			want = 0
		}
		if math.Abs(colSum-want) > 1e-12 {
			t.Errorf("off-diagonal column %d sum = %v, want %v", i, colSum, want)
		}
	}
}

func TestRWRMatrixEntryValue(t *testing.T) {
	g := New(3, true, []Edge{{0, 1}, {0, 2}})
	a := RWRMatrix(0.8)(g)
	// W(1,0) = 1/2 so A(1,0) = −0.4.
	if got := a.At(1, 0); math.Abs(got+0.4) > 1e-15 {
		t.Errorf("A(1,0) = %v, want -0.4", got)
	}
	if got := a.At(2, 1); got != 0 {
		t.Errorf("A(2,1) = %v, want 0", got)
	}
}

func TestSymmetricWalkMatrixSymmetricAndDominant(t *testing.T) {
	g := New(5, false, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {1, 4}})
	a := SymmetricWalkMatrix(0.9)(g)
	if !a.IsSymmetric(1e-15) {
		t.Fatal("matrix not symmetric")
	}
	d := a.Dense()
	for i := range d {
		off := 0.0
		for j, v := range d[i] {
			if j != i {
				off += math.Abs(v)
			}
		}
		if off >= d[i][i] {
			t.Errorf("row %d not strictly diagonally dominant: off=%v diag=%v", i, off, d[i][i])
		}
	}
}

func TestLaplacianMatrix(t *testing.T) {
	g := New(3, false, []Edge{{0, 1}, {1, 2}})
	a := LaplacianMatrix(0.5)(g)
	if got := a.At(1, 1); got != 2.5 {
		t.Errorf("A(1,1) = %v, want 2.5", got)
	}
	if got := a.At(0, 1); got != -1 {
		t.Errorf("A(0,1) = %v, want -1", got)
	}
	if !a.IsSymmetric(0) {
		t.Error("Laplacian not symmetric")
	}
}

func TestNewEGSValidation(t *testing.T) {
	g3 := path3()
	g4 := New(4, true, nil)
	if _, err := NewEGS([]*Graph{g3, g4}); err == nil {
		t.Error("mismatched vertex counts accepted")
	}
	if _, err := NewEGS(nil); err == nil {
		t.Error("empty EGS accepted")
	}
	u := New(3, false, nil)
	if _, err := NewEGS([]*Graph{g3, u}); err == nil {
		t.Error("mixed directedness accepted")
	}
	if s, err := NewEGS([]*Graph{g3, g3}); err != nil || s.Len() != 2 || s.N() != 3 {
		t.Error("valid EGS rejected")
	}
}

func TestAvgSuccessiveMES(t *testing.T) {
	a := New(3, true, []Edge{{0, 1}, {1, 2}})
	b := New(3, true, []Edge{{0, 1}})
	s, err := NewEGS([]*Graph{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// patterns {01,12} and {01}: mes = 2*1/(2+1) = 2/3
	if got := s.AvgSuccessiveMES(); math.Abs(got-2.0/3) > 1e-15 {
		t.Errorf("AvgSuccessiveMES = %v, want 2/3", got)
	}
	ident, _ := NewEGS([]*Graph{a, a, a})
	if got := ident.AvgSuccessiveMES(); got != 1 {
		t.Errorf("identical snapshots mes = %v, want 1", got)
	}
}

func TestDeriveEMS(t *testing.T) {
	s, _ := NewEGS([]*Graph{path3(), path3()})
	ems := DeriveEMS(s, RWRMatrix(0.85))
	if ems.Len() != 2 || ems.N() != 3 {
		t.Fatalf("EMS shape wrong: len=%d n=%d", ems.Len(), ems.N())
	}
	if !ems.Matrices[0].EqualApprox(ems.Matrices[1], 0) {
		t.Error("identical snapshots gave different matrices")
	}
}
