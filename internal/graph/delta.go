package graph

import "fmt"

// This file is the edge-delta substrate of the streaming engine: the
// event vocabulary (EdgeEvent), a mutable graph accumulator that applies
// events (Builder), and the diff that turns a pair of snapshots into the
// event batch transforming one into the other. Snapshots are thereby a
// *derived* view: the native input of the pipeline is the event stream,
// and a pre-materialized EGS is replayed by diffing consecutive
// snapshots (see core.Replay).

// EdgeOp is the kind of an edge event.
type EdgeOp uint8

// The event vocabulary. The snapshot substrate is unweighted, so
// EdgeUpdate — a weight refresh on the wire — degenerates to an
// idempotent upsert: it inserts the edge when absent and is a no-op
// otherwise. It exists so feeds produced for weighted derivers keep a
// distinct opcode instead of overloading EdgeInsert.
const (
	EdgeInsert EdgeOp = iota // add the edge (no-op when present)
	EdgeDelete               // remove the edge (no-op when absent)
	EdgeUpdate               // assert the edge (insert when absent)
)

// String renders the op in the wire form used by the delta text format
// and the ingest API: "+", "-", "~".
func (op EdgeOp) String() string {
	switch op {
	case EdgeInsert:
		return "+"
	case EdgeDelete:
		return "-"
	case EdgeUpdate:
		return "~"
	}
	return fmt.Sprintf("EdgeOp(%d)", uint8(op))
}

// ParseEdgeOp accepts both the wire form ("+", "-", "~") and the
// spelled-out form ("insert", "delete", "update") of an edge op.
func ParseEdgeOp(s string) (EdgeOp, error) {
	switch s {
	case "+", "insert":
		return EdgeInsert, nil
	case "-", "delete":
		return EdgeDelete, nil
	case "~", "update":
		return EdgeUpdate, nil
	}
	return 0, fmt.Errorf("graph: unknown edge op %q", s)
}

// EdgeEvent is one edge change. For undirected graphs the endpoint
// order is irrelevant (events are canonicalized on application).
type EdgeEvent struct {
	From, To int
	Op       EdgeOp
}

// Builder is a mutable graph accumulator: the live adjacency state of a
// streaming engine, advanced one edge event at a time and materialized
// into immutable snapshots on demand. Undirected builders store each
// edge once in canonical (min, max) orientation, mirroring Graph.
type Builder struct {
	n        int
	directed bool
	adj      []map[int]struct{} // adj[u] = out-neighbours (canonical for undirected)
	edges    int
}

// NewBuilder returns an empty builder on n vertices.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: n, directed: directed, adj: make([]map[int]struct{}, n)}
}

// NewBuilderFrom seeds a builder with a snapshot's edge set.
func NewBuilderFrom(g *Graph) *Builder {
	b := NewBuilder(g.N(), g.Directed())
	for _, e := range g.Edges() {
		b.put(e.From, e.To)
	}
	return b
}

// N returns the vertex count.
func (b *Builder) N() int { return b.n }

// Directed reports whether the builder accumulates a directed graph.
func (b *Builder) Directed() bool { return b.directed }

// NumEdges returns the current edge count (undirected edges counted
// once).
func (b *Builder) NumEdges() int { return b.edges }

// canon maps an endpoint pair to storage orientation.
func (b *Builder) canon(u, v int) (int, int) {
	if !b.directed && v < u {
		return v, u
	}
	return u, v
}

// Has reports whether the edge (u, v) is currently present.
func (b *Builder) Has(u, v int) bool {
	u, v = b.canon(u, v)
	if b.adj[u] == nil {
		return false
	}
	_, ok := b.adj[u][v]
	return ok
}

func (b *Builder) put(u, v int) bool {
	u, v = b.canon(u, v)
	if b.adj[u] == nil {
		b.adj[u] = make(map[int]struct{})
	}
	if _, ok := b.adj[u][v]; ok {
		return false
	}
	b.adj[u][v] = struct{}{}
	b.edges++
	return true
}

func (b *Builder) del(u, v int) bool {
	u, v = b.canon(u, v)
	if b.adj[u] == nil {
		return false
	}
	if _, ok := b.adj[u][v]; !ok {
		return false
	}
	delete(b.adj[u], v)
	b.edges--
	return true
}

// check validates an event's endpoints. Self-loops are legal input but
// never stored (Graph drops them too), so they are reported as
// applicable no-ops rather than errors.
func (b *Builder) check(ev EdgeEvent) error {
	if ev.From < 0 || ev.From >= b.n || ev.To < 0 || ev.To >= b.n {
		return fmt.Errorf("graph: event %v (%d,%d) out of range [0,%d)", ev.Op, ev.From, ev.To, b.n)
	}
	switch ev.Op {
	case EdgeInsert, EdgeDelete, EdgeUpdate:
		return nil
	}
	return fmt.Errorf("graph: event (%d,%d) has unknown op %d", ev.From, ev.To, uint8(ev.Op))
}

// Apply advances the builder by one event and reports whether the edge
// set actually changed (inserting a present edge, deleting an absent
// one, and self-loops are no-ops). The builder is unchanged on error.
func (b *Builder) Apply(ev EdgeEvent) (bool, error) {
	if err := b.check(ev); err != nil {
		return false, err
	}
	if ev.From == ev.To {
		return false, nil
	}
	switch ev.Op {
	case EdgeDelete:
		return b.del(ev.From, ev.To), nil
	default: // EdgeInsert, EdgeUpdate
		return b.put(ev.From, ev.To), nil
	}
}

// ValidateBatch checks every event against the builder's vertex range
// and the op vocabulary without mutating anything — the write-ahead
// path of the streaming engine validates before logging so a batch that
// can never apply is rejected before it is made durable.
func (b *Builder) ValidateBatch(events []EdgeEvent) error {
	for _, ev := range events {
		if err := b.check(ev); err != nil {
			return err
		}
	}
	return nil
}

// ApplyBatch validates every event first and then applies them in
// order, so a malformed batch leaves the builder untouched. It returns
// the number of events that changed the edge set.
func (b *Builder) ApplyBatch(events []EdgeEvent) (int, error) {
	if err := b.ValidateBatch(events); err != nil {
		return 0, err
	}
	changed := 0
	for _, ev := range events {
		if ok, _ := b.Apply(ev); ok {
			changed++
		}
	}
	return changed, nil
}

// Graph materializes the current edge set into an immutable snapshot.
// The result is identical (ordering included) to constructing the same
// edge set via New, so matrices derived from streamed state are
// bit-identical to matrices derived from pre-built snapshots.
func (b *Builder) Graph() *Graph {
	es := make([]Edge, 0, b.edges)
	for u := range b.adj {
		for v := range b.adj[u] {
			es = append(es, Edge{From: u, To: v})
		}
	}
	return New(b.n, b.directed, es)
}

// Diff returns the edge events that transform prev into next: deletes
// for edges only in prev, inserts for edges only in next, in
// deterministic row-major order. Applying the result to a builder
// seeded with prev yields exactly next. Both snapshots must share
// vertex count and directedness.
func Diff(prev, next *Graph) []EdgeEvent {
	if prev.N() != next.N() {
		panic(fmt.Sprintf("graph: Diff dimension mismatch %d vs %d", prev.N(), next.N()))
	}
	if prev.Directed() != next.Directed() {
		panic("graph: Diff directedness mismatch")
	}
	var out []EdgeEvent
	emit := func(u, v int, op EdgeOp) {
		if prev.Directed() || u < v {
			out = append(out, EdgeEvent{From: u, To: v, Op: op})
		}
	}
	for u := 0; u < prev.N(); u++ {
		a, b := prev.OutNeighbors(u), next.OutNeighbors(u)
		ka, kb := 0, 0
		for ka < len(a) || kb < len(b) {
			switch {
			case kb >= len(b) || (ka < len(a) && a[ka] < b[kb]):
				emit(u, a[ka], EdgeDelete)
				ka++
			case ka >= len(a) || b[kb] < a[ka]:
				emit(u, b[kb], EdgeInsert)
				kb++
			default:
				ka++
				kb++
			}
		}
	}
	return out
}

// DeltaBatches diffs the consecutive snapshots of an EGS into per-step
// event batches: batch t-1 transforms snapshot t-1 into snapshot t
// (length T-1). Together with the first snapshot this is the streaming
// engine's native representation of the sequence.
func DeltaBatches(s *EGS) [][]EdgeEvent {
	out := make([][]EdgeEvent, 0, s.Len()-1)
	for t := 1; t < s.Len(); t++ {
		out = append(out, Diff(s.Snapshots[t-1], s.Snapshots[t]))
	}
	return out
}
