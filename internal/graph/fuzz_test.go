package graph_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

// FuzzReadDeltas hammers the egsdeltas text parser with hostile input:
// the contract is that it returns an error — it never panics, and it
// never allocates proportionally to unproven header counts. The seed
// corpus runs under plain `go test`; `go test -fuzz=FuzzReadDeltas
// ./internal/graph` explores from there.
func FuzzReadDeltas(f *testing.F) {
	// A well-formed document, via the writer itself.
	g := graph.New(5, false, []graph.Edge{{From: 0, To: 1}, {From: 2, To: 3}})
	var buf bytes.Buffer
	if err := graph.WriteDeltas(&buf, g, [][]graph.EdgeEvent{
		{{From: 1, To: 2, Op: graph.EdgeInsert}},
		{{From: 0, To: 1, Op: graph.EdgeDelete}, {From: 3, To: 4, Op: graph.EdgeUpdate}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// Hostile shapes: truncations, absurd counts, negative counts,
	// malformed ops and endpoints, directed header, empty input.
	seeds := []string{
		"",
		"egsdeltas",
		"egsdeltas 5 2 true\n",
		"egsdeltas 5 2 true\ninit 99999999999999999\n",
		"egsdeltas 99999999999 1 false\ninit 0\n",
		"egsdeltas 5 99999999999 true\ninit 0\n",
		"egsdeltas 5 2 true\ninit -3\n",
		"egsdeltas 5 2 true\ninit 1\n0 1\nbatch 1 -9\n",
		"egsdeltas 5 2 true\ninit 1\n0 1\nbatch 1 1\n? 0 1\n",
		"egsdeltas 5 2 true\ninit 1\n0 1\nbatch 1 1\n+ 7 1\n",
		"egsdeltas 5 2 true\ninit 1\n0 1\nbatch 2 0\n",
		"egsdeltas 5 2 true\ninit 1\n0 1 9\n",
		"egsdeltas -1 2 true\ninit 0\n",
		"egsdeltas 3 1 maybe\ninit 0\n",
		"egsdeltas 3 1 true\ninit 1\n0\n",
		"egsdeltas 2 2 false\ninit 0\nbatch 1 1\n+ 0 1\n+ 1 0\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	// Keep fuzz-discovered headers from legitimately allocating
	// gigabytes: the cap is a tunable precisely so hostile-input tests
	// can lower it without weakening the panics-never contract.
	savedV, savedT := graph.MaxTextVertices, graph.MaxTextSnapshots
	graph.MaxTextVertices = 1 << 12
	graph.MaxTextSnapshots = 1 << 10
	f.Cleanup(func() {
		graph.MaxTextVertices, graph.MaxTextSnapshots = savedV, savedT
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		initial, batches, err := graph.ReadDeltas(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip through the writer and parse
		// again to the same shape.
		var out bytes.Buffer
		if err := graph.WriteDeltas(&out, initial, batches); err != nil {
			t.Fatalf("WriteDeltas on accepted input: %v", err)
		}
		initial2, batches2, err := graph.ReadDeltas(&out)
		if err != nil {
			t.Fatalf("re-parse of round-tripped input: %v", err)
		}
		if initial2.N() != initial.N() || initial2.NumEdges() != initial.NumEdges() || len(batches2) != len(batches) {
			t.Fatalf("round trip changed shape: n %d->%d, edges %d->%d, batches %d->%d",
				initial.N(), initial2.N(), initial.NumEdges(), initial2.NumEdges(), len(batches), len(batches2))
		}
	})
}

// FuzzReadEGS gives the snapshot-format parser the same treatment (the
// two share the hardened scanning core).
func FuzzReadEGS(f *testing.F) {
	g0 := graph.New(4, true, []graph.Edge{{From: 0, To: 1}})
	g1 := graph.New(4, true, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	egs, err := graph.NewEGS([]*graph.Graph{g0, g1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteEGS(&buf, egs); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	for _, s := range []string{
		"",
		"egs 4 99999999999 true\n",
		"egs 99999999999 1 true\nsnapshot 0 0\n",
		"egs 4 1 true\nsnapshot 0 -5\n",
		"egs 4 1 true\nsnapshot 0 99999999999999999\n",
		"egs 4 1 true\nsnapshot 1 0\n",
	} {
		f.Add([]byte(s))
	}
	savedV, savedT := graph.MaxTextVertices, graph.MaxTextSnapshots
	graph.MaxTextVertices = 1 << 12
	graph.MaxTextSnapshots = 1 << 10
	f.Cleanup(func() {
		graph.MaxTextVertices, graph.MaxTextSnapshots = savedV, savedT
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		egs, err := graph.ReadEGS(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := graph.WriteEGS(&out, egs); err != nil {
			t.Fatalf("WriteEGS on accepted input: %v", err)
		}
		if _, err := graph.ReadEGS(&out); err != nil {
			t.Fatalf("re-parse of round-tripped input: %v", err)
		}
	})
}
