// Package graph provides the evolving-graph substrate of the CLUDE
// reproduction: snapshot graphs, evolving graph sequences (EGS, after
// Ren et al., VLDB 2011), and the derivations that turn a snapshot into
// the sparse matrix A of a linear system A·x = b for graph measures
// such as PageRank, Personalized PageRank and Random Walk with Restart.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// Edge is a directed edge from From to To. Undirected graphs store each
// edge once in canonical (min, max) orientation.
type Edge struct {
	From, To int
}

// Graph is an immutable snapshot graph on n vertices. Self-loops are
// not stored (the generators never produce them; AddEdge-style
// construction drops them).
type Graph struct {
	n        int
	directed bool
	adj      [][]int // out-neighbours, sorted
	inDeg    []int
	edges    int
}

// New builds a snapshot from an edge list. Duplicate edges and
// self-loops are dropped. For undirected graphs every edge is
// normalized to canonical orientation and mirrored in the adjacency
// structure.
func New(n int, directed bool, edges []Edge) *Graph {
	g := &Graph{n: n, directed: directed}
	adjSet := make([][]int, n)
	add := func(u, v int) {
		adjSet[u] = append(adjSet[u], v)
	}
	for _, e := range edges {
		if e.From == e.To {
			continue
		}
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", e.From, e.To, n))
		}
		if directed {
			add(e.From, e.To)
		} else {
			add(e.From, e.To)
			add(e.To, e.From)
		}
	}
	g.adj = make([][]int, n)
	g.inDeg = make([]int, n)
	for u := range adjSet {
		sort.Ints(adjSet[u])
		prev := -1
		for _, v := range adjSet[u] {
			if v != prev {
				g.adj[u] = append(g.adj[u], v)
				g.inDeg[v]++
				prev = v
			}
		}
	}
	for u := range g.adj {
		g.edges += len(g.adj[u])
	}
	if !directed {
		g.edges /= 2
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumEdges returns the number of (undirected: unordered) edges.
func (g *Graph) NumEdges() int { return g.edges }

// OutDegree returns the out-degree of u (the degree, if undirected).
func (g *Graph) OutDegree(u int) int { return len(g.adj[u]) }

// InDegree returns the in-degree of u (the degree, if undirected).
func (g *Graph) InDegree(u int) int { return g.inDeg[u] }

// OutNeighbors returns the sorted out-neighbour list of u. The slice
// aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(u int) []int { return g.adj[u] }

// HasEdge reports whether the directed edge (u, v) exists (for
// undirected graphs, whether {u, v} exists).
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	k := sort.SearchInts(a, v)
	return k < len(a) && a[k] == v
}

// Reverse returns the graph with every directed edge flipped. For a
// citation graph this turns "cites" into "is cited by", which is the
// orientation needed to measure who depends on a seed set via random
// walks (paper §7). Undirected graphs are returned unchanged.
func (g *Graph) Reverse() *Graph {
	if !g.directed {
		return g
	}
	es := make([]Edge, 0, g.edges)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			es = append(es, Edge{From: v, To: u})
		}
	}
	return New(g.n, true, es)
}

// Edges returns all edges. Directed graphs return each arc once;
// undirected graphs return each edge once in canonical orientation.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if g.directed || u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	return out
}

// EGS is an evolving graph sequence: an ordered list of snapshot graphs
// over the same vertex set.
type EGS struct {
	Snapshots []*Graph
}

// NewEGS validates that all snapshots share vertex count and
// directedness and wraps them.
func NewEGS(snaps []*Graph) (*EGS, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("graph: empty EGS")
	}
	n, dir := snaps[0].N(), snaps[0].Directed()
	for i, g := range snaps {
		if g.N() != n {
			return nil, fmt.Errorf("graph: snapshot %d has %d vertices, want %d", i, g.N(), n)
		}
		if g.Directed() != dir {
			return nil, fmt.Errorf("graph: snapshot %d directedness differs", i)
		}
	}
	return &EGS{Snapshots: snaps}, nil
}

// Len returns the number of snapshots T.
func (s *EGS) Len() int { return len(s.Snapshots) }

// N returns the shared vertex count.
func (s *EGS) N() int { return s.Snapshots[0].N() }

// AvgSuccessiveMES returns the average matrix-edit-similarity between
// the adjacency patterns of successive snapshots — the statistic the
// paper reports as 99.88% (Wiki) and 99.86% (DBLP).
func (s *EGS) AvgSuccessiveMES() float64 {
	if s.Len() < 2 {
		return 1
	}
	total := 0.0
	prev := adjacencyPattern(s.Snapshots[0])
	for i := 1; i < s.Len(); i++ {
		cur := adjacencyPattern(s.Snapshots[i])
		total += sparse.MES(prev, cur)
		prev = cur
	}
	return total / float64(s.Len()-1)
}

func adjacencyPattern(g *Graph) *sparse.Pattern {
	coords := make([]sparse.Coord, 0, g.NumEdges()*2)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.OutNeighbors(u) {
			coords = append(coords, sparse.Coord{Row: u, Col: v})
		}
	}
	return sparse.NewPattern(g.N(), coords)
}
