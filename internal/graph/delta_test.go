package graph

import (
	"bytes"
	"testing"

	"repro/internal/xrand"
)

// randomGraph builds a random snapshot with about m edges.
func randomGraph(rng *xrand.Rand, n int, m int, directed bool) *Graph {
	es := make([]Edge, 0, m)
	for k := 0; k < m; k++ {
		es = append(es, Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	return New(n, directed, es)
}

// graphsEqual compares two snapshots edge-for-edge.
func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.Directed() != b.Directed() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for u := 0; u < a.N(); u++ {
		av, bv := a.OutNeighbors(u), b.OutNeighbors(u)
		if len(av) != len(bv) {
			return false
		}
		for k := range av {
			if av[k] != bv[k] {
				return false
			}
		}
	}
	return true
}

func TestDiffApplyRoundTrip(t *testing.T) {
	rng := xrand.New(42)
	for _, directed := range []bool{false, true} {
		prev := randomGraph(rng, 40, 120, directed)
		for step := 0; step < 20; step++ {
			next := randomGraph(rng, 40, 120, directed)
			evs := Diff(prev, next)
			b := NewBuilderFrom(prev)
			changed, err := b.ApplyBatch(evs)
			if err != nil {
				t.Fatal(err)
			}
			if changed != len(evs) {
				t.Fatalf("directed=%v step %d: diff emitted %d events but only %d changed the edge set",
					directed, step, len(evs), changed)
			}
			if got := b.Graph(); !graphsEqual(got, next) {
				t.Fatalf("directed=%v step %d: diff+apply did not reproduce the target snapshot", directed, step)
			}
			prev = next
		}
	}
}

func TestBuilderSemantics(t *testing.T) {
	b := NewBuilder(5, false)
	if ok, _ := b.Apply(EdgeEvent{From: 1, To: 3, Op: EdgeInsert}); !ok {
		t.Fatal("fresh insert reported as no-op")
	}
	// Undirected canonicalization: (3,1) is the same edge.
	if ok, _ := b.Apply(EdgeEvent{From: 3, To: 1, Op: EdgeInsert}); ok {
		t.Fatal("duplicate insert changed the edge set")
	}
	if !b.Has(3, 1) || !b.Has(1, 3) {
		t.Fatal("undirected Has must be orientation-free")
	}
	// Update is an idempotent upsert.
	if ok, _ := b.Apply(EdgeEvent{From: 1, To: 3, Op: EdgeUpdate}); ok {
		t.Fatal("update of a present edge changed the edge set")
	}
	if ok, _ := b.Apply(EdgeEvent{From: 2, To: 4, Op: EdgeUpdate}); !ok {
		t.Fatal("update of an absent edge must insert")
	}
	// Deleting an absent edge is a no-op; self-loops never store.
	if ok, _ := b.Apply(EdgeEvent{From: 0, To: 1, Op: EdgeDelete}); ok {
		t.Fatal("delete of absent edge changed the edge set")
	}
	if ok, _ := b.Apply(EdgeEvent{From: 2, To: 2, Op: EdgeInsert}); ok {
		t.Fatal("self-loop stored")
	}
	if b.NumEdges() != 2 {
		t.Fatalf("edge count %d, want 2", b.NumEdges())
	}
	// Out-of-range events fail and a failing batch leaves no trace.
	if _, err := b.Apply(EdgeEvent{From: 0, To: 9, Op: EdgeInsert}); err == nil {
		t.Fatal("out-of-range event accepted")
	}
	if _, err := b.ApplyBatch([]EdgeEvent{{From: 0, To: 1, Op: EdgeInsert}, {From: -1, To: 0, Op: EdgeInsert}}); err == nil {
		t.Fatal("malformed batch accepted")
	}
	if b.Has(0, 1) {
		t.Fatal("malformed batch partially applied")
	}
}

func TestBuilderMaterializesIdenticalGraphs(t *testing.T) {
	// The streamed state and a New-built graph over the same edge set
	// must be indistinguishable (the bit-identity of derived matrices
	// rests on this).
	rng := xrand.New(7)
	g := randomGraph(rng, 30, 90, true)
	if got := NewBuilderFrom(g).Graph(); !graphsEqual(got, g) {
		t.Fatal("builder round trip differs from source snapshot")
	}
}

func TestParseEdgeOp(t *testing.T) {
	for _, c := range []struct {
		in   string
		want EdgeOp
	}{{"+", EdgeInsert}, {"insert", EdgeInsert}, {"-", EdgeDelete}, {"delete", EdgeDelete}, {"~", EdgeUpdate}, {"update", EdgeUpdate}} {
		got, err := ParseEdgeOp(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseEdgeOp(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseEdgeOp("nope"); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestDeltaIORoundTrip(t *testing.T) {
	rng := xrand.New(11)
	snaps := []*Graph{randomGraph(rng, 25, 60, true)}
	for k := 1; k < 6; k++ {
		snaps = append(snaps, randomGraph(rng, 25, 60, true))
	}
	egs, err := NewEGS(snaps)
	if err != nil {
		t.Fatal(err)
	}
	batches := DeltaBatches(egs)

	var buf bytes.Buffer
	if err := WriteDeltas(&buf, egs.Snapshots[0], batches); err != nil {
		t.Fatal(err)
	}
	initial, back, err := ReadDeltas(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(initial, egs.Snapshots[0]) {
		t.Fatal("initial snapshot lost in round trip")
	}
	if len(back) != len(batches) {
		t.Fatalf("batch count %d, want %d", len(back), len(batches))
	}
	// Replaying the parsed batches must reproduce every snapshot.
	b := NewBuilderFrom(initial)
	for i, evs := range back {
		if _, err := b.ApplyBatch(evs); err != nil {
			t.Fatal(err)
		}
		if got := b.Graph(); !graphsEqual(got, egs.Snapshots[i+1]) {
			t.Fatalf("batch %d: replay diverged from snapshot %d", i, i+1)
		}
	}
}
