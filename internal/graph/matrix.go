package graph

import (
	"fmt"

	"repro/internal/sparse"
)

// Deriver converts a snapshot graph into the matrix A of the linear
// system A·x = b for some graph measure. The paper's EMS is obtained by
// mapping a Deriver over an EGS.
type Deriver func(*Graph) *sparse.CSR

// RWRMatrix returns a Deriver producing A = I − d·W, where W is the
// column-normalized adjacency matrix of the snapshot: if (i, j) is an
// edge then W(j, i) = 1/λ(i) with λ(i) the out-degree of i (footnote 1
// of the paper). Columns of dangling vertices (out-degree 0) are zero
// apart from the unit diagonal, which corresponds to the random walk
// halting at sinks. With 0 < d < 1 the matrix is strictly diagonally
// dominant by columns, hence non-singular and safely factorizable
// without pivoting.
func RWRMatrix(d float64) Deriver {
	if d <= 0 || d >= 1 {
		panic(fmt.Sprintf("graph: damping factor %v outside (0,1)", d))
	}
	return func(g *Graph) *sparse.CSR {
		c := sparse.NewCOO(g.N())
		for i := 0; i < g.N(); i++ {
			c.Add(i, i, 1)
		}
		for i := 0; i < g.N(); i++ {
			out := g.OutNeighbors(i)
			if len(out) == 0 {
				continue
			}
			w := d / float64(len(out))
			for _, j := range out {
				// W(j, i) = 1/λ(i), so A(j, i) = −d/λ(i).
				c.Add(j, i, -w)
			}
		}
		return c.ToCSR()
	}
}

// SymmetricWalkMatrix returns a Deriver producing the symmetric matrix
// A = I − d·Ŵ with Ŵ(i, j) = Ŵ(j, i) = 1/max(λ(i), λ(j)) for each
// undirected edge {i, j}. Row sums of Ŵ are at most 1, so A is strictly
// diagonally dominant and symmetric — the setting required by the
// LUDEM-QC problem (Definition 5). This is the standard "maximum
// degree" symmetric normalization of a random walk kernel.
func SymmetricWalkMatrix(d float64) Deriver {
	if d <= 0 || d >= 1 {
		panic(fmt.Sprintf("graph: damping factor %v outside (0,1)", d))
	}
	return func(g *Graph) *sparse.CSR {
		if g.Directed() {
			panic("graph: SymmetricWalkMatrix requires an undirected graph")
		}
		c := sparse.NewCOO(g.N())
		for i := 0; i < g.N(); i++ {
			c.Add(i, i, 1)
		}
		for i := 0; i < g.N(); i++ {
			di := g.OutDegree(i)
			for _, j := range g.OutNeighbors(i) {
				if j < i {
					continue // each undirected edge once
				}
				dj := g.OutDegree(j)
				m := di
				if dj > m {
					m = dj
				}
				w := -d / float64(m)
				c.Add(i, j, w)
				c.Add(j, i, w)
			}
		}
		return c.ToCSR()
	}
}

// LaplacianMatrix returns a Deriver producing the shifted graph
// Laplacian A = L + εI = D − W + εI of an undirected snapshot, a
// symmetric positive definite matrix commonly used in spectral and
// diffusion computations. ε > 0 keeps A non-singular.
func LaplacianMatrix(eps float64) Deriver {
	if eps <= 0 {
		panic("graph: LaplacianMatrix requires eps > 0")
	}
	return func(g *Graph) *sparse.CSR {
		if g.Directed() {
			panic("graph: LaplacianMatrix requires an undirected graph")
		}
		c := sparse.NewCOO(g.N())
		for i := 0; i < g.N(); i++ {
			c.Add(i, i, float64(g.OutDegree(i))+eps)
			for _, j := range g.OutNeighbors(i) {
				c.Add(i, j, -1)
			}
		}
		return c.ToCSR()
	}
}

// EMS is an evolving matrix sequence: the image of an EGS under a
// Deriver, M = {A1, …, AT}.
type EMS struct {
	Matrices []*sparse.CSR
}

// DeriveEMS maps d over the EGS snapshots.
func DeriveEMS(s *EGS, d Deriver) *EMS {
	ms := make([]*sparse.CSR, s.Len())
	for i, g := range s.Snapshots {
		ms[i] = d(g)
	}
	return &EMS{Matrices: ms}
}

// Len returns the number of matrices T.
func (m *EMS) Len() int { return len(m.Matrices) }

// N returns the shared dimension.
func (m *EMS) N() int { return m.Matrices[0].N() }
