package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEGSRoundTrip(t *testing.T) {
	a := New(4, true, []Edge{{0, 1}, {1, 2}, {3, 0}})
	b := New(4, true, []Edge{{0, 1}, {2, 3}})
	s, err := NewEGS([]*Graph{a, b})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEGS(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEGS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.N() != 4 || !back.Snapshots[0].Directed() {
		t.Fatal("round-trip shape wrong")
	}
	for i, g := range s.Snapshots {
		for _, e := range g.Edges() {
			if !back.Snapshots[i].HasEdge(e.From, e.To) {
				t.Errorf("edge %v missing after round trip", e)
			}
		}
		if back.Snapshots[i].NumEdges() != g.NumEdges() {
			t.Errorf("snapshot %d edge count wrong", i)
		}
	}
}

func TestEGSRoundTripUndirected(t *testing.T) {
	a := New(3, false, []Edge{{2, 0}, {1, 2}})
	s, _ := NewEGS([]*Graph{a})
	var buf bytes.Buffer
	if err := WriteEGS(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEGS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Snapshots[0].Directed() {
		t.Fatal("directedness lost")
	}
	if !back.Snapshots[0].HasEdge(0, 2) || !back.Snapshots[0].HasEdge(2, 0) {
		t.Fatal("undirected edge lost")
	}
}

func TestReadEGSErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "hello world\n",
		"zero dims":       "egs 0 1 true\n",
		"truncated":       "egs 3 2 true\nsnapshot 0 1\n0 1\n",
		"out of order":    "egs 3 2 true\nsnapshot 1 0\n",
		"bad edge":        "egs 3 1 true\nsnapshot 0 1\nfoo bar\n",
		"edge range":      "egs 3 1 true\nsnapshot 0 1\n0 9\n",
		"short edge line": "egs 3 1 true\nsnapshot 0 1\n4\n",
	}
	for name, in := range cases {
		if _, err := ReadEGS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted malformed input", name)
		}
	}
}

func TestReadEGSSkipsBlankLines(t *testing.T) {
	in := "egs 2 1 false\n\nsnapshot 0 1\n\n0 1\n"
	s, err := ReadEGS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Snapshots[0].NumEdges() != 1 {
		t.Fatal("blank-line tolerance broken")
	}
}
