package serve

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/trace"
)

// Single-flight coalescing: identical concurrent queries — same
// factors (snapshot + pin generation, or live source + attach
// generation + published version), same measure, source, seeds, k and
// damping — share one solve and one cache fill. The flight key IS the
// cache key, so the coalescing horizon is exactly the cache-coherence
// horizon: two queries coalesce if and only if a cache entry written
// by one could have served the other.

// task is one resolved query on its way through the pipeline: the
// validated payload, its serving route, its cache/flight key, and the
// flight that will carry the answer back to every waiter.
type task struct {
	q       Query
	seeds   []int // canonical ppr seed set (sorted, deduplicated)
	damping float64

	fl        *flight
	coalesced bool // joined an existing flight; awaits, never enqueues

	// Route: either an attached live source (live, src, liveGen,
	// version as resolved) or a pinned snapshot's solver. For live
	// tasks the worker re-reads version/snap/prefix under the source's
	// view at solve time; the resolve-time values only key the flight.
	live    bool
	src     LiveSource
	liveGen uint64
	solver  *lu.Solver
	snap    int
	version uint64

	// graph is the katz route's input (see graphs.go); solver-backed
	// tasks leave it nil.
	graph *graph.Graph

	// hist marks a history-routed task (see history.go). When its
	// solver is nil the worker materializes the version before solving
	// (serveHistGroup); a resident version binds its solver at resolve
	// time and flows like any pinned task.
	hist bool

	// keyed is false only on the spill-reload race fallback, whose
	// answers have no stable generation: no cache entry, no coalescing.
	keyed     bool
	prefix    string // cache-key namespace (generation-stamped)
	suffix    string // canonical query payload (keySuffix)
	flightKey string

	// Stage-tracing timestamps (see hist.go): set at enqueue and at
	// worker dequeue.
	enqueuedAt time.Time
	dequeuedAt time.Time

	// Request trace (nil when tracing is off). Ownership follows the
	// flight: the goroutine that calls e.finish finishes a leader's
	// trace; a coalesced follower finishes its own in await. solveSpan
	// is the worker's open solve span, auto-closed at trace finish.
	tr        *trace.Trace
	solveSpan *trace.Span
}

// canonicalize validates the query payload against dimension n and
// derives the canonical seed set and the cache-key suffix.
func (t *task) canonicalize(n int) error {
	q := t.q
	switch q.Measure {
	case MeasureRWR, MeasureTopK:
		if q.Source < 0 || q.Source >= n {
			return fmt.Errorf("serve: source %d outside [0,%d)", q.Source, n)
		}
		if q.Measure == MeasureTopK && q.K <= 0 {
			return fmt.Errorf("serve: topk needs k > 0, got %d", q.K)
		}
	case MeasurePPR:
		if len(q.Sources) == 0 {
			return fmt.Errorf("serve: ppr needs a non-empty seed set")
		}
		seeds := append([]int(nil), q.Sources...)
		sort.Ints(seeds)
		// Deduplicate: PPR's restart mass is uniform over the seed
		// *set*; a repeated seed must not change the answer (or the
		// cache key).
		w := 0
		for _, s := range seeds {
			if s < 0 || s >= n {
				return fmt.Errorf("serve: seed %d outside [0,%d)", s, n)
			}
			if w == 0 || seeds[w-1] != s {
				seeds[w] = s
				w++
			}
		}
		t.seeds = seeds[:w]
	case MeasurePageRank:
	default:
		return fmt.Errorf("serve: unknown measure %q", q.Measure)
	}
	t.suffix = keySuffix(q.Measure, q.Source, t.seeds, q.K, t.damping)
	return nil
}

// flight is one in-flight solve and its waiters' rendezvous. The
// leader's worker fills the fields and closes done; every waiter —
// leader and coalesced followers alike — reads them after done.
type flight struct {
	done    chan struct{}
	ans     answer
	snap    int
	version uint64
	live    bool
	err     error

	// lead is the leader's root span context, stamped before the
	// flight is published in the flights map (so any joiner that found
	// the flight observes it); followers link their traces to it
	// instead of duplicating the solve's spans.
	lead trace.SpanContext
}

func newFlight() *flight { return &flight{done: make(chan struct{})} }

// joinFlight is the single-flight admission point for a keyed task.
// Under flightMu it either joins an existing flight for the key
// (leader false), hits the cache (hit true), or registers a new flight
// with the caller as leader. The cache recheck happens under the same
// lock that finish holds while deregistering — and finish fills the
// cache *before* deregistering — so the window "flight gone but cache
// not yet filled" cannot be observed: a query always either coalesces
// or sees the finished flight's cache entry (unless the LRU evicted
// it, in which case recomputing is correct, merely redundant).
func (e *Engine) joinFlight(t *task) (fl *flight, leader bool, ans answer, hit bool) {
	key := t.flightKey
	e.flightMu.Lock()
	defer e.flightMu.Unlock()
	if fl := e.flights[key]; fl != nil {
		return fl, false, answer{}, false
	}
	if ans, ok := e.cache.get(key); ok {
		return nil, false, ans, true
	}
	fl = newFlight()
	fl.lead = t.tr.Context()
	e.flights[key] = fl
	return fl, true, answer{}, false
}

// finish completes a task's flight: publish the answer (filling the
// cache first, then deregistering the flight — the order joinFlight's
// recheck relies on), account the solve, and release every waiter.
// Called exactly once per flight, by the worker that solved it or by
// the shedding dispatcher; waiter cancellation never reaches here, so
// an abandoned flight still completes and still fills the cache.
func (e *Engine) finish(t *task, ans answer, err error) {
	fl := t.fl
	fl.ans, fl.err = ans, err
	fl.snap, fl.version, fl.live = t.snap, t.version, t.live
	if err == nil {
		e.solves.Add(1)
		if t.keyed {
			// The flight's one cache miss, recorded by the leader; the
			// followers count as hits when they pick the answer up.
			e.misses.Add(1)
		}
		if t.prefix != "" {
			e.cacheEvicted.Add(int64(e.cache.put(t.prefix+t.suffix, ans)))
		}
	}
	if t.flightKey != "" {
		e.flightMu.Lock()
		delete(e.flights, t.flightKey)
		e.flightMu.Unlock()
	}
	if t.tr != nil {
		// Finish the trace before releasing the waiters: after done is
		// closed nothing may touch the (recycled) handle, and the order
		// guarantees a shed or solved query's trace is in the retention
		// ring by the time its caller returns.
		root := t.tr.Root()
		root.SetInt("version", int64(t.version))
		root.SetBool("live", t.live)
		e.traceDone(t.tr, err)
	}
	close(fl.done)
}

// traceDone finishes a trace and, when it was retained, offers its
// duration as a latency exemplar — so every exemplar ID resolves to a
// trace /v1/traces/{id} can actually serve.
func (e *Engine) traceDone(tr *trace.Trace, err error) {
	if tr == nil {
		return
	}
	out := tr.Finish(err)
	if err == nil && out.Retained {
		e.latEx.Observe(out.Duration, out.ID)
	}
}
