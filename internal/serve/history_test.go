package serve

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/bennett"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/measures"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// historyStream drives a random event stream of the given strategy
// into eng's history hook, retaining an independent reference clone of
// every published version. It returns the final version (all batches
// applied, stream closed).
func historyStream(t *testing.T, alg core.Algorithm, eng *Engine, nBatches int) (map[uint64]*lu.Solver, uint64) {
	t.Helper()
	rng := xrand.New(99)
	n := 90
	es := make([]graph.Edge, 0, 4*n)
	for k := 0; k < 4*n; k++ {
		es = append(es, graph.Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	ref := make(map[uint64]*lu.Solver)
	s, err := core.NewStream(core.StreamConfig{
		Algorithm: alg, Alpha: 0.9,
		Initial:   graph.New(n, true, es),
		Derive:    graph.RWRMatrix(testDamping),
		OnHistory: eng.HistoryHook(),
		OnPublish: func(v uint64, sv *lu.Solver) { ref[v] = sv.Clone() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Events toggle edges from the initial pool, so the pattern stays
	// inside the cluster union: CLUDE (and CINC) take the Bennett path
	// and publish replayable non-structural versions, which is what the
	// history layer exists to compress.
	for b := 0; b < nBatches; b++ {
		evs := make([]graph.EdgeEvent, 8)
		for k := range evs {
			e := es[rng.Intn(len(es))]
			op := graph.EdgeDelete
			if rng.Intn(2) == 0 {
				op = graph.EdgeInsert
			}
			evs[k] = graph.EdgeEvent{From: e.From, To: e.To, Op: op}
		}
		if _, err := s.Apply(evs); err != nil {
			t.Fatal(err)
		}
	}
	return ref, s.Version()
}

// TestHistoryServesEveryVersionBitIdentical is the tentpole's
// acceptance gate at the serving layer: with base+delta retention
// (HistoryBase=4) every published version of every strategy stays
// queryable, and each answer is bit-identical to a cold solve of the
// full clone the old clone-per-checkpoint path would have pinned.
func TestHistoryServesEveryVersionBitIdentical(t *testing.T) {
	for _, alg := range []core.Algorithm{core.BF, core.INC, core.CINC, core.CLUDE} {
		t.Run(string(alg), func(t *testing.T) {
			eng := New(Config{Workers: 2, HistoryBase: 4, Damping: testDamping})
			defer eng.Close()
			ref, last := historyStream(t, alg, eng, 20)
			for v := uint64(0); v <= last; v++ {
				rs, ok := ref[v]
				if !ok {
					t.Fatalf("no reference clone for version %d", v)
				}
				for _, q := range []Query{
					{Snapshot: int(v), Measure: MeasureRWR, Source: int(v) % 17},
					{Snapshot: int(v), Measure: MeasureTopK, Source: 3, K: 5},
				} {
					resp, err := eng.Query(context.Background(), q)
					if err != nil {
						t.Fatalf("version %d %s: %v", v, q.Measure, err)
					}
					_, want := coldAnswer(q, rs)
					if !reflect.DeepEqual(want, resp.Scores) {
						t.Errorf("version %d %s: history answer differs from cold solve", v, q.Measure)
					}
				}
			}
			st := eng.Stats()
			if !st.HistoryEnabled {
				t.Error("stats say history disabled")
			}
			if st.HistoryBasePins == 0 {
				t.Error("no base pins recorded")
			}
			// Incremental strategies publish non-structural versions, so
			// some must have been materialized by replay. (BF rebuilds
			// every batch: every version is a base, nothing to replay.)
			if alg != core.BF && st.HistoryMaterializations == 0 {
				t.Error("no materializations despite non-base versions")
			}
			if st.HistoryRequests < st.HistoryMaterializations {
				t.Errorf("requests %d < materializations %d", st.HistoryRequests, st.HistoryMaterializations)
			}
			if st.HistoryVersions == 0 || st.HistoryLogBytes == 0 {
				t.Errorf("empty history log: versions=%d bytes=%d", st.HistoryVersions, st.HistoryLogBytes)
			}
		})
	}
}

// TestHistorySpilledBaseReload is the spill+history interaction
// regression (the bug this PR fixes): a base evicted from the bounded
// snapshot store must not strand its dependent delta chain. With
// MaxSnapshots=2 the early bases are spilled to disk; a deep
// non-base version must still materialize — its base transparently
// reloaded and re-pinned — and answer bit-identically.
func TestHistorySpilledBaseReload(t *testing.T) {
	dir := t.TempDir()
	eng := New(Config{Workers: 1, HistoryBase: 4, MaxSnapshots: 2, SpillDir: dir, Damping: testDamping})
	defer eng.Close()
	ref, last := historyStream(t, core.CLUDE, eng, 24)

	// Find a non-base version whose base is no longer pinned in RAM.
	pinned := make(map[int]bool)
	for _, s := range eng.Snapshots() {
		pinned[s] = true
	}
	target := uint64(0)
	for v := uint64(1); v <= last; v++ {
		rec, ok := eng.HistoryLog().Get(v)
		if !ok || rec.Structural || pinned[int(v)] {
			continue
		}
		if b, ok := eng.findHistoryBase(v); ok && !pinned[int(b)] {
			target = v
			break
		}
	}
	if target == 0 {
		t.Skip("every reachable base still pinned; bump batches to provoke eviction")
	}
	waitSpilled(t, eng, 1)

	q := Query{Snapshot: int(target), Measure: MeasureRWR, Source: 11}
	resp, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("deep version %d with spilled base: %v", target, err)
	}
	_, want := coldAnswer(q, ref[target])
	if !reflect.DeepEqual(want, resp.Scores) {
		t.Errorf("version %d: answer after base reload differs from cold solve", target)
	}
	st := eng.Stats()
	if st.SpillReloads == 0 {
		t.Error("no spill reload recorded for the evicted base")
	}
	if st.HistoryMaterializations == 0 {
		t.Error("no materialization recorded for the deep version")
	}
}

// TestHistoryMaterializationSingleFlight fires many concurrent
// *distinct* queries (different sources, so query coalescing cannot
// merge them) at one cold non-base version and asserts they shared a
// single replay.
func TestHistoryMaterializationSingleFlight(t *testing.T) {
	eng := New(Config{Workers: 4, HistoryBase: 8, Damping: testDamping})
	defer eng.Close()
	ref, last := historyStream(t, core.CLUDE, eng, 16)

	pinned := make(map[int]bool)
	for _, s := range eng.Snapshots() {
		pinned[s] = true
	}
	target := uint64(0)
	for v := last; v > 0; v-- {
		if !pinned[int(v)] {
			if _, ok := eng.findHistoryBase(v); ok {
				target = v
				break
			}
		}
	}
	if target == 0 {
		t.Fatal("no materializable non-base version found")
	}

	const G = 8
	var wg sync.WaitGroup
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			q := Query{Snapshot: int(target), Measure: MeasureRWR, Source: src}
			resp, err := eng.Query(context.Background(), q)
			if err != nil {
				errs <- err
				return
			}
			_, want := coldAnswer(q, ref[target])
			if !reflect.DeepEqual(want, resp.Scores) {
				t.Errorf("source %d: concurrent history answer differs from cold solve", src)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.HistoryMaterializations != 1 {
		t.Errorf("materializations = %d, want 1 (single-flight replay)", st.HistoryMaterializations)
	}
	if st.HistoryRequests < int64(G) {
		t.Errorf("requests = %d, want >= %d", st.HistoryRequests, G)
	}
	if st.HistoryDedupRatio < 1 {
		t.Errorf("dedup ratio = %v, want >= 1", st.HistoryDedupRatio)
	}
}

// TestHistoryBudgetEviction forces a one-byte residency budget:
// every new materialization must evict its predecessor, and the
// recycled containers keep answers bit-identical.
func TestHistoryBudgetEviction(t *testing.T) {
	eng := New(Config{Workers: 1, HistoryBase: 8, HistoryBudgetBytes: 1, Damping: testDamping})
	defer eng.Close()
	ref, last := historyStream(t, core.CLUDE, eng, 16)

	pinned := make(map[int]bool)
	for _, s := range eng.Snapshots() {
		pinned[s] = true
	}
	served := 0
	for v := uint64(1); v <= last; v++ {
		if pinned[int(v)] {
			continue
		}
		if _, ok := eng.findHistoryBase(v); !ok {
			continue
		}
		q := Query{Snapshot: int(v), Measure: MeasureRWR, Source: 2}
		resp, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		_, want := coldAnswer(q, ref[v])
		if !reflect.DeepEqual(want, resp.Scores) {
			t.Errorf("version %d: answer under eviction pressure differs from cold solve", v)
		}
		served++
	}
	if served < 3 {
		t.Fatalf("only %d non-base versions served; test needs eviction pressure", served)
	}
	st := eng.Stats()
	if st.HistoryResidents > 1 {
		t.Errorf("residents = %d under a 1-byte budget, want <= 1", st.HistoryResidents)
	}
	if st.HistoryEvictions == 0 {
		t.Error("no evictions under a 1-byte budget")
	}
}

// TestHistoryVersionsListing checks the /v1/snapshots view: bases are
// resident, replayable versions materializable, and a queried version
// flips to resident.
func TestHistoryVersionsListing(t *testing.T) {
	eng := New(Config{Workers: 1, HistoryBase: 4, Damping: testDamping})
	defer eng.Close()
	_, last := historyStream(t, core.CLUDE, eng, 12)

	infos := eng.HistoryVersions()
	if len(infos) == 0 {
		t.Fatal("no history versions listed")
	}
	states := make(map[uint64]string, len(infos))
	for _, in := range infos {
		states[in.Version] = in.State
	}
	for _, s := range eng.Snapshots() {
		if states[uint64(s)] != "resident" {
			t.Errorf("pinned base %d listed as %q, want resident", s, states[uint64(s)])
		}
	}
	var target uint64
	for v := last; v > 0; v-- {
		if states[v] == "materializable" {
			target = v
			break
		}
	}
	if target == 0 {
		t.Fatal("no materializable version listed")
	}
	if _, err := eng.Query(context.Background(), Query{Snapshot: int(target), Measure: MeasureRWR, Source: 1}); err != nil {
		t.Fatal(err)
	}
	for _, in := range eng.HistoryVersions() {
		if in.Version == target && in.State != "resident" {
			t.Errorf("version %d still %q after materialization, want resident", target, in.State)
		}
	}
}

// TestHistoryEvictedResidentStaysValid is the use-after-evict
// regression: a solver bound to a task (or handed to a caller) while
// resident must keep its factors intact after the LRU evicts it —
// eviction may only drop the reference, never recycle the container's
// backing arrays into a later materialization. Under the old free-pool
// recycling this failed deterministically: the third materialization
// below overwrote the held solver's arrays mid-use.
func TestHistoryEvictedResidentStaysValid(t *testing.T) {
	eng := New(Config{Workers: 1, HistoryBase: 8, HistoryBudgetBytes: 1, Damping: testDamping})
	defer eng.Close()
	ref, last := historyStream(t, core.CLUDE, eng, 16)

	pinned := make(map[int]bool)
	for _, s := range eng.Snapshots() {
		pinned[s] = true
	}
	var vs []uint64
	for v := uint64(1); v <= last && len(vs) < 3; v++ {
		if pinned[int(v)] {
			continue
		}
		if _, ok := eng.findHistoryBase(v); ok {
			vs = append(vs, v)
		}
	}
	if len(vs) < 3 {
		t.Fatalf("only %d materializable versions; test needs 3", len(vs))
	}

	held, err := eng.historySolver(vs[0])
	if err != nil {
		t.Fatal(err)
	}
	// The 1-byte budget makes every install evict its predecessor, so
	// vs[0] is evicted by vs[1]'s install, and vs[2]'s replay is the one
	// that would have scribbled over a recycled container.
	for _, v := range vs[1:] {
		if _, err := eng.historySolver(v); err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
	}

	q := Query{Snapshot: int(vs[0]), Measure: MeasureRWR, Source: 5}
	var ws lu.SolveWorkspace
	got := measures.NewSolverEngine(testDamping, held).RWRWith(q.Source, &ws)
	_, want := coldAnswer(q, ref[vs[0]])
	if !reflect.DeepEqual(want, got) {
		t.Errorf("version %d: held solver corrupted after eviction (factors recycled under an in-flight reference)", vs[0])
	}
}

// TestHistoryLogTrimsWithBaseRetention is the unbounded-growth
// regression: the record log must shed versions below the oldest
// retained base (they have no reachable base and can never be
// materialized again) instead of growing with the stream.
func TestHistoryLogTrimsWithBaseRetention(t *testing.T) {
	eng := New(Config{Workers: 1, HistoryBase: 4, MaxSnapshots: 2, Damping: testDamping})
	defer eng.Close()
	// The floor hook (cludeserve wires store.TrimHistory here) must see
	// every advance; the last reported floor is the log's final bound.
	var floorMu sync.Mutex
	floor := uint64(0)
	eng.OnHistoryTrim(func(below uint64) {
		floorMu.Lock()
		if below > floor {
			floor = below
		}
		floorMu.Unlock()
	})
	_, last := historyStream(t, core.CLUDE, eng, 32)

	lo, hi, ok := eng.HistoryLog().Bounds()
	if !ok {
		t.Fatal("empty history log")
	}
	oldest := -1
	for _, s := range eng.Snapshots() {
		if oldest < 0 || s < oldest {
			oldest = s
		}
	}
	if oldest < 0 {
		t.Fatal("no pinned bases")
	}
	if lo != uint64(oldest) {
		t.Errorf("log floor %d, oldest retained base %d: records below the floor are dead weight", lo, oldest)
	}
	if lo == 0 {
		t.Error("log never trimmed despite base evictions")
	}
	if hi != last {
		t.Errorf("log newest %d, want %d", hi, last)
	}
	floorMu.Lock()
	reported := floor
	floorMu.Unlock()
	if reported != lo {
		t.Errorf("trim hook last reported floor %d, log floor %d: the store would compact to the wrong bound", reported, lo)
	}
	// Everything below the floor is unanswerable — and says so.
	if lo > 1 {
		_, err := eng.Query(context.Background(), Query{Snapshot: int(lo) - 1, Measure: MeasureRWR, Source: 1})
		if !errors.Is(err, ErrUnknownSnapshot) {
			t.Errorf("version %d below the floor: got %v, want ErrUnknownSnapshot", lo-1, err)
		}
	}
}

// TestHistoryPanickedReplayReleasesFlight is the wedged-single-flight
// regression: a materialization that panics (here: a poisoned record
// whose term indexes out of range) must surface as a query error and
// release the per-version flight, so later queries for the version
// retry instead of blocking forever on a never-closed done channel.
func TestHistoryPanickedReplayReleasesFlight(t *testing.T) {
	eng, _, _ := pinnedEngine(t, Config{Workers: 1, HistoryBase: 4})
	defer eng.Close()
	eng.HistoryLog().Record(bennett.VersionRecord{Version: 9})
	eng.HistoryLog().Record(bennett.VersionRecord{Version: 10, Terms: []bennett.Rank1Term{
		{Key: 0, W: []sparse.Entry{{Row: -1, Val: 1}}}, // out of range: replay panics
	}})

	for attempt := 0; attempt < 2; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := eng.Query(ctx, Query{Snapshot: 10, Measure: MeasureRWR, Source: 1})
		cancel()
		if err == nil {
			t.Fatalf("attempt %d: poisoned replay answered successfully", attempt)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("attempt %d: query wedged on the version's single-flight", attempt)
		}
	}
}

// TestHistorySpilledVersionDirectReload checks that a version whose own
// full factors are recoverable from spill is served by direct reload
// (re-pinning it), not by cloning an earlier base and replaying deltas
// under the serialized materialization lock.
func TestHistorySpilledVersionDirectReload(t *testing.T) {
	dir := t.TempDir()
	eng := New(Config{Workers: 1, HistoryBase: 4, MaxSnapshots: 2, SpillDir: dir, Damping: testDamping})
	defer eng.Close()
	ref, last := historyStream(t, core.CLUDE, eng, 24)
	waitSpilled(t, eng, 1)

	pinned := make(map[int]bool)
	for _, s := range eng.Snapshots() {
		pinned[s] = true
	}
	target := uint64(0)
	for v := uint64(1); v <= last; v++ {
		if !pinned[int(v)] && eng.isRetainedBase(v) {
			target = v
			break
		}
	}
	if target == 0 {
		t.Skip("no evicted-but-spilled base; bump batches to provoke eviction")
	}

	before := eng.Stats()
	q := Query{Snapshot: int(target), Measure: MeasureRWR, Source: 7}
	resp, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("spilled version %d: %v", target, err)
	}
	_, want := coldAnswer(q, ref[target])
	if !reflect.DeepEqual(want, resp.Scores) {
		t.Errorf("version %d: reloaded answer differs from cold solve", target)
	}
	after := eng.Stats()
	if after.HistoryMaterializations != before.HistoryMaterializations {
		t.Errorf("spilled version served by delta replay (materializations %d -> %d), want direct reload",
			before.HistoryMaterializations, after.HistoryMaterializations)
	}
	if after.SpillReloads == before.SpillReloads {
		t.Error("no spill reload recorded for the version's own factors")
	}
	repinned := false
	for _, s := range eng.Snapshots() {
		if s == int(target) {
			repinned = true
		}
	}
	if !repinned {
		t.Errorf("version %d not re-pinned after reload", target)
	}
}

// TestHistoryDisabledUnchanged asserts the zero-config path is
// untouched: no HistoryBase means unknown snapshots still 404 and the
// stats block stays dark.
func TestHistoryDisabledUnchanged(t *testing.T) {
	eng, _, _ := pinnedEngine(t, Config{MaxSnapshots: 3, Workers: 1})
	defer eng.Close()
	st := eng.Stats()
	if st.HistoryEnabled || st.HistoryRequests != 0 || st.HistoryVersions != 0 {
		t.Errorf("history stats active without HistoryBase: %+v", st)
	}
	if eng.HistoryVersions() != nil {
		t.Error("HistoryVersions non-nil with history disabled")
	}
}
