package serve

import (
	"sync/atomic"

	"repro/internal/lu"
	"repro/internal/metrics"
)

// RegisterMetrics re-registers the engine's counters, gauges and
// histograms into r under the clude_ namespace. The registered series
// read the *same* atomics Stats reads — the exposition and /stats are
// two views of one state and can never disagree. In particular the
// admission invariant becomes a scrape-checkable metric relation:
//
//	clude_queries_admitted_total + clude_queries_coalesced_total
//	  + clude_queries_shed_total == clude_queries_total
//
// Call once per engine per registry, at wiring time.
func (e *Engine) RegisterMetrics(r *metrics.Registry) {
	cf := func(name, help string, v *atomic.Int64) {
		r.CounterFunc(name, help, nil, func() float64 { return float64(v.Load()) })
	}
	cf("clude_queries_total", "Queries submitted to the serving engine.", &e.queries)
	cf("clude_queries_admitted_total", "Queries that entered the serving path (cache hits, enqueued solves, and validation rejects).", &e.admitted)
	cf("clude_queries_coalesced_total", "Queries that joined an identical in-flight query instead of computing their own answer.", &e.coalesced)
	cf("clude_queries_shed_total", "Queries fast-failed with ErrOverloaded at the full admission queue.", &e.shed)
	cf("clude_queries_rejected_total", "Queries that returned an error (validation, cancellation, shedding).", &e.rejected)
	cf("clude_cache_hits_total", "Result-cache hits over answered queries.", &e.hits)
	cf("clude_cache_misses_total", "Result-cache misses (one per completed flight).", &e.misses)
	cf("clude_cache_evictions_total", "Result-cache LRU evictions.", &e.cacheEvicted)
	cf("clude_solves_total", "Cold solves (cache fills), all paths.", &e.solves)
	cf("clude_block_solves_total", "Blocked multi-RHS dispatches (groups of >= 2 compatible queries).", &e.blockSolves)
	cf("clude_blocked_rhs_total", "Right-hand sides carried by blocked dispatches.", &e.blockedRHS)
	cf("clude_panel_solves_total", "Blocked dispatches routed through the supernodal panel-packed substitution (clude_panel_solves_total + clude_scalar_block_solves_total == clude_block_solves_total).", &e.panelSolves)
	cf("clude_panel_rhs_total", "Right-hand sides carried by panel-routed dispatches.", &e.panelRHS)
	cf("clude_scalar_block_solves_total", "Blocked dispatches routed through the classic column-by-column SolveBlock.", &e.scalarBlocks)
	cf("clude_single_groups_total", "Route groups that degenerated to one query and took the classic per-query path.", &e.singleGroups)
	cf("clude_panel_packs_total", "Packed panel sets built (one per pinned solver that ever took the panel route).", &e.panelPacks)
	cf("clude_panel_cols_covered_total", "Columns held in panels of width >= 2 across built panel sets.", &e.panelCols)
	r.CounterFunc("clude_panel_pack_seconds_total", "Cumulative wall time spent packing panel sets (paid once per pinned solver, off the publish path).", nil,
		func() float64 { return float64(e.panelPackNS.Load()) / 1e9 })
	cf("clude_sparse_solves_total", "Cold solves answered through the reach-based sparse path.", &e.sparseSolves)
	cf("clude_dense_solves_total", "Cold solves answered through the dense substitution.", &e.denseSolves)
	cf("clude_sparse_fallbacks_total", "Sparse attempts aborted at the reach cap (each also counts one dense solve).", &e.sparseFallbacks)
	cf("clude_katz_solves_total", "Cold solves answered by the graph-backed Katz factorization.", &e.katzSolves)
	cf("clude_snapshots_pinned_total", "Snapshot pins into the bounded store.", &e.pinCount)
	cf("clude_snapshots_evicted_total", "Snapshot evictions from the bounded store.", &e.snapEvicted)
	cf("clude_spill_writes_total", "Evicted snapshots spilled to disk.", &e.spillWrites)
	cf("clude_spill_reloads_total", "Spilled snapshots transparently reloaded on access.", &e.spillLoads)
	cf("clude_spill_errors_total", "Spill-path failures (each degraded to the no-spill behavior).", &e.spillErrors)
	cf("clude_live_queries_total", "Queries answered from the attached live source's hot factors.", &e.liveQueries)

	r.GaugeFunc("clude_cache_entries", "Result-cache entries currently held.", nil,
		func() float64 { return float64(e.cache.len()) })
	r.GaugeFunc("clude_snapshots_retained", "Snapshots currently pinned in the store.", nil,
		func() float64 {
			e.mu.RLock()
			defer e.mu.RUnlock()
			return float64(len(e.pinned))
		})
	r.GaugeFunc("clude_workers", "Query worker pool size.", nil,
		func() float64 { return float64(e.cfg.Workers) })
	r.GaugeFunc("clude_live_attached", "1 when a live factor source is attached and publishing.", nil,
		func() float64 {
			if src, _ := e.liveSource(); src != nil {
				return 1
			}
			return 0
		})
	r.GaugeFunc("clude_live_version", "Latest published version of the attached live source.", nil,
		func() float64 {
			var v uint64
			if src, _ := e.liveSource(); src != nil {
				src.View(func(version uint64, _ *lu.Solver) { v = version })
			}
			return float64(v)
		})

	r.RegisterHistogram("clude_query_latency_seconds",
		"End-to-end latency of successfully answered queries (entry to answer).", nil, &e.lat)
	for i := range e.stages {
		r.RegisterHistogram("clude_query_stage_seconds",
			"Per-stage durations of the query pipeline: resolve, coalesce, admit, batch, solve.",
			metrics.Labels{"stage": stageNames[i]}, &e.stages[i])
	}
}
