package serve

import (
	"sync/atomic"

	"repro/internal/lu"
	"repro/internal/metrics"
)

// RegisterMetrics re-registers the engine's counters, gauges and
// histograms into r under the clude_ namespace. The registered series
// read the *same* atomics Stats reads — the exposition and /stats are
// two views of one state and can never disagree. In particular the
// admission invariant becomes a scrape-checkable metric relation:
//
//	clude_queries_admitted_total + clude_queries_coalesced_total
//	  + clude_queries_shed_total == clude_queries_total
//
// Call once per engine per registry, at wiring time.
func (e *Engine) RegisterMetrics(r *metrics.Registry) {
	cf := func(name, help string, v *atomic.Int64) {
		r.CounterFunc(name, help, nil, func() float64 { return float64(v.Load()) })
	}
	cf("clude_queries_total", "Queries submitted to the serving engine.", &e.queries)
	cf("clude_queries_admitted_total", "Queries that entered the serving path (cache hits, enqueued solves, and validation rejects).", &e.admitted)
	cf("clude_queries_coalesced_total", "Queries that joined an identical in-flight query instead of computing their own answer.", &e.coalesced)
	cf("clude_queries_shed_total", "Queries fast-failed with ErrOverloaded at the full admission queue.", &e.shed)
	cf("clude_queries_rejected_total", "Queries that returned an error (validation, cancellation, shedding).", &e.rejected)
	cf("clude_cache_hits_total", "Result-cache hits over answered queries.", &e.hits)
	cf("clude_cache_misses_total", "Result-cache misses (one per completed flight).", &e.misses)
	cf("clude_cache_evictions_total", "Result-cache LRU evictions.", &e.cacheEvicted)
	cf("clude_solves_total", "Cold solves (cache fills), all paths.", &e.solves)
	cf("clude_block_solves_total", "Blocked multi-RHS dispatches (groups of >= 2 compatible queries).", &e.blockSolves)
	cf("clude_blocked_rhs_total", "Right-hand sides carried by blocked dispatches.", &e.blockedRHS)
	cf("clude_panel_solves_total", "Blocked dispatches routed through the supernodal panel-packed substitution (clude_panel_solves_total + clude_scalar_block_solves_total == clude_block_solves_total).", &e.panelSolves)
	cf("clude_panel_rhs_total", "Right-hand sides carried by panel-routed dispatches.", &e.panelRHS)
	cf("clude_scalar_block_solves_total", "Blocked dispatches routed through the classic column-by-column SolveBlock.", &e.scalarBlocks)
	cf("clude_single_groups_total", "Route groups that degenerated to one query and took the classic per-query path.", &e.singleGroups)
	cf("clude_panel_packs_total", "Packed panel sets built (one per pinned solver that ever took the panel route).", &e.panelPacks)
	cf("clude_panel_cols_covered_total", "Columns held in panels of width >= 2 across built panel sets.", &e.panelCols)
	r.CounterFunc("clude_panel_pack_seconds_total", "Cumulative wall time spent packing panel sets (paid once per pinned solver, off the publish path).", nil,
		func() float64 { return float64(e.panelPackNS.Load()) / 1e9 })
	cf("clude_sparse_solves_total", "Cold solves answered through the reach-based sparse path.", &e.sparseSolves)
	cf("clude_dense_solves_total", "Cold solves answered through the dense substitution.", &e.denseSolves)
	cf("clude_sparse_fallbacks_total", "Sparse attempts aborted at the reach cap (each also counts one dense solve).", &e.sparseFallbacks)
	cf("clude_katz_solves_total", "Cold solves answered by the graph-backed Katz factorization.", &e.katzSolves)
	cf("clude_snapshots_pinned_total", "Snapshot pins into the bounded store.", &e.pinCount)
	cf("clude_snapshots_evicted_total", "Snapshot evictions from the bounded store.", &e.snapEvicted)
	cf("clude_spill_writes_total", "Evicted snapshots spilled to disk.", &e.spillWrites)
	cf("clude_spill_reloads_total", "Spilled snapshots transparently reloaded on access.", &e.spillLoads)
	cf("clude_spill_errors_total", "Spill-path failures (each degraded to the no-spill behavior).", &e.spillErrors)
	cf("clude_live_queries_total", "Queries answered from the attached live source's hot factors.", &e.liveQueries)
	cf("clude_history_requests_total", "Queries routed through the delta-compressed history layer.", &e.hist.requests)
	cf("clude_history_materializations_total", "Versions materialized by delta replay (clude_history_requests_total / clude_history_materializations_total is the sharing factor).", &e.hist.materializations)
	cf("clude_history_hits_total", "History queries served by an already-materialized (LRU-resident) solver.", &e.hist.hits)
	cf("clude_history_evictions_total", "Materialized solvers evicted past the history byte budget.", &e.hist.evictions)
	cf("clude_history_base_pins_total", "Full factor clones pinned at delta-chain bases (every HistoryBase-th plus every structural version).", &e.hist.basePins)

	r.GaugeFunc("clude_cache_entries", "Result-cache entries currently held.", nil,
		func() float64 { return float64(e.cache.len()) })
	r.GaugeFunc("clude_snapshots_retained", "Snapshots currently pinned in the store.", nil,
		func() float64 {
			e.mu.RLock()
			defer e.mu.RUnlock()
			return float64(len(e.pinned))
		})
	r.GaugeFunc("clude_workers", "Query worker pool size.", nil,
		func() float64 { return float64(e.cfg.Workers) })
	r.GaugeFunc("clude_live_attached", "1 when a live factor source is attached and publishing.", nil,
		func() float64 {
			if src, _ := e.liveSource(); src != nil {
				return 1
			}
			return 0
		})
	r.GaugeFunc("clude_live_version", "Latest published version of the attached live source.", nil,
		func() float64 {
			var v uint64
			if src, _ := e.liveSource(); src != nil {
				src.View(func(version uint64, _ *lu.Solver) { v = version })
			}
			return float64(v)
		})
	r.GaugeFunc("clude_history_resident_bytes", "Bytes retained by materialized (non-base) history solvers, against the HistoryBudgetBytes bound.", nil,
		func() float64 {
			e.hist.mu.Lock()
			defer e.hist.mu.Unlock()
			return float64(e.hist.bytes)
		})
	r.GaugeFunc("clude_history_residents", "Materialized history solvers currently LRU-resident.", nil,
		func() float64 {
			e.hist.mu.Lock()
			defer e.hist.mu.Unlock()
			return float64(len(e.hist.residents))
		})
	r.GaugeFunc("clude_history_log_bytes", "Bytes retained by the in-memory delta-record log.", nil,
		func() float64 { return float64(e.hist.log.Bytes()) })
	r.GaugeFunc("clude_history_versions", "Versions covered by the delta-record log window.", nil,
		func() float64 { return float64(e.hist.log.Len()) })
	r.GaugeFunc("clude_history_dedup_ratio", "History requests per materialization (replay sharing factor; 0 until the first replay).", nil,
		func() float64 {
			if m := e.hist.materializations.Load(); m > 0 {
				return float64(e.hist.requests.Load()) / float64(m)
			}
			return 0
		})

	r.RegisterHistogram("clude_query_latency_seconds",
		"End-to-end latency of successfully answered queries (entry to answer).", nil, &e.lat)
	// Replay depth is a count, not a duration: it is recorded as one
	// second per replayed version, so the histogram's le bounds read as
	// (power-of-two) depths. See docs/API.md.
	r.RegisterHistogram("clude_history_replay_depth",
		"Delta-replay depth per materialization, in versions (recorded as seconds, 1 s = 1 version).", nil, &e.hist.replayDepth)
	for i := range e.stages {
		r.RegisterHistogram("clude_query_stage_seconds",
			"Per-stage durations of the query pipeline: resolve, coalesce, admit, batch, solve.",
			metrics.Labels{"stage": stageNames[i]}, &e.stages[i])
	}
}
