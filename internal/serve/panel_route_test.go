package serve

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"repro/internal/lu"
)

// Tests of the supernodal panel route through the batched worker path:
// the routing decision is observable (every gathered group lands in
// exactly one of SingleGroups / PanelSolves / ScalarBlockSolves),
// panel-routed blocks are bit-identical to the scalar route and to cold
// single solves, and the per-worker block scratch reuses capacity as
// batch widths jitter (the PR 3 shrink-reuse contract, extended to
// BlockWorkspace and the pooled header).

// blockedQueries is a route-compatible query set against one pinned
// snapshot, wide enough to form a single block under BatchMax >= len.
func blockedQueries(snap int) []Query {
	return []Query{
		{Snapshot: snap, Measure: MeasureRWR, Source: 3},
		{Snapshot: snap, Measure: MeasureRWR, Source: 11},
		{Snapshot: snap, Measure: MeasurePPR, Sources: []int{2, 9}},
		{Snapshot: snap, Measure: MeasureTopK, Source: 5, K: 7},
		{Snapshot: snap, Measure: MeasurePageRank},
		{Snapshot: snap, Measure: MeasurePPR, Sources: []int{0}},
		{Snapshot: snap, Measure: MeasureRWR, Source: 40},
		{Snapshot: snap, Measure: MeasureRWR, Source: 77},
	}
}

// runBlockedGroup wedges the engine's single worker on a gated live
// query, piles qs behind it so they gather into one batch, and returns
// the responses.
func runBlockedGroup(t *testing.T, eng *Engine, ref map[int]*lu.Solver, qs []Query) []*Response {
	t.Helper()
	g := newGatedLive(ref[9].Clone(), 2)
	eng.AttachLive(g)

	liveDone := make(chan error, 1)
	go func() {
		_, err := eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasureRWR, Source: 1})
		liveDone <- err
	}()
	<-g.entered

	resps := make([]*Response, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i, q := range qs {
		i, q := i, q
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = eng.Query(context.Background(), q)
		}()
	}
	waitFor(t, func() bool { return eng.Stats().Admitted == int64(1+len(qs)) }, "group admission")

	close(g.release)
	wg.Wait()
	if err := <-liveDone; err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
	}
	return resps
}

// TestPanelRoutedGroupBitIdentical forces the supernodal route
// (PanelMinWidth 1 accepts any packed set) and holds every answer of a
// panel-routed block against an independent cold solve, then reruns the
// identical scenario with panels disabled and compares the two engines'
// answers byte for byte: routing is purely an execution-schedule
// decision.
func TestPanelRoutedGroupBitIdentical(t *testing.T) {
	const snap = 4
	qs := blockedQueries(snap)

	eng, _, ref := pinnedEngine(t, Config{
		Workers: 1, BatchMax: len(qs), QueueDepth: 2 * len(qs), CacheSize: 512,
		PanelMinWidth: 1,
	})
	defer eng.Close()
	panel := runBlockedGroup(t, eng, ref, qs)

	st := eng.Stats()
	if st.BlockSolves != 1 || st.BlockedRHS != int64(len(qs)) {
		t.Fatalf("BlockSolves=%d BlockedRHS=%d, want one block of %d", st.BlockSolves, st.BlockedRHS, len(qs))
	}
	if st.PanelSolves != 1 || st.PanelRHS != int64(len(qs)) || st.ScalarBlockSolves != 0 {
		t.Fatalf("PanelSolves=%d PanelRHS=%d ScalarBlockSolves=%d, want the block panel-routed",
			st.PanelSolves, st.PanelRHS, st.ScalarBlockSolves)
	}
	if st.PanelPacks != 1 {
		t.Fatalf("PanelPacks=%d, want exactly one lazy pack for the one solver used", st.PanelPacks)
	}
	// The gated live query degenerated to a group of one — the routing
	// decision the satellite makes observable.
	if st.SingleGroups < 1 {
		t.Fatalf("SingleGroups=%d, want the live single counted", st.SingleGroups)
	}
	if st.PanelSolves+st.ScalarBlockSolves != st.BlockSolves {
		t.Fatalf("routing not exhaustive: %d + %d != %d", st.PanelSolves, st.ScalarBlockSolves, st.BlockSolves)
	}

	for i, q := range qs {
		wantNodes, wantScores := coldAnswer(q, ref[snap])
		sameAnswer(t, q.Measure+" panel", panel[i], wantNodes, wantScores)
	}

	// Scalar twin: identical queries, panels disabled.
	eng2, _, ref2 := pinnedEngine(t, Config{
		Workers: 1, BatchMax: len(qs), QueueDepth: 2 * len(qs), CacheSize: 512,
		PanelMinWidth: -1,
	})
	defer eng2.Close()
	scalar := runBlockedGroup(t, eng2, ref2, qs)

	st2 := eng2.Stats()
	if st2.PanelSolves != 0 || st2.PanelPacks != 0 || st2.ScalarBlockSolves != 1 {
		t.Fatalf("disabled panels: PanelSolves=%d PanelPacks=%d ScalarBlockSolves=%d",
			st2.PanelSolves, st2.PanelPacks, st2.ScalarBlockSolves)
	}
	for i, q := range qs {
		sameAnswer(t, q.Measure+" panel-vs-scalar", panel[i], scalar[i].Nodes, scalar[i].Scores)
	}
}

// TestPanelRouteLiveNeverPacks pins the same factors as a live source
// and asserts live blocks always take the scalar route (a live source's
// factors mutate in place; a packed value snapshot would go stale).
func TestPanelRouteLiveNeverPacks(t *testing.T) {
	eng, _, ref := pinnedEngine(t, Config{
		Workers: 1, BatchMax: 8, QueueDepth: 32, CacheSize: 512,
		PanelMinWidth: 1,
	})
	defer eng.Close()

	// View call 1 is the first query's resolve; call 2 is the worker's
	// solve view — the point to wedge so followers pile up in the queue.
	g := newGatedLive(ref[9].Clone(), 2)
	eng.AttachLive(g)

	// Wedge the worker on the first live query, then pile compatible
	// live queries behind it so they gather into one live block.
	first := make(chan error, 1)
	go func() {
		_, err := eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasureRWR, Source: 1})
		first <- err
	}()
	<-g.entered

	const k = 4
	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasureRWR, Source: 10 + i})
		}()
	}
	waitFor(t, func() bool { return eng.Stats().Admitted == int64(1+k) }, "live group admission")
	close(g.release)
	wg.Wait()
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("live query %d: %v", i, err)
		}
	}

	st := eng.Stats()
	if st.BlockSolves < 1 {
		t.Fatalf("BlockSolves=%d, want the live block to have formed", st.BlockSolves)
	}
	if st.PanelSolves != 0 || st.PanelPacks != 0 {
		t.Fatalf("live block packed panels: PanelSolves=%d PanelPacks=%d", st.PanelSolves, st.PanelPacks)
	}
	if st.ScalarBlockSolves != st.BlockSolves {
		t.Fatalf("ScalarBlockSolves=%d != BlockSolves=%d on a live-only load", st.ScalarBlockSolves, st.BlockSolves)
	}
}

// blockGroupTasks builds a route-compatible unkeyed task group of width
// k directly (no cache fill, no flight table), the harness the alloc
// regression drives serveBlock with.
func blockGroupTasks(k int) []*task {
	ts := make([]*task, k)
	for i := range ts {
		ts[i] = &task{
			q:       Query{Measure: MeasureRWR, Source: i % 64},
			damping: testDamping,
			fl:      newFlight(),
		}
	}
	return ts
}

// TestServeBlockScratchReuseAcrossWidths is the satellite's alloc-count
// regression on the batched worker path: after a warm-up at the widest
// batch, serveBlock's only steady-state allocations are the k
// cache-owned solution vectors — the pooled header, the BlockWorkspace
// column vectors and the panel gather scratch all survive shrinking and
// regrowing batch widths (the BlockWorkspace grow path copies up to
// capacity, not length, mirroring the Workspace.vector fix).
func TestServeBlockScratchReuseAcrossWidths(t *testing.T) {
	for _, tc := range []struct {
		name     string
		minWidth int
	}{
		{"panels", 1},
		{"scalar", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, _, ref := pinnedEngine(t, Config{
				Workers: 1, BatchMax: 16, QueueDepth: 16, PanelMinWidth: tc.minWidth,
			})
			defer eng.Close()
			solver := ref[0]
			w := &workerScratch{}

			// Jittering batch widths: shrink then regrow, twice past the
			// warm-up width to exercise the header/vector grow paths.
			widths := []int{16, 2, 8, 3, 16, 5, 12, 16, 4, 16}
			groups := make([][]*task, len(widths))
			totalRHS := 0
			for i, k := range widths {
				groups[i] = blockGroupTasks(k)
				totalRHS += k
			}
			// Warm-up: builds the panel set (panels run) and sizes every
			// scratch to the maximum width.
			eng.serveBlock(blockGroupTasks(16), solver, w)

			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			for i := range groups {
				eng.serveBlock(groups[i], solver, w)
			}
			runtime.ReadMemStats(&m1)
			got := int64(m1.Mallocs - m0.Mallocs)

			// One owned []float64 per right-hand side, plus slack for
			// runtime noise — far below one extra per-RHS allocation, so
			// any workspace churn trips it.
			limit := int64(totalRHS) + int64(totalRHS)/2
			if got > limit {
				t.Fatalf("serveBlock allocated %d times over %d RHS (limit %d): block scratch is churning",
					got, totalRHS, limit)
			}
		})
	}
}
