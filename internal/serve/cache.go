package serve

import (
	"container/list"
	"strings"
	"sync"
)

// answer is one cached query result. Scores and Nodes are immutable
// once stored; readers receive copies so a caller mutating its
// response cannot corrupt the cache.
type answer struct {
	scores []float64
	nodes  []int // top-k ids; nil for full-vector measures
}

// lruCache is a mutex-guarded LRU over query keys. The serving layer's
// workers share one cache, so a hot query computed by any worker is a
// hit for all of them.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	ans answer
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// get returns the cached answer for key, promoting it to most recently
// used.
func (c *lruCache) get(key string) (answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return answer{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).ans, true
}

// put stores the answer for key, evicting the least recently used
// entry when over capacity. Returns the number of evictions (0 or 1).
func (c *lruCache) put(key string, ans answer) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent worker already computed this key; the answers
		// are identical (solves are deterministic), so keep the first.
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, ans: ans})
	if c.order.Len() <= c.cap {
		return 0
	}
	back := c.order.Back()
	c.order.Remove(back)
	delete(c.entries, back.Value.(*cacheEntry).key)
	return 1
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// purgePrefix drops every entry whose key starts with prefix and
// returns how many were dropped. Used when a snapshot is evicted from
// the store so the cache cannot keep answering for a snapshot the
// store reports as gone. The scan is linear over the cache, which the
// capacity bounds.
func (c *lruCache) purgePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for key, el := range c.entries {
		if strings.HasPrefix(key, prefix) {
			c.order.Remove(el)
			delete(c.entries, key)
			dropped++
		}
	}
	return dropped
}
