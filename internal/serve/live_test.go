package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/xrand"
)

// liveStreamAlg builds a small random event stream and a streaming
// engine of the given strategy over it (not yet advanced past
// version 0).
func liveStreamAlg(t *testing.T, alg core.Algorithm, nBatches int, onPublish func(uint64, *lu.Solver)) (*core.Stream, [][]graph.EdgeEvent) {
	t.Helper()
	rng := xrand.New(77)
	n := 120
	es := make([]graph.Edge, 0, 4*n)
	for k := 0; k < 4*n; k++ {
		es = append(es, graph.Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	initial := graph.New(n, true, es)
	batches := make([][]graph.EdgeEvent, nBatches)
	for b := range batches {
		evs := make([]graph.EdgeEvent, 10)
		for k := range evs {
			op := graph.EdgeInsert
			if rng.Intn(10) < 3 {
				op = graph.EdgeDelete
			}
			evs[k] = graph.EdgeEvent{From: rng.Intn(n), To: rng.Intn(n), Op: op}
		}
		batches[b] = evs
	}
	s, err := core.NewStream(core.StreamConfig{
		Algorithm: alg, Alpha: 0.9,
		Initial: initial, Derive: graph.RWRMatrix(testDamping),
		OnPublish: onPublish,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, batches
}

// liveStream is liveStreamAlg with the CLUDE default most tests use.
func liveStream(t *testing.T, onPublish func(uint64, *lu.Solver)) (*core.Stream, [][]graph.EdgeEvent) {
	t.Helper()
	return liveStreamAlg(t, core.CLUDE, 24, onPublish)
}

// TestLiveServingDuringIngestion is the streaming serve stress test,
// run for every maintenance strategy: query workers hammer the latest
// state while batches commit concurrently. Every answer must be
// internally consistent (computed from exactly one published version),
// and after ingestion quiesces the engine's answers must be
// bit-identical to a cold solve of the final factors. Run under -race
// this also proves the publish-lock protocol.
func TestLiveServingDuringIngestion(t *testing.T) {
	for _, alg := range []core.Algorithm{core.BF, core.INC, core.CINC, core.CLUDE} {
		t.Run(string(alg), func(t *testing.T) { liveServingStress(t, alg) })
	}
}

func liveServingStress(t *testing.T, alg core.Algorithm) {
	stream, batches := liveStreamAlg(t, alg, 12, nil)
	defer stream.Close()
	eng := New(Config{Workers: 4, CacheSize: 256, Damping: testDamping})
	defer eng.Close()
	eng.AttachLive(stream)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var served atomic.Int64
	n := stream.N()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := Query{Snapshot: -1, Measure: MeasureRWR, Source: rng.Intn(n)}
				if rng.Intn(3) == 0 {
					q = Query{Snapshot: -1, Measure: MeasureTopK, Source: rng.Intn(n), K: 5}
				}
				resp, err := eng.Query(context.Background(), q)
				if err != nil {
					t.Errorf("live query: %v", err)
					return
				}
				if !resp.Live {
					t.Error("latest-state query not served live")
					return
				}
				served.Add(1)
			}
		}(uint64(100 + g))
	}
	for _, evs := range batches {
		if _, err := stream.Apply(evs); err != nil {
			t.Fatal(err)
		}
	}
	// A fast ingest can finish before the clients are scheduled at all
	// (GOMAXPROCS=1); let them land a few queries before stopping so the
	// live path is exercised on every run.
	for w := 0; w < 2000 && served.Load() < 4; w++ {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no live queries served")
	}

	// Quiesced: answers must equal cold solves of the final factors.
	var final *lu.Solver
	if !stream.View(func(_ uint64, s *lu.Solver) { final = s.Clone() }) {
		t.Fatal("no final state")
	}
	rng := xrand.New(9)
	for trial := 0; trial < 20; trial++ {
		q := Query{Snapshot: -1, Measure: MeasureRWR, Source: rng.Intn(n)}
		resp, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Version != stream.Version() {
			t.Fatalf("quiesced answer at version %d, want %d", resp.Version, stream.Version())
		}
		_, cold := coldAnswer(q, final)
		for j := range cold {
			if resp.Scores[j] != cold[j] {
				t.Fatalf("live answer differs from cold solve at %d: %v vs %v", j, resp.Scores[j], cold[j])
			}
		}
	}

	st := eng.Stats()
	if !st.LiveAttached || st.LiveQueries == 0 {
		t.Fatalf("live stats not recorded: %+v", st)
	}
	if st.LiveVersion != stream.Version() {
		t.Fatalf("stats live version %d, want %d", st.LiveVersion, stream.Version())
	}
}

// TestLiveCacheInvalidatesOnPublish pins the version-keyed cache
// behavior: a repeated query within one version hits the cache, and a
// committed batch makes the next answer a fresh solve reflecting the
// new factors.
func TestLiveCacheInvalidatesOnPublish(t *testing.T) {
	stream, batches := liveStream(t, nil)
	defer stream.Close()
	eng := New(Config{Workers: 1, CacheSize: 64, Damping: testDamping})
	defer eng.Close()
	eng.AttachLive(stream)

	q := Query{Snapshot: -1, Measure: MeasureRWR, Source: 3}
	first, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || !again.CacheHit {
		t.Fatalf("cache behavior within a version: first hit=%v second hit=%v", first.CacheHit, again.CacheHit)
	}
	if _, err := stream.Apply(batches[0]); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("answer for a new version served from the old version's cache")
	}
	if after.Version != 1 || again.Version != 0 {
		t.Fatalf("versions %d then %d, want 0 then 1", again.Version, after.Version)
	}
}

// TestLiveCheckpointsFeedPinnedStore wires the checkpointing pattern: a
// publish callback pins a clone every k versions, so snapshot-addressed
// queries serve history while the live path serves the head.
func TestLiveCheckpointsFeedPinnedStore(t *testing.T) {
	const every = 6
	eng := New(Config{Workers: 2, CacheSize: 64, Damping: testDamping})
	defer eng.Close()
	stream, batches := liveStream(t, eng.CheckpointEvery(every))
	defer stream.Close()
	eng.AttachLive(stream)

	for _, evs := range batches {
		if _, err := stream.Apply(evs); err != nil {
			t.Fatal(err)
		}
	}
	snaps := eng.Snapshots()
	want := int(stream.Version())/every + 1
	if len(snaps) != want {
		t.Fatalf("%d checkpoints pinned, want %d (%v)", len(snaps), want, snaps)
	}
	// A checkpoint answers as a plain pinned snapshot.
	resp, err := eng.Query(context.Background(), Query{Snapshot: every, Measure: MeasureRWR, Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Live || resp.Snapshot != every {
		t.Fatalf("checkpoint query answered live=%v snapshot=%d", resp.Live, resp.Snapshot)
	}
	// The head answers live even though checkpoints exist.
	head, err := eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasureRWR, Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !head.Live || head.Version != stream.Version() {
		t.Fatalf("head query live=%v version=%d, want live at %d", head.Live, head.Version, stream.Version())
	}
}

// TestReattachInvalidatesLiveCache pins the attach-generation stamp:
// after swapping in a different live source whose version counter
// starts over at the same value, a repeated query must not be served
// from the previous source's cache.
func TestReattachInvalidatesLiveCache(t *testing.T) {
	a, _ := liveStream(t, nil)
	defer a.Close()
	b, _ := liveStream(t, nil)
	defer b.Close()
	eng := New(Config{Workers: 1, CacheSize: 64, Damping: testDamping})
	defer eng.Close()

	q := Query{Snapshot: -1, Measure: MeasureRWR, Source: 3}
	eng.AttachLive(a)
	if _, err := eng.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("repeat query on one source did not hit the cache")
	}
	// b is at the same version (0) as a's cached answer.
	eng.AttachLive(b)
	swapped, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if swapped.CacheHit {
		t.Fatal("swapped-in source served the previous source's cached answer")
	}
	if swapped.Version != 0 || !swapped.Live {
		t.Fatalf("swapped answer live=%v version=%d, want live at 0", swapped.Live, swapped.Version)
	}
}

// TestDetachLiveRestoresPinnedServing verifies AttachLive(nil) and the
// fallback when a live source exists but the engine has pinned state.
func TestDetachLiveRestoresPinnedServing(t *testing.T) {
	stream, _ := liveStream(t, nil)
	defer stream.Close()
	eng := New(Config{Workers: 1, CacheSize: 16, Damping: testDamping})
	defer eng.Close()
	eng.AttachLive(stream)
	var pinned *lu.Solver
	stream.View(func(_ uint64, s *lu.Solver) { pinned = s.Clone() })
	eng.Pin(0, pinned)

	resp, err := eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasureRWR, Source: 2})
	if err != nil || !resp.Live {
		t.Fatalf("attached engine served live=%v err=%v", resp != nil && resp.Live, err)
	}
	eng.AttachLive(nil)
	resp, err = eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasureRWR, Source: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Live {
		t.Fatal("detached engine still serving live")
	}
	if st := eng.Stats(); st.LiveAttached {
		t.Fatal("stats report a detached source")
	}
}
