package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latHist is a lock-free log₂-bucketed latency histogram: bucket b
// counts observations with bits.Len64(ns) == b, i.e. durations in
// [2^(b−1), 2^b) ns. Sixty-four buckets cover every representable
// duration, observation is one atomic increment, and percentile reads
// report a bucket's upper bound — at most 2× the true quantile, which
// is the right fidelity for an overload dashboard (the interesting
// signals are order-of-magnitude shifts, not nanoseconds).
type latHist struct {
	buckets [64]atomic.Int64
}

// observe records one successful-query latency.
func (h *latHist) observe(d time.Duration) {
	b := bits.Len64(uint64(d.Nanoseconds()))
	if b > 63 {
		b = 63
	}
	h.buckets[b].Add(1)
}

// percentileUS returns the p-quantile (0 < p ≤ 1) in microseconds, as
// the upper bound of the bucket holding the rank-⌈p·total⌉
// observation; 0 when nothing has been observed. The read is not
// atomic across buckets — concurrent observations can skew a live read
// by their own count, which is fine for monitoring.
func (h *latHist) percentileUS(p float64) float64 {
	var counts [64]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range counts {
		cum += c
		if cum >= rank {
			return float64(uint64(1)<<uint(b)) / 1e3
		}
	}
	return float64(uint64(1)<<63) / 1e3
}
