package serve

// Stage tracing of the query pipeline. Every query's journey through
//
//	resolve ──▶ coalesce ──▶ admit ──▶ batch ──▶ solve
//
// is timed into one log₂-bucketed histogram per stage
// (metrics.Histogram — the same buckets back Stats.QueryStages and the
// clude_query_stage_seconds exposition, so /stats and /metrics can
// never disagree):
//
//   - resolve: routing + validation time of e.resolve, every query.
//   - coalesce: how long a coalesced follower waited on the shared
//     flight (followers only — the leader's wait is admit + batch +
//     solve).
//   - admit: queue wait of enqueued tasks, from enqueue to a worker
//     dequeuing them.
//   - batch: from dequeue to the task's group starting to solve — the
//     gathering/grouping overhead plus any wait behind earlier groups
//     of the same worker batch.
//   - solve: one observation per group dispatch (single or blocked),
//     covering the factor substitution (or the Katz factorization) and
//     answer publication.
//
// The end-to-end latency histogram (Stats.LatencyP*, exposed as
// clude_query_latency_seconds) is observed separately in Query.
const (
	stageResolve = iota
	stageCoalesce
	stageAdmit
	stageBatch
	stageSolve
	numStages
)

// stageNames indexes the stage histograms; these strings are the
// `stage` label values of clude_query_stage_seconds and the keys of
// Stats.QueryStages.
var stageNames = [numStages]string{"resolve", "coalesce", "admit", "batch", "solve"}

// StageLatency summarizes one pipeline stage's duration histogram in
// Stats. Percentiles are bucket upper bounds (≤ 2× the true quantile),
// in microseconds, matching the top-level latency fields.
type StageLatency struct {
	Count int64   `json:"count"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
}
