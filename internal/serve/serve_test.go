package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/measures"
	"repro/internal/xrand"
)

const testDamping = 0.85

// pinnedEngine runs CLUDE over a tiny Wiki-like EMS with RetainFactors
// and pins every snapshot into a fresh serve engine. It also returns
// an independent reference clone of each snapshot's solver so tests
// can recompute answers cold, outside the engine.
func pinnedEngine(t *testing.T, cfg Config) (*Engine, *graph.EMS, map[int]*lu.Solver) {
	t.Helper()
	egs, err := gen.WikiSim(gen.WikiConfig{
		N: 150, T: 10, InitialEdges: 420, FinalEdges: 465,
		ChurnFrac: 0.25, EventRate: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ems := graph.DeriveEMS(egs, graph.RWRMatrix(testDamping))
	cfg.Damping = testDamping
	eng := New(cfg)
	ref := make(map[int]*lu.Solver, ems.Len())
	_, err = core.Run(ems, core.CLUDE, core.Options{
		Alpha:         0.95,
		RetainFactors: true,
		OnFactors: func(i int, s *lu.Solver) {
			ref[i] = s.Clone()
			eng.Pin(i, s)
		},
	})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	return eng, ems, ref
}

// coldAnswer recomputes q's answer from the reference solver, outside
// the serving engine and its cache.
func coldAnswer(q Query, s *lu.Solver) ([]int, []float64) {
	me := measures.NewSolverEngine(testDamping, s)
	var ws lu.SolveWorkspace
	switch q.Measure {
	case MeasureRWR:
		return nil, me.RWRWith(q.Source, &ws)
	case MeasurePPR:
		return nil, me.PPRWith(q.Sources, &ws)
	case MeasurePageRank:
		return nil, me.PageRankWith(&ws)
	case MeasureTopK:
		full := me.RWRWith(q.Source, &ws)
		nodes := measures.TopK(full, q.K)
		scores := make([]float64, len(nodes))
		for i, v := range nodes {
			scores[i] = full[v]
		}
		return nodes, scores
	}
	panic("unknown measure " + q.Measure)
}

// mixedQuery derives a deterministic pseudo-random query over T
// snapshots and n nodes.
func mixedQuery(rng *xrand.Rand, T, n int) Query {
	q := Query{Snapshot: rng.Intn(T)}
	switch rng.Intn(4) {
	case 0:
		q.Measure = MeasureRWR
		q.Source = rng.Intn(n)
	case 1:
		q.Measure = MeasurePPR
		// Small seed pool so identical seed sets recur and hit the cache.
		q.Sources = []int{rng.Intn(8), 8 + rng.Intn(8)}
	case 2:
		q.Measure = MeasurePageRank
	case 3:
		q.Measure = MeasureTopK
		q.Source = rng.Intn(n)
		q.K = 1 + rng.Intn(10)
	}
	return q
}

// TestConcurrentMixedQueriesBitIdentical is the serving layer's
// acceptance gate: well over 1000 mixed queries across snapshots, from
// many goroutines (run it with -race), every answer — cache hit or
// cold — compared bit-for-bit against an independent cold solve.
func TestConcurrentMixedQueriesBitIdentical(t *testing.T) {
	eng, ems, ref := pinnedEngine(t, Config{Workers: 4, CacheSize: 512})
	defer eng.Close()

	const goroutines = 8
	const perG = 160 // 1280 queries total
	n := ems.N()
	T := ems.Len()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < perG; i++ {
				q := mixedQuery(rng, T, n)
				resp, err := eng.Query(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				nodes, scores := coldAnswer(q, ref[resp.Snapshot])
				if len(scores) != len(resp.Scores) || len(nodes) != len(resp.Nodes) {
					t.Errorf("%+v: shape mismatch", q)
					return
				}
				for j := range scores {
					if resp.Scores[j] != scores[j] {
						t.Errorf("%+v: score[%d] = %v, cold %v (hit=%v)",
							q, j, resp.Scores[j], scores[j], resp.CacheHit)
						return
					}
				}
				for j := range nodes {
					if resp.Nodes[j] != nodes[j] {
						t.Errorf("%+v: node[%d] = %d, cold %d (hit=%v)",
							q, j, resp.Nodes[j], nodes[j], resp.CacheHit)
						return
					}
				}
			}
		}(uint64(100 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.Queries < goroutines*perG {
		t.Errorf("stats count %d queries, want >= %d", st.Queries, goroutines*perG)
	}
	if st.CacheHits == 0 {
		t.Error("no cache hits across repeated mixed queries")
	}
	if st.CacheHits+st.CacheMisses != st.Queries {
		t.Errorf("hits %d + misses %d != queries %d", st.CacheHits, st.CacheMisses, st.Queries)
	}
	if st.ColdSolves != st.CacheMisses {
		t.Errorf("cold solves %d != misses %d", st.ColdSolves, st.CacheMisses)
	}
}

// TestQueryCancellation covers the request-context paths: a context
// cancelled before (and racing with) the solve must surface ctx.Err.
func TestQueryCancellation(t *testing.T) {
	eng, _, _ := pinnedEngine(t, Config{Workers: 2})
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Query(ctx, Query{Snapshot: 0, Measure: MeasureRWR, Source: 1}); err != context.Canceled {
		t.Fatalf("cancelled query returned %v, want context.Canceled", err)
	}

	// Racing cancellation: fire queries while cancelling concurrently;
	// every call must return either a valid answer or ctx.Err, never
	// hang or panic.
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			cancel()
			close(done)
		}()
		resp, err := eng.Query(ctx, Query{Snapshot: -1, Measure: MeasurePageRank})
		if err == nil {
			if len(resp.Scores) == 0 {
				t.Fatal("empty scores on successful query")
			}
		} else if err != context.Canceled {
			t.Fatalf("racing cancel returned %v", err)
		}
		<-done
	}
}

// TestSnapshotStoreBound verifies the bounded store: pinning beyond
// MaxSnapshots evicts the oldest snapshots, queries against evicted
// snapshots fail with ErrUnknownSnapshot, and Snapshot: -1 resolves to
// the latest pin.
func TestSnapshotStoreBound(t *testing.T) {
	eng, ems, _ := pinnedEngine(t, Config{Workers: 1, MaxSnapshots: 4})
	defer eng.Close()

	snaps := eng.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("retained %v, want 4 snapshots", snaps)
	}
	want := []int{ems.Len() - 4, ems.Len() - 3, ems.Len() - 2, ems.Len() - 1}
	for i := range want {
		if snaps[i] != want[i] {
			t.Fatalf("retained %v, want %v", snaps, want)
		}
	}
	if eng.Latest() != ems.Len()-1 {
		t.Fatalf("latest %d, want %d", eng.Latest(), ems.Len()-1)
	}

	ctx := context.Background()
	if _, err := eng.Query(ctx, Query{Snapshot: 0, Measure: MeasureRWR, Source: 0}); err == nil {
		t.Fatal("query for evicted snapshot succeeded")
	}
	resp, err := eng.Query(ctx, Query{Snapshot: -1, Measure: MeasureRWR, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Snapshot != ems.Len()-1 {
		t.Fatalf("latest query resolved to %d, want %d", resp.Snapshot, ems.Len()-1)
	}

	st := eng.Stats()
	if st.SnapshotsEvicted != int64(ems.Len()-4) {
		t.Errorf("evicted %d, want %d", st.SnapshotsEvicted, ems.Len()-4)
	}
	if st.Retained != 4 {
		t.Errorf("retained %d, want 4", st.Retained)
	}
}

// TestQueryValidation exercises the rejection paths.
func TestQueryValidation(t *testing.T) {
	eng, ems, _ := pinnedEngine(t, Config{Workers: 1})
	defer eng.Close()
	ctx := context.Background()
	n := ems.N()

	bad := []Query{
		{Snapshot: 0, Measure: "betweenness"},
		{Snapshot: 0, Measure: MeasureRWR, Source: n},
		{Snapshot: 0, Measure: MeasureRWR, Source: -1},
		{Snapshot: 0, Measure: MeasureTopK, Source: 0, K: 0},
		{Snapshot: 0, Measure: MeasurePPR},
		{Snapshot: 0, Measure: MeasurePPR, Sources: []int{n + 2}},
		{Snapshot: 0, Measure: MeasureRWR, Source: 0, Damping: 0.5},
	}
	for _, q := range bad {
		if _, err := eng.Query(ctx, q); err == nil {
			t.Errorf("%+v accepted, want error", q)
		}
	}

	// PPR seed sets are canonicalized: permutations share one cache
	// entry and one answer.
	a, err := eng.Query(ctx, Query{Snapshot: 1, Measure: MeasurePPR, Sources: []int{5, 2, 9}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Query(ctx, Query{Snapshot: 1, Measure: MeasurePPR, Sources: []int{9, 5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit {
		t.Error("permuted seed set missed the cache")
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("permuted seeds changed answer at %d", i)
		}
	}
}

// TestEmptyEngine covers the no-snapshots and closed states, and that
// Close is idempotent.
func TestEmptyEngine(t *testing.T) {
	eng := New(Config{Workers: 1, Damping: testDamping})
	if _, err := eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasurePageRank}); err != ErrNoSnapshots {
		t.Fatalf("empty engine returned %v, want ErrNoSnapshots", err)
	}
	eng.Close()
	eng.Close() // second Close must be a no-op, not a panic
	if _, err := eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasurePageRank}); err != ErrClosed {
		t.Fatalf("closed engine returned %v, want ErrClosed", err)
	}
}

// TestEvictionPurgesCache pins past the store bound after answers were
// cached and checks that an evicted snapshot is consistently gone: the
// exact query that was a cache hit before eviction now fails with
// ErrUnknownSnapshot like every other query against that snapshot.
func TestEvictionPurgesCache(t *testing.T) {
	eng, _, ref := pinnedEngine(t, Config{Workers: 1, MaxSnapshots: 32})
	defer eng.Close()
	ctx := context.Background()

	q := Query{Snapshot: 0, Measure: MeasureRWR, Source: 3}
	if _, err := eng.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if resp, err := eng.Query(ctx, q); err != nil || !resp.CacheHit {
		t.Fatalf("warmup query not cached (err=%v)", err)
	}

	// Re-pin clones under fresh indices until snapshot 0 falls out.
	next := eng.Latest() + 1
	for i := 0; i < 32; i++ {
		eng.Pin(next+i, ref[0].Clone())
	}
	for _, s := range eng.Snapshots() {
		if s == 0 {
			t.Fatal("snapshot 0 still retained after 32 more pins")
		}
	}
	if _, err := eng.Query(ctx, q); !errors.Is(err, ErrUnknownSnapshot) {
		t.Fatalf("cached query against evicted snapshot returned %v, want ErrUnknownSnapshot", err)
	}
}

// TestDuplicateSeedsCanonicalized: PPR restart mass is uniform over
// the seed *set* — a repeated seed must neither change the answer nor
// split the cache entry.
func TestDuplicateSeedsCanonicalized(t *testing.T) {
	eng, _, ref := pinnedEngine(t, Config{Workers: 1})
	defer eng.Close()
	ctx := context.Background()

	single, err := eng.Query(ctx, Query{Snapshot: 2, Measure: MeasurePPR, Sources: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := eng.Query(ctx, Query{Snapshot: 2, Measure: MeasurePPR, Sources: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !doubled.CacheHit {
		t.Error("duplicate-seed query missed the canonical cache entry")
	}
	_, cold := coldAnswer(Query{Measure: MeasurePPR, Sources: []int{4}}, ref[2])
	for i := range cold {
		if single.Scores[i] != cold[i] || doubled.Scores[i] != cold[i] {
			t.Fatalf("duplicate seeds changed the answer at %d: %v / %v vs %v",
				i, single.Scores[i], doubled.Scores[i], cold[i])
		}
	}
}

// TestRePinInvalidatesCache: pinning new factors under an existing
// snapshot index must not serve answers cached from the old factors.
func TestRePinInvalidatesCache(t *testing.T) {
	eng, _, ref := pinnedEngine(t, Config{Workers: 1})
	defer eng.Close()
	ctx := context.Background()

	// Global PageRank: any edge difference between the snapshots
	// shifts it, so the old-vs-new comparison below cannot be vacuous.
	q := Query{Snapshot: 0, Measure: MeasurePageRank}
	before, err := eng.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	// Replace snapshot 0's factors with snapshot 5's.
	eng.Pin(0, ref[5].Clone())
	after, err := eng.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Error("re-pinned snapshot served a stale cache hit")
	}
	_, cold := coldAnswer(q, ref[5])
	same := true
	for i := range cold {
		if after.Scores[i] != cold[i] {
			t.Fatalf("re-pinned answer differs from new factors at %d", i)
		}
		if after.Scores[i] != before.Scores[i] {
			same = false
		}
	}
	if same {
		t.Fatal("test vacuous: old and new factors gave identical answers")
	}
}

// TestLatestSurvivesOutOfOrderEviction: evicting the highest snapshot
// index (possible with out-of-order pins) must re-resolve latest to a
// retained snapshot instead of leaving Snapshot: -1 queries broken.
func TestLatestSurvivesOutOfOrderEviction(t *testing.T) {
	eng, _, ref := pinnedEngine(t, Config{Workers: 1})
	defer eng.Close()

	small := New(Config{Workers: 1, Damping: testDamping, MaxSnapshots: 2})
	defer small.Close()
	small.Pin(100, ref[0].Clone())
	small.Pin(1, ref[1].Clone())
	small.Pin(2, ref[2].Clone()) // evicts 100, the previous latest
	if got := small.Latest(); got != 2 {
		t.Fatalf("latest = %d after evicting 100, want 2", got)
	}
	resp, err := small.Query(context.Background(), Query{Snapshot: -1, Measure: MeasurePageRank})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Snapshot != 2 {
		t.Fatalf("latest query resolved to %d, want 2", resp.Snapshot)
	}
}

// TestSparsePathStatsAndEquivalence pins the same factors into three
// engines — sparse path forced (never fall back), default heuristic
// (real fallback decisions), and sparse disabled — and checks that (a)
// every configuration's answers equal an independent cold dense solve
// bit for bit, (b) the path counters add up, and (c) the forced-sparse
// engine actually took the reach-based path and measured a reach
// fraction.
func TestSparsePathStatsAndEquivalence(t *testing.T) {
	forced, ems, ref := pinnedEngine(t, Config{Workers: 2, SparseReachFrac: 1})
	defer forced.Close()
	heuristic, _, _ := pinnedEngine(t, Config{Workers: 2}) // SparseReachFrac 0 = default
	defer heuristic.Close()
	disabled, _, _ := pinnedEngine(t, Config{Workers: 2, SparseReachFrac: -1})
	defer disabled.Close()

	ctx := context.Background()
	n := ems.N()
	queries := []Query{
		{Snapshot: 0, Measure: MeasureRWR, Source: 3},
		{Snapshot: 1, Measure: MeasureRWR, Source: n - 1},
		{Snapshot: 2, Measure: MeasureTopK, Source: 5, K: 7},
		{Snapshot: 3, Measure: MeasurePPR, Sources: []int{2, 9, 40}},
		{Snapshot: 4, Measure: MeasurePageRank},
	}
	for _, q := range queries {
		nodes, scores := coldAnswer(q, ref[q.Snapshot])
		for name, eng := range map[string]*Engine{"forced": forced, "heuristic": heuristic, "disabled": disabled} {
			a, err := eng.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Scores) != len(scores) || len(a.Nodes) != len(nodes) {
				t.Fatalf("%s %+v: shape mismatch vs cold", name, q)
			}
			for i := range scores {
				if a.Scores[i] != scores[i] {
					t.Fatalf("%s %+v: score[%d] = %v, cold %v", name, q, i, a.Scores[i], scores[i])
				}
			}
			for i := range nodes {
				if a.Nodes[i] != nodes[i] {
					t.Fatalf("%s %+v: node[%d] = %d, cold %d", name, q, i, a.Nodes[i], nodes[i])
				}
			}
		}
	}

	fst := forced.Stats()
	// With the cap disabled (frac >= 1) every rwr/topk/ppr cold solve is
	// sparse; only pagerank is dense.
	if want := int64(len(queries) - 1); fst.SparseSolves != want {
		t.Errorf("forced engine: %d sparse solves, want %d", fst.SparseSolves, want)
	}
	if fst.DenseSolves != 1 {
		t.Errorf("forced engine: %d dense solves, want 1 (pagerank)", fst.DenseSolves)
	}
	if fst.SparseFallbacks != 0 {
		t.Errorf("forced engine: %d fallbacks, want 0", fst.SparseFallbacks)
	}
	if fst.SparseSolves+fst.DenseSolves != fst.ColdSolves {
		t.Errorf("sparse %d + dense %d != cold %d", fst.SparseSolves, fst.DenseSolves, fst.ColdSolves)
	}
	if fst.AvgReachFrac <= 0 || fst.AvgReachFrac > 1 {
		t.Errorf("forced engine: avg reach fraction %v outside (0,1]", fst.AvgReachFrac)
	}

	hst := heuristic.Stats()
	if hst.SparseSolves+hst.DenseSolves != hst.ColdSolves {
		t.Errorf("heuristic engine: sparse %d + dense %d != cold %d",
			hst.SparseSolves, hst.DenseSolves, hst.ColdSolves)
	}
	if hst.SparseFallbacks > hst.DenseSolves {
		t.Errorf("heuristic engine: %d fallbacks exceed %d dense solves",
			hst.SparseFallbacks, hst.DenseSolves)
	}

	dst := disabled.Stats()
	if dst.SparseSolves != 0 || dst.SparseFallbacks != 0 {
		t.Errorf("disabled engine took the sparse path: %+v", dst)
	}
	if dst.DenseSolves != dst.ColdSolves {
		t.Errorf("disabled engine: dense %d != cold %d", dst.DenseSolves, dst.ColdSolves)
	}
	if dst.AvgReachFrac != 0 {
		t.Errorf("disabled engine reported reach fraction %v", dst.AvgReachFrac)
	}
}
