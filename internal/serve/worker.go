package serve

import (
	"fmt"
	"time"

	"repro/internal/lu"
	"repro/internal/measures"
	"repro/internal/sparse"
)

// The batching stage: each worker drains the admission queue, groups
// compatible queued queries — same factors, hence same route — and
// solves a group of k right-hand sides through one blocked factor
// traversal (lu.Solver.SolveBlock). A group that degenerates to a
// single query takes the classic per-query path, which includes the
// reach-based sparse solve; blocks are always dense (a block exists
// because load is high, and amortizing the factor walk across k dense
// substitutions is the better trade than k independent sparse probes).
// Both paths produce bit-identical answers, so batching is purely an
// execution-schedule decision.

// workerScratch is the per-worker reusable state: dense solve scratch,
// sparse (reach-based) solve scratch, blocked solve scratch, and a
// dense result buffer for answers that never enter the cache (top-k's
// full vector), so a steady-state worker's per-query allocation is
// only what the cache must own.
type workerScratch struct {
	ws  lu.SolveWorkspace
	sws lu.SparseSolveWorkspace
	bws lu.BlockWorkspace
	buf []float64
	hdr [][]float64 // pooled block header (see headers)
}

// headers returns a k-slot right-hand-side header, reusing capacity as
// the batch width jitters query to query (the lu.BlockWorkspace twin of
// this pooling lives in vectors/scratch). Only the header is pooled —
// the vectors it points at are cache-owned and always fresh. Every slot
// is overwritten by the caller before the block solves.
func (w *workerScratch) headers(k int) [][]float64 {
	if cap(w.hdr) < k {
		w.hdr = make([][]float64, k)
	}
	w.hdr = w.hdr[:k]
	return w.hdr
}

// worker owns one scratch set and drains the admission queue in
// batches.
func (e *Engine) worker() {
	defer e.wg.Done()
	var w workerScratch
	for {
		select {
		case t := <-e.queue:
			e.dequeued(t)
			batch := e.gather(t)
			for len(batch) > 0 {
				group, rest := splitGroup(batch)
				e.serveGroup(group, &w)
				batch = rest
			}
		case <-e.closed:
			return
		}
	}
}

// dequeued stamps a task's exit from the admission queue and records
// the admit-stage wait.
func (e *Engine) dequeued(t *task) {
	t.dequeuedAt = time.Now()
	d := t.dequeuedAt.Sub(t.enqueuedAt)
	e.stages[stageAdmit].Observe(d)
	t.tr.Record("admit", t.enqueuedAt, d)
}

// gather drains up to batchMax−1 more queued tasks without blocking:
// whatever has piled up behind first is this worker's batch. Under
// light load the queue is empty and every query solves alone at
// minimum latency; under heavy load batches form by themselves — the
// deeper the backlog, the wider the blocks, the higher the throughput.
func (e *Engine) gather(first *task) []*task {
	batch := []*task{first}
	for len(batch) < e.batchMax {
		select {
		case t := <-e.queue:
			e.dequeued(t)
			batch = append(batch, t)
		default:
			return batch
		}
	}
	return batch
}

// splitGroup peels the head task's route group off the batch,
// preserving arrival order in both halves.
func splitGroup(batch []*task) (group, rest []*task) {
	head := batch[0]
	group = batch[:1]
	for _, t := range batch[1:] {
		if sameRoute(head, t) {
			group = append(group, t)
		} else {
			rest = append(rest, t)
		}
	}
	return group, rest
}

// sameRoute reports whether two tasks are answerable by the same
// factors and cacheable in the same namespace — the condition for
// solving them in one block. Pinned tasks must share the solver and
// the generation-stamped prefix; live tasks must share the source and
// attach generation (the version is re-read for the whole group at
// solve time, so resolve-time versions need not match).
func sameRoute(a, b *task) bool {
	if a.q.Measure == MeasureKatz || b.q.Measure == MeasureKatz {
		// Graph-backed tasks never join blocked solves (there is no
		// shared factor traversal to amortize); identical katz queries
		// already coalesce on the flight key.
		return false
	}
	if a.live != b.live {
		return false
	}
	if a.live {
		return a.src == b.src && a.liveGen == b.liveGen
	}
	return a.solver == b.solver && a.prefix == b.prefix && a.snap == b.snap
}

// serveGroup answers one route group, recording the batch stage (time
// from dequeue to the group's solve starting) for every member and one
// solve-stage observation for the group's dispatch.
func (e *Engine) serveGroup(group []*task, w *workerScratch) {
	s0 := time.Now()
	for _, t := range group {
		e.stages[stageBatch].Observe(s0.Sub(t.dequeuedAt))
		t.tr.Record("batch", t.dequeuedAt, s0.Sub(t.dequeuedAt))
		// The solve span stays open across the dispatch below; the
		// trace finish inside e.finish closes it, so its duration is
		// solve start → that task's answer publication.
		t.solveSpan = t.tr.StartSpanAt("solve", s0)
	}
	switch {
	case group[0].live:
		e.serveLiveGroup(group, w)
	case group[0].hist && group[0].solver == nil:
		e.serveHistGroup(group, w)
	default:
		e.solveGroup(group, group[0].solver, w)
	}
	e.stages[stageSolve].Observe(time.Since(s0))
}

// serveLiveGroup solves a live group inside one view of the source.
// The published version — and with it each task's cache-fill key — is
// re-read under the same lock the factors are solved under, so a
// publish racing the queue can never leave a stale answer filed under
// a fresh version's key: answer and key always come from the same
// locked read.
func (e *Engine) serveLiveGroup(group []*task, w *workerScratch) {
	src, gen := group[0].src, group[0].liveGen
	viewed := src.View(func(version uint64, s *lu.Solver) {
		prefix := livePrefix(gen, version)
		for _, t := range group {
			t.version = version
			t.snap = int(version)
			t.prefix = prefix
		}
		e.solveGroup(group, s, w)
	})
	if !viewed {
		// The source was detached (or replaced by an empty one) after
		// these queries were routed; fall back to the pinned store,
		// exactly as resolve would have.
		for _, t := range group {
			e.fallbackPinned(t, w)
		}
	}
}

// fallbackPinned rebinds a live-routed task to the latest pinned
// snapshot after its source vanished mid-flight. The flight stays
// registered under its live key (finish deregisters it); the answer is
// cached under the pinned prefix it was computed for.
func (e *Engine) fallbackPinned(t *task, w *workerScratch) {
	e.mu.RLock()
	snap := e.latest
	entry, ok := e.snaps[snap]
	e.mu.RUnlock()
	if snap < 0 {
		e.finish(t, answer{}, ErrNoSnapshots)
		return
	}
	if !ok {
		e.finish(t, answer{}, fmt.Errorf("%w: %d", ErrUnknownSnapshot, snap))
		return
	}
	t.live, t.src = false, nil
	t.snap, t.version = snap, 0
	t.solver = entry.s
	t.prefix = pinnedPrefix(snap, entry.gen)
	// Revalidate: the payload was canonicalized against the live
	// dimension, which need not match the pinned one.
	if err := t.canonicalize(entry.s.F.Dim()); err != nil {
		e.finish(t, answer{}, err)
		return
	}
	e.solveGroup([]*task{t}, entry.s, w)
}

// solveGroup answers a route group against its resolved solver: alone
// through the classic path (sparse-capable), together through one
// blocked traversal.
func (e *Engine) solveGroup(group []*task, solver *lu.Solver, w *workerScratch) {
	if len(group) == 1 {
		// A group of one takes the classic path — a routing decision
		// like panel-vs-scalar, so it is counted, not silent.
		e.singleGroups.Add(1)
		e.serveSingle(group[0], solver, w)
		return
	}
	e.serveBlock(group, solver, w)
}

// panelSet resolves the panel-vs-scalar routing decision for a blocked
// group of k right-hand sides: the packed panel set when the group
// should take the supernodal route, nil for the scalar SolveBlock. Live
// groups never pack (the source's factors are Bennett-updated in
// place, which would invalidate the packed value snapshot); pinned
// solvers pack lazily on the first group that asks — a one-time cost
// this accounting attributes to exactly one group — and solvers over
// DynamicFactors have no panel form. See Config.PanelMinWidth for the
// width heuristic; both answers are bit-identical either way.
func (e *Engine) panelSet(t *task, solver *lu.Solver, k int) *lu.PanelSet {
	minW := e.cfg.PanelMinWidth
	if minW < 0 || t.live {
		return nil
	}
	ps, built := solver.PanelsBuild()
	if built && ps != nil {
		e.panelPacks.Add(1)
		e.panelCols.Add(int64(ps.ColsCovered()))
		e.panelPackNS.Add(int64(ps.PackTime()))
	}
	if ps == nil {
		return nil
	}
	mw := ps.MeanWidth()
	if minW == 0 {
		if mw < 1.5 || mw*float64(k) < 8 {
			return nil
		}
	} else if mw < float64(minW) {
		return nil
	}
	return ps
}

// recordSparse accounts one reach-based solve in the stats.
func (e *Engine) recordSparse(sp measures.SparseScores) {
	e.sparseSolves.Add(1)
	e.reachRows.Add(int64(len(sp.Idx)))
	e.reachDen.Add(int64(sp.N))
}

// trySparse attempts one reach-based solve, keeping the stats honest:
// a hit is recorded as a sparse solve, a reach-cap abort as a fallback
// (the caller then performs — and records — a dense solve).
func (e *Engine) trySparse(enabled bool, solve func() (measures.SparseScores, bool)) (measures.SparseScores, bool) {
	if !enabled {
		return measures.SparseScores{}, false
	}
	sp, ok := solve()
	if !ok {
		e.sparseFallbacks.Add(1)
		return measures.SparseScores{}, false
	}
	e.recordSparse(sp)
	return sp, true
}

// serveSingle answers one validated query against a resolved solver.
// Single-source and seed-set measures go through the reach-based
// sparse solve first and fall back to the dense substitution when the
// reach probe exceeds the configured fraction of n; both paths produce
// bit-identical answers (the stress test holds every response against
// an independent cold dense solve).
func (e *Engine) serveSingle(t *task, solver *lu.Solver, w *workerScratch) {
	if t.q.Measure == MeasureKatz {
		e.serveKatz(t)
		return
	}
	me := measures.NewSolverEngine(t.damping, solver)
	frac := e.cfg.SparseReachFrac
	useSparse := frac >= 0
	sparsePath := false
	var ans answer
	switch t.q.Measure {
	case MeasureRWR:
		if sp, ok := e.trySparse(useSparse, func() (measures.SparseScores, bool) {
			return me.RWRSparse(t.q.Source, frac, &w.sws)
		}); ok {
			sparsePath = true
			ans.scores = sp.Dense(nil)
		} else {
			e.denseSolves.Add(1)
			ans.scores = me.RWRWith(t.q.Source, &w.ws)
		}
	case MeasurePPR:
		if sp, ok := e.trySparse(useSparse, func() (measures.SparseScores, bool) {
			return me.PPRSparse(t.seeds, frac, &w.sws)
		}); ok {
			sparsePath = true
			ans.scores = sp.Dense(nil)
		} else {
			e.denseSolves.Add(1)
			ans.scores = me.PPRWith(t.seeds, &w.ws)
		}
	case MeasurePageRank:
		// The right-hand side is dense (uniform restart): the reach is
		// all of n by construction, so this measure is always dense.
		e.denseSolves.Add(1)
		ans.scores = me.PageRankWith(&w.ws)
	case MeasureTopK:
		if sp, ok := e.trySparse(useSparse, func() (measures.SparseScores, bool) {
			return me.RWRSparse(t.q.Source, frac, &w.sws)
		}); ok {
			sparsePath = true
			// Top-k straight from the sparse support: the full score
			// vector is never materialized.
			ans.nodes, ans.scores = measures.TopKSparse(sp, t.q.K)
		} else {
			e.denseSolves.Add(1)
			w.buf = me.RWRInto(w.buf, t.q.Source, &w.ws)
			ans.nodes = measures.TopK(w.buf, t.q.K)
			ans.scores = make([]float64, len(ans.nodes))
			for i, v := range ans.nodes {
				ans.scores[i] = w.buf[v]
			}
		}
	}
	if sparsePath {
		t.solveSpan.SetString("path", "sparse")
	} else {
		t.solveSpan.SetString("path", "dense")
	}
	e.finish(t, ans, nil)
}

// serveBlock answers k ≥ 2 compatible queries through one blocked
// multi-RHS solve. Each right-hand side is built by the exact formula
// of its measure's single-query path (measures.RWRWith / PPRWith /
// PageRankWith), and SolveBlock executes each vector's floating-point
// operations in the single-solve order — so every answer is
// bit-identical to the unbatched path, and a cache entry filled by a
// block is indistinguishable from one filled by a lone solve.
func (e *Engine) serveBlock(group []*task, solver *lu.Solver, w *workerScratch) {
	n := solver.F.Dim()
	k := len(group)
	bs := w.headers(k)
	for r, t := range group {
		// Fresh vectors, not workspace: the solutions land in the cache
		// and must be owned by it.
		b := make([]float64, n)
		restart := 1 - t.damping
		switch t.q.Measure {
		case MeasureRWR, MeasureTopK:
			b[t.q.Source] = restart
		case MeasurePPR:
			wgt := restart / float64(len(t.seeds))
			for _, s := range t.seeds {
				b[s] += wgt
			}
		case MeasurePageRank:
			for i := range b {
				b[i] = restart / float64(n)
			}
		}
		bs[r] = b
	}
	panels := e.panelSet(group[0], solver, k) != nil
	for _, t := range group {
		t.solveSpan.SetString("path", "block")
		t.solveSpan.SetInt("block_width", int64(k))
		t.solveSpan.SetBool("panels", panels)
	}
	if panels {
		solver.SolveBlockPanels(bs, bs, &w.bws)
		e.panelSolves.Add(1)
		e.panelRHS.Add(int64(k))
	} else {
		solver.SolveBlock(bs, bs, &w.bws)
		e.scalarBlocks.Add(1)
	}
	e.blockSolves.Add(1)
	e.blockedRHS.Add(int64(k))
	e.denseSolves.Add(int64(k))
	for r, t := range group {
		x := bs[r]
		var ans answer
		switch t.q.Measure {
		case MeasureTopK:
			ans.nodes = measures.TopK(x, t.q.K)
			ans.scores = make([]float64, len(ans.nodes))
			for i, v := range ans.nodes {
				ans.scores[i] = x[v]
			}
		case MeasurePageRank:
			// The normalization PageRankWith applies, verbatim.
			if s := sparse.Sum(x); s > 0 {
				sparse.Scale(x, 1/s)
			}
			ans.scores = x
		default:
			ans.scores = x
		}
		e.finish(t, ans, nil)
	}
}
