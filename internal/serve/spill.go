package serve

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lu"
	"repro/internal/store"
)

// Disk-backed eviction: with Config.SpillDir set, a snapshot pushed out
// of the bounded pinned store is serialized to disk instead of being
// dropped, and a query addressing it transparently reloads and re-pins
// it (possibly spilling another cold snapshot in turn). The pinned
// store thereby becomes a memory cap over a disk-resident history
// rather than a hard retention horizon: hot snapshots answer at memory
// speed, cold ones at one codec read. The on-disk index survives
// restarts — New scans the directory — so spilled history written by a
// previous process stays queryable.
//
// Writes are asynchronous: eviction happens on the factor-publish path
// (a checkpoint pin under the stream's write lock), which must never
// wait on disk. handleEvicted only enqueues; a dedicated writer
// goroutine performs the codec writes, and until a snapshot's write
// completes, queries are served straight from the queued in-memory
// solver. Spill files are written atomically (temp + rename), so a
// crash mid-spill leaves either the old file or the new one, never a
// torn one — and a failed load is counted and degrades to
// ErrUnknownSnapshot, the exact behavior of an engine without a spill
// directory.

// defaultSpillKeep bounds the spill directory when Config.SpillKeep is
// unset: oldest (lowest-index) spill files are deleted past it.
const defaultSpillKeep = 4096

// spillEnabled reports whether disk-backed eviction is configured.
func (e *Engine) spillEnabled() bool { return e.cfg.SpillDir != "" }

func (e *Engine) spillPath(idx int) string {
	return filepath.Join(e.cfg.SpillDir, "spill-"+strconv.Itoa(idx)+".snap")
}

// initSpill prepares the spill state at engine construction: the
// directory, the on-disk index from any previous process, and the
// writer goroutine.
func (e *Engine) initSpill() {
	if err := os.MkdirAll(e.cfg.SpillDir, 0o755); err == nil {
		if entries, err := os.ReadDir(e.cfg.SpillDir); err == nil {
			for _, ent := range entries {
				name := ent.Name()
				if !strings.HasPrefix(name, "spill-") || !strings.HasSuffix(name, ".snap") {
					continue
				}
				idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "spill-"), ".snap"))
				if err != nil {
					continue
				}
				e.spilled[idx] = true
			}
		}
	}
	e.wg.Add(1)
	go e.spillWriter()
}

// handleEvicted runs after Pin releases the store lock: queue each
// evicted solver for the background spill (when enabled) and purge its
// cached answers. It never blocks on disk — Pin is called on the
// streaming engine's publish path.
func (e *Engine) handleEvicted(evicted []evictedSnap) {
	for _, ev := range evicted {
		if e.spillEnabled() {
			e.spillMu.Lock()
			e.spillPending[ev.idx] = ev.s
			e.spillQueue = append(e.spillQueue, ev)
			e.spillMu.Unlock()
			select {
			case e.spillKick <- struct{}{}:
			default:
			}
		}
		// All generations of the evicted index: memory hygiene — the
		// store lookup already 404s it — and it keeps CacheEntries an
		// honest gauge of answers that can still be served.
		e.cache.purgePrefix(strconv.Itoa(ev.idx) + "#")
	}
}

// spillWriter is the background disk writer. On engine close it drains
// whatever is queued so the disk-resident history is complete.
func (e *Engine) spillWriter() {
	defer e.wg.Done()
	for {
		select {
		case <-e.spillKick:
			e.drainSpills()
		case <-e.closed:
			e.drainSpills()
			return
		}
	}
}

// drainSpills writes queued evictions until the queue is empty.
func (e *Engine) drainSpills() {
	for {
		e.spillMu.Lock()
		if len(e.spillQueue) == 0 {
			e.spillMu.Unlock()
			return
		}
		ev := e.spillQueue[0]
		e.spillQueue = e.spillQueue[1:]
		e.spillMu.Unlock()

		err := e.writeSpill(ev.idx, ev.s)

		e.spillMu.Lock()
		// A re-pin (or a newer eviction) of the index may have
		// superseded this solver while the write ran; only the current
		// pending owner publishes the mark.
		if e.spillPending[ev.idx] == ev.s {
			delete(e.spillPending, ev.idx)
			if err == nil {
				e.spilled[ev.idx] = true
			}
		}
		e.spillMu.Unlock()
		if err != nil {
			e.spillErrors.Add(1)
			continue
		}
		e.spillWrites.Add(1)
		e.enforceSpillBound()
	}
}

// enforceSpillBound deletes the oldest (lowest-index) spill files past
// the retention bound, so version-keyed checkpoint history cannot grow
// the directory without limit. Deleting a file can retire history
// bases, so the delta-record log is re-trimmed afterwards.
func (e *Engine) enforceSpillBound() {
	keep := e.cfg.SpillKeep
	if keep <= 0 {
		keep = defaultSpillKeep
	}
	removed := false
	for {
		e.spillMu.Lock()
		if len(e.spilled) <= keep {
			e.spillMu.Unlock()
			break
		}
		oldest := -1
		for idx := range e.spilled {
			if oldest < 0 || idx < oldest {
				oldest = idx
			}
		}
		delete(e.spilled, oldest)
		e.spillMu.Unlock()
		os.Remove(e.spillPath(oldest))
		removed = true
	}
	if removed {
		e.trimHistory()
	}
}

// loadSpilled reloads a spilled snapshot: from the in-flight write
// queue when its disk write has not completed yet, from its file
// otherwise. ok is false when the snapshot was never spilled or its
// file cannot be read back (the caller then reports ErrUnknownSnapshot
// exactly as without spilling).
func (e *Engine) loadSpilled(idx int) (*lu.Solver, bool) {
	if !e.spillEnabled() {
		return nil, false
	}
	e.spillMu.Lock()
	if s := e.spillPending[idx]; s != nil {
		e.spillMu.Unlock()
		e.spillLoads.Add(1)
		return s, true
	}
	known := e.spilled[idx]
	e.spillMu.Unlock()
	if !known {
		return nil, false
	}
	f, err := os.Open(e.spillPath(idx))
	if err != nil {
		e.spillErrors.Add(1)
		return nil, false
	}
	defer f.Close()
	s, err := store.ReadSolver(f)
	if err != nil {
		e.spillErrors.Add(1)
		return nil, false
	}
	e.spillLoads.Add(1)
	return s, true
}

// writeSpill persists one solver atomically.
func (e *Engine) writeSpill(idx int, s *lu.Solver) error {
	tmp, err := os.CreateTemp(e.cfg.SpillDir, "spill-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := store.WriteSolver(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), e.spillPath(idx))
}
