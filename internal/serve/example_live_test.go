package serve_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serve"
)

// ExampleEngine_AttachLive wires a streaming maintenance engine into
// the serving layer: latest-state queries (Snapshot: -1) answer from
// the stream's current factors with zero copying, and every committed
// batch is immediately visible to the next query.
func ExampleEngine_AttachLive() {
	g0 := graph.New(5, false, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4},
	})
	stream, err := core.NewStream(core.StreamConfig{
		Algorithm: core.INC,
		Initial:   g0,
		Derive:    graph.RWRMatrix(0.85),
	})
	if err != nil {
		panic(err)
	}
	defer stream.Close()

	eng := serve.New(serve.Config{Damping: 0.85, Workers: 1})
	defer eng.Close()
	eng.AttachLive(stream)

	q := serve.Query{Snapshot: -1, Measure: serve.MeasureTopK, Source: 0, K: 2}
	resp, err := eng.Query(context.Background(), q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("version %d live=%v top-2 from node 0: %v\n", resp.Version, resp.Live, resp.Nodes)

	// One committed batch later, the same query sees the new graph.
	if _, err := stream.Apply([]graph.EdgeEvent{{From: 0, To: 4, Op: graph.EdgeInsert}}); err != nil {
		panic(err)
	}
	resp, err = eng.Query(context.Background(), q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("version %d live=%v top-2 from node 0: %v\n", resp.Version, resp.Live, resp.Nodes)

	// Output:
	// version 0 live=true top-2 from node 0: [1 0]
	// version 1 live=true top-2 from node 0: [0 1]
}
