package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// waitSpilled polls until the background writer has persisted at least
// want snapshots (spill writes are asynchronous — eviction happens on
// the publish path and must not wait on disk).
func waitSpilled(t *testing.T, eng *Engine, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().SnapshotsSpilled < want {
		if time.Now().After(deadline) {
			t.Fatalf("spill writer persisted %d snapshots, want %d", eng.Stats().SnapshotsSpilled, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSpillEvictReload pins more snapshots than the store bound with a
// spill directory configured and asserts that evicted snapshots stay
// queryable — answers bit-identical to an independent cold solve — and
// that the spill counters account for the traffic.
func TestSpillEvictReload(t *testing.T) {
	dir := t.TempDir()
	eng, ems, ref := pinnedEngine(t, Config{MaxSnapshots: 3, Workers: 2, SpillDir: dir})
	defer eng.Close()
	T := ems.Len()

	if got := len(eng.Snapshots()); got != 3 {
		t.Fatalf("retained %d snapshots, want 3", got)
	}
	waitSpilled(t, eng, int64(T-3))
	files, _ := filepath.Glob(filepath.Join(dir, "spill-*.snap"))
	if len(files) != T-3 {
		t.Fatalf("spilled %d files, want %d", len(files), T-3)
	}

	// Every snapshot — pinned or spilled — must answer, bit-identical
	// to the cold reference.
	for i := 0; i < T; i++ {
		q := Query{Snapshot: i, Measure: MeasureRWR, Source: 5}
		resp, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		_, want := coldAnswer(q, ref[i])
		if !reflect.DeepEqual(want, resp.Scores) {
			t.Errorf("snapshot %d: spilled answer differs from cold solve", i)
		}
	}
	st := eng.Stats()
	if st.SpillReloads == 0 {
		t.Error("no spill reloads recorded despite cold-snapshot queries")
	}
	if st.SnapshotsSpilled < int64(T-3) {
		t.Errorf("SnapshotsSpilled = %d, want >= %d", st.SnapshotsSpilled, T-3)
	}
	if st.SpillErrors != 0 {
		t.Errorf("SpillErrors = %d, want 0", st.SpillErrors)
	}

	// Reloading pins the snapshot again, so an immediate repeat query
	// is served from memory (and may now hit the cache).
	q := Query{Snapshot: 0, Measure: MeasureRWR, Source: 5}
	if _, err := eng.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("repeat query after reload did not hit the cache")
	}
}

// TestSpillSurvivesRestart pins history with one engine, closes it
// (draining the spill writer), and asserts a fresh engine over the same
// directory — the post-restart world — still serves the spilled
// snapshots bit-identically.
func TestSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	eng1, ems, ref := pinnedEngine(t, Config{MaxSnapshots: 3, Workers: 1, SpillDir: dir})
	T := ems.Len()
	eng1.Close() // drains pending spill writes

	eng2 := New(Config{MaxSnapshots: 3, Workers: 1, SpillDir: dir, Damping: testDamping})
	defer eng2.Close()
	for i := 0; i < T-3; i++ {
		q := Query{Snapshot: i, Measure: MeasureRWR, Source: 7}
		resp, err := eng2.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("snapshot %d after restart: %v", i, err)
		}
		_, want := coldAnswer(q, ref[i])
		if !reflect.DeepEqual(want, resp.Scores) {
			t.Errorf("snapshot %d after restart: answer differs from cold solve", i)
		}
	}
	if eng2.Stats().SpillReloads == 0 {
		t.Error("restarted engine served no queries from the spill index")
	}
}

// TestSpillRetentionBound pins more history than SpillKeep allows and
// asserts the oldest spill files are deleted.
func TestSpillRetentionBound(t *testing.T) {
	dir := t.TempDir()
	eng, ems, _ := pinnedEngine(t, Config{MaxSnapshots: 2, Workers: 1, SpillDir: dir, SpillKeep: 3})
	defer eng.Close()
	T := ems.Len()
	spillable := T - 2
	waitSpilled(t, eng, int64(spillable))
	deadline := time.Now().Add(5 * time.Second)
	for {
		files, _ := filepath.Glob(filepath.Join(dir, "spill-*.snap"))
		if len(files) <= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retention left %d spill files, want <= 3", len(files))
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The newest spilled snapshot must still load; the oldest must 404.
	if _, err := eng.Query(context.Background(), Query{Snapshot: spillable - 1, Measure: MeasureRWR, Source: 1}); err != nil {
		t.Errorf("newest spilled snapshot unreachable: %v", err)
	}
	if _, err := eng.Query(context.Background(), Query{Snapshot: 0, Measure: MeasureRWR, Source: 1}); !errors.Is(err, ErrUnknownSnapshot) {
		t.Errorf("retention-evicted snapshot: %v, want ErrUnknownSnapshot", err)
	}
}

// TestSpillDisabledKeepsDropBehavior pins more than the bound without
// a spill dir: evicted snapshots must 404 exactly as before.
func TestSpillDisabledKeepsDropBehavior(t *testing.T) {
	eng, _, _ := pinnedEngine(t, Config{MaxSnapshots: 3, Workers: 1})
	defer eng.Close()
	_, err := eng.Query(context.Background(), Query{Snapshot: 0, Measure: MeasureRWR, Source: 1})
	if !errors.Is(err, ErrUnknownSnapshot) {
		t.Fatalf("evicted snapshot without spill dir: %v, want ErrUnknownSnapshot", err)
	}
	if got := len(eng.Snapshots()); got != 3 {
		t.Fatalf("retained %d, want 3", got)
	}
}

// TestSpillCorruptFileDegrades corrupts a spill file and asserts the
// engine degrades to ErrUnknownSnapshot with the error counted, rather
// than serving garbage or failing the worker.
func TestSpillCorruptFileDegrades(t *testing.T) {
	dir := t.TempDir()
	eng, ems, _ := pinnedEngine(t, Config{MaxSnapshots: 3, Workers: 1, SpillDir: dir})
	defer eng.Close()
	// Wait for the writer to settle so the corruption cannot be
	// overwritten by an in-flight spill (and the pending queue is
	// empty, forcing the disk path).
	waitSpilled(t, eng, int64(ems.Len()-3))
	path := filepath.Join(dir, "spill-0.snap")
	if err := os.WriteFile(path, []byte("CLUS\x01 definitely not a solver"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Query(context.Background(), Query{Snapshot: 0, Measure: MeasureRWR, Source: 1})
	if !errors.Is(err, ErrUnknownSnapshot) {
		t.Fatalf("corrupt spill: %v, want ErrUnknownSnapshot", err)
	}
	if eng.Stats().SpillErrors == 0 {
		t.Error("corrupt spill not counted in SpillErrors")
	}
}
