package serve

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bennett"
	"repro/internal/lu"
	"repro/internal/metrics"
)

// Delta-compressed version history (Config.HistoryBase): instead of
// pinning a deep factor clone per retained version, the engine pins a
// full clone only at *bases* — every HistoryBase-th version plus every
// structural version — and keeps the Bennett rank-1 term sequence of
// every version in a bennett.HistoryLog. A query addressing a non-base
// version materializes its factors on demand: clone the nearest
// earlier base into a fresh container, replay the recorded terms
// (bit-identical to the clone the old checkpoint path would have
// pinned), and answer. Materialized solvers live in a byte-budgeted
// LRU (Config.HistoryBudgetBytes); concurrent queries for the same
// version share one replay through a per-version single-flight, on top
// of the ordinary query coalescing.
//
// Memory economy: a depth-D history at base spacing S retains D/S full
// clones plus D delta records (each a few sparse vectors), instead of
// D clones — resident bytes shrink by roughly S× while every version
// stays queryable. Replay depth (at most S−1) is the latency price,
// paid only on materialization misses; the history benchmark
// (internal/bench "history") measures both sides of the trade.

// defaultHistoryBudget bounds materialized-solver residency when
// Config.HistoryBudgetBytes is unset.
const defaultHistoryBudget = 64 << 20

// histResident is one materialized (non-base) solver held by the LRU.
type histResident struct {
	s     *lu.Solver
	bytes int64
}

// histFlight is the per-version single-flight for materialization:
// the first worker to need a version replays it, everyone else waits.
type histFlight struct {
	done chan struct{}
	s    *lu.Solver
	err  error
}

// histState is the engine's history machinery. The log has its own
// lock; mu guards residents/LRU/inflight; matMu serializes the one
// pooled MaterializeWorkspace (replays are coalesced per version, so
// materialization concurrency is rarely worth a workspace per worker).
//
// A materialized container is immutable once installed and is never
// recycled: tasks bind a resident's *lu.Solver at resolve time and may
// still be queued (or mid-solve) when the LRU evicts it, so reusing an
// evicted container's backing arrays for the next materialization
// would rewrite factors under a concurrent solve. Eviction only drops
// the reference; the GC reclaims the arrays once the last in-flight
// solve lets go.
type histState struct {
	log    *bennett.HistoryLog
	budget int64

	mu        sync.Mutex
	residents map[uint64]*histResident
	lruOrder  []uint64 // least recently used first
	bytes     int64
	inflight  map[uint64]*histFlight

	// onTrim, when set (OnHistoryTrim, before serving starts), is
	// called with each new retention floor so the owner can compact
	// persisted history in step with the in-memory log.
	onTrim func(below uint64)

	matMu sync.Mutex
	mw    bennett.MaterializeWorkspace

	requests, materializations, hits atomic.Int64
	evictions, basePins              atomic.Int64
	replayDepth                      metrics.Histogram
}

func newHistState(budget int64) *histState {
	if budget <= 0 {
		budget = defaultHistoryBudget
	}
	return &histState{
		log:       bennett.NewHistoryLog(),
		budget:    budget,
		residents: make(map[uint64]*histResident),
		inflight:  make(map[uint64]*histFlight),
	}
}

// historyEnabled reports whether base+delta retention is configured.
func (e *Engine) historyEnabled() bool { return e.cfg.HistoryBase > 0 }

// histPrefix is the cache-key namespace of a materialized history
// version. No generation stamp is needed: a version's materialized
// factors are immutable content (bit-identical on every replay), so a
// cached answer can never go stale.
func histPrefix(v uint64) string {
	return "hist#" + strconv.FormatUint(v, 10)
}

// HistoryHook returns the core.StreamConfig.OnHistory callback that
// feeds the engine's history: every record enters the log, and bases —
// every HistoryBase-th version plus every structural version (those
// start a new delta chain; there is nothing to replay across them) —
// are pinned as full clones into the ordinary snapshot store, which
// also makes them subject to its eviction/spill policy. This replaces
// CheckpointEvery when history is enabled.
func (e *Engine) HistoryHook() func(s *lu.Solver, rec bennett.VersionRecord) {
	base := uint64(e.cfg.HistoryBase)
	if base == 0 {
		base = 1
	}
	return func(s *lu.Solver, rec bennett.VersionRecord) {
		e.hist.log.Record(rec)
		if rec.Structural || rec.Version%base == 0 {
			e.hist.basePins.Add(1)
			e.Pin(int(rec.Version), s.Clone())
			// Pinning may have evicted (and with spill disabled,
			// dropped) the oldest base: records below the new retention
			// floor can never be replayed again, so the log sheds them
			// here instead of growing with the stream.
			e.trimHistory()
		}
	}
}

// OnHistoryTrim registers fn to run whenever the engine's history
// retention floor advances (see trimHistory): fn receives the oldest
// version that is still materializable, so a persistence layer can
// compact its history sidecar in step with the in-memory log. Call it
// once, before the stream starts publishing.
func (e *Engine) OnHistoryTrim(fn func(below uint64)) {
	e.hist.mu.Lock()
	e.hist.onTrim = fn
	e.hist.mu.Unlock()
}

// trimHistory drops log records below the oldest version whose full
// factors are still recoverable — no version below that floor can ever
// be materialized again (its chain has no reachable base), so its
// records are dead weight. Called whenever retention advances: base
// pins (HistoryHook) and spill-bound deletions (enforceSpillBound).
func (e *Engine) trimHistory() {
	if !e.historyEnabled() {
		return
	}
	floor, ok := e.historyFloor()
	if !ok {
		return
	}
	e.hist.log.TrimBelow(floor)
	e.hist.mu.Lock()
	fn := e.hist.onTrim
	e.hist.mu.Unlock()
	if fn != nil {
		fn(floor)
	}
}

// historyFloor returns the oldest retained base version: the smallest
// index pinned in RAM, pending spill, or spilled on disk. Versions
// below it are unanswerable.
func (e *Engine) historyFloor() (uint64, bool) {
	oldest := -1
	e.mu.RLock()
	for _, idx := range e.pinned {
		if idx >= 0 && (oldest < 0 || idx < oldest) {
			oldest = idx
		}
	}
	e.mu.RUnlock()
	if e.spillEnabled() {
		e.spillMu.Lock()
		for idx := range e.spilled {
			if idx >= 0 && (oldest < 0 || idx < oldest) {
				oldest = idx
			}
		}
		for idx := range e.spillPending {
			if idx >= 0 && (oldest < 0 || idx < oldest) {
				oldest = idx
			}
		}
		e.spillMu.Unlock()
	}
	if oldest < 0 {
		return 0, false
	}
	return uint64(oldest), true
}

// SeedHistory replays persisted history records into the log — the
// restart path: cludeserve loads the store's history file so versions
// before the recovered snapshot stay materializable (their bases are
// rescanned from the spill directory).
func (e *Engine) SeedHistory(recs []bennett.VersionRecord) {
	for _, rec := range recs {
		e.hist.log.Record(rec)
	}
}

// HistoryLog exposes the engine's log (the store layer reads it for
// stats; tests use it to inspect the window).
func (e *Engine) HistoryLog() *bennett.HistoryLog { return e.hist.log }

// retainedDim returns the dimension of any retained solver (all
// versions of one stream share it), for validating history-routed
// queries before their factors exist.
func (e *Engine) retainedDim() (int, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if entry, ok := e.snaps[e.latest]; ok {
		return entry.s.F.Dim(), true
	}
	for _, entry := range e.snaps {
		return entry.s.F.Dim(), true
	}
	return 0, false
}

// isRetainedBase reports whether version v's full factors are
// recoverable without replay: pinned in RAM, or spilled (pending or on
// disk) for transparent reload.
func (e *Engine) isRetainedBase(v uint64) bool {
	idx := int(v)
	e.mu.RLock()
	_, ok := e.snaps[idx]
	e.mu.RUnlock()
	if ok {
		return true
	}
	if !e.spillEnabled() {
		return false
	}
	e.spillMu.Lock()
	defer e.spillMu.Unlock()
	return e.spilled[idx] || e.spillPending[idx] != nil
}

// findHistoryBase walks the delta chain of version v back to the
// nearest retained base: the largest base b <= v whose records
// (b, v] are all present and non-structural. Reports false when no
// such base exists (log trimmed, chain crosses a rebuild with its
// base gone, or history empty).
func (e *Engine) findHistoryBase(v uint64) (uint64, bool) {
	lo, hi, ok := e.hist.log.Bounds()
	if !ok || v < lo || v > hi {
		return 0, false
	}
	for b := v; ; b-- {
		if b != v && e.isRetainedBase(b) {
			return b, true
		}
		rec, ok := e.hist.log.Get(b)
		if !ok || rec.Structural || b == lo {
			// Version b has no replayable delta from b−1 (or the log
			// ends here): only b itself could have served as the base,
			// and it is not retained.
			return 0, false
		}
	}
}

// resolveHistory tries to bind a snaps-miss query to the history
// route. Returns routed=false to let resolve fall through to the
// spill/unknown path. A resident version binds directly to its
// materialized solver; a materializable one leaves t.solver nil for
// the worker to fill (serveHistGroup), so replay CPU is spent inside
// the admitted worker pool, not on the caller's dispatch goroutine.
func (e *Engine) resolveHistory(t *task, snap int) (routed bool, err error) {
	if !e.historyEnabled() || snap < 0 {
		return false, nil
	}
	h := e.hist
	v := uint64(snap)
	h.mu.Lock()
	if r, ok := h.residents[v]; ok {
		h.touchLocked(v)
		h.mu.Unlock()
		h.requests.Add(1)
		h.hits.Add(1)
		t.solver, t.snap = r.s, snap
		if err := t.canonicalize(r.s.F.Dim()); err != nil {
			return true, err
		}
		t.keyed, t.hist = true, true
		t.prefix = histPrefix(v)
		t.flightKey = t.prefix + t.suffix
		return true, nil
	}
	h.mu.Unlock()
	if e.isRetainedBase(v) {
		// The version's own full factors are recoverable (spilled or
		// mid-spill): fall through to resolve's spill-reload path, which
		// reloads and re-pins them directly — cheaper than a clone +
		// replay from an earlier base, and it restores RAM residency.
		return false, nil
	}
	if _, ok := e.findHistoryBase(v); !ok {
		return false, nil
	}
	n, ok := e.retainedDim()
	if !ok {
		return false, nil
	}
	h.requests.Add(1)
	t.snap = snap
	if err := t.canonicalize(n); err != nil {
		return true, err
	}
	t.keyed, t.hist = true, true
	t.prefix = histPrefix(v)
	t.flightKey = t.prefix + t.suffix
	return true, nil
}

// serveHistGroup materializes (or joins the materialization of) the
// group's version, then solves the group against the materialized
// solver like any pinned group.
func (e *Engine) serveHistGroup(group []*task, w *workerScratch) {
	v := uint64(group[0].snap)
	m0 := time.Now()
	sv, err := e.historySolver(v)
	if group[0].tr != nil {
		// Materialization span with the attributes that explain a slow
		// history query: which base the chain replayed from and how
		// deep. An LRU hit records a ~zero-duration span with the same
		// attributes — the trace then shows the replay was amortized.
		md := time.Since(m0)
		b, hasBase := e.findHistoryBase(v)
		for _, t := range group {
			sp := t.tr.Record("materialize", m0, md)
			sp.SetInt("version", int64(v))
			if hasBase {
				sp.SetInt("base_version", int64(b))
				sp.SetInt("replay_depth", int64(v-b))
			}
		}
	}
	if err != nil {
		for _, t := range group {
			e.finish(t, answer{}, err)
		}
		return
	}
	for _, t := range group {
		t.solver = sv
	}
	e.solveGroup(group, sv, w)
}

// historySolver returns the materialized solver for version v: LRU
// hit, join of an in-flight replay, or a fresh materialization
// installed into the LRU.
func (e *Engine) historySolver(v uint64) (s *lu.Solver, err error) {
	h := e.hist
	h.mu.Lock()
	if r, ok := h.residents[v]; ok {
		h.touchLocked(v)
		h.mu.Unlock()
		h.hits.Add(1)
		return r.s, nil
	}
	if fl, ok := h.inflight[v]; ok {
		h.mu.Unlock()
		<-fl.done
		return fl.s, fl.err
	}
	fl := &histFlight{done: make(chan struct{})}
	h.inflight[v] = fl
	h.mu.Unlock()

	// The flight entry is removed and done closed on every exit —
	// including a panic inside the replay — so a failed materialization
	// can never wedge the version's single-flight: waiters always get
	// an answer or an error, and the next query retries fresh.
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("serve: materializing version %d: panic: %v", v, r)
		}
		h.mu.Lock()
		delete(h.inflight, v)
		if err == nil && s != nil {
			h.installLocked(v, s)
		}
		h.mu.Unlock()
		fl.s, fl.err = s, err
		close(fl.done)
	}()
	s, err = e.materialize(v)
	return s, err
}

// materialize replays version v from its nearest retained base into a
// fresh container. The base is read from the snapshot store, or
// transparently reloaded from spill and re-pinned — the spill+history
// interaction contract: evicting a base never strands its dependent
// delta chain while the spill file exists. The container is always
// newly allocated (never an evicted resident's — see histState): once
// returned it is immutable, so solvers bound to it stay valid for as
// long as any task holds them.
func (e *Engine) materialize(v uint64) (*lu.Solver, error) {
	b, ok := e.findHistoryBase(v)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSnapshot, int(v))
	}
	base, err := e.historyBaseSolver(int(b))
	if err != nil {
		return nil, err
	}
	h := e.hist
	f, merr := func() (lu.Factors, error) {
		h.matMu.Lock()
		// Unlock via defer: a panicking replay (surfaced to the query as
		// an error by historySolver) must not leave the workspace locked.
		defer h.matMu.Unlock()
		return h.mw.MaterializeInto(nil, base.F, h.log, b, v, nil)
	}()
	if merr != nil {
		return nil, fmt.Errorf("serve: materializing version %d from base %d: %w", v, b, merr)
	}
	h.materializations.Add(1)
	// The depth histogram reuses the duration-typed histogram with one
	// second per replayed version, so the exposed le bounds read as
	// (power-of-two) depths.
	h.replayDepth.Observe(time.Duration(v-b) * time.Second)
	return &lu.Solver{F: f, O: base.O}, nil
}

// historyBaseSolver fetches a base's pinned solver, reloading and
// re-pinning it from spill when evicted.
func (e *Engine) historyBaseSolver(idx int) (*lu.Solver, error) {
	e.mu.RLock()
	entry, ok := e.snaps[idx]
	e.mu.RUnlock()
	if ok {
		return entry.s, nil
	}
	sv, loaded := e.loadSpilled(idx)
	if !loaded {
		return nil, fmt.Errorf("%w: history base %d", ErrUnknownSnapshot, idx)
	}
	e.Pin(idx, sv)
	return sv, nil
}

// touchLocked promotes v to most recently used. Callers hold h.mu.
func (h *histState) touchLocked(v uint64) {
	for i, lv := range h.lruOrder {
		if lv == v {
			copy(h.lruOrder[i:], h.lruOrder[i+1:])
			h.lruOrder[len(h.lruOrder)-1] = v
			return
		}
	}
}

// installLocked adds a materialized solver to the LRU and evicts past
// the byte budget (never the entry just installed: one oversized
// resident is better than thrashing). Eviction only drops the LRU's
// reference — the container is NOT recycled, because tasks that bound
// the resident's solver at resolve time may still be queued or solving
// against it; the GC reclaims it once they finish. Callers hold h.mu.
func (h *histState) installLocked(v uint64, s *lu.Solver) {
	if _, ok := h.residents[v]; ok {
		return // lost a (theoretical) race; keep the first
	}
	bytes := lu.MemBytes(s.F)
	h.residents[v] = &histResident{s: s, bytes: bytes}
	h.lruOrder = append(h.lruOrder, v)
	h.bytes += bytes
	for h.bytes > h.budget && len(h.lruOrder) > 1 {
		old := h.lruOrder[0]
		if old == v {
			break
		}
		h.lruOrder = h.lruOrder[1:]
		r := h.residents[old]
		delete(h.residents, old)
		h.bytes -= r.bytes
		h.evictions.Add(1)
	}
}

// VersionInfo describes one answerable history version for
// /v1/snapshots: "resident" versions have factors in RAM now (pinned
// base or LRU-materialized), "materializable" ones are answerable on
// demand (delta replay, or spill reload for an evicted base).
type VersionInfo struct {
	Version uint64 `json:"version"`
	State   string `json:"state"`
}

// HistoryVersions lists every version the history layer can currently
// answer, ascending. Nil when history is disabled or empty.
func (e *Engine) HistoryVersions() []VersionInfo {
	if !e.historyEnabled() {
		return nil
	}
	h := e.hist
	lo, hi, ok := h.log.Bounds()
	if !ok {
		return nil
	}
	out := make([]VersionInfo, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		e.mu.RLock()
		_, pinned := e.snaps[int(v)]
		e.mu.RUnlock()
		h.mu.Lock()
		_, resident := h.residents[v]
		h.mu.Unlock()
		switch {
		case pinned || resident:
			out = append(out, VersionInfo{Version: v, State: "resident"})
		case e.isRetainedBase(v):
			out = append(out, VersionInfo{Version: v, State: "materializable"})
		default:
			if _, ok := e.findHistoryBase(v); ok {
				out = append(out, VersionInfo{Version: v, State: "materializable"})
			}
		}
	}
	return out
}

// historyStats fills the history_* block of Stats.
func (e *Engine) historyStats(st *Stats) {
	h := e.hist
	st.HistoryEnabled = e.historyEnabled()
	st.HistoryBase = e.cfg.HistoryBase
	st.HistoryVersions = h.log.Len()
	st.HistoryLogBytes = h.log.Bytes()
	st.HistoryBudgetBytes = h.budget
	h.mu.Lock()
	st.HistoryResidents = len(h.residents)
	st.HistoryResidentBytes = h.bytes
	h.mu.Unlock()
	st.HistoryBasePins = h.basePins.Load()
	st.HistoryRequests = h.requests.Load()
	st.HistoryMaterializations = h.materializations.Load()
	st.HistoryHits = h.hits.Load()
	st.HistoryEvictions = h.evictions.Load()
	if m := st.HistoryMaterializations; m > 0 {
		st.HistoryDedupRatio = float64(st.HistoryRequests) / float64(m)
	}
}
