package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/measures"
)

// egsSource serves an EGS's snapshots as a GraphSource: index i is
// snapshot i, negative resolves to the final snapshot.
type egsSource struct{ egs *graph.EGS }

func (s egsSource) GraphAt(i int) (*graph.Graph, int, bool) {
	if i < 0 {
		i = s.egs.Len() - 1
	}
	if i >= s.egs.Len() {
		return nil, 0, false
	}
	return s.egs.Snapshots[i], i, true
}

func katzEngine(t *testing.T) (*Engine, *graph.EGS) {
	t.Helper()
	egs, err := gen.WikiSim(gen.WikiConfig{
		N: 80, T: 4, InitialEdges: 220, FinalEdges: 250,
		ChurnFrac: 0.25, EventRate: 0.05, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Config{Workers: 2, Damping: testDamping})
	eng.AttachGraphs(egsSource{egs})
	return eng, egs
}

// TestKatzThroughEngine holds the katz route's answers bit-for-bit
// against direct measures.Katz calls, across snapshots, for both the
// defaulted and an explicit α — and checks the default and its
// explicit spelling land on the same cache entry.
func TestKatzThroughEngine(t *testing.T) {
	eng, egs := katzEngine(t)
	defer eng.Close()
	ctx := context.Background()

	for i, g := range egs.Snapshots {
		alpha := measures.DefaultKatzAlpha(g)
		want, err := measures.Katz(g, alpha)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := eng.Query(ctx, Query{Snapshot: i, Measure: MeasureKatz})
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if resp.Snapshot != i || resp.Damping != alpha {
			t.Fatalf("snapshot %d: got (snap=%d, damping=%v), want (%d, %v)",
				i, resp.Snapshot, resp.Damping, i, alpha)
		}
		if len(resp.Scores) != len(want) {
			t.Fatalf("snapshot %d: %d scores, want %d", i, len(resp.Scores), len(want))
		}
		for v := range want {
			if resp.Scores[v] != want[v] {
				t.Fatalf("snapshot %d node %d: %v != %v", i, v, resp.Scores[v], want[v])
			}
		}
	}

	// Negative snapshot resolves to the latest retained graph.
	last := egs.Len() - 1
	resp, err := eng.Query(ctx, Query{Snapshot: -1, Measure: MeasureKatz})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Snapshot != last {
		t.Fatalf("latest katz resolved to snapshot %d, want %d", resp.Snapshot, last)
	}
	if !resp.CacheHit {
		// Snapshot -1 and the explicit last index share "katz#<last>":
		// the loop above already filled it.
		t.Fatal("latest-katz after explicit-last-katz was not a cache hit")
	}

	// An explicitly spelled default α is the same cache key as the
	// defaulted query.
	alpha := measures.DefaultKatzAlpha(egs.Snapshots[0])
	resp, err = eng.Query(ctx, Query{Snapshot: 0, Measure: MeasureKatz, Damping: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("explicit default-α katz missed the defaulted query's cache entry")
	}

	// A distinct α is a distinct factorization and a distinct entry.
	resp, err = eng.Query(ctx, Query{Snapshot: 0, Measure: MeasureKatz, Damping: alpha / 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("distinct-α katz incorrectly hit the cache")
	}

	st := eng.Stats()
	if st.KatzSolves == 0 {
		t.Fatal("KatzSolves did not count")
	}
	if got := st.Admitted + st.Coalesced + st.Shed; got != st.Queries {
		t.Fatalf("admission invariant violated with katz in the mix: %d+%d+%d != %d",
			st.Admitted, st.Coalesced, st.Shed, st.Queries)
	}
}

// TestKatzErrors covers the route's failure modes: no attached source,
// unknown snapshot, α outside (0,1), and α too large for the graph.
func TestKatzErrors(t *testing.T) {
	ctx := context.Background()

	bare := New(Config{Workers: 1, Damping: testDamping})
	defer bare.Close()
	if _, err := bare.Query(ctx, Query{Snapshot: 0, Measure: MeasureKatz}); !errors.Is(err, ErrNoGraphSource) {
		t.Fatalf("detached engine: got %v, want ErrNoGraphSource", err)
	}

	eng, egs := katzEngine(t)
	defer eng.Close()
	if _, err := eng.Query(ctx, Query{Snapshot: egs.Len(), Measure: MeasureKatz}); !errors.Is(err, ErrUnknownSnapshot) {
		t.Fatalf("out-of-range snapshot: got %v, want ErrUnknownSnapshot", err)
	}
	if _, err := eng.Query(ctx, Query{Snapshot: 0, Measure: MeasureKatz, Damping: 1.5}); err == nil {
		t.Fatal("α ≥ 1 accepted")
	}
	if _, err := eng.Query(ctx, Query{Snapshot: 0, Measure: MeasureKatz, Damping: -0.1}); err == nil {
		t.Fatal("α < 0 accepted")
	}
	// 0.999 is inside (0,1) but violates α·maxInDegree < 1 on any graph
	// with an in-degree ≥ 2 node: the solve itself must fail, and the
	// failure must surface through the flight.
	if _, err := eng.Query(ctx, Query{Snapshot: 0, Measure: MeasureKatz, Damping: 0.999}); err == nil {
		t.Fatal("divergent α accepted by the solve")
	}

	// After detaching, the route fails again.
	eng.AttachGraphs(nil)
	if _, err := eng.Query(ctx, Query{Snapshot: 0, Measure: MeasureKatz}); !errors.Is(err, ErrNoGraphSource) {
		t.Fatalf("after detach: got %v, want ErrNoGraphSource", err)
	}
}

// TestKatzCoalesces fires identical concurrent katz queries at a
// 1-worker engine and requires one factorization to serve them all.
func TestKatzCoalesces(t *testing.T) {
	eng, egs := katzEngine(t)
	defer eng.Close()
	want, err := measures.Katz(egs.Snapshots[1], measures.DefaultKatzAlpha(egs.Snapshots[1]))
	if err != nil {
		t.Fatal(err)
	}

	const G = 16
	var wg sync.WaitGroup
	errs := make([]error, G)
	resps := make([]*Response, G)
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = eng.Query(context.Background(), Query{Snapshot: 1, Measure: MeasureKatz})
		}(i)
	}
	wg.Wait()
	for i := 0; i < G; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for v := range want {
			if resps[i].Scores[v] != want[v] {
				t.Fatalf("goroutine %d node %d: wrong score", i, v)
			}
		}
	}
	st := eng.Stats()
	if st.KatzSolves != 1 {
		t.Fatalf("%d katz factorizations for %d identical queries, want 1", st.KatzSolves, G)
	}
	if st.CacheMisses != 1 {
		t.Fatalf("%d cache misses, want 1", st.CacheMisses)
	}
	if got := st.Admitted + st.Coalesced + st.Shed; got != st.Queries {
		t.Fatalf("admission invariant violated: %d+%d+%d != %d",
			st.Admitted, st.Coalesced, st.Shed, st.Queries)
	}
}

// TestStageTracing drives queries through every pipeline stage and
// checks the Stats exposure: resolve counts every query, admit/batch/
// solve count the cold path, and coalesce counts followers.
func TestStageTracing(t *testing.T) {
	eng, _, _ := pinnedEngine(t, Config{Workers: 2})
	defer eng.Close()
	ctx := context.Background()

	const N = 20
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Identical queries: one leads, the rest coalesce or hit.
			if _, err := eng.Query(ctx, Query{Snapshot: 0, Measure: MeasureRWR, Source: 3}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if _, err := eng.Query(ctx, Query{Snapshot: 1, Measure: MeasurePageRank}); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	stages := st.QueryStages
	if stages == nil {
		t.Fatal("Stats.QueryStages is nil")
	}
	for _, name := range stageNames {
		if _, ok := stages[name]; !ok {
			t.Fatalf("stage %q missing from Stats.QueryStages", name)
		}
	}
	if got := stages["resolve"].Count; got != st.Queries {
		t.Fatalf("resolve observed %d, want one per query (%d)", got, st.Queries)
	}
	// Two distinct flights reached the workers: N coalesced-or-cached
	// queries share one, the pagerank is the other. Admit and batch see
	// each dequeued task once; solve sees each dispatched group once.
	if stages["admit"].Count < 2 || stages["admit"].Count != stages["batch"].Count {
		t.Fatalf("admit/batch counts inconsistent: admit=%d batch=%d",
			stages["admit"].Count, stages["batch"].Count)
	}
	if got := stages["solve"].Count; got < 2 || got > stages["admit"].Count {
		t.Fatalf("solve observed %d dispatches, want within [2, %d]", got, stages["admit"].Count)
	}
	if stages["coalesce"].Count != st.Coalesced {
		t.Fatalf("coalesce observed %d, want one per coalesced query (%d)",
			stages["coalesce"].Count, st.Coalesced)
	}
	if st.LatencyCount != st.Queries-st.Rejected {
		t.Fatalf("latency observed %d, want one per answered query (%d)",
			st.LatencyCount, st.Queries-st.Rejected)
	}
}
