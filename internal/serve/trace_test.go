package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/trace"
)

// Trace-context propagation tests: a coalesced follower's trace links
// to the leader's span instead of duplicating the solve, a shed query
// still yields a retained (error-tagged) trace, cold traces carry the
// full pipeline stage set, and the warm path stays allocation-free
// with tracing on.

// tracedEngine builds a pinned engine with a retain-everything tracer.
func tracedEngine(t *testing.T, cfg Config) (*Engine, *trace.Tracer) {
	t.Helper()
	tc := trace.New(trace.Config{Buffer: 1024, Sample: 1})
	cfg.Tracer = tc
	eng, _, _ := pinnedEngine(t, cfg)
	return eng, tc
}

func findTrace(tds []*trace.TraceData, pred func(*trace.TraceData) bool) *trace.TraceData {
	for _, td := range tds {
		if pred(td) {
			return td
		}
	}
	return nil
}

func hasSpan(td *trace.TraceData, name string) bool {
	for _, sp := range td.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// TestTraceCoalescedFollowerLinksLeader wedges the single worker on
// the leader's solve, lets an identical query coalesce onto its
// flight, and asserts the follower's retained trace records a link to
// the leader's root span — and a coalesce wait instead of solve spans.
func TestTraceCoalescedFollowerLinksLeader(t *testing.T) {
	eng, tc := tracedEngine(t, Config{Workers: 1, QueueDepth: 1, BatchMax: 1, CacheSize: 8})
	defer eng.Close()
	_, _, ref := pinnedEngine(t, Config{Workers: 1})
	g := newGatedLive(ref[0].Clone(), 2) // call 1: leader resolve; call 2: worker solve
	eng.AttachLive(g)

	q := Query{Snapshot: -1, Measure: MeasureRWR, Source: 3}
	leaderDone := make(chan error, 1)
	go func() {
		_, err := eng.Query(context.Background(), q)
		leaderDone <- err
	}()
	<-g.entered // worker wedged mid-solve; leader's flight is registered

	followerDone := make(chan error, 1)
	go func() {
		_, err := eng.Query(context.Background(), q)
		followerDone <- err
	}()
	waitFor(t, func() bool { return eng.Stats().Coalesced == 1 }, "follower to coalesce")

	close(g.release)
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	if err := <-followerDone; err != nil {
		t.Fatal(err)
	}

	all := tc.Recent(trace.Filter{})
	follower := findTrace(all, func(td *trace.TraceData) bool { return td.Link != nil })
	if follower == nil {
		t.Fatalf("no retained trace carries a link; got %d traces", len(all))
	}
	if follower.Attrs["coalesced"] != true {
		t.Fatalf("follower trace not marked coalesced: %+v", follower.Attrs)
	}
	if !hasSpan(follower, "coalesce") {
		t.Fatalf("follower trace has no coalesce span: %+v", follower.Spans)
	}
	if hasSpan(follower, "solve") {
		t.Fatalf("follower trace duplicated the solve span: %+v", follower.Spans)
	}
	leader, ok := tc.Get(follower.Link.TraceID)
	if !ok {
		t.Fatalf("link points at trace %s, which is not retained", follower.Link.TraceID)
	}
	if leader.SpanID != follower.Link.SpanID {
		t.Fatalf("link span %s is not the leader's root span %s", follower.Link.SpanID, leader.SpanID)
	}
	if !hasSpan(leader, "solve") {
		t.Fatalf("leader trace carries no solve span: %+v", leader.Spans)
	}
}

// TestTraceShedQueryRetained wedges the worker, fills the one-slot
// queue, and asserts the shed query's trace is retained with the
// error tag even though tracing runs at sample 0 — tail-based
// retention must keep every failure.
func TestTraceShedQueryRetained(t *testing.T) {
	tc := trace.New(trace.Config{Buffer: 64, Sample: 0})
	eng, _, ref := pinnedEngine(t, Config{
		Workers: 1, QueueDepth: 1, BatchMax: 1, CacheSize: 8, Tracer: tc,
	})
	defer eng.Close()
	g := newGatedLive(ref[0].Clone(), 2)
	eng.AttachLive(g)

	wedged := make(chan error, 1)
	go func() {
		_, err := eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasureRWR, Source: 3})
		wedged <- err
	}()
	<-g.entered
	queued := make(chan error, 1)
	go func() {
		_, err := eng.Query(context.Background(), Query{Snapshot: 0, Measure: MeasureRWR, Source: 5})
		queued <- err
	}()
	waitFor(t, func() bool { return eng.Stats().Admitted == 2 }, "queued query admission")

	_, err := eng.Query(context.Background(), Query{Snapshot: 0, Measure: MeasureRWR, Source: 20})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("probe: got %v, want ErrOverloaded", err)
	}

	// The shed trace must already be in the ring — retention happens
	// before the caller gets its error back.
	shed := findTrace(tc.Recent(trace.Filter{ErrorsOnly: true}), func(td *trace.TraceData) bool {
		return td.Attrs["shed"] == true
	})
	if shed == nil {
		t.Fatal("shed query left no retained error trace")
	}
	if shed.Reason != trace.ReasonError {
		t.Fatalf("shed trace reason = %q, want %q", shed.Reason, trace.ReasonError)
	}
	if shed.Error != ErrOverloaded.Error() {
		t.Fatalf("shed trace error = %q, want %q", shed.Error, ErrOverloaded.Error())
	}
	if !hasSpan(shed, "resolve") {
		t.Fatalf("shed trace lost its resolve span: %+v", shed.Spans)
	}

	close(g.release)
	if err := <-wedged; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
}

// TestTraceStageSet asserts a cold query's trace carries the full
// pipeline stage set and a cache hit's trace records the hit without
// fabricating pipeline spans it never went through.
func TestTraceStageSet(t *testing.T) {
	eng, tc := tracedEngine(t, Config{Workers: 2, CacheSize: 64})
	defer eng.Close()

	q := Query{Snapshot: 0, Measure: MeasureRWR, Source: 7}
	if _, err := eng.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	cold := tc.Recent(trace.Filter{Limit: 1})[0]
	for _, want := range []string{"resolve", "admit", "batch", "solve"} {
		if !hasSpan(cold, want) {
			t.Fatalf("cold trace missing %q span: %+v", want, cold.Spans)
		}
	}
	if cold.Attrs["measure"] != MeasureRWR || cold.Attrs["cache_hit"] == true {
		t.Fatalf("cold trace attrs: %+v", cold.Attrs)
	}

	resp, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("second identical query missed the cache")
	}
	hit := tc.Recent(trace.Filter{Limit: 1})[0]
	if hit.TraceID == cold.TraceID {
		t.Fatal("cache hit did not produce its own trace")
	}
	if hit.Attrs["cache_hit"] != true {
		t.Fatalf("hit trace attrs: %+v", hit.Attrs)
	}
	if hasSpan(hit, "solve") || hasSpan(hit, "admit") {
		t.Fatalf("hit trace fabricated pipeline spans: %+v", hit.Spans)
	}
	if !hasSpan(hit, "resolve") {
		t.Fatalf("hit trace lost its resolve span: %+v", hit.Spans)
	}
}

// TestTraceExemplarResolvesToRetainedTrace drives one slow-tagged
// query and asserts the latency histogram's exemplar points at a
// trace the ring can actually serve.
func TestTraceExemplarResolvesToRetainedTrace(t *testing.T) {
	eng, tc := tracedEngine(t, Config{Workers: 2, CacheSize: 64})
	defer eng.Close()
	if _, err := eng.Query(context.Background(), Query{Snapshot: 0, Measure: MeasurePageRank}); err != nil {
		t.Fatal(err)
	}
	exs := eng.LatencyExemplars()
	if len(exs) == 0 {
		t.Fatal("no latency exemplar after a retained query")
	}
	for _, ex := range exs {
		if _, ok := tc.Get(ex.TraceID); !ok {
			t.Fatalf("exemplar trace %s not in the retention ring", ex.TraceID)
		}
		if ex.BucketLEs <= 0 || ex.ValueUS <= 0 {
			t.Fatalf("exemplar fields: %+v", ex)
		}
	}
	if st := eng.Stats(); len(st.LatencyExemplars) == 0 {
		t.Fatal("Stats does not expose the exemplars")
	}
}

// TestTracingWarmPathZeroAlloc is the serve-level half of the
// acceptance criterion: with tracing on, a warm (cache-hit,
// non-retained) query must allocate exactly what it allocates with
// tracing off — pooled spans, no per-query heap traffic.
func TestTracingWarmPathZeroAlloc(t *testing.T) {
	measure := func(tc *trace.Tracer) float64 {
		eng, _, _ := pinnedEngine(t, Config{Workers: 1, CacheSize: 64, Tracer: tc})
		defer eng.Close()
		q := Query{Snapshot: 0, Measure: MeasureRWR, Source: 3}
		ctx := context.Background()
		if _, err := eng.Query(ctx, q); err != nil { // cold fill + pool warmup
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := eng.Query(ctx, q); err != nil {
				t.Fatal(err)
			}
		})
	}
	off := measure(nil)
	on := measure(trace.New(trace.Config{Buffer: 64, Slow: time.Hour, Sample: 0}))
	if on != off {
		t.Fatalf("tracing-on warm path allocates %v/query, tracing-off %v: tracing must add zero", on, off)
	}
}
