package serve

import (
	"repro/internal/lu"
)

// This file is the hot-publish half of the serving layer: instead of
// pinning per-snapshot deep clones (Pin + core.Options.RetainFactors),
// an Engine can attach a *live source* — a streaming maintenance engine
// (core.Stream) that updates one set of factors in place and exposes
// them through a read-locked view. Queries for the latest state then
// solve directly on the maintainer's current factors:
//
//	core.Stream ──Apply──▶ factors (in place) ──View──▶ serve workers
//	              write lock                   read lock
//
// No factor bytes are copied on the publish path — publishing a version
// is a counter bump under the stream's write lock. The price is
// coupling: a query holding the view blocks the next batch commit
// (backpressure), and a committing batch briefly blocks latest-state
// queries. Snapshot-addressed queries are unaffected: they go to the
// pinned store, which a checkpointing publish callback can still feed
// at whatever cadence is worth the clone cost (see docs/STREAMING.md).

// LiveSource is the read side of a streaming factor maintainer. View
// runs fn with the latest published version and its solver while
// holding the source's read lock, guaranteeing the factors do not
// advance during fn; it returns false (fn not called) when the source
// has nothing published. core.Stream implements this.
type LiveSource interface {
	View(fn func(version uint64, s *lu.Solver)) bool
}

// AttachLive routes latest-state queries (Snapshot < 0) to src. Attach
// before serving traffic, or mid-flight: queries observe the source on
// their next dispatch. Attaching nil detaches, restoring pure
// pinned-store serving. Every attach bumps the live cache-key
// generation, so a replacement source — whose version counter starts
// over — can never be served answers cached from its predecessor.
func (e *Engine) AttachLive(src LiveSource) {
	e.mu.Lock()
	e.live = src
	e.liveGen++
	e.mu.Unlock()
}

// liveSource reads the attached source and its attach generation. The
// lock is released before the caller touches the source (see the field
// comment on lock ordering).
func (e *Engine) liveSource() (LiveSource, uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.live, e.liveGen
}

// CheckpointEvery returns a publish callback (the core.StreamConfig
// OnPublish shape) that pins a deep clone of every k-th version into
// the snapshot store, keyed by version. This is the deliberate,
// amortized exception to the zero-copy publish path: the live head
// stays copy-free while every k-th state becomes queryable history,
// subject to the store's usual bound and eviction. k = 0 is treated
// as 1 (checkpoint every version — the old RetainFactors behavior).
func (e *Engine) CheckpointEvery(k uint64) func(version uint64, s *lu.Solver) {
	if k == 0 {
		k = 1
	}
	return func(version uint64, s *lu.Solver) {
		if version%k == 0 {
			e.Pin(int(version), s.Clone())
		}
	}
}
