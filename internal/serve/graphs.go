package serve

import (
	"fmt"
	"strconv"

	"repro/internal/graph"
	"repro/internal/measures"
)

// Graph-backed measures: Katz centrality solves (I − α·Wᵀ)x = α·Wᵀ·1
// on the *raw adjacency* kernel, not the RWR matrix the pinned factors
// decompose, so it cannot reuse them — each distinct (snapshot, α)
// pair is one dedicated factorization. What it does reuse is the whole
// serving pipeline: katz queries are routed, admission-controlled,
// single-flight coalesced and result-cached exactly like the
// solver-backed measures, which is what makes a per-query
// factorization servable at all (identical concurrent katz queries
// share one factorization; repeats are cache hits).

// GraphSource provides the graph behind a snapshot for graph-backed
// measures. Implementations must return immutable graphs: the engine
// caches and shares answers per resolved snapshot id.
type GraphSource interface {
	// GraphAt materializes the graph for snapshot index i; i < 0 means
	// the latest state (the live version in streaming deployments). It
	// returns the resolved snapshot id — the value answers are keyed
	// and reported under — and ok=false when no graph is retained for
	// i.
	GraphAt(i int) (g *graph.Graph, snap int, ok bool)
}

// AttachGraphs routes graph-backed measures (katz) to src, the graph
// twin of AttachLive. Attaching nil detaches, making those measures
// fail with ErrNoGraphSource again.
func (e *Engine) AttachGraphs(src GraphSource) {
	e.mu.Lock()
	e.graphs = src
	e.mu.Unlock()
}

// resolveKatz routes a katz query: fetch the snapshot's graph, resolve
// the attenuation α (Query.Damping, or the 0.85/maxInDegree default —
// resolved *here* so explicit and defaulted queries for the same α
// share one cache key), and derive the flight key. The "katz#" key
// namespace can never collide with the pinned ("<snap>#…") or live
// ("live#…") namespaces, and graphs per snapshot id are immutable, so
// no generation stamp is needed.
func (e *Engine) resolveKatz(q Query) (*task, error) {
	e.mu.RLock()
	src := e.graphs
	e.mu.RUnlock()
	if src == nil {
		return nil, ErrNoGraphSource
	}
	g, snap, ok := src.GraphAt(q.Snapshot)
	if !ok {
		if q.Snapshot < 0 {
			return nil, ErrNoSnapshots
		}
		return nil, fmt.Errorf("%w: %d (no graph retained)", ErrUnknownSnapshot, q.Snapshot)
	}
	alpha := q.Damping
	if alpha == 0 {
		alpha = measures.DefaultKatzAlpha(g)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("serve: katz alpha %v outside (0,1)", alpha)
	}
	t := &task{q: q, damping: alpha, graph: g, snap: snap, keyed: true}
	t.suffix = keySuffix(MeasureKatz, 0, nil, 0, alpha)
	t.prefix = "katz#" + strconv.Itoa(snap)
	t.flightKey = t.prefix + t.suffix
	return t, nil
}

// serveKatz answers one katz task: a dedicated factorization over the
// task's graph. Solve errors (α too large for the graph's in-degree)
// surface to every waiter through the flight, like any other solve
// failure.
func (e *Engine) serveKatz(t *task) {
	t.solveSpan.SetString("path", "katz")
	scores, err := measures.Katz(t.graph, t.damping)
	if err != nil {
		e.finish(t, answer{}, err)
		return
	}
	e.katzSolves.Add(1)
	e.finish(t, answer{scores: scores}, nil)
}
