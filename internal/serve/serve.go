// Package serve is the query-serving layer on top of the LUDEM
// pipelines: it retains per-snapshot solvers produced by core.Run
// (via Options.OnFactors with RetainFactors set) in a bounded
// snapshot store and answers concurrent proximity-measure queries —
// RWR, PPR, PageRank, top-k — through an admission-controlled worker
// pool with a shared LRU result cache.
//
// This is the paper's motivating deployment (§1): the whole point of
// maintaining LU factors across an evolving matrix sequence is that
// every measure query at any snapshot is then a forward/backward
// substitution, cheap enough to serve traffic. The split is the usual
// one between maintenance and serving: core keeps the factors current
// while this package turns them into answers.
//
// The hot path is a three-stage pipeline (see docs/SERVING.md):
//
//	Query ──resolve──▶ coalesce ──admit──▶ batch ──▶ solve ──▶ cache
//	        (route,     (single-   (bounded  (group   (blocked   (one fill
//	         validate)   flight)    queue,    by       multi-RHS   per
//	                               shedding)  solver)  SolveBlock) flight)
//
// Identical concurrent queries share one solve and one cache fill
// (single-flight coalescing, keyed by the generation-tagged cache
// key); compatible queued queries against the same factors are solved
// in one blocked traversal (lu.Solver.SolveBlock); and when the
// admission queue is full, excess queries fail fast with
// ErrOverloaded instead of building an unbounded backlog.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lu"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// The measure names a Query may carry.
const (
	MeasureRWR      = "rwr"      // random walk with restart from Source
	MeasurePPR      = "ppr"      // personalized PageRank over Sources
	MeasurePageRank = "pagerank" // global PageRank
	MeasureTopK     = "topk"     // top-K nodes of the RWR from Source
	// MeasureKatz is Katz centrality, the graph-backed measure: it is
	// answered from the snapshot's graph (AttachGraphs) by a dedicated
	// factorization rather than from the pinned RWR factors. The Query's
	// Damping field carries the Katz attenuation α (0 = the conventional
	// 0.85/maxInDegree default).
	MeasureKatz = "katz"
)

// Errors a Query can fail with. Validation problems (bad measure,
// out-of-range source, …) come back as distinct descriptive errors.
var (
	ErrClosed          = errors.New("serve: engine closed")
	ErrUnknownSnapshot = errors.New("serve: snapshot not retained")
	ErrNoSnapshots     = errors.New("serve: no snapshots pinned yet")
	// ErrNoGraphSource reports a graph-backed measure (katz) on an
	// engine with no AttachGraphs source: the deployment cannot answer
	// it, which callers should surface as a client error.
	ErrNoGraphSource = errors.New("serve: no graph source attached (katz not served)")
	// ErrOverloaded is the admission-control fast-fail: the bounded
	// queue is full and the query was shed without waiting. Callers
	// should back off and retry (cludeserve maps it to HTTP 429 with a
	// Retry-After header).
	ErrOverloaded = errors.New("serve: overloaded, query shed")
)

// Config sizes the engine. The zero value picks the defaults.
type Config struct {
	// MaxSnapshots bounds the snapshot store: pinning snapshot K+1
	// evicts the oldest retained snapshot. <= 0 means 64.
	MaxSnapshots int
	// Workers is the query pool size. <= 0 means runtime.GOMAXPROCS.
	Workers int
	// CacheSize bounds the LRU result cache (entries). <= 0 means 1024.
	CacheSize int
	// Damping is the restart parameter baked into the pinned factors
	// (A = I − d·W). Queries may omit it (0) or must match it: the
	// factors cannot answer a different damping.
	Damping float64
	// SparseReachFrac tunes the reach-based solve path for
	// single-source and seed-set queries: when the reach of the
	// right-hand side exceeds this fraction of n, the worker falls
	// back to the dense substitution (dense wins at high fill). 0
	// means measures.DefaultReachFraction; >= 1 never falls back;
	// negative disables the sparse path entirely.
	SparseReachFrac float64
	// QueueDepth bounds the admission queue between callers and the
	// worker pool. A query that finds the queue full is shed
	// immediately with ErrOverloaded — the engine never builds a
	// backlog deeper than this. <= 0 means 8×Workers.
	QueueDepth int
	// BatchMax caps how many compatible queued queries one worker
	// gathers into a single blocked multi-RHS solve. <= 0 means 8;
	// 1 disables batching (every query solves alone, the pre-blocking
	// behavior).
	BatchMax int
	// QueryTimeout, when positive, is a per-request deadline applied
	// to every Query on top of the caller's context.
	QueryTimeout time.Duration
	// PanelMinWidth tunes the supernodal panel route for blocked
	// multi-RHS solves over pinned (frozen) static factors. The packed
	// panel set is built lazily on first use and cached on the pinned
	// solver (lu.Solver.PanelsBuild), so Pin never waits on packing;
	// live sources never pack (their factors mutate in place, see
	// lu.PanelSet). 0 (the default) is the auto heuristic: a group of
	// k >= 2 takes the packed path when the set's mean panel width is
	// >= 1.5 and meanWidth·k >= 8 (the point where the dense-block
	// amortization beats the gather overhead); >= 1 requires the mean
	// panel width to reach the value instead; negative disables the
	// panel route entirely (every block takes the scalar SolveBlock).
	// Both routes are bit-identical; this is purely a scheduling knob.
	PanelMinWidth int
	// NoSingleFlight disables query coalescing: identical concurrent
	// queries each solve independently, as the engine behaved before
	// single-flight landed. The cache still works. This exists for
	// benchmarking the coalescing win (internal/bench "loadtest") and
	// for debugging; production configs should leave it false.
	NoSingleFlight bool
	// SpillDir, when non-empty, turns eviction from the bounded
	// snapshot store into disk spilling: evicted snapshots are written
	// there (see internal/store's solver codec) and transparently
	// reloaded — and re-pinned — when a query addresses them. The
	// directory's index is rescanned at engine construction, so spill
	// files from a previous process stay queryable. Empty keeps the
	// classic drop-on-evict behavior.
	SpillDir string
	// SpillKeep bounds how many spilled snapshots are retained on disk
	// (oldest indices deleted past it). <= 0 means 4096.
	SpillKeep int
	// HistoryBase, when > 0, enables delta-compressed version history
	// (see history.go): the HistoryHook pins a full factor clone only
	// every HistoryBase-th version (plus every structural version, which
	// starts a new delta chain) and records every version's Bennett
	// delta; non-base versions materialize on demand by replaying deltas
	// onto the nearest earlier base — bit-identical to the clone the
	// checkpoint path would have pinned. 0 disables (classic
	// clone-per-checkpoint retention).
	HistoryBase int
	// HistoryBudgetBytes bounds the bytes retained by materialized
	// (non-base) solvers in the history LRU. <= 0 means 64 MiB.
	HistoryBudgetBytes int64
	// Tracer, when non-nil, traces every query through the pipeline
	// stages (resolve → coalesce → admit → batch → solve) with
	// tail-based retention; see internal/trace. nil disables tracing —
	// the pipeline then runs exactly as before, with no per-query
	// tracing cost at all.
	Tracer *trace.Tracer
}

// Query is one measure request.
type Query struct {
	// Snapshot selects the matrix sequence index; negative means the
	// latest pinned snapshot.
	Snapshot int `json:"snapshot"`
	// Measure is one of the Measure* constants.
	Measure string `json:"measure"`
	// Source is the seed node for rwr and topk.
	Source int `json:"source"`
	// Sources is the seed set for ppr.
	Sources []int `json:"sources,omitempty"`
	// K is the result size for topk.
	K int `json:"k,omitempty"`
	// Damping must be 0 (use the engine's) or equal the engine's.
	Damping float64 `json:"damping,omitempty"`
}

// Response is a query answer. Scores is the full measure vector for
// rwr/ppr/pagerank; for topk, Nodes lists the top-K ids (score
// descending, ties by ascending id) and Scores their scores.
type Response struct {
	Snapshot int       `json:"snapshot"`
	Measure  string    `json:"measure"`
	Damping  float64   `json:"damping"`
	Nodes    []int     `json:"nodes,omitempty"`
	Scores   []float64 `json:"scores"`
	CacheHit bool      `json:"cache_hit"`
	// Live marks an answer computed from an attached live source's
	// current factors (see AttachLive); Version is the source's factor
	// version the answer reflects. Version is always serialized — a
	// live answer at version 0 is still versioned — and is meaningful
	// only when Live is true.
	Live    bool   `json:"live,omitempty"`
	Version uint64 `json:"version"`
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	Queries          int64 `json:"queries"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	ColdSolves       int64 `json:"cold_solves"`
	Rejected         int64 `json:"rejected"` // validation/cancellation failures
	SnapshotsPinned  int64 `json:"snapshots_pinned"`
	SnapshotsEvicted int64 `json:"snapshots_evicted"`
	CacheEvictions   int64 `json:"cache_evictions"`
	CacheEntries     int   `json:"cache_entries"`
	Retained         int   `json:"retained_snapshots"`
	Workers          int   `json:"workers"`

	// Admission-pipeline counters. Every submitted query (Queries) is
	// classified exactly once: Coalesced joined an identical in-flight
	// query and waited for its answer instead of computing its own;
	// Shed was fast-failed with ErrOverloaded at the full admission
	// queue; Admitted entered the serving path (cache hits, enqueued
	// solves, and queries later rejected by validation all count).
	// Invariant: Admitted + Coalesced + Shed == Queries.
	Admitted  int64 `json:"admitted"`
	Coalesced int64 `json:"coalesced"`
	Shed      int64 `json:"shed"`

	// Blocked-solve counters: BlockSolves is the number of blocked
	// multi-RHS dispatches (groups of ≥ 2 compatible queries solved in
	// one factor traversal), BlockedRHS the total right-hand sides
	// they carried — BlockedRHS/BlockSolves is the mean block width.
	// Every blocked dispatch is routed exactly once: PanelSolves took
	// the supernodal panel-packed substitution (Config.PanelMinWidth),
	// ScalarBlockSolves the classic column-by-column SolveBlock —
	// PanelSolves + ScalarBlockSolves == BlockSolves. SingleGroups
	// counts route groups that degenerated to one query and took the
	// classic per-query path (sparse-capable), so the panel-vs-scalar
	// routing decision is observable for every gathered group.
	BlockSolves       int64 `json:"block_solves"`
	BlockedRHS        int64 `json:"blocked_rhs"`
	PanelSolves       int64 `json:"panel_solves"`
	PanelRHS          int64 `json:"panel_rhs"`
	ScalarBlockSolves int64 `json:"scalar_block_solves"`
	SingleGroups      int64 `json:"single_groups"`

	// Panel-packing counters: PanelPacks is the number of packed panel
	// sets built (one per pinned solver that ever took the panel
	// route), PanelColsCovered the total columns those sets hold in
	// panels of width >= 2 (the columns the packed path amortizes),
	// PanelPackUS the cumulative wall time spent packing — paid once
	// per pinned solver, off the ingest/publish path.
	PanelPacks       int64 `json:"panel_packs"`
	PanelColsCovered int64 `json:"panel_cols_covered"`
	PanelPackUS      int64 `json:"panel_pack_us"`

	// Latency percentiles (µs) over successfully answered queries,
	// measured from Query entry to answer, on a log₂-bucketed
	// histogram (values are bucket upper bounds, ≤ 2× the true
	// quantile).
	LatencyCount int64   `json:"latency_count"`
	LatencyP50us float64 `json:"latency_p50_us"`
	LatencyP95us float64 `json:"latency_p95_us"`
	LatencyP99us float64 `json:"latency_p99_us"`

	// LatencyExemplars links the latency histogram back to retained
	// traces: per log₂ bucket, the trace ID of the slowest retained
	// trace of the current window (Config.Tracer; empty when tracing
	// is off or nothing was retained recently). Resolve an entry with
	// /v1/traces/{trace_id}.
	LatencyExemplars []LatencyExemplar `json:"latency_exemplars,omitempty"`

	// Solve-path breakdown of the cold solves: SparseSolves answered
	// through the reach-based path, DenseSolves through the full
	// substitution (PageRank always; others on fallback, when the
	// sparse path is disabled, or when solved as part of a block),
	// KatzSolves through the graph-backed Katz factorization.
	// SparseFallbacks counts sparse attempts whose symbolic probe
	// exceeded the reach cap (each also appears in DenseSolves).
	// AvgReachFrac is the mean fraction of rows the sparse solves
	// touched.
	SparseSolves    int64   `json:"sparse_solves"`
	DenseSolves     int64   `json:"dense_solves"`
	SparseFallbacks int64   `json:"sparse_fallbacks"`
	KatzSolves      int64   `json:"katz_solves"`
	AvgReachFrac    float64 `json:"avg_reach_frac"`

	// QueryStages breaks the pipeline down per stage (resolve,
	// coalesce, admit, batch, solve — see hist.go for exact stage
	// semantics), from the same histograms /metrics exposes as
	// clude_query_stage_seconds.
	QueryStages map[string]StageLatency `json:"query_stages"`

	// Live-source counters: LiveQueries counts answers served from the
	// attached live source's hot factors, LiveVersion its latest
	// published version at the time of the Stats call.
	LiveAttached bool   `json:"live_attached"`
	LiveQueries  int64  `json:"live_queries"`
	LiveVersion  uint64 `json:"live_version"`

	// Disk-spill counters (Config.SpillDir): snapshots written on
	// eviction, transparent reloads on access, and spill-path failures
	// (each of which degraded to the no-spill behavior).
	SnapshotsSpilled int64 `json:"snapshots_spilled"`
	SpillReloads     int64 `json:"spill_reloads"`
	SpillErrors      int64 `json:"spill_errors"`

	// Delta-compressed history counters (Config.HistoryBase; see
	// history.go). HistoryVersions is the record-log window size and
	// HistoryLogBytes its retained bytes; HistoryResidents /
	// HistoryResidentBytes describe the materialized-solver LRU against
	// HistoryBudgetBytes; HistoryBasePins counts full clones pinned at
	// chain bases. Of the HistoryRequests routed through the history
	// layer, only HistoryMaterializations paid a replay (HistoryHits hit
	// the LRU; the rest joined an in-flight replay or the query cache) —
	// HistoryDedupRatio = requests/materializations is the sharing
	// factor.
	HistoryEnabled          bool    `json:"history_enabled"`
	HistoryBase             int     `json:"history_base,omitempty"`
	HistoryVersions         int     `json:"history_versions,omitempty"`
	HistoryLogBytes         int64   `json:"history_log_bytes,omitempty"`
	HistoryResidents        int     `json:"history_residents,omitempty"`
	HistoryResidentBytes    int64   `json:"history_resident_bytes,omitempty"`
	HistoryBudgetBytes      int64   `json:"history_budget_bytes,omitempty"`
	HistoryBasePins         int64   `json:"history_base_pins,omitempty"`
	HistoryRequests         int64   `json:"history_requests,omitempty"`
	HistoryMaterializations int64   `json:"history_materializations,omitempty"`
	HistoryHits             int64   `json:"history_hits,omitempty"`
	HistoryEvictions        int64   `json:"history_evictions,omitempty"`
	HistoryDedupRatio       float64 `json:"history_dedup_ratio,omitempty"`
}

// LatencyExemplar is one bucket's exemplar: the slowest retained
// trace observed in the bucket's current window.
type LatencyExemplar struct {
	// BucketLEs is the latency bucket's upper bound in seconds — the
	// same le the exposition renders for clude_query_latency_seconds.
	BucketLEs float64 `json:"bucket_le_s"`
	// ValueUS is the exemplar observation in microseconds.
	ValueUS float64 `json:"value_us"`
	// TraceID resolves via /v1/traces/{id} while the retention ring
	// still holds the trace.
	TraceID string `json:"trace_id"`
	// AgeS is how long ago the exemplar was observed.
	AgeS float64 `json:"age_s"`
}

// LatencyExemplars snapshots the latency histogram's exemplar sidecar.
func (e *Engine) LatencyExemplars() []LatencyExemplar {
	exs := e.latEx.Snapshot()
	if len(exs) == 0 {
		return nil
	}
	now := time.Now()
	out := make([]LatencyExemplar, len(exs))
	for i, ex := range exs {
		out[i] = LatencyExemplar{
			BucketLEs: ex.UpperS,
			ValueUS:   float64(ex.NS) / 1e3,
			TraceID:   trace.TraceID(ex.ID).String(),
			AgeS:      now.Sub(ex.At).Seconds(),
		}
	}
	return out
}

// HitRate returns the cache hit fraction over answered queries.
func (s Stats) HitRate() float64 {
	if t := s.CacheHits + s.CacheMisses; t > 0 {
		return float64(s.CacheHits) / float64(t)
	}
	return 0
}

// Engine serves measure queries from pinned per-snapshot solvers.
type Engine struct {
	cfg      Config
	batchMax int
	cache    *lruCache

	mu     sync.RWMutex
	snaps  map[int]snapEntry
	pinned []int // retention order (pin order), oldest first
	latest int
	gen    uint64 // bumped per Pin; stamps cache keys (see snapEntry)

	queue     chan *task
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// Single-flight table: one entry per cache key with a solve in
	// flight. Guarded by flightMu, which also orders the leader's
	// cache-fill-then-delete against a new leader's miss-then-create
	// (see joinFlight).
	flightMu sync.Mutex
	flights  map[string]*flight

	queries, hits, misses, solves   atomic.Int64
	rejected, pinCount, snapEvicted atomic.Int64
	cacheEvicted                    atomic.Int64
	admitted, coalesced, shed       atomic.Int64
	blockSolves, blockedRHS         atomic.Int64
	panelSolves, panelRHS           atomic.Int64
	scalarBlocks, singleGroups      atomic.Int64
	panelPacks, panelCols           atomic.Int64
	panelPackNS                     atomic.Int64
	katzSolves                      atomic.Int64
	lat                             metrics.Histogram
	stages                          [numStages]metrics.Histogram

	// Request tracing (Config.Tracer) and the latency histogram's
	// exemplar sidecar: latEx remembers, per log₂ bucket and time
	// window, the trace ID of the slowest retained trace — the bridge
	// from a scrape-level percentile to a replayable trace.
	tracer *trace.Tracer
	latEx  metrics.Exemplars

	// Sparse-path counters: reachRows/reachDen accumulate the touched-
	// row and dimension totals of sparse solves, so AvgReachFrac is an
	// exact ratio without float atomics.
	sparseSolves, denseSolves, sparseFallbacks atomic.Int64
	reachRows, reachDen                        atomic.Int64

	// Live source (see live.go). Guarded by mu; read once per query and
	// released before the source's lock is taken, so the lock orders
	// "source → e.mu" (checkpoint pins from a publish callback) and
	// "e.mu → source" never both occur. liveGen bumps on every
	// AttachLive and stamps live cache keys, so a swapped-in source can
	// never be served answers computed from its predecessor's factors
	// (the live twin of the pinned store's pin generation).
	live        LiveSource
	liveGen     uint64
	liveQueries atomic.Int64

	// Graph source for graph-backed measures (katz); see graphs.go.
	// Guarded by mu like the live source.
	graphs GraphSource

	// Disk-spill state (see spill.go). spillMu guards the spilled-index
	// set, the in-flight write queue, and the pending map; it is only
	// ever taken alone or after e.mu, never before it. spillKick wakes
	// the background writer.
	spillMu                              sync.Mutex
	spilled                              map[int]bool
	spillPending                         map[int]*lu.Solver
	spillQueue                           []evictedSnap
	spillKick                            chan struct{}
	spillWrites, spillLoads, spillErrors atomic.Int64

	// Delta-compressed history state (see history.go). Always
	// allocated so stats/metrics reads are nil-safe; active only when
	// Config.HistoryBase > 0.
	hist *histState
}

// evictedSnap carries an evicted snapshot out of the locked region of
// Pin to the spill/purge path.
type evictedSnap struct {
	idx int
	s   *lu.Solver
}

// snapEntry is one retained snapshot: the pinned solver plus the pin
// generation its cache keys are stamped with. Re-pinning a snapshot
// index bumps the generation, so answers computed from the old solver
// — even ones a concurrent worker stores after the re-pin — are keyed
// under the old generation and can never be served for the new
// factors; the LRU ages them out.
type snapEntry struct {
	s   *lu.Solver
	gen uint64
}

// New starts an engine and its worker pool. Callers must Close it.
func New(cfg Config) *Engine {
	if cfg.MaxSnapshots <= 0 {
		cfg.MaxSnapshots = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8 * cfg.Workers
	}
	batchMax := cfg.BatchMax
	if batchMax <= 0 {
		batchMax = 8
	}
	e := &Engine{
		cfg:          cfg,
		batchMax:     batchMax,
		cache:        newLRUCache(cfg.CacheSize),
		snaps:        make(map[int]snapEntry),
		latest:       -1,
		queue:        make(chan *task, cfg.QueueDepth),
		closed:       make(chan struct{}),
		flights:      make(map[string]*flight),
		spilled:      make(map[int]bool),
		spillPending: make(map[int]*lu.Solver),
		spillKick:    make(chan struct{}, 1),
		hist:         newHistState(cfg.HistoryBudgetBytes),
		tracer:       cfg.Tracer,
	}
	if cfg.SpillDir != "" {
		e.initSpill()
	}
	for w := 0; w < cfg.Workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Close stops the worker pool; calling it again is a no-op. Queries
// in flight after Close may return ErrClosed; pinned snapshots stay
// readable until the engine is garbage collected.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.closed) })
	e.wg.Wait()
}

// Pin retains the solver for snapshot i, taking ownership (callers
// must hand over a solver whose factors are not updated afterwards —
// core.Options.RetainFactors provides exactly that). When the store
// is over its bound, the oldest pinned snapshot is evicted together
// with its cached answers, so a snapshot is either fully served or
// consistently ErrUnknownSnapshot — never a mix depending on which
// query happened to be cached.
func (e *Engine) Pin(i int, s *lu.Solver) {
	var evicted []evictedSnap
	e.mu.Lock()
	e.gen++
	if _, ok := e.snaps[i]; !ok {
		e.pinned = append(e.pinned, i)
	}
	e.snaps[i] = snapEntry{s: s, gen: e.gen}
	if i > e.latest {
		e.latest = i
	}
	for len(e.pinned) > e.cfg.MaxSnapshots {
		old := e.pinned[0]
		e.pinned = e.pinned[1:]
		evicted = append(evicted, evictedSnap{idx: old, s: e.snaps[old].s})
		delete(e.snaps, old)
		e.snapEvicted.Add(1)
	}
	if _, ok := e.snaps[e.latest]; !ok {
		// Eviction removed the latest (out-of-order pins can do that);
		// re-resolve it from what is still retained so Snapshot: -1
		// keeps answering.
		e.latest = -1
		for _, idx := range e.pinned {
			if idx > e.latest {
				e.latest = idx
			}
		}
	}
	e.mu.Unlock()
	e.pinCount.Add(1)
	if e.spillEnabled() {
		// A fresh pin supersedes any spill file (or in-flight spill
		// write) for the index: the factors on disk may be stale, so
		// the marks are dropped and a later eviction re-spills the
		// current ones.
		e.spillMu.Lock()
		delete(e.spilled, i)
		delete(e.spillPending, i)
		e.spillMu.Unlock()
	}
	e.handleEvicted(evicted)
}

// OnFactors adapts Pin to the core.Options.OnFactors signature. Use it
// with RetainFactors:
//
//	core.Run(ems, core.CLUDE, core.Options{
//		Alpha: 0.95, RetainFactors: true, OnFactors: eng.OnFactors(),
//	})
func (e *Engine) OnFactors() func(i int, s *lu.Solver) {
	return func(i int, s *lu.Solver) { e.Pin(i, s) }
}

// Snapshots returns the retained snapshot indices in ascending order.
func (e *Engine) Snapshots() []int {
	e.mu.RLock()
	out := append([]int(nil), e.pinned...)
	e.mu.RUnlock()
	sort.Ints(out)
	return out
}

// Latest returns the highest pinned snapshot index (-1 when empty).
func (e *Engine) Latest() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.latest
}

// Stats returns a consistent-enough snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	retained := len(e.pinned)
	e.mu.RUnlock()
	lat := e.lat.Snapshot()
	st := Stats{
		Queries:           e.queries.Load(),
		CacheHits:         e.hits.Load(),
		CacheMisses:       e.misses.Load(),
		ColdSolves:        e.solves.Load(),
		Rejected:          e.rejected.Load(),
		SnapshotsPinned:   e.pinCount.Load(),
		SnapshotsEvicted:  e.snapEvicted.Load(),
		CacheEvictions:    e.cacheEvicted.Load(),
		CacheEntries:      e.cache.len(),
		Retained:          retained,
		Workers:           e.cfg.Workers,
		Admitted:          e.admitted.Load(),
		Coalesced:         e.coalesced.Load(),
		Shed:              e.shed.Load(),
		BlockSolves:       e.blockSolves.Load(),
		BlockedRHS:        e.blockedRHS.Load(),
		PanelSolves:       e.panelSolves.Load(),
		PanelRHS:          e.panelRHS.Load(),
		ScalarBlockSolves: e.scalarBlocks.Load(),
		SingleGroups:      e.singleGroups.Load(),
		PanelPacks:        e.panelPacks.Load(),
		PanelColsCovered:  e.panelCols.Load(),
		PanelPackUS:       e.panelPackNS.Load() / 1e3,
		LatencyCount:      lat.Total,
		LatencyP50us:      lat.QuantileUS(0.50),
		LatencyP95us:      lat.QuantileUS(0.95),
		LatencyP99us:      lat.QuantileUS(0.99),
		SparseSolves:      e.sparseSolves.Load(),
		DenseSolves:       e.denseSolves.Load(),
		SparseFallbacks:   e.sparseFallbacks.Load(),
		KatzSolves:        e.katzSolves.Load(),
		SnapshotsSpilled:  e.spillWrites.Load(),
		SpillReloads:      e.spillLoads.Load(),
		SpillErrors:       e.spillErrors.Load(),
	}
	if den := e.reachDen.Load(); den > 0 {
		st.AvgReachFrac = float64(e.reachRows.Load()) / float64(den)
	}
	st.QueryStages = make(map[string]StageLatency, numStages)
	for i, name := range stageNames {
		s := e.stages[i].Snapshot()
		st.QueryStages[name] = StageLatency{
			Count: s.Total,
			P50us: s.QuantileUS(0.50),
			P95us: s.QuantileUS(0.95),
			P99us: s.QuantileUS(0.99),
		}
	}
	st.LatencyExemplars = e.LatencyExemplars()
	if src, _ := e.liveSource(); src != nil {
		st.LiveAttached = true
		st.LiveQueries = e.liveQueries.Load()
		src.View(func(v uint64, _ *lu.Solver) { st.LiveVersion = v })
	}
	e.historyStats(&st)
	return st
}

// Query answers q, blocking until the answer is computed (or shared
// from an identical in-flight query), the context is cancelled, the
// per-request deadline expires, the admission queue sheds the query,
// or the engine closes.
func (e *Engine) Query(ctx context.Context, q Query) (*Response, error) {
	e.queries.Add(1)
	if e.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.QueryTimeout)
		defer cancel()
	}
	// The latency clock read doubles as the trace's root start: on this
	// path a time.Now costs as much as the rest of a span, so tracing
	// shares every timestamp serve already takes.
	start := time.Now()
	tr := e.tracer.StartRequestAt(ctx, "query", start)
	if tr != nil {
		root := tr.Root()
		root.SetString("measure", q.Measure)
		root.SetInt("snapshot", int64(q.Snapshot))
		root.SetInt("source", int64(q.Source))
	}
	resp, err := e.dispatch(ctx, q, tr)
	if err != nil {
		e.rejected.Add(1)
		return nil, err
	}
	e.lat.Observe(time.Since(start))
	return resp, nil
}

// dispatch runs the admission pipeline: resolve the route, try the
// cache, join or lead a flight, enqueue (or shed), and wait. Trace
// ownership follows the answer's path: dispatch finishes tr itself on
// the paths that answer (or fail) inline, a coalesced follower
// finishes its own trace in await, and every path that hands the task
// to a worker transfers the trace with it — e.finish completes it
// there, before the flight's waiters are released.
func (e *Engine) dispatch(ctx context.Context, q Query, tr *trace.Trace) (*Response, error) {
	select {
	case <-e.closed:
		e.admitted.Add(1)
		e.traceDone(tr, ErrClosed)
		return nil, ErrClosed
	default:
	}
	if err := ctx.Err(); err != nil {
		e.admitted.Add(1)
		e.traceDone(tr, err)
		return nil, err
	}

	r0 := time.Now()
	t, err := e.resolve(q)
	rd := time.Since(r0)
	e.stages[stageResolve].Observe(rd)
	tr.Record("resolve", r0, rd)
	if err != nil {
		e.admitted.Add(1)
		e.traceDone(tr, err)
		return nil, err
	}
	t.tr = tr

	if t.keyed && e.cfg.NoSingleFlight {
		if ans, ok := e.cache.get(t.flightKey); ok {
			e.admitted.Add(1)
			e.hits.Add(1)
			if t.live {
				e.liveQueries.Add(1)
			}
			tr.Root().SetBool("cache_hit", true)
			e.traceDone(tr, nil)
			return respond(t.snap, q.Measure, t.damping, ans, true, t.version, t.live), nil
		}
		// Solve independently: no flight registration, but the answer
		// still fills the cache under its key.
		t.flightKey = ""
		t.fl = newFlight()
	} else if t.keyed {
		fl, leader, ans, hit := e.joinFlight(t)
		if hit {
			e.admitted.Add(1)
			e.hits.Add(1)
			if t.live {
				e.liveQueries.Add(1)
			}
			tr.Root().SetBool("cache_hit", true)
			e.traceDone(tr, nil)
			return respond(t.snap, q.Measure, t.damping, ans, true, t.version, t.live), nil
		}
		t.fl = fl
		if !leader {
			// A follower's trace links to the leader's span instead of
			// duplicating the solve: the follower records only its
			// coalesce wait, and the link resolves to the trace that
			// carries the solve's spans.
			t.coalesced = true
			e.coalesced.Add(1)
			tr.Link(fl.lead)
			tr.Root().SetBool("coalesced", true)
			return e.await(ctx, t)
		}
	} else {
		// Unkeyed (the spill-reload race fallback): no cache entry and
		// no coalescing, but the flight still carries the answer back.
		t.fl = newFlight()
	}

	// Admission: a full queue sheds immediately — the caller gets
	// ErrOverloaded now rather than a slow answer later, and any
	// followers that already joined the flight inherit the error.
	t.enqueuedAt = time.Now()
	select {
	case e.queue <- t:
		e.admitted.Add(1)
	default:
		e.shed.Add(1)
		tr.Root().SetBool("shed", true)
		e.finish(t, answer{}, ErrOverloaded)
		return nil, ErrOverloaded
	}
	return e.await(ctx, t)
}

// await blocks on the task's flight. A waiter abandoning the flight
// (context cancelled, engine closed) never affects the flight itself:
// the worker completes it for whoever remains, and the cache fill
// happens regardless — cancellation cannot poison the shared result.
//
// Trace ownership here: a coalesced follower owns its trace and
// finishes it on every exit; a leader's trace travels with the task
// and is finished by e.finish on the worker side (possibly after an
// abandoning leader has already returned), so await never touches it.
func (e *Engine) await(ctx context.Context, t *task) (*Response, error) {
	fl := t.fl
	var w0 time.Time
	if t.coalesced {
		w0 = time.Now()
	}
	done := func(err error) {
		if t.coalesced {
			d := time.Since(w0)
			e.stages[stageCoalesce].Observe(d)
			t.tr.Record("coalesce", w0, d)
			e.traceDone(t.tr, err)
		}
	}
	select {
	case <-fl.done:
		if fl.err != nil {
			done(fl.err)
			return nil, fl.err
		}
		if t.coalesced {
			// A follower's answer came from the shared solve: for the
			// cache-accounting invariants it is a hit (the leader
			// recorded the miss and the cold solve).
			e.hits.Add(1)
		}
		if fl.live {
			e.liveQueries.Add(1)
		}
		done(nil)
		return respond(fl.snap, t.q.Measure, t.damping, fl.ans, false, fl.version, fl.live), nil
	case <-ctx.Done():
		done(ctx.Err())
		return nil, ctx.Err()
	case <-e.closed:
		done(ErrClosed)
		return nil, ErrClosed
	}
}

// resolve validates q and binds it to its serving route — the attached
// live source for latest-state queries when one is publishing, a
// pinned snapshot's solver otherwise — and derives the cache/flight
// key. Routing at submission is what makes coalescing sound: the key
// carries the pin generation (pinned) or attach generation and
// published version (live), so two queries coalesce only when they are
// provably answerable by the same factors.
func (e *Engine) resolve(q Query) (*task, error) {
	if q.Measure == MeasureKatz {
		// Graph-backed route: answered from the snapshot's graph, not
		// the pinned factors, so the damping-compatibility rule below
		// does not apply (Damping carries the Katz α instead).
		return e.resolveKatz(q)
	}
	damping := q.Damping
	if damping == 0 {
		damping = e.cfg.Damping
	}
	if damping != e.cfg.Damping {
		return nil, fmt.Errorf("serve: damping %v not served (factors built for %v)", damping, e.cfg.Damping)
	}
	t := &task{q: q, damping: damping}

	if q.Snapshot < 0 {
		if src, gen := e.liveSource(); src != nil {
			var n int
			viewed := src.View(func(version uint64, s *lu.Solver) {
				t.version = version
				n = s.F.Dim()
			})
			if viewed {
				t.live, t.src, t.liveGen = true, src, gen
				t.snap = int(t.version)
				if err := t.canonicalize(n); err != nil {
					return nil, err
				}
				t.keyed = true
				t.prefix = livePrefix(gen, t.version)
				t.flightKey = t.prefix + t.suffix
				return t, nil
			}
		}
	}

	e.mu.RLock()
	snap := q.Snapshot
	if snap < 0 {
		snap = e.latest
	}
	entry, ok := e.snaps[snap]
	e.mu.RUnlock()
	if snap < 0 {
		return nil, ErrNoSnapshots
	}
	if !ok {
		// History route: a version whose factors were never pinned (or
		// were evicted) but is reachable as base+delta — resident in the
		// materialized LRU, or replayable by a worker.
		if routed, herr := e.resolveHistory(t, snap); routed {
			if herr != nil {
				return nil, herr
			}
			return t, nil
		}
		// Transparent reload of a spilled snapshot: read it back,
		// re-pin it (possibly spilling another cold snapshot), and
		// serve. The re-lookup below picks up the fresh pin generation
		// for the cache key; losing the race to an immediate re-evict
		// just answers uncached from the loaded solver.
		sv, loaded := e.loadSpilled(snap)
		if !loaded {
			return nil, fmt.Errorf("%w: %d", ErrUnknownSnapshot, snap)
		}
		e.Pin(snap, sv)
		e.mu.RLock()
		entry, ok = e.snaps[snap]
		e.mu.RUnlock()
		if !ok {
			t.solver, t.snap = sv, snap
			return t, t.canonicalize(sv.F.Dim())
		}
	}
	t.solver, t.snap = entry.s, snap
	if err := t.canonicalize(entry.s.F.Dim()); err != nil {
		return nil, err
	}
	t.keyed = true
	t.prefix = pinnedPrefix(snap, entry.gen)
	t.flightKey = t.prefix + t.suffix
	return t, nil
}

// respond builds a Response around copies of the (possibly cached, and
// therefore shared) answer slices.
func respond(snap int, measure string, damping float64, ans answer, hit bool, version uint64, live bool) *Response {
	r := &Response{
		Snapshot: snap,
		Measure:  measure,
		Damping:  damping,
		Scores:   append([]float64(nil), ans.scores...),
		CacheHit: hit,
		Live:     live,
		Version:  version,
	}
	if ans.nodes != nil {
		r.Nodes = append([]int(nil), ans.nodes...)
	}
	return r
}

// pinnedPrefix is the cache-key namespace of a pinned snapshot: the
// snapshot index stamped with its pin generation, so a re-pinned
// snapshot can never serve answers computed from its previous factors.
// Eviction purges by the "<snap>#" prefix.
func pinnedPrefix(snap int, gen uint64) string {
	return strconv.Itoa(snap) + "#" + strconv.FormatUint(gen, 10)
}

// livePrefix is the cache-key namespace of a live version, stamped with
// the attach generation. It can never collide with a pinned prefix
// (those start with a digit or '-'); within one attached source
// versions are monotone, and across re-attaches the generation changes,
// so stale live answers are unreachable and simply age out of the LRU.
func livePrefix(gen, version uint64) string {
	return "live#" + strconv.FormatUint(gen, 10) + "#" + strconv.FormatUint(version, 10)
}

// keySuffix canonicalizes the query payload into the rest of the cache
// key. Damping is rendered in hex float so distinct values can never
// collide; ppr seeds arrive sorted and deduplicated, so equivalent seed
// sets share an entry.
func keySuffix(measure string, source int, seeds []int, k int, damping float64) string {
	var b strings.Builder
	b.WriteByte('|')
	b.WriteString(measure)
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(damping, 'x', -1, 64))
	b.WriteByte('|')
	switch measure {
	case MeasureRWR:
		b.WriteString(strconv.Itoa(source))
	case MeasureTopK:
		b.WriteString(strconv.Itoa(source))
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(k))
	case MeasurePPR:
		for i, s := range seeds {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(s))
		}
	}
	return b.String()
}
