package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lu"
)

// Tests of the admission pipeline under load: single-flight coalescing
// (exactly one solve for identical concurrent queries, cancellation
// never poisons the shared result), backpressure (a full queue sheds
// promptly and the counters balance), the publish-mid-flight cache
// regression (a racing publish can never file a stale answer under a
// fresh version's key), and blocked-group bit-identity. All run under
// -race in CI.

// gatedLive is a LiveSource whose View can be made to block on a
// chosen call number, wedging the single worker of a test engine at a
// known point: the pair (version, solver) is read *before* the gate —
// like core.Stream, a View answers from the state it opened on — so a
// publish during the gate affects only later Views.
type gatedLive struct {
	mu      sync.Mutex
	version uint64
	s       *lu.Solver

	calls   atomic.Int64
	blockOn int64 // View call number that gates (0: never)
	entered chan struct{}
	release chan struct{}
}

func newGatedLive(s *lu.Solver, blockOn int64) *gatedLive {
	return &gatedLive{
		s:       s,
		blockOn: blockOn,
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
}

// set publishes a new version.
func (g *gatedLive) set(version uint64, s *lu.Solver) {
	g.mu.Lock()
	g.version, g.s = version, s
	g.mu.Unlock()
}

func (g *gatedLive) View(fn func(version uint64, s *lu.Solver)) bool {
	g.mu.Lock()
	v, s := g.version, g.s
	g.mu.Unlock()
	if s == nil {
		return false
	}
	if c := g.calls.Add(1); c == g.blockOn {
		g.entered <- struct{}{}
		<-g.release
	}
	fn(v, s)
	return true
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for ", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// sameAnswer asserts bit-identity of a response against a cold answer.
func sameAnswer(t *testing.T, tag string, resp *Response, nodes []int, scores []float64) {
	t.Helper()
	if len(resp.Scores) != len(scores) {
		t.Fatalf("%s: got %d scores, want %d", tag, len(resp.Scores), len(scores))
	}
	for i := range scores {
		if resp.Scores[i] != scores[i] {
			t.Fatalf("%s: score %d differs: %v vs %v", tag, i, resp.Scores[i], scores[i])
		}
	}
	if len(resp.Nodes) != len(nodes) {
		t.Fatalf("%s: got %d nodes, want %d", tag, len(resp.Nodes), len(nodes))
	}
	for i := range nodes {
		if resp.Nodes[i] != nodes[i] {
			t.Fatalf("%s: node %d differs: %d vs %d", tag, i, resp.Nodes[i], nodes[i])
		}
	}
}

// TestCoalescingSoakExactlyOneSolve races batches of identical queries
// — plus waiters whose contexts get cancelled mid-flight — and asserts
// the single-flight contract: exactly one cold solve per round, every
// successful answer byte-identical to the cold reference, and the
// cache fill intact afterwards (cancellation cannot poison the shared
// result).
func TestCoalescingSoakExactlyOneSolve(t *testing.T) {
	eng, _, ref := pinnedEngine(t, Config{Workers: 2, CacheSize: 4096})
	defer eng.Close()

	const rounds = 8
	const writers = 24
	const cancels = 8
	for r := 0; r < rounds; r++ {
		// A fresh key every round, across measures.
		q := Query{Snapshot: r % 10}
		switch r % 3 {
		case 0:
			q.Measure, q.Source = MeasureRWR, 10+r
		case 1:
			q.Measure, q.Source, q.K = MeasureTopK, 10+r, 6
		case 2:
			q.Measure, q.Sources = MeasurePPR, []int{r, 30 + r}
		}
		wantNodes, wantScores := coldAnswer(q, ref[q.Snapshot])
		before := eng.Stats()

		start := make(chan struct{})
		var wg sync.WaitGroup
		errs := make([]error, writers+cancels)
		resps := make([]*Response, writers+cancels)
		for i := 0; i < writers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				resps[i], errs[i] = eng.Query(context.Background(), q)
			}()
		}
		for i := writers; i < writers+cancels; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					<-start
					time.Sleep(50 * time.Microsecond)
					cancel()
				}()
				<-start
				resps[i], errs[i] = eng.Query(ctx, q)
				cancel()
			}()
		}
		close(start)
		wg.Wait()

		for i, err := range errs {
			switch {
			case err == nil:
				sameAnswer(t, "round soak", resps[i], wantNodes, wantScores)
			case i >= writers && errors.Is(err, context.Canceled):
				// A cancelled waiter abandoning the flight is fine.
			default:
				t.Fatalf("round %d waiter %d: unexpected error %v", r, i, err)
			}
		}

		after := eng.Stats()
		if d := after.ColdSolves - before.ColdSolves; d != 1 {
			t.Fatalf("round %d: %d cold solves for identical concurrent queries, want exactly 1", r, d)
		}
		// The fill must have happened even if waiters were cancelled.
		probe, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !probe.CacheHit {
			t.Fatalf("round %d: post-round probe missed the cache", r)
		}
		sameAnswer(t, "round probe", probe, wantNodes, wantScores)
	}

	st := eng.Stats()
	if st.Admitted+st.Coalesced+st.Shed != st.Queries {
		t.Fatalf("admission counters do not balance: admitted %d + coalesced %d + shed %d != queries %d",
			st.Admitted, st.Coalesced, st.Shed, st.Queries)
	}
	if st.Coalesced == 0 {
		t.Fatal("soak produced no coalesced queries at all")
	}
}

// TestBackpressureShedsPromptly wedges the single worker, fills the
// one-slot admission queue, and asserts that further queries fail fast
// with ErrOverloaded, that the admission counters balance exactly, and
// that Close leaks no goroutines.
func TestBackpressureShedsPromptly(t *testing.T) {
	base := runtime.NumGoroutine()
	eng, _, ref := pinnedEngine(t, Config{
		Workers: 1, QueueDepth: 1, BatchMax: 1, CacheSize: 8,
	})
	g := newGatedLive(ref[0].Clone(), 2) // call 1: resolve; call 2: worker solve
	eng.AttachLive(g)

	type result struct {
		resp *Response
		err  error
	}
	liveDone := make(chan result, 1)
	go func() {
		resp, err := eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasureRWR, Source: 3})
		liveDone <- result{resp, err}
	}()
	<-g.entered // worker is wedged mid-solve; the queue is empty again

	queuedDone := make(chan result, 1)
	go func() {
		resp, err := eng.Query(context.Background(), Query{Snapshot: 0, Measure: MeasureRWR, Source: 5})
		queuedDone <- result{resp, err}
	}()
	waitFor(t, func() bool { return eng.Stats().Admitted == 2 }, "queued query admission")

	// Queue full, worker wedged: distinct queries must shed immediately.
	const probes = 5
	for i := 0; i < probes; i++ {
		begin := time.Now()
		_, err := eng.Query(context.Background(), Query{Snapshot: 0, Measure: MeasureRWR, Source: 20 + i})
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("probe %d: got %v, want ErrOverloaded", i, err)
		}
		if d := time.Since(begin); d > 2*time.Second {
			t.Fatalf("probe %d: shed took %v, want immediate", i, d)
		}
	}
	if st := eng.Stats(); st.Shed != probes {
		t.Fatalf("Shed = %d, want %d", st.Shed, probes)
	}

	close(g.release)
	lr := <-liveDone
	if lr.err != nil {
		t.Fatal(lr.err)
	}
	if !lr.resp.Live {
		t.Fatal("wedged query did not come back live")
	}
	qr := <-queuedDone
	if qr.err != nil {
		t.Fatal(qr.err)
	}
	wantNodes, wantScores := coldAnswer(Query{Measure: MeasureRWR, Source: 5}, ref[0])
	sameAnswer(t, "queued", qr.resp, wantNodes, wantScores)

	st := eng.Stats()
	if st.Queries != 2+probes || st.Admitted+st.Coalesced+st.Shed != st.Queries {
		t.Fatalf("admission counters do not balance: queries %d admitted %d coalesced %d shed %d",
			st.Queries, st.Admitted, st.Coalesced, st.Shed)
	}

	eng.Close()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= base+3 }, "goroutines to drain after Close")
}

// TestPublishMidFlightCannotFillStaleCache is the regression test for
// the stale-fill race: a publish landing between a live query's
// resolution and its solve must not let the engine cache the old
// factors' answer under the new version's key. The worker recomputes
// the key from the same locked view it solves under, so the v0 answer
// files under v0 and a same-parameter query after the publish starts
// its own flight at v1.
func TestPublishMidFlightCannotFillStaleCache(t *testing.T) {
	eng, _, ref := pinnedEngine(t, Config{Workers: 1, CacheSize: 256})
	defer eng.Close()
	s0, s1 := ref[0].Clone(), ref[9].Clone()
	g := newGatedLive(s0, 2)
	eng.AttachLive(g)

	// Pick a source whose RWR actually changed between the two factor
	// states, so caching the wrong version's answer would be caught.
	source := -1
	var cold0, cold1 []float64
	for u := 0; u < s0.F.Dim() && source < 0; u++ {
		_, c0 := coldAnswer(Query{Measure: MeasureRWR, Source: u}, s0)
		_, c1 := coldAnswer(Query{Measure: MeasureRWR, Source: u}, s1)
		for i := range c0 {
			if c0[i] != c1[i] {
				source, cold0, cold1 = u, c0, c1
				break
			}
		}
	}
	if source < 0 {
		t.Fatal("test vacuous: v0 and v1 factors give identical answers for every source")
	}
	q := Query{Snapshot: -1, Measure: MeasureRWR, Source: source}

	type result struct {
		resp *Response
		err  error
	}
	aDone := make(chan result, 1)
	go func() {
		resp, err := eng.Query(context.Background(), q)
		aDone <- result{resp, err}
	}()
	<-g.entered // worker holds the v0 view mid-solve

	g.set(1, s1) // publish v1 while A's solve is in flight

	bDone := make(chan result, 1)
	go func() {
		resp, err := eng.Query(context.Background(), q)
		bDone <- result{resp, err}
	}()
	waitFor(t, func() bool { return eng.Stats().Admitted == 2 }, "B admission")

	close(g.release)
	a := <-aDone
	if a.err != nil {
		t.Fatal(a.err)
	}
	b := <-bDone
	if b.err != nil {
		t.Fatal(b.err)
	}
	if a.resp.Version != 0 {
		t.Fatalf("A answered at version %d, want 0", a.resp.Version)
	}
	sameAnswer(t, "A (v0)", a.resp, nil, cold0)
	if b.resp.Version != 1 {
		t.Fatalf("B answered at version %d, want 1", b.resp.Version)
	}
	if b.resp.CacheHit {
		t.Fatal("B hit the cache: a stale v0 answer was filed under the v1 key")
	}
	sameAnswer(t, "B (v1)", b.resp, nil, cold1)

	// C must hit B's fill and carry v1's bytes — never v0's.
	c, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !c.CacheHit || c.Version != 1 {
		t.Fatalf("C: CacheHit=%v Version=%d, want a v1 cache hit", c.CacheHit, c.Version)
	}
	sameAnswer(t, "C (cached v1)", c, nil, cold1)

	st := eng.Stats()
	if st.Coalesced != 0 {
		t.Fatalf("B coalesced onto A across a publish (Coalesced = %d): version is missing from the flight key", st.Coalesced)
	}
	if st.ColdSolves != 2 {
		t.Fatalf("ColdSolves = %d, want 2 (one per version)", st.ColdSolves)
	}
}

// TestBlockedGroupBitIdentical wedges the single worker, queues six
// distinct same-snapshot queries behind it, and asserts they come back
// as exactly one blocked multi-RHS solve with every answer — and the
// cache entries it fills — bit-identical to the cold single-query
// path.
func TestBlockedGroupBitIdentical(t *testing.T) {
	eng, _, ref := pinnedEngine(t, Config{
		Workers: 1, BatchMax: 8, QueueDepth: 16, CacheSize: 512,
	})
	defer eng.Close()
	g := newGatedLive(ref[9].Clone(), 2)
	eng.AttachLive(g)

	liveDone := make(chan error, 1)
	go func() {
		_, err := eng.Query(context.Background(), Query{Snapshot: -1, Measure: MeasureRWR, Source: 1})
		liveDone <- err
	}()
	<-g.entered

	const snap = 4
	qs := []Query{
		{Snapshot: snap, Measure: MeasureRWR, Source: 3},
		{Snapshot: snap, Measure: MeasureRWR, Source: 11},
		{Snapshot: snap, Measure: MeasurePPR, Sources: []int{2, 9}},
		{Snapshot: snap, Measure: MeasureTopK, Source: 5, K: 7},
		{Snapshot: snap, Measure: MeasurePageRank},
		{Snapshot: snap, Measure: MeasurePPR, Sources: []int{0}},
	}
	resps := make([]*Response, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i, q := range qs {
		i, q := i, q
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = eng.Query(context.Background(), q)
		}()
	}
	waitFor(t, func() bool { return eng.Stats().Admitted == int64(1+len(qs)) }, "group admission")

	close(g.release)
	wg.Wait()
	if err := <-liveDone; err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		wantNodes, wantScores := coldAnswer(q, ref[snap])
		sameAnswer(t, q.Measure, resps[i], wantNodes, wantScores)
		if resps[i].Snapshot != snap || resps[i].CacheHit {
			t.Fatalf("query %d: Snapshot=%d CacheHit=%v", i, resps[i].Snapshot, resps[i].CacheHit)
		}
	}

	st := eng.Stats()
	if st.BlockSolves != 1 || st.BlockedRHS != int64(len(qs)) {
		t.Fatalf("BlockSolves=%d BlockedRHS=%d, want one block of %d", st.BlockSolves, st.BlockedRHS, len(qs))
	}

	// The block's cache fills must serve subsequent singles verbatim.
	for i, q := range qs {
		again, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !again.CacheHit {
			t.Fatalf("query %d: blocked answer was not cached", i)
		}
		wantNodes, wantScores := coldAnswer(q, ref[snap])
		sameAnswer(t, q.Measure+" cached", again, wantNodes, wantScores)
	}
}
