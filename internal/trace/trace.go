// Package trace is a dependency-free request-scoped tracer.
//
// It exists to answer "which query, which stage, why" when an
// aggregate histogram says only that p99 moved. Design constraints,
// in order:
//
//   - Zero allocations on the warm path. A trace that is not retained
//     must leave no heap traffic behind: Trace objects are pooled,
//     spans live in a fixed arena inside the Trace, and attributes
//     occupy inline typed slots. Serialization happens only for
//     retained traces.
//   - Tail-based retention. The keep/drop decision happens at Finish,
//     when the outcome is known: error traces and traces at or above a
//     slow threshold are always kept; the rest are kept with a
//     configurable probability. The interesting 0.01% survives even at
//     a 0.1% sample rate.
//   - W3C interop. Trace/span IDs are traceparent-compatible
//     (16-byte/8-byte, hex on the wire) so context can cross process
//     boundaries once serving goes multi-node.
//
// A Trace and its Spans are owned by one pipeline at a time and are
// not safe for concurrent mutation; the serve pipeline's channel
// handoffs provide the required happens-before edges. All methods are
// nil-safe: a nil *Tracer yields nil *Trace handles and every
// operation on them is a no-op, so call sites need no tracing-enabled
// branches.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 16-byte W3C trace-id.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String returns the 32-character lowercase hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is an 8-byte W3C parent-id / span-id.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String returns the 16-character lowercase hex form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// SpanContext identifies one span of one trace. It is a small value
// type, safe to copy and to read after the originating Trace has been
// finished and recycled.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Traceparent renders the context in W3C traceparent form:
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
func (sc SpanContext) Traceparent() string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.Trace[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.Span[:])
	b[52], b[53] = '-', '0'
	if sc.Sampled {
		b[54] = '1'
	} else {
		b[54] = '0'
	}
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header. Any version other
// than "ff" is accepted per the spec's forward-compatibility rule; the
// all-zero trace-id and parent-id are rejected.
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(s[0:2])); err != nil || ver[0] == 0xff {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.Trace[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&1 != 0
	return sc, true
}

type ctxKey struct{}

// WithParent returns a context carrying sc as the inbound parent span
// context for traces started beneath it.
func WithParent(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// Parent extracts the inbound parent span context, or the zero value
// if none was attached.
func Parent(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Retention reasons recorded on retained traces.
const (
	ReasonError   = "error"
	ReasonSlow    = "slow"
	ReasonSampled = "sampled"
)

// Config parameterizes a Tracer.
type Config struct {
	// Buffer is the retained-trace ring capacity. Defaults to 256.
	Buffer int
	// Slow is the tail-retention latency threshold: finished traces
	// with duration >= Slow are retained (like errors, subject to the
	// per-second storm cap — see Stats.StormLimited). <= 0 disables
	// slow-based retention.
	Slow time.Duration
	// Sample is the probability in [0, 1] of retaining an ordinary
	// (fast, successful) trace. 0 keeps none of them; 1 keeps all.
	Sample float64
	// MaxSpans bounds child spans per trace; excess spans are counted
	// and dropped. Defaults to 8 — one more than the widest current
	// pipeline (resolve/coalesce/admit/batch/solve plus ingest's four
	// stages); each slot costs ~350 bytes per pooled trace, so the
	// arena is sized to the need, not to a round number.
	MaxSpans int
	// OnRetain, if set, is invoked synchronously with each retained
	// trace after it enters the ring. It must be fast; it runs on the
	// finishing goroutine (a serve worker, the ingest apply path, …).
	OnRetain func(*TraceData)
}

// Tracer mints traces and retains the interesting ones in a ring.
// The zero value is unusable; construct with New. A nil *Tracer is a
// valid no-op tracer.
type Tracer struct {
	slow      time.Duration
	sampleAll bool
	sampleLT  uint64 // retain ordinary trace when rand64 < sampleLT
	maxSpans  int
	onRetain  func(*TraceData)
	seed      uint64
	seq       atomic.Uint64
	pool      sync.Pool

	started         atomic.Uint64
	retainedError   atomic.Uint64
	retainedSlow    atomic.Uint64
	retainedSampled atomic.Uint64

	// Storm cap on error/slow retention: at most stormCap snapshots
	// per second. A mass-shed or latency storm makes every trace
	// retention-worthy at once; past a few ring turnovers per second
	// the snapshots only overwrite each other, while their allocation
	// cost lands on the serving hot path.
	stormCap     int64
	stormSec     atomic.Int64
	stormCount   atomic.Int64
	stormLimited atomic.Uint64

	col collector
}

// New builds a Tracer. See Config for defaults.
func New(cfg Config) *Tracer {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 8
	}
	t := &Tracer{
		slow:     cfg.Slow,
		maxSpans: cfg.MaxSpans,
		onRetain: cfg.OnRetain,
		seed:     processSeed(),
		stormCap: int64(4 * cfg.Buffer),
	}
	switch {
	case cfg.Sample >= 1:
		t.sampleAll = true
	case cfg.Sample > 0:
		t.sampleLT = uint64(cfg.Sample * float64(1<<63) * 2)
	}
	t.pool.New = func() any {
		return &Trace{spans: make([]Span, 0, t.maxSpans)}
	}
	t.col.buf = make([]*TraceData, cfg.Buffer)
	return t
}

// allowStorm admits one error/slow retention against the per-second
// storm cap. The window reset races benignly: concurrent resets only
// let a handful of extra snapshots through at a second boundary.
func (t *Tracer) allowStorm(now time.Time) bool {
	sec := now.Unix()
	if t.stormSec.Load() != sec {
		t.stormSec.Store(sec)
		t.stormCount.Store(0)
	}
	if t.stormCount.Add(1) > t.stormCap {
		t.stormLimited.Add(1)
		return false
	}
	return true
}

// SlowThreshold reports the configured slow-retention threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// Start begins a trace whose root span is named name. parent, when
// valid, is recorded as the remote parent span (trace-id adoption is
// deliberate: the inbound trace-id is kept so cross-process traces
// stitch together). Returns nil when t is nil.
func (t *Tracer) Start(name string, parent SpanContext) *Trace {
	return t.StartAt(name, parent, time.Now())
}

// StartAt is Start with an explicit root start time — the synthesis
// path for traces reconstructed after the fact (an ingest batch whose
// stages were measured by hooks): backdating the root keeps the trace
// duration honest, so slow-threshold retention still applies.
func (t *Tracer) StartAt(name string, parent SpanContext, start time.Time) *Trace {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	n := t.seq.Add(1)
	a := splitmix64(n ^ t.seed)
	b := splitmix64(a ^ 0x9e3779b97f4a7c15)
	tr := t.pool.Get().(*Trace)
	tr.t = t
	if parent.Valid() {
		tr.id = parent.Trace
		tr.parent = parent.Span
	} else {
		binary.BigEndian.PutUint64(tr.id[0:8], a)
		binary.BigEndian.PutUint64(tr.id[8:16], b|1) // never all-zero
	}
	tr.sampled = t.sampleAll || (t.sampleLT > 0 && splitmix64(b^0xbf58476d1ce4e5b9) < t.sampleLT)
	tr.spanSeq = b
	// Field-wise root init: a Span literal would also zero the inline
	// attribute array (a third of the struct), which is dead weight —
	// attrs are only ever read through attrs[:na].
	r := &tr.root
	r.name = name
	r.id = tr.nextSpanID()
	r.start = start
	r.dur = 0
	r.done = false
	r.na = 0
	return tr
}

// StartRequest begins a trace for an inbound request, adopting any
// parent span context attached to ctx via WithParent.
func (t *Tracer) StartRequest(ctx context.Context, name string) *Trace {
	if t == nil {
		return nil
	}
	return t.Start(name, Parent(ctx))
}

// StartRequestAt is StartRequest with an explicit start time, for call
// sites that already read the clock for their own latency accounting:
// on hosts where a clock read costs tens of nanoseconds, sharing it is
// the difference between tracing being free and tracing taxing the hot
// path.
func (t *Tracer) StartRequestAt(ctx context.Context, name string, start time.Time) *Trace {
	if t == nil {
		return nil
	}
	return t.StartAt(name, Parent(ctx), start)
}

// Recent returns retained traces, newest first, matching f.
func (t *Tracer) Recent(f Filter) []*TraceData {
	if t == nil {
		return nil
	}
	return t.col.recent(f)
}

// Get looks up a retained trace by its 32-hex trace-id string.
func (t *Tracer) Get(id string) (*TraceData, bool) {
	if t == nil {
		return nil, false
	}
	return t.col.get(id)
}

// Stats is a point-in-time snapshot of tracer counters.
type Stats struct {
	Started         uint64 `json:"started"`
	Retained        uint64 `json:"retained"`
	RetainedError   uint64 `json:"retained_error"`
	RetainedSlow    uint64 `json:"retained_slow"`
	RetainedSampled uint64 `json:"retained_sampled"`
	// StormLimited counts error/slow traces dropped by the per-second
	// storm cap (4x the ring size): during a mass-shed or latency
	// storm the ring is already saturated with examples, and further
	// snapshots would only tax the hot path to overwrite each other.
	StormLimited uint64 `json:"storm_limited"`
	Buffered     int    `json:"buffered"`
}

// Stats reports tracer counters. Safe on a nil Tracer.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	s := Stats{
		Started:         t.started.Load(),
		RetainedError:   t.retainedError.Load(),
		RetainedSlow:    t.retainedSlow.Load(),
		RetainedSampled: t.retainedSampled.Load(),
		StormLimited:    t.stormLimited.Load(),
		Buffered:        t.col.buffered(),
	}
	s.Retained = s.RetainedError + s.RetainedSlow + s.RetainedSampled
	return s
}

// maxAttrs is the inline attribute capacity per span. Sized for the
// widest current user (the query root span); raising it costs
// maxAttrs*48 bytes per pooled span.
const maxAttrs = 6

type attrKind uint8

const (
	attrNone attrKind = iota
	attrString
	attrInt
	attrFloat
	attrBool
)

type attr struct {
	key  string
	str  string
	num  uint64
	kind attrKind
}

// Span is one timed operation inside a Trace. The zero value is
// inert; spans are created via Trace.StartSpan or Trace.Record.
// Methods are nil-safe no-ops.
type Span struct {
	name  string
	id    SpanID
	start time.Time
	dur   time.Duration
	done  bool
	na    uint8
	attrs [maxAttrs]attr
}

func (s *Span) setAttr(a attr) {
	if s == nil || int(s.na) >= maxAttrs {
		return
	}
	s.attrs[s.na] = a
	s.na++
}

// SetString attaches a string attribute.
func (s *Span) SetString(k, v string) { s.setAttr(attr{key: k, str: v, kind: attrString}) }

// SetInt attaches an integer attribute.
func (s *Span) SetInt(k string, v int64) { s.setAttr(attr{key: k, num: uint64(v), kind: attrInt}) }

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(k string, v float64) {
	s.setAttr(attr{key: k, num: math.Float64bits(v), kind: attrFloat})
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(k string, v bool) {
	var n uint64
	if v {
		n = 1
	}
	s.setAttr(attr{key: k, num: n, kind: attrBool})
}

// End closes the span now. Spans still open when the trace finishes
// are closed at the trace end time.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.dur = time.Since(s.start)
	s.done = true
}

func (s *Span) endAt(now time.Time) {
	if s.done {
		return
	}
	s.dur = now.Sub(s.start)
	s.done = true
}

// Trace is one in-flight request trace. Handles are pooled: after
// Finish the handle is invalid and must not be touched again.
type Trace struct {
	t       *Tracer
	id      TraceID
	parent  SpanID // inbound remote parent, zero if local root
	root    Span
	spans   []Span
	dropped int
	link    SpanContext
	sampled bool
	spanSeq uint64
}

func (tr *Trace) nextSpanID() SpanID {
	tr.spanSeq = splitmix64(tr.spanSeq)
	var id SpanID
	binary.BigEndian.PutUint64(id[:], tr.spanSeq|1)
	return id
}

// ID returns the trace ID. Zero on a nil trace.
func (tr *Trace) ID() TraceID {
	if tr == nil {
		return TraceID{}
	}
	return tr.id
}

// Context returns the root span's context for propagation (to a
// follower's link, an outbound header, …). It remains valid after the
// trace finishes because it is a value copy.
func (tr *Trace) Context() SpanContext {
	if tr == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: tr.id, Span: tr.root.id, Sampled: tr.sampled}
}

// Root returns the root span for attribute attachment.
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return &tr.root
}

// StartSpan opens a child span named name starting now. The returned
// pointer aims into the trace's arena; do not retain it past Finish.
func (tr *Trace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	return tr.StartSpanAt(name, time.Now())
}

// StartSpanAt opens a child span starting at an already-read timestamp
// (the clock-sharing counterpart of Record, for spans whose end isn't
// known yet).
func (tr *Trace) StartSpanAt(name string, start time.Time) *Span {
	if tr == nil {
		return nil
	}
	return tr.addSpan(Span{name: name, id: tr.nextSpanID(), start: start})
}

// Record appends an already-measured span: it started at start and
// lasted d. This lets call sites reuse timestamps they already took
// for histogram observations instead of reading the clock twice.
func (tr *Trace) Record(name string, start time.Time, d time.Duration) *Span {
	if tr == nil {
		return nil
	}
	return tr.addSpan(Span{name: name, id: tr.nextSpanID(), start: start, dur: d, done: true})
}

func (tr *Trace) addSpan(s Span) *Span {
	if len(tr.spans) == cap(tr.spans) {
		tr.dropped++
		return nil
	}
	tr.spans = append(tr.spans, s)
	return &tr.spans[len(tr.spans)-1]
}

// Link records that this trace observed (but did not perform) the
// work identified by sc — e.g. a coalesced follower pointing at the
// leader that ran the solve.
func (tr *Trace) Link(sc SpanContext) {
	if tr == nil {
		return
	}
	tr.link = sc
}

// Outcome is what Finish reports back to the call site; it stays
// valid after the trace handle is recycled.
type Outcome struct {
	ID       TraceID
	Duration time.Duration
	Retained bool
	Reason   string
}

// Finish closes the trace, decides retention, and recycles the
// handle. Exactly one goroutine may call Finish, exactly once; the
// handle and all its spans are invalid afterwards.
func (tr *Trace) Finish(err error) Outcome {
	if tr == nil {
		return Outcome{}
	}
	now := time.Now()
	tr.root.endAt(now)
	out := Outcome{ID: tr.id, Duration: tr.root.dur}
	t := tr.t
	switch {
	case err != nil:
		if t.allowStorm(now) {
			out.Reason = ReasonError
			t.retainedError.Add(1)
		}
	case t.slow > 0 && tr.root.dur >= t.slow:
		if t.allowStorm(now) {
			out.Reason = ReasonSlow
			t.retainedSlow.Add(1)
		}
	case tr.sampled:
		out.Reason = ReasonSampled
		t.retainedSampled.Add(1)
	}
	if out.Reason != "" {
		out.Retained = true
		td := tr.snapshot(out.Reason, err, now)
		t.col.put(td)
		if t.onRetain != nil {
			t.onRetain(td)
		}
	}
	tr.reset()
	t.pool.Put(tr)
	return out
}

// reset clears only what the next StartAt does not overwrite. The
// root span and trace id are deliberately left dirty: StartAt assigns
// both unconditionally, and re-zeroing the root's inline attribute
// array here would double the per-recycle memory traffic.
func (tr *Trace) reset() {
	tr.t = nil
	tr.parent = SpanID{}
	tr.spans = tr.spans[:0]
	tr.dropped = 0
	tr.link = SpanContext{}
	tr.sampled = false
}

// snapshot serializes the trace into an immutable TraceData. Only
// retained traces pay this cost.
func (tr *Trace) snapshot(reason string, err error, now time.Time) *TraceData {
	td := &TraceData{
		TraceID:      tr.id.String(),
		SpanID:       tr.root.id.String(),
		Name:         tr.root.name,
		Start:        tr.root.start,
		DurationUS:   us(tr.root.dur),
		Reason:       reason,
		Attrs:        attrMap(tr.root.attrs[:tr.root.na]),
		DroppedSpans: tr.dropped,
	}
	if !tr.parent.IsZero() {
		td.Parent = tr.parent.String()
	}
	if err != nil {
		td.Error = err.Error()
	}
	if tr.link.Valid() {
		td.Link = &LinkData{TraceID: tr.link.Trace.String(), SpanID: tr.link.Span.String()}
	}
	if len(tr.spans) > 0 {
		td.Spans = make([]SpanData, len(tr.spans))
		for i := range tr.spans {
			s := &tr.spans[i]
			s.endAt(now)
			td.Spans[i] = SpanData{
				SpanID:     s.id.String(),
				Name:       s.name,
				OffsetUS:   us(s.start.Sub(tr.root.start)),
				DurationUS: us(s.dur),
				Attrs:      attrMap(s.attrs[:s.na]),
			}
		}
	}
	return td
}

func attrMap(attrs []attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		switch a.kind {
		case attrString:
			m[a.key] = a.str
		case attrInt:
			m[a.key] = int64(a.num)
		case attrFloat:
			m[a.key] = math.Float64frombits(a.num)
		case attrBool:
			m[a.key] = a.num != 0
		}
	}
	return m
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// processSeed derives a per-tracer seed from the CSPRNG so trace IDs
// are unpredictable across restarts; the cheap splitmix stream then
// runs allocation-free per trace.
func processSeed() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()) * 0x9e3779b97f4a7c15
	}
	return binary.LittleEndian.Uint64(b[:])
}
