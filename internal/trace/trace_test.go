package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{Sample: 1}).Start("query", SpanContext{})
	sc := tr.Context()
	tr.Finish(nil)
	if !sc.Valid() {
		t.Fatal("context of a started trace must be valid")
	}
	hdr := sc.Traceparent()
	if len(hdr) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(hdr), hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", hdr)
	}
	if got != sc {
		t.Fatalf("round trip mismatch: %+v != %+v", got, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version ff reserved
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01", // bad hex
		"000af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-011",
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", s)
		}
	}
	good := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	sc, ok := ParseTraceparent(good)
	if !ok || !sc.Sampled {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v", good, sc, ok)
	}
}

func TestParentAdoption(t *testing.T) {
	tc := New(Config{Sample: 1})
	parent, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	ctx := WithParent(context.Background(), parent)
	tr := tc.StartRequest(ctx, "query")
	if tr.ID() != parent.Trace {
		t.Fatalf("trace did not adopt inbound trace id: %s != %s", tr.ID(), parent.Trace)
	}
	out := tr.Finish(nil)
	td, ok := tc.Get(out.ID.String())
	if !ok {
		t.Fatal("retained trace not found")
	}
	if td.Parent != parent.Span.String() {
		t.Fatalf("parent span = %q, want %q", td.Parent, parent.Span.String())
	}
}

func TestRetentionPolicy(t *testing.T) {
	tc := New(Config{Slow: 10 * time.Millisecond, Sample: 0})

	// Fast success, sample 0: dropped.
	out := tc.Start("q", SpanContext{}).Finish(nil)
	if out.Retained {
		t.Fatal("fast successful trace retained at sample 0")
	}

	// Error: always retained.
	out = tc.Start("q", SpanContext{}).Finish(errors.New("boom"))
	if !out.Retained || out.Reason != ReasonError {
		t.Fatalf("error trace: %+v", out)
	}
	if td, ok := tc.Get(out.ID.String()); !ok || td.Error != "boom" {
		t.Fatalf("error trace data: %+v %v", td, ok)
	}

	// Slow: always retained.
	tr := tc.Start("q", SpanContext{})
	time.Sleep(12 * time.Millisecond)
	out = tr.Finish(nil)
	if !out.Retained || out.Reason != ReasonSlow {
		t.Fatalf("slow trace: %+v", out)
	}

	// Sample 1: everything retained.
	all := New(Config{Sample: 1})
	out = all.Start("q", SpanContext{}).Finish(nil)
	if !out.Retained || out.Reason != ReasonSampled {
		t.Fatalf("sampled trace: %+v", out)
	}

	st := tc.Stats()
	if st.Started != 3 || st.RetainedError != 1 || st.RetainedSlow != 1 || st.Retained != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSpansAttrsAndLink(t *testing.T) {
	tc := New(Config{Sample: 1, MaxSpans: 2})
	leader := tc.Start("query", SpanContext{})
	leaderCtx := leader.Context()

	tr := tc.Start("query", SpanContext{})
	tr.Root().SetString("measure", "rwr")
	tr.Root().SetInt("snapshot", -1)
	tr.Root().SetBool("coalesced", true)
	tr.Root().SetFloat("damping", 0.85)
	base := time.Now()
	tr.Record("resolve", base, 5*time.Microsecond)
	sp := tr.StartSpan("solve")
	sp.SetInt("block_width", 8)
	sp.End()
	tr.Record("overflow", base, time.Microsecond) // exceeds MaxSpans=2
	tr.Link(leaderCtx)
	out := tr.Finish(nil)
	leader.Finish(nil)

	td, ok := tc.Get(out.ID.String())
	if !ok {
		t.Fatal("trace not retained")
	}
	if td.Attrs["measure"] != "rwr" || td.Attrs["snapshot"] != int64(-1) ||
		td.Attrs["coalesced"] != true || td.Attrs["damping"] != 0.85 {
		t.Fatalf("root attrs: %+v", td.Attrs)
	}
	if len(td.Spans) != 2 || td.Spans[0].Name != "resolve" || td.Spans[1].Name != "solve" {
		t.Fatalf("spans: %+v", td.Spans)
	}
	if td.Spans[1].Attrs["block_width"] != int64(8) {
		t.Fatalf("span attrs: %+v", td.Spans[1].Attrs)
	}
	if td.DroppedSpans != 1 {
		t.Fatalf("dropped spans = %d, want 1", td.DroppedSpans)
	}
	if td.Link == nil || td.Link.TraceID != leaderCtx.Trace.String() || td.Link.SpanID != leaderCtx.Span.String() {
		t.Fatalf("link: %+v, want leader %v", td.Link, leaderCtx)
	}
}

func TestRingOverwriteAndFilters(t *testing.T) {
	tc := New(Config{Buffer: 4, Sample: 1})
	for i := 0; i < 10; i++ {
		tr := tc.Start("q", SpanContext{})
		tr.Root().SetInt("i", int64(i))
		if i%2 == 0 {
			tr.Finish(fmt.Errorf("err %d", i))
		} else {
			tr.Finish(nil)
		}
	}
	all := tc.Recent(Filter{})
	if len(all) != 4 {
		t.Fatalf("ring holds %d, want 4", len(all))
	}
	if all[0].Attrs["i"] != int64(9) || all[3].Attrs["i"] != int64(6) {
		t.Fatalf("order: %v %v", all[0].Attrs, all[3].Attrs)
	}
	errs := tc.Recent(Filter{ErrorsOnly: true})
	if len(errs) != 2 {
		t.Fatalf("errors-only: %d, want 2", len(errs))
	}
	limited := tc.Recent(Filter{Limit: 1})
	if len(limited) != 1 || limited[0].Attrs["i"] != int64(9) {
		t.Fatalf("limit: %+v", limited)
	}
	if st := tc.Stats(); st.Buffered != 4 {
		t.Fatalf("buffered = %d, want 4", st.Buffered)
	}
}

func TestNilTracerAndNilHandles(t *testing.T) {
	var tc *Tracer
	tr := tc.StartRequest(context.Background(), "q")
	if tr != nil {
		t.Fatal("nil tracer must yield nil trace")
	}
	// Every operation on nil handles must be a safe no-op.
	tr.Root().SetString("k", "v")
	sp := tr.StartSpan("s")
	sp.SetInt("k", 1)
	sp.End()
	tr.Record("r", time.Now(), time.Microsecond)
	tr.Link(SpanContext{})
	if out := tr.Finish(errors.New("x")); out.Retained {
		t.Fatal("nil trace retained")
	}
	if tc.Recent(Filter{}) != nil {
		t.Fatal("nil tracer returned traces")
	}
	if _, ok := tc.Get("x"); ok {
		t.Fatal("nil tracer get")
	}
	if st := tc.Stats(); st != (Stats{}) {
		t.Fatalf("nil tracer stats: %+v", st)
	}
	if tc.SlowThreshold() != 0 {
		t.Fatal("nil tracer slow threshold")
	}
}

func TestOnRetainHook(t *testing.T) {
	var mu sync.Mutex
	var got []*TraceData
	tc := New(Config{Sample: 1, OnRetain: func(td *TraceData) {
		mu.Lock()
		got = append(got, td)
		mu.Unlock()
	}})
	out := tc.Start("q", SpanContext{}).Finish(nil)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].TraceID != out.ID.String() {
		t.Fatalf("OnRetain: %+v", got)
	}
}

func TestConcurrentTraces(t *testing.T) {
	tc := New(Config{Buffer: 64, Sample: 1})
	var wg sync.WaitGroup
	seen := make(map[string]bool)
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := tc.Start("q", SpanContext{})
				tr.StartSpan("s").End()
				out := tr.Finish(nil)
				mu.Lock()
				if seen[out.ID.String()] {
					t.Errorf("duplicate trace id %s", out.ID)
				}
				seen[out.ID.String()] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if st := tc.Stats(); st.Started != 400 || st.Retained != 400 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestWarmPathZeroAlloc is the package-level half of the acceptance
// criterion: a full start → spans → attrs → finish cycle on a
// non-retained trace must not touch the heap once the pool is warm.
func TestWarmPathZeroAlloc(t *testing.T) {
	tc := New(Config{Slow: time.Hour, Sample: 0})
	start := time.Now()
	run := func() {
		tr := tc.Start("query", SpanContext{})
		tr.Root().SetString("measure", "rwr")
		tr.Root().SetInt("snapshot", -1)
		tr.Record("resolve", start, 3*time.Microsecond)
		sp := tr.StartSpan("solve")
		sp.SetInt("block_width", 4)
		sp.End()
		tr.Finish(nil)
	}
	run() // warm the pool
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Fatalf("allocs per non-retained trace = %v, want 0", n)
	}
}
