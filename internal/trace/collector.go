package trace

import (
	"sync"
	"time"
)

// TraceData is the immutable serialized form of a retained trace.
// Instances are shared between the ring, /v1/traces handlers, and
// OnRetain consumers — never mutate one after publication.
type TraceData struct {
	TraceID      string         `json:"trace_id"`
	SpanID       string         `json:"span_id"`
	Parent       string         `json:"parent_span_id,omitempty"`
	Name         string         `json:"name"`
	Start        time.Time      `json:"start"`
	DurationUS   float64        `json:"duration_us"`
	Reason       string         `json:"reason"`
	Error        string         `json:"error,omitempty"`
	Link         *LinkData      `json:"link,omitempty"`
	Attrs        map[string]any `json:"attrs,omitempty"`
	Spans        []SpanData     `json:"spans,omitempty"`
	DroppedSpans int            `json:"dropped_spans,omitempty"`
}

// LinkData points at work another trace performed on this trace's
// behalf (a coalesce leader's root span).
type LinkData struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// SpanData is one child span of a retained trace. Offsets are
// relative to the trace start so a span tree renders without clock
// arithmetic.
type SpanData struct {
	SpanID     string         `json:"span_id"`
	Name       string         `json:"name"`
	OffsetUS   float64        `json:"offset_us"`
	DurationUS float64        `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Filter selects retained traces from the ring.
type Filter struct {
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// ErrorsOnly keeps only traces finished with an error.
	ErrorsOnly bool
	// Limit caps the result count; <= 0 means no cap.
	Limit int
}

func (f Filter) match(td *TraceData) bool {
	if f.ErrorsOnly && td.Error == "" {
		return false
	}
	return td.DurationUS >= us(f.MinDuration)
}

// collector is a fixed-size overwrite-oldest ring of retained traces.
// Writes are rare (retained traces only), so one mutex is plenty.
type collector struct {
	mu  sync.Mutex
	buf []*TraceData
	n   uint64 // total ever retained; buf[(n-1) % len] is newest
}

func (c *collector) put(td *TraceData) {
	c.mu.Lock()
	c.buf[c.n%uint64(len(c.buf))] = td
	c.n++
	c.mu.Unlock()
}

func (c *collector) buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < uint64(len(c.buf)) {
		return int(c.n)
	}
	return len(c.buf)
}

func (c *collector) recent(f Filter) []*TraceData {
	c.mu.Lock()
	defer c.mu.Unlock()
	span := uint64(len(c.buf))
	if c.n < span {
		span = c.n
	}
	var out []*TraceData
	for i := uint64(0); i < span; i++ {
		td := c.buf[(c.n-1-i)%uint64(len(c.buf))]
		if !f.match(td) {
			continue
		}
		out = append(out, td)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

func (c *collector) get(id string) (*TraceData, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	span := uint64(len(c.buf))
	if c.n < span {
		span = c.n
	}
	// Newest-first scan: on ID collision across ring generations the
	// most recent trace wins, which is what a debugger wants.
	for i := uint64(0); i < span; i++ {
		if td := c.buf[(c.n-1-i)%uint64(len(c.buf))]; td.TraceID == id {
			return td, true
		}
	}
	return nil, false
}
