package measures

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sparse"
)

func smallEGS(t *testing.T) *graph.EGS {
	t.Helper()
	egs, err := gen.Synthetic(gen.SyntheticConfig{V: 120, EP: 1100, D: 4, K: 4, DeltaE: 10, T: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return egs
}

func TestSeriesMatchesPerSnapshotDirect(t *testing.T) {
	egs := smallEGS(t)
	const node = 5
	series, err := Series(egs, SeriesOptions{}, func(tt int, e *Engine) float64 {
		return e.PageRank()[node]
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != egs.Len() {
		t.Fatalf("series length %d, want %d", len(series), egs.Len())
	}
	// Oracle: fresh engine per snapshot.
	for tt, g := range egs.Snapshots {
		e, err := NewEngine(g, 0.85, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := e.PageRank()[node]
		if d := series[tt] - want; d > 1e-8 || d < -1e-8 {
			t.Fatalf("snapshot %d: series %v, direct %v", tt, series[tt], want)
		}
	}
}

func TestSeriesAlgorithmsAgree(t *testing.T) {
	egs := smallEGS(t)
	const node = 9
	fn := func(tt int, e *Engine) float64 { return e.RWR(2)[node] }
	ref, err := Series(egs, SeriesOptions{Algorithm: core.BF}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []core.Algorithm{core.INC, core.CINC, core.CLUDE} {
		got, err := Series(egs, SeriesOptions{Algorithm: alg}, fn)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if d := sparse.NormInfDiff(ref, got); d > 1e-7 {
			t.Errorf("%s series deviates from BF by %g", alg, d)
		}
	}
}

func TestVectorSeries(t *testing.T) {
	egs := smallEGS(t)
	vs, err := VectorSeries(egs, SeriesOptions{}, func(tt int, e *Engine) []float64 {
		return e.PageRank()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != egs.Len() || len(vs[0]) != egs.N() {
		t.Fatal("vector series shape wrong")
	}
}

func TestKeyMoments(t *testing.T) {
	series := []float64{1, 1, 1, 2, 2, 2, 1.9, 1.9}
	km := KeyMoments(series, 2)
	if len(km) != 2 || km[0] != 3 {
		t.Errorf("KeyMoments = %v, want [3 ...]", km)
	}
	if len(KeyMoments([]float64{1}, 3)) != 0 {
		t.Error("single-point series should have no moments")
	}
	if len(KeyMoments(nil, 3)) != 0 {
		t.Error("empty series should have no moments")
	}
}
