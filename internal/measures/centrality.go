package measures

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
)

// Katz returns the Katz centrality vector: x = Σ_{k≥1} (α·Aᵀ)^k·1,
// the weighted count of incoming walks of all lengths. It solves the
// linear system (I − α·Wᵀ)·x = α·Wᵀ·1 with W the raw adjacency matrix,
// so it exercises the same decomposition machinery as the random-walk
// measures but on an unnormalized kernel. α must satisfy α < 1/λ_max;
// for simplicity the implementation requires α·maxInDegree < 1, a
// sufficient condition that also keeps the matrix diagonally dominant.
func Katz(g *graph.Graph, alpha float64) ([]float64, error) {
	n := g.N()
	maxIn := maxInDegree(g)
	if maxIn > 0 && alpha >= 1/float64(maxIn) {
		return nil, fmt.Errorf("measures: Katz alpha %v too large (max in-degree %d)", alpha, maxIn)
	}
	// Rows of the system matrix: x(v) − α·Σ_{(u,v) edge} x(u) = b(v).
	c := sparse.NewCOO(n)
	b := make([]float64, n)
	for v := 0; v < n; v++ {
		c.Add(v, v, 1)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.OutNeighbors(u) {
			c.Add(v, u, -alpha)
			b[v] += alpha
		}
	}
	s, err := lu.FactorizeOrdered(c.ToCSR(), sparse.IdentityOrdering(n))
	if err != nil {
		return nil, err
	}
	return s.Solve(b), nil
}

// DefaultKatzAlpha returns the conventional attenuation for Katz on
// g: 0.85/maxInDegree, comfortably inside Katz's α·maxInDegree < 1
// convergence requirement (0.85 for an edgeless graph, where any
// α < 1 converges).
func DefaultKatzAlpha(g *graph.Graph) float64 {
	maxIn := maxInDegree(g)
	if maxIn == 0 {
		return 0.85
	}
	return 0.85 / float64(maxIn)
}

func maxInDegree(g *graph.Graph) int {
	maxIn := 0
	for v := 0; v < g.N(); v++ {
		if d := g.InDegree(v); d > maxIn {
			maxIn = d
		}
	}
	return maxIn
}

// HITS computes hub and authority scores by the classic mutual
// reinforcement iteration (Kleinberg). It is one of the §8 baselines:
// an iterative method that must re-run from scratch per snapshot,
// unlike the LU-backed measures. Returns (hubs, authorities,
// iterations).
func HITS(g *graph.Graph, tol float64, maxIter int) ([]float64, []float64, int) {
	n := g.N()
	hub := make([]float64, n)
	auth := make([]float64, n)
	for i := range hub {
		hub[i] = 1 / math.Sqrt(float64(n))
	}
	newAuth := make([]float64, n)
	newHub := make([]float64, n)
	for it := 1; it <= maxIter; it++ {
		for i := range newAuth {
			newAuth[i] = 0
		}
		for u := 0; u < n; u++ {
			hu := hub[u]
			for _, v := range g.OutNeighbors(u) {
				newAuth[v] += hu
			}
		}
		normalize(newAuth)
		for i := range newHub {
			newHub[i] = 0
		}
		for u := 0; u < n; u++ {
			s := 0.0
			for _, v := range g.OutNeighbors(u) {
				s += newAuth[v]
			}
			newHub[u] = s
		}
		normalize(newHub)
		diff := sparse.NormInfDiff(newHub, hub) + sparse.NormInfDiff(newAuth, auth)
		copy(hub, newHub)
		copy(auth, newAuth)
		if diff < tol {
			return hub, auth, it
		}
	}
	return hub, auth, maxIter
}

func normalize(x []float64) {
	n := sparse.Norm2(x)
	if n > 0 {
		sparse.Scale(x, 1/n)
	}
}

// Closeness returns the discounted-closeness centrality of every node:
// c(t) = n / Σ_v h_d(v→t) where h_d is the discounted hitting time to
// t. It is expensive (one DHT system per target) and provided for
// completeness of the measure library; TopKCloseness bounds the work.
func Closeness(g *graph.Graph, d float64, targets []int) (map[int]float64, error) {
	out := make(map[int]float64, len(targets))
	for _, t := range targets {
		h, err := DHT(g, d, t)
		if err != nil {
			return nil, err
		}
		sum := 0.0
		for _, v := range h {
			sum += v
		}
		if sum > 0 {
			out[t] = float64(g.N()) / sum
		}
	}
	return out, nil
}
