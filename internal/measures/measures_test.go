package measures

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	rng := xrand.New(1000)
	base := gen.BarabasiAlbert(rng, 200, 3)
	// Orient edges randomly to get a directed graph with cycles.
	var es []graph.Edge
	for _, e := range base.Edges() {
		es = append(es, graph.Edge{From: e.From, To: e.To})
		if rng.Float64() < 0.5 {
			es = append(es, graph.Edge{From: e.To, To: e.From})
		}
	}
	return graph.New(200, true, es)
}

func TestRWRIsDistribution(t *testing.T) {
	g := testGraph(t)
	e, err := NewEngine(g, 0.85, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := e.RWR(5)
	for i, v := range x {
		if v < -1e-12 {
			t.Fatalf("negative probability at %d: %v", i, v)
		}
	}
	// With the halting convention mass can leak at dangling nodes, but
	// the total must stay in (0, 1].
	s := sparse.Sum(x)
	if s <= 0 || s > 1+1e-9 {
		t.Errorf("RWR mass %v outside (0,1]", s)
	}
	// The seed must carry the largest score at reasonable damping.
	if TopK(x, 1)[0] != 5 {
		t.Errorf("seed is not the top RWR node")
	}
}

func TestRWRSatisfiesFixedPoint(t *testing.T) {
	// x = d·W·x + (1−d)·e_u (paper Eq. 1).
	g := testGraph(t)
	d := 0.8
	e, err := NewEngine(g, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := 17
	x := e.RWR(u)
	w := columnNormalized(g)
	rhs := w.MulVec(x)
	for i := range rhs {
		rhs[i] = d * rhs[i]
	}
	rhs[u] += 1 - d
	if diff := sparse.NormInfDiff(x, rhs); diff > 1e-9 {
		t.Errorf("fixed point violated: %g", diff)
	}
}

func TestPPRMatchesRWRSingleSeed(t *testing.T) {
	g := testGraph(t)
	e, err := NewEngine(g, 0.85, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := e.RWR(3)
	b := e.PPR([]int{3})
	if sparse.NormInfDiff(a, b) > 1e-12 {
		t.Error("PPR single seed != RWR")
	}
	if got := e.PPR(nil); sparse.Sum(got) != 0 {
		t.Error("empty seed PPR should be zero")
	}
}

func TestPPRSeedSetLinearity(t *testing.T) {
	// PPR over {a, b} = average of single-seed PPRs (linearity of the
	// solve in the right-hand side).
	g := testGraph(t)
	e, err := NewEngine(g, 0.85, nil)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := e.RWR(4), e.RWR(9)
	both := e.PPR([]int{4, 9})
	for i := range both {
		want := (pa[i] + pb[i]) / 2
		if math.Abs(both[i]-want) > 1e-10 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestPageRankProperties(t *testing.T) {
	g := testGraph(t)
	e, err := NewEngine(g, 0.85, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr := e.PageRank()
	if math.Abs(sparse.Sum(pr)-1) > 1e-9 {
		t.Errorf("PageRank sum %v != 1", sparse.Sum(pr))
	}
	for _, v := range pr {
		if v < -1e-12 {
			t.Error("negative PageRank")
		}
	}
	// The highest in-degree hub must outrank the lowest in-degree node
	// and the average score.
	hub, low, hubIn, lowIn := 0, 0, -1, 1<<30
	for v := 0; v < g.N(); v++ {
		if g.InDegree(v) > hubIn {
			hub, hubIn = v, g.InDegree(v)
		}
		if g.InDegree(v) < lowIn {
			low, lowIn = v, g.InDegree(v)
		}
	}
	if hub == low {
		t.Fatal("degenerate graph: hub == low")
	}
	if pr[hub] <= pr[low] {
		t.Errorf("hub PR %v not above low-degree PR %v", pr[hub], pr[low])
	}
	if pr[hub] <= 1/float64(g.N()) {
		t.Errorf("hub PR %v not above uniform", pr[hub])
	}
}

func TestPowerIterationAgreesWithDirect(t *testing.T) {
	g := testGraph(t)
	d := 0.85
	e, err := NewEngine(g, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := 11
	direct := e.RWR(u)
	pi, iters := PowerIterationRWR(g, d, u, 1e-12, 10000)
	if iters >= 10000 {
		t.Fatal("power iteration did not converge")
	}
	if diff := sparse.NormInfDiff(direct, pi); diff > 1e-8 {
		t.Errorf("PI disagrees with direct solve: %g", diff)
	}
}

func TestMonteCarloRoughlyAgrees(t *testing.T) {
	g := testGraph(t)
	d := 0.85
	e, err := NewEngine(g, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := 2
	direct := e.RWR(u)
	mc := MonteCarloRWR(g, d, u, 400, 100, xrand.New(42))
	// MC is noisy; require the top node to match and gross correlation.
	if TopK(mc, 1)[0] != TopK(direct, 1)[0] {
		t.Error("MC top node differs from direct solve")
	}
	var dot, na, nb float64
	for i := range direct {
		dot += direct[i] * mc[i]
		na += direct[i] * direct[i]
		nb += mc[i] * mc[i]
	}
	if corr := dot / math.Sqrt(na*nb); corr < 0.9 {
		t.Errorf("MC correlation %v too low", corr)
	}
}

func TestSolveFreshGEMatchesEngine(t *testing.T) {
	g := testGraph(t)
	e, err := NewEngine(g, 0.85, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.Basis(g.N(), 7, 0.15)
	want := e.Solver.Solve(b)
	got, err := SolveFreshGE(g, 0.85, b)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.NormInfDiff(got, want) > 1e-9 {
		t.Error("fresh GE disagrees with engine solve")
	}
}

func TestDHTProperties(t *testing.T) {
	g := testGraph(t)
	target := 3
	h, err := DHT(g, 0.9, target)
	if err != nil {
		t.Fatal(err)
	}
	if h[target] != 0 {
		t.Errorf("h(target) = %v, want 0", h[target])
	}
	// Every non-target node has h ≥ 1 (at least one step).
	for v, hv := range h {
		if v != target && hv < 1-1e-9 {
			t.Errorf("h(%d) = %v < 1", v, hv)
		}
	}
	// A direct predecessor of the target should have smaller hitting
	// time than the overall maximum.
	maxH, pred := 0.0, -1
	for v := range h {
		if h[v] > maxH {
			maxH = h[v]
		}
		if g.HasEdge(v, target) && pred == -1 {
			pred = v
		}
	}
	if pred >= 0 && h[pred] >= maxH {
		t.Error("direct predecessor not closer than max")
	}
}

func TestSALSAProperties(t *testing.T) {
	g := testGraph(t)
	x, err := SALSA(g, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sparse.Sum(x)-1) > 1e-9 {
		t.Errorf("SALSA sum %v != 1", sparse.Sum(x))
	}
	for _, v := range x {
		if v < -1e-12 {
			t.Error("negative SALSA score")
		}
	}
}

func TestTopKAndRanks(t *testing.T) {
	x := []float64{0.1, 0.5, 0.3, 0.5}
	top := TopK(x, 2)
	if top[0] != 1 || top[1] != 3 {
		t.Errorf("TopK = %v, want [1 3]", top)
	}
	r := Ranks(x)
	if r[1] != 1 || r[3] != 2 || r[2] != 3 || r[0] != 4 {
		t.Errorf("Ranks = %v", r)
	}
}

// TestTopKTieBreakAscending pins the tie rule: equal scores resolve by
// ascending node id at every k. The input is chosen so the old
// selection sort (which compared by score only, over an index array
// its own swaps had shuffled) emitted the value-3 ties as [2 0].
func TestTopKTieBreakAscending(t *testing.T) {
	x := []float64{3, 5, 3, 5}
	got := TopK(x, 4)
	want := []int{1, 3, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK(%v, 4) = %v, want %v", x, got, want)
		}
	}
	// Prefixes agree with the full ranking for every k.
	for k := 0; k <= 4; k++ {
		p := TopK(x, k)
		if len(p) != k {
			t.Fatalf("TopK k=%d returned %d entries", k, len(p))
		}
		for i := range p {
			if p[i] != want[i] {
				t.Fatalf("TopK k=%d = %v, not a prefix of %v", k, p, want)
			}
		}
	}
	r := Ranks(x)
	wantRanks := []int{3, 1, 4, 2}
	for i := range wantRanks {
		if r[i] != wantRanks[i] {
			t.Fatalf("Ranks(%v) = %v, want %v", x, r, wantRanks)
		}
	}
}

// TestSolverEngineWorkspaceVariants checks that the workspace-reusing
// query paths (the serving layer's hot path) are bit-identical to the
// allocating ones, including through a graph-free solver engine.
func TestSolverEngineWorkspaceVariants(t *testing.T) {
	g := testGraph(t)
	e, err := NewEngine(g, 0.85, nil)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSolverEngine(0.85, e.Solver)
	var ws lu.SolveWorkspace
	for u := 0; u < g.N(); u++ {
		a := e.RWR(u)
		b := se.RWRWith(u, &ws)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("RWRWith(%d) differs at %d: %v vs %v", u, i, a[i], b[i])
			}
		}
	}
	pa := e.PPR([]int{0, 2})
	pb := se.PPRWith([]int{0, 2}, &ws)
	ga := e.PageRank()
	gb := se.PageRankWith(&ws)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("PPRWith differs at %d", i)
		}
		if ga[i] != gb[i] {
			t.Fatalf("PageRankWith differs at %d", i)
		}
	}
	multi := se.MultiRWR([]int{1, 1, 3}, nil)
	one := e.RWR(1)
	three := e.RWR(3)
	for i := range one {
		if multi[0][i] != one[i] || multi[1][i] != one[i] || multi[2][i] != three[i] {
			t.Fatalf("MultiRWR differs at %d", i)
		}
	}
}

// TestTopKNaNSortsLast: NaN scores must sort after every real score
// (with ids ascending among themselves) — a bare > comparator is not
// a strict weak order under NaN and would scramble even the real
// entries input-dependently.
func TestTopKNaNSortsLast(t *testing.T) {
	nan := math.NaN()
	x := []float64{nan, 2, nan, 5, 2}
	got := TopK(x, 5)
	want := []int{3, 1, 4, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK with NaN = %v, want %v", got, want)
		}
	}
	r := Ranks(x)
	wantRanks := []int{4, 2, 5, 1, 3}
	for i := range wantRanks {
		if r[i] != wantRanks[i] {
			t.Fatalf("Ranks with NaN = %v, want %v", r, wantRanks)
		}
	}
}
