package measures

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/lu"
	"repro/internal/xrand"
)

// blockEngine builds a small engine for the blocked-path tests.
func blockEngine(t *testing.T) *Engine {
	t.Helper()
	egs, err := gen.WikiSim(gen.WikiConfig{
		N: 120, T: 1, InitialEdges: 360, FinalEdges: 360, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(egs.Snapshots[0], 0.85, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestMultiRWRIntoMatchesSingles: every row of the blocked answer must
// be bit-identical to the single-query path, dst capacity must be
// reused, and the workspace must be reusable across widths.
func TestMultiRWRIntoMatchesSingles(t *testing.T) {
	e := blockEngine(t)
	n := e.dim()
	rng := xrand.New(3)
	var bws lu.BlockWorkspace
	var sws lu.SolveWorkspace
	for _, k := range []int{1, 2, 7} {
		sources := make([]int, k)
		for i := range sources {
			sources[i] = rng.Intn(n)
		}
		dsts := make([][]float64, k)
		for r := range dsts {
			dsts[r] = make([]float64, 0, n)
		}
		got := e.MultiRWRInto(dsts, sources, &bws)
		for r, u := range sources {
			if &got[r][0] != &dsts[r][:1][0] {
				t.Errorf("k=%d row %d: dst capacity not reused", k, r)
			}
			want := e.RWRWith(u, &sws)
			for i := range want {
				if got[r][i] != want[i] {
					t.Fatalf("k=%d row %d differs at %d: %v vs %v", k, r, i, got[r][i], want[i])
				}
			}
		}
	}
	// nil dsts allocates.
	got := e.MultiRWRInto(nil, []int{1, 2}, &bws)
	want := e.RWRWith(2, &sws)
	for i := range want {
		if got[1][i] != want[i] {
			t.Fatalf("nil-dsts row differs at %d", i)
		}
	}
}

// TestPPRBatchMatchesSingles covers seed sets with duplicates (which
// must accumulate, like PPRWith) and an empty set (which must stay the
// zero vector without poisoning its block neighbors).
func TestPPRBatchMatchesSingles(t *testing.T) {
	e := blockEngine(t)
	sets := [][]int{
		{3, 7, 7, 40},
		{},
		{0},
		{5, 5, 5},
	}
	var bws lu.BlockWorkspace
	var sws lu.SolveWorkspace
	got := e.PPRBatch(nil, sets, &bws)
	for r, seeds := range sets {
		want := e.PPRWith(seeds, &sws)
		for i := range want {
			if got[r][i] != want[i] {
				t.Fatalf("set %d differs at %d: %v vs %v", r, i, got[r][i], want[i])
			}
		}
	}
}
