package measures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lu"
)

// SeriesOptions configures a measure-series computation over an EGS.
type SeriesOptions struct {
	// Damping is the restart parameter d of the walk measures.
	Damping float64
	// Algorithm selects the LUDEM solver (default CLUDE).
	Algorithm core.Algorithm
	// Alpha is the clustering threshold for CINC/CLUDE (default 0.95).
	Alpha float64
}

func (o *SeriesOptions) defaults() {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Algorithm == "" {
		o.Algorithm = core.CLUDE
	}
	if o.Alpha == 0 {
		o.Alpha = 0.95
	}
}

// Series evaluates fn on every snapshot of the EGS, with LU factors
// provided by the selected LUDEM algorithm, and returns the per-
// snapshot values. This is the high-level entry point for the paper's
// motivating workloads (Examples 1–3): measure time series over an
// evolving graph sequence.
func Series(egs *graph.EGS, opt SeriesOptions, fn func(t int, e *Engine) float64) ([]float64, error) {
	opt.defaults()
	ems := graph.DeriveEMS(egs, graph.RWRMatrix(opt.Damping))
	out := make([]float64, egs.Len())
	_, err := core.Run(ems, opt.Algorithm, core.Options{
		Alpha: opt.Alpha,
		OnFactors: func(t int, s *lu.Solver) {
			out[t] = fn(t, NewEngineFromSolver(egs.Snapshots[t], opt.Damping, s))
		},
	})
	if err != nil {
		return nil, fmt.Errorf("measures: series: %w", err)
	}
	return out, nil
}

// VectorSeries is Series for vector-valued measures (one full score
// vector per snapshot, e.g. a PageRank series for all nodes).
func VectorSeries(egs *graph.EGS, opt SeriesOptions, fn func(t int, e *Engine) []float64) ([][]float64, error) {
	opt.defaults()
	ems := graph.DeriveEMS(egs, graph.RWRMatrix(opt.Damping))
	out := make([][]float64, egs.Len())
	_, err := core.Run(ems, opt.Algorithm, core.Options{
		Alpha: opt.Alpha,
		OnFactors: func(t int, s *lu.Solver) {
			out[t] = fn(t, NewEngineFromSolver(egs.Snapshots[t], opt.Damping, s))
		},
	})
	if err != nil {
		return nil, fmt.Errorf("measures: vector series: %w", err)
	}
	return out, nil
}

// KeyMoments returns the snapshot indices of the k largest relative
// day-over-day changes of a series — the paper's "key moments" at
// which an analyst would zoom in (Example 1).
func KeyMoments(series []float64, k int) []int {
	type m struct {
		t    int
		jump float64
	}
	var ms []m
	for t := 1; t < len(series); t++ {
		prev := series[t-1]
		if prev != 0 {
			d := (series[t] - prev) / prev
			if d < 0 {
				d = -d
			}
			ms = append(ms, m{t, d})
		}
	}
	// Selection sort for the top k (k is small).
	if k > len(ms) {
		k = len(ms)
	}
	out := make([]int, 0, k)
	for a := 0; a < k; a++ {
		best := a
		for b := a + 1; b < len(ms); b++ {
			if ms[b].jump > ms[best].jump {
				best = b
			}
		}
		ms[a], ms[best] = ms[best], ms[a]
		out = append(out, ms[a].t)
	}
	return out
}
