// Package measures computes the graph structural measures the paper
// motivates — PageRank, Personalized PageRank (PPR), Random Walk with
// Restart (RWR), SALSA, and Discounted Hitting Time (DHT) — through
// the linear-system formulation A·x = b with A = I − d·W (paper §1).
// Once A is LU-decomposed, every measure query is a forward/backward
// substitution on the factors, which is the whole point of solving the
// LUDEM problem.
//
// The package also implements the approximation baselines the paper
// compares against in §8: power iteration (PI) and Monte Carlo random
// walks (MC), plus the solve-from-scratch baseline (a fresh sparse
// Gaussian elimination per query) used for the "LU-decomposed solving
// is ~5000× faster than one GE" claim of §1.
package measures

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// Engine wraps a snapshot graph with the LU factors of its RWR matrix
// A = I − d·W, ready to answer measure queries.
type Engine struct {
	G      *graph.Graph
	D      float64
	Solver *lu.Solver
}

// NewEngine derives A = I − d·W from g, orders it (Markowitz ordering
// supplied by the caller via solver construction is also possible; this
// convenience uses the natural ordering of lu.FactorizeOrdered when
// ord is nil).
func NewEngine(g *graph.Graph, d float64, ord *sparse.Ordering) (*Engine, error) {
	a := graph.RWRMatrix(d)(g)
	o := sparse.IdentityOrdering(g.N())
	if ord != nil {
		o = *ord
	}
	s, err := lu.FactorizeOrdered(a, o)
	if err != nil {
		return nil, fmt.Errorf("measures: %w", err)
	}
	return &Engine{G: g, D: d, Solver: s}, nil
}

// NewEngineFromSolver wraps factors that were produced elsewhere (for
// example streamed out of a core.Run over an EMS).
func NewEngineFromSolver(g *graph.Graph, d float64, s *lu.Solver) *Engine {
	return &Engine{G: g, D: d, Solver: s}
}

// NewSolverEngine wraps retained factors with no snapshot graph
// attached. The solver-backed measures (RWR, PPR, PageRank) need only
// the system dimension, so a serving layer that pins solvers — not
// graphs — per snapshot can still answer them. Graph-dependent
// measures (DHT, SALSA, …) are package functions taking the graph
// explicitly and are unaffected.
func NewSolverEngine(d float64, s *lu.Solver) *Engine {
	return &Engine{D: d, Solver: s}
}

// dim returns the system dimension, from the graph when one is
// attached and from the factors otherwise.
func (e *Engine) dim() int {
	if e.G != nil {
		return e.G.N()
	}
	return e.Solver.F.Dim()
}

// RWR returns the stationary distribution of a random walk with
// restart from node u (paper Eq. 1): solves A·x = (1−d)·e_u.
func (e *Engine) RWR(u int) []float64 {
	return e.RWRWith(u, nil)
}

// RWRWith is RWR with caller-owned solve scratch (nil ws allocates).
// Query-serving workers keep one workspace each and pass it here so
// the per-query cost is one result allocation plus the substitution.
func (e *Engine) RWRWith(u int, ws *lu.SolveWorkspace) []float64 {
	b := sparse.Basis(e.dim(), u, 1-e.D)
	return e.solve(b, ws)
}

// PPR returns the Personalized PageRank for a seed set with uniform
// seed mass: solves A·x = (1−d)·q where q is uniform over seeds.
func (e *Engine) PPR(seeds []int) []float64 {
	return e.PPRWith(seeds, nil)
}

// PPRWith is PPR with caller-owned solve scratch (nil ws allocates).
func (e *Engine) PPRWith(seeds []int, ws *lu.SolveWorkspace) []float64 {
	n := e.dim()
	b := make([]float64, n)
	if len(seeds) == 0 {
		return b
	}
	w := (1 - e.D) / float64(len(seeds))
	for _, s := range seeds {
		// Accumulate so a repeated seed weighs proportionally instead
		// of silently dropping restart mass.
		b[s] += w
	}
	return e.solve(b, ws)
}

// PageRank returns the global PageRank vector: PPR with a uniform
// restart over all nodes. Dangling mass is handled by the halting
// convention of graph.RWRMatrix (the score vector is normalized to sum
// to 1 before returning, the usual practical fix).
func (e *Engine) PageRank() []float64 {
	return e.PageRankWith(nil)
}

// PageRankWith is PageRank with caller-owned solve scratch (nil ws
// allocates).
func (e *Engine) PageRankWith(ws *lu.SolveWorkspace) []float64 {
	n := e.dim()
	b := make([]float64, n)
	for i := range b {
		b[i] = (1 - e.D) / float64(n)
	}
	x := e.solve(b, ws)
	if s := sparse.Sum(x); s > 0 {
		sparse.Scale(x, 1/s)
	}
	return x
}

// MultiRWR answers RWR from every source through one workspace — the
// batched multi-source path: the factors are reused across all solves
// and the O(n) scratch is allocated once. Row i of the result is
// RWR(sources[i]).
func (e *Engine) MultiRWR(sources []int, ws *lu.SolveWorkspace) [][]float64 {
	if ws == nil {
		ws = &lu.SolveWorkspace{}
	}
	out := make([][]float64, len(sources))
	for i, u := range sources {
		out[i] = e.RWRWith(u, ws)
	}
	return out
}

// solve dispatches to the workspace path when scratch is supplied.
func (e *Engine) solve(b []float64, ws *lu.SolveWorkspace) []float64 {
	if ws != nil {
		return e.Solver.SolveWith(b, ws)
	}
	return e.Solver.Solve(b)
}

// DHT returns the d-discounted hitting time from every node to target
// t: h satisfies h(t) = 0 and h(v) = 1 + d·Σ_w P(v,w)·h(w) for v ≠ t
// (paper ref. [14]). It is computed by solving a system on the same
// factors via the rank-1 structure of the target constraint:
// solving (I − d·Wᵀ_{-t}) h = 1_{-t} directly would need a different
// matrix, so DHT assembles its own small system per target.
func DHT(g *graph.Graph, d float64, t int) ([]float64, error) {
	n := g.N()
	c := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
	}
	for v := 0; v < n; v++ {
		if v == t {
			continue
		}
		out := g.OutNeighbors(v)
		if len(out) == 0 {
			continue
		}
		w := d / float64(len(out))
		for _, x := range out {
			if x != t {
				// Row v: h(v) − d·Σ P(v,w)·h(w) = 1; transition into t
				// contributes 0 because h(t) = 0.
				c.Add(v, x, -w)
			}
		}
	}
	a := c.ToCSR()
	s, err := lu.FactorizeOrdered(a, sparse.IdentityOrdering(n))
	if err != nil {
		return nil, err
	}
	b := make([]float64, n)
	for i := range b {
		if i != t {
			b[i] = 1
		}
	}
	h := s.Solve(b)
	h[t] = 0
	return h, nil
}

// SALSA returns damped SALSA authority scores: the stationary
// distribution of the two-step authority chain (follow a link
// backwards to a hub, then forwards to an authority), damped with
// restart probability 1−d to keep the chain irreducible. The two-step
// transition matrix M = W_c·W_r is materialized sparsely and the score
// solves (I − d·M)·x = (1−d)/n·1.
func SALSA(g *graph.Graph, d float64) ([]float64, error) {
	n := g.N()
	// W_r: row-normalized adjacency (hub step, backwards from
	// authority to hub is modelled by the transpose structure below).
	// Build column-normalized W (authority step) and row-normalized
	// transpose (hub step) and multiply.
	wc := sparse.NewCOO(n) // W_c(j,i) = 1/outdeg(i) for edge (i,j)
	wr := sparse.NewCOO(n) // W_r(i,j) = 1/indeg(j)  for edge (i,j)
	for i := 0; i < n; i++ {
		out := g.OutNeighbors(i)
		if len(out) == 0 {
			continue
		}
		ow := 1 / float64(len(out))
		for _, j := range out {
			wc.Add(j, i, ow)
			wr.Add(i, j, 1/float64(g.InDegree(j)))
		}
	}
	m := wc.ToCSR().Mul(wr.ToCSR()) // authority-to-authority chain
	c := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
	}
	for i := 0; i < n; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if vals[k] != 0 {
				c.Add(i, j, -d*vals[k])
			}
		}
	}
	a := c.ToCSR()
	s, err := lu.FactorizeOrdered(a, sparse.IdentityOrdering(n))
	if err != nil {
		return nil, err
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = (1 - d) / float64(n)
	}
	x := s.Solve(b)
	if sum := sparse.Sum(x); sum > 0 {
		sparse.Scale(x, 1/sum)
	}
	return x, nil
}

// PowerIterationRWR approximates the RWR vector from u by iterating
// x ← d·W·x + (1−d)·e_u until the 1-norm change drops below tol or
// maxIter is reached. Returns the vector and the iterations used.
func PowerIterationRWR(g *graph.Graph, d float64, u int, tol float64, maxIter int) ([]float64, int) {
	n := g.N()
	w := columnNormalized(g)
	x := sparse.Basis(n, u, 1.0)
	q := sparse.Basis(n, u, 1-d)
	for it := 1; it <= maxIter; it++ {
		nx := w.MulVec(x)
		diff := 0.0
		for i := range nx {
			nx[i] = d*nx[i] + q[i]
			diff += abs(nx[i] - x[i])
		}
		x = nx
		if diff < tol {
			return x, it
		}
	}
	return x, maxIter
}

// MonteCarloRWR approximates the RWR vector from u by simulating walks
// restarting at u with probability 1−d per step; visit frequencies
// estimate the stationary distribution.
func MonteCarloRWR(g *graph.Graph, d float64, u int, walks, maxSteps int, rng *xrand.Rand) []float64 {
	n := g.N()
	visits := make([]float64, n)
	total := 0.0
	for w := 0; w < walks; w++ {
		cur := u
		for s := 0; s < maxSteps; s++ {
			visits[cur]++
			total++
			if rng.Float64() >= d {
				cur = u
				continue
			}
			out := g.OutNeighbors(cur)
			if len(out) == 0 {
				cur = u // halt convention: restart from the seed
				continue
			}
			cur = out[rng.Intn(len(out))]
		}
	}
	if total > 0 {
		sparse.Scale(visits, 1/total)
	}
	return visits
}

// SolveFreshGE answers one query by a from-scratch sparse Gaussian
// elimination (full LU factorization) followed by a solve — the
// "repeatedly applying GE for each input b" strawman of §1. Used only
// by the tblSolve experiment.
func SolveFreshGE(g *graph.Graph, d float64, b []float64) ([]float64, error) {
	a := graph.RWRMatrix(d)(g)
	s, err := lu.FactorizeOrdered(a, sparse.IdentityOrdering(g.N()))
	if err != nil {
		return nil, err
	}
	return s.Solve(b), nil
}

// columnNormalized builds W with W(j,i) = 1/outdeg(i) per edge (i,j).
func columnNormalized(g *graph.Graph) *sparse.CSR {
	c := sparse.NewCOO(g.N())
	for i := 0; i < g.N(); i++ {
		out := g.OutNeighbors(i)
		if len(out) == 0 {
			continue
		}
		w := 1 / float64(len(out))
		for _, j := range out {
			c.Add(j, i, w)
		}
	}
	return c.ToCSR()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TopK returns the indices of the k largest entries of x in descending
// score order; equal scores resolve by ascending node id. The tie rule
// is part of the contract: serving-layer tests compare cached and
// fresh responses for equality, which needs a total, input-independent
// order (the previous selection sort left ties in whatever order its
// swaps had shuffled the index array into).
func TopK(x []float64, k int) []int {
	idx := rankedIndices(x)
	if k > len(idx) {
		k = len(idx)
	}
	if k < 0 {
		k = 0
	}
	return idx[:k]
}

// Ranks converts scores into 1-based ranks (highest score → rank 1;
// equal scores rank by ascending node id, matching TopK).
func Ranks(x []float64) []int {
	idx := rankedIndices(x)
	ranks := make([]int, len(x))
	for r, i := range idx {
		ranks[i] = r + 1
	}
	return ranks
}

// rankedIndices sorts all indices by (score descending, id ascending).
// NaN scores sort after every real score (and by id among themselves):
// a bare `>` comparator is not a strict weak order in their presence,
// and sort.Slice would then place even the non-NaN elements in
// input-dependent positions.
func rankedIndices(x []float64) []int {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		xa, xb := x[idx[a]], x[idx[b]]
		an, bn := math.IsNaN(xa), math.IsNaN(xb)
		if an != bn {
			return bn
		}
		if !an && xa != xb {
			return xa > xb
		}
		return idx[a] < idx[b]
	})
	return idx
}
