package measures

import (
	"repro/internal/lu"
)

// Blocked measure paths on top of lu.Solver.SolveBlock: one traversal
// of the factors answers a whole batch of queries. Like every fast
// path in this codebase they are bit-identical to their single-query
// counterparts — MultiRWRInto to a loop of RWRWith calls, PPRBatch to
// a loop of PPRWith calls — because the right-hand sides are built by
// the same formulas and the blocked substitution executes each
// vector's floating-point operations in the single-solve order.

// MultiRWRInto answers RWR from every source through one blocked
// solve, writing RWR(sources[r]) into dsts[r] (capacity reused; nil
// entries or a nil dsts allocate). Row r is bit-identical to
// RWRWith(sources[r]).
func (e *Engine) MultiRWRInto(dsts [][]float64, sources []int, ws *lu.BlockWorkspace) [][]float64 {
	n := e.dim()
	if dsts == nil {
		dsts = make([][]float64, len(sources))
	}
	// Build each basis right-hand side in its own dst: SolveBlock
	// tolerates full aliasing, so the batch needs no extra vectors
	// beyond the workspace.
	for r, u := range sources {
		dsts[r] = zeroed(dsts[r], n)
		dsts[r][u] = 1 - e.D
	}
	return e.Solver.SolveBlock(dsts, dsts, ws)
}

// PPRBatch answers Personalized PageRank for every seed set through
// one blocked solve, writing PPR(seedSets[r]) into dsts[r] (capacity
// reused; nil entries or a nil dsts allocate). Row r is bit-identical
// to PPRWith(seedSets[r]). An empty seed set yields the zero vector,
// matching PPRWith.
func (e *Engine) PPRBatch(dsts [][]float64, seedSets [][]int, ws *lu.BlockWorkspace) [][]float64 {
	n := e.dim()
	if dsts == nil {
		dsts = make([][]float64, len(seedSets))
	}
	for r, seeds := range seedSets {
		b := zeroed(dsts[r], n)
		w := (1 - e.D) / float64(len(seeds))
		for _, s := range seeds {
			// Accumulate, exactly as PPRWith: a repeated seed weighs
			// proportionally.
			b[s] += w
		}
		dsts[r] = b
	}
	// Empty seed sets must stay exact zero vectors rather than go
	// through a division by zero; solve only the non-empty rows.
	// (A·0 = 0 would hold numerically too, but PPRWith never solves.)
	rows := dsts[:0:0]
	for r, seeds := range seedSets {
		if len(seeds) > 0 {
			rows = append(rows, dsts[r])
		}
	}
	if len(rows) > 0 {
		e.Solver.SolveBlock(rows, rows, ws)
	}
	return dsts
}
