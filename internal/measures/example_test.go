package measures_test

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/measures"
)

// ExampleSeries computes a PageRank time series over a small evolving
// graph sequence: page 0 steadily gains in-links, so its score must
// rise snapshot over snapshot. Under the hood, Series runs CLUDE over
// the derived matrix sequence and answers each snapshot's query from
// streamed LU factors.
func ExampleSeries() {
	snapshot := func(extra ...graph.Edge) *graph.Graph {
		edges := append([]graph.Edge{
			{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0},
			{From: 3, To: 4}, {From: 4, To: 2},
		}, extra...)
		return graph.New(5, true, edges)
	}
	egs, err := graph.NewEGS([]*graph.Graph{
		snapshot(),
		snapshot(graph.Edge{From: 3, To: 0}),
		snapshot(graph.Edge{From: 3, To: 0}, graph.Edge{From: 4, To: 0}),
	})
	if err != nil {
		log.Fatal(err)
	}

	series, err := measures.Series(egs, measures.SeriesOptions{}, func(t int, e *measures.Engine) float64 {
		return e.PageRank()[0]
	})
	if err != nil {
		log.Fatal(err)
	}
	for t := 1; t < len(series); t++ {
		fmt.Printf("snapshot %d: page 0 gained PageRank: %v\n", t, series[t] > series[t-1])
	}
	// Output:
	// snapshot 1: page 0 gained PageRank: true
	// snapshot 2: page 0 gained PageRank: true
}
