package measures

import (
	"math"
	"testing"

	"repro/internal/lu"
	"repro/internal/xrand"
)

// sparseTestEngine builds an engine over the shared directed test
// graph with a non-trivial reach structure.
func sparseTestEngine(t *testing.T) *Engine {
	t.Helper()
	g := testGraph(t)
	e, err := NewEngine(g, 0.85, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// assertSparseEqualsDense checks the SparseScores contract against a
// dense reference vector.
func assertSparseEqualsDense(t *testing.T, sp SparseScores, dense []float64) {
	t.Helper()
	if sp.N != len(dense) {
		t.Fatalf("sparse N = %d, dense %d", sp.N, len(dense))
	}
	on := make([]bool, sp.N)
	for k, u := range sp.Idx {
		on[u] = true
		if sp.Val[k] != dense[u] {
			t.Fatalf("score[%d] = %v sparse vs %v dense", u, sp.Val[k], dense[u])
		}
	}
	for u, v := range dense {
		if !on[u] && v != 0 {
			t.Fatalf("dense score[%d] = %v off the sparse support", u, v)
		}
	}
}

func TestRWRSparseMatchesDense(t *testing.T) {
	e := sparseTestEngine(t)
	var ws lu.SparseSolveWorkspace
	for u := 0; u < e.dim(); u += 17 {
		sp, ok := e.RWRSparse(u, 1, &ws) // frac >= 1: never fall back
		if !ok {
			t.Fatalf("uncapped RWRSparse(%d) fell back", u)
		}
		dense := e.RWR(u)
		assertSparseEqualsDense(t, sp, dense)

		// Dense() must reproduce the dense vector bit for bit.
		full := sp.Dense(nil)
		for i := range dense {
			if full[i] != dense[i] {
				t.Fatalf("Dense()[%d] = %v, want %v", i, full[i], dense[i])
			}
		}
	}
}

func TestPPRSparseMatchesDense(t *testing.T) {
	e := sparseTestEngine(t)
	var ws lu.SparseSolveWorkspace
	cases := [][]int{{3}, {3, 50, 120}, {7, 7, 7}, {}}
	for _, seeds := range cases {
		sp, ok := e.PPRSparse(seeds, 1, &ws)
		if !ok {
			t.Fatalf("uncapped PPRSparse(%v) fell back", seeds)
		}
		assertSparseEqualsDense(t, sp, e.PPR(seeds))
	}
}

func TestSparseFallbackHeuristic(t *testing.T) {
	e := sparseTestEngine(t)
	var ws lu.SparseSolveWorkspace
	// The scale-free test graph is one big component: from a hub the
	// reach is nearly everything, so a tiny cap must trigger fallback.
	sp, ok := e.RWRSparse(0, 1, &ws)
	if !ok {
		t.Fatal("uncapped solve fell back")
	}
	frac := sp.ReachFraction()
	if frac == 0 {
		t.Fatal("zero reach fraction")
	}
	if _, ok := e.RWRSparse(0, frac/2, &ws); ok {
		t.Fatalf("cap %.3f below reach %.3f did not fall back", frac/2, frac)
	}
	// A seed set larger than the cap allows skips the probe entirely.
	big := make([]int, e.dim()/2)
	for i := range big {
		big[i] = i
	}
	if _, ok := e.PPRSparse(big, 0.001, &ws); ok {
		t.Fatal("oversized seed set did not fall back")
	}
}

func TestTopKAndRanksSparseMatchDense(t *testing.T) {
	e := sparseTestEngine(t)
	var ws lu.SparseSolveWorkspace
	n := e.dim()
	rng := xrand.New(12)
	for trial := 0; trial < 10; trial++ {
		u := rng.Intn(n)
		sp, ok := e.RWRSparse(u, 1, &ws)
		if !ok {
			t.Fatal("uncapped solve fell back")
		}
		dense := e.RWR(u)
		for _, k := range []int{0, 1, 5, len(sp.Idx), len(sp.Idx) + 7, n, n + 3} {
			wantNodes := TopK(dense, k)
			gotNodes, gotScores := TopKSparse(sp, k)
			if len(gotNodes) != len(wantNodes) {
				t.Fatalf("k=%d: %d nodes, want %d", k, len(gotNodes), len(wantNodes))
			}
			for i := range wantNodes {
				if gotNodes[i] != wantNodes[i] {
					t.Fatalf("k=%d node[%d] = %d, want %d", k, i, gotNodes[i], wantNodes[i])
				}
				if gotScores[i] != dense[wantNodes[i]] {
					t.Fatalf("k=%d score[%d] = %v, want %v", k, i, gotScores[i], dense[wantNodes[i]])
				}
			}
		}
		wantRanks := Ranks(dense)
		gotRanks := RanksSparse(sp)
		for i := range wantRanks {
			if gotRanks[i] != wantRanks[i] {
				t.Fatalf("rank[%d] = %d, want %d", i, gotRanks[i], wantRanks[i])
			}
		}
	}
}

func TestTopKSparseNaNAndNegative(t *testing.T) {
	// Synthetic supports exercising the comparator edges the RWR path
	// never produces: negative scores rank below the implicit zeros,
	// NaN after everything.
	sp := SparseScores{
		N:   8,
		Idx: []int{1, 3, 5, 6},
		Val: []float64{2, -1, math.NaN(), 0},
	}
	dense := make([]float64, sp.N)
	for k, u := range sp.Idx {
		dense[u] = sp.Val[k]
	}
	wantNodes := TopK(dense, sp.N)
	gotNodes, _ := TopKSparse(sp, sp.N)
	for i := range wantNodes {
		if gotNodes[i] != wantNodes[i] {
			t.Fatalf("node[%d] = %d, want %d (got %v want %v)", i, gotNodes[i], wantNodes[i], gotNodes, wantNodes)
		}
	}
	wantRanks := Ranks(dense)
	gotRanks := RanksSparse(sp)
	for i := range wantRanks {
		if gotRanks[i] != wantRanks[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, gotRanks[i], wantRanks[i])
		}
	}
}

func TestIntoVariantsMatchWith(t *testing.T) {
	e := sparseTestEngine(t)
	var ws lu.SolveWorkspace
	n := e.dim()
	buf := make([]float64, 0, n)

	wantRWR := e.RWRWith(9, &ws)
	buf = e.RWRInto(buf, 9, &ws)
	for i := range wantRWR {
		if buf[i] != wantRWR[i] {
			t.Fatalf("RWRInto[%d] = %v, want %v", i, buf[i], wantRWR[i])
		}
	}

	seeds := []int{4, 9, 4}
	wantPPR := e.PPRWith(seeds, &ws)
	buf = e.PPRInto(buf, seeds, &ws) // reuse dirty buffer on purpose
	for i := range wantPPR {
		if buf[i] != wantPPR[i] {
			t.Fatalf("PPRInto[%d] = %v, want %v", i, buf[i], wantPPR[i])
		}
	}

	wantPR := e.PageRankWith(&ws)
	buf = e.PageRankInto(buf, &ws)
	for i := range wantPR {
		if buf[i] != wantPR[i] {
			t.Fatalf("PageRankInto[%d] = %v, want %v", i, buf[i], wantPR[i])
		}
	}
}
