package measures

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/sparse"
)

func TestKatzMatchesTruncatedSum(t *testing.T) {
	g := testGraph(t)
	alpha := 0.02
	got, err := Katz(g, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: truncated power series Σ_{k=1..K} (αWᵀ)^k · 1.
	n := g.N()
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	cur := append([]float64(nil), ones...)
	sum := make([]float64, n)
	for k := 0; k < 60; k++ {
		next := make([]float64, n)
		for u := 0; u < n; u++ {
			for _, v := range g.OutNeighbors(u) {
				next[v] += alpha * cur[u]
			}
		}
		for i := range sum {
			sum[i] += next[i]
		}
		cur = next
	}
	if d := sparse.NormInfDiff(got, sum); d > 1e-9 {
		t.Errorf("Katz vs truncated series diff %g", d)
	}
}

func TestKatzRejectsLargeAlpha(t *testing.T) {
	g := testGraph(t)
	if _, err := Katz(g, 1.0); err == nil {
		t.Error("alpha=1 accepted")
	}
}

func TestKatzHigherForPopularNodes(t *testing.T) {
	// Star graph: center receives from all leaves.
	n := 10
	var es []graph.Edge
	for i := 1; i < n; i++ {
		es = append(es, graph.Edge{From: i, To: 0})
	}
	g := graph.New(n, true, es)
	x, err := Katz(g, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if x[0] <= x[i] {
			t.Fatalf("center Katz %v not above leaf %v", x[0], x[i])
		}
	}
}

func TestHITSStarGraph(t *testing.T) {
	// Leaves → center: center is the authority, leaves are hubs.
	n := 8
	var es []graph.Edge
	for i := 1; i < n; i++ {
		es = append(es, graph.Edge{From: i, To: 0})
	}
	g := graph.New(n, true, es)
	hub, auth, iters := HITS(g, 1e-12, 500)
	if iters >= 500 {
		t.Fatal("HITS did not converge")
	}
	if auth[0] < 0.99 {
		t.Errorf("center authority %v, want ≈ 1", auth[0])
	}
	if hub[0] > 1e-9 {
		t.Errorf("center hub %v, want ≈ 0", hub[0])
	}
	for i := 1; i < n; i++ {
		if math.Abs(hub[i]-hub[1]) > 1e-9 {
			t.Error("leaf hubs should be equal")
		}
	}
}

func TestHITSConvergesOnRandomGraph(t *testing.T) {
	g := testGraph(t)
	hub, auth, iters := HITS(g, 1e-10, 1000)
	if iters >= 1000 {
		t.Fatal("HITS did not converge")
	}
	if math.Abs(sparse.Norm2(hub)-1) > 1e-9 || math.Abs(sparse.Norm2(auth)-1) > 1e-9 {
		t.Error("HITS vectors not normalized")
	}
}

func TestClosenessOrdering(t *testing.T) {
	// Path 0→1→2→3: node 3 reachable from everywhere (long walks);
	// closeness of 1 should beat closeness of 3's predecessor being
	// farther... use a simple sanity: all values positive, computed for
	// requested targets only.
	g := graph.New(4, true, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}})
	c, err := Closeness(g, 0.9, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 {
		t.Fatalf("got %d closeness values, want 2", len(c))
	}
	for tgt, v := range c {
		if v <= 0 {
			t.Errorf("closeness(%d) = %v, want > 0", tgt, v)
		}
	}
	// Node 1 is directly reachable from 0 and on every path: its total
	// hitting time is smaller than node 3's (end of the chain).
	if c[1] <= c[3] {
		t.Errorf("closeness(1)=%v should exceed closeness(3)=%v", c[1], c[3])
	}
}
