package measures

import (
	"math"
	"sort"

	"repro/internal/lu"
)

// This file is the measure-level face of the reach-based sparse solve
// path (internal/lu.Solver.SolveSparse): single-seed RWR and
// small-seed-set PPR right-hand sides reach only a fraction of the
// rows of clustered, low-fill factors, so the fast paths here answer
// in time proportional to that reach instead of n — and TopK/Ranks can
// be fed straight from the sparse support without ever materializing
// the full score vector.

// DefaultReachFraction is the reach-fraction threshold above which the
// sparse fast paths fall back to the dense solve. Past roughly a
// quarter of the rows, the dense loops' sequential array sweeps beat
// the sparse path's index indirection, so chasing the reach further
// buys nothing (the "sparsesolve" bench experiment plots the
// crossover; tune per deployment via the callers' maxFrac argument).
const DefaultReachFraction = 0.25

// SparseScores is a measure result restricted to its support: Val[k]
// is the score of node Idx[k] and every node not listed scores exactly
// zero. N is the full dimension. The slices alias solve-workspace
// storage and stay valid until the workspace's next solve.
type SparseScores struct {
	N   int
	Idx []int
	Val []float64
}

// ReachFraction returns |support| / n, the quantity the dense-fallback
// heuristic thresholds and the serving layer reports in its stats.
func (sp SparseScores) ReachFraction() float64 {
	if sp.N == 0 {
		return 0
	}
	return float64(len(sp.Idx)) / float64(sp.N)
}

// Dense scatters the sparse scores into a full vector, reusing dst's
// capacity when possible (nil allocates). The result is bit-identical
// to the dense path's vector: on-support values are bit-equal by the
// SolveSparse contract and every off-support position is zero.
func (sp SparseScores) Dense(dst []float64) []float64 {
	if cap(dst) < sp.N {
		dst = make([]float64, sp.N)
	} else {
		dst = dst[:sp.N]
		for i := range dst {
			dst[i] = 0
		}
	}
	for k, u := range sp.Idx {
		dst[u] = sp.Val[k]
	}
	return dst
}

// reachCap translates a fraction-of-n threshold into the row cap
// SolveSparse aborts at. frac <= 0 selects DefaultReachFraction;
// frac >= 1 disables the fallback (unlimited reach).
func reachCap(n int, frac float64) int {
	if frac <= 0 {
		frac = DefaultReachFraction
	}
	if frac >= 1 {
		return 0
	}
	cap := int(frac * float64(n))
	if cap < 1 {
		cap = 1
	}
	return cap
}

// RWRSparse answers RWR from u through the reach-based sparse solve.
// When the reach exceeds maxFrac of n (<= 0 picks
// DefaultReachFraction, >= 1 disables the cap) it returns ok = false
// after only the cheap symbolic probe — the caller should then take
// the dense path (RWRWith / RWRInto). On success the scores are
// bit-identical to RWR's on the support and exactly zero off it.
func (e *Engine) RWRSparse(u int, maxFrac float64, ws *lu.SparseSolveWorkspace) (SparseScores, bool) {
	n := e.dim()
	bIdx := [1]int{u}
	bVal := [1]float64{1 - e.D}
	idx, val, ok := e.Solver.SolveSparse(bIdx[:], bVal[:], reachCap(n, maxFrac), ws)
	if !ok {
		return SparseScores{}, false
	}
	return SparseScores{N: n, Idx: idx, Val: val}, true
}

// PPRSparse is the sparse fast path of PPR: uniform restart mass over
// the seed set, solved over the union reach of the seeds. Duplicate
// seeds accumulate exactly as in PPRWith. Seed sets already larger
// than the reach cap skip straight to ok = false.
func (e *Engine) PPRSparse(seeds []int, maxFrac float64, ws *lu.SparseSolveWorkspace) (SparseScores, bool) {
	n := e.dim()
	if len(seeds) == 0 {
		return SparseScores{N: n}, true // matches PPR's all-zero answer
	}
	cap := reachCap(n, maxFrac)
	if cap > 0 && len(seeds) > cap {
		return SparseScores{}, false
	}
	w := (1 - e.D) / float64(len(seeds))
	var bVal []float64
	if len(seeds) <= 8 {
		var buf [8]float64
		bVal = buf[:len(seeds)]
	} else {
		bVal = make([]float64, len(seeds))
	}
	for i := range bVal {
		bVal[i] = w
	}
	idx, val, ok := e.Solver.SolveSparse(seeds, bVal, cap, ws)
	if !ok {
		return SparseScores{}, false
	}
	return SparseScores{N: n, Idx: idx, Val: val}, true
}

// RWRInto is RWRWith writing into caller-owned dst (reusing its
// capacity; nil allocates) — the zero-garbage dense path of a serving
// worker. dst must not alias the workspace.
func (e *Engine) RWRInto(dst []float64, u int, ws *lu.SolveWorkspace) []float64 {
	dst = zeroed(dst, e.dim())
	dst[u] = 1 - e.D
	return e.Solver.SolveInto(dst, dst, ws)
}

// PPRInto is PPRWith writing into caller-owned dst.
func (e *Engine) PPRInto(dst []float64, seeds []int, ws *lu.SolveWorkspace) []float64 {
	dst = zeroed(dst, e.dim())
	if len(seeds) == 0 {
		return dst
	}
	w := (1 - e.D) / float64(len(seeds))
	for _, s := range seeds {
		dst[s] += w
	}
	return e.Solver.SolveInto(dst, dst, ws)
}

// PageRankInto is PageRankWith writing into caller-owned dst.
func (e *Engine) PageRankInto(dst []float64, ws *lu.SolveWorkspace) []float64 {
	n := e.dim()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = (1 - e.D) / float64(n)
	}
	dst = e.Solver.SolveInto(dst, dst, ws)
	s := 0.0
	for _, v := range dst {
		s += v
	}
	if s > 0 {
		for i := range dst {
			dst[i] *= 1 / s
		}
	}
	return dst
}

// zeroed returns dst resized to n and cleared, reusing capacity.
func zeroed(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// spEntry is one (node, score) pair during sparse ranking.
type spEntry struct {
	id  int
	val float64
}

// spLess is rankedIndices' comparator on explicit pairs: score
// descending, NaN after every real score, ties by ascending id. Using
// the identical strict weak order is what makes the sparse rankings
// bit-compatible with the dense ones.
func spLess(a, b spEntry) bool {
	an, bn := math.IsNaN(a.val), math.IsNaN(b.val)
	if an != bn {
		return bn
	}
	if !an && a.val != b.val {
		return a.val > b.val
	}
	return a.id < b.id
}

// mergeRanked enumerates the nodes of sp in exactly the order
// rankedIndices produces on the equivalent dense vector, calling emit
// for each until emit returns false or all n nodes are emitted. It
// merges the sorted explicit entries with the ascending stream of
// off-support nodes (implicit score 0).
func mergeRanked(sp SparseScores, emit func(id int, val float64) bool) {
	ents := make([]spEntry, len(sp.Idx))
	for k, u := range sp.Idx {
		ents[k] = spEntry{id: u, val: sp.Val[k]}
	}
	sort.Slice(ents, func(i, j int) bool { return spLess(ents[i], ents[j]) })
	onSupport := append([]int(nil), sp.Idx...)
	sort.Ints(onSupport)

	gap, gi := 0, 0 // next off-support candidate; pointer into onSupport
	nextGap := func() int {
		for gi < len(onSupport) && gap == onSupport[gi] {
			gap++
			gi++
		}
		return gap
	}
	ei := 0
	for emitted := 0; emitted < sp.N; emitted++ {
		g := nextGap()
		useEntry := ei < len(ents) && (g >= sp.N || spLess(ents[ei], spEntry{id: g, val: 0}))
		var id int
		var val float64
		if useEntry {
			id, val = ents[ei].id, ents[ei].val
			ei++
		} else {
			id, val = g, 0
			gap++
		}
		if !emit(id, val) {
			return
		}
	}
}

// TopKSparse returns the top-k node ids and their scores from a sparse
// measure result — identical, node for node and bit for bit, to
// TopK on the equivalent dense vector followed by a score gather, but
// in O(r log r + k) for support size r instead of O(n log n).
func TopKSparse(sp SparseScores, k int) ([]int, []float64) {
	if k > sp.N {
		k = sp.N
	}
	if k < 0 {
		k = 0
	}
	nodes := make([]int, 0, k)
	scores := make([]float64, 0, k)
	if k == 0 {
		return nodes, scores
	}
	mergeRanked(sp, func(id int, val float64) bool {
		nodes = append(nodes, id)
		scores = append(scores, val)
		return len(nodes) < k
	})
	return nodes, scores
}

// RanksSparse converts a sparse measure result into the full 1-based
// rank vector, identical to Ranks on the equivalent dense vector.
func RanksSparse(sp SparseScores) []int {
	ranks := make([]int, sp.N)
	r := 0
	mergeRanked(sp, func(id int, _ float64) bool {
		r++
		ranks[id] = r
		return true
	})
	return ranks
}
