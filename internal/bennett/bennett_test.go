package bennett

import (
	"errors"
	"math"
	"testing"

	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// randomDominant mirrors the lu test helper: strictly diagonally
// dominant matrices that never pivot-fail.
func randomDominant(rng *xrand.Rand, n, extra int) *sparse.CSR {
	c := sparse.NewCOO(n)
	rowAbs := make([]float64, n)
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := rng.Float64()*2 - 1
		c.Add(i, j, v)
		rowAbs[i] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, rowAbs[i]+2+rng.Float64())
	}
	return c.ToCSR()
}

// smallDelta perturbs a few existing off-diagonal entries and adds a
// few new ones, keeping dominance (small magnitudes).
func smallDelta(rng *xrand.Rand, a *sparse.CSR, edits int) []sparse.Entry {
	n := a.N()
	var out []sparse.Entry
	for k := 0; k < edits; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		out = append(out, sparse.Entry{Row: i, Col: j, Val: (rng.Float64() - 0.5) * 0.2})
	}
	return out
}

func applyEntries(a *sparse.CSR, delta []sparse.Entry) *sparse.CSR {
	c := sparse.NewCOO(a.N())
	for i := 0; i < a.N(); i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			c.Add(i, j, vals[k])
		}
	}
	for _, e := range delta {
		c.Add(e.Row, e.Col, e.Val)
	}
	return c.ToCSR()
}

func TestRank1DynamicMatchesRefactorization(t *testing.T) {
	rng := xrand.New(700)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(20)
		a := randomDominant(rng, n, 3*n)
		f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
		if err := f.Factorize(a); err != nil {
			t.Fatal(err)
		}
		d := lu.NewDynamicFactors(f)

		r := rng.Intn(n)
		var z []sparse.Entry
		for k := 0; k < 1+rng.Intn(4); k++ {
			z = append(z, sparse.Entry{Row: rng.Intn(n), Val: (rng.Float64() - 0.5) * 0.3})
		}
		if err := Rank1Dynamic(d, 1, []sparse.Entry{{Row: r, Val: 1}}, z, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		var delta []sparse.Entry
		for _, e := range z {
			delta = append(delta, sparse.Entry{Row: r, Col: e.Row, Val: e.Val})
		}
		want := applyEntries(a, delta)
		if !d.Reconstruct().EqualApprox(want, 1e-8) {
			t.Fatalf("trial %d: dynamic rank-1 update wrong", trial)
		}
	}
}

func TestUpdateDynamicSequenceMatchesRefactorization(t *testing.T) {
	rng := xrand.New(701)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(20)
		a := randomDominant(rng, n, 4*n)
		f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
		if err := f.Factorize(a); err != nil {
			t.Fatal(err)
		}
		d := lu.NewDynamicFactors(f)

		cur := a
		for step := 0; step < 4; step++ {
			delta := smallDelta(rng, cur, 5)
			next := applyEntries(cur, delta)
			if err := UpdateDynamic(d, sparse.Delta(cur, next), nil); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			cur = next
		}
		if !d.Reconstruct().EqualApprox(cur, 1e-7) {
			t.Fatalf("trial %d: dynamic multi-step update diverged", trial)
		}
	}
}

func TestUpdateStaticWithinUSSP(t *testing.T) {
	// Build the USSP of {A, B} and verify Bennett can walk A→B inside
	// the frozen structure, matching a fresh factorization of B.
	rng := xrand.New(702)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(18)
		a := randomDominant(rng, n, 3*n)
		delta := smallDelta(rng, a, 6)
		b := applyEntries(a, delta)

		union := a.Pattern().Union(b.Pattern())
		f := lu.NewStaticFactors(lu.Symbolic(union))
		if err := f.Factorize(a); err != nil {
			t.Fatal(err)
		}
		var st Stats
		if err := UpdateStatic(f, sparse.Delta(a, b), &st); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !f.Reconstruct().EqualApprox(b, 1e-7) {
			t.Fatalf("trial %d: static update wrong", trial)
		}
		if st.Rank1Updates == 0 {
			t.Fatal("stats not recorded")
		}
	}
}

func TestUpdateStaticOutOfPatternDetected(t *testing.T) {
	// Factor a diagonal matrix in its tight (diagonal-only) structure,
	// then apply a delta that must create off-diagonal factor entries.
	n := 5
	c := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 3)
	}
	a := c.ToCSR()
	f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	delta := []sparse.Entry{{Row: 2, Col: 0, Val: 1}, {Row: 0, Col: 2, Val: 1}}
	err := UpdateStatic(f, delta, nil)
	if err == nil {
		t.Fatal("expected ErrOutOfPattern, got nil")
	}
}

func TestUpdateDynamicInsertsFill(t *testing.T) {
	// Same scenario on the dynamic container must succeed by splicing
	// new nodes.
	n := 5
	c := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 3)
	}
	a := c.ToCSR()
	f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	d := lu.NewDynamicFactors(f)
	before := d.Size()
	delta := []sparse.Entry{{Row: 2, Col: 0, Val: 1}, {Row: 0, Col: 2, Val: 1}}
	if err := UpdateDynamic(d, delta, nil); err != nil {
		t.Fatal(err)
	}
	if d.Size() <= before {
		t.Error("dynamic structure did not grow")
	}
	if d.Inserts == 0 {
		t.Error("no inserts counted")
	}
	want := applyEntries(a, delta)
	if !d.Reconstruct().EqualApprox(want, 1e-9) {
		t.Error("dynamic fill-inserting update wrong")
	}
}

func TestUpdateSingularDetected(t *testing.T) {
	a := sparse.NewCSRFromEntries(2, []sparse.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
	})
	f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	// Delta drives D[0] to zero.
	err := UpdateStatic(f, []sparse.Entry{{Row: 0, Col: 0, Val: -1}}, nil)
	if err == nil {
		t.Fatal("singular update not detected")
	}
	if _, ok := err.(*lu.SingularError); !ok {
		t.Fatalf("error type %T, want *lu.SingularError", err)
	}
}

func TestUpdateEmptyDeltaNoop(t *testing.T) {
	rng := xrand.New(703)
	a := randomDominant(rng, 10, 30)
	f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	before := f.Reconstruct()
	if err := UpdateStatic(f, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !f.Reconstruct().EqualApprox(before, 0) {
		t.Error("empty delta changed factors")
	}
}

func TestSolveAfterUpdate(t *testing.T) {
	// End-to-end: factors updated by Bennett must solve the new system.
	rng := xrand.New(704)
	n := 25
	a := randomDominant(rng, n, 4*n)
	delta := smallDelta(rng, a, 8)
	b := applyEntries(a, delta)

	union := a.Pattern().Union(b.Pattern())
	f := lu.NewStaticFactors(lu.Symbolic(union))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if err := UpdateStatic(f, sparse.Delta(a, b), nil); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.Float64()*2 - 1
	}
	rhs := b.MulVec(want)
	f.SolveInPlace(rhs)
	if d := sparse.NormInfDiff(rhs, want); d > 1e-7 {
		t.Errorf("solve after update error %g", d)
	}
}

func TestEdgeDeletionDelta(t *testing.T) {
	// Removing an entry (value returns to zero) must also be handled.
	rng := xrand.New(705)
	n := 12
	a := randomDominant(rng, n, 4*n)
	// Pick an existing off-diagonal entry to delete.
	var di, dj int
	var dv float64
	found := false
	for i := 0; i < n && !found; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j != i && vals[k] != 0 {
				di, dj, dv = i, j, vals[k]
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no off-diagonal entry")
	}
	delta := []sparse.Entry{{Row: di, Col: dj, Val: -dv}}
	b := applyEntries(a, delta)
	f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if err := UpdateStatic(f, delta, nil); err != nil {
		t.Fatal(err)
	}
	if !f.Reconstruct().EqualApprox(b, 1e-8) {
		t.Error("deletion update wrong")
	}
}

// TestWorkspaceReuseMatchesOneShot applies the same update chain
// through a reused Workspace and through the allocating entry points;
// the factors must come out identical (the workspace is pure scratch).
func TestWorkspaceReuseMatchesOneShot(t *testing.T) {
	rng := xrand.New(4242)
	n := 40
	// Build a chain a0 → a1 → … and the USSP covering it, as a CLUDE
	// cluster would.
	mats := []*sparse.CSR{randomDominant(rng, n, 4*n)}
	union := mats[0].Pattern()
	for step := 0; step < 5; step++ {
		next := applyEntries(mats[len(mats)-1], smallDelta(rng, mats[len(mats)-1], 6))
		union = union.Union(next.Pattern())
		mats = append(mats, next)
	}
	build := func() *lu.StaticFactors {
		f := lu.NewStaticFactors(lu.Symbolic(union))
		if err := f.Factorize(mats[0]); err != nil {
			t.Fatal(err)
		}
		return f
	}
	fOne, fWS := build(), build()
	var ws Workspace
	for k := 1; k < len(mats); k++ {
		delta := sparse.Delta(mats[k-1], mats[k])
		if err := UpdateStatic(fOne, delta, nil); err != nil {
			t.Fatal(err)
		}
		if err := ws.UpdateStatic(fWS, delta, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !fOne.Reconstruct().EqualApprox(fWS.Reconstruct(), 1e-12) {
		t.Error("workspace-reused updates diverged from one-shot updates")
	}

	// The same workspace must survive a dimension change and serve the
	// dynamic container too.
	b := randomDominant(rng, 15, 50)
	fb := lu.NewStaticFactors(lu.Symbolic(b.Pattern()))
	if err := fb.Factorize(b); err != nil {
		t.Fatal(err)
	}
	dyn := lu.NewDynamicFactors(fb)
	if err := ws.UpdateDynamic(dyn, smallDelta(rng, b, 3), nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Rank1Updates: 1, StepsTouched: 2, Dropped: 3}
	a.Add(Stats{Rank1Updates: 10, StepsTouched: 20, Dropped: 30})
	if a != (Stats{Rank1Updates: 11, StepsTouched: 22, Dropped: 33}) {
		t.Errorf("Stats.Add = %+v", a)
	}
}

// TestWorkspaceCleanAfterFailedUpdate reproduces the engine's fallback
// path: an update fails with ErrOutOfPattern mid-recurrence — after
// the recurrence has already promoted new support positions — the
// caller refactorizes, and the SAME workspace serves the next update.
// The failed attempt must leave no residue. (The bug: the staticExtras
// error exit skipped mergeTail, so promotions stayed marked inY with
// nonzero values that reset() could not find.)
func TestWorkspaceCleanAfterFailedUpdate(t *testing.T) {
	// A(0,0)=3, A(1,0)=A(0,1)=-1, rest diagonal: the tight structure
	// holds L(1,0) and U(0,1) and nothing else off-diagonal.
	n := 5
	c := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 3)
	}
	c.Add(1, 0, -1)
	c.Add(0, 1, -1)
	a := c.ToCSR()
	build := func() *lu.StaticFactors {
		f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
		if err := f.Factorize(a); err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Poison: a column-0 rank-1 term with y = {0, 4}. At pivot 0 both
	// y0 and z0 are nonzero, so walking L column 0 promotes y[1]
	// (through L(1,0)) into newIdx; then the out-of-structure position
	// (4,0) raises ErrOutOfPattern from staticExtras — after the
	// promotion, before the old code merged it into the support.
	var ws Workspace
	fPoison := build()
	poison := []sparse.Entry{{Row: 0, Col: 0, Val: 0.5}, {Row: 4, Col: 0, Val: 0.5}}
	if err := ws.UpdateStatic(fPoison, poison, nil); !errors.Is(err, ErrOutOfPattern) {
		t.Fatalf("poison update: got %v, want ErrOutOfPattern", err)
	}

	// A benign update whose pivot-0 column walk reads y[1]: any
	// residue from the failed attempt shows up in L(1,0).
	good := []sparse.Entry{{Row: 0, Col: 0, Val: 0.2}}
	fReused, fFresh := build(), build()
	if err := ws.UpdateStatic(fReused, good, nil); err != nil {
		t.Fatal(err)
	}
	if err := UpdateStatic(fFresh, good, nil); err != nil {
		t.Fatal(err)
	}
	if !fReused.Reconstruct().EqualApprox(fFresh.Reconstruct(), 0) {
		t.Errorf("workspace reused after a failed update diverged: L(1,0) reused %v, fresh %v",
			fReused.LAt(1, 0), fFresh.LAt(1, 0))
	}
}
