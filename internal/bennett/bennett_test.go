package bennett

import (
	"math"
	"testing"

	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// randomDominant mirrors the lu test helper: strictly diagonally
// dominant matrices that never pivot-fail.
func randomDominant(rng *xrand.Rand, n, extra int) *sparse.CSR {
	c := sparse.NewCOO(n)
	rowAbs := make([]float64, n)
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := rng.Float64()*2 - 1
		c.Add(i, j, v)
		rowAbs[i] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, rowAbs[i]+2+rng.Float64())
	}
	return c.ToCSR()
}

// smallDelta perturbs a few existing off-diagonal entries and adds a
// few new ones, keeping dominance (small magnitudes).
func smallDelta(rng *xrand.Rand, a *sparse.CSR, edits int) []sparse.Entry {
	n := a.N()
	var out []sparse.Entry
	for k := 0; k < edits; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		out = append(out, sparse.Entry{Row: i, Col: j, Val: (rng.Float64() - 0.5) * 0.2})
	}
	return out
}

func applyEntries(a *sparse.CSR, delta []sparse.Entry) *sparse.CSR {
	c := sparse.NewCOO(a.N())
	for i := 0; i < a.N(); i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			c.Add(i, j, vals[k])
		}
	}
	for _, e := range delta {
		c.Add(e.Row, e.Col, e.Val)
	}
	return c.ToCSR()
}

func TestRank1DynamicMatchesRefactorization(t *testing.T) {
	rng := xrand.New(700)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(20)
		a := randomDominant(rng, n, 3*n)
		f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
		if err := f.Factorize(a); err != nil {
			t.Fatal(err)
		}
		d := lu.NewDynamicFactors(f)

		r := rng.Intn(n)
		var z []sparse.Entry
		for k := 0; k < 1+rng.Intn(4); k++ {
			z = append(z, sparse.Entry{Row: rng.Intn(n), Val: (rng.Float64() - 0.5) * 0.3})
		}
		if err := Rank1Dynamic(d, 1, []sparse.Entry{{Row: r, Val: 1}}, z, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		var delta []sparse.Entry
		for _, e := range z {
			delta = append(delta, sparse.Entry{Row: r, Col: e.Row, Val: e.Val})
		}
		want := applyEntries(a, delta)
		if !d.Reconstruct().EqualApprox(want, 1e-8) {
			t.Fatalf("trial %d: dynamic rank-1 update wrong", trial)
		}
	}
}

func TestUpdateDynamicSequenceMatchesRefactorization(t *testing.T) {
	rng := xrand.New(701)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(20)
		a := randomDominant(rng, n, 4*n)
		f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
		if err := f.Factorize(a); err != nil {
			t.Fatal(err)
		}
		d := lu.NewDynamicFactors(f)

		cur := a
		for step := 0; step < 4; step++ {
			delta := smallDelta(rng, cur, 5)
			next := applyEntries(cur, delta)
			if err := UpdateDynamic(d, sparse.Delta(cur, next), nil); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			cur = next
		}
		if !d.Reconstruct().EqualApprox(cur, 1e-7) {
			t.Fatalf("trial %d: dynamic multi-step update diverged", trial)
		}
	}
}

func TestUpdateStaticWithinUSSP(t *testing.T) {
	// Build the USSP of {A, B} and verify Bennett can walk A→B inside
	// the frozen structure, matching a fresh factorization of B.
	rng := xrand.New(702)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(18)
		a := randomDominant(rng, n, 3*n)
		delta := smallDelta(rng, a, 6)
		b := applyEntries(a, delta)

		union := a.Pattern().Union(b.Pattern())
		f := lu.NewStaticFactors(lu.Symbolic(union))
		if err := f.Factorize(a); err != nil {
			t.Fatal(err)
		}
		var st Stats
		if err := UpdateStatic(f, sparse.Delta(a, b), &st); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !f.Reconstruct().EqualApprox(b, 1e-7) {
			t.Fatalf("trial %d: static update wrong", trial)
		}
		if st.Rank1Updates == 0 {
			t.Fatal("stats not recorded")
		}
	}
}

func TestUpdateStaticOutOfPatternDetected(t *testing.T) {
	// Factor a diagonal matrix in its tight (diagonal-only) structure,
	// then apply a delta that must create off-diagonal factor entries.
	n := 5
	c := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 3)
	}
	a := c.ToCSR()
	f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	delta := []sparse.Entry{{Row: 2, Col: 0, Val: 1}, {Row: 0, Col: 2, Val: 1}}
	err := UpdateStatic(f, delta, nil)
	if err == nil {
		t.Fatal("expected ErrOutOfPattern, got nil")
	}
}

func TestUpdateDynamicInsertsFill(t *testing.T) {
	// Same scenario on the dynamic container must succeed by splicing
	// new nodes.
	n := 5
	c := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 3)
	}
	a := c.ToCSR()
	f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	d := lu.NewDynamicFactors(f)
	before := d.Size()
	delta := []sparse.Entry{{Row: 2, Col: 0, Val: 1}, {Row: 0, Col: 2, Val: 1}}
	if err := UpdateDynamic(d, delta, nil); err != nil {
		t.Fatal(err)
	}
	if d.Size() <= before {
		t.Error("dynamic structure did not grow")
	}
	if d.Inserts == 0 {
		t.Error("no inserts counted")
	}
	want := applyEntries(a, delta)
	if !d.Reconstruct().EqualApprox(want, 1e-9) {
		t.Error("dynamic fill-inserting update wrong")
	}
}

func TestUpdateSingularDetected(t *testing.T) {
	a := sparse.NewCSRFromEntries(2, []sparse.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
	})
	f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	// Delta drives D[0] to zero.
	err := UpdateStatic(f, []sparse.Entry{{Row: 0, Col: 0, Val: -1}}, nil)
	if err == nil {
		t.Fatal("singular update not detected")
	}
	if _, ok := err.(*lu.SingularError); !ok {
		t.Fatalf("error type %T, want *lu.SingularError", err)
	}
}

func TestUpdateEmptyDeltaNoop(t *testing.T) {
	rng := xrand.New(703)
	a := randomDominant(rng, 10, 30)
	f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	before := f.Reconstruct()
	if err := UpdateStatic(f, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !f.Reconstruct().EqualApprox(before, 0) {
		t.Error("empty delta changed factors")
	}
}

func TestSolveAfterUpdate(t *testing.T) {
	// End-to-end: factors updated by Bennett must solve the new system.
	rng := xrand.New(704)
	n := 25
	a := randomDominant(rng, n, 4*n)
	delta := smallDelta(rng, a, 8)
	b := applyEntries(a, delta)

	union := a.Pattern().Union(b.Pattern())
	f := lu.NewStaticFactors(lu.Symbolic(union))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if err := UpdateStatic(f, sparse.Delta(a, b), nil); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.Float64()*2 - 1
	}
	rhs := b.MulVec(want)
	f.SolveInPlace(rhs)
	if d := sparse.NormInfDiff(rhs, want); d > 1e-7 {
		t.Errorf("solve after update error %g", d)
	}
}

func TestEdgeDeletionDelta(t *testing.T) {
	// Removing an entry (value returns to zero) must also be handled.
	rng := xrand.New(705)
	n := 12
	a := randomDominant(rng, n, 4*n)
	// Pick an existing off-diagonal entry to delete.
	var di, dj int
	var dv float64
	found := false
	for i := 0; i < n && !found; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j != i && vals[k] != 0 {
				di, dj, dv = i, j, vals[k]
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no off-diagonal entry")
	}
	delta := []sparse.Entry{{Row: di, Col: dj, Val: -dv}}
	b := applyEntries(a, delta)
	f := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
	if err := f.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if err := UpdateStatic(f, delta, nil); err != nil {
		t.Fatal(err)
	}
	if !f.Reconstruct().EqualApprox(b, 1e-8) {
		t.Error("deletion update wrong")
	}
}
