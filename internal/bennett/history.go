package bennett

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/lu"
	"repro/internal/sparse"
)

// This file is the delta-compressed version history: instead of
// retaining a full factor clone per published version (the
// clone-per-checkpoint economy, O(|factors|) bytes per version), a
// HistoryLog keeps the validated rank-1 term sequence each version
// applied to its predecessor — typically a few short sparse vectors —
// and MaterializeInto rebuilds any version on demand by cloning a base
// and replaying the terms into a pooled container. Replay runs the
// exact per-term loop the live update path runs (same scratch code,
// same term order, same arithmetic), so a materialized container is
// bit-identical to the full clone it replaces.

// ErrHistoryGap reports that the log is missing a record needed to
// cover the requested version range (trimmed, or never recorded).
var ErrHistoryGap = errors.New("bennett: history log does not cover the version range")

// ErrStructuralBreak reports that the requested range crosses a
// structural event (refactorization, reordering, dimension change) —
// versions past it need a newer base, not a longer replay.
var ErrStructuralBreak = errors.New("bennett: version range crosses a structural rebuild")

// VersionRecord is one published version's entry in the history: the
// rank-1 terms that turned version Version−1 into Version, or a
// structural marker when the step rebuilt the factors from scratch
// (no delta exists; such versions start a new chain and must be
// retained as full bases). Terms and their W slices are immutable
// once recorded.
type VersionRecord struct {
	Version    uint64
	Structural bool
	Terms      []Rank1Term
}

// RecordBytes estimates the heap bytes a record retains — the history
// analogue of lu.MemBytes, used by budget accounting and the history
// benchmark's resident-bytes columns.
func RecordBytes(rec VersionRecord) int64 {
	const (
		recB   = 40 // Version + Structural + Terms header
		termB  = 40 // Key + ByCol + W header
		entryB = 24 // sparse.Entry
	)
	b := int64(recB)
	for _, t := range rec.Terms {
		b += termB + int64(len(t.W))*entryB
	}
	return b
}

// HistoryLog holds a contiguous window of version records. It is safe
// for concurrent use: the publish path Records new versions while
// query-side materializations CopyRange older ones. Records are
// idempotent per version — WAL replay after a restart re-publishes the
// same versions with bit-identical deltas, and re-recording them must
// be a no-op in effect.
type HistoryLog struct {
	mu   sync.Mutex
	base uint64 // version of recs[0]; meaningful only when len(recs) > 0
	recs []VersionRecord
}

// NewHistoryLog returns an empty log.
func NewHistoryLog() *HistoryLog { return &HistoryLog{} }

// Record stores rec. Appends extend the window; a version already in
// the window overwrites in place (replayed publishes); a version that
// does not abut the window resets the log to just rec — the stream
// restarted somewhere the log cannot bridge, and a contiguous window
// is worth more than a stale one.
func (l *HistoryLog) Record(rec VersionRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case len(l.recs) == 0:
		l.base = rec.Version
		l.recs = append(l.recs, rec)
	case rec.Version == l.base+uint64(len(l.recs)):
		l.recs = append(l.recs, rec)
	case rec.Version >= l.base && rec.Version < l.base+uint64(len(l.recs)):
		l.recs[rec.Version-l.base] = rec
	default:
		l.base = rec.Version
		l.recs = append(l.recs[:0], rec)
	}
}

// Get returns the record for version v, if the window holds it.
func (l *HistoryLog) Get(v uint64) (VersionRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 || v < l.base || v >= l.base+uint64(len(l.recs)) {
		return VersionRecord{}, false
	}
	return l.recs[v-l.base], true
}

// Bounds returns the inclusive version range the window covers.
func (l *HistoryLog) Bounds() (oldest, newest uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 {
		return 0, 0, false
	}
	return l.base, l.base + uint64(len(l.recs)) - 1, true
}

// Len returns the number of records in the window.
func (l *HistoryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// TrimBelow drops records for versions < v (retention following the
// snapshot/spill policy of the owning layer).
func (l *HistoryLog) TrimBelow(v uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 || v <= l.base {
		return
	}
	if v >= l.base+uint64(len(l.recs)) {
		l.recs = l.recs[:0]
		return
	}
	drop := int(v - l.base)
	n := copy(l.recs, l.recs[drop:])
	l.recs = l.recs[:n]
	l.base = v
}

// Bytes estimates the heap bytes the window retains.
func (l *HistoryLog) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b int64
	for _, rec := range l.recs {
		b += RecordBytes(rec)
	}
	return b
}

// CopyRange appends the records for versions fromVer+1..toVer to dst
// (reusing its capacity) and returns it. Every version in the range
// must be present (else ErrHistoryGap) and non-structural (else
// ErrStructuralBreak): a structural version has no delta to replay.
// The grown dst is returned even on error so callers keep the buffer.
func (l *HistoryLog) CopyRange(dst []VersionRecord, fromVer, toVer uint64) ([]VersionRecord, error) {
	if toVer < fromVer {
		return dst, fmt.Errorf("%w: to=%d before from=%d", ErrHistoryGap, toVer, fromVer)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for v := fromVer + 1; v <= toVer; v++ {
		if len(l.recs) == 0 || v < l.base || v >= l.base+uint64(len(l.recs)) {
			return dst, fmt.Errorf("%w: version %d", ErrHistoryGap, v)
		}
		rec := l.recs[v-l.base]
		if rec.Structural {
			return dst, fmt.Errorf("%w: version %d", ErrStructuralBreak, v)
		}
		dst = append(dst, rec)
	}
	return dst, nil
}

// MaterializeWorkspace pools everything a replay needs — the dense
// recurrence scratch, the unit-vector buffer, and the record staging
// slice — so repeated materializations on a warm workspace allocate
// nothing in steady state. Not safe for concurrent use; keep one per
// materializing goroutine.
type MaterializeWorkspace struct {
	ws     Workspace
	unit   [1]sparse.Entry
	recbuf []VersionRecord
}

// MaterializeInto rebuilds the factors of version toVer by cloning
// base (the retained factors of version fromVer) into dst and
// replaying the log's records fromVer+1..toVer. dst is reused when it
// is a container of base's concrete type (pass nil to allocate a
// fresh one); the materialized container is returned. The result is
// bit-identical to the full clone retained at toVer: replay runs the
// same per-term scratch loop as the live update path, and for the
// dynamic container even the node-pool layout reproduces exactly
// because splices append deterministically.
func (mw *MaterializeWorkspace) MaterializeInto(dst, base lu.Factors, log *HistoryLog, fromVer, toVer uint64, st *Stats) (lu.Factors, error) {
	if st == nil {
		st = &Stats{}
	}
	recs, err := log.CopyRange(mw.recbuf[:0], fromVer, toVer)
	mw.recbuf = recs[:0]
	if err != nil {
		return nil, err
	}
	out := lu.CloneFactorsInto(dst, base)
	sc := mw.ws.grab(out.Dim())
	switch f := out.(type) {
	case *lu.StaticFactors:
		for _, rec := range recs {
			for _, t := range rec.Terms {
				sc.reset()
				sc.loadTerm(t, &mw.unit)
				st.Rank1Updates++
				if err := rank1Static(f, 1, sc, st); err != nil {
					return nil, fmt.Errorf("bennett: replaying version %d: %w", rec.Version, err)
				}
			}
		}
	case *lu.DynamicFactors:
		for _, rec := range recs {
			for _, t := range rec.Terms {
				sc.reset()
				sc.loadTerm(t, &mw.unit)
				st.Rank1Updates++
				if err := rank1Dynamic(f, 1, sc, st); err != nil {
					return nil, fmt.Errorf("bennett: replaying version %d: %w", rec.Version, err)
				}
			}
		}
	default:
		return nil, fmt.Errorf("bennett: cannot replay onto container type %T", out)
	}
	return out, nil
}
