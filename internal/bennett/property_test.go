package bennett

import (
	"testing"
	"testing/quick"

	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// TestUpdateChainProperty drives a random walk of small deltas through
// both containers and checks, at every step, that the maintained
// factors solve the current system as accurately as a fresh
// factorization would.
func TestUpdateChainProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(25)
		a := randomDominant(rng, n, 4*n)

		// Union container (CLUDE style) needs to know all patterns in
		// advance: pre-generate the walk.
		mats := []*sparse.CSR{a}
		cur := a
		for step := 0; step < 5; step++ {
			next := applyEntries(cur, smallDelta(rng, cur, 4))
			mats = append(mats, next)
			cur = next
		}
		union := mats[0].Pattern()
		for _, m := range mats[1:] {
			union = union.Union(m.Pattern())
		}
		fs := lu.NewStaticFactors(lu.Symbolic(union))
		if err := fs.Factorize(mats[0]); err != nil {
			return false
		}
		tight := lu.NewStaticFactors(lu.Symbolic(mats[0].Pattern()))
		if err := tight.Factorize(mats[0]); err != nil {
			return false
		}
		fd := lu.NewDynamicFactors(tight)

		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		for step := 1; step < len(mats); step++ {
			delta := sparse.Delta(mats[step-1], mats[step])
			if err := UpdateStatic(fs, delta, nil); err != nil {
				return false
			}
			if err := UpdateDynamic(fd, delta, nil); err != nil {
				return false
			}
			b := mats[step].MulVec(x)
			b1 := append([]float64(nil), b...)
			b2 := append([]float64(nil), b...)
			fs.SolveInPlace(b1)
			fd.SolveInPlace(b2)
			if sparse.NormInfDiff(b1, x) > 1e-6 || sparse.NormInfDiff(b2, x) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRank1SymmetryProperty: applying +σyzᵀ then −σyzᵀ returns the
// factors to (numerically) where they started.
func TestRank1SymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 4 + rng.Intn(15)
		a := randomDominant(rng, n, 3*n)
		fs := lu.NewStaticFactors(lu.Symbolic(a.Pattern()))
		if err := fs.Factorize(a); err != nil {
			return false
		}
		before := fs.Reconstruct()
		r := rng.Intn(n)
		var z []sparse.Entry
		for k := 0; k < 1+rng.Intn(3); k++ {
			c := rng.Intn(n)
			// Keep the perturbation within the existing pattern so the
			// static container accepts it.
			if !a.Has(r, c) {
				continue
			}
			z = append(z, sparse.Entry{Row: c, Val: (rng.Float64() - 0.5) * 0.2})
		}
		if len(z) == 0 {
			return true
		}
		y := []sparse.Entry{{Row: r, Val: 1}}
		if err := Rank1Static(fs, 1, y, z, nil); err != nil {
			return false
		}
		if err := Rank1Static(fs, -1, y, z, nil); err != nil {
			return false
		}
		return fs.Reconstruct().EqualApprox(before, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDeltaSideChoice: the row/column grouping choice must not affect
// the result, only the cost. Construct a delta concentrated in one
// column (grouped by column) and its transpose situation (grouped by
// row) and verify both produce correct factors.
func TestDeltaSideChoice(t *testing.T) {
	rng := xrand.New(4242)
	n := 15
	a := randomDominant(rng, n, 4*n)

	// Column-concentrated delta: many rows, one column.
	var colDelta []sparse.Entry
	for i := 0; i < 6; i++ {
		colDelta = append(colDelta, sparse.Entry{Row: 1 + i, Col: 3, Val: 0.05 * float64(i+1)})
	}
	// Row-concentrated delta: one row, many columns.
	var rowDelta []sparse.Entry
	for j := 0; j < 6; j++ {
		rowDelta = append(rowDelta, sparse.Entry{Row: 3, Col: 1 + j, Val: -0.03 * float64(j+1)})
	}
	for name, delta := range map[string][]sparse.Entry{"col": colDelta, "row": rowDelta} {
		want := applyEntries(a, delta)
		union := a.Pattern().Union(want.Pattern())
		fs := lu.NewStaticFactors(lu.Symbolic(union))
		if err := fs.Factorize(a); err != nil {
			t.Fatal(err)
		}
		var st Stats
		if err := UpdateStatic(fs, delta, &st); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !fs.Reconstruct().EqualApprox(want, 1e-8) {
			t.Errorf("%s-concentrated delta updated wrongly", name)
		}
		// Concentrated deltas must collapse to a single rank-1 term.
		if st.Rank1Updates != 1 {
			t.Errorf("%s-concentrated delta used %d rank-1 terms, want 1", name, st.Rank1Updates)
		}
	}
}

// TestStatsAccumulate verifies the profiling counters move.
func TestStatsAccumulate(t *testing.T) {
	rng := xrand.New(4343)
	n := 20
	a := randomDominant(rng, n, 4*n)
	delta := smallDelta(rng, a, 6)
	b := applyEntries(a, delta)
	union := a.Pattern().Union(b.Pattern())
	fs := lu.NewStaticFactors(lu.Symbolic(union))
	if err := fs.Factorize(a); err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := UpdateStatic(fs, sparse.Delta(a, b), &st); err != nil {
		t.Fatal(err)
	}
	if st.Rank1Updates == 0 || st.StepsTouched == 0 {
		t.Errorf("stats did not accumulate: %+v", st)
	}
	if st.StepsTouched < st.Rank1Updates {
		t.Errorf("steps (%d) < rank-1 terms (%d)", st.StepsTouched, st.Rank1Updates)
	}
}
