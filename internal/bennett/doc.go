// Package bennett implements Bennett's algorithm (J. M. Bennett,
// "Triangular factors of modified matrices", Numerische Mathematik 7,
// 1965) for updating an LDU factorization under a low-rank
// modification, specialized to the sparse evolving-matrix deltas of the
// CLUDE setting.
//
// # Derivation (rank-1 case)
//
// Let A = L·D·U (L, U unit triangular, D diagonal) and
// A' = A + σ·y·zᵀ. Partition on the first row/column:
//
//	A = | d₁      d₁·uᵀ          |     y = (y₁, y₂),  z = (z₁, z₂)
//	    | d₁·l    l·d₁·uᵀ + A₂₂ |
//
// Matching entries of A' = L'·D'·U' gives
//
//	d₁' = d₁ + σ·y₁·z₁
//	l'  = (d₁·l + σ·z₁·y₂) / d₁'
//	u'  = (d₁·u + σ·y₁·z₂) / d₁'
//
// and the trailing Schur complement reduces (after algebra that uses
// d₁ − d₁²/d₁' = d₁·σ·y₁·z₁/d₁') to
//
//	A₂₂' = A₂₂ + σ·(d₁/d₁')·(y₂ − y₁·l)·(z₂ − z₁·u)ᵀ,
//
// i.e. the same problem one dimension smaller with
//
//	σ ← σ·d₁/d₁',   y ← y₂ − y₁·l,   z ← z₂ − z₁·u.
//
// The sparse implementation processes only indices i where y[i] ≠ 0 or
// z[i] ≠ 0 (a min-heap tracks the support as it grows along the factor
// patterns), touches only structural entries of L column i and U row i
// plus the out-of-structure positions where genuinely new fill appears.
//
// # Rank-k deltas
//
// An EMS step ∆A = A_{t+1} − A_t with entries in rows r₁ < … < r_k is
// decomposed as Σᵢ e_{rᵢ}·wᵢᵀ and applied as k sequential rank-1
// updates (σ = 1, y = e_r, z = w). This is the standard way to feed a
// sparse delta to Bennett's recurrence; the cost is proportional to the
// delta's rank times the touched factor structure, matching the
// complexity the paper cites.
//
// # Static vs dynamic containers
//
// UpdateStatic writes into a lu.StaticFactors whose frozen structure
// (in CLUDE, the cluster USSP) must cover all fill the update creates;
// genuinely new positions above DropTolerance produce
// ErrOutOfPattern. UpdateDynamic splices new nodes into
// lu.DynamicFactors adjacency lists, faithfully reproducing the
// list-restructuring cost the paper profiles at ~70% of Bennett time in
// the traditional INC/CINC implementations.
package bennett
