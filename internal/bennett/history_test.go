package bennett

import (
	"errors"
	"slices"
	"testing"

	"repro/internal/lu"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// staticBitEqual is exact (bitwise) equality of two static containers:
// every structural array and every value array, no tolerance. This is
// the currency of the history property — materialized factors must be
// indistinguishable from the retained full clone.
func staticBitEqual(a, b *lu.StaticFactors) bool {
	return a.Dim() == b.Dim() &&
		slices.Equal(a.LColPtr, b.LColPtr) && slices.Equal(a.LRowIdx, b.LRowIdx) &&
		slices.Equal(a.LVal, b.LVal) &&
		slices.Equal(a.URowPtr, b.URowPtr) && slices.Equal(a.UColIdx, b.UColIdx) &&
		slices.Equal(a.UVal, b.UVal) && slices.Equal(a.D, b.D) &&
		slices.Equal(a.LRowPtr, b.LRowPtr) && slices.Equal(a.LRowCols, b.LRowCols) &&
		slices.Equal(a.LRowPos, b.LRowPos) &&
		slices.Equal(a.UColPtr, b.UColPtr) && slices.Equal(a.UColRows, b.UColRows) &&
		slices.Equal(a.UColPos, b.UColPos)
}

// dynamicBitEqual additionally pins the node-pool layout: replayed
// splices must land in the same pool cells the live update used.
func dynamicBitEqual(a, b *lu.DynamicFactors) bool {
	if a.Dim() != b.Dim() || a.Size() != b.Size() ||
		a.Inserts != b.Inserts || a.ScanSteps != b.ScanSteps {
		return false
	}
	if !slices.Equal(a.Nodes, b.Nodes) || !slices.Equal(a.LHead, b.LHead) ||
		!slices.Equal(a.UHead, b.UHead) || !slices.Equal(a.D, b.D) {
		return false
	}
	for j := 0; j < a.Dim(); j++ {
		if !slices.Equal(a.LSucc(j), b.LSucc(j)) || !slices.Equal(a.USucc(j), b.USucc(j)) {
			return false
		}
	}
	return true
}

// historyWalk generates a random matrix walk, applies it to a
// container (static under the walk's union pattern, or dynamic),
// records each step's terms in a HistoryLog, and retains a full clone
// per version. Returns the log and the clones indexed by version.
func historyWalk(t *testing.T, rng *xrand.Rand, dynamic bool, steps int) (*HistoryLog, []lu.Factors) {
	t.Helper()
	n := 5 + rng.Intn(20)
	mats := []*sparse.CSR{randomDominant(rng, n, 4*n)}
	cur := mats[0]
	for s := 0; s < steps; s++ {
		next := applyEntries(cur, smallDelta(rng, cur, 4))
		mats = append(mats, next)
		cur = next
	}
	union := mats[0].Pattern()
	for _, m := range mats[1:] {
		union = union.Union(m.Pattern())
	}
	fs := lu.NewStaticFactors(lu.Symbolic(union))
	if err := fs.Factorize(mats[0]); err != nil {
		t.Fatal(err)
	}
	var f lu.Factors = fs
	if dynamic {
		f = lu.NewDynamicFactors(fs)
	}

	log := NewHistoryLog()
	log.Record(VersionRecord{Version: 0, Structural: true})
	clones := []lu.Factors{f.Clone()}
	var ws Workspace
	for v := 1; v < len(mats); v++ {
		delta := sparse.Delta(mats[v-1], mats[v])
		var err error
		if dynamic {
			err = ws.UpdateDynamic(f.(*lu.DynamicFactors), delta, nil)
		} else {
			err = ws.UpdateStatic(f.(*lu.StaticFactors), delta, nil)
		}
		if err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		log.Record(VersionRecord{Version: uint64(v), Terms: SplitTerms(delta)})
		clones = append(clones, f.Clone())
	}
	return log, clones
}

// TestMaterializeBitIdentical is the tentpole property: for both
// container kinds, materializing any target version from any earlier
// base version reproduces the retained full clone bit for bit — same
// values, same structure, same node-pool layout, same counters. One
// MaterializeWorkspace and one recycled destination container serve
// every pair, so the pooling path is what gets exercised.
func TestMaterializeBitIdentical(t *testing.T) {
	for _, dynamic := range []bool{false, true} {
		name := "static"
		if dynamic {
			name = "dynamic"
		}
		t.Run(name, func(t *testing.T) {
			rng := xrand.New(910)
			for trial := 0; trial < 6; trial++ {
				log, clones := historyWalk(t, rng, dynamic, 6)
				var mw MaterializeWorkspace
				var dst lu.Factors
				for b := 0; b < len(clones); b++ {
					for tv := b; tv < len(clones); tv++ {
						got, err := mw.MaterializeInto(dst, clones[b], log, uint64(b), uint64(tv), nil)
						if err != nil {
							t.Fatalf("trial %d (%d→%d): %v", trial, b, tv, err)
						}
						dst = got // recycle across every pair
						if dynamic {
							if !dynamicBitEqual(got.(*lu.DynamicFactors), clones[tv].(*lu.DynamicFactors)) {
								t.Fatalf("trial %d (%d→%d): materialized dynamic factors differ from retained clone", trial, b, tv)
							}
						} else {
							if !staticBitEqual(got.(*lu.StaticFactors), clones[tv].(*lu.StaticFactors)) {
								t.Fatalf("trial %d (%d→%d): materialized static factors differ from retained clone", trial, b, tv)
							}
						}
					}
				}
			}
		})
	}
}

// TestMaterializeZeroAlloc pins the satellite contract: repeated
// MaterializeInto on a warm workspace and recycled destination
// performs zero steady-state allocations (same style as the
// BlockWorkspace shrink-reuse tests).
func TestMaterializeZeroAlloc(t *testing.T) {
	rng := xrand.New(911)
	for _, dynamic := range []bool{false, true} {
		name := "static"
		if dynamic {
			name = "dynamic"
		}
		log, clones := historyWalk(t, rng, dynamic, 8)
		base, last := clones[0], uint64(len(clones)-1)
		var mw MaterializeWorkspace
		var dst lu.Factors
		var err error
		// Warm: first call grows workspace, destination and record buffer.
		if dst, err = mw.MaterializeInto(dst, base, log, 0, last, nil); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if dst, err = mw.MaterializeInto(dst, base, log, 0, last, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("%s: %v allocs per warm MaterializeInto, want 0", name, allocs)
		}
	}
}

func TestHistoryLogWindow(t *testing.T) {
	l := NewHistoryLog()
	if _, _, ok := l.Bounds(); ok {
		t.Fatal("empty log reports bounds")
	}
	for v := uint64(3); v <= 7; v++ {
		l.Record(VersionRecord{Version: v})
	}
	if lo, hi, ok := l.Bounds(); !ok || lo != 3 || hi != 7 {
		t.Fatalf("bounds [%d, %d] ok=%v, want [3, 7]", lo, hi, ok)
	}
	// Overwrite in window is idempotent in effect (WAL replay path).
	l.Record(VersionRecord{Version: 5, Structural: true})
	if rec, ok := l.Get(5); !ok || !rec.Structural {
		t.Fatal("in-window overwrite lost")
	}
	l.Record(VersionRecord{Version: 5, Structural: false})
	if l.Len() != 5 {
		t.Fatalf("len %d after overwrite, want 5", l.Len())
	}
	// CopyRange over a gap fails.
	if _, err := l.CopyRange(nil, 1, 4); !errors.Is(err, ErrHistoryGap) {
		t.Fatalf("gap error %v, want ErrHistoryGap", err)
	}
	// Trim drops the prefix.
	l.TrimBelow(5)
	if lo, hi, _ := l.Bounds(); lo != 5 || hi != 7 {
		t.Fatalf("bounds after trim [%d, %d], want [5, 7]", lo, hi)
	}
	if _, ok := l.Get(4); ok {
		t.Fatal("trimmed record still present")
	}
	// A non-abutting version resets the window.
	l.Record(VersionRecord{Version: 20})
	if lo, hi, _ := l.Bounds(); lo != 20 || hi != 20 {
		t.Fatalf("bounds after reset [%d, %d], want [20, 20]", lo, hi)
	}
}

func TestCopyRangeStructuralBreak(t *testing.T) {
	l := NewHistoryLog()
	l.Record(VersionRecord{Version: 0, Structural: true})
	l.Record(VersionRecord{Version: 1})
	l.Record(VersionRecord{Version: 2, Structural: true}) // rebuild
	l.Record(VersionRecord{Version: 3})
	if _, err := l.CopyRange(nil, 0, 3); !errors.Is(err, ErrStructuralBreak) {
		t.Fatalf("error %v, want ErrStructuralBreak", err)
	}
	if _, err := l.CopyRange(nil, 2, 3); err != nil {
		t.Fatalf("post-break range failed: %v", err)
	}
	if _, err := l.CopyRange(nil, 0, 1); err != nil {
		t.Fatalf("pre-break range failed: %v", err)
	}
}
