package bennett

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/lu"
	"repro/internal/sparse"
)

// DropTolerance is the magnitude below which an out-of-structure value
// produced by a static update is silently discarded (counted in
// Stats.Dropped). Values above it signal that the frozen structure does
// not cover the update and yield ErrOutOfPattern.
const DropTolerance = 1e-9

// PropagationCutoff truncates the y/z closure of the recurrence:
// vector entries whose magnitude never exceeds the cutoff are not
// propagated further. For the diagonally dominant matrices of
// evolving-graph measures the entries decay geometrically along the
// elimination order, so the cutoff turns an O(nnz(L+U)) worst-case
// reach into the short effective reach that makes incremental updating
// worthwhile — at a per-update factor error of cutoff magnitude, far
// below the accuracy the measures need. Set to 0 to disable (tests
// exercise both settings).
const PropagationCutoff = 1e-10

// ErrOutOfPattern reports that a static-structure update produced
// significant fill outside the frozen symbolic pattern. Under CLUDE
// this cannot happen for matrices within the USSP's cluster (Theorem
// 1); seeing it means the update was applied to a matrix outside the
// cluster.
var ErrOutOfPattern = errors.New("bennett: fill outside the static factor structure")

// Stats accumulates profiling information across updates.
type Stats struct {
	Rank1Updates int // rank-1 terms applied
	StepsTouched int // elimination steps visited
	Dropped      int // negligible out-of-structure values discarded (static)
}

// scratch holds the dense work vectors of the recurrence: the evolving
// y and z vectors, membership flags, and the sorted support index
// lists. One scratch serves a whole delta (it is reset between rank-1
// terms) so per-term allocation is O(support), not O(n).
type scratch struct {
	y, z     []float64
	inY, inZ []bool
	ysupp    []int
	zsupp    []int
	newIdx   []int
	// dirtyY/dirtyZ record positions written with sub-cutoff values
	// that were deliberately not promoted into the supports: they are
	// not propagated, but they must still be zeroed by reset so a
	// reused scratch is indistinguishable from a fresh one.
	dirtyY, dirtyZ []int
}

func newScratch(n int) *scratch {
	return &scratch{
		y:   make([]float64, n),
		z:   make([]float64, n),
		inY: make([]bool, n),
		inZ: make([]bool, n),
	}
}

// load initializes the supports from sparse vectors (entries keyed by
// Row; values accumulate).
func (sc *scratch) load(ys, zs []sparse.Entry) {
	for _, e := range ys {
		sc.y[e.Row] += e.Val
		if !sc.inY[e.Row] {
			sc.inY[e.Row] = true
			sc.ysupp = append(sc.ysupp, e.Row)
		}
	}
	for _, e := range zs {
		sc.z[e.Row] += e.Val
		if !sc.inZ[e.Row] {
			sc.inZ[e.Row] = true
			sc.zsupp = append(sc.zsupp, e.Row)
		}
	}
	sort.Ints(sc.ysupp)
	sort.Ints(sc.zsupp)
}

// reset zeroes everything the last term touched.
func (sc *scratch) reset() {
	for _, j := range sc.ysupp {
		sc.y[j] = 0
		sc.inY[j] = false
	}
	for _, j := range sc.zsupp {
		sc.z[j] = 0
		sc.inZ[j] = false
	}
	for _, j := range sc.dirtyY {
		sc.y[j] = 0
	}
	for _, j := range sc.dirtyZ {
		sc.z[j] = 0
	}
	sc.ysupp = sc.ysupp[:0]
	sc.zsupp = sc.zsupp[:0]
	sc.dirtyY = sc.dirtyY[:0]
	sc.dirtyZ = sc.dirtyZ[:0]
}

// setY writes a propagated y value, promoting j into the support when
// it is significant and recording it as dirty otherwise.
func (sc *scratch) setY(j int, v float64) {
	if !sc.inY[j] {
		if math.Abs(v) > PropagationCutoff {
			sc.inY[j] = true
			sc.newIdx = append(sc.newIdx, j)
		} else {
			sc.dirtyY = append(sc.dirtyY, j)
		}
	}
	sc.y[j] = v
}

// setZ is the z-vector analogue of setY.
func (sc *scratch) setZ(j int, v float64) {
	if !sc.inZ[j] {
		if math.Abs(v) > PropagationCutoff {
			sc.inZ[j] = true
			sc.newIdx = append(sc.newIdx, j)
		} else {
			sc.dirtyZ = append(sc.dirtyZ, j)
		}
	}
	sc.z[j] = v
}

// mergeTail merges the sorted, disjoint list add into the sorted slice
// supp, where every element of add is greater than supp[from-1] (all
// insertions land in the tail). Returns the grown slice.
func mergeTail(supp []int, from int, add []int) []int {
	if len(add) == 0 {
		return supp
	}
	old := len(supp)
	supp = append(supp, add...)
	// Merge supp[from:old] and add from the back into supp[from:].
	i, j, w := old-1, len(add)-1, len(supp)-1
	for j >= 0 {
		if i >= from && supp[i] > add[j] {
			supp[w] = supp[i]
			i--
		} else {
			supp[w] = add[j]
			j--
		}
		w--
	}
	return supp
}

// Add accumulates the counters of o into st. Parallel callers keep one
// Stats per worker and merge them once the workers are done.
func (st *Stats) Add(o Stats) {
	st.Rank1Updates += o.Rank1Updates
	st.StepsTouched += o.StepsTouched
	st.Dropped += o.Dropped
}

// Workspace owns the dense recurrence scratch (the y/z work vectors and
// their support lists) so a caller applying many updates — the cluster
// chains of CLUDE/CINC, one Workspace per worker goroutine — reuses one
// allocation instead of paying O(n) per update. The zero value is ready
// to use; a Workspace must not be shared between concurrent updates.
type Workspace struct {
	sc *scratch
}

// grab returns clean scratch of dimension n, reallocating only when the
// dimension changes. Every update leaves its touched positions recorded
// in the support or dirty lists (even on error paths), so resetting on
// grab restores a fully zeroed workspace.
func (w *Workspace) grab(n int) *scratch {
	if w.sc == nil || len(w.sc.y) != n {
		w.sc = newScratch(n)
		return w.sc
	}
	w.sc.reset()
	return w.sc
}

// UpdateStatic is the package-level UpdateStatic with this workspace's
// scratch.
func (w *Workspace) UpdateStatic(f *lu.StaticFactors, delta []sparse.Entry, st *Stats) error {
	if st == nil {
		st = &Stats{}
	}
	sc := w.grab(f.Dim())
	return applyDelta(delta, sc, st, func(sigma float64, sc *scratch, st *Stats) error {
		return rank1Static(f, sigma, sc, st)
	})
}

// UpdateDynamic is the package-level UpdateDynamic with this
// workspace's scratch.
func (w *Workspace) UpdateDynamic(d *lu.DynamicFactors, delta []sparse.Entry, st *Stats) error {
	if st == nil {
		st = &Stats{}
	}
	sc := w.grab(d.Dim())
	return applyDelta(delta, sc, st, func(sigma float64, sc *scratch, st *Stats) error {
		return rank1Dynamic(d, sigma, sc, st)
	})
}

// UpdateStatic applies ∆A (entries of A_new − A_old, in the reordered
// index space of the factors) to a static container in place. The
// container's frozen structure must cover all significant fill; under
// CLUDE that is guaranteed by the cluster USSP (Theorem 1).
func UpdateStatic(f *lu.StaticFactors, delta []sparse.Entry, st *Stats) error {
	var w Workspace
	return w.UpdateStatic(f, delta, st)
}

// UpdateDynamic applies ∆A to a dynamic (linked-list) container in
// place, splicing in new nodes for fill as the traditional incremental
// algorithm must.
func UpdateDynamic(d *lu.DynamicFactors, delta []sparse.Entry, st *Stats) error {
	var w Workspace
	return w.UpdateDynamic(d, delta, st)
}

// Rank1Static applies the single update A ← A + σ·y·zᵀ to a static
// container (y, z given sparsely). Exposed for tests and benchmarks.
func Rank1Static(f *lu.StaticFactors, sigma float64, y, z []sparse.Entry, st *Stats) error {
	if st == nil {
		st = &Stats{}
	}
	sc := newScratch(f.Dim())
	sc.load(y, z)
	st.Rank1Updates++
	return rank1Static(f, sigma, sc, st)
}

// Rank1Dynamic is the dynamic-container analogue of Rank1Static.
func Rank1Dynamic(d *lu.DynamicFactors, sigma float64, y, z []sparse.Entry, st *Stats) error {
	if st == nil {
		st = &Stats{}
	}
	sc := newScratch(d.Dim())
	sc.load(y, z)
	st.Rank1Updates++
	return rank1Dynamic(d, sigma, sc, st)
}

// Rank1Term is one pre-split rank-1 update of a delta sequence:
// A ← A + w·e_Keyᵀ when ByCol (W keyed by row), or A ← A + e_Key·wᵀ
// otherwise (W keyed by column; either way the varying index lives in
// the entries' Row field). SplitTerms produces them, applyTerms and the
// history replay path consume them; a term's W slice is immutable once
// built so terms can be shared between the log and concurrent readers.
type Rank1Term struct {
	Key   int
	ByCol bool
	W     []sparse.Entry
}

// SplitTerms splits ∆A into its rank-1 terms. The split goes along
// whichever dimension has fewer distinct indices — per-row terms
// e_r·wᵀ or per-column terms w·e_cᵀ — because the update rank (and
// hence the total cost) is min(#rows, #cols). Evolving-graph matrices
// make this matter: an edge change renormalizes one whole matrix
// column, so deltas concentrate in few columns but spread over many
// rows. Terms come out keyed in ascending order with each W in delta
// order, exactly the sequence the in-place update path applies.
func SplitTerms(delta []sparse.Entry) []Rank1Term {
	if len(delta) == 0 {
		return nil
	}
	rowSet := map[int]struct{}{}
	colSet := map[int]struct{}{}
	for _, e := range delta {
		rowSet[e.Row] = struct{}{}
		colSet[e.Col] = struct{}{}
	}
	byCol := len(colSet) < len(rowSet)

	groups := map[int][]sparse.Entry{}
	for _, e := range delta {
		if byCol {
			// z = e_c, y holds the column entries keyed by row.
			groups[e.Col] = append(groups[e.Col], sparse.Entry{Row: e.Row, Val: e.Val})
		} else {
			// y = e_r, z holds the row entries keyed by column.
			groups[e.Row] = append(groups[e.Row], sparse.Entry{Row: e.Col, Val: e.Val})
		}
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	terms := make([]Rank1Term, 0, len(keys))
	for _, k := range keys {
		terms = append(terms, Rank1Term{Key: k, ByCol: byCol, W: groups[k]})
	}
	return terms
}

// loadTerm loads a pre-split term into the scratch. The one-element
// unit buffer is caller-owned so replay loops allocate nothing.
func (sc *scratch) loadTerm(t Rank1Term, unit *[1]sparse.Entry) {
	unit[0] = sparse.Entry{Row: t.Key, Val: 1}
	if t.ByCol {
		sc.load(t.W, unit[:])
	} else {
		sc.load(unit[:], t.W)
	}
}

// applyDelta splits ∆A into rank-1 terms and applies them
// sequentially — the live update path. The history replay path runs
// the identical per-term loop (MaterializeInto), which is what makes
// replayed factors bit-identical to live ones.
func applyDelta(delta []sparse.Entry, sc *scratch, st *Stats, run func(float64, *scratch, *Stats) error) error {
	var unit [1]sparse.Entry
	for _, t := range SplitTerms(delta) {
		sc.reset()
		sc.loadTerm(t, &unit)
		st.Rank1Updates++
		if err := run(1, sc, st); err != nil {
			return err
		}
	}
	return nil
}

// rank1Static runs the Bennett recurrence (see doc.go) against the
// frozen arrays of a StaticFactors. All passes are merged walks of
// sorted index slices; out-of-structure positions must carry negligible
// values or the update fails with ErrOutOfPattern.
func rank1Static(f *lu.StaticFactors, sigma float64, sc *scratch, st *Stats) error {
	n := f.Dim()
	py, pz := 0, 0
	for py < len(sc.ysupp) || pz < len(sc.zsupp) {
		i := n
		if py < len(sc.ysupp) {
			i = sc.ysupp[py]
		}
		if pz < len(sc.zsupp) && sc.zsupp[pz] < i {
			i = sc.zsupp[pz]
		}
		for py < len(sc.ysupp) && sc.ysupp[py] <= i {
			py++
		}
		for pz < len(sc.zsupp) && sc.zsupp[pz] <= i {
			pz++
		}
		yi, zi := sc.y[i], sc.z[i]
		if math.Abs(yi) <= PropagationCutoff && math.Abs(zi) <= PropagationCutoff {
			continue
		}
		st.StepsTouched++
		di := f.D[i]
		dip := di + sigma*yi*zi
		if math.Abs(dip) < lu.PivotTolerance {
			return &lu.SingularError{Pivot: i, Value: dip}
		}

		// ---- L column i and y propagation ----
		lo, hi := f.LColPtr[i], f.LColPtr[i+1]
		rows := f.LRowIdx[lo:hi]
		vals := f.LVal[lo:hi]
		sc.newIdx = sc.newIdx[:0]
		switch {
		case zi != 0 && yi != 0:
			for p, j := range rows {
				lv := vals[p]
				vals[p] = (di*lv + sigma*zi*sc.y[j]) / dip
				if lv != 0 {
					sc.setY(j, sc.y[j]-yi*lv)
				}
			}
		case zi != 0: // yi == 0: dip == di; only positions with y_j != 0 move
			// No y propagation happens here, so instead of walking the
			// whole column we visit just the support — a direct indexed
			// access the frozen array structure affords (and the
			// linked-list container cannot; see paper §4 profiling).
			for _, j := range sc.ysupp[py:] {
				if sc.y[j] == 0 {
					continue
				}
				p := sort.SearchInts(rows, j)
				if p < len(rows) && rows[p] == j {
					vals[p] += sigma * zi * sc.y[j] / di
					continue
				}
				v := sigma * zi * sc.y[j] / di
				if math.Abs(v) <= DropTolerance {
					st.Dropped++
					continue
				}
				return fmt.Errorf("%w (L position %d,%d, value %g)", ErrOutOfPattern, j, i, v)
			}
		default: // yi != 0, zi == 0: L unchanged, only y propagates
			for p, j := range rows {
				if lv := vals[p]; lv != 0 {
					sc.setY(j, sc.y[j]-yi*lv)
				}
			}
		}
		// Merge the promotions before any error exit below: positions
		// marked inY must be reachable from ysupp or reset() cannot
		// clear them and a reused scratch would be corrupted.
		sc.ysupp = mergeTail(sc.ysupp, py, sc.newIdx)
		if zi != 0 && yi != 0 {
			// Out-of-structure positions: supp(y) ∩ (i, n) \ rows.
			// (The yi == 0 case checked them inline above. Freshly
			// promoted positions come from rows, so they are covered
			// by the structural pass and scanning them is harmless.)
			if err := staticExtras(sc.ysupp[py:], rows, sc.y, sigma*zi/dip, st); err != nil {
				return err
			}
		}

		// ---- U row i and z propagation ----
		ulo, uhi := f.URowPtr[i], f.URowPtr[i+1]
		cols := f.UColIdx[ulo:uhi]
		uvals := f.UVal[ulo:uhi]
		sc.newIdx = sc.newIdx[:0]
		switch {
		case yi != 0 && zi != 0:
			for p, j := range cols {
				uv := uvals[p]
				uvals[p] = (di*uv + sigma*yi*sc.z[j]) / dip
				if uv != 0 {
					sc.setZ(j, sc.z[j]-zi*uv)
				}
			}
		case yi != 0: // zi == 0: only positions with z_j != 0 move
			for _, j := range sc.zsupp[pz:] {
				if sc.z[j] == 0 {
					continue
				}
				p := sort.SearchInts(cols, j)
				if p < len(cols) && cols[p] == j {
					uvals[p] += sigma * yi * sc.z[j] / di
					continue
				}
				v := sigma * yi * sc.z[j] / di
				if math.Abs(v) <= DropTolerance {
					st.Dropped++
					continue
				}
				return fmt.Errorf("%w (U position %d,%d, value %g)", ErrOutOfPattern, i, j, v)
			}
		default: // zi != 0, yi == 0: U unchanged, z propagates
			for p, j := range cols {
				if uv := uvals[p]; uv != 0 {
					sc.setZ(j, sc.z[j]-zi*uv)
				}
			}
		}
		// Same ordering as the L phase: merge before the error exit.
		sc.zsupp = mergeTail(sc.zsupp, pz, sc.newIdx)
		if yi != 0 && zi != 0 {
			if err := staticExtras(sc.zsupp[pz:], cols, sc.z, sigma*yi/dip, st); err != nil {
				return err
			}
		}

		sigma *= di / dip
		f.D[i] = dip
	}
	return nil
}

// staticExtras scans the sorted support tail against the sorted
// structural index list; any support position absent from the
// structure would need new fill, which a frozen container cannot hold.
func staticExtras(supp, structural []int, vec []float64, coef float64, st *Stats) error {
	s := 0
	for _, j := range supp {
		if vec[j] == 0 {
			continue
		}
		for s < len(structural) && structural[s] < j {
			s++
		}
		if s < len(structural) && structural[s] == j {
			continue // covered by the structural pass
		}
		v := coef * vec[j]
		if math.Abs(v) <= DropTolerance {
			st.Dropped++
			continue
		}
		return fmt.Errorf("%w (position %d, value %g)", ErrOutOfPattern, j, v)
	}
	return nil
}
