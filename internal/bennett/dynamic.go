package bennett

import (
	"math"

	"repro/internal/lu"
)

// rank1Dynamic runs the Bennett recurrence against a linked-list
// container. Each phase is a single merged walk of the (sorted) factor
// list and the (sorted) support tail; genuinely new fill positions are
// spliced into the list during the walk, which is exactly the
// restructuring cost the paper profiles for the traditional
// incremental algorithm.
func rank1Dynamic(d *lu.DynamicFactors, sigma float64, sc *scratch, st *Stats) error {
	n := d.Dim()
	py, pz := 0, 0
	for py < len(sc.ysupp) || pz < len(sc.zsupp) {
		i := n
		if py < len(sc.ysupp) {
			i = sc.ysupp[py]
		}
		if pz < len(sc.zsupp) && sc.zsupp[pz] < i {
			i = sc.zsupp[pz]
		}
		for py < len(sc.ysupp) && sc.ysupp[py] <= i {
			py++
		}
		for pz < len(sc.zsupp) && sc.zsupp[pz] <= i {
			pz++
		}
		yi, zi := sc.y[i], sc.z[i]
		if math.Abs(yi) <= PropagationCutoff && math.Abs(zi) <= PropagationCutoff {
			continue
		}
		st.StepsTouched++
		di := d.D[i]
		dip := di + sigma*yi*zi
		if math.Abs(dip) < lu.PivotTolerance {
			return &lu.SingularError{Pivot: i, Value: dip}
		}

		// L column i: values, y propagation, fill splicing.
		sc.newIdx = sc.newIdx[:0]
		walkDynamic(d, true, i, sc.ysupp[py:], sc.y, sc.inY, &sc.newIdx, &sc.dirtyY, di, dip, sigma, yi, zi)
		sc.ysupp = mergeTail(sc.ysupp, py, sc.newIdx)

		// U row i: values, z propagation, fill splicing.
		sc.newIdx = sc.newIdx[:0]
		walkDynamic(d, false, i, sc.zsupp[pz:], sc.z, sc.inZ, &sc.newIdx, &sc.dirtyZ, di, dip, sigma, zi, yi)
		sc.zsupp = mergeTail(sc.zsupp, pz, sc.newIdx)

		sigma *= di / dip
		d.D[i] = dip
	}
	return nil
}

// walkDynamic performs one factor phase at step i. For the L phase
// (isL true) vec is y, own = y_i, other = z_i: the value update is
// newL = (d·L + σ·z_i·y_j)/d' and propagation is y_j -= y_i·L(j,i).
// The U phase is the exact mirror (vec = z, own = z_i, other = y_i).
// supp must be sorted and contain only indices > i; it lists every
// position where vec may be non-zero beyond i.
func walkDynamic(d *lu.DynamicFactors, isL bool, i int, supp []int,
	vec []float64, inSupp []bool, newIdx, dirty *[]int,
	di, dip, sigma, own, other float64) {

	heads := d.UHead
	if isL {
		heads = d.LHead
	}
	prev := -1
	cur := heads[i]
	si := 0
	for cur != -1 || si < len(supp) {
		const maxInt = int(^uint(0) >> 1)
		jList, jSupp := maxInt, maxInt
		if cur != -1 {
			jList = d.Nodes[cur].Idx
		}
		if si < len(supp) {
			jSupp = supp[si]
		}
		if jList <= jSupp {
			// Structural position (possibly also in the support).
			d.ScanSteps++
			node := &d.Nodes[cur]
			v := node.Val
			if other != 0 {
				node.Val = (di*v + sigma*other*vec[jList]) / dip
			}
			if own != 0 && v != 0 {
				vnew := vec[jList] - own*v
				if !inSupp[jList] {
					if math.Abs(vnew) > PropagationCutoff {
						inSupp[jList] = true
						*newIdx = append(*newIdx, jList)
					} else {
						// Not propagated, but reset must zero it (see
						// scratch.dirtyY).
						*dirty = append(*dirty, jList)
					}
				}
				vec[jList] = vnew
			}
			if jList == jSupp {
				si++
			}
			prev = cur
			cur = node.Next
			continue
		}
		// Support-only position: genuinely new fill when the update
		// term σ·other·vec[j]/d' is non-zero.
		if other != 0 && vec[jSupp] != 0 {
			v := sigma * other * vec[jSupp] / dip
			if math.Abs(v) <= PropagationCutoff {
				si++
				continue
			}
			if isL {
				prev = d.SpliceL(i, prev, cur, jSupp, v)
			} else {
				prev = d.SpliceU(i, prev, cur, jSupp, v)
			}
		}
		si++
	}
}
