package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lu"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// LoadTest benchmarks the admission-controlled serving pipeline under
// load (see docs/SERVING.md), isolating what each stage buys. Client
// behavior is open-loop: arrivals are paced by a clock, not by
// completions, so overload shows up as queue pressure and shedding
// instead of silently slowing the clients down. Five tables:
//
//  1. A *stampede* — hot keys arrive in bursts of duplicates at ~4x
//     the single-solve capacity, the thundering-herd shape of
//     trending queries and expiring cache entries. The unbatched
//     PR 2 path (NoSingleFlight, BatchMax 1) must solve or shed every
//     duplicate, because under backlog a burst is fully in flight
//     before its first solve lands in the cache. Single-flight
//     collapses each burst to one solve, so goodput per core must
//     clear ≥ 2x the baseline at an equal-or-better answered p99.
//     A fourth config (+panels, PanelMinWidth 1) routes the blocked
//     groups through the supernodal panel path; its "panel blocks"
//     column shows the routing firing under load (the substitution
//     win itself is isolated by the supernodal experiment).
//  2. A *distinct* overload — no duplicates, all against the hottest
//     snapshot, ~2x capacity — where coalescing has nothing to do
//     and the gain is the blocked multi-RHS solve alone
//     (lu.Solver.SolveBlock amortizing factor traversal over the
//     backlog), modest by design.
//  3. An *overload sweep* of the full pipeline from 0.25x to 2x
//     capacity: below capacity nothing sheds; at 2x the excess is
//     shed promptly (ErrOverloaded) while the p99 of answered
//     queries stays bounded by the queue instead of the backlog.
//  4. A *tracing overhead* A/B at 2x capacity: the full pipeline with
//     the request tracer off vs on at production settings (20ms slow
//     threshold, 1% sampling). Pooled spans, inline attributes and
//     clock-read sharing keep the marginal cost ~0.3 us per query —
//     within a 2% answered-throughput delta once client-side tracing
//     work overlaps with the solve worker (>= 2 cores); single-core
//     hosts measure the full tracing share of CPU instead.
//  5. A *stage breakdown* of the 2x run from the engine's per-stage
//     histograms (serve.Stats.QueryStages, the same data /v1/metrics
//     exposes): where a query's time goes across
//     resolve/coalesce/admit/batch/solve under saturation.
//
// The sparse reach-based path is disabled throughout: the Wiki graph
// is a single strongly-connected blob with full reach, and the sparse
// path has its own experiment (sparsesolve) on community graphs.
func LoadTest(d Datasets) ([]*Table, error) {
	_, ems, err := wikiEMS(d)
	if err != nil {
		return nil, err
	}
	solvers := make([]*lu.Solver, ems.Len())
	if _, err := core.Run(ems, core.CLUDE, core.Options{
		Workers:       d.Workers,
		Alpha:         0.95,
		RetainFactors: true,
		OnFactors:     func(i int, s *lu.Solver) { solvers[i] = s },
	}); err != nil {
		return nil, err
	}

	workers := minInt(4, runtime.GOMAXPROCS(0))
	lt := &loadTester{
		solvers: solvers,
		damping: d.Damping,
		T:       ems.Len(),
		n:       ems.N(),
		workers: workers,
	}

	// Calibrate capacity: closed-loop saturation of the unbatched
	// engine measures its sustainable solve throughput.
	capRes, err := lt.closedLoop(serve.Config{NoSingleFlight: true, BatchMax: 1, SparseReachFrac: -1}, 2*workers, 400)
	if err != nil {
		return nil, err
	}
	capacity := capRes.qps()

	configs := []struct {
		name string
		cfg  serve.Config
	}{
		{"pr2-unbatched", serve.Config{NoSingleFlight: true, BatchMax: 1, SparseReachFrac: -1, PanelMinWidth: -1}},
		{"+coalesce", serve.Config{BatchMax: 1, SparseReachFrac: -1, PanelMinWidth: -1}},
		{"+coalesce+block", serve.Config{BatchMax: 16, SparseReachFrac: -1, PanelMinWidth: -1}},
		{"+coalesce+block+panels", serve.Config{BatchMax: 16, SparseReachFrac: -1, PanelMinWidth: 1}},
	}

	burst := 8
	stampede := &Table{
		Title: fmt.Sprintf("Stampede: bursts of %d duplicate queries offered at 4x capacity (~%s qps, Wiki n=%d T=%d, workers=%d)",
			burst, f(capacity), ems.N(), ems.Len(), workers),
		Header: []string{"config", "offered qps", "goodput/core", "shed frac", "ans p50", "ans p99", "coalesced", "blocks", "panel blocks", "cold solves", "goodput/core speedup"},
	}
	var baseGPC float64
	for _, c := range configs {
		r, err := lt.openLoadReps(c.cfg, 4*capacity, burst, -1, 2)
		if err != nil {
			return nil, err
		}
		gpc := r.goodputPerCore(workers)
		if baseGPC == 0 {
			baseGPC = gpc
		}
		stampede.Rows = append(stampede.Rows, append(r.cells(c.name, workers), f(gpc/baseGPC)+"x"))
	}

	distinct := &Table{
		Title:  "Distinct overload: unique hottest-snapshot queries offered at 2x capacity (nothing to coalesce; gain is the blocked solve)",
		Header: stampede.Header,
	}
	baseGPC = 0
	for _, c := range configs {
		r, err := lt.openLoadReps(c.cfg, 2*capacity, 1, lt.T-1, 3)
		if err != nil {
			return nil, err
		}
		gpc := r.goodputPerCore(workers)
		if baseGPC == 0 {
			baseGPC = gpc
		}
		distinct.Rows = append(distinct.Rows, append(r.cells(c.name, workers), f(gpc/baseGPC)+"x"))
	}

	sweep := &Table{
		Title:  "Overload sweep (full pipeline): excess load sheds fast and answered latency stays queue-bounded",
		Header: []string{"offered/capacity", "offered qps", "goodput qps", "shed frac", "ans p95", "shed p99"},
	}
	var last *openResult
	for _, frac := range []float64{0.25, 0.5, 2.0} {
		r, err := lt.openLoad(serve.Config{BatchMax: 16, SparseReachFrac: -1}, frac*capacity, 1, -1)
		if err != nil {
			return nil, err
		}
		last = r
		sweep.Rows = append(sweep.Rows, []string{
			fmt.Sprintf("%.2fx", frac),
			f(r.offeredQPS()),
			f(r.goodputQPS()),
			f(r.shedFrac()),
			durUS(pctl(r.ansLat, 0.95)),
			durUS(pctl(r.shedLat, 0.99)),
		})
	}

	// Tracing overhead: the same 2x full-pipeline overload with the
	// request tracer off vs on at production settings (slow threshold
	// 20ms, 1% sampling). The tracer shares every clock read serve
	// already takes for its stage histograms, spans live in a pooled
	// arena, and attributes occupy inline slots, so the marginal cost
	// is ~0.3 us per query (see the trace package). On hosts with two
	// or more cores the client-side share of that overlaps with the
	// solve worker and the answered-throughput delta stays within the
	// 2% design bound; on a single-core host the entire cost shares
	// the solve core, so the open-loop delta degrades to roughly the
	// tracing share of total CPU and the measurement is dominated by
	// scheduler noise.
	overhead := &Table{
		Title:  "Tracing overhead at 2.0x overload (slow=20ms, sample=1%; design bound: answered-throughput delta within 2% with >=2 cores)",
		Header: []string{"config", "offered qps", "goodput qps", "shed frac", "ans p50", "ans p99", "traces retained", "goodput delta"},
	}
	// A/B reps interleave (off, on, off, on, ...): heap growth, GC
	// cadence and CPU clocking drift over a process's life, and
	// running all "off" reps before all "on" reps would bill that
	// drift to tracing. The reported delta is the median of the
	// per-pair deltas rather than the pooled ratio: on shared runners
	// a single CPU-steal burst can halve one rep's goodput, and a
	// median over adjacent pairs discards that outlier where a pooled
	// total would absorb it.
	tc := trace.New(trace.Config{Buffer: 1024, Slow: 20 * time.Millisecond, Sample: 0.01})
	offCfg := serve.Config{BatchMax: 16, SparseReachFrac: -1}
	onCfg := offCfg
	onCfg.Tracer = tc
	var offRun, onRun *openResult
	var pairDeltas []float64
	for rep := 0; rep < 5; rep++ {
		off, err := lt.openLoad(offCfg, 2*capacity, 1, -1)
		if err != nil {
			return nil, err
		}
		on, err := lt.openLoad(onCfg, 2*capacity, 1, -1)
		if err != nil {
			return nil, err
		}
		pairDeltas = append(pairDeltas, on.goodputQPS()/off.goodputQPS()-1)
		offRun = poolRuns(offRun, off)
		onRun = poolRuns(onRun, on)
	}
	sortLats(offRun)
	sortLats(onRun)
	overheadRow := func(name string, r *openResult, retained, delta string) []string {
		return []string{
			name, f(r.offeredQPS()), f(r.goodputQPS()), f(r.shedFrac()),
			durUS(pctl(r.ansLat, 0.50)), durUS(pctl(r.ansLat, 0.99)),
			retained, delta,
		}
	}
	sort.Float64s(pairDeltas)
	delta := pairDeltas[len(pairDeltas)/2]
	overhead.Rows = append(overhead.Rows,
		overheadRow("tracing off", offRun, "0", "-"),
		overheadRow("tracing on", onRun, fmt.Sprint(tc.Stats().Retained), fmt.Sprintf("%+.2f%%", 100*delta)),
	)

	// Where the time goes: the engine's own stage histograms (the same
	// ones /v1/metrics exposes as clude_query_stage_seconds) over the
	// final 2x-overload run — under shedding, admit wait should
	// dominate while resolve and batch stay negligible.
	stages := &Table{
		Title:  "Pipeline stages of the 2.0x run (engine-side histograms; quantiles are log2-bucket upper bounds)",
		Header: []string{"stage", "count", "p50", "p95", "p99"},
	}
	for _, name := range []string{"resolve", "coalesce", "admit", "batch", "solve"} {
		sl, ok := last.st.QueryStages[name]
		if !ok {
			continue
		}
		stages.Rows = append(stages.Rows, []string{
			name,
			fmt.Sprint(sl.Count),
			durUS(time.Duration(sl.P50us * 1e3)),
			durUS(time.Duration(sl.P95us * 1e3)),
			durUS(time.Duration(sl.P99us * 1e3)),
		})
	}

	return []*Table{stampede, distinct, sweep, overhead, stages}, nil
}

// loadTester shares the pinned solvers and workload parameters across
// the configurations under test.
type loadTester struct {
	solvers []*lu.Solver
	damping float64
	T, n    int
	workers int
}

// newEngine builds one engine under test around the shared solvers.
func (lt *loadTester) newEngine(cfg serve.Config) *serve.Engine {
	cfg.Workers = lt.workers
	cfg.Damping = lt.damping
	cfg.MaxSnapshots = lt.T
	// A bounded queue that absorbs arrival jitter (time.Sleep
	// granularity bunches paced arrivals) but keeps worst-case
	// waiting at a few dozen solves; beyond it, excess load sheds.
	cfg.QueueDepth = 64
	// Tiny cache relative to the key space: bursts are absorbed by
	// coalescing (or not), never by pure cache capacity.
	cfg.CacheSize = 32
	eng := serve.New(cfg)
	// Engines only read pinned solvers, so the runs can share them.
	for i, s := range lt.solvers {
		eng.Pin(i, s)
	}
	return eng
}

// loadQuery derives one deterministic query, RWR-dominant with
// sources spread over all n nodes so distinct streams rarely
// collide. snap pins the snapshot; snap < 0 draws it at random.
func loadQuery(rng *xrand.Rand, T, n int, snap int) serve.Query {
	q := serve.Query{Snapshot: snap}
	if snap < 0 {
		q.Snapshot = rng.Intn(T)
	}
	switch rng.Intn(8) {
	case 0:
		q.Measure = serve.MeasurePPR
		q.Sources = []int{rng.Intn(n), rng.Intn(n)}
	case 1:
		q.Measure = serve.MeasureTopK
		q.Source = rng.Intn(n)
		q.K = 1 + rng.Intn(10)
	default:
		q.Measure = serve.MeasureRWR
		q.Source = rng.Intn(n)
	}
	return q
}

// closedLoopResult is a saturation run's outcome, used to calibrate
// capacity for the open-loop tables.
type closedLoopResult struct {
	total int
	wall  time.Duration
}

func (r *closedLoopResult) qps() float64 { return float64(r.total) / r.wall.Seconds() }

// closedLoop saturates the engine with clients that issue unique
// queries back to back, measuring sustainable throughput.
func (lt *loadTester) closedLoop(cfg serve.Config, clients, perClient int) (*closedLoopResult, error) {
	errc := make(chan error, clients)
	eng := lt.newEngine(cfg)
	defer eng.Close()
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		rng := xrand.New(uint64(101 + c))
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perClient; i++ {
				if _, err := eng.Query(ctx, loadQuery(rng, lt.T, lt.n, -1)); err != nil {
					errc <- fmt.Errorf("bench: loadtest closed-loop: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	return &closedLoopResult{total: clients * perClient, wall: wall}, nil
}

// openResult is one open-loop run's outcome. ansLat and shedLat are
// ascending.
type openResult struct {
	total    int
	answered int64
	shed     int64
	wall     time.Duration
	ansLat   []time.Duration
	shedLat  []time.Duration
	st       serve.Stats
}

func (r *openResult) offeredQPS() float64 { return float64(r.total) / r.wall.Seconds() }
func (r *openResult) goodputQPS() float64 { return float64(r.answered) / r.wall.Seconds() }
func (r *openResult) shedFrac() float64   { return float64(r.shed) / float64(r.total) }
func (r *openResult) goodputPerCore(workers int) float64 {
	return r.goodputQPS() / float64(workers)
}

func (r *openResult) cells(name string, workers int) []string {
	return []string{
		name,
		f(r.offeredQPS()),
		f(r.goodputPerCore(workers)),
		f(r.shedFrac()),
		durUS(pctl(r.ansLat, 0.50)),
		durUS(pctl(r.ansLat, 0.99)),
		fmt.Sprint(r.st.Coalesced),
		fmt.Sprint(r.st.BlockSolves),
		fmt.Sprint(r.st.PanelSolves),
		fmt.Sprint(r.st.ColdSolves),
	}
}

// openLoadReps runs openLoad reps times against fresh engines and
// pools the outcomes, damping GC- and scheduler-induced tail noise
// on small machines.
func (lt *loadTester) openLoadReps(cfg serve.Config, rate float64, burst, snap, reps int) (*openResult, error) {
	var sum *openResult
	for rep := 0; rep < reps; rep++ {
		r, err := lt.openLoad(cfg, rate, burst, snap)
		if err != nil {
			return nil, err
		}
		sum = poolRuns(sum, r)
	}
	sortLats(sum)
	return sum, nil
}

// poolRuns merges one more open-loop run into sum (nil sum starts a
// fresh pool). Latency slices are left unsorted; call sortLats before
// reading quantiles.
func poolRuns(sum, r *openResult) *openResult {
	if sum == nil {
		return r
	}
	sum.total += r.total
	sum.answered += r.answered
	sum.shed += r.shed
	sum.wall += r.wall
	sum.ansLat = append(sum.ansLat, r.ansLat...)
	sum.shedLat = append(sum.shedLat, r.shedLat...)
	sum.st.Coalesced += r.st.Coalesced
	sum.st.BlockSolves += r.st.BlockSolves
	sum.st.BlockedRHS += r.st.BlockedRHS
	sum.st.PanelSolves += r.st.PanelSolves
	sum.st.PanelRHS += r.st.PanelRHS
	sum.st.ColdSolves += r.st.ColdSolves
	return sum
}

func sortLats(r *openResult) {
	sort.Slice(r.ansLat, func(i, j int) bool { return r.ansLat[i] < r.ansLat[j] })
	sort.Slice(r.shedLat, func(i, j int) bool { return r.shedLat[i] < r.shedLat[j] })
}

// openLoad offers queries at a fixed rate regardless of completion.
// Arrivals come in runs of burst consecutive duplicates of a fresh
// key (burst=1 means all queries unique): under backlog, a whole
// burst is in flight before its first solve can land in the cache,
// which is exactly the window single-flight coalescing exists for.
// snap pins every query's snapshot (< 0 draws them at random).
func (lt *loadTester) openLoad(cfg serve.Config, rate float64, burst, snap int) (*openResult, error) {
	eng := lt.newEngine(cfg)
	defer eng.Close()

	total := int(rate / 2) // ~0.5 s of offered traffic
	if total < 400 {
		total = 400
	}
	if total > 40000 {
		total = 40000
	}
	total -= total % burst
	interval := time.Duration(float64(time.Second) / rate)
	rng := xrand.New(7)
	keys := make([]serve.Query, total/burst)
	for i := range keys {
		keys[i] = loadQuery(rng, lt.T, lt.n, snap)
	}

	var answered, shed atomic.Int64
	ansLat := make([]time.Duration, total)
	shedLat := make([]time.Duration, total)
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	t0 := time.Now()
	next := t0
	for i := 0; i < total; i++ {
		if sleep := time.Until(next); sleep > 0 {
			time.Sleep(sleep)
		}
		next = next.Add(interval)
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			qt := time.Now()
			_, err := eng.Query(context.Background(), keys[i/burst])
			el := time.Since(qt)
			switch {
			case err == nil:
				ansLat[i] = el
				answered.Add(1)
			case errors.Is(err, serve.ErrOverloaded):
				shedLat[i] = el
				shed.Add(1)
			default:
				select {
				case errc <- fmt.Errorf("bench: loadtest open-loop query %d: %w", i, err):
				default:
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	st := eng.Stats()
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	collect := func(src []time.Duration) []time.Duration {
		out := src[:0:0]
		for _, l := range src {
			if l > 0 {
				out = append(out, l)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	return &openResult{
		total:    total,
		answered: answered.Load(),
		shed:     shed.Load(),
		wall:     wall,
		ansLat:   collect(ansLat),
		shedLat:  collect(shedLat),
		st:       st,
	}, nil
}

// pctl reads the p-quantile of an ascending latency slice.
func pctl(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	i := int(p * float64(len(lat)))
	if i >= len(lat) {
		i = len(lat) - 1
	}
	return lat[i]
}
