package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lu"
	"repro/internal/serve"
	"repro/internal/xrand"
)

// servingQuery derives one deterministic pseudo-random mixed query
// (rwr / ppr / pagerank / topk) over T snapshots and n nodes. The
// source and seed pools are kept small so the stream revisits queries
// and the cache-hit column measures something.
func servingQuery(rng *xrand.Rand, T, n int) serve.Query {
	q := serve.Query{Snapshot: rng.Intn(T)}
	pool := minInt(64, n)
	switch rng.Intn(4) {
	case 0:
		q.Measure = serve.MeasureRWR
		q.Source = rng.Intn(pool)
	case 1:
		q.Measure = serve.MeasurePPR
		q.Sources = []int{rng.Intn(16), 16 + rng.Intn(16)}
	case 2:
		q.Measure = serve.MeasurePageRank
	case 3:
		q.Measure = serve.MeasureTopK
		q.Source = rng.Intn(pool)
		q.K = 1 + rng.Intn(10)
	}
	return q
}

// Serving measures the query-serving layer end to end: factor the Wiki
// EMS once with CLUDE (RetainFactors), pin every snapshot, then replay
// the same deterministic stream of mixed measure queries against
// serving engines of increasing pool size, reporting throughput,
// latency, and cache behavior. The paper stops at factorization; this
// experiment covers the traffic those factors exist to serve.
func Serving(d Datasets) ([]*Table, error) {
	_, ems, err := wikiEMS(d)
	if err != nil {
		return nil, err
	}
	solvers := make([]*lu.Solver, ems.Len())
	if _, err := core.Run(ems, core.CLUDE, core.Options{
		Workers:       d.Workers,
		Alpha:         0.95,
		RetainFactors: true,
		OnFactors:     func(i int, s *lu.Solver) { solvers[i] = s },
	}); err != nil {
		return nil, err
	}

	const totalQ = 1200
	rng := xrand.New(42)
	queries := make([]serve.Query, totalQ)
	for i := range queries {
		queries[i] = servingQuery(rng, ems.Len(), ems.N())
	}

	tbl := &Table{
		Title: fmt.Sprintf("Query serving vs pool size (Wiki, T=%d, n=%d, %d mixed queries, GOMAXPROCS=%d)",
			ems.Len(), ems.N(), totalQ, runtime.GOMAXPROCS(0)),
		Header: []string{"workers", "wall", "qps", "mean lat", "p95 lat", "hit rate", "cold solves"},
	}
	for _, w := range workerSweep() {
		eng := serve.New(serve.Config{
			Workers:      w,
			Damping:      d.Damping,
			CacheSize:    512,
			MaxSnapshots: ems.Len(),
		})
		// Engines only read pinned solvers, so the sweep can share them.
		for i, s := range solvers {
			eng.Pin(i, s)
		}

		clients := 2 * w
		lat := make([]time.Duration, totalQ)
		errc := make(chan error, clients)
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				ctx := context.Background()
				for i := c; i < totalQ; i += clients {
					qt := time.Now()
					if _, err := eng.Query(ctx, queries[i]); err != nil {
						errc <- fmt.Errorf("bench: serving query %d: %w", i, err)
						return
					}
					lat[i] = time.Since(qt)
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(t0)
		st := eng.Stats()
		eng.Close()
		select {
		case err := <-errc:
			return nil, err
		default:
		}

		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, l := range lat {
			sum += l
		}
		mean := sum / totalQ
		p95 := lat[totalQ*95/100]
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(w),
			dur(wall),
			f(float64(totalQ) / wall.Seconds()),
			durUS(mean),
			durUS(p95),
			f(st.HitRate()),
			fmt.Sprint(st.ColdSolves),
		})
	}
	return []*Table{tbl}, nil
}

// durUS formats a duration in microseconds for the latency columns
// (per-query substitutions are far below the millisecond grid of dur).
func durUS(d time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1000)
}
