package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
)

// Persistence measures the two costs the durability layer trades: (a)
// warm restart — newest snapshot + WAL tail through store.Recover —
// against the cold full refactorization a crash would otherwise force,
// across graph sizes; and (b) sustained ingest throughput with the WAL
// fsyncing every batch, buffering via the OS, or absent entirely — the
// price of each durability guarantee.
func Persistence(d Datasets) ([]*Table, error) {
	restart, err := persistenceRestart(d)
	if err != nil {
		return nil, err
	}
	ingest, err := persistenceIngest(d)
	if err != nil {
		return nil, err
	}
	return []*Table{restart, ingest}, nil
}

// persistenceRestart times store.Recover (deserialize + replay) against
// a cold boot (ordering + symbolic + full numeric factorization of the
// same final state) at several sizes of the Wiki-like dataset — the
// high-MES regime the paper targets, where a batch is a cheap Bennett
// update and the snapshot therefore carries real reuse value.
func persistenceRestart(d Datasets) (*Table, error) {
	tbl := &Table{
		Title: "Warm restart (snapshot + WAL tail) vs cold full refactorization (CLUDE, Wiki). " +
			"tail = batches committed after the last checkpoint (bounded by -snapshot-every)",
		Header: []string{"n", "versions", "warm, tail=0", "warm, tail=2", "cold refactor", "speedup (tail=0)"},
	}
	base := d.Wiki
	for _, scale := range []float64{0.5, 1.0} {
		cfg := base
		cfg.N = maxInt(60, int(float64(base.N)*scale))
		cfg.InitialEdges = maxInt(cfg.N*2, int(float64(base.InitialEdges)*scale))
		cfg.FinalEdges = maxInt(cfg.InitialEdges+cfg.N/4, int(float64(base.FinalEdges)*scale))
		egs, err := gen.WikiSim(cfg)
		if err != nil {
			return nil, err
		}
		deriver := graph.RWRMatrix(d.Damping)
		scfg := core.StreamConfig{Algorithm: core.CLUDE, Alpha: 0.95, Initial: egs.Snapshots[0], Derive: deriver}
		batches := graph.DeltaBatches(egs)

		var warm [2]time.Duration
		for w, tail := range []int{0, 2} {
			d, err := timedRecover(scfg, batches, tail)
			if err != nil {
				return nil, err
			}
			warm[w] = d
		}

		t1 := time.Now()
		coldStream, err := core.NewStream(core.StreamConfig{Algorithm: core.CLUDE, Alpha: 0.95, Initial: egs.Snapshots[egs.Len()-1], Derive: deriver})
		if err != nil {
			return nil, err
		}
		cold := time.Since(t1)
		coldStream.Close()

		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(cfg.N), fmt.Sprint(len(batches)),
			dur(warm[0]), dur(warm[1]), dur(cold), f(speedup(cold, warm[0])),
		})
	}
	return tbl, nil
}

// timedRecover builds a durable stream whose last checkpoint sits
// `tail` batches before the crash point, kills it (no final snapshot),
// and times store.Recover back to the exact pre-crash version.
func timedRecover(scfg core.StreamConfig, batches [][]graph.EdgeEvent, tail int) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "clude-persist-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	opt := store.Options{Sync: store.SyncNone, SnapshotEvery: 1 << 30}
	st, err := store.Open(dir, opt)
	if err != nil {
		return 0, err
	}
	stream, _, err := st.OpenStream(scfg)
	if err != nil {
		return 0, err
	}
	snapAt := maxInt(0, len(batches)-1-tail)
	for i, evs := range batches {
		if _, err := stream.Apply(evs); err != nil {
			return 0, err
		}
		if i == snapAt {
			if err := st.Snapshot(); err != nil {
				return 0, err
			}
		}
	}
	stream.Close()
	// Crash: no store.Close, no final snapshot.

	t0 := time.Now()
	warmStream, st2, info, err := store.Recover(dir, scfg, opt)
	if err != nil {
		return 0, err
	}
	warm := time.Since(t0)
	if got, want := warmStream.Version(), uint64(len(batches)); got != want {
		return 0, fmt.Errorf("bench: warm restart reached version %d, want %d", got, want)
	}
	if info.ReplayedBatches != tail {
		return 0, fmt.Errorf("bench: replayed %d batches, want %d", info.ReplayedBatches, tail)
	}
	warmStream.Close()
	st2.Close()
	return warm, nil
}

// persistenceIngest measures the WAL's toll on the ingest hot path:
// events/second with fsync-per-batch, OS-buffered logging, and no
// durability at all.
func persistenceIngest(d Datasets) (*Table, error) {
	egs, err := gen.WikiSim(d.Wiki)
	if err != nil {
		return nil, err
	}
	deriver := graph.RWRMatrix(d.Damping)
	batches := graph.DeltaBatches(egs)
	events := 0
	for _, b := range batches {
		events += len(b)
	}
	tbl := &Table{
		Title:  fmt.Sprintf("Ingest throughput vs durability (CLUDE, n=%d, %d events in %d batches)", egs.N(), events, len(batches)),
		Header: []string{"durability", "ingest wall", "events/s", "wal records", "fsyncs"},
	}
	for _, mode := range []string{"none (no WAL)", "wal, fsync=none", "wal, fsync=always"} {
		scfg := core.StreamConfig{Algorithm: core.CLUDE, Alpha: 0.95, Initial: egs.Snapshots[0], Derive: deriver}
		var stream *core.Stream
		var st *store.Store
		switch mode {
		case "none (no WAL)":
			stream, err = core.NewStream(scfg)
		default:
			sync := store.SyncNone
			if mode == "wal, fsync=always" {
				sync = store.SyncAlways
			}
			dir, derr := os.MkdirTemp("", "clude-ingest-*")
			if derr != nil {
				return nil, derr
			}
			defer os.RemoveAll(dir)
			st, err = store.Open(dir, store.Options{Sync: sync, SnapshotEvery: 1 << 30})
			if err != nil {
				return nil, err
			}
			stream, _, err = st.OpenStream(scfg)
		}
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		for _, evs := range batches {
			if _, err := stream.Apply(evs); err != nil {
				return nil, err
			}
		}
		wall := time.Since(t0)
		stream.Close()
		row := []string{mode, dur(wall), f(float64(events) / wall.Seconds()), "0", "0"}
		if st != nil {
			ss := st.Stats()
			row[3] = fmt.Sprint(ss.WALRecords)
			row[4] = fmt.Sprint(ss.WALFsyncs)
			st.Close()
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}
