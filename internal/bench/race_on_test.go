//go:build race

package bench

// raceEnabled reports whether the race detector instruments this test
// binary; wall-clock assertions are skipped under it (instrumentation
// slows the containers by wildly different factors).
const raceEnabled = true
