package bench

import (
	"runtime"
	"testing"
)

// scalingDatasets sizes the synthetic sequence so each cluster carries
// enough ordering + full-LU work for the pool to amortize scheduling
// overhead, with far more clusters than workers.
func scalingDatasets(t *testing.T) Datasets {
	t.Helper()
	d, err := DatasetsFor(Small)
	if err != nil {
		t.Fatal(err)
	}
	// High churn keeps clusters short at alpha=0.95, so the plan is
	// dominated by per-cluster Markowitz + full LU — the part that
	// parallelizes — rather than by one long Bennett chain.
	d.Synthetic.V = 400
	d.Synthetic.EP = 3600
	d.Synthetic.T = 24
	d.Synthetic.DeltaE = 80
	return d
}

// TestParallelCLUDESpeedup is the engine's scaling regression: with a
// 4-worker pool CLUDE must finish the synthetic sequence at least
// 1.5x faster than the sequential engine. Requires real hardware
// parallelism, so it skips on small machines.
func TestParallelCLUDESpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to measure a 4-worker speedup, have %d", runtime.NumCPU())
	}
	if raceEnabled {
		t.Skip("race-detector synchronization serializes the pool; measure without -race")
	}
	s, err := CLUDESpeedup(scalingDatasets(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CLUDE 4-worker speedup: %.2fx (NumCPU=%d)", s, runtime.NumCPU())
	// NumCPU counts logical CPUs: 4 logical is often 2 physical cores
	// with SMT, where 4 CPU-bound workers cannot reach the full
	// threshold. Hold the hard bound where 4 physical cores are
	// certain, and a looser sanity bound on SMT-ambiguous machines.
	switch {
	case runtime.NumCPU() >= 8 && s < 1.5:
		t.Errorf("CLUDE speedup with 4 workers = %.2fx, want > 1.5x", s)
	case s < 1.15:
		t.Errorf("CLUDE speedup with 4 workers = %.2fx, want > 1.15x even with SMT", s)
	}
}

// TestCLUDESpeedupRunsAnywhere exercises the measurement path itself
// (both engine modes) without asserting a ratio, so single-core boxes
// still cover it.
func TestCLUDESpeedupRunsAnywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := small(t)
	s, err := CLUDESpeedup(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Errorf("speedup must be positive, got %v", s)
	}
}
